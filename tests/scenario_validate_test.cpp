// Tests for scenario validation (fail-fast configuration checking).
#include <gtest/gtest.h>

#include "runner/scenario.hpp"
#include "test_util.hpp"

namespace dca::runner {
namespace {

TEST(ValidateScenario, DefaultsAreValid) {
  EXPECT_EQ(validate_scenario(ScenarioConfig{}), "");
  EXPECT_EQ(validate_scenario(testutil::small_config()), "");
  EXPECT_EQ(validate_scenario(testutil::paper_config()), "");
}

TEST(ValidateScenario, ValidTorusPasses) {
  ScenarioConfig c;
  c.rows = 14;
  c.cols = 14;
  c.wrap = cell::Wrap::kToroidal;
  EXPECT_EQ(validate_scenario(c), "");
}

TEST(ValidateScenario, MisalignedTorusRejected) {
  ScenarioConfig c;
  c.rows = 8;
  c.cols = 8;
  c.wrap = cell::Wrap::kToroidal;
  EXPECT_NE(validate_scenario(c), "");
}

TEST(ValidateScenario, OddRowTorusRejected) {
  ScenarioConfig c;
  c.rows = 7;
  c.cols = 14;
  c.wrap = cell::Wrap::kToroidal;
  EXPECT_NE(validate_scenario(c).find("even row"), std::string::npos);
}

TEST(ValidateScenario, TinyTorusRejected) {
  ScenarioConfig c;
  c.rows = 4;
  c.cols = 4;
  c.wrap = cell::Wrap::kToroidal;
  c.greedy_plan = true;
  EXPECT_NE(validate_scenario(c).find("too small"), std::string::npos);
}

TEST(ValidateScenario, BadClusterRadiusCombos) {
  ScenarioConfig c;
  c.cluster = 3;
  c.interference_radius = 2;
  EXPECT_NE(validate_scenario(c), "");
  c.cluster = 7;
  c.interference_radius = 3;
  EXPECT_NE(validate_scenario(c), "");
  c.cluster = 4;
  c.interference_radius = 1;
  EXPECT_NE(validate_scenario(c).find("cluster sizes 3 and 7"), std::string::npos);
  c.greedy_plan = true;
  c.interference_radius = 3;
  EXPECT_EQ(validate_scenario(c), "") << "greedy supports any radius";
}

TEST(ValidateScenario, ParameterRangeChecks) {
  ScenarioConfig c;
  c.n_channels = 0;
  EXPECT_NE(validate_scenario(c), "");
  c = ScenarioConfig{};
  c.n_channels = cell::kMaxChannels + 1;
  EXPECT_NE(validate_scenario(c), "");
  c = ScenarioConfig{};
  c.adaptive.theta_low = 0;
  EXPECT_NE(validate_scenario(c), "");
  c = ScenarioConfig{};
  c.adaptive.theta_high = c.adaptive.theta_low;
  EXPECT_NE(validate_scenario(c).find("hysteresis"), std::string::npos);
  c = ScenarioConfig{};
  c.mean_holding_s = 0.0;
  EXPECT_NE(validate_scenario(c), "");
  c = ScenarioConfig{};
  c.max_update_attempts = 0;
  EXPECT_NE(validate_scenario(c), "");
  c = ScenarioConfig{};
  c.latency_jitter = -1;
  EXPECT_NE(validate_scenario(c).find("latency_jitter"), std::string::npos);
  c = ScenarioConfig{};
  c.mean_dwell_s = -0.5;
  EXPECT_NE(validate_scenario(c).find("dwell"), std::string::npos);
}

TEST(ValidateScenario, CrashKnobChecks) {
  ScenarioConfig c;
  c.fault.crash_rate_per_min = -1.0;
  EXPECT_EQ(validate_scenario(c), "crash rate cannot be negative");
  c = ScenarioConfig{};
  c.fault.crash_mean_s = -0.1;
  EXPECT_EQ(validate_scenario(c), "crash_mean_s cannot be negative");
  // A crash rate with a zero outage length is a contradiction, not a
  // no-op: reject it rather than silently schedule zero-length crashes.
  c = ScenarioConfig{};
  c.fault.crash_rate_per_min = 1.0;
  c.fault.crash_mean_s = 0.0;
  c.request_timeout = sim::milliseconds(400);
  EXPECT_EQ(validate_scenario(c),
            "crash_mean_s must be positive when crashes are enabled");
  // Crashes orphan handshakes; without a request timeout the victims
  // would hang forever.
  c.fault.crash_mean_s = 2.0;
  c.request_timeout = 0;
  EXPECT_EQ(validate_scenario(c),
            "MSS crashes orphan in-flight handshakes; set request_timeout");
  c.request_timeout = sim::milliseconds(400);
  EXPECT_EQ(validate_scenario(c), "");
}

TEST(ValidateScenario, PartitionSpecChecks) {
  ScenarioConfig c;  // 8x8 grid: cells 0..63
  c.request_timeout = sim::milliseconds(400);
  c.fault.partitions = {net::PartitionSpec{{}, sim::seconds(1), sim::seconds(2)}};
  EXPECT_EQ(validate_scenario(c), "partition group must name at least one cell");
  c.fault.partitions = {net::PartitionSpec{{3}, sim::seconds(2), sim::seconds(2)}};
  EXPECT_EQ(validate_scenario(c),
            "partition interval must satisfy start < end");
  c.fault.partitions = {net::PartitionSpec{{64}, sim::seconds(1), sim::seconds(2)}};
  EXPECT_EQ(validate_scenario(c),
            "partition cell 64 outside the grid (cells are 0..63)");
  c.fault.partitions = {net::PartitionSpec{{-1}, sim::seconds(1), sim::seconds(2)}};
  EXPECT_EQ(validate_scenario(c),
            "partition cell -1 outside the grid (cells are 0..63)");
  c.fault.partitions = {net::PartitionSpec{{3, 4}, sim::seconds(1), sim::seconds(2)}};
  EXPECT_EQ(validate_scenario(c), "");
  c.request_timeout = 0;
  EXPECT_EQ(validate_scenario(c),
            "network partitions stall handshakes until the heal; set "
            "request_timeout");
}

TEST(ValidateScenario, ShardedEngineConstraints) {
  ScenarioConfig c;
  c.shards = 0;
  EXPECT_NE(validate_scenario(c), "");
  c = ScenarioConfig{};
  c.shards = c.rows * c.cols + 1;
  EXPECT_NE(validate_scenario(c).find("more shards than cells"),
            std::string::npos);
  // The lookahead comes from the per-link latency floors, so a zero
  // latency has no conservative window to offer.
  c = ScenarioConfig{};
  c.shards = 4;
  c.latency = 0;
  EXPECT_NE(validate_scenario(c).find("latency > 0"), std::string::npos);

  // Jitter and mobility are legal at any shard count: both draw from
  // streams keyed by stable identifiers, not by execution order.
  c = ScenarioConfig{};
  c.shards = 4;
  c.latency_jitter = sim::milliseconds(2);
  EXPECT_EQ(validate_scenario(c), "");
  c.mean_dwell_s = 45.0;
  EXPECT_EQ(validate_scenario(c), "");
  c.shards = 8;
  c.threads = 4;
  c.fault.drop_prob = 0.1;
  c.request_timeout = sim::milliseconds(400);
  EXPECT_EQ(validate_scenario(c), "");
}

}  // namespace
}  // namespace dca::runner
