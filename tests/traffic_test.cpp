// Unit tests for the workload generator: Poisson arrival statistics,
// profile shapes, thinning correctness for time-varying rates, and
// determinism/independence of the per-cell substreams.
#include <gtest/gtest.h>

#include <vector>

#include "cell/grid.hpp"
#include "sim/simulator.hpp"
#include "traffic/generator.hpp"
#include "traffic/profile.hpp"

namespace dca::traffic {
namespace {

cell::HexGrid small_grid() { return cell::HexGrid(3, 3, 1); }

TEST(Profiles, UniformIsFlat) {
  const UniformProfile p(0.25);
  EXPECT_DOUBLE_EQ(p.rate(0, 0), 0.25);
  EXPECT_DOUBLE_EQ(p.rate(8, sim::minutes(90)), 0.25);
  EXPECT_DOUBLE_EQ(p.max_rate(3), 0.25);
}

TEST(Profiles, PerCellRates) {
  const PerCellProfile p({0.1, 0.2, 0.3});
  EXPECT_DOUBLE_EQ(p.rate(1, 0), 0.2);
  EXPECT_DOUBLE_EQ(p.max_rate(2), 0.3);
}

TEST(Profiles, HotspotOnlyInsideWindowAndSet) {
  const HotspotProfile p(0.1, {4}, 5.0, sim::seconds(10), sim::seconds(20));
  EXPECT_DOUBLE_EQ(p.rate(4, sim::seconds(15)), 0.5);
  EXPECT_DOUBLE_EQ(p.rate(4, sim::seconds(5)), 0.1);   // before window
  EXPECT_DOUBLE_EQ(p.rate(4, sim::seconds(20)), 0.1);  // window end exclusive
  EXPECT_DOUBLE_EQ(p.rate(3, sim::seconds(15)), 0.1);  // not a hot cell
  EXPECT_DOUBLE_EQ(p.max_rate(4), 0.5);
  EXPECT_DOUBLE_EQ(p.max_rate(3), 0.1);
}

TEST(Profiles, RampInterpolatesLinearly) {
  const RampProfile p(0.0, 1.0, sim::seconds(0), sim::seconds(10));
  EXPECT_DOUBLE_EQ(p.rate(0, sim::seconds(0)), 0.0);
  EXPECT_DOUBLE_EQ(p.rate(0, sim::seconds(5)), 0.5);
  EXPECT_DOUBLE_EQ(p.rate(0, sim::seconds(10)), 1.0);
  EXPECT_DOUBLE_EQ(p.rate(0, sim::seconds(99)), 1.0);
  EXPECT_DOUBLE_EQ(p.max_rate(0), 1.0);
}

TEST(Profiles, BlobPeaksAtCenterAndDecays) {
  const cell::HexGrid grid(7, 7, 2);
  const cell::CellId center = 3 * 7 + 3;
  const BlobProfile p(grid, 0.1, 1.0, center, 1.5);
  EXPECT_NEAR(p.rate(center, 0), 1.1, 1e-12);
  // Monotone decay with distance from the blob center.
  double prev = p.rate(center, 0);
  for (int d = 1; d <= 3; ++d) {
    // Find a cell at exactly distance d.
    for (cell::CellId c = 0; c < grid.n_cells(); ++c) {
      if (grid.distance(c, center) == d) {
        EXPECT_LT(p.rate(c, 0), prev);
        prev = p.rate(c, 0);
        break;
      }
    }
  }
  // Far cells approach the base rate.
  EXPECT_NEAR(p.rate(0, 0), 0.1, 0.01);
}

TEST(Profiles, DiurnalOscillatesAroundBase) {
  const DiurnalProfile p(1.0, 0.5, sim::minutes(24));
  EXPECT_NEAR(p.rate(0, 0), 1.0, 1e-9);                    // phase 0
  EXPECT_NEAR(p.rate(0, sim::minutes(6)), 1.5, 1e-9);      // peak
  EXPECT_NEAR(p.rate(0, sim::minutes(18)), 0.5, 1e-9);     // trough
  EXPECT_NEAR(p.rate(0, sim::minutes(24)), 1.0, 1e-9);     // periodic
  EXPECT_DOUBLE_EQ(p.max_rate(0), 1.5);
}

TEST(Profiles, MovingHotspotStepsThroughRoute) {
  const MovingHotspotProfile p(0.1, 10.0, {4, 7, 9}, sim::minutes(2));
  EXPECT_DOUBLE_EQ(p.rate(4, sim::minutes(1)), 1.0);
  EXPECT_DOUBLE_EQ(p.rate(7, sim::minutes(1)), 0.1);
  EXPECT_DOUBLE_EQ(p.rate(7, sim::minutes(3)), 1.0);
  EXPECT_DOUBLE_EQ(p.rate(9, sim::minutes(5)), 1.0);
  EXPECT_DOUBLE_EQ(p.rate(4, sim::minutes(6)), 1.0) << "route wraps";
  EXPECT_DOUBLE_EQ(p.max_rate(9), 1.0);
  EXPECT_DOUBLE_EQ(p.max_rate(5), 0.1);
}

TEST(Generator, PoissonCountIsApproximatelyRateTimesTime) {
  sim::Simulator simulator;
  const auto grid = small_grid();
  const UniformProfile profile(0.5);  // calls/s/cell
  std::uint64_t arrivals = 0;
  TrafficSource src(simulator, grid, profile, 60.0, /*seed=*/7,
                    [&](const CallSpec&) { ++arrivals; });
  src.start(sim::minutes(30));
  simulator.run_to_quiescence();
  // E = 9 cells * 0.5/s * 1800 s = 8100; allow 5 sigma (~450).
  EXPECT_NEAR(static_cast<double>(arrivals), 8100.0, 450.0);
  EXPECT_EQ(src.emitted(), arrivals);
}

TEST(Generator, HoldingTimesHaveRequestedMean) {
  sim::Simulator simulator;
  const auto grid = small_grid();
  const UniformProfile profile(1.0);
  double sum = 0.0;
  std::uint64_t n = 0;
  TrafficSource src(simulator, grid, profile, 120.0, 3, [&](const CallSpec& c) {
    sum += sim::to_seconds(c.holding);
    ++n;
  });
  src.start(sim::minutes(20));
  simulator.run_to_quiescence();
  ASSERT_GT(n, 1000u);
  EXPECT_NEAR(sum / static_cast<double>(n), 120.0, 10.0);
}

TEST(Generator, ArrivalsRespectHorizonAndAreOrdered) {
  sim::Simulator simulator;
  const auto grid = small_grid();
  const UniformProfile profile(2.0);
  std::vector<sim::SimTime> times;
  TrafficSource src(simulator, grid, profile, 10.0, 5,
                    [&](const CallSpec& c) { times.push_back(c.arrival); });
  src.start(sim::seconds(100));
  simulator.run_to_quiescence();
  ASSERT_FALSE(times.empty());
  for (std::size_t i = 1; i < times.size(); ++i) EXPECT_GE(times[i], times[i - 1]);
  EXPECT_LT(times.back(), sim::seconds(100));
}

TEST(Generator, CallIdsAreUniqueAndDense) {
  sim::Simulator simulator;
  const auto grid = small_grid();
  const UniformProfile profile(1.0);
  std::vector<CallId> ids;
  TrafficSource src(simulator, grid, profile, 10.0, 5,
                    [&](const CallSpec& c) { ids.push_back(c.id); });
  src.start(sim::seconds(60));
  simulator.run_to_quiescence();
  for (std::size_t i = 0; i < ids.size(); ++i) EXPECT_EQ(ids[i], i + 1);
}

TEST(Generator, DeterministicGivenSeed) {
  const auto run = [](std::uint64_t seed) {
    sim::Simulator simulator;
    const auto grid = small_grid();
    const UniformProfile profile(0.7);
    std::vector<std::pair<sim::SimTime, cell::CellId>> trace;
    TrafficSource src(simulator, grid, profile, 30.0, seed,
                      [&](const CallSpec& c) { trace.emplace_back(c.arrival, c.cell); });
    src.start(sim::minutes(5));
    simulator.run_to_quiescence();
    return trace;
  };
  EXPECT_EQ(run(11), run(11));
  EXPECT_NE(run(11), run(12));
}

TEST(Generator, ThinningMatchesHotspotRates) {
  // Compare in-window vs out-of-window arrival counts at the hot cell.
  sim::Simulator simulator;
  const auto grid = small_grid();
  const sim::SimTime w0 = sim::minutes(30), w1 = sim::minutes(60);
  const HotspotProfile profile(0.2, {0}, 4.0, w0, w1);
  std::uint64_t inside = 0, outside = 0;
  TrafficSource src(simulator, grid, profile, 10.0, 21, [&](const CallSpec& c) {
    if (c.cell != 0) return;
    if (c.arrival >= w0 && c.arrival < w1) {
      ++inside;
    } else {
      ++outside;
    }
  });
  src.start(sim::minutes(90));
  simulator.run_to_quiescence();
  // Expected: inside ~ 0.8/s * 1800 = 1440; outside ~ 0.2/s * 3600 = 720.
  EXPECT_NEAR(static_cast<double>(inside), 1440.0, 200.0);
  EXPECT_NEAR(static_cast<double>(outside), 720.0, 150.0);
}

TEST(Generator, ZeroRateCellProducesNothing) {
  sim::Simulator simulator;
  const auto grid = small_grid();
  const PerCellProfile profile({0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0});
  std::uint64_t from_silent = 0, from_active = 0;
  TrafficSource src(simulator, grid, profile, 10.0, 2, [&](const CallSpec& c) {
    (c.cell == 1 ? from_active : from_silent)++;
  });
  src.start(sim::minutes(10));
  simulator.run_to_quiescence();
  EXPECT_EQ(from_silent, 0u);
  EXPECT_GT(from_active, 100u);
}

}  // namespace
}  // namespace dca::traffic
