// Protocol-timer semantics of AllocatorNode::arm_timer after the TimerFn
// conversion: the timer callback crosses NodeEnv::schedule_in as an
// inline-only sim::TimerFn (no std::function, no allocation), and a
// generation counter makes every cancellation path safe — including
// environments that cannot cancel at all, where superseded events still
// fire and must be absorbed.
#include <gtest/gtest.h>

#include <utility>

#include "cell/grid.hpp"
#include "cell/reuse.hpp"
#include "mock_env.hpp"
#include "proto/allocator.hpp"
#include "sim/simulator.hpp"
#include "sim/small_fn.hpp"

namespace {

using namespace dca;

// A TimerFn must nest inside the kernel's EventFn when an environment
// forwards it to a simulator (World::schedule_in relies on this).
static_assert(sim::EventFn::fits_inline<sim::TimerFn>(),
              "TimerFn must fit inside EventFn's inline buffer");

/// Simulator-backed NodeEnv for timer tests. `can_cancel` false models an
/// environment with lazy (or absent) cancellation: cancel_scheduled is
/// ignored and superseded events still fire, so only the node's
/// generation counter keeps stale callbacks quiet.
class TimerEnv final : public proto::NodeEnv {
 public:
  explicit TimerEnv(bool can_cancel) : can_cancel_(can_cancel), rng_(1) {}

  [[nodiscard]] sim::SimTime now() const override { return sim.now(); }
  void send(net::Message) override {}
  [[nodiscard]] sim::Duration latency_bound() const override {
    return sim::milliseconds(5);
  }
  void notify_acquired(cell::CellId, std::uint64_t, cell::ChannelId,
                       proto::Outcome, int) override {}
  void notify_blocked(cell::CellId, std::uint64_t, proto::Outcome,
                      int) override {}
  void notify_released(cell::CellId, cell::ChannelId) override {}
  void notify_reassigned(cell::CellId, cell::ChannelId,
                         cell::ChannelId) override {}
  sim::RngStream& rng(cell::CellId) override { return rng_; }

  sim::EventId schedule_in(sim::Duration delay, sim::TimerFn fn) override {
    ++timers_scheduled;
    return sim.schedule_in(delay, std::move(fn));
  }
  void cancel_scheduled(sim::EventId id) override {
    ++cancels_requested;
    if (can_cancel_) sim.cancel(id);
  }

  sim::Simulator sim;
  int timers_scheduled = 0;
  int cancels_requested = 0;

 private:
  bool can_cancel_;
  sim::RngStream rng_;
};

/// Minimal node exposing the protected timer interface.
class TimerProbe final : public proto::AllocatorNode {
 public:
  using AllocatorNode::AllocatorNode;

  void arm(sim::Duration d) {
    arm_timer(d, [this] {
      ++fires;
      last_fire = env().now();
    });
  }
  /// First firing re-arms for `second` more microseconds.
  void arm_chained(sim::Duration first, sim::Duration second) {
    arm_timer(first, [this, second] {
      ++fires;
      last_fire = env().now();
      arm(second);
    });
  }
  void disarm() { disarm_timer(); }

  void on_message(const net::Message&) override {}

  int fires = 0;
  sim::SimTime last_fire = -1;

 protected:
  void start_request(std::uint64_t) override {}
  void on_release(cell::ChannelId, std::uint64_t) override {}
};

class TimerTest : public ::testing::Test {
 protected:
  TimerTest() : grid_(8, 8, 2), plan_(cell::ReusePlan::cluster(grid_, 21, 7)) {}

  TimerProbe make_probe(proto::NodeEnv& env,
                        sim::Duration timeout = sim::milliseconds(100)) {
    return TimerProbe(
        proto::NodeContext{0, &grid_, &plan_, &env, proto::Resilience{timeout}});
  }

  cell::HexGrid grid_;
  cell::ReusePlan plan_;
};

TEST_F(TimerTest, FiresOnceAtDeadline) {
  TimerEnv env(/*can_cancel=*/true);
  TimerProbe node = make_probe(env);
  node.arm(1000);
  env.sim.run_to_quiescence();
  EXPECT_EQ(node.fires, 1);
  EXPECT_EQ(node.last_fire, 1000);
  env.sim.run_to_quiescence();  // nothing left to fire
  EXPECT_EQ(node.fires, 1);
}

TEST_F(TimerTest, DisarmBeforeFireSuppressesCallback) {
  TimerEnv env(/*can_cancel=*/true);
  TimerProbe node = make_probe(env);
  node.arm(1000);
  node.disarm();
  env.sim.run_to_quiescence();
  EXPECT_EQ(node.fires, 0);
  EXPECT_EQ(env.cancels_requested, 1);
}

TEST_F(TimerTest, RearmReplacesPendingDeadline) {
  TimerEnv env(/*can_cancel=*/true);
  TimerProbe node = make_probe(env);
  node.arm(1000);
  node.arm(5000);  // supersedes: single-timer discipline
  env.sim.run_to_quiescence();
  EXPECT_EQ(node.fires, 1);
  EXPECT_EQ(node.last_fire, 5000);
}

TEST_F(TimerTest, GenerationAbsorbsRearmWhenCancelIsNoOp) {
  // The environment cannot cancel, so the superseded event at t=1000
  // still executes — the generation check must discard it, leaving only
  // the second deadline to fire.
  TimerEnv env(/*can_cancel=*/false);
  TimerProbe node = make_probe(env);
  node.arm(1000);
  node.arm(3000);
  env.sim.run_to_quiescence();
  EXPECT_EQ(node.fires, 1);
  EXPECT_EQ(node.last_fire, 3000);
  EXPECT_EQ(env.timers_scheduled, 2);
}

TEST_F(TimerTest, RearmFromInsideTheFiringCallback) {
  // A callback that re-arms while its own firing is being consumed: the
  // in-flight generation bump must not suppress the new arming.
  TimerEnv env(/*can_cancel=*/true);
  TimerProbe node = make_probe(env);
  node.arm_chained(1000, 500);
  env.sim.run_to_quiescence();
  EXPECT_EQ(node.fires, 2);
  EXPECT_EQ(node.last_fire, 1500);
}

TEST_F(TimerTest, DisarmAfterFireIsStaleHandleSafe) {
  // Once the timer fired, its EventId is dead. A later disarm must not
  // try to cancel the stale handle, and a fresh arming must still work.
  TimerEnv env(/*can_cancel=*/true);
  TimerProbe node = make_probe(env);
  node.arm(1000);
  env.sim.run_to_quiescence();
  ASSERT_EQ(node.fires, 1);
  node.disarm();
  EXPECT_EQ(env.cancels_requested, 0);  // handle was already invalidated
  node.arm(2000);
  env.sim.run_to_quiescence();
  EXPECT_EQ(node.fires, 2);
  EXPECT_EQ(node.last_fire, 3000);
}

TEST_F(TimerTest, TimeoutsDisabledMeansNoTimer) {
  TimerEnv env(/*can_cancel=*/true);
  TimerProbe node = make_probe(env, /*timeout=*/0);
  node.arm(1000);
  env.sim.run_to_quiescence();
  EXPECT_EQ(node.fires, 0);
  EXPECT_EQ(env.timers_scheduled, 0);
}

TEST_F(TimerTest, DefaultEnvironmentDropsTimersSafely) {
  // MockEnv keeps NodeEnv's default schedule_in (returns kInvalidEventId):
  // arming is a silent no-op and disarming the never-scheduled timer is
  // harmless.
  testutil::MockEnv env;
  TimerProbe node = make_probe(env);
  node.arm(1000);
  node.disarm();
  node.arm(500);
  EXPECT_EQ(node.fires, 0);
}

}  // namespace
