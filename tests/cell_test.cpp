// Unit tests for the cellular geometry substrate: hex coordinates, grid
// structure, interference regions (Fig. 1 of the paper), channel sets, and
// reuse plans (primary-set assignment).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cell/grid.hpp"
#include "cell/hex.hpp"
#include "cell/reuse.hpp"
#include "cell/spectrum.hpp"

namespace dca::cell {
namespace {

// ---------------------------------------------------------------- hex ----

TEST(Hex, DistanceIsAMetric) {
  const Axial a{0, 0}, b{2, -1}, c{-1, 3};
  EXPECT_EQ(hex_distance(a, a), 0);
  EXPECT_EQ(hex_distance(a, b), hex_distance(b, a));
  EXPECT_LE(hex_distance(a, c), hex_distance(a, b) + hex_distance(b, c));
}

TEST(Hex, UnitNeighborsAreAtDistanceOne) {
  for (const Axial d : kHexDirections) {
    EXPECT_EQ(hex_distance(Axial{0, 0}, d), 1);
  }
}

TEST(Hex, KnownDistances) {
  EXPECT_EQ(hex_distance({0, 0}, {2, 1}), 3);
  EXPECT_EQ(hex_distance({0, 0}, {-1, 3}), 3);
  EXPECT_EQ(hex_distance({0, 0}, {3, -1}), 3);
  EXPECT_EQ(hex_distance({0, 0}, {2, -1}), 2);
}

TEST(Hex, Rotate60PreservesDistance) {
  const Axial v{2, 1};
  const Axial r = rotate60(v);
  EXPECT_EQ(hex_distance({0, 0}, r), hex_distance({0, 0}, v));
  // Six rotations return to the start.
  Axial x = v;
  for (int i = 0; i < 6; ++i) x = rotate60(x);
  EXPECT_EQ(x, v);
}

TEST(Hex, CenterGeometryMatchesLatticeDistance) {
  // Euclidean distance between adjacent hex centers is sqrt(3) for
  // circumradius-1 pointy-top hexes.
  const auto a = hex_center({0, 0});
  const auto b = hex_center({1, 0});
  const double dx = a.x - b.x, dy = a.y - b.y;
  EXPECT_NEAR(dx * dx + dy * dy, 3.0, 1e-9);
}

// --------------------------------------------------------------- grid ----

TEST(Grid, DimensionsAndIds) {
  const HexGrid g(4, 5, 2);
  EXPECT_EQ(g.n_cells(), 20);
  for (CellId c = 0; c < g.n_cells(); ++c) {
    EXPECT_TRUE(g.valid(c));
    EXPECT_EQ(g.cell_at(g.axial(c)), c);
  }
  EXPECT_FALSE(g.valid(-1));
  EXPECT_FALSE(g.valid(20));
  EXPECT_EQ(g.cell_at(Axial{100, 100}), kNoCell);
}

TEST(Grid, InteriorCellHasSixNeighbors) {
  const HexGrid g(5, 5, 1);
  const CellId center = 2 * 5 + 2;
  EXPECT_EQ(g.neighbors(center).size(), 6u);
}

TEST(Grid, CornerCellsHaveFewerNeighbors) {
  const HexGrid g(5, 5, 1);
  EXPECT_LT(g.neighbors(0).size(), 6u);
  EXPECT_GE(g.neighbors(0).size(), 2u);
}

TEST(Grid, NeighborsAreExactlyDistanceOne) {
  const HexGrid g(6, 6, 2);
  for (CellId c = 0; c < g.n_cells(); ++c) {
    for (const CellId n : g.neighbors(c)) EXPECT_EQ(g.distance(c, n), 1);
  }
}

TEST(Grid, InterferenceRegionIsAllWithinRadius) {
  const HexGrid g(6, 6, 2);
  for (CellId a = 0; a < g.n_cells(); ++a) {
    std::set<CellId> in(g.interference(a).begin(), g.interference(a).end());
    for (CellId b = 0; b < g.n_cells(); ++b) {
      if (a == b) continue;
      EXPECT_EQ(in.contains(b), g.distance(a, b) <= 2)
          << "cells " << a << "," << b;
    }
  }
}

TEST(Grid, InterferenceIsSymmetric) {
  const HexGrid g(7, 7, 2);
  for (CellId a = 0; a < g.n_cells(); ++a) {
    for (const CellId b : g.interference(a)) {
      const auto in_b = g.interference(b);
      EXPECT_TRUE(std::find(in_b.begin(), in_b.end(), a) != in_b.end());
    }
  }
}

TEST(Grid, InteriorInterferenceDegreeIs18ForRadius2) {
  const HexGrid g(8, 8, 2);
  // A cell at least 2 away from every border sees the full 6 + 12 = 18.
  const CellId center = 4 * 8 + 4;
  EXPECT_EQ(g.interference(center).size(), 18u);
  EXPECT_EQ(g.max_interference_degree(), 18);
}

TEST(Grid, SingleCellGridHasNoNeighbors) {
  const HexGrid g(1, 1, 2);
  EXPECT_EQ(g.n_cells(), 1);
  EXPECT_TRUE(g.neighbors(0).empty());
  EXPECT_TRUE(g.interference(0).empty());
}

// --------------------------------------------------------- channel set ----

TEST(ChannelSet, InsertEraseContains) {
  ChannelSet s(70);
  EXPECT_TRUE(s.empty());
  s.insert(0);
  s.insert(69);
  s.insert(33);
  EXPECT_TRUE(s.contains(0));
  EXPECT_TRUE(s.contains(69));
  EXPECT_FALSE(s.contains(34));
  EXPECT_EQ(s.size(), 3);
  s.erase(33);
  EXPECT_FALSE(s.contains(33));
  EXPECT_EQ(s.size(), 2);
}

TEST(ChannelSet, ContainsOutOfUniverseIsFalse) {
  ChannelSet s(10);
  EXPECT_FALSE(s.contains(-1));
  EXPECT_FALSE(s.contains(10));
  EXPECT_FALSE(s.contains(kNoChannel));
}

TEST(ChannelSet, AllAndComplement) {
  const ChannelSet all = ChannelSet::all(70);
  EXPECT_EQ(all.size(), 70);
  ChannelSet s(70);
  s.insert(5);
  const ChannelSet c = s.complement();
  EXPECT_EQ(c.size(), 69);
  EXPECT_FALSE(c.contains(5));
  EXPECT_TRUE((s | c) == all);
}

TEST(ChannelSet, FirstAndNextAfterIterateInOrder) {
  ChannelSet s(128);
  s.insert(3);
  s.insert(64);
  s.insert(127);
  EXPECT_EQ(s.first(), 3);
  EXPECT_EQ(s.next_after(3), 64);
  EXPECT_EQ(s.next_after(64), 127);
  EXPECT_EQ(s.next_after(127), kNoChannel);
  EXPECT_EQ(s.to_vector(), (std::vector<ChannelId>{3, 64, 127}));
}

TEST(ChannelSet, EmptySetIteration) {
  const ChannelSet s(64);
  EXPECT_EQ(s.first(), kNoChannel);
  EXPECT_EQ(s.next_after(-1), kNoChannel);
  EXPECT_TRUE(s.to_vector().empty());
}

TEST(ChannelSet, SetAlgebra) {
  ChannelSet a(32), b(32);
  a.insert(1);
  a.insert(2);
  a.insert(3);
  b.insert(2);
  b.insert(4);
  EXPECT_EQ((a | b).to_vector(), (std::vector<ChannelId>{1, 2, 3, 4}));
  EXPECT_EQ((a & b).to_vector(), (std::vector<ChannelId>{2}));
  EXPECT_EQ((a - b).to_vector(), (std::vector<ChannelId>{1, 3}));
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE((a - b).intersects(b));
}

TEST(ChannelSet, ToStringRendersMembers) {
  ChannelSet s(16);
  s.insert(1);
  s.insert(9);
  EXPECT_EQ(s.to_string(), "{1,9}");
  EXPECT_EQ(ChannelSet(8).to_string(), "{}");
}

// --------------------------------------------------------------- reuse ----

TEST(Reuse, Cluster7IsValidOnRadius2Grid) {
  const HexGrid g(8, 8, 2);
  const ReusePlan plan = ReusePlan::cluster(g, 70, 7);
  EXPECT_EQ(plan.n_colors(), 7);
  EXPECT_TRUE(plan.validate(g));
}

TEST(Reuse, Cluster3IsValidOnRadius1Grid) {
  const HexGrid g(6, 6, 1);
  const ReusePlan plan = ReusePlan::cluster(g, 30, 3);
  EXPECT_EQ(plan.n_colors(), 3);
  EXPECT_TRUE(plan.validate(g));
}

TEST(Reuse, PrimarySetsPartitionTheSpectrum) {
  const HexGrid g(8, 8, 2);
  const ReusePlan plan = ReusePlan::cluster(g, 70, 7);
  // Each cell owns exactly 70/7 = 10 channels.
  for (CellId c = 0; c < g.n_cells(); ++c) {
    EXPECT_EQ(plan.primary(c).size(), 10);
  }
  // Interfering cells have disjoint primary sets.
  for (CellId a = 0; a < g.n_cells(); ++a) {
    for (const CellId b : g.interference(a)) {
      EXPECT_FALSE(plan.primary(a).intersects(plan.primary(b)));
    }
  }
}

TEST(Reuse, UnevenSpectrumStillPartitions) {
  const HexGrid g(8, 8, 2);
  const ReusePlan plan = ReusePlan::cluster(g, 72, 7);  // 72 = 7*10 + 2
  EXPECT_TRUE(plan.validate(g));
  int total = 0;
  std::set<int> seen_sizes;
  for (int col = 0; col < 7; ++col) {
    // Find one cell of this colour and count its primaries.
    for (CellId c = 0; c < g.n_cells(); ++c) {
      if (plan.color_of(c) == col) {
        total += plan.primary(c).size();
        seen_sizes.insert(plan.primary(c).size());
        break;
      }
    }
  }
  EXPECT_EQ(total, 72);
  for (const int s : seen_sizes) EXPECT_TRUE(s == 10 || s == 11);
}

TEST(Reuse, IsPrimaryMatchesPrimarySet) {
  const HexGrid g(4, 4, 2);
  const ReusePlan plan = ReusePlan::cluster(g, 21, 7);
  for (CellId c = 0; c < g.n_cells(); ++c) {
    for (ChannelId ch = 0; ch < 21; ++ch) {
      EXPECT_EQ(plan.is_primary(c, ch), plan.primary(c).contains(ch));
    }
  }
}

TEST(Reuse, PrimaryCellsOfChannelAgreeWithColors) {
  const HexGrid g(6, 6, 2);
  const ReusePlan plan = ReusePlan::cluster(g, 70, 7);
  for (ChannelId ch = 0; ch < 7; ++ch) {
    for (const CellId c : plan.primary_cells_of(ch)) {
      EXPECT_EQ(plan.color_of(c), plan.color_of_channel(ch));
    }
  }
}

TEST(Reuse, PrimariesInInterferenceAreCorrect) {
  const HexGrid g(8, 8, 2);
  const ReusePlan plan = ReusePlan::cluster(g, 70, 7);
  const CellId center = 4 * 8 + 4;
  for (ChannelId ch = 0; ch < 7; ++ch) {
    const auto np = plan.primaries_in_interference(g, center, ch);
    for (const CellId p : np) {
      EXPECT_TRUE(g.interferes(center, p));
      EXPECT_TRUE(plan.is_primary(p, ch));
    }
    if (plan.color_of_channel(ch) != plan.color_of(center)) {
      // Interior cells see every other colour at least once within radius 2
      // (covering property of the cluster-7 pattern).
      EXPECT_GE(np.size(), 1u);
    }
  }
}

TEST(Reuse, GreedyColoringIsProperOnAnyRadius) {
  for (const int radius : {1, 2, 3}) {
    const HexGrid g(7, 9, radius);
    const ReusePlan plan = ReusePlan::greedy(g, 63);
    EXPECT_TRUE(plan.validate(g)) << "radius " << radius;
    // Greedy needs at least as many colours as the largest clique lower
    // bound (radius-1 cliques of size 3 exist everywhere).
    EXPECT_GE(plan.n_colors(), 3);
  }
}

TEST(Reuse, Cluster7CoChannelCellsAreAtLeast3Apart) {
  const HexGrid g(10, 10, 2);
  const ReusePlan plan = ReusePlan::cluster(g, 70, 7);
  for (CellId a = 0; a < g.n_cells(); ++a) {
    for (CellId b = a + 1; b < g.n_cells(); ++b) {
      if (plan.color_of(a) == plan.color_of(b)) {
        EXPECT_GE(g.distance(a, b), 3);
      }
    }
  }
}

// ----------------------------------------------------------- toroidal ----

TEST(Torus, EveryCellHasFullInteriorNeighborhood) {
  const HexGrid g(14, 14, 2, Wrap::kToroidal);
  for (CellId c = 0; c < g.n_cells(); ++c) {
    EXPECT_EQ(g.neighbors(c).size(), 6u) << "cell " << c;
    EXPECT_EQ(g.interference(c).size(), 18u) << "cell " << c;
  }
  EXPECT_EQ(g.max_interference_degree(), 18);
  EXPECT_DOUBLE_EQ(g.mean_interference_degree(), 18.0);
}

TEST(Torus, DistanceWrapsAroundBothSeams) {
  const HexGrid g(14, 14, 2, Wrap::kToroidal);
  // First and last column of row 0 are adjacent through the wrap.
  EXPECT_EQ(g.distance(0, 13), 1);
  // First and last row are adjacent through the vertical wrap.
  EXPECT_LE(g.distance(0, 13 * 14), 2);
  // Distance never exceeds the bounded-grid distance.
  const HexGrid bounded(14, 14, 2, Wrap::kBounded);
  for (CellId a = 0; a < g.n_cells(); a += 17) {
    for (CellId b = 0; b < g.n_cells(); b += 13) {
      EXPECT_LE(g.distance(a, b), bounded.distance(a, b));
    }
  }
}

TEST(Torus, DistanceIsSymmetric) {
  const HexGrid g(14, 14, 2, Wrap::kToroidal);
  for (CellId a = 0; a < g.n_cells(); a += 7) {
    for (CellId b = 0; b < g.n_cells(); b += 11) {
      EXPECT_EQ(g.distance(a, b), g.distance(b, a)) << a << "," << b;
    }
  }
}

TEST(Torus, InterferenceSymmetricAcrossSeams) {
  const HexGrid g(14, 14, 2, Wrap::kToroidal);
  for (CellId a = 0; a < g.n_cells(); ++a) {
    for (const CellId b : g.interference(a)) {
      const auto in_b = g.interference(b);
      EXPECT_TRUE(std::find(in_b.begin(), in_b.end(), a) != in_b.end());
    }
  }
}

TEST(Torus, Cluster7ColoringStaysProperWhenDimensionsAlign) {
  // rows % 14 == 0 and cols % 7 == 0 make the linear-form colouring
  // consistent across both seams.
  const HexGrid g(14, 14, 2, Wrap::kToroidal);
  const ReusePlan plan = ReusePlan::cluster(g, 70, 7);
  EXPECT_TRUE(plan.validate(g));
}

TEST(Torus, Cluster7ColoringBreaksOnMisalignedDimensions) {
  // cols = 8 is not a multiple of 7: the colouring conflicts across the
  // horizontal seam and validation must catch it.
  const HexGrid g(14, 8, 2, Wrap::kToroidal);
  const ReusePlan plan = ReusePlan::cluster(g, 70, 7);
  EXPECT_FALSE(plan.validate(g));
}

TEST(Torus, GreedyColoringWorksOnAnyTorus) {
  const HexGrid g(8, 9, 2, Wrap::kToroidal);
  const ReusePlan plan = ReusePlan::greedy(g, 63);
  EXPECT_TRUE(plan.validate(g));
}

// The geometric property the advanced-update scheme relies on: for interior
// cells, every pair of interfering cells shares, for every foreign colour,
// a primary of that colour visible to both (see DESIGN.md).
TEST(Reuse, InteriorArbitrationCoverageHolds) {
  const HexGrid g(12, 12, 2);
  const ReusePlan plan = ReusePlan::cluster(g, 70, 7);
  // Pick a deep-interior cell: at offset (5,5), at least 4 from any edge.
  const CellId c = 5 * 12 + 5;
  for (const CellId other : g.interference(c)) {
    for (int k = 0; k < 7; ++k) {
      if (k == plan.color_of(c) || k == plan.color_of(other)) continue;
      bool found = false;
      for (const CellId p : g.interference(c)) {
        if (plan.color_of(p) == k && (p == other || g.interferes(p, other))) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "cell " << c << " other " << other << " colour " << k;
    }
  }
}

}  // namespace
}  // namespace dca::cell
