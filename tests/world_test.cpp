// Tests for the runner substrate: world assembly, the call lifecycle,
// ground-truth invariant tracking, mobility/handoff, determinism, and the
// experiment drivers.
#include <gtest/gtest.h>

#include "runner/experiment.hpp"
#include "runner/world.hpp"
#include "test_util.hpp"
#include "traffic/profile.hpp"

namespace dca {
namespace {

using runner::RunResult;
using runner::ScenarioConfig;
using runner::Scheme;
using runner::World;
using testutil::offer_call;
using testutil::small_config;

TEST(World, GroundTruthMirrorsNodeUse) {
  const auto cfg = small_config();
  World w(cfg, Scheme::kAdaptive);
  traffic::CallId id = 1;
  for (cell::CellId c = 0; c < w.grid().n_cells(); c += 4)
    offer_call(w, c, id++, sim::seconds(30));
  w.simulator().run_until(sim::seconds(5));
  for (cell::CellId c = 0; c < w.grid().n_cells(); ++c) {
    EXPECT_TRUE(w.ground_truth_use(c) == w.node(c).in_use()) << "cell " << c;
  }
}

TEST(World, CallsEndAndChannelsReturn) {
  const auto cfg = small_config();
  World w(cfg, Scheme::kFca);
  offer_call(w, 0, 1, sim::seconds(10));
  EXPECT_EQ(w.active_calls(), 1u);
  w.simulator().run_to_quiescence();
  EXPECT_EQ(w.active_calls(), 0u);
  EXPECT_TRUE(w.ground_truth_use(0).empty());
  EXPECT_EQ(w.simulator().now(), sim::seconds(10));
}

TEST(World, BlockedCallsAreNotActive) {
  const auto cfg = small_config();
  World w(cfg, Scheme::kFca);
  for (int i = 0; i < 5; ++i) offer_call(w, 0, static_cast<traffic::CallId>(i + 1),
                                         sim::seconds(10));
  // FCA corner cell has 3 primaries: exactly 3 active.
  EXPECT_EQ(w.active_calls(), 3u);
}

TEST(World, SchemeNamesAreDistinct) {
  std::set<std::string> names;
  for (const Scheme s : runner::kAllSchemes) names.insert(runner::scheme_name(s));
  EXPECT_EQ(names.size(), std::size(runner::kAllSchemes));
}

TEST(World, HandoffMovesCallToNeighbor) {
  auto cfg = small_config();
  cfg.mean_dwell_s = 20.0;  // handoffs roughly every 20 s
  World w(cfg, Scheme::kFca);
  offer_call(w, testutil::center_cell(cfg), 1, sim::minutes(10));
  w.simulator().run_to_quiescence();
  // The call lived 10 minutes with ~30 expected handoffs; records beyond
  // the first must be handoff requests for the same call id.
  const auto& recs = w.collector().records();
  ASSERT_GT(recs.size(), 3u);
  int handoffs = 0;
  for (const auto& r : recs) {
    EXPECT_EQ(r.call, 1u);
    if (r.is_handoff) ++handoffs;
  }
  EXPECT_EQ(handoffs, static_cast<int>(recs.size()) - 1);
  EXPECT_TRUE(w.quiescent());
  EXPECT_EQ(w.interference_violations(), 0u);
}

TEST(World, HandoffFailureDropsCall) {
  auto cfg = small_config();
  cfg.mean_dwell_s = 5.0;
  World w(cfg, Scheme::kFca);
  // Fill every cell completely so any handoff must fail.
  traffic::CallId id = 1;
  for (cell::CellId c = 0; c < w.grid().n_cells(); ++c)
    for (int i = 0; i < 3; ++i) offer_call(w, c, id++, sim::minutes(2));
  w.simulator().run_to_quiescence();
  const auto agg = w.collector().aggregate(cfg.latency);
  EXPECT_GT(agg.handoff_failures, 0u);
  EXPECT_TRUE(w.quiescent());
}

TEST(Experiment, RunUniformProducesConsistentAggregate) {
  auto cfg = small_config();
  cfg.duration = sim::minutes(5);
  const RunResult r = runner::run_uniform(cfg, Scheme::kAdaptive, 0.5);
  EXPECT_TRUE(r.quiescent);
  EXPECT_EQ(r.violations, 0u);
  EXPECT_GT(r.agg.offered, 100u);
  EXPECT_EQ(r.agg.offered, r.agg.acquired + r.agg.blocked + r.agg.starved);
  EXPECT_GE(r.agg.drop_rate(), 0.0);
  EXPECT_LE(r.agg.drop_rate(), 1.0);
}

TEST(Experiment, DeterministicAcrossRuns) {
  auto cfg = small_config();
  cfg.duration = sim::minutes(5);
  const RunResult a = runner::run_uniform(cfg, Scheme::kAdaptive, 0.7);
  const RunResult b = runner::run_uniform(cfg, Scheme::kAdaptive, 0.7);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.executed_events, b.executed_events);
  EXPECT_EQ(a.agg.offered, b.agg.offered);
  EXPECT_EQ(a.agg.acquired, b.agg.acquired);
  EXPECT_DOUBLE_EQ(a.agg.delay_us.mean(), b.agg.delay_us.mean());
}

TEST(Experiment, SeedChangesTrajectory) {
  auto cfg = small_config();
  cfg.duration = sim::minutes(5);
  const RunResult a = runner::run_uniform(cfg, Scheme::kBasicUpdate, 0.7);
  cfg.seed = 999;
  const RunResult b = runner::run_uniform(cfg, Scheme::kBasicUpdate, 0.7);
  EXPECT_NE(a.executed_events, b.executed_events);
}

TEST(Experiment, SweepCoversAllPointsAndMatchesSequential) {
  auto cfg = small_config();
  cfg.duration = sim::minutes(2);
  const std::vector<Scheme> schemes{Scheme::kFca, Scheme::kAdaptive};
  const std::vector<double> rhos{0.3, 0.9};
  const auto seq = runner::sweep_uniform(cfg, schemes, rhos, 1);
  const auto par = runner::sweep_uniform(cfg, schemes, rhos, 4);
  ASSERT_EQ(seq.size(), 4u);
  ASSERT_EQ(par.size(), 4u);
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].scheme, par[i].scheme);
    EXPECT_DOUBLE_EQ(seq[i].rho, par[i].rho);
    EXPECT_EQ(seq[i].result.total_messages, par[i].result.total_messages)
        << "thread partition must not change results";
    EXPECT_EQ(seq[i].result.executed_events, par[i].result.executed_events);
  }
}

TEST(Experiment, HotspotRunsAndStaysSafe) {
  auto cfg = small_config();
  cfg.duration = sim::minutes(6);
  const RunResult r = runner::run_hotspot(cfg, Scheme::kAdaptive, 0.3, 4.0,
                                          sim::minutes(2), sim::minutes(4));
  EXPECT_EQ(r.violations, 0u);
  EXPECT_TRUE(r.quiescent);
  EXPECT_GT(r.agg.offered, 0u);
}

TEST(Experiment, ArrivalRateForLoadInverts) {
  ScenarioConfig cfg;
  cfg.n_channels = 70;
  cfg.cluster = 7;
  cfg.mean_holding_s = 180.0;
  // rho = 1.0 => lambda * 180 = 10 erlang.
  EXPECT_NEAR(cfg.arrival_rate_for_load(1.0) * cfg.mean_holding_s, 10.0, 1e-9);
}

}  // namespace
}  // namespace dca
