// Cross-engine determinism for the non-default allocation policies: a
// policy plugs into both engines through the same NodeContext seam, so a
// policied run must stay a pure function of the scenario — bit-identical
// across shard counts and worker thread counts, full structured trace
// included. Also checks the proof policies actually change behaviour
// (otherwise a wiring regression that drops the policy would pass the
// identity checks trivially).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "proto/policy.hpp"
#include "runner/experiment.hpp"
#include "sim/trace.hpp"

namespace dca {
namespace {

using runner::RunResult;
using runner::Scheme;

runner::ScenarioConfig small_config() {
  runner::ScenarioConfig cfg;
  cfg.rows = 5;
  cfg.cols = 5;
  cfg.n_channels = 35;
  cfg.duration = sim::minutes(3);
  cfg.warmup = sim::seconds(30);
  cfg.seed = 11;
  // Mobility on, so handoff requests exist and handoff-priority's
  // admission gate exercises both request classes.
  cfg.mean_dwell_s = 90.0;
  return cfg;
}

runner::ScenarioConfig policy_config(const std::string& spec_text) {
  runner::ScenarioConfig cfg = small_config();
  std::string err;
  EXPECT_TRUE(proto::parse_policy_spec(spec_text, cfg.policy, err)) << err;
  EXPECT_TRUE(runner::validate_scenario(cfg).empty());
  return cfg;
}

void expect_same_result(const RunResult& a, const RunResult& b,
                        const char* what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.agg.offered, b.agg.offered);
  EXPECT_EQ(a.agg.acquired, b.agg.acquired);
  EXPECT_EQ(a.agg.blocked, b.agg.blocked);
  EXPECT_EQ(a.agg.starved, b.agg.starved);
  EXPECT_EQ(a.agg.timed_out, b.agg.timed_out);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.executed_events, b.executed_events);
  EXPECT_EQ(a.offered_calls, b.offered_calls);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.carried_erlangs, b.carried_erlangs);  // bit-exact, not near
  EXPECT_EQ(a.agg.delay_in_T.mean(), b.agg.delay_in_T.mean());
  EXPECT_EQ(a.agg.delay_us.mean(), b.agg.delay_us.mean());
  EXPECT_EQ(a.agg.messages_per_call.mean(), b.agg.messages_per_call.mean());
  EXPECT_EQ(a.agg.xi1, b.agg.xi1);
  EXPECT_EQ(a.agg.xi2, b.agg.xi2);
  EXPECT_EQ(a.agg.xi3, b.agg.xi3);
  EXPECT_EQ(a.agg.mean_update_attempts, b.agg.mean_update_attempts);
  EXPECT_EQ(a.agg.mean_borrowing_neighbors, b.agg.mean_borrowing_neighbors);
  EXPECT_EQ(a.agg.mean_searching_neighbors, b.agg.mean_searching_neighbors);
  EXPECT_EQ(a.messages_by_kind, b.messages_by_kind);
  EXPECT_EQ(a.quiescent, b.quiescent);
  EXPECT_EQ(a.transport, b.transport);
}

// shards 1/2/4 x threads 1/4 must all produce the same run, trace and all,
// for every (policy, scheme) pair — the ISSUE's acceptance grid.
void expect_engine_invariant(const std::string& spec_text, Scheme scheme) {
  SCOPED_TRACE(spec_text + " / " + runner::scheme_name(scheme));
  const runner::ScenarioConfig cfg = policy_config(spec_text);

  sim::TraceRecorder rec1;
  const RunResult r1 = runner::run_uniform(cfg, scheme, 0.8, &rec1);
  ASSERT_GT(rec1.size(), 0u);

  for (const int shards : {2, 4}) {
    for (const int threads : {1, 4}) {
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " threads=" + std::to_string(threads));
      runner::ScenarioConfig cs = cfg;
      cs.shards = shards;
      cs.threads = threads;
      sim::TraceRecorder recs;
      const RunResult rs = runner::run_uniform(cs, scheme, 0.8, &recs);
      expect_same_result(r1, rs, "classic vs sharded");
      EXPECT_EQ(rec1.events(), recs.events()) << "full merged trace";
    }
  }
}

TEST(PolicyDeterminism, TunedThresholdIsEngineInvariant) {
  for (const Scheme s : {Scheme::kAdaptive, Scheme::kBasicUpdate})
    expect_engine_invariant("tuned-threshold(theta_low=3,theta_high=6)", s);
}

TEST(PolicyDeterminism, HandoffPriorityIsEngineInvariant) {
  for (const Scheme s : {Scheme::kAdaptive, Scheme::kBasicUpdate})
    expect_engine_invariant("handoff-priority(guard=2)", s);
}

// tuned-threshold rewrites the adaptive scheme's hysteresis band, so a
// fixed-seed adaptive run must diverge from the default policy; every
// non-adaptive scheme ignores thresholds and must not move at all.
TEST(PolicyDeterminism, TunedThresholdMovesOnlyAdaptive) {
  const runner::ScenarioConfig base = small_config();
  const runner::ScenarioConfig tuned =
      policy_config("tuned-threshold(theta_low=3,theta_high=6)");

  sim::TraceRecorder rec_base, rec_tuned;
  const RunResult a =
      runner::run_uniform(base, Scheme::kAdaptive, 0.9, &rec_base);
  const RunResult b =
      runner::run_uniform(tuned, Scheme::kAdaptive, 0.9, &rec_tuned);
  EXPECT_EQ(a.agg.offered, b.agg.offered)
      << "the arrival process must not depend on the policy";
  EXPECT_NE(rec_base.events(), rec_tuned.events())
      << "wider hysteresis must change the adaptive trajectory";

  const RunResult c = runner::run_uniform(base, Scheme::kBasicUpdate, 0.9);
  const RunResult d = runner::run_uniform(tuned, Scheme::kBasicUpdate, 0.9);
  expect_same_result(c, d, "thresholds are a no-op outside adaptive");
}

// The admission gate must actually bite: with a guard band reserved for
// handoffs, a fixed-seed run blocks at least as many new calls as the
// ungated default, and strictly more under load.
TEST(PolicyDeterminism, HandoffPriorityGateBites) {
  const runner::ScenarioConfig base = small_config();
  const runner::ScenarioConfig gated = policy_config("handoff-priority(guard=4)");

  for (const Scheme s : {Scheme::kFca, Scheme::kAdaptive}) {
    SCOPED_TRACE(runner::scheme_name(s));
    const RunResult ungated = runner::run_uniform(base, s, 1.2);
    const RunResult guarded = runner::run_uniform(gated, s, 1.2);
    // Call arrivals are policy-independent; total offered *requests* are
    // not (a gated-out call never lives long enough to hand off).
    EXPECT_EQ(ungated.offered_calls, guarded.offered_calls)
        << "the call arrival process must not depend on the policy";
    EXPECT_GT(guarded.agg.drop_rate(), ungated.agg.drop_rate())
        << "guard band should deny some new calls the default admits";
  }
}

}  // namespace
}  // namespace dca
