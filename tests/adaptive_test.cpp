// Tests for the paper's adaptive scheme: local-mode zero-cost service,
// mode switching with hysteresis (check_mode / CHANGE_MODE / UpdateS),
// borrowing via update rounds with the Best() heuristic, the α-bounded
// fallback to search, DeferQ sequentialization, and end-to-end safety.
#include <gtest/gtest.h>

#include "core/adaptive.hpp"
#include "runner/world.hpp"
#include "test_util.hpp"

namespace dca {
namespace {

using core::AdaptiveNode;
using runner::Scheme;
using runner::World;
using testutil::offer_call;
using testutil::small_config;

const AdaptiveNode& adaptive(const World& w, cell::CellId c) {
  return dynamic_cast<const AdaptiveNode&>(w.node(c));
}

runner::ScenarioConfig adaptive_config() {
  auto cfg = small_config();
  cfg.adaptive.theta_low = 1;
  cfg.adaptive.theta_high = 2;
  cfg.adaptive.alpha = 3;
  return cfg;
}

TEST(Adaptive, LocalModeIsFreeAndInstant) {
  const auto cfg = adaptive_config();
  World w(cfg, Scheme::kAdaptive);
  const cell::CellId c = testutil::center_cell(cfg);
  offer_call(w, c, 1, sim::seconds(10));
  ASSERT_EQ(w.collector().records().size(), 1u);
  const auto& r = w.collector().records()[0];
  EXPECT_EQ(r.outcome, proto::Outcome::kAcquiredLocal);
  EXPECT_EQ(r.delay(), 0);
  EXPECT_EQ(r.total_messages(), 0u);
  EXPECT_EQ(w.network().total_sent(), 0u) << "Table 2: adaptive costs nothing";
  EXPECT_EQ(adaptive(w, c).mode(), 0);
}

TEST(Adaptive, ExhaustionSwitchesToBorrowingAndAnnounces) {
  const auto cfg = adaptive_config();  // 3 primaries, theta_low = 1
  World w(cfg, Scheme::kAdaptive);
  const cell::CellId c = testutil::center_cell(cfg);
  for (int i = 0; i < 3; ++i) offer_call(w, c, static_cast<traffic::CallId>(i + 1),
                                         sim::minutes(5));
  // Third acquisition leaves 0 free primaries < theta_low: check_mode fires.
  EXPECT_TRUE(adaptive(w, c).is_borrowing());
  w.simulator().run_until(w.simulator().now() + sim::seconds(1));
  // Every neighbour now lists c in its UpdateS set.
  for (const cell::CellId j : w.grid().interference(c)) {
    EXPECT_TRUE(adaptive(w, j).update_subscribers().contains(c));
  }
}

TEST(Adaptive, FourthCallBorrowsViaUpdateRound) {
  const auto cfg = adaptive_config();
  World w(cfg, Scheme::kAdaptive);
  const cell::CellId c = testutil::center_cell(cfg);
  const auto N = w.grid().interference(c).size();
  for (int i = 0; i < 3; ++i) offer_call(w, c, static_cast<traffic::CallId>(i + 1),
                                         sim::minutes(5));
  w.simulator().run_until(w.simulator().now() + sim::seconds(1));

  offer_call(w, c, 4, sim::minutes(5));
  w.simulator().run_until(w.simulator().now() + sim::seconds(1));
  const auto& r = w.collector().records().back();
  EXPECT_EQ(r.outcome, proto::Outcome::kAcquiredUpdate);
  EXPECT_EQ(r.attempts, 1);
  EXPECT_EQ(r.delay(), 2 * cfg.latency);  // one round trip
  // One update round: N requests + N responses; success needs no
  // ACQUISITION broadcast (the grants already informed everyone).
  EXPECT_EQ(r.messages[static_cast<std::size_t>(net::MsgKind::kRequest)], N);
  EXPECT_EQ(r.messages[static_cast<std::size_t>(net::MsgKind::kResponse)], N);
  EXPECT_EQ(r.messages[static_cast<std::size_t>(net::MsgKind::kAcquisition)], 0u);
  // The borrowed channel is not one of c's primaries.
  const auto borrowedSet = w.node(c).in_use() - w.plan().primary(c);
  EXPECT_EQ(borrowedSet.size(), 1);
}

TEST(Adaptive, GrantersMarkBorrowedChannelInterfered) {
  const auto cfg = adaptive_config();
  World w(cfg, Scheme::kAdaptive);
  const cell::CellId c = testutil::center_cell(cfg);
  for (int i = 0; i < 4; ++i) offer_call(w, c, static_cast<traffic::CallId>(i + 1),
                                         sim::minutes(5));
  w.simulator().run_until(w.simulator().now() + sim::seconds(1));
  const auto borrowedSet = w.node(c).in_use() - w.plan().primary(c);
  ASSERT_EQ(borrowedSet.size(), 1);
  const cell::ChannelId ch = borrowedSet.first();
  for (const cell::CellId j : w.grid().interference(c)) {
    EXPECT_TRUE(adaptive(w, j).interfered().contains(ch)) << "neighbour " << j;
  }
}

TEST(Adaptive, ReturnsToLocalModeWhenLoadDrops) {
  const auto cfg = adaptive_config();  // theta_high = 2
  World w(cfg, Scheme::kAdaptive);
  const cell::CellId c = testutil::center_cell(cfg);
  for (int i = 0; i < 3; ++i) offer_call(w, c, static_cast<traffic::CallId>(i + 1),
                                         sim::seconds(10));
  EXPECT_TRUE(adaptive(w, c).is_borrowing());
  // All three calls end after 10 s; the releases raise the free-primary
  // prediction past theta_high and the node returns to local mode.
  w.simulator().run_to_quiescence();
  EXPECT_EQ(adaptive(w, c).mode(), 0);
  EXPECT_GE(adaptive(w, c).switches_to_local(), 1u);
  // Neighbours drop c from their UpdateS sets again.
  for (const cell::CellId j : w.grid().interference(c)) {
    EXPECT_FALSE(adaptive(w, j).update_subscribers().contains(c));
  }
  EXPECT_TRUE(w.quiescent());
}

TEST(Adaptive, HysteresisPreventsFlapping) {
  // theta_low = 1, theta_high = 3: hovering around one free primary must
  // not bounce between modes on every acquire/release pair.
  auto cfg = adaptive_config();
  cfg.adaptive.theta_high = 3;
  World w(cfg, Scheme::kAdaptive);
  const cell::CellId c = testutil::center_cell(cfg);
  // Take 2 of 3 primaries for good: one free primary left.
  offer_call(w, c, 1, sim::minutes(60));
  offer_call(w, c, 2, sim::minutes(60));
  w.simulator().run_until(w.simulator().now() + sim::seconds(1));
  const auto switches_before = adaptive(w, c).switches_to_borrowing();
  // Churn the third primary: acquire/release repeatedly.
  for (int i = 0; i < 10; ++i) {
    offer_call(w, c, static_cast<traffic::CallId>(10 + i), sim::seconds(2));
    w.simulator().run_until(w.simulator().now() + sim::seconds(5));
  }
  const auto switches_after = adaptive(w, c).switches_to_borrowing();
  // Once borrowing (s hits 0 < theta_low), releases bring s back to only
  // 1 < theta_high = 3, so the node must stay in borrowing mode.
  EXPECT_LE(switches_after - switches_before, 1u);
}

TEST(Adaptive, LocalAcquisitionInBorrowingModeNotifiesSubscribers) {
  const auto cfg = adaptive_config();
  World w(cfg, Scheme::kAdaptive);
  const cell::CellId c = testutil::center_cell(cfg);
  const cell::CellId other = w.grid().interference(c)[0];
  // Drive `other` into borrowing mode so it subscribes to its neighbours.
  for (int i = 0; i < 3; ++i)
    offer_call(w, other, static_cast<traffic::CallId>(i + 1), sim::minutes(30));
  w.simulator().run_until(w.simulator().now() + sim::seconds(1));
  ASSERT_TRUE(adaptive(w, c).update_subscribers().contains(other));

  // A local acquisition at c must now be announced to `other` (and only to
  // subscribers).
  const auto acq_before = w.network().sent_of(net::MsgKind::kAcquisition);
  offer_call(w, c, 50, sim::minutes(5));
  const auto& r = w.collector().records().back();
  EXPECT_EQ(r.outcome, proto::Outcome::kAcquiredLocal);
  EXPECT_EQ(r.delay(), 0) << "announcement is asynchronous; service stays instant";
  const auto acq_sent = w.network().sent_of(net::MsgKind::kAcquisition) - acq_before;
  const auto subscribers = adaptive(w, c).update_subscribers().size();
  EXPECT_EQ(acq_sent, subscribers);
  w.simulator().run_until(w.simulator().now() + sim::seconds(1));
  EXPECT_TRUE(adaptive(w, other).interfered().contains(w.node(c).in_use().first()));
}

TEST(Adaptive, FallsBackToSearchAfterAlphaFailedRounds) {
  // Saturate the whole region so update rounds cannot find a grantable
  // channel; the request must end as a search (here: a failed one).
  const auto cfg = adaptive_config();
  World w(cfg, Scheme::kAdaptive);
  const cell::CellId c = testutil::center_cell(cfg);
  for (int i = 0; i < 3; ++i) offer_call(w, c, static_cast<traffic::CallId>(i + 1),
                                         sim::minutes(60));
  w.simulator().run_until(w.simulator().now() + sim::seconds(1));
  traffic::CallId id = 100;
  for (const cell::CellId j : w.grid().interference(c)) {
    for (int i = 0; i < 3; ++i) {
      offer_call(w, j, id++, sim::minutes(60));
      w.simulator().run_until(w.simulator().now() + sim::milliseconds(500));
    }
  }
  w.simulator().run_until(w.simulator().now() + sim::seconds(5));

  // All 21 channels are now used within c's region: the next request can
  // neither use a primary nor borrow; it searches and comes up empty.
  offer_call(w, c, 999, sim::minutes(5));
  w.simulator().run_until(w.simulator().now() + sim::seconds(30));
  const auto& r = w.collector().records().back();
  EXPECT_EQ(r.outcome, proto::Outcome::kBlockedNoChannel);
  EXPECT_EQ(w.interference_violations(), 0u);
  // The failed search must have announced (ACQUISITION with no channel) so
  // the region's waiting counters return to zero.
  w.simulator().run_to_quiescence();
  EXPECT_TRUE(w.quiescent());
  for (const cell::CellId j : w.grid().interference(c)) {
    EXPECT_EQ(adaptive(w, j).waiting(), 0);
  }
}

TEST(Adaptive, SearchFindsChannelUpdateRoundsMissed) {
  // Borrowing candidates are filtered by *believed* availability; stale
  // information can make update rounds fail while a search (which gathers
  // fresh Use sets) succeeds. Construct heavy concurrent churn and verify
  // every request is eventually decided and no interference occurs.
  const auto cfg = adaptive_config();
  World w(cfg, Scheme::kAdaptive);
  traffic::CallId id = 1;
  for (int wave = 0; wave < 6; ++wave) {
    for (cell::CellId c = 0; c < w.grid().n_cells(); c += 2) {
      offer_call(w, c, id++, sim::seconds(40));
    }
    w.simulator().run_until(w.simulator().now() + sim::seconds(10));
  }
  w.simulator().run_to_quiescence();
  EXPECT_TRUE(w.quiescent());
  EXPECT_EQ(w.interference_violations(), 0u);
  EXPECT_EQ(w.collector().records().size(), static_cast<std::size_t>(id - 1));
}

TEST(Adaptive, ConcurrentHotCellsNeverInterfere) {
  const auto cfg = adaptive_config();
  World w(cfg, Scheme::kAdaptive);
  const cell::CellId a = testutil::center_cell(cfg);
  const cell::CellId b = w.grid().neighbors(a)[0];
  traffic::CallId id = 1;
  for (int i = 0; i < 8; ++i) {
    offer_call(w, a, id++, sim::minutes(10));
    offer_call(w, b, id++, sim::minutes(10));
    w.simulator().run_until(w.simulator().now() + sim::seconds(3));
  }
  EXPECT_EQ(w.interference_violations(), 0u);
  EXPECT_FALSE(w.node(a).in_use().intersects(w.node(b).in_use()));
}

TEST(Adaptive, BorrowedChannelReleaseReachesWholeRegion) {
  const auto cfg = adaptive_config();
  World w(cfg, Scheme::kAdaptive);
  const cell::CellId c = testutil::center_cell(cfg);
  // Borrow one channel (call 4), all long-lived except the borrowed one.
  for (int i = 0; i < 3; ++i) offer_call(w, c, static_cast<traffic::CallId>(i + 1),
                                         sim::minutes(60));
  w.simulator().run_until(w.simulator().now() + sim::seconds(1));
  offer_call(w, c, 4, sim::seconds(30));
  w.simulator().run_until(w.simulator().now() + sim::seconds(1));
  const auto borrowedSet = w.node(c).in_use() - w.plan().primary(c);
  ASSERT_EQ(borrowedSet.size(), 1);
  const cell::ChannelId ch = borrowedSet.first();

  // Let the borrowed call end; every neighbour must unmark the channel.
  w.simulator().run_until(w.simulator().now() + sim::minutes(2));
  for (const cell::CellId j : w.grid().interference(c)) {
    EXPECT_FALSE(adaptive(w, j).interfered().contains(ch)) << "neighbour " << j;
  }
}

TEST(Adaptive, QueuedRequestsServeInOrder) {
  const auto cfg = adaptive_config();
  World w(cfg, Scheme::kAdaptive);
  const cell::CellId c = testutil::center_cell(cfg);
  // Force borrowing so requests take a round trip and queue up.
  for (int i = 0; i < 3; ++i) offer_call(w, c, static_cast<traffic::CallId>(i + 1),
                                         sim::minutes(30));
  w.simulator().run_until(w.simulator().now() + sim::seconds(1));
  offer_call(w, c, 10, sim::minutes(30));
  offer_call(w, c, 11, sim::minutes(30));
  offer_call(w, c, 12, sim::minutes(30));
  EXPECT_GE(w.node(c).queued(), 2u);
  w.simulator().run_until(w.simulator().now() + sim::seconds(10));
  // All three decided, in submission order.
  const auto& recs = w.collector().records();
  std::vector<traffic::CallId> order;
  for (const auto& r : recs)
    if (r.call >= 10) order.push_back(r.call);
  EXPECT_EQ(order, (std::vector<traffic::CallId>{10, 11, 12}));
  EXPECT_EQ(w.node(c).queued(), 0u);
}

TEST(Adaptive, StrictFig4VariantStaysSafe) {
  auto cfg = adaptive_config();
  cfg.adaptive.strict_fig4 = true;
  World w(cfg, Scheme::kAdaptive);
  traffic::CallId id = 1;
  for (int wave = 0; wave < 4; ++wave) {
    for (cell::CellId c = 0; c < w.grid().n_cells(); c += 2)
      offer_call(w, c, id++, sim::seconds(30));
    w.simulator().run_until(w.simulator().now() + sim::seconds(8));
  }
  w.simulator().run_to_quiescence();
  EXPECT_TRUE(w.quiescent());
  EXPECT_EQ(w.interference_violations(), 0u);
}

TEST(Adaptive, RandomLenderAblationStaysSafe) {
  auto cfg = adaptive_config();
  cfg.adaptive.use_best_heuristic = false;
  World w(cfg, Scheme::kAdaptive);
  traffic::CallId id = 1;
  for (int wave = 0; wave < 4; ++wave) {
    for (cell::CellId c = 0; c < w.grid().n_cells(); ++c)
      offer_call(w, c, id++, sim::seconds(30));
    w.simulator().run_until(w.simulator().now() + sim::seconds(8));
  }
  w.simulator().run_to_quiescence();
  EXPECT_TRUE(w.quiescent());
  EXPECT_EQ(w.interference_violations(), 0u);
}

TEST(Adaptive, UpdateSetsEventuallyConsistentAtQuiescence) {
  // DESIGN.md invariant 4: once the system drains, j ∈ UpdateS_i exactly
  // when j (an interference neighbour of i) is in borrowing mode.
  const auto cfg = adaptive_config();
  World w(cfg, Scheme::kAdaptive);
  traffic::CallId id = 1;
  for (int wave = 0; wave < 5; ++wave) {
    for (cell::CellId c = 0; c < w.grid().n_cells(); c += 2)
      offer_call(w, c, id++, sim::seconds(30));
    w.simulator().run_until(w.simulator().now() + sim::seconds(10));
  }
  w.simulator().run_to_quiescence();
  ASSERT_TRUE(w.quiescent());
  for (cell::CellId i = 0; i < w.grid().n_cells(); ++i) {
    const auto& ni = adaptive(w, i);
    for (const cell::CellId j : w.grid().interference(i)) {
      const bool subscribed = ni.update_subscribers().contains(j);
      EXPECT_EQ(subscribed, adaptive(w, j).is_borrowing())
          << "cell " << i << " subscription state of neighbour " << j;
    }
  }
}

TEST(Adaptive, RepackReturnsBorrowedChannelsEarly) {
  // Extension S21: with repack on, a hot cell that borrowed channels hands
  // them back as soon as its own primaries free up, instead of holding
  // them to call end.
  auto cfg = adaptive_config();
  cfg.adaptive.repack = true;
  World w(cfg, Scheme::kAdaptive);
  const cell::CellId c = testutil::center_cell(cfg);
  // Three short primary calls + one long borrowed call.
  for (int i = 0; i < 3; ++i) offer_call(w, c, static_cast<traffic::CallId>(i + 1),
                                         sim::seconds(20));
  w.simulator().run_until(w.simulator().now() + sim::seconds(1));
  offer_call(w, c, 4, sim::minutes(10));
  w.simulator().run_until(w.simulator().now() + sim::seconds(1));
  ASSERT_EQ((w.node(c).in_use() - w.plan().primary(c)).size(), 1)
      << "call 4 runs on a borrowed channel";
  // The short calls end at ~20 s; the long call must migrate onto a freed
  // primary and the borrowed channel must leave service.
  w.simulator().run_until(sim::seconds(60));
  EXPECT_EQ(w.node(c).in_use().size(), 1);
  EXPECT_TRUE((w.node(c).in_use() - w.plan().primary(c)).empty())
      << "the surviving call now sits on a primary";
  EXPECT_EQ(w.reassignments(), 1u);
  EXPECT_EQ(w.interference_violations(), 0u);
  w.simulator().run_to_quiescence();
  EXPECT_TRUE(w.quiescent());
}

TEST(Adaptive, NfcPredictorIsWiredToUsage) {
  const auto cfg = adaptive_config();
  World w(cfg, Scheme::kAdaptive);
  const cell::CellId c = testutil::center_cell(cfg);
  offer_call(w, c, 1, sim::minutes(5));
  // One primary taken out of 3: predictor sees 2 free.
  EXPECT_EQ(adaptive(w, c).free_primary_count(), 2);
  EXPECT_EQ(adaptive(w, c).nfc().current(), 2);
}

}  // namespace
}  // namespace dca
