// Unit tests of the sharded deterministically-parallel kernel: canonical
// key ordering, per-shard queues, the conservative window, and thread
// invariance of a cross-shard workload.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "sim/shard.hpp"
#include "sim/types.hpp"

namespace dca::sim {
namespace {

TEST(EventKey, OrdersByFieldsInDeclarationOrder) {
  const EventKey base{100, 5, kClassTimer, 2, 7};
  EXPECT_EQ(base, base);

  EventKey later = base;
  later.when = 101;
  EXPECT_LT(base, later);

  EventKey higher_owner = base;
  higher_owner.owner = 6;
  EXPECT_LT(base, higher_owner);

  EventKey higher_class = base;
  higher_class.klass = kClassDelivery;
  EXPECT_LT(base, higher_class);

  EventKey higher_sub = base;
  higher_sub.sub = 3;
  EXPECT_LT(base, higher_sub);

  EventKey higher_seq = base;
  higher_seq.seq = 8;
  EXPECT_LT(base, higher_seq);

  // when dominates everything below it.
  EventKey early_but_big{99, 100, kClassDelivery, 100, 100};
  EXPECT_LT(early_but_big, base);
}

TEST(EventKey, ClassConstantsEncodeTheLegacyTieBreak) {
  // Control < arrival < progress < timer < delivery — the order the
  // legacy insertion-id tie-break produces for systematic same-instant
  // collisions (see the header comment).
  EXPECT_LT(kClassControl, kClassArrival);
  EXPECT_LT(kClassArrival, kClassProgress);
  EXPECT_LT(kClassProgress, kClassTimer);
  EXPECT_LT(kClassTimer, kClassDelivery);
}

TEST(ShardQueue, PopsInCanonicalOrderRegardlessOfInsertion) {
  ShardQueue q;
  std::vector<int> fired;
  // Insert out of order; keys demand 1, 2, 3.
  (void)q.schedule(EventKey{20, 0, kClassTimer, 0, 1}, [&] { fired.push_back(2); });
  (void)q.schedule(EventKey{30, 0, kClassTimer, 0, 2}, [&] { fired.push_back(3); });
  (void)q.schedule(EventKey{10, 0, kClassTimer, 0, 3}, [&] { fired.push_back(1); });
  while (!q.empty()) {
    auto f = q.pop();
    f.action();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(ShardQueue, CancelPreventsExecutionAndLateCancelIsNoop) {
  ShardQueue q;
  int fired = 0;
  const EventId a = q.schedule(EventKey{10, 0, kClassTimer, 0, 1}, [&] { ++fired; });
  const EventId b = q.schedule(EventKey{20, 0, kClassTimer, 0, 2}, [&] { fired += 10; });
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  auto f = q.pop();
  EXPECT_EQ(f.key.when, 20);
  f.action();
  EXPECT_EQ(fired, 10);
  q.cancel(b);  // already popped: must be a no-op
  q.cancel(kInvalidEventId);
  EXPECT_TRUE(q.empty());
}

TEST(ShardedKernel, SingleShardRunsInKeyOrderAndAdvancesToDeadline) {
  ShardedKernel k(/*n_cells=*/4, /*n_shards=*/1, /*lookahead=*/milliseconds(1),
                  /*n_threads=*/1);
  std::vector<std::pair<SimTime, int>> fired;
  for (int c = 3; c >= 0; --c) {
    (void)k.schedule(EventKey{seconds(1), c, kClassTimer, 0, 1},
                     [&fired, c, &k] { fired.emplace_back(k.now(0), c); });
  }
  k.run_until(seconds(2));
  ASSERT_EQ(fired.size(), 4u);
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(fired[static_cast<std::size_t>(c)],
              (std::pair<SimTime, int>{seconds(1), c}));
  }
  EXPECT_EQ(k.now(0), seconds(2));  // clock advances to the deadline
  EXPECT_EQ(k.executed(), 4u);
  EXPECT_EQ(k.pending(), 0u);
}

TEST(ShardedKernel, EventsExactlyAtDeadlineFire) {
  ShardedKernel k(1, 1, milliseconds(1), 1);
  bool at = false, past = false;
  (void)k.schedule(EventKey{seconds(5), 0, kClassTimer, 0, 1}, [&] { at = true; });
  (void)k.schedule(EventKey{seconds(5) + 1, 0, kClassTimer, 0, 2},
                   [&] { past = true; });
  k.run_until(seconds(5));
  EXPECT_TRUE(at);
  EXPECT_FALSE(past);
  k.run_to_quiescence();
  EXPECT_TRUE(past);
}

TEST(ShardedKernel, SameShardCancelWorks) {
  ShardedKernel k(2, 2, milliseconds(1), 1);
  bool fired = false;
  const EventId id = k.schedule(EventKey{seconds(1), 0, kClassTimer, 0, 1},
                                [&] { fired = true; });
  ASSERT_NE(id, kInvalidEventId);
  k.cancel(0, id);
  k.run_to_quiescence();
  EXPECT_FALSE(fired);
  EXPECT_EQ(k.executed(), 0u);
}

// A deterministic cross-shard ping-pong: cells 0 and 1 live on different
// shards and mail each other one lookahead ahead. The per-shard execution
// logs must not depend on the worker thread count.
std::vector<std::vector<SimTime>> ping_pong(int n_threads) {
  const Duration L = milliseconds(2);
  ShardedKernel k(/*n_cells=*/2, /*n_shards=*/2, L, n_threads);
  std::vector<std::vector<SimTime>> log(2);

  // hops bounce 0 -> 1 -> 0 -> ... until the horizon.
  struct Bouncer {
    ShardedKernel* k;
    Duration L;
    std::vector<std::vector<SimTime>>* log;
    std::uint64_t seq = 0;

    void hop(std::int32_t owner, SimTime when) {
      (*log)[static_cast<std::size_t>(owner)].push_back(when);
      if (when >= seconds(1)) return;
      const std::int32_t next = 1 - owner;
      EventKey key{when + L, next, kClassDelivery, owner, ++seq};
      k->schedule(key, [this, next, at = when + L] { hop(next, at); });
    }
  };
  Bouncer b{&k, L, &log};
  (void)k.schedule(EventKey{L, 0, kClassDelivery, 1, 1},
                   [&b, L] { b.hop(0, L); });
  k.run_to_quiescence();
  return log;
}

TEST(ShardedKernel, CrossShardWorkloadIsThreadCountInvariant) {
  const auto one = ping_pong(1);
  const auto two = ping_pong(2);
  ASSERT_FALSE(one[0].empty());
  ASSERT_FALSE(one[1].empty());
  EXPECT_EQ(one, two);
}

TEST(ShardedKernel, RepeatedRunUntilDrainsLeftoverCrossShardMail) {
  // Mail scheduled near the end of one run_until must survive into the
  // next call (it sits in the double-buffered outbox between runs).
  const Duration L = milliseconds(1);
  ShardedKernel k(2, 2, L, 1);
  int delivered = 0;
  (void)k.schedule(EventKey{seconds(1), 0, kClassTimer, 0, 1}, [&] {
    k.schedule(EventKey{seconds(1) + L, 1, kClassDelivery, 0, 1},
               [&] { ++delivered; });
  });
  k.run_until(seconds(1));  // sender fires; delivery is beyond the deadline
  EXPECT_EQ(delivered, 0);
  k.run_to_quiescence();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(k.executed(), 2u);
}

}  // namespace
}  // namespace dca::sim
