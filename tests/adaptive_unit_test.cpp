// Message-level unit tests of the adaptive node, driven through MockEnv.
// Each test corresponds to a specific behaviour of the paper's Figs. 2-10:
// what gets sent, to whom, and under which timestamp/mode conditions —
// independent of the full simulator.
#include <gtest/gtest.h>

#include <memory>

#include "cell/grid.hpp"
#include "cell/reuse.hpp"
#include "core/adaptive.hpp"
#include "mock_env.hpp"

namespace dca {
namespace {

using core::AdaptiveNode;
using core::AdaptiveParams;
using testutil::MockEnv;

// One node on an 8x8 grid with 21 channels (3 primaries per cell). The
// node under test is the interior cell 27; its 18 neighbours are scripted.
class AdaptiveUnit : public ::testing::Test {
 protected:
  AdaptiveUnit()
      : grid_(8, 8, 2), plan_(cell::ReusePlan::cluster(grid_, 21, 7)) {
    params_.theta_low = 1;
    params_.theta_high = 2;
    params_.alpha = 2;
    rebuild();
  }

  void rebuild() {
    node_ = std::make_unique<AdaptiveNode>(
        proto::NodeContext{kSelf, &grid_, &plan_, &env_}, params_);
  }

  /// Neighbours of the node under test, ascending.
  [[nodiscard]] std::span<const cell::CellId> in() const {
    return grid_.interference(kSelf);
  }
  [[nodiscard]] std::size_t n_in() const { return in().size(); }

  /// Exhausts the primaries with local requests; the node ends up in
  /// borrowing mode with its 3 primaries in use.
  void exhaust_primaries() {
    node_->request_channel(1);
    node_->request_channel(2);
    node_->request_channel(3);
    ASSERT_EQ(env_.completions().size(), 3u);
    ASSERT_TRUE(node_->is_borrowing());
    env_.clear();
  }

  /// Answers an in-flight status wave with empty Use sets.
  void answer_status_wave() {
    const auto waves = env_.sent_of(net::MsgKind::kChangeMode);
    ASSERT_FALSE(waves.empty());
    const std::uint64_t wave = waves.back().wave;
    const std::uint64_t serial = waves.back().serial;
    for (const cell::CellId j : in()) {
      node_->on_message(testutil::mk_use_reply(j, kSelf, net::ResType::kStatus,
                                               cell::ChannelSet(21), serial, wave));
    }
  }

  static constexpr cell::CellId kSelf = 27;
  cell::HexGrid grid_;
  cell::ReusePlan plan_;
  AdaptiveParams params_;
  MockEnv env_;
  std::unique_ptr<AdaptiveNode> node_;
};

// ------------------------------------------------------------ Fig. 2 ------

TEST_F(AdaptiveUnit, LocalRequestIsSilentAndInstant) {
  node_->request_channel(7);
  ASSERT_EQ(env_.completions().size(), 1u);
  const auto& c = env_.completions()[0];
  EXPECT_EQ(c.outcome, proto::Outcome::kAcquiredLocal);
  EXPECT_TRUE(plan_.primary(kSelf).contains(c.channel));
  EXPECT_EQ(c.attempts, 0);
  EXPECT_TRUE(env_.sent().empty()) << "local mode, no borrowing subscribers";
  EXPECT_EQ(node_->mode(), 0);
}

TEST_F(AdaptiveUnit, ExhaustionPredictionBroadcastsChangeMode) {
  node_->request_channel(1);
  EXPECT_TRUE(env_.sent().empty()) << "s = 2 free primaries, prediction >= 1";
  // Second acquisition: s = 1 with a falling trend, so the linear
  // prediction dips (just) below theta_low = 1 — the node announces the
  // switch one call BEFORE hard exhaustion, which is the predictor's job.
  node_->request_channel(2);
  const auto cms = env_.sent_of(net::MsgKind::kChangeMode);
  ASSERT_EQ(cms.size(), n_in());
  for (const auto& m : cms) EXPECT_EQ(m.mode, 1);
  EXPECT_EQ(node_->mode(), 1);
}

TEST_F(AdaptiveUnit, FourthRequestWaitsForStatusesThenBorrows) {
  node_->request_channel(1);
  node_->request_channel(2);
  node_->request_channel(3);
  env_.clear();
  // Fourth request: node is already in borrowing mode (mode switched on
  // the third acquisition), no free primary -> update round to ALL of IN.
  node_->request_channel(4);
  const auto reqs = env_.sent_of(net::MsgKind::kRequest);
  ASSERT_EQ(reqs.size(), n_in());
  for (const auto& m : reqs) {
    EXPECT_EQ(m.req_type, net::ReqType::kUpdate);
    EXPECT_FALSE(plan_.primary(kSelf).contains(m.channel));
  }
  EXPECT_EQ(node_->mode(), 2);
  EXPECT_TRUE(env_.completions().empty()) << "still awaiting responses";
}

TEST_F(AdaptiveUnit, UnanimousGrantsAcquireWithoutBroadcast) {
  exhaust_primaries();
  node_->request_channel(4);
  const net::Message rnd = env_.sent_of(net::MsgKind::kRequest)[0];
  const cell::ChannelId r = rnd.channel;
  for (const cell::CellId j : in()) {
    node_->on_message(testutil::mk_echo_response(rnd, j, net::ResType::kGrant));
  }
  ASSERT_EQ(env_.completions().size(), 1u);
  EXPECT_EQ(env_.completions()[0].outcome, proto::Outcome::kAcquiredUpdate);
  EXPECT_EQ(env_.completions()[0].channel, r);
  EXPECT_EQ(env_.completions()[0].attempts, 1);
  EXPECT_TRUE(env_.sent_of(net::MsgKind::kAcquisition).empty())
      << "Fig. 3 case mode=2: the grants already informed everyone";
  EXPECT_EQ(node_->mode(), 1);
}

TEST_F(AdaptiveUnit, SingleRejectReleasesGrantersAndRetries) {
  exhaust_primaries();
  node_->request_channel(4);
  const net::Message rnd = env_.sent_of(net::MsgKind::kRequest)[0];
  const cell::ChannelId r = rnd.channel;
  env_.clear();
  // First neighbour rejects, the rest grant.
  bool first = true;
  for (const cell::CellId j : in()) {
    node_->on_message(testutil::mk_echo_response(
        rnd, j, first ? net::ResType::kReject : net::ResType::kGrant));
    first = false;
  }
  // The round failed: RELEASE to each granter, then a fresh round starts.
  const auto rels = env_.sent_of(net::MsgKind::kRelease);
  EXPECT_EQ(rels.size(), n_in() - 1);
  for (const auto& m : rels) EXPECT_EQ(m.channel, r);
  const auto reqs = env_.sent_of(net::MsgKind::kRequest);
  ASSERT_EQ(reqs.size(), n_in()) << "retry round issued immediately";
  EXPECT_TRUE(env_.completions().empty());
  EXPECT_EQ(node_->mode(), 2);
}

TEST_F(AdaptiveUnit, AlphaExhaustionFallsBackToSearch) {
  exhaust_primaries();  // params_.alpha == 2
  node_->request_channel(4);
  for (int round = 0; round < 2; ++round) {
    const net::Message rnd = env_.sent_of(net::MsgKind::kRequest).back();
    env_.clear();
    for (const cell::CellId j : in()) {
      node_->on_message(testutil::mk_echo_response(rnd, j, net::ResType::kReject));
    }
  }
  // After alpha = 2 failed update rounds: a search request to all of IN.
  const auto reqs = env_.sent_of(net::MsgKind::kRequest);
  ASSERT_EQ(reqs.size(), n_in());
  EXPECT_EQ(reqs[0].req_type, net::ReqType::kSearch);
  EXPECT_EQ(node_->mode(), 3);
  EXPECT_TRUE(node_->is_searching());
}

TEST_F(AdaptiveUnit, SearchSelectsFreeChannelAndAnnounces) {
  exhaust_primaries();
  node_->request_channel(4);
  // Force straight to search by rejecting alpha rounds.
  for (int round = 0; round < 2; ++round) {
    const net::Message rnd = env_.sent_of(net::MsgKind::kRequest).back();
    env_.clear();
    for (const cell::CellId j : in())
      node_->on_message(testutil::mk_echo_response(rnd, j, net::ResType::kReject));
  }
  env_.clear();
  // Neighbours report everything busy except channel 20.
  cell::ChannelSet busy = cell::ChannelSet::all(21);
  busy.erase(20);
  busy -= node_->in_use();
  for (const cell::CellId j : in()) {
    node_->on_message(
        testutil::mk_use_reply(j, kSelf, net::ResType::kSearchReply, busy, 4));
  }
  ASSERT_EQ(env_.completions().size(), 1u);
  EXPECT_EQ(env_.completions()[0].outcome, proto::Outcome::kAcquiredSearch);
  EXPECT_EQ(env_.completions()[0].channel, 20);
  const auto acqs = env_.sent_of(net::MsgKind::kAcquisition);
  ASSERT_EQ(acqs.size(), n_in()) << "search acquisition announced to all";
  EXPECT_EQ(acqs[0].acq_type, net::AcqType::kSearch);
  EXPECT_EQ(acqs[0].channel, 20);
  EXPECT_EQ(node_->mode(), 1);
}

TEST_F(AdaptiveUnit, FailedSearchStillAnnounces) {
  exhaust_primaries();
  node_->request_channel(4);
  for (int round = 0; round < 2; ++round) {
    const net::Message rnd = env_.sent_of(net::MsgKind::kRequest).back();
    env_.clear();
    for (const cell::CellId j : in())
      node_->on_message(testutil::mk_echo_response(rnd, j, net::ResType::kReject));
  }
  env_.clear();
  cell::ChannelSet busy = cell::ChannelSet::all(21) - node_->in_use();
  for (const cell::CellId j : in()) {
    node_->on_message(
        testutil::mk_use_reply(j, kSelf, net::ResType::kSearchReply, busy, 4));
  }
  ASSERT_EQ(env_.completions().size(), 1u);
  EXPECT_EQ(env_.completions()[0].outcome, proto::Outcome::kBlockedNoChannel);
  const auto acqs = env_.sent_of(net::MsgKind::kAcquisition);
  ASSERT_EQ(acqs.size(), n_in())
      << "announcement with kNoChannel unblocks waiting neighbours";
  EXPECT_EQ(acqs[0].channel, cell::kNoChannel);
}

// ------------------------------------------------------------ Fig. 4 ------

TEST_F(AdaptiveUnit, UpdateRequestGrantedWhenIdle) {
  node_->on_message(testutil::mk_update_request(in()[0], kSelf, 5,
                                                net::Timestamp{1, in()[0]}, 99));
  const auto resp = env_.sent_of(net::MsgKind::kResponse);
  ASSERT_EQ(resp.size(), 1u);
  EXPECT_EQ(resp[0].res_type, net::ResType::kGrant);
  EXPECT_EQ(resp[0].channel, 5);
  EXPECT_TRUE(node_->interfered().contains(5)) << "grant updates I_i";
}

TEST_F(AdaptiveUnit, UpdateRequestRejectedWhenChannelInUse) {
  node_->request_channel(1);  // takes a primary, say p
  const cell::ChannelId p = env_.completions()[0].channel;
  env_.clear();
  node_->on_message(testutil::mk_update_request(in()[0], kSelf, p,
                                                net::Timestamp{1, in()[0]}, 99));
  const auto resp = env_.sent_of(net::MsgKind::kResponse);
  ASSERT_EQ(resp.size(), 1u);
  EXPECT_EQ(resp[0].res_type, net::ResType::kReject);
}

TEST_F(AdaptiveUnit, Mode2SameChannelConflictOlderWins) {
  exhaust_primaries();
  node_->request_channel(4);  // our ts is some (count, 27)
  const cell::ChannelId r = env_.sent_of(net::MsgKind::kRequest)[0].channel;
  env_.clear();
  // A YOUNGER request for the same channel: we are older -> reject.
  node_->on_message(testutil::mk_update_request(
      in()[0], kSelf, r, net::Timestamp{1'000'000, in()[0]}, 99));
  ASSERT_EQ(env_.sent_of(net::MsgKind::kResponse).size(), 1u);
  EXPECT_EQ(env_.sent_of(net::MsgKind::kResponse)[0].res_type,
            net::ResType::kReject);
  env_.clear();
  // An OLDER request for the same channel: it wins -> grant.
  node_->on_message(testutil::mk_update_request(in()[1], kSelf, r,
                                                net::Timestamp{0, in()[1]}, 98));
  ASSERT_EQ(env_.sent_of(net::MsgKind::kResponse).size(), 1u);
  EXPECT_EQ(env_.sent_of(net::MsgKind::kResponse)[0].res_type,
            net::ResType::kGrant);
}

TEST_F(AdaptiveUnit, Mode2DifferentChannelGrantedUnderProseRule) {
  exhaust_primaries();
  node_->request_channel(4);
  const cell::ChannelId r = env_.sent_of(net::MsgKind::kRequest)[0].channel;
  env_.clear();
  // A younger request for a DIFFERENT free channel: prose rule grants.
  const cell::ChannelId q = (r + 1) % 21 == r ? r + 2 : r + 1;
  node_->on_message(testutil::mk_update_request(
      in()[0], kSelf, q, net::Timestamp{1'000'000, in()[0]}, 99));
  ASSERT_EQ(env_.sent_of(net::MsgKind::kResponse).size(), 1u);
  EXPECT_EQ(env_.sent_of(net::MsgKind::kResponse)[0].res_type,
            net::ResType::kGrant);
}

TEST_F(AdaptiveUnit, Mode2DifferentChannelRejectedUnderStrictRule) {
  params_.strict_fig4 = true;
  rebuild();
  exhaust_primaries();
  node_->request_channel(4);
  const cell::ChannelId r = env_.sent_of(net::MsgKind::kRequest)[0].channel;
  env_.clear();
  const cell::ChannelId q = (r + 1) % 21 == r ? r + 2 : r + 1;
  node_->on_message(testutil::mk_update_request(
      in()[0], kSelf, q, net::Timestamp{1'000'000, in()[0]}, 99));
  ASSERT_EQ(env_.sent_of(net::MsgKind::kResponse).size(), 1u);
  EXPECT_EQ(env_.sent_of(net::MsgKind::kResponse)[0].res_type,
            net::ResType::kReject)
      << "Fig. 4 literal: any younger update request is rejected in mode 2";
}

TEST_F(AdaptiveUnit, SearchingNodeDefersYoungerUpdateRequest) {
  exhaust_primaries();
  node_->request_channel(4);
  for (int round = 0; round < 2; ++round) {
    const net::Message rnd = env_.sent_of(net::MsgKind::kRequest).back();
    env_.clear();
    for (const cell::CellId j : in())
      node_->on_message(testutil::mk_echo_response(rnd, j, net::ResType::kReject));
  }
  ASSERT_EQ(node_->mode(), 3);
  env_.clear();
  node_->on_message(testutil::mk_update_request(
      in()[0], kSelf, 10, net::Timestamp{1'000'000, in()[0]}, 99));
  EXPECT_TRUE(env_.sent().empty()) << "deferred, not answered";
  EXPECT_EQ(node_->deferq_size(), 1u);
}

TEST_F(AdaptiveUnit, SearchingNodeRejectsOlderUpdateRequestForUsedChannel) {
  // Regression (DESIGN.md note 11, found by fuzzing): Fig. 4 case 3 grants
  // older update requests unconditionally, but the requester's stale
  // information may point at a channel WE are using — granting it would
  // license co-channel interference. Scenario: we hold a channel, are in
  // search mode, and an OLDER request asks for exactly that channel.
  node_->request_channel(1);
  const cell::ChannelId held = env_.completions()[0].channel;
  node_->request_channel(2);
  node_->request_channel(3);
  node_->request_channel(4);  // all primaries used -> borrow rounds begin
  for (int round = 0; round < 2; ++round) {
    const net::Message rnd = env_.sent_of(net::MsgKind::kRequest).back();
    env_.clear();
    for (const cell::CellId j : in())
      node_->on_message(testutil::mk_echo_response(rnd, j, net::ResType::kReject));
  }
  ASSERT_EQ(node_->mode(), 3);
  env_.clear();
  // An update request with an OLDER timestamp for the channel we hold.
  node_->on_message(testutil::mk_update_request(in()[0], kSelf, held,
                                                net::Timestamp{0, in()[0]}, 99));
  const auto resp = env_.sent_of(net::MsgKind::kResponse);
  ASSERT_EQ(resp.size(), 1u);
  EXPECT_EQ(resp[0].res_type, net::ResType::kReject)
      << "in-use channels are never granted, whatever the timestamps";
  EXPECT_EQ(node_->deferq_size(), 0u);
}

TEST_F(AdaptiveUnit, SearchRequestAnsweredImmediatelyWithUseSetWhenIdle) {
  node_->request_channel(1);
  const cell::ChannelId p = env_.completions()[0].channel;
  env_.clear();
  node_->on_message(testutil::mk_search_request(in()[0], kSelf,
                                                net::Timestamp{1, in()[0]}, 99));
  const auto resp = env_.sent_of(net::MsgKind::kResponse);
  ASSERT_EQ(resp.size(), 1u);
  EXPECT_EQ(resp[0].res_type, net::ResType::kSearchReply);
  EXPECT_TRUE(resp[0].use.contains(p));
  EXPECT_EQ(node_->waiting(), 1);
}

// ----------------------------------------------- waiting/pending gate ------

TEST_F(AdaptiveUnit, LocalRequestParksWhileSearchDecisionPending) {
  // A searcher asked us; until its ACQUISITION arrives, our own request
  // must not grab a primary silently.
  node_->on_message(testutil::mk_search_request(in()[0], kSelf,
                                                net::Timestamp{1, in()[0]}, 99));
  ASSERT_EQ(node_->waiting(), 1);
  env_.clear();
  node_->request_channel(50);
  EXPECT_TRUE(env_.completions().empty()) << "parked until waiting == 0";
  // The searcher decides (failed search, say): our request resumes.
  node_->on_message(testutil::mk_acquisition(in()[0], kSelf, net::AcqType::kSearch,
                                             cell::kNoChannel));
  ASSERT_EQ(env_.completions().size(), 1u);
  EXPECT_EQ(env_.completions()[0].outcome, proto::Outcome::kAcquiredLocal);
}

TEST_F(AdaptiveUnit, ParkedRequestAnswersAllSearchesImmediately) {
  // DESIGN.md note 9: the paper's pending_i rule (defer younger searches
  // while parked) deadlocks — a parked request must answer every search
  // immediately and simply wait for all the announcements.
  node_->on_message(testutil::mk_search_request(in()[0], kSelf,
                                                net::Timestamp{1, in()[0]}, 99));
  node_->request_channel(50);  // parks; its ts witnessed {1,...} so count >= 2
  env_.clear();
  // A younger search arrives: answered at once, added to the awaited set.
  node_->on_message(testutil::mk_search_request(
      in()[1], kSelf, net::Timestamp{1'000'000, in()[1]}, 98));
  EXPECT_EQ(env_.sent_of(net::MsgKind::kResponse).size(), 1u);
  EXPECT_EQ(node_->deferq_size(), 0u);
  // An OLDER search likewise.
  node_->on_message(testutil::mk_search_request(in()[2], kSelf,
                                                net::Timestamp{0, in()[2]}, 97));
  EXPECT_EQ(env_.sent_of(net::MsgKind::kResponse).size(), 2u);
  EXPECT_EQ(node_->waiting(), 3);
}

TEST_F(AdaptiveUnit, ParkedRequestResumesOnlyAfterAllAnnouncements) {
  node_->on_message(testutil::mk_search_request(in()[0], kSelf,
                                                net::Timestamp{1, in()[0]}, 99));
  node_->request_channel(50);  // parked behind searcher in()[0]
  // A second searcher gets answered while we are parked.
  node_->on_message(testutil::mk_search_request(
      in()[1], kSelf, net::Timestamp{1'000'000, in()[1]}, 98));
  ASSERT_EQ(node_->waiting(), 2);
  env_.clear();
  // First announcement: still one outstanding, request stays parked.
  node_->on_message(testutil::mk_acquisition(in()[0], kSelf, net::AcqType::kSearch,
                                             cell::kNoChannel));
  EXPECT_TRUE(env_.completions().empty());
  EXPECT_EQ(node_->waiting(), 1);
  // Second announcement takes channel 0 — our resume must see it and the
  // local acquisition must avoid it.
  node_->on_message(
      testutil::mk_acquisition(in()[1], kSelf, net::AcqType::kSearch, 0));
  ASSERT_EQ(env_.completions().size(), 1u);
  EXPECT_EQ(env_.completions()[0].outcome, proto::Outcome::kAcquiredLocal);
  EXPECT_NE(env_.completions()[0].channel, 0);
}

TEST_F(AdaptiveUnit, DeferredUpdateRequestAnsweredWhenSearchConcludes) {
  // Fig. 3's DeferQ drain: a younger update request deferred during our
  // search is answered right after our decision, against our new Use set.
  exhaust_primaries();
  node_->request_channel(4);
  for (int round = 0; round < 2; ++round) {
    const net::Message rnd = env_.sent_of(net::MsgKind::kRequest).back();
    env_.clear();
    for (const cell::CellId j : in())
      node_->on_message(testutil::mk_echo_response(rnd, j, net::ResType::kReject));
  }
  ASSERT_EQ(node_->mode(), 3);
  // Younger update request for channel 20 arrives mid-search: deferred.
  node_->on_message(testutil::mk_update_request(
      in()[0], kSelf, 20, net::Timestamp{1'000'000, in()[0]}, 99));
  ASSERT_EQ(node_->deferq_size(), 1u);
  env_.clear();
  // The search concludes and takes channel 20 itself.
  cell::ChannelSet busy = cell::ChannelSet::all(21);
  busy.erase(20);
  busy -= node_->in_use();
  for (const cell::CellId j : in())
    node_->on_message(
        testutil::mk_use_reply(j, kSelf, net::ResType::kSearchReply, busy, 4));
  EXPECT_EQ(node_->deferq_size(), 0u);
  // The deferred requester must be REJECTED (we now use channel 20).
  bool saw_reject = false;
  for (const auto& m : env_.sent_of(net::MsgKind::kResponse)) {
    if (m.to == in()[0] && m.res_type == net::ResType::kReject && m.channel == 20)
      saw_reject = true;
  }
  EXPECT_TRUE(saw_reject);
}

// ------------------------------------------------------------ Fig. 5 ------

TEST_F(AdaptiveUnit, ChangeModeMaintainsUpdateSetAndRepliesStatus) {
  node_->request_channel(1);
  const cell::ChannelId p = env_.completions()[0].channel;
  env_.clear();
  node_->on_message(testutil::mk_change_mode(in()[0], kSelf, 1, 7));
  EXPECT_TRUE(node_->update_subscribers().contains(in()[0]));
  const auto resp = env_.sent_of(net::MsgKind::kResponse);
  ASSERT_EQ(resp.size(), 1u);
  EXPECT_EQ(resp[0].res_type, net::ResType::kStatus);
  EXPECT_EQ(resp[0].wave, 7u) << "status echoes the wave tag";
  EXPECT_TRUE(resp[0].use.contains(p));
  env_.clear();
  node_->on_message(testutil::mk_change_mode(in()[0], kSelf, 0));
  EXPECT_FALSE(node_->update_subscribers().contains(in()[0]));
  EXPECT_TRUE(env_.sent().empty()) << "no reply on return-to-local";
}

TEST_F(AdaptiveUnit, LocalAcquisitionAnnouncedOnlyToSubscribers) {
  node_->on_message(testutil::mk_change_mode(in()[3], kSelf, 1));
  node_->on_message(testutil::mk_change_mode(in()[5], kSelf, 1));
  env_.clear();
  node_->request_channel(1);
  const auto acqs = env_.sent_of(net::MsgKind::kAcquisition);
  ASSERT_EQ(acqs.size(), 2u);
  EXPECT_EQ(acqs[0].acq_type, net::AcqType::kNonSearch);
  std::set<cell::CellId> dests{acqs[0].to, acqs[1].to};
  EXPECT_TRUE(dests.contains(in()[3]));
  EXPECT_TRUE(dests.contains(in()[5]));
}

// ------------------------------------------------------- Figs. 7 and 8 ----

TEST_F(AdaptiveUnit, AcquisitionAndReleaseMaintainInterferedSet) {
  node_->on_message(testutil::mk_acquisition(in()[0], kSelf,
                                             net::AcqType::kNonSearch, 9));
  EXPECT_TRUE(node_->interfered().contains(9));
  node_->on_message(testutil::mk_release(in()[0], kSelf, 9));
  EXPECT_FALSE(node_->interfered().contains(9));
}

TEST_F(AdaptiveUnit, StatusSnapshotCannotEraseAPendingGrant) {
  // DESIGN.md faithfulness note 5: we grant channel 5 to a neighbour; its
  // status snapshot (sent before it confirmed) must not clear our record.
  node_->on_message(testutil::mk_update_request(in()[0], kSelf, 5,
                                                net::Timestamp{1, in()[0]}, 99));
  ASSERT_TRUE(node_->interfered().contains(5));
  node_->on_message(testutil::mk_use_reply(in()[0], kSelf, net::ResType::kStatus,
                                           cell::ChannelSet(21), 0, 0));
  EXPECT_TRUE(node_->interfered().contains(5))
      << "grant survives a stale Use-set snapshot";
  // The neighbour's RELEASE (failed round) clears it.
  node_->on_message(testutil::mk_release(in()[0], kSelf, 5));
  EXPECT_FALSE(node_->interfered().contains(5));
}

// ------------------------------------------------------------ Fig. 9 ------

TEST_F(AdaptiveUnit, BorrowedChannelReleaseGoesToWholeRegion) {
  exhaust_primaries();
  node_->request_channel(4);
  const net::Message rnd = env_.sent_of(net::MsgKind::kRequest)[0];
  const cell::ChannelId r = rnd.channel;
  for (const cell::CellId j : in())
    node_->on_message(testutil::mk_echo_response(rnd, j, net::ResType::kGrant));
  env_.clear();
  node_->release_channel(r, 4);
  const auto rels = env_.sent_of(net::MsgKind::kRelease);
  EXPECT_EQ(rels.size(), n_in());
}

TEST_F(AdaptiveUnit, PrimaryReleaseInLocalModeGoesToSubscribersOnly) {
  node_->on_message(testutil::mk_change_mode(in()[2], kSelf, 1));
  env_.clear();
  node_->request_channel(1);
  const cell::ChannelId p = env_.completions()[0].channel;
  env_.clear();
  node_->release_channel(p, 1);
  const auto rels = env_.sent_of(net::MsgKind::kRelease);
  ASSERT_EQ(rels.size(), 1u);
  EXPECT_EQ(rels[0].to, in()[2]);
}

// ---------------------------------------- repack extension (Cox&Reudink) --

TEST_F(AdaptiveUnit, RepackMigratesBorrowedCallOntoFreedPrimary) {
  params_.repack = true;
  rebuild();
  exhaust_primaries();
  // Borrow a channel via a granted update round.
  node_->request_channel(4);
  const net::Message rnd = env_.sent_of(net::MsgKind::kRequest)[0];
  const cell::ChannelId borrowed = rnd.channel;
  for (const cell::CellId j : in())
    node_->on_message(testutil::mk_echo_response(rnd, j, net::ResType::kGrant));
  env_.clear();
  // A primary-holding call ends: repack must fire.
  const cell::ChannelId freed = node_->in_use().first() == borrowed
                                    ? node_->in_use().next_after(borrowed)
                                    : node_->in_use().first();
  ASSERT_TRUE(plan_.primary(kSelf).contains(freed));
  node_->release_channel(freed, 1);
  ASSERT_EQ(env_.reassigned().size(), 1u);
  EXPECT_EQ(env_.reassigned()[0].from_ch, borrowed);
  EXPECT_EQ(env_.reassigned()[0].to_ch, freed);
  EXPECT_FALSE(node_->in_use().contains(borrowed));
  EXPECT_TRUE(node_->in_use().contains(freed));
  // The borrowed channel's return is announced to the whole region.
  const auto rels = env_.sent_of(net::MsgKind::kRelease);
  bool borrowed_released_to_all = false;
  std::size_t borrowed_rel_count = 0;
  for (const auto& m : rels)
    if (m.channel == borrowed) ++borrowed_rel_count;
  borrowed_released_to_all = (borrowed_rel_count == n_in());
  EXPECT_TRUE(borrowed_released_to_all);
}

TEST_F(AdaptiveUnit, RepackWaitsForOutstandingSearchDecisions) {
  params_.repack = true;
  rebuild();
  exhaust_primaries();
  node_->request_channel(4);
  const net::Message rnd = env_.sent_of(net::MsgKind::kRequest)[0];
  const cell::ChannelId borrowed = rnd.channel;
  for (const cell::CellId j : in())
    node_->on_message(testutil::mk_echo_response(rnd, j, net::ResType::kGrant));
  // Answer a search: its decision is now outstanding.
  node_->on_message(testutil::mk_search_request(in()[0], kSelf,
                                                net::Timestamp{1, in()[0]}, 9));
  env_.clear();
  const cell::ChannelId freed = node_->in_use().first() == borrowed
                                    ? node_->in_use().next_after(borrowed)
                                    : node_->in_use().first();
  node_->release_channel(freed, 1);
  EXPECT_TRUE(env_.reassigned().empty())
      << "no silent primary acquisition while a searcher may pick it";
  // The searcher announces (taking nothing); repack can proceed on the
  // next release event... or immediately via the resume path? The gate
  // lifts, but repack re-triggers only on usage-change events — release
  // another channel to prove it works afterwards.
  node_->on_message(testutil::mk_acquisition(in()[0], kSelf, net::AcqType::kSearch,
                                             cell::kNoChannel));
  env_.clear();
  const cell::ChannelId freed2 = (node_->in_use() & plan_.primary(kSelf)).first();
  ASSERT_NE(freed2, cell::kNoChannel);
  node_->release_channel(freed2, 2);
  ASSERT_EQ(env_.reassigned().size(), 1u);
  EXPECT_EQ(env_.reassigned()[0].from_ch, borrowed);
}

TEST_F(AdaptiveUnit, RepackOffByDefault) {
  exhaust_primaries();
  node_->request_channel(4);
  const net::Message rnd = env_.sent_of(net::MsgKind::kRequest)[0];
  const cell::ChannelId borrowed = rnd.channel;
  for (const cell::CellId j : in())
    node_->on_message(testutil::mk_echo_response(rnd, j, net::ResType::kGrant));
  env_.clear();
  const cell::ChannelId freed = node_->in_use().first() == borrowed
                                    ? node_->in_use().next_after(borrowed)
                                    : node_->in_use().first();
  node_->release_channel(freed, 1);
  EXPECT_TRUE(env_.reassigned().empty()) << "paper-faithful default: no repack";
  EXPECT_TRUE(node_->in_use().contains(borrowed));
}

// ------------------------------------------------------------ Fig. 10 -----

TEST_F(AdaptiveUnit, BestAvoidsBorrowingNeighbours) {
  exhaust_primaries();
  // Tell the node that all neighbours except one are borrowing.
  const cell::CellId lender = in()[4];
  for (const cell::CellId j : in()) {
    if (j != lender) node_->on_message(testutil::mk_change_mode(j, kSelf, 1));
  }
  env_.clear();
  node_->request_channel(4);
  // The update round must target a channel the non-borrowing lender can
  // give — since all known Use sets are empty, any free channel qualifies;
  // crucially a round IS attempted (Best() found the lender).
  const auto reqs = env_.sent_of(net::MsgKind::kRequest);
  ASSERT_EQ(reqs.size(), n_in());
  EXPECT_EQ(reqs[0].req_type, net::ReqType::kUpdate);
}

TEST_F(AdaptiveUnit, AllNeighboursBorrowingSkipsStraightToSearch) {
  exhaust_primaries();
  for (const cell::CellId j : in()) {
    node_->on_message(testutil::mk_change_mode(j, kSelf, 1));
  }
  env_.clear();
  node_->request_channel(4);
  const auto reqs = env_.sent_of(net::MsgKind::kRequest);
  ASSERT_EQ(reqs.size(), n_in());
  EXPECT_EQ(reqs[0].req_type, net::ReqType::kSearch)
      << "Best() = -1 when every neighbour is borrowing";
  EXPECT_EQ(node_->mode(), 3);
}

TEST_F(AdaptiveUnit, BorrowPrefersLendersPrimaries) {
  exhaust_primaries();
  node_->request_channel(4);
  const auto reqs = env_.sent_of(net::MsgKind::kRequest);
  ASSERT_FALSE(reqs.empty());
  // All neighbours look identical (empty Use sets); the picked channel
  // must be a primary of SOME interference neighbour — i.e. borrowed from
  // a real lender rather than a random spectrum hole.
  const cell::ChannelId r = reqs[0].channel;
  bool primary_of_neighbor = false;
  for (const cell::CellId j : in()) {
    if (plan_.primary(j).contains(r)) primary_of_neighbor = true;
  }
  EXPECT_TRUE(primary_of_neighbor);
}

}  // namespace
}  // namespace dca
