// Tests for scenario-file parsing/serialization and the JSON writer.
#include <gtest/gtest.h>

#include "metrics/json.hpp"
#include "runner/config_file.hpp"

namespace dca {
namespace {

using runner::ScenarioConfig;

TEST(ScenarioFile, AppliesKeysAndComments) {
  ScenarioConfig cfg;
  std::string err;
  const std::string text = R"(
# paper-scale torus
rows = 14
cols = 14
torus = yes
channels = 35      # tight spectrum
latency_ms = 100.5
theta_high = 6
update_pick = round-robin
strict_fig4 = true
)";
  ASSERT_TRUE(runner::apply_scenario_text(text, cfg, err)) << err;
  EXPECT_EQ(cfg.rows, 14);
  EXPECT_EQ(cfg.cols, 14);
  EXPECT_EQ(cfg.wrap, cell::Wrap::kToroidal);
  EXPECT_EQ(cfg.n_channels, 35);
  EXPECT_EQ(cfg.latency, sim::microseconds(100'500));
  EXPECT_EQ(cfg.adaptive.theta_high, 6);
  EXPECT_EQ(cfg.update_pick, proto::ChannelPick::kRoundRobin);
  EXPECT_TRUE(cfg.adaptive.strict_fig4);
  // Untouched keys keep defaults.
  EXPECT_EQ(cfg.cluster, 7);
  EXPECT_EQ(cfg.adaptive.theta_low, 2);
}

TEST(ScenarioFile, RejectsUnknownKeyWithLineNumber) {
  ScenarioConfig cfg;
  std::string err;
  EXPECT_FALSE(runner::apply_scenario_text("rows = 8\nbogus = 1\n", cfg, err));
  EXPECT_NE(err.find("line 2"), std::string::npos);
  EXPECT_NE(err.find("bogus"), std::string::npos);
}

TEST(ScenarioFile, RejectsMalformedValues) {
  ScenarioConfig cfg;
  std::string err;
  EXPECT_FALSE(runner::apply_scenario_text("rows = eight\n", cfg, err));
  EXPECT_FALSE(runner::apply_scenario_text("torus = maybe\n", cfg, err));
  EXPECT_FALSE(runner::apply_scenario_text("update_pick = fastest\n", cfg, err));
  EXPECT_FALSE(runner::apply_scenario_text("just a line\n", cfg, err));
  EXPECT_NE(err.find("key = value"), std::string::npos);
}

TEST(ScenarioFile, RoundTripsThroughSerialization) {
  ScenarioConfig cfg;
  cfg.rows = 12;
  cfg.cols = 9;
  cfg.wrap = cell::Wrap::kToroidal;
  cfg.greedy_plan = true;
  cfg.n_channels = 42;
  cfg.latency = sim::milliseconds(17);
  cfg.latency_jitter = sim::milliseconds(3);
  cfg.mean_dwell_s = 45.0;
  cfg.seed = 987;
  cfg.update_pick = proto::ChannelPick::kLowest;
  cfg.adaptive.theta_low = 3;
  cfg.adaptive.theta_high = 7;
  cfg.adaptive.alpha = 5;
  cfg.adaptive.strict_fig4 = true;
  cfg.adaptive.use_best_heuristic = false;

  ScenarioConfig back;
  std::string err;
  ASSERT_TRUE(runner::apply_scenario_text(runner::scenario_to_text(cfg), back, err))
      << err;
  EXPECT_EQ(back.rows, cfg.rows);
  EXPECT_EQ(back.cols, cfg.cols);
  EXPECT_EQ(back.wrap, cfg.wrap);
  EXPECT_EQ(back.greedy_plan, cfg.greedy_plan);
  EXPECT_EQ(back.n_channels, cfg.n_channels);
  EXPECT_EQ(back.latency, cfg.latency);
  EXPECT_EQ(back.latency_jitter, cfg.latency_jitter);
  EXPECT_DOUBLE_EQ(back.mean_dwell_s, cfg.mean_dwell_s);
  EXPECT_EQ(back.seed, cfg.seed);
  EXPECT_EQ(back.update_pick, cfg.update_pick);
  EXPECT_EQ(back.adaptive.theta_low, cfg.adaptive.theta_low);
  EXPECT_EQ(back.adaptive.theta_high, cfg.adaptive.theta_high);
  EXPECT_EQ(back.adaptive.alpha, cfg.adaptive.alpha);
  EXPECT_EQ(back.adaptive.strict_fig4, cfg.adaptive.strict_fig4);
  EXPECT_EQ(back.adaptive.use_best_heuristic, cfg.adaptive.use_best_heuristic);
}

TEST(ScenarioFile, MissingFileReportsError) {
  ScenarioConfig cfg;
  std::string err;
  EXPECT_FALSE(runner::load_scenario_file("/nonexistent/scenario.ini", cfg, err));
  EXPECT_NE(err.find("cannot read"), std::string::npos);
}

// ------------------------------------------------------------- JSON -------

TEST(Json, ObjectsArraysAndCommas) {
  metrics::JsonWriter w;
  w.begin_object();
  w.key("name");
  w.value("adaptive");
  w.key("drop");
  w.value(0.25);
  w.key("xs");
  w.begin_array();
  w.value(1);
  w.value(2);
  w.value(false);
  w.null();
  w.end_array();
  w.key("nested");
  w.begin_object();
  w.key("k");
  w.value(std::uint64_t{7});
  w.end_object();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"name\":\"adaptive\",\"drop\":0.25,\"xs\":[1,2,false,null],"
            "\"nested\":{\"k\":7}}");
}

TEST(Json, EscapesStrings) {
  metrics::JsonWriter w;
  w.value("a\"b\\c\nd\te\x01");
  EXPECT_EQ(w.str(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
}

TEST(Json, NonFiniteNumbersBecomeNull) {
  metrics::JsonWriter w;
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::nan(""));
  w.value(1.5);
  w.end_array();
  EXPECT_EQ(w.str(), "[null,null,1.5]");
}

TEST(Json, ArrayOfObjects) {
  metrics::JsonWriter w;
  w.begin_array();
  for (int i = 0; i < 2; ++i) {
    w.begin_object();
    w.key("i");
    w.value(i);
    w.end_object();
  }
  w.end_array();
  EXPECT_EQ(w.str(), "[{\"i\":0},{\"i\":1}]");
}

}  // namespace
}  // namespace dca
