// Trace-based conformance: every scheme's recorded run must satisfy the
// paper's invariants (reuse-distance exclusivity, timestamp-ordered
// search sequencing, lifecycle hygiene, terminal cleanliness) — fault
// free and under the fault cocktail — and the checker itself must catch
// seeded bugs (mutated traces) rather than vacuously pass.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "runner/conformance.hpp"
#include "runner/experiment.hpp"
#include "sim/trace.hpp"

namespace dca {
namespace {

using runner::ConformanceReport;
using runner::Scheme;
using sim::TraceEvent;
using sim::TraceKind;

runner::ScenarioConfig base_config() {
  runner::ScenarioConfig cfg;
  cfg.rows = 5;
  cfg.cols = 5;
  cfg.n_channels = 35;
  cfg.duration = sim::minutes(3);
  cfg.warmup = sim::seconds(30);
  cfg.seed = 5;
  return cfg;
}

struct Checked {
  ConformanceReport report;
  runner::RunResult result;
};

Checked run_checked(const runner::ScenarioConfig& cfg, Scheme s, double rho) {
  sim::TraceRecorder rec;
  Checked out;
  out.result = runner::run_uniform(cfg, s, rho, &rec);
  const cell::HexGrid grid(cfg.rows, cfg.cols, cfg.interference_radius, cfg.wrap);
  out.report = runner::check_trace(grid, cfg.n_channels, rec.events());
  return out;
}

constexpr Scheme kDcaSchemes[] = {Scheme::kBasicSearch, Scheme::kBasicUpdate,
                                  Scheme::kAdvancedUpdate, Scheme::kAdvancedSearch,
                                  Scheme::kAdaptive};

TEST(Conformance, AllSchemesCleanFaultFree) {
  const runner::ScenarioConfig cfg = base_config();
  for (const Scheme s : kDcaSchemes) {
    for (const double rho : {0.4, 1.1}) {
      const Checked c = run_checked(cfg, s, rho);
      EXPECT_TRUE(c.report.ok())
          << runner::scheme_name(s) << " rho " << rho << ": "
          << c.report.to_string();
      EXPECT_TRUE(c.report.saw_run_end);
      EXPECT_EQ(c.report.timeouts, 0u)
          << "no timers may fire in a fault-free run";
      EXPECT_GT(c.report.events, 0u);
    }
  }
}

TEST(Conformance, AllSchemesCleanUnderFaults) {
  runner::ScenarioConfig cfg = base_config();
  cfg.fault.drop_prob = 0.05;
  cfg.fault.dup_prob = 0.03;
  cfg.fault.jitter = sim::milliseconds(2);
  cfg.fault.pause_rate_per_min = 0.3;
  cfg.fault.pause_mean_s = 1.0;
  cfg.request_timeout = sim::milliseconds(400);
  for (const Scheme s : kDcaSchemes) {
    for (const double rho : {0.4, 1.1}) {
      const Checked c = run_checked(cfg, s, rho);
      // Timeout aborts are the one permitted anomaly under faults; actual
      // invariant violations (reuse, leaks, wedged calls) never are.
      EXPECT_TRUE(c.report.ok())
          << runner::scheme_name(s) << " rho " << rho << ": "
          << c.report.to_string();
      EXPECT_TRUE(c.result.quiescent);
    }
  }
}

TEST(Conformance, AdaptiveSevenBySevenWithDropsHasNoViolationsOrWedgedCalls) {
  // The headline acceptance scenario: 49 cells, 5% frame loss, adaptive.
  runner::ScenarioConfig cfg;
  cfg.rows = 7;
  cfg.cols = 7;
  cfg.duration = sim::minutes(4);
  cfg.warmup = sim::seconds(60);
  cfg.fault.drop_prob = 0.05;
  cfg.request_timeout = sim::milliseconds(500);
  const Checked c = run_checked(cfg, Scheme::kAdaptive, 0.6);
  EXPECT_TRUE(c.report.ok()) << c.report.to_string();
  EXPECT_TRUE(c.result.quiescent) << "no wedged calls allowed";
  EXPECT_GT(c.result.transport.frames_dropped, 0u);
}

// -- seeded-bug detection -----------------------------------------------

bool flags_rule(const ConformanceReport& r, const std::string& rule) {
  return std::any_of(r.violations.begin(), r.violations.end(),
                     [&](const auto& v) { return v.rule == rule; });
}

TraceEvent ev(TraceKind k, sim::SimTime t, std::int32_t cellId,
              std::int32_t ch = -1, std::uint64_t serial = 0) {
  TraceEvent e;
  e.kind = k;
  e.t = t;
  e.cell = cellId;
  e.channel = ch;
  e.serial = serial;
  return e;
}

TEST(ConformanceDetects, ReuseDistanceConflict) {
  // Cells 0 and 1 are adjacent (well within radius 2) yet hold channel 5
  // simultaneously — the exact bug a broken reuse check would let through.
  const cell::HexGrid grid(3, 3, 2);
  std::vector<TraceEvent> trace{
      ev(TraceKind::kRequest, 10, 0, -1, 1),
      ev(TraceKind::kAcquire, 20, 0, 5, 1),
      ev(TraceKind::kRequest, 30, 1, -1, 2),
      ev(TraceKind::kAcquire, 40, 1, 5, 2),
  };
  const ConformanceReport r = runner::check_trace(grid, 10, trace);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(flags_rule(r, "reuse-distance")) << r.to_string();
}

TEST(ConformanceDetects, LeakedChannelAfterMissingRelease) {
  // A real adaptive run, then mutate: drop the final release — as if
  // teardown forgot to return the channel.
  runner::ScenarioConfig cfg = base_config();
  cfg.duration = sim::minutes(1);
  cfg.warmup = 0;
  sim::TraceRecorder rec;
  (void)runner::run_uniform(cfg, Scheme::kAdaptive, 0.5, &rec);
  std::vector<TraceEvent> trace = rec.events();
  const auto last_release =
      std::find_if(trace.rbegin(), trace.rend(), [](const TraceEvent& e) {
        return e.kind == TraceKind::kRelease;
      });
  ASSERT_NE(last_release, trace.rend());
  trace.erase(std::next(last_release).base());

  const cell::HexGrid grid(cfg.rows, cfg.cols, cfg.interference_radius, cfg.wrap);
  const ConformanceReport r = runner::check_trace(grid, cfg.n_channels, trace);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(flags_rule(r, "leaked-channel")) << r.to_string();
}

TEST(ConformanceDetects, WedgedCallAndDoubleAcquire) {
  const cell::HexGrid grid(3, 3, 2);
  std::vector<TraceEvent> trace{
      ev(TraceKind::kRequest, 10, 0, -1, 1),  // never resolved -> wedged
      ev(TraceKind::kRequest, 20, 4, -1, 2),
      ev(TraceKind::kAcquire, 30, 4, 2, 2),
      ev(TraceKind::kAcquire, 40, 4, 2, 2),  // double acquire
  };
  const ConformanceReport r = runner::check_trace(grid, 10, trace);
  EXPECT_TRUE(flags_rule(r, "wedged-call")) << r.to_string();
  EXPECT_TRUE(flags_rule(r, "double-acquire")) << r.to_string();
}

TEST(ConformanceDetects, SearchConcludingOutOfTimestampOrder) {
  // Two interfering searches; the younger (higher Lamport ts) concludes
  // first while the older is still open — forbidden by the deferral rule.
  const cell::HexGrid grid(3, 3, 2);
  std::vector<TraceEvent> trace{
      ev(TraceKind::kRequest, 10, 0, -1, 1),
      ev(TraceKind::kRequest, 10, 1, -1, 2),
  };
  TraceEvent s0 = ev(TraceKind::kSearchStart, 20, 0, -1, 1);
  s0.a = 5;  // older timestamp
  s0.b = 0;
  TraceEvent s1 = ev(TraceKind::kSearchStart, 20, 1, -1, 2);
  s1.a = 9;  // younger timestamp
  s1.b = 1;
  TraceEvent d1 = ev(TraceKind::kSearchDecide, 30, 1, 3, 2);
  d1.a = 1;  // success while the older search is still undecided
  trace.push_back(s0);
  trace.push_back(s1);
  trace.push_back(d1);
  const ConformanceReport r = runner::check_trace(grid, 10, trace);
  EXPECT_TRUE(flags_rule(r, "search-order")) << r.to_string();
}

TEST(ConformanceDetects, NonQuiescentRunEnd) {
  const cell::HexGrid grid(3, 3, 2);
  TraceEvent end = ev(TraceKind::kRunEnd, 100, -1);
  end.a = 0;  // run_to_quiescence failed
  const ConformanceReport r = runner::check_trace(grid, 10, {end});
  EXPECT_TRUE(flags_rule(r, "not-quiescent")) << r.to_string();
}

// -- JSONL round trip ----------------------------------------------------

TEST(TraceJsonl, RoundTripsARealTrace) {
  runner::ScenarioConfig cfg = base_config();
  cfg.duration = sim::minutes(1);
  cfg.fault.drop_prob = 0.05;
  cfg.request_timeout = sim::milliseconds(400);
  sim::TraceRecorder rec;
  (void)runner::run_uniform(cfg, Scheme::kAdaptive, 0.7, &rec);
  ASSERT_GT(rec.size(), 0u);

  const std::string jsonl = runner::trace_to_jsonl(rec.events());
  std::vector<TraceEvent> parsed;
  std::string error;
  ASSERT_TRUE(runner::trace_from_jsonl(jsonl, parsed, error)) << error;
  EXPECT_EQ(parsed, rec.events());
}

TEST(TraceJsonl, RejectsMalformedLines) {
  std::vector<TraceEvent> parsed;
  std::string error;
  EXPECT_FALSE(runner::trace_from_jsonl("{\"k\":\"nonsense\",\"t\":0}", parsed,
                                        error));
  EXPECT_FALSE(error.empty());
}

TEST(TraceDiff, IdenticalTracesReportIdentical) {
  runner::ScenarioConfig cfg = base_config();
  cfg.duration = sim::minutes(1);
  sim::TraceRecorder rec;
  (void)runner::run_uniform(cfg, Scheme::kBasicSearch, 0.7, &rec);
  ASSERT_GT(rec.size(), 3u);
  const auto d = runner::diff_traces(rec.events(), rec.events());
  EXPECT_TRUE(d.identical);
  EXPECT_EQ(d.size_a, rec.size());
  EXPECT_EQ(d.size_b, rec.size());
}

TEST(TraceDiff, ReportsFirstDivergingIndex) {
  runner::ScenarioConfig cfg = base_config();
  cfg.duration = sim::minutes(1);
  sim::TraceRecorder rec;
  (void)runner::run_uniform(cfg, Scheme::kBasicSearch, 0.7, &rec);
  ASSERT_GT(rec.size(), 10u);
  std::vector<TraceEvent> mutated = rec.events();
  mutated[7].cell += 1;
  const auto d = runner::diff_traces(rec.events(), mutated);
  EXPECT_FALSE(d.identical);
  EXPECT_EQ(d.index, 7u);
  EXPECT_NE(d.description.find("event 7"), std::string::npos);
}

TEST(TraceDiff, LengthMismatchDivergesAtCommonPrefixEnd) {
  std::vector<TraceEvent> a(5), b(5);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i].t = b[i].t = static_cast<sim::SimTime>(i);
  }
  b.push_back(TraceEvent{});
  const auto d = runner::diff_traces(a, b);
  EXPECT_FALSE(d.identical);
  EXPECT_EQ(d.index, 5u);
  EXPECT_EQ(d.size_a, 5u);
  EXPECT_EQ(d.size_b, 6u);
}

}  // namespace
}  // namespace dca
