// Metro-scale smoke: a 60x60-cell high-load streaming run in its own test
// binary (so getrusage's process-wide peak-RSS high-water mark measures
// this run, not a neighbouring test), gating on
//
//   * conformance — the in-engine checker replays the streamed trace
//     against every paper invariant while the trace itself is discarded
//     through a sink (nothing is buffered);
//   * a peak-RSS budget in bytes per cell — the regression tripwire for
//     the compact per-cell state. The floor is the three mt19937_64
//     streams per cell (~7.5 KiB, unswappable without breaking
//     bit-identity) plus node/link/truth state; on top of that ride the
//     ~9 Erlangs/cell of live-call state this load sustains, the fixed
//     process overhead (binary + gtest + allocator, which amortizes at
//     metro scale but not over 3600 cells), and ~64 B per offered call
//     of deferred message-tally state. Measured: ~44 KiB/cell here
//     (60x60, 30 s, ~194k calls) and ~25 KiB/cell at 300x300 with 10^6
//     calls. The 64 KiB ceiling leaves ~1.4x headroom so real leaks
//     (per-cell vectors sized by n_cells again, un-pruned timelines,
//     buffered records) trip it while allocator noise does not.
//
// Runs under the `metro` ctest label; CI's release lane includes it.
#include <cstdint>

#include <gtest/gtest.h>

#include "runner/experiment.hpp"
#include "sim/trace.hpp"

namespace dca {
namespace {

TEST(MetroSmoke, HighLoadStreamingRunStaysConformantWithinMemoryBudget) {
  runner::ScenarioConfig cfg;
  cfg.rows = 60;
  cfg.cols = 60;
  cfg.interference_radius = 2;
  cfg.n_channels = 70;
  cfg.cluster = 7;
  cfg.mean_holding_s = 5.0;  // short calls => high event density
  cfg.latency = sim::milliseconds(5);
  cfg.seed = 11;
  cfg.duration = sim::seconds(30);
  cfg.warmup = sim::seconds(5);
  cfg.shards = 4;
  cfg.stream_metrics = true;

  // Discarding sink: the engine folds the trace out in canonical order,
  // the conformance checker sees every event, and nothing accumulates.
  sim::TraceRecorder rec;
  rec.set_sink([](const sim::TraceEvent&) {});

  const runner::RunResult r =
      runner::run_uniform(cfg, runner::Scheme::kAdaptive, 0.9, &rec);

  // ~194k offered calls at these rates; the run must complete clean.
  EXPECT_GT(r.offered_calls, 100'000u);
  EXPECT_TRUE(r.quiescent);
  EXPECT_EQ(r.violations, 0u);
  ASSERT_TRUE(r.conformance_checked);
  EXPECT_EQ(r.conformance_violations, 0u);
  EXPECT_TRUE(r.conformance_ok());

#ifdef __linux__
  ASSERT_GT(r.peak_rss_bytes, 0u);
  const std::uint64_t cells =
      static_cast<std::uint64_t>(cfg.rows) * static_cast<std::uint64_t>(cfg.cols);
  const double bytes_per_cell =
      static_cast<double>(r.peak_rss_bytes) / static_cast<double>(cells);
  constexpr double kBytesPerCellBudget = 64.0 * 1024;
  EXPECT_LE(bytes_per_cell, kBytesPerCellBudget)
      << "peak RSS " << r.peak_rss_bytes << " bytes over " << cells
      << " cells = " << bytes_per_cell
      << " bytes/cell; the metro memory budget is " << kBytesPerCellBudget
      << ". If this is an intentional per-cell cost, re-derive the budget in "
         "docs/ARCHITECTURE.md (memory layout) and update it here.";
#endif
}

}  // namespace
}  // namespace dca
