// Cross-scheme integration tests: the qualitative claims of the paper's
// Sections 1, 5 and 6, checked end-to-end on the simulated system.
#include <gtest/gtest.h>

#include "runner/experiment.hpp"
#include "test_util.hpp"

namespace dca {
namespace {

using runner::RunResult;
using runner::Scheme;
using testutil::small_config;

runner::ScenarioConfig quick_config() {
  auto cfg = small_config();
  cfg.duration = sim::minutes(8);
  cfg.warmup = sim::minutes(1);
  return cfg;
}

TEST(Integration, AllSchemesSafeAndLiveAtModerateLoad) {
  const auto cfg = quick_config();
  for (const Scheme s : runner::kAllSchemes) {
    const RunResult r = runner::run_uniform(cfg, s, 0.6);
    EXPECT_EQ(r.violations, 0u) << runner::scheme_name(s);
    EXPECT_TRUE(r.quiescent) << runner::scheme_name(s);
    EXPECT_EQ(r.agg.offered, r.agg.acquired + r.agg.blocked + r.agg.starved)
        << runner::scheme_name(s);
  }
}

TEST(Integration, AdaptiveIsAllLocalAtLowLoad) {
  // Section 5 / Table 2 premise: at uniformly low load, xi1 -> 1 and the
  // adaptive scheme exchanges (nearly) no messages. This needs the paper's
  // 10-primary pool: with the tiny 3-primary test pool, Erlang-B blocking
  // at rho = 0.1 already causes occasional (legitimate) borrowing.
  auto cfg = testutil::paper_config();
  cfg.duration = sim::minutes(10);
  cfg.warmup = sim::minutes(1);
  const RunResult r = runner::run_uniform(cfg, Scheme::kAdaptive, 0.1);
  EXPECT_GT(r.agg.xi1, 0.999);
  EXPECT_LT(r.agg.messages_per_call.mean(), 0.5);
  EXPECT_LT(r.agg.delay_in_T.mean(), 0.05);
}

TEST(Integration, DynamicSchemesBeatFcaOnDropsAtHighLoad) {
  // The reason dynamic allocation exists: fewer denials at the same load.
  const auto cfg = quick_config();
  const double rho = 0.9;
  const double fca = runner::run_uniform(cfg, Scheme::kFca, rho).agg.drop_rate();
  for (const Scheme s :
       {Scheme::kBasicSearch, Scheme::kBasicUpdate, Scheme::kAdaptive}) {
    const double d = runner::run_uniform(cfg, s, rho).agg.drop_rate();
    EXPECT_LT(d, fca) << runner::scheme_name(s) << " vs FCA at rho=" << rho;
  }
}

TEST(Integration, FcaMatchesDynamicAtVeryLowLoad) {
  const auto cfg = quick_config();
  const double fca = runner::run_uniform(cfg, Scheme::kFca, 0.1).agg.drop_rate();
  const double ad = runner::run_uniform(cfg, Scheme::kAdaptive, 0.1).agg.drop_rate();
  EXPECT_NEAR(fca, ad, 0.02);
}

TEST(Integration, AdaptiveMessagesBelowBasicUpdateEverywhere) {
  // The headline economy claim: the adaptive scheme never pays the
  // always-coordinate tax of the update scheme.
  const auto cfg = quick_config();
  for (const double rho : {0.2, 0.5, 0.8}) {
    const auto upd = runner::run_uniform(cfg, Scheme::kBasicUpdate, rho);
    const auto ad = runner::run_uniform(cfg, Scheme::kAdaptive, rho);
    EXPECT_LT(ad.agg.messages_per_call.mean(), upd.agg.messages_per_call.mean())
        << "rho=" << rho;
  }
}

TEST(Integration, AdaptiveDelayBelowBasicSearchAtLowAndModerateLoad) {
  // Search pays 2T on every acquisition; adaptive only when borrowing.
  const auto cfg = quick_config();
  for (const double rho : {0.2, 0.5}) {
    const auto se = runner::run_uniform(cfg, Scheme::kBasicSearch, rho);
    const auto ad = runner::run_uniform(cfg, Scheme::kAdaptive, rho);
    EXPECT_LT(ad.agg.delay_in_T.mean(), se.agg.delay_in_T.mean()) << "rho=" << rho;
  }
}

TEST(Integration, HotspotAdaptiveBorrowsAndDropsLittle) {
  // Section 1's motivating scenario: a temporary hot spot in an otherwise
  // lightly loaded system. The static scheme drops calls at the hot cell;
  // the adaptive scheme borrows from idle neighbours.
  auto cfg = quick_config();
  cfg.duration = sim::minutes(10);
  const auto hot_lo = sim::minutes(2);
  const auto hot_hi = sim::minutes(8);
  const RunResult fca =
      runner::run_hotspot(cfg, Scheme::kFca, 0.15, 8.0, hot_lo, hot_hi);
  const RunResult ad =
      runner::run_hotspot(cfg, Scheme::kAdaptive, 0.15, 8.0, hot_lo, hot_hi);
  EXPECT_EQ(ad.violations, 0u);
  EXPECT_LT(ad.agg.drop_rate(), fca.agg.drop_rate());
  // The adaptive run should show real borrowing at the hot cell.
  EXPECT_GT(ad.agg.xi2 + ad.agg.xi3, 0.0);
}

TEST(Integration, HotspotNeighborsStayCheapUnderAdaptive) {
  // Messages concentrate on the hot region; system-wide per-call cost
  // stays far below the basic update scheme's always-on handshake.
  auto cfg = quick_config();
  cfg.duration = sim::minutes(10);
  const auto hot_lo = sim::minutes(2);
  const auto hot_hi = sim::minutes(8);
  const RunResult ad =
      runner::run_hotspot(cfg, Scheme::kAdaptive, 0.15, 8.0, hot_lo, hot_hi);
  const RunResult upd =
      runner::run_hotspot(cfg, Scheme::kBasicUpdate, 0.15, 8.0, hot_lo, hot_hi);
  EXPECT_LT(ad.messages_per_offered(), upd.messages_per_offered());
}

TEST(Integration, StarvationOnlyInUpdateFamily) {
  // With a finite retry cap, the update-family schemes can starve; the
  // adaptive scheme's search fallback guarantees a decision instead.
  auto cfg = quick_config();
  cfg.max_update_attempts = 2;
  const auto ad = runner::run_uniform(cfg, Scheme::kAdaptive, 0.95);
  EXPECT_EQ(ad.agg.starved, 0u)
      << "adaptive requests always end in acquire or no-channel";
  const auto se = runner::run_uniform(cfg, Scheme::kBasicSearch, 0.95);
  EXPECT_EQ(se.agg.starved, 0u);
}

TEST(Integration, MessageTotalsConsistentWithAttribution) {
  const auto cfg = quick_config();
  const RunResult r = runner::run_uniform(cfg, Scheme::kAdaptive, 0.7);
  // Every sent message is either billed to a call or explicitly
  // unattributed — nothing vanishes.
  // (Aggregate only covers post-warmup records, so compare with the sum
  // over ALL records via messages_per_call reconstruction at warmup = 0.)
  auto cfg0 = cfg;
  cfg0.warmup = 0;
  const RunResult r0 = runner::run_uniform(cfg0, Scheme::kAdaptive, 0.7);
  const double billed = r0.agg.messages_per_call.sum();
  EXPECT_GT(r0.total_messages, 0u);
  EXPECT_LE(billed, static_cast<double>(r0.total_messages));
}

TEST(Integration, MobilityStressAllSchemes) {
  auto cfg = quick_config();
  cfg.duration = sim::minutes(6);
  cfg.mean_dwell_s = 60.0;
  for (const Scheme s : runner::kAllSchemes) {
    const RunResult r = runner::run_uniform(cfg, s, 0.5);
    EXPECT_EQ(r.violations, 0u) << runner::scheme_name(s);
    EXPECT_TRUE(r.quiescent) << runner::scheme_name(s);
  }
}

}  // namespace
}  // namespace dca
