// Unit tests for the discrete-event kernel: event ordering, cancellation,
// clock semantics, RNG stream independence, and the trace log.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/log.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/types.hpp"

namespace dca::sim {
namespace {

TEST(Types, DurationConstructors) {
  EXPECT_EQ(microseconds(7), 7);
  EXPECT_EQ(milliseconds(3), 3000);
  EXPECT_EQ(seconds(2), 2'000'000);
  EXPECT_EQ(minutes(1), 60'000'000);
}

TEST(Types, FromSecondsTruncatesAndClamps) {
  EXPECT_EQ(from_seconds(1.5), 1'500'000);
  EXPECT_EQ(from_seconds(0.0), 0);
  EXPECT_EQ(from_seconds(-3.0), 0);
  EXPECT_DOUBLE_EQ(to_seconds(2'500'000), 2.5);
  EXPECT_DOUBLE_EQ(to_milliseconds(2'500), 2.5);
}

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(30, [&] { fired.push_back(3); });
  q.schedule(10, [&] { fired.push_back(1); });
  q.schedule(20, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakBySchedulingOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    q.schedule(42, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.schedule(5, [&] { ran = true; });
  q.schedule(6, [] {});
  q.cancel(id);
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().action();
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelledHeadIsSkippedByNextTime) {
  EventQueue q;
  const EventId id = q.schedule(5, [] {});
  q.schedule(9, [] {});
  q.cancel(id);
  EXPECT_EQ(q.next_time(), 9);
}

TEST(EventQueue, CancelAfterFireDoesNotCorruptLiveCount) {
  // Regression (code review): cancelling an id that already fired used to
  // insert a tombstone and decrement the live count, making empty() report
  // true while a real event was still pending.
  EventQueue q;
  const EventId fired = q.schedule(1, [] {});
  q.pop().action();          // `fired` is gone
  bool ran = false;
  q.schedule(2, [&] { ran = true; });
  q.cancel(fired);           // stale handle: must be a true no-op
  EXPECT_FALSE(q.empty());
  EXPECT_EQ(q.size(), 1u);
  ASSERT_FALSE(q.empty());
  q.pop().action();
  EXPECT_TRUE(ran);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelTwiceAndCancelInvalidAreNoops) {
  EventQueue q;
  const EventId id = q.schedule(5, [] {});
  q.cancel(id);
  q.cancel(id);
  q.cancel(kInvalidEventId);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue q;
  q.schedule(1, [] {});
  q.schedule(2, [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), kTimeNever);
}

TEST(Simulator, NowAdvancesToEventTime) {
  Simulator s;
  SimTime seen = -1;
  s.schedule_in(100, [&] { seen = s.now(); });
  s.run_to_quiescence();
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(s.now(), 100);
}

TEST(Simulator, NegativeDelayMeansNow) {
  Simulator s;
  s.schedule_in(50, [] {});
  s.run_to_quiescence();
  SimTime seen = -1;
  s.schedule_in(-10, [&] { seen = s.now(); });
  s.run_to_quiescence();
  EXPECT_EQ(seen, 50);
}

TEST(Simulator, RunUntilStopsAtDeadlineAndAdvancesClock) {
  Simulator s;
  int fired = 0;
  for (SimTime t = 10; t <= 100; t += 10) s.schedule_at(t, [&] { ++fired; });
  s.run_until(55);
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(s.now(), 55);  // clock moves to the deadline even with no event there
  s.run_to_quiescence();
  EXPECT_EQ(fired, 10);
}

TEST(Simulator, EventsAtDeadlineDoFire) {
  Simulator s;
  bool ran = false;
  s.schedule_at(70, [&] { ran = true; });
  s.run_until(70);
  EXPECT_TRUE(ran);
}

TEST(Simulator, EventsScheduleMoreEvents) {
  Simulator s;
  std::vector<SimTime> ticks;
  std::function<void()> chain = [&] {
    ticks.push_back(s.now());
    if (ticks.size() < 4) s.schedule_in(10, chain);
  };
  s.schedule_in(10, chain);
  s.run_to_quiescence();
  EXPECT_EQ(ticks, (std::vector<SimTime>{10, 20, 30, 40}));
}

TEST(Simulator, ExecutedCountsEvents) {
  Simulator s;
  for (int i = 0; i < 7; ++i) s.schedule_in(i, [] {});
  s.run_to_quiescence();
  EXPECT_EQ(s.executed(), 7u);
}

// -- run_until tie handling (the legacy-order contract the sharded
//    kernel's canonical keys must reproduce; see docs/ARCHITECTURE.md) --

TEST(Simulator, SameInstantEventsFireInSchedulingOrder) {
  Simulator s;
  std::vector<int> fired;
  s.schedule_at(100, [&] { fired.push_back(1); });
  s.schedule_at(100, [&] {
    fired.push_back(2);
    // An event scheduled mid-instant for the same instant runs after
    // everything already queued there (insertion order is the tie-break).
    s.schedule_at(100, [&] { fired.push_back(4); });
  });
  s.schedule_at(100, [&] { fired.push_back(3); });
  s.run_until(100);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(s.now(), 100);
}

TEST(Simulator, CancelOfAlreadyPoppedEventIsHarmless) {
  Simulator s;
  int fired = 0;
  const EventId a = s.schedule_in(10, [&] { ++fired; });
  EventId b = kInvalidEventId;
  b = s.schedule_in(20, [&] { ++fired; });
  s.run_until(15);
  EXPECT_EQ(fired, 1);
  s.cancel(a);  // already fired: must not corrupt the pending set
  EXPECT_EQ(s.pending(), 1u);
  s.cancel(a);  // and twice
  s.run_to_quiescence();
  EXPECT_EQ(fired, 2);
  s.cancel(b);  // after the whole queue drained
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Simulator, ScheduleAtInThePastClampsToNow) {
  Simulator s;
  std::vector<SimTime> fired_at;
  s.schedule_at(50, [&] {
    // "In the past" from inside an event at t=50.
    s.schedule_at(10, [&] { fired_at.push_back(s.now()); });
  });
  s.schedule_at(60, [&] { fired_at.push_back(s.now()); });
  s.run_to_quiescence();
  // The clamped event fires at 50 (current instant), before the one at 60.
  ASSERT_EQ(fired_at.size(), 2u);
  EXPECT_EQ(fired_at[0], 50);
  EXPECT_EQ(fired_at[1], 60);
  EXPECT_EQ(s.executed(), 3u);
}

TEST(Rng, SameSeedSameSequence) {
  RngStream a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DerivedStreamsDiffer) {
  RngStream a = RngStream::derive(1, 0);
  RngStream b = RngStream::derive(1, 1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.uniform_int(0, 1'000'000) == b.uniform_int(0, 1'000'000)) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ExponentialMeanIsApproximatelyRight) {
  RngStream r(7);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential_mean(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.2);
}

TEST(Rng, ExponentialGapIsPositive) {
  RngStream r(9);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(r.exponential_gap(1e9), 1);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  RngStream r(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_int(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, PickIndexInRange) {
  RngStream r(13);
  for (int i = 0; i < 500; ++i) EXPECT_LT(r.pick_index(7), 7u);
}

TEST(Rng, BernoulliExtremes) {
  RngStream r(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(TraceLog, DisabledByDefault) {
  TraceLog log;
  int lines = 0;
  log.set_sink([&](std::string_view) { ++lines; });
  log.emit(LogLevel::kInfo, 0, "hello");
  EXPECT_EQ(lines, 0);
}

TEST(TraceLog, EmitsAtOrBelowLevelWithTimestamp) {
  TraceLog log;
  std::vector<std::string> lines;
  log.set_sink([&](std::string_view l) { lines.emplace_back(l); });
  log.set_level(LogLevel::kDebug);
  log.emit(LogLevel::kInfo, 2'500'000, "a");
  log.emit(LogLevel::kDebug, 0, "b");
  log.emit(LogLevel::kTrace, 0, "c");  // above level: dropped
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("2.500000"), std::string::npos);
  EXPECT_NE(lines[0].find("a"), std::string::npos);
}

TEST(TraceLog, FormatLineConcatenates) {
  EXPECT_EQ(format_line("x=", 3, " y=", 4.5), "x=3 y=4.5");
}

}  // namespace
}  // namespace dca::sim
