// Unit tests for the command-line option parser used by dcasim.
#include <gtest/gtest.h>

#include "runner/cli.hpp"

namespace dca::runner {
namespace {

ArgParser make() {
  ArgParser p("tool", "test parser");
  p.add_string("scheme", "adaptive", "scheme name")
      .add_int("rows", 8, "grid rows")
      .add_double("rho", 0.6, "offered load")
      .add_flag("torus", "wraparound");
  return p;
}

TEST(Cli, DefaultsWhenNothingGiven) {
  auto p = make();
  const char* argv[] = {"tool"};
  ASSERT_TRUE(p.parse(1, argv));
  EXPECT_EQ(p.get_string("scheme"), "adaptive");
  EXPECT_EQ(p.get_int("rows"), 8);
  EXPECT_DOUBLE_EQ(p.get_double("rho"), 0.6);
  EXPECT_FALSE(p.get_flag("torus"));
  EXPECT_FALSE(p.was_set("rows"));
}

TEST(Cli, SpaceSeparatedValues) {
  auto p = make();
  const char* argv[] = {"tool", "--scheme", "fca", "--rows", "14", "--rho", "0.9"};
  ASSERT_TRUE(p.parse(7, argv));
  EXPECT_EQ(p.get_string("scheme"), "fca");
  EXPECT_EQ(p.get_int("rows"), 14);
  EXPECT_DOUBLE_EQ(p.get_double("rho"), 0.9);
  EXPECT_TRUE(p.was_set("rows"));
}

TEST(Cli, EqualsSyntaxAndFlags) {
  auto p = make();
  const char* argv[] = {"tool", "--rows=12", "--torus"};
  ASSERT_TRUE(p.parse(3, argv));
  EXPECT_EQ(p.get_int("rows"), 12);
  EXPECT_TRUE(p.get_flag("torus"));
}

TEST(Cli, UnknownOptionFails) {
  auto p = make();
  const char* argv[] = {"tool", "--bogus", "1"};
  EXPECT_FALSE(p.parse(3, argv));
  EXPECT_NE(p.error().find("unknown option"), std::string::npos);
}

TEST(Cli, MissingValueFails) {
  auto p = make();
  const char* argv[] = {"tool", "--rows"};
  EXPECT_FALSE(p.parse(2, argv));
  EXPECT_NE(p.error().find("needs a value"), std::string::npos);
}

TEST(Cli, BadIntegerFails) {
  auto p = make();
  const char* argv[] = {"tool", "--rows", "eight"};
  EXPECT_FALSE(p.parse(3, argv));
  EXPECT_NE(p.error().find("expects an integer"), std::string::npos);
}

TEST(Cli, BadDoubleFails) {
  auto p = make();
  const char* argv[] = {"tool", "--rho", "high"};
  EXPECT_FALSE(p.parse(3, argv));
  EXPECT_NE(p.error().find("expects a number"), std::string::npos);
}

TEST(Cli, FlagWithValueFails) {
  auto p = make();
  const char* argv[] = {"tool", "--torus=yes"};
  EXPECT_FALSE(p.parse(2, argv));
  EXPECT_NE(p.error().find("takes no value"), std::string::npos);
}

TEST(Cli, PositionalArgumentFails) {
  auto p = make();
  const char* argv[] = {"tool", "whoops"};
  EXPECT_FALSE(p.parse(2, argv));
}

TEST(Cli, HelpRequested) {
  auto p = make();
  const char* argv[] = {"tool", "--help"};
  ASSERT_TRUE(p.parse(2, argv));
  EXPECT_TRUE(p.help_requested());
  const std::string text = p.help_text();
  EXPECT_NE(text.find("--scheme"), std::string::npos);
  EXPECT_NE(text.find("--torus"), std::string::npos);
  EXPECT_NE(text.find("grid rows"), std::string::npos);
}

TEST(Cli, NegativeNumbersParse) {
  ArgParser p("tool", "t");
  p.add_int("hot-cell", -1, "hot cell");
  const char* argv[] = {"tool", "--hot-cell", "-3"};
  ASSERT_TRUE(p.parse(3, argv));
  EXPECT_EQ(p.get_int("hot-cell"), -3);
}

}  // namespace
}  // namespace dca::runner
