// Unit tests for the deterministic fault-injection layer and its
// reliable-transport sublayer: whatever the fault cocktail, the protocol
// layer must still observe exactly-once, per-link FIFO delivery, and the
// entire fault schedule must replay bit-identically from the seed.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "net/fault.hpp"
#include "net/latency.hpp"
#include "net/message.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace dca::net {
namespace {

class FaultNetFixture : public ::testing::Test {
 protected:
  sim::Simulator simulator;
  Network net{simulator, std::make_unique<FixedLatency>(100)};
  std::vector<Message> delivered;

  void SetUp() override {
    net.set_receiver([this](const Message& m) { delivered.push_back(m); });
  }

  static Message mk(cell::CellId from, cell::CellId to, int tag) {
    Message m;
    m.kind = MsgKind::kRelease;
    m.from = from;
    m.to = to;
    m.channel = tag;
    return m;
  }

  void send_burst(int n) {
    for (int i = 0; i < n; ++i) net.send(mk(0, 1, i));
  }

  void expect_exactly_once_in_order(int n) {
    ASSERT_EQ(delivered.size(), static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      EXPECT_EQ(delivered[static_cast<std::size_t>(i)].channel, i);
  }
};

TEST_F(FaultNetFixture, DropsAreRetransmittedExactlyOnceInOrder) {
  FaultConfig cfg;
  cfg.drop_prob = 0.4;
  net.enable_faults(cfg, /*seed=*/7);
  send_burst(60);
  simulator.run_to_quiescence();
  expect_exactly_once_in_order(60);
  EXPECT_GT(net.transport_stats().frames_dropped, 0u);
  EXPECT_GT(net.transport_stats().retransmissions, 0u);
  // The paper's message-complexity counter must not see transport frames.
  EXPECT_EQ(net.total_sent(), 60u);
}

TEST_F(FaultNetFixture, DuplicatesAreFiltered) {
  FaultConfig cfg;
  cfg.dup_prob = 1.0;  // every frame delivered twice
  net.enable_faults(cfg, 7);
  send_burst(20);
  simulator.run_to_quiescence();
  expect_exactly_once_in_order(20);
  EXPECT_EQ(net.transport_stats().frames_duplicated, 20u);
}

TEST_F(FaultNetFixture, JitterCannotReorderALink) {
  FaultConfig cfg;
  cfg.jitter = 5000;  // 50x the base latency: wild physical reordering
  net.enable_faults(cfg, 7);
  send_burst(40);
  simulator.run_to_quiescence();
  expect_exactly_once_in_order(40);
}

TEST_F(FaultNetFixture, FullCocktailStillExactlyOnceInOrder) {
  FaultConfig cfg;
  cfg.drop_prob = 0.3;
  cfg.dup_prob = 0.3;
  cfg.jitter = 2000;
  net.enable_faults(cfg, 99);
  for (int i = 0; i < 30; ++i) {
    net.send(mk(0, 1, i));
    net.send(mk(2, 1, 100 + i));  // second link interleaved
  }
  simulator.run_to_quiescence();
  ASSERT_EQ(delivered.size(), 60u);
  int next01 = 0, next21 = 100;
  for (const Message& m : delivered) {
    if (m.from == 0) {
      EXPECT_EQ(m.channel, next01++);
    } else {
      EXPECT_EQ(m.channel, next21++);
    }
  }
  EXPECT_EQ(next01, 30);
  EXPECT_EQ(next21, 130);
}

TEST_F(FaultNetFixture, PauseHoldsDeliveryAndResumeFlushesInOrder) {
  net.pause(1);
  EXPECT_TRUE(net.is_paused(1));
  send_burst(5);
  net.send(mk(0, 2, 77));  // other destinations unaffected
  simulator.run_to_quiescence();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].to, 2);

  delivered.clear();
  net.resume(1);
  simulator.run_to_quiescence();
  expect_exactly_once_in_order(5);
}

TEST_F(FaultNetFixture, PausedStationKeepsAckingUnderDrops) {
  // A paused allocator process on a live host: transport ACKs still flow,
  // so the sender's pending window drains and delivery completes (in
  // order) the moment the process resumes.
  FaultConfig cfg;
  cfg.drop_prob = 0.3;
  net.enable_faults(cfg, 13);
  net.pause(1);
  send_burst(25);
  simulator.run_to_quiescence();
  EXPECT_TRUE(delivered.empty());
  net.resume(1);
  simulator.run_to_quiescence();
  expect_exactly_once_in_order(25);
}

TEST_F(FaultNetFixture, RecorderSeesDropsDupsAndRetransmits) {
  sim::TraceRecorder rec;
  net.set_recorder(&rec);
  FaultConfig cfg;
  cfg.drop_prob = 0.4;
  cfg.dup_prob = 0.4;
  net.enable_faults(cfg, 7);
  send_burst(40);
  simulator.run_to_quiescence();
  std::uint64_t drops = 0, dups = 0, rexmits = 0;
  for (const sim::TraceEvent& e : rec.events()) {
    if (e.kind == sim::TraceKind::kDrop) ++drops;
    if (e.kind == sim::TraceKind::kDup) ++dups;
    if (e.kind == sim::TraceKind::kRetransmit) ++rexmits;
  }
  EXPECT_EQ(drops, net.transport_stats().frames_dropped);
  EXPECT_EQ(dups, net.transport_stats().frames_duplicated);
  EXPECT_EQ(rexmits, net.transport_stats().retransmissions);
  EXPECT_GT(drops, 0u);
}

using DeliveryLog = std::vector<std::tuple<sim::SimTime, cell::CellId, int>>;

DeliveryLog run_faulty_burst(std::uint64_t seed) {
  sim::Simulator simulator;
  Network net{simulator, std::make_unique<FixedLatency>(100)};
  DeliveryLog log;
  net.set_receiver([&](const Message& m) {
    log.emplace_back(simulator.now(), m.from, m.channel);
  });
  FaultConfig cfg;
  cfg.drop_prob = 0.25;
  cfg.dup_prob = 0.25;
  cfg.jitter = 1500;
  net.enable_faults(cfg, seed);
  for (int i = 0; i < 50; ++i) {
    Message m;
    m.kind = MsgKind::kRequest;
    m.from = static_cast<cell::CellId>(i % 4);
    m.to = static_cast<cell::CellId>((i + 1) % 4);
    m.channel = i;
    net.send(m);
  }
  simulator.run_to_quiescence();
  return log;
}

TEST(FaultNetDeterminism, SameSeedSameDeliverySchedule) {
  const DeliveryLog a = run_faulty_burst(42);
  const DeliveryLog b = run_faulty_burst(42);
  EXPECT_EQ(a, b);
}

TEST(FaultNetDeterminism, DifferentSeedDifferentFaultSchedule) {
  const DeliveryLog a = run_faulty_burst(42);
  const DeliveryLog b = run_faulty_burst(43);
  EXPECT_NE(a, b) << "fault schedule should be a function of the seed";
}

}  // namespace
}  // namespace dca::net
