// A scripted NodeEnv for message-level protocol unit tests.
//
// Unlike the full World (which runs a simulator and delivers messages with
// latency), MockEnv lets a test drive ONE node directly: inject any
// message, inspect exactly what the node sent, advance virtual time by
// hand, and observe completion callbacks. This pins the per-figure
// behaviours of the paper's pseudo-code (defer vs reply, grant vs reject,
// who gets ACQUISITION, ...) without the noise of a whole system.
#pragma once

#include <cstdint>
#include <vector>

#include "proto/allocator.hpp"
#include "sim/random.hpp"

namespace dca::testutil {

class MockEnv final : public proto::NodeEnv {
 public:
  struct Completion {
    cell::CellId cellId = cell::kNoCell;
    std::uint64_t serial = 0;
    cell::ChannelId channel = cell::kNoChannel;
    proto::Outcome outcome = proto::Outcome::kBlockedNoChannel;
    int attempts = 0;
  };

  explicit MockEnv(sim::Duration latency = sim::milliseconds(5))
      : latency_(latency), rng_(1) {}

  // -- NodeEnv ------------------------------------------------------------
  [[nodiscard]] sim::SimTime now() const override { return now_; }
  void send(net::Message msg) override { sent_.push_back(std::move(msg)); }
  [[nodiscard]] sim::Duration latency_bound() const override { return latency_; }
  void notify_acquired(cell::CellId cellId, std::uint64_t serial,
                       cell::ChannelId ch, proto::Outcome how, int attempts) override {
    completions_.push_back({cellId, serial, ch, how, attempts});
  }
  void notify_blocked(cell::CellId cellId, std::uint64_t serial, proto::Outcome why,
                      int attempts) override {
    completions_.push_back({cellId, serial, cell::kNoChannel, why, attempts});
  }
  void notify_released(cell::CellId cellId, cell::ChannelId ch) override {
    released_.emplace_back(cellId, ch);
  }
  void notify_reassigned(cell::CellId cellId, cell::ChannelId from_ch,
                         cell::ChannelId to_ch) override {
    reassigned_.push_back({cellId, from_ch, to_ch});
  }
  sim::RngStream& rng(cell::CellId) override { return rng_; }

  // -- scripting ------------------------------------------------------------
  void advance(sim::Duration dt) { now_ += dt; }

  /// All messages the node sent since the last clear().
  [[nodiscard]] const std::vector<net::Message>& sent() const noexcept {
    return sent_;
  }
  /// Messages of one kind, preserving order.
  [[nodiscard]] std::vector<net::Message> sent_of(net::MsgKind kind) const {
    std::vector<net::Message> out;
    for (const auto& m : sent_)
      if (m.kind == kind) out.push_back(m);
    return out;
  }
  [[nodiscard]] const std::vector<Completion>& completions() const noexcept {
    return completions_;
  }
  [[nodiscard]] const std::vector<std::pair<cell::CellId, cell::ChannelId>>&
  released() const noexcept {
    return released_;
  }
  struct Reassignment {
    cell::CellId cellId = cell::kNoCell;
    cell::ChannelId from_ch = cell::kNoChannel;
    cell::ChannelId to_ch = cell::kNoChannel;
  };
  [[nodiscard]] const std::vector<Reassignment>& reassigned() const noexcept {
    return reassigned_;
  }
  void clear() {
    sent_.clear();
    completions_.clear();
    released_.clear();
    reassigned_.clear();
  }

 private:
  sim::SimTime now_ = 0;
  sim::Duration latency_;
  sim::RngStream rng_;
  std::vector<net::Message> sent_;
  std::vector<Completion> completions_;
  std::vector<std::pair<cell::CellId, cell::ChannelId>> released_;
  std::vector<Reassignment> reassigned_;
};

// -- message factories (j -> node) ------------------------------------------

inline net::Message mk_search_request(cell::CellId from, cell::CellId to,
                                      net::Timestamp ts, std::uint64_t serial) {
  net::Message m;
  m.kind = net::MsgKind::kRequest;
  m.req_type = net::ReqType::kSearch;
  m.from = from;
  m.to = to;
  m.ts = ts;
  m.serial = serial;
  return m;
}

inline net::Message mk_update_request(cell::CellId from, cell::CellId to,
                                      cell::ChannelId r, net::Timestamp ts,
                                      std::uint64_t serial) {
  net::Message m;
  m.kind = net::MsgKind::kRequest;
  m.req_type = net::ReqType::kUpdate;
  m.channel = r;
  m.from = from;
  m.to = to;
  m.ts = ts;
  m.serial = serial;
  return m;
}

inline net::Message mk_response(cell::CellId from, cell::CellId to,
                                net::ResType type, cell::ChannelId r,
                                std::uint64_t serial, std::uint64_t wave = 0) {
  net::Message m;
  m.kind = net::MsgKind::kResponse;
  m.res_type = type;
  m.channel = r;
  m.from = from;
  m.to = to;
  m.serial = serial;
  m.wave = wave;
  return m;
}

/// Echo a grant/reject for an outgoing update REQUEST, the way a real
/// responder would: same serial, same channel, same round (wave) tag.
inline net::Message mk_echo_response(const net::Message& request,
                                     cell::CellId from, net::ResType type) {
  net::Message m;
  m.kind = net::MsgKind::kResponse;
  m.res_type = type;
  m.channel = request.channel;
  m.from = from;
  m.to = request.from;
  m.serial = request.serial;
  m.wave = request.wave;
  return m;
}

inline net::Message mk_use_reply(cell::CellId from, cell::CellId to,
                                 net::ResType type, const cell::ChannelSet& use,
                                 std::uint64_t serial, std::uint64_t wave = 0) {
  net::Message m;
  m.kind = net::MsgKind::kResponse;
  m.res_type = type;
  m.use = use;
  m.from = from;
  m.to = to;
  m.serial = serial;
  m.wave = wave;
  return m;
}

inline net::Message mk_change_mode(cell::CellId from, cell::CellId to, int mode,
                                   std::uint64_t wave = 1) {
  net::Message m;
  m.kind = net::MsgKind::kChangeMode;
  m.mode = static_cast<std::int8_t>(mode);
  m.from = from;
  m.to = to;
  m.wave = wave;
  return m;
}

inline net::Message mk_acquisition(cell::CellId from, cell::CellId to,
                                   net::AcqType type, cell::ChannelId r,
                                   std::uint64_t serial = 0) {
  net::Message m;
  m.kind = net::MsgKind::kAcquisition;
  m.acq_type = type;
  m.channel = r;
  m.from = from;
  m.to = to;
  m.serial = serial;
  return m;
}

inline net::Message mk_release(cell::CellId from, cell::CellId to,
                               cell::ChannelId r, std::uint64_t serial = 0) {
  net::Message m;
  m.kind = net::MsgKind::kRelease;
  m.channel = r;
  m.from = from;
  m.to = to;
  m.serial = serial;
  return m;
}

}  // namespace dca::testutil
