// Streaming-vs-buffered equivalence: config.stream_metrics folds call
// records and the trace out of the engine at window barriers instead of
// buffering the whole run, and the acceptance bar is *bit identity* — the
// same Aggregate doubles and the same trace byte for byte, on the golden
// scenarios the paper tables are reproduced from (Table 2's low-load
// point, Table 3's high-load sweep points) and on the engine's hard
// configurations (multi-shard, latency jitter, mobility).
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "metrics/collector.hpp"
#include "runner/experiment.hpp"
#include "sim/trace.hpp"
#include "test_util.hpp"

namespace dca {
namespace {

using runner::RunResult;
using runner::ScenarioConfig;
using runner::Scheme;

/// Shortened paper-table scenario (8x8, 70 channels): same geometry and
/// rates as the Table 1/2/3 benches, trimmed so the full matrix stays in
/// test time.
ScenarioConfig golden_config() {
  ScenarioConfig c = testutil::paper_config();
  c.duration = sim::minutes(6);
  c.warmup = sim::minutes(1);
  return c;
}

void expect_same_summary(const metrics::Summary& a, const metrics::Summary& b,
                         const char* what) {
  EXPECT_EQ(a.count(), b.count()) << what;
  EXPECT_EQ(a.mean(), b.mean()) << what;
  EXPECT_EQ(a.variance(), b.variance()) << what;
  EXPECT_EQ(a.min(), b.min()) << what;
  EXPECT_EQ(a.max(), b.max()) << what;
}

/// Bit-exact comparison of every field a metrics::Table cell can be
/// rendered from: if these all match, any table printed from the two
/// aggregates is character-identical.
void expect_same_aggregate(const metrics::Aggregate& a,
                           const metrics::Aggregate& b) {
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.acquired, b.acquired);
  EXPECT_EQ(a.blocked, b.blocked);
  EXPECT_EQ(a.starved, b.starved);
  EXPECT_EQ(a.timed_out, b.timed_out);
  EXPECT_EQ(a.handoff_offered, b.handoff_offered);
  EXPECT_EQ(a.handoff_failures, b.handoff_failures);
  EXPECT_EQ(a.xi1, b.xi1);
  EXPECT_EQ(a.xi2, b.xi2);
  EXPECT_EQ(a.xi3, b.xi3);
  EXPECT_EQ(a.mean_update_attempts, b.mean_update_attempts);
  EXPECT_EQ(a.mean_borrowing_neighbors, b.mean_borrowing_neighbors);
  EXPECT_EQ(a.mean_searching_neighbors, b.mean_searching_neighbors);
  expect_same_summary(a.attempts, b.attempts, "attempts");
  expect_same_summary(a.delay_us, b.delay_us, "delay_us");
  expect_same_summary(a.delay_in_T, b.delay_in_T, "delay_in_T");
  expect_same_summary(a.messages_per_call, b.messages_per_call,
                      "messages_per_call");
  expect_same_summary(a.messages_acquired, b.messages_acquired,
                      "messages_acquired");
}

void expect_equivalent_runs(const ScenarioConfig& base, Scheme scheme,
                            double rho) {
  ScenarioConfig buffered = base;
  buffered.stream_metrics = false;
  ScenarioConfig streaming = base;
  streaming.stream_metrics = true;

  const RunResult rb = runner::run_uniform(buffered, scheme, rho);
  const RunResult rs = runner::run_uniform(streaming, scheme, rho);

  expect_same_aggregate(rb.agg, rs.agg);
  EXPECT_EQ(rb.total_messages, rs.total_messages);
  EXPECT_EQ(rb.offered_calls, rs.offered_calls);
  EXPECT_EQ(rb.carried_erlangs, rs.carried_erlangs);
  EXPECT_EQ(rb.violations, rs.violations);
  EXPECT_EQ(rb.quiescent, rs.quiescent);
  EXPECT_EQ(rb.messages_by_kind, rs.messages_by_kind);
}

TEST(StreamingMetrics, GoldenLowLoadPointMatchesBuffered) {
  // Table 2's premise: uniformly low load, all four paper schemes.
  const ScenarioConfig cfg = golden_config();
  for (const Scheme s : runner::kPaperSchemes) {
    SCOPED_TRACE(runner::scheme_name(s));
    expect_equivalent_runs(cfg, s, 0.1);
  }
}

TEST(StreamingMetrics, GoldenHighLoadPointsMatchBuffered) {
  // Table 3's observed-extremes sweep, trimmed to its endpoints where
  // blocking/starvation and heavy message traffic actually occur.
  const ScenarioConfig cfg = golden_config();
  for (const double rho : {0.4, 0.95}) {
    SCOPED_TRACE(rho);
    expect_equivalent_runs(cfg, Scheme::kAdaptive, rho);
    expect_equivalent_runs(cfg, Scheme::kBasicUpdate, rho);
  }
}

TEST(StreamingMetrics, ShardedJitteredMobileRunMatchesBuffered) {
  // The engine's hard mode all at once: 4 shards, per-link latency
  // jitter, and mobility (handoff legs exercise the hop-serial tally
  // path that base serials never touch).
  ScenarioConfig cfg = golden_config();
  cfg.shards = 4;
  cfg.latency_jitter = sim::milliseconds(2);
  cfg.mean_dwell_s = 90.0;
  expect_equivalent_runs(cfg, Scheme::kAdaptive, 0.9);
}

TEST(StreamingMetrics, StreamedTraceIsByteIdenticalAndConformant) {
  ScenarioConfig cfg = golden_config();
  cfg.duration = sim::minutes(3);
  cfg.shards = 4;
  cfg.mean_dwell_s = 120.0;

  ScenarioConfig buffered = cfg;
  sim::TraceRecorder rec_buf;
  const RunResult rb = runner::run_uniform(buffered, Scheme::kAdaptive, 0.9,
                                           &rec_buf);

  ScenarioConfig streaming = cfg;
  streaming.stream_metrics = true;
  sim::TraceRecorder rec_str;  // no sink: buffers the streamed emissions
  const RunResult rs = runner::run_uniform(streaming, Scheme::kAdaptive, 0.9,
                                           &rec_str);

  // Streaming emits at fold boundaries, buffered at run end — the merged
  // event sequence must be identical event for event.
  EXPECT_EQ(rec_buf.events(), rec_str.events());
  expect_same_aggregate(rb.agg, rs.agg);

  // With a trace attached, streaming mode replays it through the
  // in-engine conformance checker; the buffered path does not.
  EXPECT_TRUE(rs.conformance_checked);
  EXPECT_EQ(rs.conformance_violations, 0u);
  EXPECT_TRUE(rs.conformance_ok());
  EXPECT_FALSE(rb.conformance_checked);
}

TEST(StreamingMetrics, SmallGridSingleShardStreams) {
  // shards == 1 with stream_metrics routes through the sharded engine;
  // the result must still match the classic engine bit for bit.
  const ScenarioConfig cfg = testutil::small_config();
  expect_equivalent_runs(cfg, Scheme::kAdaptive, 0.8);
  expect_equivalent_runs(cfg, Scheme::kBasicSearch, 0.8);
}

TEST(StreamingMetrics, PeakRssIsReported) {
  ScenarioConfig cfg = testutil::small_config();
  cfg.duration = sim::minutes(2);
  cfg.stream_metrics = true;
  const RunResult r = runner::run_uniform(cfg, Scheme::kAdaptive, 0.5);
#ifdef __linux__
  EXPECT_GT(r.peak_rss_bytes, 0u);
#endif
}

}  // namespace
}  // namespace dca
