// Randomized equivalence of the runtime-width ChannelSet against a
// fixed-width reference model (std::bitset<kMaxChannels> + a universe
// bound). The dynamic-width rewrite sized the storage to the scenario's
// spectrum (1 word for <= 64 channels, 2 inline words up to 128, heap
// beyond); these properties pin every query and mutation to the simple
// fixed-width semantics across universes from 1 to kMaxChannels,
// including the inline/heap boundary at 128/129.
#include <bitset>
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "cell/spectrum.hpp"

namespace dca::cell {
namespace {

/// Fixed-width reference: the semantics the old 512-bit ChannelSet had,
/// restricted to a universe.
class RefSet {
 public:
  explicit RefSet(int universe) : universe_(universe) {}

  void insert(ChannelId c) {
    if (c >= 0 && c < universe_) bits_.set(static_cast<std::size_t>(c));
  }
  void erase(ChannelId c) {
    if (c >= 0 && c < universe_) bits_.reset(static_cast<std::size_t>(c));
  }
  void clear() { bits_.reset(); }
  [[nodiscard]] bool contains(ChannelId c) const {
    return c >= 0 && c < universe_ && bits_.test(static_cast<std::size_t>(c));
  }
  [[nodiscard]] int size() const { return static_cast<int>(bits_.count()); }
  [[nodiscard]] ChannelId first() const {
    for (int c = 0; c < universe_; ++c)
      if (bits_.test(static_cast<std::size_t>(c))) return c;
    return kNoChannel;
  }
  [[nodiscard]] ChannelId next_after(ChannelId c) const {
    for (int i = c + 1; i < universe_; ++i)
      if (i >= 0 && bits_.test(static_cast<std::size_t>(i))) return i;
    return kNoChannel;
  }
  [[nodiscard]] ChannelId nth(int k) const {
    if (k < 0) return kNoChannel;
    for (int c = 0; c < universe_; ++c) {
      if (!bits_.test(static_cast<std::size_t>(c))) continue;
      if (k == 0) return c;
      --k;
    }
    return kNoChannel;
  }
  /// First channel of the universe NOT in the set (complement().first()).
  [[nodiscard]] ChannelId first_free() const {
    for (int c = 0; c < universe_; ++c)
      if (!bits_.test(static_cast<std::size_t>(c))) return c;
    return kNoChannel;
  }

  int universe_;
  std::bitset<kMaxChannels> bits_;
};

void expect_equivalent(const ChannelSet& s, const RefSet& r) {
  ASSERT_EQ(s.universe(), r.universe_);
  EXPECT_EQ(s.size(), r.size());
  EXPECT_EQ(s.empty(), r.size() == 0);
  EXPECT_EQ(s.first(), r.first());
  EXPECT_EQ(s.complement().first(), r.first_free());
  // Membership over the whole universe plus a margin beyond it.
  for (int c = -2; c < r.universe_ + 2; ++c) {
    EXPECT_EQ(s.contains(c), r.contains(c)) << "universe=" << r.universe_
                                            << " channel=" << c;
  }
  // Ordered iteration and nth() selection agree with the model.
  std::vector<ChannelId> members;
  for (ChannelId c = s.first(); c != kNoChannel; c = s.next_after(c))
    members.push_back(c);
  EXPECT_EQ(members, s.to_vector());
  ASSERT_EQ(static_cast<int>(members.size()), r.size());
  for (int k = 0; k < r.size(); ++k) {
    EXPECT_EQ(s.nth(k), r.nth(k)) << "k=" << k;
    EXPECT_EQ(s.nth(k), members[static_cast<std::size_t>(k)]);
  }
  EXPECT_EQ(s.nth(r.size()), kNoChannel);
}

TEST(ChannelSetProperty, RandomOpsMatchFixedWidthReference) {
  std::mt19937_64 rng(20260808);
  // Sweep universes across word-count regimes: sub-word, exact word
  // boundaries, the inline/heap boundary (128/129), and the legacy max.
  const int universes[] = {1, 2, 7, 63, 64, 65, 70, 127, 128, 129, 191, 256, 511, 512};
  for (const int universe : universes) {
    ChannelSet s(universe);
    RefSet r(universe);
    std::uniform_int_distribution<int> pick_channel(0, universe - 1);
    std::uniform_int_distribution<int> pick_op(0, 99);
    for (int step = 0; step < 2000; ++step) {
      const int op = pick_op(rng);
      if (op < 45) {
        const ChannelId c = pick_channel(rng);
        s.insert(c);
        r.insert(c);
      } else if (op < 90) {
        const ChannelId c = pick_channel(rng);
        s.erase(c);
        r.erase(c);
      } else if (op < 93) {
        s.clear();
        r.clear();
      } else if (op < 96) {
        // erase is tolerant of out-of-universe ids by contract.
        s.erase(universe + pick_channel(rng));
      }
      if (step % 100 == 0) expect_equivalent(s, r);
    }
    expect_equivalent(s, r);
  }
}

TEST(ChannelSetProperty, SetAlgebraMatchesBitwiseReference) {
  std::mt19937_64 rng(4242);
  for (const int universe : {5, 64, 70, 128, 129, 512}) {
    std::uniform_int_distribution<int> pick(0, universe - 1);
    for (int round = 0; round < 50; ++round) {
      ChannelSet a(universe), b(universe);
      RefSet ra(universe), rb(universe);
      for (int i = 0; i < universe / 2 + 1; ++i) {
        const ChannelId ca = pick(rng), cb = pick(rng);
        a.insert(ca);
        ra.insert(ca);
        b.insert(cb);
        rb.insert(cb);
      }
      const ChannelSet u = a | b;
      const ChannelSet i = a & b;
      const ChannelSet d = a - b;
      const ChannelSet comp = a.complement();
      for (int c = 0; c < universe; ++c) {
        EXPECT_EQ(u.contains(c), ra.contains(c) || rb.contains(c));
        EXPECT_EQ(i.contains(c), ra.contains(c) && rb.contains(c));
        EXPECT_EQ(d.contains(c), ra.contains(c) && !rb.contains(c));
        EXPECT_EQ(comp.contains(c), !ra.contains(c));
      }
      EXPECT_EQ(a.intersects(b), !i.empty());
      EXPECT_EQ(a == b, ra.bits_ == rb.bits_);
    }
  }
}

TEST(ChannelSetProperty, AllAndCopiesPreserveUniverse) {
  for (const int universe : {1, 64, 70, 128, 129, 512}) {
    const ChannelSet s = ChannelSet::all(universe);
    EXPECT_EQ(s.size(), universe);
    EXPECT_EQ(s.first(), 0);
    EXPECT_EQ(s.nth(universe - 1), universe - 1);
    EXPECT_FALSE(s.contains(universe));  // nothing beyond the top id
    EXPECT_TRUE(s.complement().empty());

    ChannelSet copy = s;  // copy must deep-copy heap storage
    copy.erase(0);
    EXPECT_TRUE(s.contains(0));
    EXPECT_FALSE(copy.contains(0));
    EXPECT_EQ(copy.size(), universe - 1);

    ChannelSet moved = std::move(copy);
    EXPECT_EQ(moved.universe(), universe);
    EXPECT_EQ(moved.size(), universe - 1);
  }
}

TEST(ChannelSetProperty, OutOfUniverseInsertAssertsInDebug) {
  // The storage is exactly universe-sized, so an out-of-universe insert
  // would scribble past the buffer; debug builds must trip the assert
  // (release builds turn it into a checked no-op, verified below).
  ChannelSet s(70);
  EXPECT_DEBUG_DEATH(s.insert(70), "universe");
  EXPECT_DEBUG_DEATH(s.insert(500), "universe");
#ifdef NDEBUG
  // Release-mode heap-overflow guard: the insert must be a no-op, not a
  // write past the end of the universe-sized buffer.
  s.insert(70);
  s.insert(511);
  EXPECT_FALSE(s.contains(70));
  EXPECT_EQ(s.size(), 0);
#endif
}

}  // namespace
}  // namespace dca::cell
