// Message-level unit tests of the four baseline schemes, driven through
// MockEnv: exact send/defer/grant/reject behaviour per protocol rule,
// without the full simulator.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "cell/grid.hpp"
#include "cell/reuse.hpp"
#include "mock_env.hpp"
#include "proto/advanced_search.hpp"
#include "proto/advanced_update.hpp"
#include "proto/basic_search.hpp"
#include "proto/basic_update.hpp"

namespace dca {
namespace {

using testutil::MockEnv;

constexpr cell::CellId kSelf = 27;  // interior cell of the 8x8 grid

class BaselineUnit : public ::testing::Test {
 protected:
  BaselineUnit() : grid_(8, 8, 2), plan_(cell::ReusePlan::cluster(grid_, 21, 7)) {}

  [[nodiscard]] proto::NodeContext ctx() {
    return proto::NodeContext{kSelf, &grid_, &plan_, &env_};
  }
  [[nodiscard]] std::span<const cell::CellId> in() const {
    return grid_.interference(kSelf);
  }
  [[nodiscard]] std::size_t n_in() const { return in().size(); }

  cell::HexGrid grid_;
  cell::ReusePlan plan_;
  MockEnv env_;
};

// ------------------------------------------------------- pick policy ------

TEST(ChannelPickPolicy, LowestIsDeterministicMinimum) {
  cell::ChannelSet s(32);
  s.insert(7);
  s.insert(3);
  s.insert(19);
  sim::RngStream rng(1);
  cell::ChannelId cursor = cell::kNoChannel;
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(proto::pick_channel(s, proto::ChannelPick::kLowest, rng, cursor), 3);
  }
}

TEST(ChannelPickPolicy, RoundRobinCyclesThroughMembers) {
  cell::ChannelSet s(32);
  s.insert(3);
  s.insert(7);
  s.insert(19);
  sim::RngStream rng(1);
  cell::ChannelId cursor = cell::kNoChannel;
  EXPECT_EQ(proto::pick_channel(s, proto::ChannelPick::kRoundRobin, rng, cursor), 3);
  EXPECT_EQ(proto::pick_channel(s, proto::ChannelPick::kRoundRobin, rng, cursor), 7);
  EXPECT_EQ(proto::pick_channel(s, proto::ChannelPick::kRoundRobin, rng, cursor), 19);
  EXPECT_EQ(proto::pick_channel(s, proto::ChannelPick::kRoundRobin, rng, cursor), 3)
      << "wraps to the start";
}

TEST(ChannelPickPolicy, RandomStaysInSetAndCoversIt) {
  cell::ChannelSet s(64);
  s.insert(1);
  s.insert(30);
  s.insert(63);
  sim::RngStream rng(2);
  cell::ChannelId cursor = cell::kNoChannel;
  std::set<cell::ChannelId> seen;
  for (int i = 0; i < 200; ++i) {
    const auto r = proto::pick_channel(s, proto::ChannelPick::kRandom, rng, cursor);
    EXPECT_TRUE(s.contains(r));
    seen.insert(r);
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(ChannelPickPolicy, NamesAreStable) {
  EXPECT_STREQ(proto::channel_pick_name(proto::ChannelPick::kRandom), "random");
  EXPECT_STREQ(proto::channel_pick_name(proto::ChannelPick::kLowest), "lowest");
  EXPECT_STREQ(proto::channel_pick_name(proto::ChannelPick::kRoundRobin),
               "round-robin");
}

// ------------------------------------------------------- basic search -----

TEST_F(BaselineUnit, SearchQueriesWholeRegionThenSelects) {
  proto::BasicSearchNode node(ctx());
  node.request_channel(1);
  const auto reqs = env_.sent_of(net::MsgKind::kRequest);
  ASSERT_EQ(reqs.size(), n_in());
  std::set<cell::CellId> dests;
  for (const auto& m : reqs) dests.insert(m.to);
  EXPECT_EQ(dests.size(), n_in()) << "one request per region member";
  EXPECT_TRUE(node.is_searching());

  // Replies: everything busy except channel 13.
  cell::ChannelSet busy = cell::ChannelSet::all(21);
  busy.erase(13);
  for (const cell::CellId j : in()) {
    node.on_message(
        testutil::mk_use_reply(j, kSelf, net::ResType::kSearchReply, busy, 1));
  }
  ASSERT_EQ(env_.completions().size(), 1u);
  EXPECT_EQ(env_.completions()[0].channel, 13);
  EXPECT_EQ(env_.completions()[0].outcome, proto::Outcome::kAcquiredSearch);
  EXPECT_FALSE(node.is_searching());
}

TEST_F(BaselineUnit, SearchDefersYoungerAnswersOlder) {
  proto::BasicSearchNode node(ctx());
  node.request_channel(1);  // our ts: count 1
  env_.clear();
  // Younger search request: deferred.
  node.on_message(testutil::mk_search_request(in()[0], kSelf,
                                              net::Timestamp{50, in()[0]}, 9));
  EXPECT_TRUE(env_.sent().empty());
  // Older search request: answered immediately.
  node.on_message(
      testutil::mk_search_request(in()[1], kSelf, net::Timestamp{0, in()[1]}, 8));
  EXPECT_EQ(env_.sent_of(net::MsgKind::kResponse).size(), 1u);
}

TEST_F(BaselineUnit, SearchSelectionWaitsForAnsweredOlderSearcher) {
  proto::BasicSearchNode node(ctx());
  node.request_channel(1);
  // We answer an older searcher mid-search...
  node.on_message(
      testutil::mk_search_request(in()[0], kSelf, net::Timestamp{0, in()[0]}, 8));
  env_.clear();
  // ...then our replies complete, but we must not select yet.
  const cell::ChannelSet none(21);
  for (const cell::CellId j : in()) {
    node.on_message(
        testutil::mk_use_reply(j, kSelf, net::ResType::kSearchReply, none, 1));
  }
  EXPECT_TRUE(env_.completions().empty()) << "awaiting the older decision";
  // The older searcher announces: it took channel 0.
  node.on_message(
      testutil::mk_acquisition(in()[0], kSelf, net::AcqType::kSearch, 0));
  ASSERT_EQ(env_.completions().size(), 1u);
  EXPECT_NE(env_.completions()[0].channel, 0)
      << "the announced channel is excluded from our selection";
}

TEST_F(BaselineUnit, SearchDeferredReplySentAfterOwnDecision) {
  proto::BasicSearchNode node(ctx());
  node.request_channel(1);
  node.on_message(testutil::mk_search_request(in()[0], kSelf,
                                              net::Timestamp{50, in()[0]}, 9));
  env_.clear();
  const cell::ChannelSet none(21);
  for (const cell::CellId j : in()) {
    node.on_message(
        testutil::mk_use_reply(j, kSelf, net::ResType::kSearchReply, none, 1));
  }
  // Decision made: announcement to region + the deferred reply, which must
  // include our fresh acquisition.
  const auto resp = env_.sent_of(net::MsgKind::kResponse);
  ASSERT_EQ(resp.size(), 1u);
  EXPECT_EQ(resp[0].to, in()[0]);
  ASSERT_EQ(env_.completions().size(), 1u);
  EXPECT_TRUE(resp[0].use.contains(env_.completions()[0].channel));
}

// ------------------------------------------------------- basic update -----

TEST_F(BaselineUnit, UpdateAsksPermissionForOneChannel) {
  proto::BasicUpdateNode node(ctx(), 10);
  node.request_channel(1);
  const auto reqs = env_.sent_of(net::MsgKind::kRequest);
  ASSERT_EQ(reqs.size(), n_in());
  const cell::ChannelId r = reqs[0].channel;
  for (const auto& m : reqs) EXPECT_EQ(m.channel, r);
  EXPECT_TRUE(node.has_pending_attempt());

  for (const cell::CellId j : in()) {
    node.on_message(testutil::mk_echo_response(reqs[0], j, net::ResType::kGrant));
  }
  ASSERT_EQ(env_.completions().size(), 1u);
  EXPECT_EQ(env_.completions()[0].channel, r);
  EXPECT_EQ(env_.completions()[0].attempts, 1);
  // Success is broadcast so the whole region updates its mirrors.
  EXPECT_EQ(env_.sent_of(net::MsgKind::kAcquisition).size(), n_in());
}

TEST_F(BaselineUnit, UpdateRejectTriggersReleaseAndRetryWithNewTimestamp) {
  proto::BasicUpdateNode node(ctx(), 10);
  node.request_channel(1);
  const auto first = env_.sent_of(net::MsgKind::kRequest);
  const net::Timestamp ts1 = first[0].ts;
  env_.clear();
  bool rejected_one = false;
  for (const cell::CellId j : in()) {
    node.on_message(testutil::mk_echo_response(
        first[0], j, rejected_one ? net::ResType::kGrant : net::ResType::kReject));
    rejected_one = true;
  }
  const auto rels = env_.sent_of(net::MsgKind::kRelease);
  EXPECT_EQ(rels.size(), n_in() - 1) << "grants returned to granters";
  const auto retry = env_.sent_of(net::MsgKind::kRequest);
  ASSERT_EQ(retry.size(), n_in());
  EXPECT_TRUE(ts1 < retry[0].ts) << "each attempt carries a fresh timestamp";
}

TEST_F(BaselineUnit, UpdateReceiverGrantsIdleRejectsBusy) {
  proto::BasicUpdateNode node(ctx(), 10);
  // Occupy a channel first.
  node.request_channel(1);
  const net::Message rnd = env_.sent_of(net::MsgKind::kRequest)[0];
  const cell::ChannelId mine = rnd.channel;
  for (const cell::CellId j : in())
    node.on_message(testutil::mk_echo_response(rnd, j, net::ResType::kGrant));
  env_.clear();
  node.on_message(testutil::mk_update_request(in()[0], kSelf, mine,
                                              net::Timestamp{1, in()[0]}, 9));
  ASSERT_EQ(env_.sent_of(net::MsgKind::kResponse).size(), 1u);
  EXPECT_EQ(env_.sent_of(net::MsgKind::kResponse)[0].res_type,
            net::ResType::kReject);
  env_.clear();
  const cell::ChannelId other = mine == 0 ? 1 : 0;
  node.on_message(testutil::mk_update_request(in()[0], kSelf, other,
                                              net::Timestamp{2, in()[0]}, 9));
  EXPECT_EQ(env_.sent_of(net::MsgKind::kResponse)[0].res_type,
            net::ResType::kGrant);
  EXPECT_TRUE(node.interfered().contains(other));
}

TEST_F(BaselineUnit, UpdateSameChannelConflictYoungerAborts) {
  proto::BasicUpdateNode node(ctx(), 10);
  node.request_channel(1);
  const net::Message rnd = env_.sent_of(net::MsgKind::kRequest)[0];
  const cell::ChannelId r = rnd.channel;
  env_.clear();
  // An OLDER request for the same channel arrives: we grant and abort.
  node.on_message(
      testutil::mk_update_request(in()[0], kSelf, r, net::Timestamp{0, in()[0]}, 9));
  ASSERT_EQ(env_.sent_of(net::MsgKind::kResponse).size(), 1u);
  EXPECT_EQ(env_.sent_of(net::MsgKind::kResponse)[0].res_type,
            net::ResType::kGrant)
      << "the older request wins";
  env_.clear();
  // Our own responses come back all-grant, but the attempt was aborted:
  // the node must retry (with a different channel), not acquire r.
  for (const cell::CellId j : in()) {
    node.on_message(testutil::mk_echo_response(rnd, j, net::ResType::kGrant));
  }
  EXPECT_TRUE(env_.completions().empty());
  const auto retry = env_.sent_of(net::MsgKind::kRequest);
  ASSERT_EQ(retry.size(), n_in());
  EXPECT_NE(retry[0].channel, r);
}

TEST_F(BaselineUnit, UpdateStarvesAtAttemptCap) {
  proto::BasicUpdateNode node(ctx(), 2);
  node.request_channel(1);
  for (int round = 0; round < 2; ++round) {
    const net::Message rnd = env_.sent_of(net::MsgKind::kRequest).back();
    env_.clear();
    for (const cell::CellId j : in())
      node.on_message(testutil::mk_echo_response(rnd, j, net::ResType::kReject));
  }
  ASSERT_EQ(env_.completions().size(), 1u);
  EXPECT_EQ(env_.completions()[0].outcome, proto::Outcome::kBlockedStarved);
  EXPECT_EQ(env_.completions()[0].attempts, 2);
}

// ---------------------------------------------------- advanced update -----

TEST_F(BaselineUnit, AdvancedUpdatePrimaryIsInstantWithBroadcast) {
  proto::AdvancedUpdateNode node(ctx(), 10);
  node.request_channel(1);
  ASSERT_EQ(env_.completions().size(), 1u);
  EXPECT_EQ(env_.completions()[0].outcome, proto::Outcome::kAcquiredLocal);
  EXPECT_TRUE(plan_.primary(kSelf).contains(env_.completions()[0].channel));
  EXPECT_EQ(env_.sent_of(net::MsgKind::kAcquisition).size(), n_in());
  EXPECT_TRUE(env_.sent_of(net::MsgKind::kRequest).empty());
}

TEST_F(BaselineUnit, AdvancedUpdateBorrowTargetsOnlyChannelPrimaries) {
  proto::AdvancedUpdateNode node(ctx(), 10);
  for (int i = 0; i < 3; ++i) node.request_channel(static_cast<std::uint64_t>(i) + 1);
  env_.clear();
  node.request_channel(4);
  const auto reqs = env_.sent_of(net::MsgKind::kRequest);
  ASSERT_FALSE(reqs.empty());
  ASSERT_LE(reqs.size(), 3u);
  const cell::ChannelId r = reqs[0].channel;
  for (const auto& m : reqs) {
    EXPECT_EQ(m.channel, r);
    EXPECT_TRUE(plan_.is_primary(m.to, r)) << "request goes to NP(c, r) only";
    EXPECT_TRUE(grid_.interferes(kSelf, m.to));
  }
}

TEST_F(BaselineUnit, AdvancedUpdatePrimaryOwnerPromisesOnceThenConditional) {
  proto::AdvancedUpdateNode node(ctx(), 10);
  // Pick one of OUR primary channels as the contested resource.
  const cell::ChannelId r = plan_.primary(kSelf).first();
  // A first (younger) request gets the promise.
  node.on_message(testutil::mk_update_request(in()[0], kSelf, r,
                                              net::Timestamp{10, in()[0]}, 9));
  ASSERT_EQ(env_.sent_of(net::MsgKind::kResponse).size(), 1u);
  EXPECT_EQ(env_.sent_of(net::MsgKind::kResponse)[0].res_type,
            net::ResType::kGrant);
  env_.clear();
  // An OLDER request arrives while the promise is outstanding: the Fig. 11
  // flaw — conditional grant (priority acknowledged, promise kept).
  node.on_message(
      testutil::mk_update_request(in()[1], kSelf, r, net::Timestamp{1, in()[1]}, 8));
  ASSERT_EQ(env_.sent_of(net::MsgKind::kResponse).size(), 1u);
  EXPECT_EQ(env_.sent_of(net::MsgKind::kResponse)[0].res_type,
            net::ResType::kConditionalGrant);
  env_.clear();
  // A second YOUNGER request is rejected outright.
  node.on_message(testutil::mk_update_request(in()[2], kSelf, r,
                                              net::Timestamp{99, in()[2]}, 7));
  EXPECT_EQ(env_.sent_of(net::MsgKind::kResponse)[0].res_type,
            net::ResType::kReject);
}

TEST_F(BaselineUnit, AdvancedUpdatePromiseBlocksOwnUse) {
  proto::AdvancedUpdateNode node(ctx(), 10);
  // Promise away all three of our primaries.
  int promised = 0;
  for (cell::ChannelId r = plan_.primary(kSelf).first(); r != cell::kNoChannel;
       r = plan_.primary(kSelf).next_after(r)) {
    node.on_message(testutil::mk_update_request(
        in()[0], kSelf, r, net::Timestamp{static_cast<std::uint64_t>(10 + promised),
                                          in()[0]},
        static_cast<std::uint64_t>(9 + promised)));
    ++promised;
  }
  ASSERT_EQ(promised, 3);
  env_.clear();
  // Our own request must NOT take a promised primary: it borrows instead.
  node.request_channel(1);
  EXPECT_TRUE(env_.completions().empty() ||
              env_.completions()[0].outcome != proto::Outcome::kAcquiredLocal);
  EXPECT_FALSE(env_.sent_of(net::MsgKind::kRequest).empty());
}

// ---------------------------------------------------- advanced search -----

TEST_F(BaselineUnit, AdvancedSearchRepliesCarryAllocatedAndBusySets) {
  proto::AdvancedSearchNode node(ctx(), 10);
  // Cold node answers a search with empty sets.
  node.on_message(
      testutil::mk_search_request(in()[0], kSelf, net::Timestamp{1, in()[0]}, 9));
  const auto resp = env_.sent_of(net::MsgKind::kResponse);
  ASSERT_EQ(resp.size(), 1u);
  EXPECT_TRUE(resp[0].use.empty());
  EXPECT_TRUE(resp[0].alloc.empty());
}

TEST_F(BaselineUnit, AdvancedSearchOwnerAgreesThenSecondRequesterDenied) {
  proto::AdvancedSearchNode node(ctx(), 10);
  // Give the node one allocated idle channel via a full search cycle.
  node.request_channel(1);
  for (const cell::CellId j : in()) {
    net::Message m = testutil::mk_use_reply(j, kSelf, net::ResType::kSearchReply,
                                            cell::ChannelSet(21), 1);
    m.alloc = cell::ChannelSet(21);
    node.on_message(m);
  }
  ASSERT_EQ(env_.completions().size(), 1u);
  const cell::ChannelId r = env_.completions()[0].channel;
  node.release_channel(r, 1);  // idle but still allocated
  EXPECT_TRUE(node.allocated().contains(r));
  env_.clear();

  // First transfer request: AGREE (and the channel is reserved).
  net::Message t1;
  t1.kind = net::MsgKind::kTransfer;
  t1.transfer_op = net::TransferOp::kRequest;
  t1.channel = r;
  t1.from = in()[0];
  t1.to = kSelf;
  t1.serial = 42;
  node.on_message(t1);
  auto sent = env_.sent_of(net::MsgKind::kTransfer);
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].transfer_op, net::TransferOp::kAgree);
  env_.clear();

  // Second requester for the same channel: DENY.
  net::Message t2 = t1;
  t2.from = in()[1];
  t2.serial = 43;
  node.on_message(t2);
  sent = env_.sent_of(net::MsgKind::kTransfer);
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].transfer_op, net::TransferOp::kDeny);
  EXPECT_EQ(node.transfer_denials(), 1u);
  env_.clear();

  // KEEP from the first: we deallocate and announce region-wide.
  net::Message t3 = t1;
  t3.transfer_op = net::TransferOp::kKeep;
  node.on_message(t3);
  EXPECT_FALSE(node.allocated().contains(r));
  EXPECT_EQ(node.transfers_out(), 1u);
  EXPECT_EQ(env_.sent_of(net::MsgKind::kRelease).size(), n_in());
}

TEST_F(BaselineUnit, AdvancedSearchAbortUnlocksOffer) {
  proto::AdvancedSearchNode node(ctx(), 10);
  node.request_channel(1);
  for (const cell::CellId j : in()) {
    net::Message m = testutil::mk_use_reply(j, kSelf, net::ResType::kSearchReply,
                                            cell::ChannelSet(21), 1);
    m.alloc = cell::ChannelSet(21);
    node.on_message(m);
  }
  const cell::ChannelId r = env_.completions()[0].channel;
  node.release_channel(r, 1);
  env_.clear();

  net::Message t1;
  t1.kind = net::MsgKind::kTransfer;
  t1.transfer_op = net::TransferOp::kRequest;
  t1.channel = r;
  t1.from = in()[0];
  t1.to = kSelf;
  t1.serial = 42;
  node.on_message(t1);
  net::Message abort = t1;
  abort.transfer_op = net::TransferOp::kAbort;
  node.on_message(abort);
  env_.clear();
  // After the abort, a new requester can get the channel again.
  net::Message t2 = t1;
  t2.from = in()[1];
  node.on_message(t2);
  EXPECT_EQ(env_.sent_of(net::MsgKind::kTransfer)[0].transfer_op,
            net::TransferOp::kAgree);
}

}  // namespace
}  // namespace dca
