// Tests for the basic update scheme: permission handshakes, grant/reject
// arbitration by timestamp, retry behaviour, usage mirroring via
// ACQUISITION/RELEASE broadcasts, and Table 2's 4N cost accounting.
#include <gtest/gtest.h>

#include "proto/basic_update.hpp"
#include "runner/world.hpp"
#include "test_util.hpp"

namespace dca {
namespace {

using runner::Scheme;
using runner::World;
using testutil::offer_call;
using testutil::small_config;

TEST(BasicUpdate, SoloAcquisitionCostsOneHandshakePlusBroadcasts) {
  const auto cfg = small_config();
  World w(cfg, Scheme::kBasicUpdate);
  const cell::CellId c = testutil::center_cell(cfg);
  const auto N = w.grid().interference(c).size();
  offer_call(w, c, 1, sim::seconds(10));
  w.simulator().run_until(sim::seconds(1));

  ASSERT_EQ(w.collector().records().size(), 1u);
  const auto& r = w.collector().records()[0];
  EXPECT_EQ(r.outcome, proto::Outcome::kAcquiredUpdate);
  EXPECT_EQ(r.attempts, 1);
  EXPECT_EQ(r.delay(), 2 * cfg.latency);  // 2Tm with m = 1
  // So far: N REQUEST + N RESPONSE + N ACQUISITION.
  EXPECT_EQ(r.total_messages(), 3 * N);

  // After the call ends, the RELEASE broadcast completes Table 2's 4N.
  w.simulator().run_to_quiescence();
  EXPECT_EQ(w.collector().records()[0].total_messages(), 4 * N);
}

TEST(BasicUpdate, NeighborsLearnUsageThroughBroadcasts) {
  const auto cfg = small_config();
  World w(cfg, Scheme::kBasicUpdate);
  const cell::CellId c = testutil::center_cell(cfg);
  offer_call(w, c, 1, sim::seconds(30));
  w.simulator().run_until(sim::seconds(1));
  const cell::ChannelId ch = w.node(c).in_use().first();
  ASSERT_NE(ch, cell::kNoChannel);
  for (const cell::CellId j : w.grid().interference(c)) {
    const auto& nb = dynamic_cast<const proto::BasicUpdateNode&>(w.node(j));
    EXPECT_TRUE(nb.interfered().contains(ch)) << "neighbor " << j;
  }
  // ... and forget it again after the release.
  w.simulator().run_to_quiescence();
  for (const cell::CellId j : w.grid().interference(c)) {
    const auto& nb = dynamic_cast<const proto::BasicUpdateNode&>(w.node(j));
    EXPECT_FALSE(nb.interfered().contains(ch));
  }
}

TEST(BasicUpdate, SameChannelConflictGoesToOlderTimestamp) {
  // Force both neighbours to want a channel simultaneously over many seeds;
  // whatever channels they pick, they must never end up co-channel.
  const auto cfg = small_config();
  World w(cfg, Scheme::kBasicUpdate);
  const cell::CellId a = testutil::center_cell(cfg);
  const cell::CellId b = w.grid().neighbors(a)[0];
  offer_call(w, a, 1, sim::minutes(1));
  offer_call(w, b, 2, sim::minutes(1));
  w.simulator().run_until(sim::seconds(2));
  for (const auto& r : w.collector().records())
    EXPECT_TRUE(proto::is_acquired(r.outcome));
  EXPECT_FALSE(w.node(a).in_use().intersects(w.node(b).in_use()));
  EXPECT_EQ(w.interference_violations(), 0u);
}

TEST(BasicUpdate, RetriesConsumeAttemptsUnderContention) {
  // Saturate the region except one channel, then have two neighbours race
  // for it repeatedly; retries (m > 1) must appear under pressure.
  const auto cfg = small_config();
  World w(cfg, Scheme::kBasicUpdate);
  const cell::CellId c = testutil::center_cell(cfg);
  // Occupy 18 of 21 channels in the center cell.
  for (int i = 0; i < 18; ++i) {
    offer_call(w, c, static_cast<traffic::CallId>(i + 1), sim::minutes(30));
    w.simulator().run_until(w.simulator().now() + sim::seconds(1));
  }
  // Now two interfering neighbours contend for the remaining 3 channels.
  const cell::CellId a = w.grid().neighbors(c)[0];
  const cell::CellId b = w.grid().neighbors(c)[1];
  for (int i = 0; i < 3; ++i) {
    offer_call(w, a, static_cast<traffic::CallId>(100 + i), sim::minutes(30));
    offer_call(w, b, static_cast<traffic::CallId>(200 + i), sim::minutes(30));
  }
  w.simulator().run_until(w.simulator().now() + sim::seconds(5));
  EXPECT_EQ(w.interference_violations(), 0u);
  int acquired = 0, failed = 0;
  for (const auto& r : w.collector().records()) {
    if (r.call >= 100) (proto::is_acquired(r.outcome) ? acquired : failed)++;
  }
  // Only 3 channels were left for 6 requests in one interference region.
  EXPECT_EQ(acquired, 3);
  EXPECT_EQ(failed, 3);
}

TEST(BasicUpdate, BlocksLocallyWhenNothingBelievedFree) {
  const auto cfg = small_config();
  World w(cfg, Scheme::kBasicUpdate);
  const cell::CellId c = testutil::center_cell(cfg);
  for (int i = 0; i < 21; ++i) {
    offer_call(w, c, static_cast<traffic::CallId>(i + 1), sim::minutes(30));
    w.simulator().run_until(w.simulator().now() + sim::seconds(1));
  }
  EXPECT_EQ(w.node(c).in_use().size(), 21);
  offer_call(w, c, 99, sim::minutes(30));
  w.simulator().run_until(w.simulator().now() + sim::seconds(1));
  const auto& last = w.collector().records().back();
  EXPECT_EQ(last.outcome, proto::Outcome::kBlockedNoChannel);
  EXPECT_EQ(last.total_messages(), 0u) << "local information suffices to fail fast";
}

TEST(BasicUpdate, StarvationCapReportsStarved) {
  auto cfg = small_config();
  cfg.max_update_attempts = 1;  // a single rejection is fatal
  World w(cfg, Scheme::kBasicUpdate);
  const cell::CellId c = testutil::center_cell(cfg);
  // Occupy 20 of the 21 channels at the center so its whole neighbourhood
  // believes exactly one channel free.
  for (int i = 0; i < 20; ++i) {
    offer_call(w, c, static_cast<traffic::CallId>(i + 1), sim::minutes(30));
    w.simulator().run_until(w.simulator().now() + sim::seconds(1));
  }
  // Two interfering neighbours race for that single channel: both must
  // pick it, the older timestamp wins, and with the retry cap at 1 the
  // loser is starved rather than retried.
  const cell::CellId a = w.grid().neighbors(c)[0];
  const cell::CellId b = w.grid().neighbors(c)[1];
  ASSERT_TRUE(w.grid().interferes(a, b));
  offer_call(w, a, 100, sim::minutes(1));
  offer_call(w, b, 200, sim::minutes(1));
  w.simulator().run_until(w.simulator().now() + sim::seconds(5));
  int acquired = 0, starved = 0;
  for (const auto& r : w.collector().records()) {
    if (r.call < 100) continue;
    if (proto::is_acquired(r.outcome)) ++acquired;
    if (r.outcome == proto::Outcome::kBlockedStarved) ++starved;
  }
  EXPECT_EQ(acquired, 1);
  EXPECT_EQ(starved, 1);
  EXPECT_EQ(w.interference_violations(), 0u);
}

TEST(BasicUpdate, QuiescenceAfterLoad) {
  const auto cfg = small_config();
  World w(cfg, Scheme::kBasicUpdate);
  traffic::CallId id = 1;
  for (cell::CellId c = 0; c < w.grid().n_cells(); c += 3) {
    offer_call(w, c, id++, sim::seconds(20));
  }
  w.simulator().run_to_quiescence();
  EXPECT_TRUE(w.quiescent());
  EXPECT_EQ(w.interference_violations(), 0u);
  for (cell::CellId c = 0; c < w.grid().n_cells(); ++c)
    EXPECT_TRUE(w.node(c).in_use().empty());
}

}  // namespace
}  // namespace dca
