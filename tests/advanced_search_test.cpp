// Tests for the advanced search (allocated-set) scheme of Prakash,
// Shivaratri & Singhal — the paper's reference [8]: instant service from
// the allocated set, retention of channels across calls, new-channel
// allocation via region search, and the TRANSFER/AGREE/KEEP negotiation.
#include <gtest/gtest.h>

#include "proto/advanced_search.hpp"
#include "runner/world.hpp"
#include "test_util.hpp"

namespace dca {
namespace {

using proto::AdvancedSearchNode;
using runner::Scheme;
using runner::World;
using testutil::offer_call;
using testutil::small_config;

const AdvancedSearchNode& node_of(const World& w, cell::CellId c) {
  return dynamic_cast<const AdvancedSearchNode&>(w.node(c));
}

TEST(AdvancedSearch, StartsColdAndAllocatesOnDemand) {
  const auto cfg = small_config();
  World w(cfg, Scheme::kAdvancedSearch);
  for (cell::CellId c = 0; c < w.grid().n_cells(); ++c) {
    EXPECT_TRUE(node_of(w, c).allocated().empty());
  }
  const cell::CellId c = testutil::center_cell(cfg);
  offer_call(w, c, 1, sim::seconds(30));
  w.simulator().run_until(sim::seconds(1));
  const auto& r = w.collector().records().back();
  EXPECT_EQ(r.outcome, proto::Outcome::kAcquiredSearch);
  EXPECT_EQ(r.delay(), 2 * cfg.latency);
  EXPECT_EQ(node_of(w, c).allocated().size(), 1);
}

TEST(AdvancedSearch, ChannelStaysAllocatedAfterCallEnds) {
  const auto cfg = small_config();
  World w(cfg, Scheme::kAdvancedSearch);
  const cell::CellId c = testutil::center_cell(cfg);
  // Pull in 4 channels from the cold pool, then end all calls.
  for (int i = 0; i < 4; ++i) {
    offer_call(w, c, static_cast<traffic::CallId>(i + 1), sim::seconds(20));
    w.simulator().run_until(w.simulator().now() + sim::seconds(1));
  }
  w.simulator().run_to_quiescence();
  EXPECT_TRUE(w.node(c).in_use().empty());
  EXPECT_EQ(node_of(w, c).allocated().size(), 4)
      << "allocated channels are retained across calls";
  // A follow-up burst of 4 calls is now served entirely locally.
  const auto msgs_before = w.network().total_sent();
  for (int i = 0; i < 4; ++i) offer_call(w, c, static_cast<traffic::CallId>(10 + i),
                                         sim::seconds(20));
  EXPECT_EQ(w.network().total_sent(), msgs_before)
      << "hot spot re-served from the allocated set at zero cost";
  for (const auto& r : w.collector().records()) {
    if (r.call >= 10) EXPECT_EQ(r.outcome, proto::Outcome::kAcquiredLocal);
  }
}

TEST(AdvancedSearch, AllocatedHitIsInstantAndFree) {
  const auto cfg = small_config();
  World w(cfg, Scheme::kAdvancedSearch);
  const cell::CellId c = testutil::center_cell(cfg);
  offer_call(w, c, 1, sim::seconds(5));  // allocates via search
  w.simulator().run_to_quiescence();     // ends; channel stays allocated
  const auto msgs = w.network().total_sent();
  offer_call(w, c, 2, sim::seconds(5));
  const auto& r = w.collector().records().back();
  EXPECT_EQ(r.outcome, proto::Outcome::kAcquiredLocal);
  EXPECT_EQ(r.delay(), 0);
  EXPECT_EQ(w.network().total_sent(), msgs);
}

TEST(AdvancedSearch, AllocationsOfInterferingCellsStayDisjoint) {
  const auto cfg = small_config();
  World w(cfg, Scheme::kAdvancedSearch);
  traffic::CallId id = 1;
  for (int wave = 0; wave < 5; ++wave) {
    for (cell::CellId c = 0; c < w.grid().n_cells(); c += 2)
      offer_call(w, c, id++, sim::seconds(45));
    w.simulator().run_until(w.simulator().now() + sim::seconds(12));
  }
  w.simulator().run_to_quiescence();
  EXPECT_EQ(w.interference_violations(), 0u);
  EXPECT_TRUE(w.quiescent());
  for (cell::CellId a = 0; a < w.grid().n_cells(); ++a) {
    for (const cell::CellId b : w.grid().interference(a)) {
      EXPECT_FALSE(node_of(w, a).allocated().intersects(node_of(w, b).allocated()))
          << "cells " << a << "," << b;
    }
  }
}

TEST(AdvancedSearch, TransferMovesIdleAllocatedChannel) {
  const auto cfg = small_config();  // 21 channels, 3 primaries
  World w(cfg, Scheme::kAdvancedSearch);
  const cell::CellId hot = testutil::center_cell(cfg);
  // Saturate the region's unallocated pool: every neighbour pulls in
  // enough channels that nothing is left unallocated around `hot`.
  traffic::CallId id = 1;
  for (int wave = 0; wave < 7; ++wave) {
    for (const cell::CellId j : w.grid().interference(hot)) {
      offer_call(w, j, id++, sim::seconds(25));
    }
    w.simulator().run_until(w.simulator().now() + sim::seconds(6));
  }
  w.simulator().run_to_quiescence();  // all calls ended; allocations remain
  const cell::ChannelSet region = node_of(w, hot).region_allocated();
  ASSERT_EQ(region.size(), cfg.n_channels)
      << "setup: the whole spectrum is allocated somewhere in the region";

  // The (cold) hot cell now needs channels, but everything is allocated
  // elsewhere: every request must succeed via TRANSFER of idle allocated
  // channels.
  for (int i = 0; i < 4; ++i) offer_call(w, hot, id++, sim::minutes(2));
  w.simulator().run_until(w.simulator().now() + sim::seconds(5));
  const auto& r = w.collector().records().back();
  EXPECT_EQ(r.outcome, proto::Outcome::kAcquiredUpdate)
      << "transfer outcome is classified as update-style";
  EXPECT_EQ(node_of(w, hot).transfers_in(), 4u);
  EXPECT_GT(w.network().sent_of(net::MsgKind::kTransfer), 0u);
  EXPECT_EQ(w.interference_violations(), 0u);
}

TEST(AdvancedSearch, ConcurrentSearchersNeverAllocateSameChannel) {
  const auto cfg = small_config();
  World w(cfg, Scheme::kAdvancedSearch);
  const cell::CellId a = testutil::center_cell(cfg);
  const cell::CellId b = w.grid().neighbors(a)[0];
  traffic::CallId id = 1;
  // Exhaust both primary allocations, then race for new allocations.
  for (int i = 0; i < 3; ++i) {
    offer_call(w, a, id++, sim::minutes(10));
    offer_call(w, b, id++, sim::minutes(10));
  }
  for (int i = 0; i < 4; ++i) {
    offer_call(w, a, id++, sim::minutes(10));
    offer_call(w, b, id++, sim::minutes(10));
    w.simulator().run_until(w.simulator().now() + sim::seconds(2));
  }
  EXPECT_EQ(w.interference_violations(), 0u);
  EXPECT_FALSE(node_of(w, a).allocated().intersects(node_of(w, b).allocated()));
}

TEST(AdvancedSearch, OwnerDeniesBusyOrDoublyRequestedChannel) {
  const auto cfg = small_config();
  World w(cfg, Scheme::kAdvancedSearch);
  // Stress the transfer path from two sides simultaneously and count
  // denials; correctness is the absence of violations and of starvation
  // when candidates remain.
  const cell::CellId hot1 = testutil::center_cell(cfg);
  const cell::CellId hot2 = w.grid().interference(hot1).back();
  traffic::CallId id = 1;
  for (int wave = 0; wave < 10; ++wave) {
    for (int i = 0; i < 2; ++i) {
      offer_call(w, hot1, id++, sim::seconds(40));
      offer_call(w, hot2, id++, sim::seconds(40));
    }
    w.simulator().run_until(w.simulator().now() + sim::seconds(10));
  }
  w.simulator().run_to_quiescence();
  EXPECT_TRUE(w.quiescent());
  EXPECT_EQ(w.interference_violations(), 0u);
}

TEST(AdvancedSearch, BlocksWhenRegionFullyBusy) {
  const auto cfg = small_config();
  World w(cfg, Scheme::kAdvancedSearch);
  const cell::CellId c = testutil::center_cell(cfg);
  for (int i = 0; i < 21; ++i) {
    offer_call(w, c, static_cast<traffic::CallId>(i + 1), sim::minutes(30));
    w.simulator().run_until(w.simulator().now() + sim::seconds(1));
  }
  EXPECT_EQ(w.node(c).in_use().size(), 21);
  offer_call(w, c, 99, sim::minutes(30));
  w.simulator().run_until(w.simulator().now() + sim::seconds(2));
  EXPECT_FALSE(proto::is_acquired(w.collector().records().back().outcome));
  w.simulator().run_to_quiescence();
  EXPECT_TRUE(w.quiescent());
}

}  // namespace
}  // namespace dca
