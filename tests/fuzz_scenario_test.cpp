// Randomized-scenario stress: generate many short random configurations
// (grid shape, topology, radius/plan, spectrum, load, latency model,
// mobility, scheme) from a seeded stream and require the universal
// invariants on every one. This catches interactions the hand-written
// scenarios never construct.
#include <gtest/gtest.h>

#include "runner/experiment.hpp"
#include "sim/random.hpp"
#include "test_util.hpp"

namespace dca {
namespace {

using runner::RunResult;
using runner::Scheme;

struct RandomScenario {
  runner::ScenarioConfig cfg;
  Scheme scheme = Scheme::kFca;
  double rho = 0.5;
};

RandomScenario draw(sim::RngStream& rng) {
  RandomScenario s;
  // Topology: bounded grids of assorted shapes; occasionally the 14x14
  // torus (the only wrap shape valid for cluster 7).
  if (rng.bernoulli(0.25)) {
    s.cfg.rows = 14;
    s.cfg.cols = 14;
    s.cfg.wrap = cell::Wrap::kToroidal;
  } else {
    s.cfg.rows = static_cast<int>(rng.uniform_int(3, 9));
    s.cfg.cols = static_cast<int>(rng.uniform_int(3, 9));
    s.cfg.wrap = cell::Wrap::kBounded;
  }
  // Plan: cluster 7 at radius 2, cluster 3 at radius 1, or greedy at
  // radius 1..3 (greedy only on bounded grids — wrapped greedy is valid
  // too but needs the torus constraint checked; keep the simple split).
  const int plan_kind = static_cast<int>(rng.uniform_int(0, 2));
  if (plan_kind == 0) {
    s.cfg.interference_radius = 2;
    s.cfg.cluster = 7;
    s.cfg.greedy_plan = false;
  } else if (plan_kind == 1 && s.cfg.wrap == cell::Wrap::kBounded) {
    s.cfg.interference_radius = 1;
    s.cfg.cluster = 3;
    s.cfg.greedy_plan = false;
  } else {
    s.cfg.interference_radius =
        s.cfg.wrap == cell::Wrap::kToroidal
            ? 2
            : static_cast<int>(rng.uniform_int(1, 3));
    s.cfg.greedy_plan = true;
  }
  s.cfg.n_channels = static_cast<int>(rng.uniform_int(14, 80));
  s.cfg.mean_holding_s = rng.uniform(20.0, 120.0);
  s.cfg.latency = rng.uniform_int(1000, 50'000);  // 1..50 ms
  if (rng.bernoulli(0.4)) s.cfg.latency_jitter = s.cfg.latency / 2;
  if (rng.bernoulli(0.3)) s.cfg.mean_dwell_s = rng.uniform(20.0, 120.0);
  s.cfg.duration = sim::minutes(3);
  s.cfg.warmup = 0;
  s.cfg.seed = rng.uniform_int(1, 1 << 30);
  s.cfg.max_update_attempts = static_cast<int>(rng.uniform_int(1, 12));
  s.cfg.update_pick = static_cast<proto::ChannelPick>(rng.uniform_int(0, 2));
  // Adaptive thresholds scaled to the (smallest possible) primary pool;
  // occasionally unreachable theta_high (permanent borrowing) on purpose.
  s.cfg.adaptive.theta_low = 1;
  s.cfg.adaptive.theta_high = static_cast<int>(rng.uniform_int(2, 4));
  s.cfg.adaptive.alpha = static_cast<int>(rng.uniform_int(1, 5));
  s.cfg.adaptive.strict_fig4 = rng.bernoulli(0.5);
  s.cfg.adaptive.use_best_heuristic = rng.bernoulli(0.8);
  s.cfg.adaptive.repack = rng.bernoulli(0.5);

  const Scheme schemes[] = {Scheme::kFca,            Scheme::kBasicSearch,
                            Scheme::kBasicUpdate,    Scheme::kAdvancedUpdate,
                            Scheme::kAdvancedSearch, Scheme::kAdaptive};
  s.scheme = schemes[rng.pick_index(std::size(schemes))];
  s.rho = rng.uniform(0.1, 1.3);  // including overload
  return s;
}

TEST(FuzzScenario, InvariantsHoldOnRandomConfigurations) {
  sim::RngStream rng(0xF022ED);
  for (int trial = 0; trial < 120; ++trial) {
    const RandomScenario s = draw(rng);
    const RunResult r = runner::run_uniform(s.cfg, s.scheme, s.rho);
    SCOPED_TRACE(testing::Message()
                 << "trial " << trial << " scheme "
                 << runner::scheme_name(s.scheme) << " grid " << s.cfg.rows << "x"
                 << s.cfg.cols << (s.cfg.wrap == cell::Wrap::kToroidal ? " torus" : "")
                 << " radius " << s.cfg.interference_radius
                 << (s.cfg.greedy_plan ? " greedy" : " cluster") << " channels "
                 << s.cfg.n_channels << " rho " << s.rho << " seed "
                 << s.cfg.seed);
    EXPECT_EQ(r.violations, 0u);
    EXPECT_TRUE(r.quiescent);
    EXPECT_EQ(r.agg.offered, r.agg.acquired + r.agg.blocked + r.agg.starved);
    EXPECT_GE(r.agg.delay_us.min(), 0.0);
  }
}

TEST(FuzzScenario, RandomConfigurationsReplayDeterministically) {
  sim::RngStream rng(0xD373C7);
  for (int trial = 0; trial < 10; ++trial) {
    const RandomScenario s = draw(rng);
    const RunResult a = runner::run_uniform(s.cfg, s.scheme, s.rho);
    const RunResult b = runner::run_uniform(s.cfg, s.scheme, s.rho);
    EXPECT_EQ(a.executed_events, b.executed_events) << "trial " << trial;
    EXPECT_EQ(a.total_messages, b.total_messages) << "trial " << trial;
  }
}

/// Layers a random fault cocktail (and the request timeout it requires)
/// on top of a base scenario draw.
RandomScenario draw_faulty(sim::RngStream& rng) {
  RandomScenario s = draw(rng);
  s.cfg.fault.drop_prob = rng.bernoulli(0.7) ? rng.uniform(0.0, 0.25) : 0.0;
  s.cfg.fault.dup_prob = rng.bernoulli(0.5) ? rng.uniform(0.0, 0.3) : 0.0;
  if (rng.bernoulli(0.5))
    s.cfg.fault.jitter = rng.uniform_int(100, 10'000);  // up to 10 ms
  if (rng.bernoulli(0.4)) {
    s.cfg.fault.pause_rate_per_min = rng.uniform(0.1, 1.5);
    s.cfg.fault.pause_mean_s = rng.uniform(0.2, 2.0);
  }
  // Timers are mandatory with pauses and sensible with any fault: long
  // enough that fault-free handshakes never trip them spuriously.
  s.cfg.request_timeout = rng.uniform_int(200'000, 1'500'000);  // 0.2..1.5 s
  return s;
}

TEST(FuzzScenario, FaultCocktailNeverBreaksInvariantsOrQuiescence) {
  sim::RngStream rng(0xFA017);
  for (int trial = 0; trial < 60; ++trial) {
    const RandomScenario s = draw_faulty(rng);
    const RunResult r = runner::run_uniform(s.cfg, s.scheme, s.rho);
    SCOPED_TRACE(testing::Message()
                 << "trial " << trial << " scheme "
                 << runner::scheme_name(s.scheme) << " grid " << s.cfg.rows << "x"
                 << s.cfg.cols << " channels " << s.cfg.n_channels << " drop "
                 << s.cfg.fault.drop_prob << " dup " << s.cfg.fault.dup_prob
                 << " jitter " << s.cfg.fault.jitter << " pause "
                 << s.cfg.fault.pause_rate_per_min << "/min seed "
                 << s.cfg.seed);
    EXPECT_EQ(r.violations, 0u);
    EXPECT_TRUE(r.quiescent) << "faults may delay or abort calls, never wedge them";
    EXPECT_EQ(r.agg.offered,
              r.agg.acquired + r.agg.blocked + r.agg.starved + r.agg.timed_out);
  }
}

}  // namespace
}  // namespace dca
