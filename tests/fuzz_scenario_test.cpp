// Randomized-scenario stress: generate many short random configurations
// (grid shape, topology, radius/plan, spectrum, load, latency model,
// mobility, scheme) from a seeded stream and require the universal
// invariants on every one. This catches interactions the hand-written
// scenarios never construct.
#include <gtest/gtest.h>

#include <algorithm>

#include "runner/experiment.hpp"
#include "sim/random.hpp"
#include "test_util.hpp"

namespace dca {
namespace {

using runner::RunResult;
using runner::Scheme;

struct RandomScenario {
  runner::ScenarioConfig cfg;
  Scheme scheme = Scheme::kFca;
  double rho = 0.5;
};

RandomScenario draw(sim::RngStream& rng) {
  RandomScenario s;
  // Topology: bounded grids of assorted shapes; occasionally the 14x14
  // torus (the only wrap shape valid for cluster 7).
  if (rng.bernoulli(0.25)) {
    s.cfg.rows = 14;
    s.cfg.cols = 14;
    s.cfg.wrap = cell::Wrap::kToroidal;
  } else {
    s.cfg.rows = static_cast<int>(rng.uniform_int(3, 9));
    s.cfg.cols = static_cast<int>(rng.uniform_int(3, 9));
    s.cfg.wrap = cell::Wrap::kBounded;
  }
  // Plan: cluster 7 at radius 2, cluster 3 at radius 1, or greedy at
  // radius 1..3 (greedy only on bounded grids — wrapped greedy is valid
  // too but needs the torus constraint checked; keep the simple split).
  const int plan_kind = static_cast<int>(rng.uniform_int(0, 2));
  if (plan_kind == 0) {
    s.cfg.interference_radius = 2;
    s.cfg.cluster = 7;
    s.cfg.greedy_plan = false;
  } else if (plan_kind == 1 && s.cfg.wrap == cell::Wrap::kBounded) {
    s.cfg.interference_radius = 1;
    s.cfg.cluster = 3;
    s.cfg.greedy_plan = false;
  } else {
    s.cfg.interference_radius =
        s.cfg.wrap == cell::Wrap::kToroidal
            ? 2
            : static_cast<int>(rng.uniform_int(1, 3));
    s.cfg.greedy_plan = true;
  }
  s.cfg.n_channels = static_cast<int>(rng.uniform_int(14, 80));
  s.cfg.mean_holding_s = rng.uniform(20.0, 120.0);
  s.cfg.latency = rng.uniform_int(1000, 50'000);  // 1..50 ms
  if (rng.bernoulli(0.4)) s.cfg.latency_jitter = s.cfg.latency / 2;
  if (rng.bernoulli(0.3)) s.cfg.mean_dwell_s = rng.uniform(20.0, 120.0);
  s.cfg.duration = sim::minutes(3);
  s.cfg.warmup = 0;
  s.cfg.seed = rng.uniform_int(1, 1 << 30);
  // Engine: mostly classic, but a healthy share of sharded runs — now
  // legal in combination with jitter and mobility drawn above.
  if (rng.bernoulli(0.4)) {
    const int max_shards = std::min(8, s.cfg.rows * s.cfg.cols);
    s.cfg.shards = static_cast<int>(rng.uniform_int(2, max_shards));
    s.cfg.threads = static_cast<int>(rng.uniform_int(0, 4));
  }
  s.cfg.max_update_attempts = static_cast<int>(rng.uniform_int(1, 12));
  s.cfg.update_pick = static_cast<proto::ChannelPick>(rng.uniform_int(0, 2));
  // Adaptive thresholds scaled to the (smallest possible) primary pool;
  // occasionally unreachable theta_high (permanent borrowing) on purpose.
  s.cfg.adaptive.theta_low = 1;
  s.cfg.adaptive.theta_high = static_cast<int>(rng.uniform_int(2, 4));
  s.cfg.adaptive.alpha = static_cast<int>(rng.uniform_int(1, 5));
  s.cfg.adaptive.strict_fig4 = rng.bernoulli(0.5);
  s.cfg.adaptive.use_best_heuristic = rng.bernoulli(0.8);
  s.cfg.adaptive.repack = rng.bernoulli(0.5);

  const Scheme schemes[] = {Scheme::kFca,            Scheme::kBasicSearch,
                            Scheme::kBasicUpdate,    Scheme::kAdvancedUpdate,
                            Scheme::kAdvancedSearch, Scheme::kAdaptive};
  s.scheme = schemes[rng.pick_index(std::size(schemes))];
  s.rho = rng.uniform(0.1, 1.3);  // including overload
  return s;
}

TEST(FuzzScenario, InvariantsHoldOnRandomConfigurations) {
  sim::RngStream rng(0xF022ED);
  for (int trial = 0; trial < 120; ++trial) {
    const RandomScenario s = draw(rng);
    const RunResult r = runner::run_uniform(s.cfg, s.scheme, s.rho);
    SCOPED_TRACE(testing::Message()
                 << "trial " << trial << " scheme "
                 << runner::scheme_name(s.scheme) << " grid " << s.cfg.rows << "x"
                 << s.cfg.cols << (s.cfg.wrap == cell::Wrap::kToroidal ? " torus" : "")
                 << " radius " << s.cfg.interference_radius
                 << (s.cfg.greedy_plan ? " greedy" : " cluster") << " channels "
                 << s.cfg.n_channels << " rho " << s.rho << " seed "
                 << s.cfg.seed);
    EXPECT_EQ(r.violations, 0u);
    EXPECT_TRUE(r.quiescent);
    EXPECT_EQ(r.agg.offered, r.agg.acquired + r.agg.blocked + r.agg.starved);
    EXPECT_GE(r.agg.delay_us.min(), 0.0);
  }
}

TEST(FuzzScenario, RandomConfigurationsReplayDeterministically) {
  sim::RngStream rng(0xD373C7);
  for (int trial = 0; trial < 10; ++trial) {
    const RandomScenario s = draw(rng);
    const RunResult a = runner::run_uniform(s.cfg, s.scheme, s.rho);
    const RunResult b = runner::run_uniform(s.cfg, s.scheme, s.rho);
    EXPECT_EQ(a.executed_events, b.executed_events) << "trial " << trial;
    EXPECT_EQ(a.total_messages, b.total_messages) << "trial " << trial;
  }
}

TEST(FuzzScenario, ShardedMatchesClassicOnRandomConfigurations) {
  // Cross-engine equivalence under fuzzing: random scenarios — with
  // jitter and mobility forced on frequently — must produce bit-identical
  // results and traces on the classic and sharded engines.
  sim::RngStream r2(0xEC1D3);
  for (int trial = 0; trial < 12; ++trial) {
    RandomScenario s = draw(r2);
    if (r2.bernoulli(0.6)) s.cfg.latency_jitter = s.cfg.latency / 2;
    if (r2.bernoulli(0.6)) s.cfg.mean_dwell_s = r2.uniform(20.0, 90.0);
    SCOPED_TRACE(testing::Message()
                 << "trial " << trial << " scheme "
                 << runner::scheme_name(s.scheme) << " grid " << s.cfg.rows
                 << "x" << s.cfg.cols << " jitter " << s.cfg.latency_jitter
                 << " dwell " << s.cfg.mean_dwell_s << " seed " << s.cfg.seed);

    runner::ScenarioConfig classic_cfg = s.cfg;
    classic_cfg.shards = 1;
    sim::TraceRecorder rec_classic;
    const RunResult a = runner::run_uniform(classic_cfg, s.scheme, s.rho,
                                            &rec_classic);

    runner::ScenarioConfig sharded_cfg = s.cfg;
    const int max_shards = std::min(8, sharded_cfg.rows * sharded_cfg.cols);
    sharded_cfg.shards = static_cast<int>(r2.uniform_int(2, max_shards));
    sharded_cfg.threads = static_cast<int>(r2.uniform_int(0, 4));
    sim::TraceRecorder rec_sharded;
    const RunResult b = runner::run_uniform(sharded_cfg, s.scheme, s.rho,
                                            &rec_sharded);

    EXPECT_EQ(a.executed_events, b.executed_events);
    EXPECT_EQ(a.total_messages, b.total_messages);
    EXPECT_EQ(a.offered_calls, b.offered_calls);
    EXPECT_EQ(a.agg.offered, b.agg.offered);
    EXPECT_EQ(a.agg.acquired, b.agg.acquired);
    EXPECT_EQ(a.agg.handoff_offered, b.agg.handoff_offered);
    EXPECT_EQ(a.agg.handoff_failures, b.agg.handoff_failures);
    EXPECT_EQ(a.agg.mean_borrowing_neighbors, b.agg.mean_borrowing_neighbors);
    EXPECT_EQ(a.agg.mean_searching_neighbors, b.agg.mean_searching_neighbors);
    EXPECT_EQ(a.carried_erlangs, b.carried_erlangs);
    EXPECT_EQ(a.violations, 0u);
    EXPECT_EQ(b.violations, 0u);
    EXPECT_EQ(rec_classic.events(), rec_sharded.events())
        << "engine traces diverged at shards=" << sharded_cfg.shards;
  }
}

/// Layers a random fault cocktail (and the request timeout it requires)
/// on top of a base scenario draw.
RandomScenario draw_faulty(sim::RngStream& rng) {
  RandomScenario s = draw(rng);
  s.cfg.fault.drop_prob = rng.bernoulli(0.7) ? rng.uniform(0.0, 0.25) : 0.0;
  s.cfg.fault.dup_prob = rng.bernoulli(0.5) ? rng.uniform(0.0, 0.3) : 0.0;
  if (rng.bernoulli(0.5))
    s.cfg.fault.jitter = rng.uniform_int(100, 10'000);  // up to 10 ms
  if (rng.bernoulli(0.4)) {
    s.cfg.fault.pause_rate_per_min = rng.uniform(0.1, 1.5);
    s.cfg.fault.pause_mean_s = rng.uniform(0.2, 2.0);
  }
  if (rng.bernoulli(0.4)) {
    s.cfg.fault.crash_rate_per_min = rng.uniform(0.2, 3.0);
    s.cfg.fault.crash_mean_s = rng.uniform(0.5, 4.0);
  }
  if (rng.bernoulli(0.3)) {
    // One or two partition groups of random cells and windows. Dup cells
    // within a group are harmless (membership is a bitmap).
    const int n_cells = s.cfg.rows * s.cfg.cols;
    const int groups = rng.bernoulli(0.5) ? 1 : 2;
    for (int g = 0; g < groups; ++g) {
      net::PartitionSpec p;
      const auto sz = static_cast<int>(rng.uniform_int(1, 4));
      for (int i = 0; i < sz; ++i)
        p.cells.push_back(
            static_cast<cell::CellId>(rng.uniform_int(0, n_cells - 1)));
      p.start = static_cast<sim::SimTime>(
          rng.uniform_int(sim::seconds(5), sim::seconds(100)));
      p.end = p.start + static_cast<sim::Duration>(
                            rng.uniform_int(sim::seconds(2), sim::seconds(30)));
      s.cfg.fault.partitions.push_back(p);
    }
  }
  // Timers are mandatory with pauses, crashes, and partitions, and
  // sensible with any fault: long enough that fault-free handshakes never
  // trip them spuriously.
  s.cfg.request_timeout = rng.uniform_int(200'000, 1'500'000);  // 0.2..1.5 s
  return s;
}

TEST(FuzzScenario, FaultCocktailNeverBreaksInvariantsOrQuiescence) {
  sim::RngStream rng(0xFA017);
  for (int trial = 0; trial < 60; ++trial) {
    const RandomScenario s = draw_faulty(rng);
    const RunResult r = runner::run_uniform(s.cfg, s.scheme, s.rho);
    SCOPED_TRACE(testing::Message()
                 << "trial " << trial << " scheme "
                 << runner::scheme_name(s.scheme) << " grid " << s.cfg.rows << "x"
                 << s.cfg.cols << " channels " << s.cfg.n_channels << " drop "
                 << s.cfg.fault.drop_prob << " dup " << s.cfg.fault.dup_prob
                 << " jitter " << s.cfg.fault.jitter << " pause "
                 << s.cfg.fault.pause_rate_per_min << "/min seed "
                 << s.cfg.seed);
    EXPECT_EQ(r.violations, 0u);
    EXPECT_TRUE(r.quiescent) << "faults may delay or abort calls, never wedge them";
    EXPECT_EQ(r.agg.offered, r.agg.acquired + r.agg.blocked + r.agg.starved +
                                 r.agg.timed_out + r.agg.downed);
  }
}

TEST(FuzzScenario, CrashCocktailShardedMatchesClassic) {
  // Cross-engine equivalence with the crash-recovery fault model forced
  // on, layered over the random fault cocktail (drops, dups, jitter,
  // pauses, partitions) and frequent mobility: full traces and
  // availability accounting must be bit-identical at any shard count.
  sim::RngStream rng(0xC4A54);
  for (int trial = 0; trial < 6; ++trial) {
    RandomScenario s = draw_faulty(rng);
    s.cfg.fault.crash_rate_per_min = rng.uniform(0.5, 3.0);
    s.cfg.fault.crash_mean_s = rng.uniform(0.5, 3.0);
    if (rng.bernoulli(0.6)) s.cfg.mean_dwell_s = rng.uniform(20.0, 90.0);
    SCOPED_TRACE(testing::Message()
                 << "trial " << trial << " scheme "
                 << runner::scheme_name(s.scheme) << " grid " << s.cfg.rows
                 << "x" << s.cfg.cols << " crash "
                 << s.cfg.fault.crash_rate_per_min << "/min x "
                 << s.cfg.fault.crash_mean_s << "s partitions "
                 << s.cfg.fault.partitions.size() << " seed " << s.cfg.seed);

    runner::ScenarioConfig classic_cfg = s.cfg;
    classic_cfg.shards = 1;
    sim::TraceRecorder rec_classic;
    const RunResult a =
        runner::run_uniform(classic_cfg, s.scheme, s.rho, &rec_classic);
    EXPECT_EQ(a.violations, 0u);
    EXPECT_TRUE(a.quiescent);

    for (const int shards : {2, 4}) {
      runner::ScenarioConfig sharded_cfg = s.cfg;
      sharded_cfg.shards = std::min(shards, s.cfg.rows * s.cfg.cols);
      sharded_cfg.threads = static_cast<int>(rng.uniform_int(0, 4));
      sim::TraceRecorder rec_sharded;
      const RunResult b =
          runner::run_uniform(sharded_cfg, s.scheme, s.rho, &rec_sharded);
      EXPECT_EQ(a.agg.offered, b.agg.offered);
      EXPECT_EQ(a.agg.downed, b.agg.downed);
      EXPECT_EQ(a.total_messages, b.total_messages);
      EXPECT_EQ(a.carried_erlangs, b.carried_erlangs);
      EXPECT_EQ(a.availability, b.availability);
      EXPECT_EQ(b.violations, 0u);
      EXPECT_EQ(rec_classic.events(), rec_sharded.events())
          << "engine traces diverged at shards=" << sharded_cfg.shards;
    }
  }
}

}  // namespace
}  // namespace dca
