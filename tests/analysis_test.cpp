// Unit tests for the closed-form performance model — these assert the
// exact rows of the paper's Tables 1, 2 and 3 under their stated
// conditions, which is the analytic half of the reproduction.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/formulas.hpp"

namespace dca::analysis {
namespace {

ModelParams low_load() {
  // The paper's Table 2 premises: ξ1 = 1, m = 0, N_search = 1, N_borrow = 0.
  ModelParams p;
  p.N = 18;
  p.N_borrow = 0;
  p.N_search = 1;
  p.m = 0;
  p.xi1 = 1;
  p.xi2 = 0;
  p.xi3 = 0;
  return p;
}

// ------------------------------------------------------------- Table 2 ----

TEST(Table2, BasicSearchRow) {
  const Cost c = basic_search_low_load(low_load());
  EXPECT_DOUBLE_EQ(c.messages, 36.0);  // 2N
  EXPECT_DOUBLE_EQ(c.time_in_T, 2.0);  // 2T
}

TEST(Table2, BasicUpdateRow) {
  const Cost c = basic_update_low_load(low_load());
  EXPECT_DOUBLE_EQ(c.messages, 72.0);  // 4N
  EXPECT_DOUBLE_EQ(c.time_in_T, 2.0);
}

TEST(Table2, AdvancedUpdateRow) {
  const Cost c = advanced_update_low_load(low_load());
  EXPECT_DOUBLE_EQ(c.messages, 36.0);  // 2N
  EXPECT_DOUBLE_EQ(c.time_in_T, 0.0);
}

TEST(Table2, AdaptiveRowIsFree) {
  const Cost c = adaptive_low_load(low_load());
  EXPECT_DOUBLE_EQ(c.messages, 0.0);
  EXPECT_DOUBLE_EQ(c.time_in_T, 0.0);
}

TEST(Table2, GeneralFormulasSpecializeToLowLoadAdaptive) {
  // With ξ1=1, N_borrow=0 the general adaptive expressions collapse to 0.
  const Cost c = adaptive_general(low_load());
  EXPECT_DOUBLE_EQ(c.messages, 0.0);
  EXPECT_DOUBLE_EQ(c.time_in_T, 0.0);
}

// ------------------------------------------------------------- Table 1 ----

TEST(Table1, BasicSearchGeneral) {
  ModelParams p = low_load();
  p.N_search = 3;
  const Cost c = basic_search_general(p);
  EXPECT_DOUBLE_EQ(c.messages, 36.0);          // 2N, load-independent
  EXPECT_DOUBLE_EQ(c.time_in_T, 4.0);          // (N_search + 1) T
}

TEST(Table1, BasicUpdateGeneralGrowsWithAttempts) {
  ModelParams p = low_load();
  p.m = 2.5;
  const Cost c = basic_update_general(p);
  EXPECT_DOUBLE_EQ(c.messages, 2 * 18 * 2.5 + 2 * 18);  // 2Nm + 2N
  EXPECT_DOUBLE_EQ(c.time_in_T, 5.0);                   // 2Tm
}

TEST(Table1, AdvancedUpdateGeneral) {
  ModelParams p = low_load();
  p.xi1 = 0.6;
  p.m = 2.0;
  p.n_p = 3;
  const Cost c = advanced_update_general(p);
  // (1-ξ1)(2 n_p m + n_p (m-1)) + 2N = 0.4*(12+3) + 36 = 42
  EXPECT_DOUBLE_EQ(c.messages, 42.0);
  EXPECT_DOUBLE_EQ(c.time_in_T, 0.4 * 2 * 2.0);
}

TEST(Table1, AdvancedUpdateFullyLocalPaysOnlyBroadcasts) {
  ModelParams p = low_load();
  p.xi1 = 1.0;
  const Cost c = advanced_update_general(p);
  EXPECT_DOUBLE_EQ(c.messages, 36.0);
  EXPECT_DOUBLE_EQ(c.time_in_T, 0.0);
}

TEST(Table1, AdaptiveGeneralCombinesRegimes) {
  ModelParams p;
  p.N = 18;
  p.N_borrow = 4;
  p.N_search = 2;
  p.alpha = 3;
  p.m = 1.5;
  p.xi1 = 0.7;
  p.xi2 = 0.2;
  p.xi3 = 0.1;
  const Cost c = adaptive_general(p);
  // msgs: 2*0.7*4 + 3*0.2*1.5*18 + 0.1*13*18 = 5.6 + 16.2 + 23.4 = 45.2
  EXPECT_NEAR(c.messages, 45.2, 1e-9);
  // time: 2*1.5*0.2 + (6+2+1)*0.1 = 0.6 + 0.9 = 1.5
  EXPECT_NEAR(c.time_in_T, 1.5, 1e-9);
}

TEST(Table1, AdaptiveBeatsBasicUpdateWhenMostlyLocal) {
  ModelParams p;
  p.N = 18;
  p.N_borrow = 1;
  p.m = 1.2;
  p.xi1 = 0.9;
  p.xi2 = 0.08;
  p.xi3 = 0.02;
  EXPECT_LT(adaptive_general(p).messages, basic_update_general(p).messages);
  EXPECT_LT(adaptive_general(p).time_in_T, basic_update_general(p).time_in_T);
}

// ------------------------------------------------------------- Table 3 ----

TEST(Table3, BasicSearchBounds) {
  const Bounds b = basic_search_bounds(low_load());
  EXPECT_DOUBLE_EQ(b.minimum.messages, 36.0);
  EXPECT_DOUBLE_EQ(b.maximum.messages, 36.0);
  EXPECT_DOUBLE_EQ(b.minimum.time_in_T, 2.0);
  EXPECT_DOUBLE_EQ(b.maximum.time_in_T, 19.0);  // (N+1) T
}

TEST(Table3, UpdateFamilyIsUnboundedAtTheTop) {
  const Bounds bu = basic_update_bounds(low_load());
  EXPECT_TRUE(std::isinf(bu.maximum.messages));
  EXPECT_TRUE(std::isinf(bu.maximum.time_in_T));
  const Bounds au = advanced_update_bounds(low_load());
  EXPECT_DOUBLE_EQ(au.minimum.messages, 18.0);  // N
  EXPECT_DOUBLE_EQ(au.minimum.time_in_T, 0.0);
  EXPECT_TRUE(std::isinf(au.maximum.messages));
}

TEST(Table3, AdaptiveBoundsAreFiniteAndStartAtZero) {
  ModelParams p = low_load();
  p.alpha = 3;
  const Bounds b = adaptive_bounds(p);
  EXPECT_DOUBLE_EQ(b.minimum.messages, 0.0);
  EXPECT_DOUBLE_EQ(b.minimum.time_in_T, 0.0);
  EXPECT_DOUBLE_EQ(b.maximum.messages, 2 * 3 * 18 + 4 * 18.0);  // 2αN + 4N
  EXPECT_DOUBLE_EQ(b.maximum.time_in_T, 2 * 3 * 18 + 1.0);      // (2αN + 1) T
  EXPECT_FALSE(std::isinf(b.maximum.messages));
}

TEST(Table3, AdaptiveIsTheOnlyZeroMinimumScheme) {
  const auto p = low_load();
  EXPECT_GT(basic_search_bounds(p).minimum.messages, 0.0);
  EXPECT_GT(basic_update_bounds(p).minimum.messages, 0.0);
  EXPECT_GT(advanced_update_bounds(p).minimum.messages, 0.0);
  EXPECT_DOUBLE_EQ(adaptive_bounds(p).minimum.messages, 0.0);
}

// --------------------------------------------------- golden lock-down ----

// The exact Table 1/2/3 rows at the paper's own parameter point (N = 18,
// n_p = 3, α = 3), written out as literals. Any formula edit that shifts
// a published number must consciously update this block.
TEST(GoldenTables, PaperParameterPointAllRows) {
  ModelParams p;
  p.N = 18;
  p.n_p = 3;
  p.alpha = 3;
  p.N_borrow = 2;
  p.N_search = 2;
  p.m = 2;
  p.xi1 = 0.8;
  p.xi2 = 0.15;
  p.xi3 = 0.05;

  // Table 1 (general).
  EXPECT_DOUBLE_EQ(basic_search_general(p).messages, 36.0);
  EXPECT_DOUBLE_EQ(basic_search_general(p).time_in_T, 3.0);
  EXPECT_DOUBLE_EQ(basic_update_general(p).messages, 108.0);
  EXPECT_DOUBLE_EQ(basic_update_general(p).time_in_T, 4.0);
  EXPECT_DOUBLE_EQ(advanced_update_general(p).messages, 39.0);
  EXPECT_DOUBLE_EQ(advanced_update_general(p).time_in_T, 0.8);
  EXPECT_DOUBLE_EQ(adaptive_general(p).messages, 3.2 + 16.2 + 11.7);
  EXPECT_DOUBLE_EQ(adaptive_general(p).time_in_T, 0.6 + 0.45);

  // Table 2 (low load).
  EXPECT_DOUBLE_EQ(basic_search_low_load(p).messages, 36.0);
  EXPECT_DOUBLE_EQ(basic_update_low_load(p).messages, 72.0);
  EXPECT_DOUBLE_EQ(advanced_update_low_load(p).messages, 36.0);
  EXPECT_DOUBLE_EQ(adaptive_low_load(p).messages, 0.0);

  // Table 3 (bounds).
  EXPECT_DOUBLE_EQ(basic_search_bounds(p).maximum.time_in_T, 19.0);
  EXPECT_DOUBLE_EQ(basic_update_bounds(p).minimum.messages, 36.0);
  EXPECT_DOUBLE_EQ(advanced_update_bounds(p).minimum.messages, 18.0);
  EXPECT_DOUBLE_EQ(adaptive_bounds(p).maximum.messages, 180.0);  // 2αN + 4N
  EXPECT_DOUBLE_EQ(adaptive_bounds(p).maximum.time_in_T, 109.0);  // 2αN + 1
}

TEST(GoldenTables, GeneralFormulasCollapseToTable2AtLowLoad) {
  // Table 2 is the m -> 0, ξ1 -> 1 limit of Table 1 for every scheme with
  // a finite-time row (basic search keeps N_search = 1 by its premise).
  ModelParams p;
  p.N = 18;
  p.N_search = 1;
  p.N_borrow = 0;
  p.m = 1;  // basic update still pays one full round trip at low load
  p.xi1 = 1;
  p.xi2 = 0;
  p.xi3 = 0;
  EXPECT_DOUBLE_EQ(basic_search_general(p).messages,
                   basic_search_low_load(p).messages);
  EXPECT_DOUBLE_EQ(basic_search_general(p).time_in_T,
                   basic_search_low_load(p).time_in_T);
  EXPECT_DOUBLE_EQ(basic_update_general(p).messages,
                   basic_update_low_load(p).messages);
  EXPECT_DOUBLE_EQ(basic_update_general(p).time_in_T,
                   basic_update_low_load(p).time_in_T);
  EXPECT_DOUBLE_EQ(advanced_update_general(p).messages,
                   advanced_update_low_load(p).messages);
  EXPECT_DOUBLE_EQ(advanced_update_general(p).time_in_T,
                   advanced_update_low_load(p).time_in_T);
  EXPECT_DOUBLE_EQ(adaptive_general(p).messages, adaptive_low_load(p).messages);
  EXPECT_DOUBLE_EQ(adaptive_general(p).time_in_T, adaptive_low_load(p).time_in_T);
}

TEST(GoldenTables, BoundsBracketTheGeneralFormulasAcrossLoads) {
  // Sweep the load-dependent parameters over their admissible ranges and
  // require min <= general <= max for every scheme with finite bounds
  // (Table 3 must dominate Table 1 by construction).
  ModelParams p;
  p.N = 18;
  p.n_p = 3;
  p.alpha = 3;
  for (double m = 1.0; m <= 3.0; m += 0.5) {
    for (double xi1 = 0.0; xi1 <= 1.0; xi1 += 0.25) {
      for (int ns = 1; ns <= 18; ns += 4) {
        p.m = m;
        p.xi1 = xi1;
        const double borrow = 1.0 - xi1;
        p.xi2 = borrow * 0.5;
        p.xi3 = borrow * 0.5;
        p.N_search = ns;
        p.N_borrow = borrow * p.N;
        SCOPED_TRACE(testing::Message()
                     << "m=" << m << " xi1=" << xi1 << " N_search=" << ns);

        const Cost bs = basic_search_general(p);
        const Bounds bsb = basic_search_bounds(p);
        EXPECT_GE(bs.messages, bsb.minimum.messages);
        EXPECT_LE(bs.messages, bsb.maximum.messages);
        EXPECT_GE(bs.time_in_T, bsb.minimum.time_in_T);
        EXPECT_LE(bs.time_in_T, bsb.maximum.time_in_T);

        const Cost bu = basic_update_general(p);
        const Bounds bub = basic_update_bounds(p);
        EXPECT_GE(bu.messages, bub.minimum.messages);
        EXPECT_GE(bu.time_in_T, bub.minimum.time_in_T);

        const Cost au = advanced_update_general(p);
        const Bounds aub = advanced_update_bounds(p);
        EXPECT_GE(au.messages, aub.minimum.messages);
        EXPECT_GE(au.time_in_T, aub.minimum.time_in_T);

        // Adaptive messages: min only — the paper's Table 3 maximum is
        // (2α+4)N while its own general search-path term is (3α+4)N (the
        // Table 1 inconsistency noted in formulas.hpp), so the printed
        // max does not dominate the general mixture and we do not
        // pretend it does.
        const Cost ad = adaptive_general(p);
        const Bounds adb = adaptive_bounds(p);
        EXPECT_GE(ad.messages, adb.minimum.messages);
        EXPECT_GE(ad.time_in_T, adb.minimum.time_in_T);
        EXPECT_LE(ad.time_in_T, adb.maximum.time_in_T);
      }
    }
  }
}

TEST(FormatBound, RendersInfinityAndNumbers) {
  EXPECT_EQ(format_bound(kUnbounded), "inf");
  EXPECT_EQ(format_bound(36.0), "36");
  EXPECT_EQ(format_bound(1.25, 2), "1.25");
}

}  // namespace
}  // namespace dca::analysis
