// Unit tests for the closed-form performance model — these assert the
// exact rows of the paper's Tables 1, 2 and 3 under their stated
// conditions, which is the analytic half of the reproduction.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/formulas.hpp"

namespace dca::analysis {
namespace {

ModelParams low_load() {
  // The paper's Table 2 premises: ξ1 = 1, m = 0, N_search = 1, N_borrow = 0.
  ModelParams p;
  p.N = 18;
  p.N_borrow = 0;
  p.N_search = 1;
  p.m = 0;
  p.xi1 = 1;
  p.xi2 = 0;
  p.xi3 = 0;
  return p;
}

// ------------------------------------------------------------- Table 2 ----

TEST(Table2, BasicSearchRow) {
  const Cost c = basic_search_low_load(low_load());
  EXPECT_DOUBLE_EQ(c.messages, 36.0);  // 2N
  EXPECT_DOUBLE_EQ(c.time_in_T, 2.0);  // 2T
}

TEST(Table2, BasicUpdateRow) {
  const Cost c = basic_update_low_load(low_load());
  EXPECT_DOUBLE_EQ(c.messages, 72.0);  // 4N
  EXPECT_DOUBLE_EQ(c.time_in_T, 2.0);
}

TEST(Table2, AdvancedUpdateRow) {
  const Cost c = advanced_update_low_load(low_load());
  EXPECT_DOUBLE_EQ(c.messages, 36.0);  // 2N
  EXPECT_DOUBLE_EQ(c.time_in_T, 0.0);
}

TEST(Table2, AdaptiveRowIsFree) {
  const Cost c = adaptive_low_load(low_load());
  EXPECT_DOUBLE_EQ(c.messages, 0.0);
  EXPECT_DOUBLE_EQ(c.time_in_T, 0.0);
}

TEST(Table2, GeneralFormulasSpecializeToLowLoadAdaptive) {
  // With ξ1=1, N_borrow=0 the general adaptive expressions collapse to 0.
  const Cost c = adaptive_general(low_load());
  EXPECT_DOUBLE_EQ(c.messages, 0.0);
  EXPECT_DOUBLE_EQ(c.time_in_T, 0.0);
}

// ------------------------------------------------------------- Table 1 ----

TEST(Table1, BasicSearchGeneral) {
  ModelParams p = low_load();
  p.N_search = 3;
  const Cost c = basic_search_general(p);
  EXPECT_DOUBLE_EQ(c.messages, 36.0);          // 2N, load-independent
  EXPECT_DOUBLE_EQ(c.time_in_T, 4.0);          // (N_search + 1) T
}

TEST(Table1, BasicUpdateGeneralGrowsWithAttempts) {
  ModelParams p = low_load();
  p.m = 2.5;
  const Cost c = basic_update_general(p);
  EXPECT_DOUBLE_EQ(c.messages, 2 * 18 * 2.5 + 2 * 18);  // 2Nm + 2N
  EXPECT_DOUBLE_EQ(c.time_in_T, 5.0);                   // 2Tm
}

TEST(Table1, AdvancedUpdateGeneral) {
  ModelParams p = low_load();
  p.xi1 = 0.6;
  p.m = 2.0;
  p.n_p = 3;
  const Cost c = advanced_update_general(p);
  // (1-ξ1)(2 n_p m + n_p (m-1)) + 2N = 0.4*(12+3) + 36 = 42
  EXPECT_DOUBLE_EQ(c.messages, 42.0);
  EXPECT_DOUBLE_EQ(c.time_in_T, 0.4 * 2 * 2.0);
}

TEST(Table1, AdvancedUpdateFullyLocalPaysOnlyBroadcasts) {
  ModelParams p = low_load();
  p.xi1 = 1.0;
  const Cost c = advanced_update_general(p);
  EXPECT_DOUBLE_EQ(c.messages, 36.0);
  EXPECT_DOUBLE_EQ(c.time_in_T, 0.0);
}

TEST(Table1, AdaptiveGeneralCombinesRegimes) {
  ModelParams p;
  p.N = 18;
  p.N_borrow = 4;
  p.N_search = 2;
  p.alpha = 3;
  p.m = 1.5;
  p.xi1 = 0.7;
  p.xi2 = 0.2;
  p.xi3 = 0.1;
  const Cost c = adaptive_general(p);
  // msgs: 2*0.7*4 + 3*0.2*1.5*18 + 0.1*13*18 = 5.6 + 16.2 + 23.4 = 45.2
  EXPECT_NEAR(c.messages, 45.2, 1e-9);
  // time: 2*1.5*0.2 + (6+2+1)*0.1 = 0.6 + 0.9 = 1.5
  EXPECT_NEAR(c.time_in_T, 1.5, 1e-9);
}

TEST(Table1, AdaptiveBeatsBasicUpdateWhenMostlyLocal) {
  ModelParams p;
  p.N = 18;
  p.N_borrow = 1;
  p.m = 1.2;
  p.xi1 = 0.9;
  p.xi2 = 0.08;
  p.xi3 = 0.02;
  EXPECT_LT(adaptive_general(p).messages, basic_update_general(p).messages);
  EXPECT_LT(adaptive_general(p).time_in_T, basic_update_general(p).time_in_T);
}

// ------------------------------------------------------------- Table 3 ----

TEST(Table3, BasicSearchBounds) {
  const Bounds b = basic_search_bounds(low_load());
  EXPECT_DOUBLE_EQ(b.minimum.messages, 36.0);
  EXPECT_DOUBLE_EQ(b.maximum.messages, 36.0);
  EXPECT_DOUBLE_EQ(b.minimum.time_in_T, 2.0);
  EXPECT_DOUBLE_EQ(b.maximum.time_in_T, 19.0);  // (N+1) T
}

TEST(Table3, UpdateFamilyIsUnboundedAtTheTop) {
  const Bounds bu = basic_update_bounds(low_load());
  EXPECT_TRUE(std::isinf(bu.maximum.messages));
  EXPECT_TRUE(std::isinf(bu.maximum.time_in_T));
  const Bounds au = advanced_update_bounds(low_load());
  EXPECT_DOUBLE_EQ(au.minimum.messages, 18.0);  // N
  EXPECT_DOUBLE_EQ(au.minimum.time_in_T, 0.0);
  EXPECT_TRUE(std::isinf(au.maximum.messages));
}

TEST(Table3, AdaptiveBoundsAreFiniteAndStartAtZero) {
  ModelParams p = low_load();
  p.alpha = 3;
  const Bounds b = adaptive_bounds(p);
  EXPECT_DOUBLE_EQ(b.minimum.messages, 0.0);
  EXPECT_DOUBLE_EQ(b.minimum.time_in_T, 0.0);
  EXPECT_DOUBLE_EQ(b.maximum.messages, 2 * 3 * 18 + 4 * 18.0);  // 2αN + 4N
  EXPECT_DOUBLE_EQ(b.maximum.time_in_T, 2 * 3 * 18 + 1.0);      // (2αN + 1) T
  EXPECT_FALSE(std::isinf(b.maximum.messages));
}

TEST(Table3, AdaptiveIsTheOnlyZeroMinimumScheme) {
  const auto p = low_load();
  EXPECT_GT(basic_search_bounds(p).minimum.messages, 0.0);
  EXPECT_GT(basic_update_bounds(p).minimum.messages, 0.0);
  EXPECT_GT(advanced_update_bounds(p).minimum.messages, 0.0);
  EXPECT_DOUBLE_EQ(adaptive_bounds(p).minimum.messages, 0.0);
}

TEST(FormatBound, RendersInfinityAndNumbers) {
  EXPECT_EQ(format_bound(kUnbounded), "inf");
  EXPECT_EQ(format_bound(36.0), "36");
  EXPECT_EQ(format_bound(1.25, 2), "1.25");
}

}  // namespace
}  // namespace dca::analysis
