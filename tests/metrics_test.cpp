// Unit tests for the metrics layer: summaries, histograms, the per-call
// collector with message attribution, and the aggregate ξ/m statistics.
#include <gtest/gtest.h>

#include "metrics/collector.hpp"
#include "metrics/histogram.hpp"
#include "metrics/summary.hpp"
#include "metrics/table.hpp"
#include "metrics/timeseries.hpp"

namespace dca::metrics {
namespace {

TEST(Summary, BasicStats) {
  Summary s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, EmptyIsZeros) {
  const Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(SampledSummary, PercentilesAreExact) {
  SampledSummary s;
  for (int i = 100; i >= 1; --i) s.add(i);  // 1..100 reversed
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(95), 95.05, 1e-9);
}

TEST(Histogram, BinningAndOverflow) {
  Histogram h(10.0, 3);  // bins [0,10) [10,20) [20,30) + overflow
  h.add(0.0);
  h.add(9.99);
  h.add(10.0);
  h.add(25.0);
  h.add(31.0);
  h.add(-5.0);  // clamps to first bin
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.bin_count(0), 3u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_DOUBLE_EQ(h.bin_low(2), 20.0);
  EXPECT_FALSE(h.render().empty());
}

TEST(Table, RenderAndCsv) {
  Table t({"scheme", "msgs", "time"});
  t.add_row({"Adaptive", Table::num(0.0, 1), Table::num(0.0, 1)});
  t.add_row({"Basic, Search", "36", "2T"});
  const std::string md = t.render();
  EXPECT_NE(md.find("| scheme"), std::string::npos);
  EXPECT_NE(md.find("Adaptive"), std::string::npos);
  const std::string csv = t.csv();
  EXPECT_NE(csv.find("\"Basic, Search\""), std::string::npos)
      << "comma-containing fields must be quoted";
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TableNum, Precision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

class CollectorFixture : public ::testing::Test {
 protected:
  Collector c;

  net::Message billed(std::uint64_t serial, net::MsgKind kind) {
    net::Message m;
    m.kind = kind;
    m.serial = serial;
    m.from = 0;
    m.to = 1;
    return m;
  }
};

TEST_F(CollectorFixture, BillsMessagesToOpenRecord) {
  c.open(1, 100, 5, 0, false);
  c.on_message(billed(1, net::MsgKind::kRequest));
  c.on_message(billed(1, net::MsgKind::kResponse));
  c.on_message(billed(1, net::MsgKind::kResponse));
  c.close(1, 2000, proto::Outcome::kAcquiredUpdate, 1, 2, 0);
  ASSERT_EQ(c.records().size(), 1u);
  const CallRecord& r = c.records()[0];
  EXPECT_EQ(r.total_messages(), 3u);
  EXPECT_EQ(r.messages[static_cast<std::size_t>(net::MsgKind::kResponse)], 2u);
  EXPECT_EQ(r.delay(), 2000);
}

TEST_F(CollectorFixture, BillsPostCloseMessagesToClosedRecord) {
  c.open(1, 100, 5, 0, false);
  c.close(1, 10, proto::Outcome::kAcquiredLocal, 0, 0, 0);
  // The end-of-call RELEASE arrives long after the acquisition closed.
  c.on_message(billed(1, net::MsgKind::kRelease));
  EXPECT_EQ(c.records()[0].total_messages(), 1u);
  EXPECT_EQ(c.unattributed_messages(), 0u);
}

TEST_F(CollectorFixture, UnattributedMessagesCounted) {
  c.on_message(billed(0, net::MsgKind::kChangeMode));
  c.on_message(billed(999, net::MsgKind::kRelease));  // unknown serial
  EXPECT_EQ(c.unattributed_messages(), 2u);
}

TEST_F(CollectorFixture, AggregateComputesXiFractionsAndM) {
  // 2 local, 1 update (3 attempts), 1 search, 1 blocked.
  c.open(1, 1, 0, 0, false);
  c.close(1, 0, proto::Outcome::kAcquiredLocal, 0, 0, 0);
  c.open(2, 2, 1, 0, false);
  c.close(2, 0, proto::Outcome::kAcquiredLocal, 0, 2, 0);
  c.open(3, 3, 2, 0, false);
  c.close(3, 20000, proto::Outcome::kAcquiredUpdate, 3, 4, 0);
  c.open(4, 4, 3, 0, false);
  c.close(4, 70000, proto::Outcome::kAcquiredSearch, 3, 6, 2);
  c.open(5, 5, 4, 0, false);
  c.close(5, 70000, proto::Outcome::kBlockedNoChannel, 3, 0, 0);

  const Aggregate a = c.aggregate(/*T=*/5000);
  EXPECT_EQ(a.offered, 5u);
  EXPECT_EQ(a.acquired, 4u);
  EXPECT_EQ(a.blocked, 1u);
  EXPECT_DOUBLE_EQ(a.drop_rate(), 0.2);
  EXPECT_DOUBLE_EQ(a.xi1, 0.5);
  EXPECT_DOUBLE_EQ(a.xi2, 0.25);
  EXPECT_DOUBLE_EQ(a.xi3, 0.25);
  EXPECT_DOUBLE_EQ(a.mean_update_attempts, 3.0);
  EXPECT_DOUBLE_EQ(a.mean_borrowing_neighbors, 3.0);  // (0+2+4+6)/4
  EXPECT_DOUBLE_EQ(a.mean_searching_neighbors, 2.0);
  // delay in T: {0, 0, 4, 14} -> mean 4.5
  EXPECT_DOUBLE_EQ(a.delay_in_T.mean(), 4.5);
}

TEST_F(CollectorFixture, WarmupDiscardsEarlyRecords) {
  c.open(1, 1, 0, /*now=*/0, false);
  c.close(1, 0, proto::Outcome::kAcquiredLocal, 0, 0, 0);
  c.open(2, 2, 0, /*now=*/100, false);
  c.close(2, 100, proto::Outcome::kBlockedNoChannel, 0, 0, 0);
  const Aggregate a = c.aggregate(1, /*warmup=*/50);
  EXPECT_EQ(a.offered, 1u);
  EXPECT_EQ(a.blocked, 1u);
}

TEST_F(CollectorFixture, StarvedAndHandoffTracking) {
  c.open(1, 1, 0, 0, /*is_handoff=*/true);
  c.close(1, 10, proto::Outcome::kBlockedStarved, 10, 0, 0);
  const Aggregate a = c.aggregate(1);
  EXPECT_EQ(a.starved, 1u);
  EXPECT_EQ(a.handoff_failures, 1u);
  EXPECT_DOUBLE_EQ(a.drop_rate(), 1.0);
}

TEST(JainIndex, KnownValues) {
  EXPECT_DOUBLE_EQ(jain_index({1.0, 1.0, 1.0, 1.0}), 1.0);
  // One participant has everything: J = 1/n.
  EXPECT_DOUBLE_EQ(jain_index({4.0, 0.0, 0.0, 0.0}), 0.25);
  // Classic example: (1+2+3)^2 / (3 * 14) = 36/42.
  EXPECT_NEAR(jain_index({1.0, 2.0, 3.0}), 36.0 / 42.0, 1e-12);
}

TEST(JainIndex, DegenerateInputsAreVacuouslyFair) {
  EXPECT_DOUBLE_EQ(jain_index({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index({0.0, 0.0}), 1.0);
}

TEST(JainIndex, ScaleInvariant) {
  const std::vector<double> a{0.2, 0.5, 0.9};
  std::vector<double> b;
  for (const double x : a) b.push_back(1000.0 * x);
  EXPECT_NEAR(jain_index(a), jain_index(b), 1e-12);
}

TEST(TimeSeries, BucketsSumsAndCounts) {
  TimeSeries ts(sim::seconds(60));
  ts.add(sim::seconds(10), 1.0);
  ts.add(sim::seconds(59), 3.0);
  ts.add(sim::seconds(60), 5.0);   // next bucket
  ts.add(sim::seconds(200), 7.0);  // bucket 3
  ASSERT_EQ(ts.n_buckets(), 4u);
  EXPECT_DOUBLE_EQ(ts.sum(0), 4.0);
  EXPECT_EQ(ts.count(0), 2u);
  EXPECT_DOUBLE_EQ(ts.mean(0), 2.0);
  EXPECT_DOUBLE_EQ(ts.sum(1), 5.0);
  EXPECT_EQ(ts.count(2), 0u);
  EXPECT_DOUBLE_EQ(ts.mean(2), 0.0);
  EXPECT_DOUBLE_EQ(ts.sum(3), 7.0);
  EXPECT_EQ(ts.bucket_start(3), sim::seconds(180));
}

TEST(TimeSeries, NegativeTimesClampToFirstBucket) {
  TimeSeries ts(100);
  ts.add(-50, 2.0);
  EXPECT_DOUBLE_EQ(ts.sum(0), 2.0);
}

TEST(OutcomeNames, AllDistinct) {
  EXPECT_EQ(proto::outcome_name(proto::Outcome::kAcquiredLocal), "acquired-local");
  EXPECT_EQ(proto::outcome_name(proto::Outcome::kBlockedStarved), "blocked-starved");
  EXPECT_TRUE(proto::is_acquired(proto::Outcome::kAcquiredSearch));
  EXPECT_FALSE(proto::is_acquired(proto::Outcome::kBlockedNoChannel));
}

}  // namespace
}  // namespace dca::metrics
