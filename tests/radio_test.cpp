// Tests for the radio-layer substrate: reuse geometry, textbook SIR
// numbers, and exact-grid worst-case SIR consistency with the discrete
// interference constraint the protocols enforce.
#include <gtest/gtest.h>

#include <cmath>

#include "cell/grid.hpp"
#include "cell/reuse.hpp"
#include "proto/allocator.hpp"
#include "radio/noise.hpp"
#include "radio/signal.hpp"
#include "runner/world.hpp"
#include "test_util.hpp"

namespace dca::radio {
namespace {

TEST(Signal, ReuseDistanceRatio) {
  EXPECT_NEAR(reuse_distance_ratio(7), std::sqrt(21.0), 1e-12);
  EXPECT_NEAR(reuse_distance_ratio(3), 3.0, 1e-12);
  EXPECT_NEAR(reuse_distance_ratio(12), 6.0, 1e-12);
}

TEST(Signal, ClassicCluster7Number) {
  // The textbook AMPS result: N = 7, gamma = 4 gives ~18.7 dB, just above
  // the 18 dB analog FM requirement — the historical reason for cluster 7.
  EXPECT_NEAR(first_tier_sir_db(7, 4.0), 18.66, 0.01);
}

TEST(Signal, SirGrowsWithClusterAndExponent) {
  EXPECT_LT(first_tier_sir_db(3, 4.0), first_tier_sir_db(7, 4.0));
  EXPECT_LT(first_tier_sir_db(7, 4.0), first_tier_sir_db(12, 4.0));
  EXPECT_LT(first_tier_sir_db(7, 3.0), first_tier_sir_db(7, 4.0));
}

TEST(Signal, MinClusterForAmpsIs7) {
  EXPECT_EQ(min_cluster_for_sir(18.0, 4.0), 7);
  // A softer 12 dB requirement is met by cluster 4.
  EXPECT_LE(min_cluster_for_sir(12.0, 4.0), 4);
  // Free-space-ish propagation (gamma = 2) needs much larger clusters.
  EXPECT_GT(min_cluster_for_sir(18.0, 2.0), 7);
}

TEST(Signal, GridWorstCaseNearTextbookForInteriorCell) {
  // Large grid so several interferer tiers exist; the exact computation
  // (all tiers, edge-of-cell mobile) lands below the 6-interferer
  // first-tier approximation but within a couple of dB.
  const cell::HexGrid grid(21, 21, 2);
  const cell::ReusePlan plan = cell::ReusePlan::cluster(grid, 70, 7);
  const cell::CellId center = 10 * 21 + 10;
  const SirResult r = worst_case_sir(grid, plan, center, 4.0);
  EXPECT_GT(r.interferers, 6) << "multiple tiers on a 21x21 grid";
  // Nearest co-channel cell: the (2,1) lattice shift, Euclidean distance
  // sqrt(3N) = sqrt(21) cell radii — the classic D/R of cluster 7.
  EXPECT_NEAR(r.nearest_d_over_r, std::sqrt(21.0), 1e-6);
  EXPECT_NEAR(r.nearest_d_over_r, reuse_distance_ratio(7), 1e-6);
  EXPECT_GT(r.sir_db, 14.0);
  EXPECT_LT(r.sir_db, first_tier_sir_db(7, 4.0) + 1.0);
}

TEST(Signal, CornerCellsEnjoyBetterSirThanInterior) {
  // All same-colour cells interfere from their true distances; a corner
  // cell's co-channel population sits farther away on average, so its
  // worst-case SIR is strictly better than the interior cell's.
  const cell::HexGrid grid(21, 21, 2);
  const cell::ReusePlan plan = cell::ReusePlan::cluster(grid, 70, 7);
  const SirResult corner = worst_case_sir(grid, plan, 0, 4.0);
  const SirResult center = worst_case_sir(grid, plan, 10 * 21 + 10, 4.0);
  EXPECT_GT(corner.sir_db, center.sir_db);
}

TEST(Signal, Cluster3IsWorseThanCluster7OnTheGridToo) {
  const cell::HexGrid g3(12, 12, 1);
  const cell::ReusePlan p3 = cell::ReusePlan::cluster(g3, 30, 3);
  const cell::HexGrid g7(12, 12, 2);
  const cell::ReusePlan p7 = cell::ReusePlan::cluster(g7, 70, 7);
  const auto s3 = worst_case_sir(g3, p3, 6 * 12 + 6, 4.0);
  const auto s7 = worst_case_sir(g7, p7, 6 * 12 + 6, 4.0);
  EXPECT_LT(s3.sir_db, s7.sir_db);
}

TEST(Signal, IsolatedColorHasInfiniteSir) {
  // A grid so small that a colour class has a single member.
  const cell::HexGrid grid(2, 2, 2);
  const cell::ReusePlan plan = cell::ReusePlan::cluster(grid, 7, 7);
  const SirResult r = worst_case_sir(grid, plan, 0, 4.0);
  EXPECT_TRUE(std::isinf(r.sir_db));
  EXPECT_EQ(r.interferers, 0);
}

// -- NoiseField: the seeded radio-fade hook ------------------------------

TEST(Noise, DisabledFieldIsAlwaysUsable) {
  const NoiseField f(/*seed=*/1, /*fade_prob=*/0.0, sim::seconds(1));
  EXPECT_FALSE(f.enabled());
  for (cell::CellId c = 0; c < 20; ++c) {
    for (int ch = 0; ch < 20; ++ch) {
      EXPECT_TRUE(f.usable(c, ch, sim::seconds(c + ch)));
    }
  }
}

TEST(Noise, PureFunctionOfSeedCellChannelBucket) {
  const NoiseField a(42, 0.4, sim::seconds(1));
  const NoiseField b(42, 0.4, sim::seconds(1));  // separate instance
  const NoiseField other_seed(43, 0.4, sim::seconds(1));
  int differs_from_other_seed = 0;
  for (cell::CellId c = 0; c < 16; ++c) {
    for (int ch = 0; ch < 16; ++ch) {
      const sim::SimTime t = sim::milliseconds(100 * (c + ch));
      EXPECT_EQ(a.usable(c, ch, t), b.usable(c, ch, t));
      if (a.usable(c, ch, t) != other_seed.usable(c, ch, t)) {
        ++differs_from_other_seed;
      }
    }
  }
  EXPECT_GT(differs_from_other_seed, 0);
}

TEST(Noise, ConstantWithinBucketRedrawnAcrossBuckets) {
  const NoiseField f(7, 0.5, sim::seconds(1));
  int redraws = 0;
  for (int ch = 0; ch < 64; ++ch) {
    // Any two instants inside one coherence bucket agree...
    EXPECT_EQ(f.usable(0, ch, 0), f.usable(0, ch, sim::seconds(1) - 1));
    // ...while consecutive buckets are independent draws: some flip.
    if (f.usable(0, ch, 0) != f.usable(0, ch, sim::seconds(1))) ++redraws;
  }
  EXPECT_GT(redraws, 0);
}

TEST(Noise, FadedFractionTracksFadeProb) {
  const double p = 0.3;
  const NoiseField f(99, p, sim::seconds(1));
  int faded = 0;
  const int n_cells = 100, n_channels = 100;
  for (cell::CellId c = 0; c < n_cells; ++c) {
    for (int ch = 0; ch < n_channels; ++ch) {
      if (!f.usable(c, ch, 0)) ++faded;
    }
  }
  const double frac = static_cast<double>(faded) / (n_cells * n_channels);
  EXPECT_NEAR(frac, p, 0.02);
}

TEST(Noise, FcaSkipsFadedChannelsForNewAcquisitions) {
  // End-to-end through the scenario knob: with fading on, a new call must
  // land on the first *usable* primary channel, not merely the first free
  // one. Replicate the allocator's pick against an identical field.
  auto cfg = testutil::small_config();
  cfg.radio_fade_prob = 0.5;
  runner::World w(cfg, runner::Scheme::kFca);
  const cell::CellId c = testutil::center_cell(cfg);
  testutil::offer_call(w, c, 1, sim::minutes(5));

  const NoiseField field(cfg.seed, cfg.radio_fade_prob, cfg.radio_fade_bucket);
  cell::ChannelId expected = w.plan().primary(c).first();
  while (expected != cell::kNoChannel && !field.usable(c, expected, 0)) {
    expected = w.plan().primary(c).next_after(expected);
  }

  ASSERT_EQ(w.collector().records().size(), 1u);
  const auto& rec = w.collector().records()[0];
  if (expected == cell::kNoChannel) {
    EXPECT_EQ(rec.outcome, proto::Outcome::kBlockedNoChannel);
    EXPECT_TRUE(w.node(c).in_use().empty());
  } else {
    EXPECT_EQ(rec.outcome, proto::Outcome::kAcquiredLocal);
    ASSERT_EQ(w.node(c).in_use().size(), 1);
    EXPECT_TRUE(w.node(c).in_use().contains(expected));
    EXPECT_TRUE(field.usable(c, expected, 0));
  }
}

}  // namespace
}  // namespace dca::radio
