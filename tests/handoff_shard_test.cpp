// Cross-engine equivalence battery for the two knobs the sharded engine
// historically rejected: latency jitter and mobility/handoff. The
// acceptance bar is the one that made the engine trustworthy in the first
// place — full-trace EXPECT_EQ against the classic single-queue engine at
// every shard/thread count — plus migration-specific property tests:
// every HANDOFF_LEAVE pairs with exactly one HANDOFF_RECV, no call is
// billed twice, and the usage integral is conserved across migration.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "runner/conformance.hpp"
#include "runner/experiment.hpp"
#include "sim/trace.hpp"
#include "traffic/mobility.hpp"

namespace dca {
namespace {

using runner::RunResult;
using runner::Scheme;

runner::ScenarioConfig base_config() {
  runner::ScenarioConfig cfg;
  cfg.rows = 5;
  cfg.cols = 5;
  cfg.n_channels = 35;
  cfg.duration = sim::minutes(3);
  cfg.warmup = sim::seconds(30);
  cfg.seed = 11;
  return cfg;
}

void expect_same_result(const RunResult& a, const RunResult& b,
                        const char* what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.agg.offered, b.agg.offered);
  EXPECT_EQ(a.agg.acquired, b.agg.acquired);
  EXPECT_EQ(a.agg.blocked, b.agg.blocked);
  EXPECT_EQ(a.agg.starved, b.agg.starved);
  EXPECT_EQ(a.agg.timed_out, b.agg.timed_out);
  EXPECT_EQ(a.agg.handoff_offered, b.agg.handoff_offered);
  EXPECT_EQ(a.agg.handoff_failures, b.agg.handoff_failures);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.executed_events, b.executed_events);
  EXPECT_EQ(a.offered_calls, b.offered_calls);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.carried_erlangs, b.carried_erlangs);  // bit-exact, not near
  EXPECT_EQ(a.agg.delay_in_T.mean(), b.agg.delay_in_T.mean());
  EXPECT_EQ(a.agg.delay_us.mean(), b.agg.delay_us.mean());
  EXPECT_EQ(a.agg.messages_per_call.mean(), b.agg.messages_per_call.mean());
  EXPECT_EQ(a.agg.xi1, b.agg.xi1);
  EXPECT_EQ(a.agg.xi2, b.agg.xi2);
  EXPECT_EQ(a.agg.xi3, b.agg.xi3);
  EXPECT_EQ(a.agg.mean_update_attempts, b.agg.mean_update_attempts);
  EXPECT_EQ(a.agg.mean_borrowing_neighbors, b.agg.mean_borrowing_neighbors);
  EXPECT_EQ(a.agg.mean_searching_neighbors, b.agg.mean_searching_neighbors);
  EXPECT_EQ(a.messages_by_kind, b.messages_by_kind);
  EXPECT_EQ(a.quiescent, b.quiescent);
  EXPECT_EQ(a.transport, b.transport);
}

/// Runs `cfg` classic, then at shards 1/2/4/8 x threads 1/4, and demands
/// bit-identical results and full traces everywhere. Returns the classic
/// trace for further property checks.
std::vector<sim::TraceEvent> battery(const runner::ScenarioConfig& cfg,
                                     Scheme scheme, double rho) {
  sim::TraceRecorder classic_rec;
  const RunResult classic = runner::run_uniform(cfg, scheme, rho, &classic_rec);
  EXPECT_TRUE(classic.quiescent);
  EXPECT_EQ(classic.violations, 0u);
  for (const int shards : {1, 2, 4, 8}) {
    for (const int threads : {1, 4}) {
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " threads=" + std::to_string(threads));
      runner::ScenarioConfig cs = cfg;
      cs.shards = shards;
      cs.threads = threads;
      EXPECT_EQ(runner::validate_scenario(cs), "");
      sim::TraceRecorder rec;
      const RunResult r = runner::run_uniform(cs, scheme, rho, &rec);
      expect_same_result(classic, r, "classic vs sharded");
      EXPECT_EQ(classic_rec.events(), rec.events())
          << "full trace must be bit-identical at shards=" << shards
          << " threads=" << threads;
    }
  }
  return classic_rec.events();
}

// ---------------------------------------------------------------------------
// Validation: the configurations are legal now.
// ---------------------------------------------------------------------------

TEST(HandoffShardValidation, JitterAndMobilityAreLegalWithShards) {
  auto cfg = base_config();
  cfg.shards = 4;
  cfg.latency_jitter = sim::milliseconds(2);
  EXPECT_EQ(runner::validate_scenario(cfg), "");
  cfg.shards = 8;
  cfg.mean_dwell_s = 45.0;
  EXPECT_EQ(runner::validate_scenario(cfg), "");
}

TEST(HandoffShardValidation, StillTrueConstraintsRemain) {
  auto cfg = base_config();
  cfg.shards = 4;
  cfg.latency = 0;
  EXPECT_NE(runner::validate_scenario(cfg), "") << "zero latency, no floor";
  cfg = base_config();
  cfg.latency_jitter = -1;
  EXPECT_NE(runner::validate_scenario(cfg), "");
  cfg = base_config();
  cfg.mean_dwell_s = -1.0;
  EXPECT_NE(runner::validate_scenario(cfg), "");
  cfg = base_config();
  cfg.shards = cfg.rows * cfg.cols + 1;
  EXPECT_NE(runner::validate_scenario(cfg), "") << "more shards than cells";
}

// ---------------------------------------------------------------------------
// The equivalence battery.
// ---------------------------------------------------------------------------

TEST(HandoffShardDeterminism, JitterOnlyMatchesClassic) {
  auto cfg = base_config();
  cfg.latency_jitter = sim::milliseconds(2);
  for (const Scheme s : {Scheme::kBasicSearch, Scheme::kAdaptive}) {
    SCOPED_TRACE(runner::scheme_name(s));
    battery(cfg, s, 0.8);
  }
}

TEST(HandoffShardDeterminism, MobilityOnlyMatchesClassic) {
  auto cfg = base_config();
  cfg.mean_dwell_s = 45.0;
  for (const Scheme s : {Scheme::kFca, Scheme::kAdaptive}) {
    SCOPED_TRACE(runner::scheme_name(s));
    const auto trace = battery(cfg, s, 0.8);
    // The scenario must actually exercise migration, or the battery
    // proves nothing.
    std::size_t leaves = 0;
    for (const auto& e : trace) {
      if (e.kind == sim::TraceKind::kHandoffLeave) ++leaves;
    }
    EXPECT_GT(leaves, 0u) << "no handoffs happened; dwell too long?";
  }
}

TEST(HandoffShardDeterminism, JitterMobilityFaultCocktailMatchesClassic) {
  auto cfg = base_config();
  cfg.duration = sim::minutes(1);
  cfg.warmup = sim::seconds(10);
  cfg.latency_jitter = sim::milliseconds(2);
  cfg.mean_dwell_s = 30.0;
  cfg.fault.drop_prob = 0.08;
  cfg.fault.dup_prob = 0.05;
  cfg.fault.jitter = sim::milliseconds(3);
  cfg.fault.pause_rate_per_min = 0.5;
  cfg.fault.pause_mean_s = 1.0;
  cfg.request_timeout = sim::milliseconds(400);
  for (const Scheme s : {Scheme::kBasicSearch, Scheme::kAdaptive}) {
    SCOPED_TRACE(runner::scheme_name(s));
    battery(cfg, s, 0.8);
  }
}

// ---------------------------------------------------------------------------
// Migration property tests (on the sharded engine's merged trace).
// ---------------------------------------------------------------------------

TEST(HandoffShardProperties, EveryLeaveHasExactlyOneRecv) {
  auto cfg = base_config();
  cfg.mean_dwell_s = 30.0;
  cfg.shards = 4;
  cfg.threads = 4;
  sim::TraceRecorder rec;
  const RunResult r = runner::run_uniform(cfg, Scheme::kAdaptive, 0.8, &rec);
  EXPECT_TRUE(r.quiescent);

  struct Leave {
    sim::SimTime t = 0;
    std::int32_t dest = -1;
  };
  std::unordered_map<std::uint64_t, Leave> in_flight;
  std::size_t pairs = 0;
  for (const auto& e : rec.events()) {
    if (e.kind == sim::TraceKind::kHandoffLeave) {
      const bool fresh =
          in_flight.emplace(e.serial, Leave{e.t, e.peer}).second;
      EXPECT_TRUE(fresh) << "serial " << e.serial << " left twice";
    } else if (e.kind == sim::TraceKind::kHandoffRecv) {
      const auto it = in_flight.find(e.serial);
      ASSERT_NE(it, in_flight.end())
          << "recv without leave, serial " << e.serial;
      EXPECT_EQ(e.cell, it->second.dest) << "handoff misrouted";
      EXPECT_GT(e.t, it->second.t) << "handoff arrived instantaneously";
      in_flight.erase(it);
      ++pairs;
    }
  }
  EXPECT_TRUE(in_flight.empty())
      << in_flight.size() << " handoff(s) lost in migration";
  EXPECT_GT(pairs, 0u) << "scenario exercised no migration";
}

TEST(HandoffShardProperties, NoSerialIsRequestedOrBilledTwice) {
  auto cfg = base_config();
  cfg.mean_dwell_s = 30.0;
  cfg.shards = 4;
  cfg.threads = 2;
  sim::TraceRecorder rec;
  const RunResult r = runner::run_uniform(cfg, Scheme::kAdaptive, 0.8, &rec);
  EXPECT_TRUE(r.quiescent);

  // A serial identifies one acquisition attempt of one call leg: it must
  // open at most one request and at most one acquire, and handoff legs
  // (hop > 0) must reuse the call id of their origin leg.
  std::unordered_set<std::uint64_t> requested;
  std::unordered_set<std::uint64_t> acquired;
  std::size_t handoff_requests = 0;
  for (const auto& e : rec.events()) {
    if (e.kind == sim::TraceKind::kRequest) {
      EXPECT_TRUE(requested.insert(e.serial).second)
          << "serial " << e.serial << " requested twice (double billing)";
      if (traffic::mobility::hop_of(e.serial) > 0) {
        ++handoff_requests;
        EXPECT_NE(traffic::mobility::call_of(e.serial), 0u);
      }
    } else if (e.kind == sim::TraceKind::kAcquire && e.serial != 0) {
      EXPECT_TRUE(acquired.insert(e.serial).second)
          << "serial " << e.serial << " acquired twice";
    }
  }
  EXPECT_GT(handoff_requests, 0u);
  EXPECT_EQ(r.agg.offered, r.agg.acquired + r.agg.blocked + r.agg.starved +
                               r.agg.timed_out);
}

TEST(HandoffShardProperties, MergedTracePassesConformanceUnderMigration) {
  auto cfg = base_config();
  cfg.latency_jitter = sim::milliseconds(2);
  cfg.mean_dwell_s = 30.0;
  cfg.shards = 8;
  cfg.threads = 4;
  sim::TraceRecorder rec;
  const RunResult r = runner::run_uniform(cfg, Scheme::kAdaptive, 0.8, &rec);
  EXPECT_TRUE(r.quiescent);
  const cell::HexGrid grid(cfg.rows, cfg.cols, cfg.interference_radius,
                           cfg.wrap);
  const auto report = runner::check_trace(grid, cfg.n_channels, rec.events());
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(HandoffShardProperties, UsageIntegralConservedAcrossMigration) {
  // The usage integral (carried Erlangs) must not change when calls
  // migrate across shard boundaries: compare a heavily-sharded mobile run
  // against classic, and also require that mobility only ever *lowers*
  // carried traffic relative to no mobility (handoff gaps and failures
  // shed usage, never mint it).
  auto cfg = base_config();
  cfg.mean_dwell_s = 30.0;
  const RunResult classic = runner::run_uniform(cfg, Scheme::kAdaptive, 0.8);
  runner::ScenarioConfig cs = cfg;
  cs.shards = 8;
  cs.threads = 4;
  const RunResult sharded = runner::run_uniform(cs, Scheme::kAdaptive, 0.8);
  EXPECT_EQ(classic.carried_erlangs, sharded.carried_erlangs);
  EXPECT_GT(sharded.agg.handoff_offered, 0u);

  runner::ScenarioConfig still = base_config();
  const RunResult pinned = runner::run_uniform(still, Scheme::kAdaptive, 0.8);
  EXPECT_LE(sharded.carried_erlangs, pinned.carried_erlangs * 1.05);
}

}  // namespace
}  // namespace dca
