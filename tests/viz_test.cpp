// Structural tests for the SVG renderer.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "cell/grid.hpp"
#include "cell/reuse.hpp"
#include "viz/svg.hpp"

namespace dca::viz {
namespace {

std::size_t count_occurrences(const std::string& hay, const std::string& needle) {
  std::size_t n = 0;
  for (auto pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(Svg, OnePolygonPerCell) {
  const cell::HexGrid grid(5, 6, 2);
  const auto plan = cell::ReusePlan::cluster(grid, 70, 7);
  const std::string svg = render_svg(grid, plan);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_EQ(count_occurrences(svg, "<polygon"), 30u);
  EXPECT_EQ(count_occurrences(svg, "<text"), 30u) << "one id label per cell";
}

TEST(Svg, UsesOneFillPerColorClass) {
  const cell::HexGrid grid(7, 7, 2);
  const auto plan = cell::ReusePlan::cluster(grid, 70, 7);
  const std::string svg = render_svg(grid, plan);
  // Count distinct 6-digit fill colours among polygons (the id labels use
  // the short #222, which the hex-length filter excludes): exactly 7
  // colour classes.
  const auto is_hex = [](char c) {
    return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
  };
  std::set<std::string> fills;
  for (auto pos = svg.find("fill=\"#"); pos != std::string::npos;
       pos = svg.find("fill=\"#", pos + 1)) {
    const std::string token = svg.substr(pos + 6, 7);
    bool ok = token.size() == 7 && token[0] == '#';
    for (std::size_t i = 1; ok && i < 7; ++i) ok = is_hex(token[i]);
    if (ok) fills.insert(token);
  }
  EXPECT_EQ(fills.size(), 7u);
}

TEST(Svg, FocusHighlightsInterferenceRegion) {
  const cell::HexGrid grid(8, 8, 2);
  const auto plan = cell::ReusePlan::cluster(grid, 70, 7);
  SvgOptions opt;
  opt.focus = 4 * 8 + 4;
  const std::string svg = render_svg(grid, plan, opt);
  // Focus stroke appears once; interference strokes once per IN member.
  EXPECT_EQ(count_occurrences(svg, "stroke=\"#000000\""), 1u);
  EXPECT_EQ(count_occurrences(svg, "stroke=\"#cc0000\""),
            grid.interference(opt.focus).size());
}

TEST(Svg, HeatOverlayVariesOpacity) {
  const cell::HexGrid grid(3, 3, 1);
  const auto plan = cell::ReusePlan::cluster(grid, 21, 3);
  SvgOptions opt;
  opt.in_use.assign(9, 0);
  opt.in_use[4] = 7;
  opt.heat_scale = 7;
  opt.label_ids = false;
  const std::string svg = render_svg(grid, plan, opt);
  EXPECT_NE(svg.find("fill-opacity=\"0.95\""), std::string::npos)
      << "fully loaded cell at max heat";
  EXPECT_NE(svg.find("fill-opacity=\"0.1\""), std::string::npos)
      << "idle cells at base heat";
  EXPECT_EQ(count_occurrences(svg, "<text"), 0u);
}

TEST(Svg, WriteSvgRoundTrips) {
  const cell::HexGrid grid(2, 2, 1);
  const auto plan = cell::ReusePlan::cluster(grid, 21, 3);
  const std::string path = "/tmp/dca_viz_test.svg";
  ASSERT_TRUE(write_svg(path, grid, plan));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, render_svg(grid, plan));
  std::remove(path.c_str());
}

TEST(Svg, WriteToBadPathFails) {
  const cell::HexGrid grid(2, 2, 1);
  const auto plan = cell::ReusePlan::cluster(grid, 21, 3);
  EXPECT_FALSE(write_svg("/nonexistent-dir/x.svg", grid, plan));
}

}  // namespace
}  // namespace dca::viz
