// Crash-recovery fault model: determinism across engines, availability
// accounting, graceful degradation, and conformance through crashes.
//
// The acceptance bar for the fault model is the same as for every other
// subsystem: simulation outputs are a pure function of the scenario. A
// crash schedule, a partition timeline, and the resync protocol all ride
// on seed-derived streams and canonically keyed events, so the sharded
// engine must reproduce the classic engine bit for bit even while cells
// crash mid-search and partitions sever the control plane.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "runner/conformance.hpp"
#include "runner/experiment.hpp"
#include "sim/trace.hpp"

namespace dca {
namespace {

using runner::RunResult;
using runner::Scheme;

runner::ScenarioConfig crashy_config() {
  runner::ScenarioConfig cfg;
  cfg.rows = 5;
  cfg.cols = 5;
  cfg.n_channels = 35;
  cfg.duration = sim::minutes(2);
  cfg.warmup = sim::seconds(15);
  cfg.seed = 23;
  cfg.fault.crash_rate_per_min = 1.0;
  cfg.fault.crash_mean_s = 2.0;
  cfg.request_timeout = sim::milliseconds(400);
  return cfg;
}

// The full chaos cocktail: crashes, partitions, lossy jittery transport,
// and mobility, all at once.
runner::ScenarioConfig cocktail_config() {
  runner::ScenarioConfig cfg = crashy_config();
  cfg.fault.drop_prob = 0.05;
  cfg.fault.dup_prob = 0.02;
  cfg.fault.jitter = sim::milliseconds(3);
  cfg.fault.partitions = {
      net::PartitionSpec{{0, 1, 5}, sim::seconds(20), sim::seconds(35)},
      net::PartitionSpec{{24}, sim::seconds(50), sim::seconds(60)}};
  cfg.mean_dwell_s = cfg.mean_holding_s / 2.0;
  return cfg;
}

std::uint64_t count_kind(const sim::TraceRecorder& rec, sim::TraceKind k) {
  std::uint64_t n = 0;
  for (const sim::TraceEvent& e : rec.events())
    if (e.kind == k) ++n;
  return n;
}

void expect_same_result(const RunResult& a, const RunResult& b,
                        const char* what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.agg.offered, b.agg.offered);
  EXPECT_EQ(a.agg.acquired, b.agg.acquired);
  EXPECT_EQ(a.agg.blocked, b.agg.blocked);
  EXPECT_EQ(a.agg.starved, b.agg.starved);
  EXPECT_EQ(a.agg.timed_out, b.agg.timed_out);
  EXPECT_EQ(a.agg.downed, b.agg.downed);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.offered_calls, b.offered_calls);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.carried_erlangs, b.carried_erlangs);  // bit-exact, not near
  EXPECT_EQ(a.agg.delay_in_T.mean(), b.agg.delay_in_T.mean());
  EXPECT_EQ(a.agg.messages_per_call.mean(), b.agg.messages_per_call.mean());
  EXPECT_EQ(a.messages_by_kind, b.messages_by_kind);
  EXPECT_EQ(a.quiescent, b.quiescent);
  EXPECT_EQ(a.transport, b.transport);
  EXPECT_EQ(a.availability, b.availability);
}

// The tentpole guarantee: the crash/partition/resync machinery is
// engine-invariant — classic vs shards=2/4 x threads=1/4, full structured
// trace compared event for event, with the entire cocktail active.
TEST(CrashRecovery, ShardedEngineMatchesClassicThroughCrashes) {
  const runner::ScenarioConfig cfg = cocktail_config();
  for (const Scheme s : {Scheme::kBasicSearch, Scheme::kAdaptive}) {
    SCOPED_TRACE(runner::scheme_name(s));
    sim::TraceRecorder rec1;
    const RunResult r1 = runner::run_uniform(cfg, s, 0.8, &rec1);
    ASSERT_GT(count_kind(rec1, sim::TraceKind::kCrash), 0u)
        << "the cocktail must actually crash cells";
    ASSERT_GT(count_kind(rec1, sim::TraceKind::kResyncDone), 0u);

    for (const int shards : {2, 4}) {
      for (const int threads : {1, 4}) {
        SCOPED_TRACE("shards=" + std::to_string(shards) +
                     " threads=" + std::to_string(threads));
        runner::ScenarioConfig cs = cfg;
        cs.shards = shards;
        cs.threads = threads;
        sim::TraceRecorder recs;
        const RunResult rs = runner::run_uniform(cs, s, 0.8, &recs);
        expect_same_result(r1, rs, "classic vs sharded");
        EXPECT_EQ(rec1.events(), recs.events()) << "full merged trace";
      }
    }
  }
}

TEST(CrashRecovery, CrashScheduleReplaysBitIdentically) {
  const runner::ScenarioConfig cfg = cocktail_config();
  sim::TraceRecorder rec_a, rec_b;
  const RunResult a = runner::run_uniform(cfg, Scheme::kAdaptive, 0.8, &rec_a);
  const RunResult b = runner::run_uniform(cfg, Scheme::kAdaptive, 0.8, &rec_b);
  expect_same_result(a, b, "replay");
  EXPECT_EQ(rec_a.events(), rec_b.events());
}

TEST(CrashRecovery, AvailabilityAccountingIsConsistent) {
  const runner::ScenarioConfig cfg = crashy_config();
  const RunResult r = runner::run_uniform(cfg, Scheme::kAdaptive, 0.7);
  const metrics::Availability& av = r.availability;
  EXPECT_GT(av.crashes, 0u);
  EXPECT_GT(av.resyncs, 0u);
  // A crash can interrupt a resync (which then never completes), so
  // resyncs can trail crashes — but never exceed them.
  EXPECT_LE(av.resyncs, av.crashes);
  EXPECT_GT(av.down_us, 0u);
  EXPECT_GT(av.resync_us, 0u);
  EXPECT_GE(av.resync_rounds, av.resyncs);  // every resync takes >= 1 wave
  EXPECT_GE(av.max_resync_rounds, 1u);
  const double uptime =
      av.uptime_fraction(cfg.duration, cfg.rows * cfg.cols);
  EXPECT_LT(uptime, 1.0);
  EXPECT_GT(uptime, 0.0);
  EXPECT_GT(av.mean_time_to_resync_s(), 0.0);
  // Arrivals at down cells are rejected, not lost: the downed outcome
  // must show up in the aggregate.
  EXPECT_GT(r.agg.downed, 0u);
  EXPECT_EQ(r.violations, 0u);
  EXPECT_TRUE(r.quiescent);
}

// Regression: with the crash knobs at zero the fault model must be
// completely inert — no crash events, zero availability accounting, and
// no downed outcomes.
TEST(CrashRecovery, CrashFreeRunsAreUntouched) {
  runner::ScenarioConfig cfg = crashy_config();
  cfg.fault.crash_rate_per_min = 0.0;
  cfg.fault.crash_mean_s = 0.0;
  sim::TraceRecorder rec;
  const RunResult r = runner::run_uniform(cfg, Scheme::kAdaptive, 0.7, &rec);
  EXPECT_EQ(r.availability, metrics::Availability{});
  EXPECT_EQ(r.agg.downed, 0u);
  EXPECT_EQ(count_kind(rec, sim::TraceKind::kCrash), 0u);
  EXPECT_EQ(count_kind(rec, sim::TraceKind::kRestart), 0u);
  EXPECT_EQ(count_kind(rec, sim::TraceKind::kResyncDone), 0u);
}

// Reuse-distance and the rest of the invariant suite hold through every
// crash, restart, and partition; the checker's crash/resync tallies must
// agree with the trace.
TEST(CrashRecovery, ConformanceHoldsThroughTheCocktail) {
  const runner::ScenarioConfig cfg = cocktail_config();
  for (const Scheme s : {Scheme::kBasicSearch, Scheme::kBasicUpdate,
                         Scheme::kAdvancedUpdate, Scheme::kAdvancedSearch,
                         Scheme::kAdaptive}) {
    SCOPED_TRACE(runner::scheme_name(s));
    sim::TraceRecorder rec;
    const RunResult r = runner::run_uniform(cfg, s, 0.8, &rec);
    EXPECT_EQ(r.violations, 0u);
    EXPECT_TRUE(r.quiescent);
    const cell::HexGrid grid(cfg.rows, cfg.cols, cfg.interference_radius,
                             cfg.wrap);
    runner::ConformanceReport rep =
        runner::check_trace(grid, cfg.n_channels, rec.events());
    for (const runner::ConformanceViolation& v : rep.violations)
      ADD_FAILURE() << "[" << v.rule << "] t=" << v.t << " " << v.detail;
    EXPECT_EQ(rep.crashes, count_kind(rec, sim::TraceKind::kCrash));
    EXPECT_EQ(rep.resyncs, count_kind(rec, sim::TraceKind::kResyncDone));
    EXPECT_GT(rep.crashes, 0u);
  }
}

// A partition without crashes: severed frames show up as drops, the
// reliable transport rides out the outage, and the run still drains and
// matches across engines. Basic search asks every interference neighbour
// on every arrival, so cross-cut frames are guaranteed (adaptive would
// sit in local mode at this load and never touch the cut).
TEST(CrashRecovery, PartitionSeversAndHeals) {
  runner::ScenarioConfig cfg = crashy_config();
  cfg.fault.crash_rate_per_min = 0.0;
  cfg.fault.crash_mean_s = 0.0;
  cfg.fault.partitions = {
      net::PartitionSpec{{0, 1, 5, 6}, sim::seconds(20), sim::seconds(40)}};
  sim::TraceRecorder rec1;
  const RunResult r1 =
      runner::run_uniform(cfg, Scheme::kBasicSearch, 0.8, &rec1);
  EXPECT_GT(r1.transport.frames_dropped, 0u) << "the partition must sever";
  EXPECT_GT(r1.transport.retransmissions, 0u) << "and the RTO must resend";
  EXPECT_EQ(r1.violations, 0u);
  EXPECT_TRUE(r1.quiescent);
  EXPECT_EQ(r1.availability, metrics::Availability{});

  runner::ScenarioConfig cs = cfg;
  cs.shards = 4;
  cs.threads = 2;
  sim::TraceRecorder rec4;
  const RunResult r4 =
      runner::run_uniform(cs, Scheme::kBasicSearch, 0.8, &rec4);
  expect_same_result(r1, r4, "partition, classic vs sharded");
  EXPECT_EQ(rec1.events(), rec4.events());
}

}  // namespace
}  // namespace dca
