// Determinism regression: results are a pure function of the scenario —
// independent of worker thread count, and bit-identically replayable even
// with the full fault cocktail active (the fault schedule derives from
// the seed, not from host scheduling).
#include <gtest/gtest.h>

#include <vector>

#include "runner/experiment.hpp"
#include "sim/trace.hpp"

namespace dca {
namespace {

using runner::RunResult;
using runner::Scheme;

runner::ScenarioConfig small_config() {
  runner::ScenarioConfig cfg;
  cfg.rows = 5;
  cfg.cols = 5;
  cfg.n_channels = 35;
  cfg.duration = sim::minutes(3);
  cfg.warmup = sim::seconds(30);
  cfg.seed = 11;
  return cfg;
}

void expect_same_result(const RunResult& a, const RunResult& b,
                        const char* what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.agg.offered, b.agg.offered);
  EXPECT_EQ(a.agg.acquired, b.agg.acquired);
  EXPECT_EQ(a.agg.blocked, b.agg.blocked);
  EXPECT_EQ(a.agg.starved, b.agg.starved);
  EXPECT_EQ(a.agg.timed_out, b.agg.timed_out);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.executed_events, b.executed_events);
  EXPECT_EQ(a.offered_calls, b.offered_calls);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.carried_erlangs, b.carried_erlangs);  // bit-exact, not near
  EXPECT_EQ(a.agg.delay_in_T.mean(), b.agg.delay_in_T.mean());
  EXPECT_EQ(a.transport, b.transport);
}

TEST(Determinism, SweepIsThreadCountInvariant) {
  const runner::ScenarioConfig cfg = small_config();
  const std::vector<Scheme> schemes{Scheme::kBasicSearch, Scheme::kBasicUpdate,
                                    Scheme::kAdaptive};
  const std::vector<double> rhos{0.5, 1.0};
  const auto serial = runner::sweep_uniform(cfg, schemes, rhos, /*threads=*/1);
  const auto parallel = runner::sweep_uniform(cfg, schemes, rhos, /*threads=*/8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].scheme, parallel[i].scheme);
    ASSERT_EQ(serial[i].rho, parallel[i].rho);
    expect_same_result(serial[i].result, parallel[i].result,
                       runner::scheme_name(serial[i].scheme).c_str());
  }
}

TEST(Determinism, FaultInjectedRunReplaysBitIdentically) {
  runner::ScenarioConfig cfg = small_config();
  cfg.fault.drop_prob = 0.08;
  cfg.fault.dup_prob = 0.05;
  cfg.fault.jitter = sim::milliseconds(3);
  cfg.fault.pause_rate_per_min = 0.5;
  cfg.fault.pause_mean_s = 1.0;
  cfg.request_timeout = sim::milliseconds(400);

  for (const Scheme s : {Scheme::kBasicSearch, Scheme::kAdaptive}) {
    sim::TraceRecorder rec_a, rec_b;
    const RunResult a = runner::run_uniform(cfg, s, 0.8, &rec_a);
    const RunResult b = runner::run_uniform(cfg, s, 0.8, &rec_b);
    expect_same_result(a, b, runner::scheme_name(s).c_str());
    EXPECT_GT(rec_a.size(), 0u);
    EXPECT_GT(a.transport.frames_dropped, 0u) << "faults should be active";
    EXPECT_EQ(rec_a.events(), rec_b.events())
        << runner::scheme_name(s) << ": full event traces must be identical";
  }
}

TEST(Determinism, TracingItselfDoesNotPerturbTheRun) {
  runner::ScenarioConfig cfg = small_config();
  cfg.fault.drop_prob = 0.05;
  cfg.request_timeout = sim::milliseconds(400);
  sim::TraceRecorder rec;
  const RunResult traced = runner::run_uniform(cfg, Scheme::kAdaptive, 0.8, &rec);
  const RunResult plain = runner::run_uniform(cfg, Scheme::kAdaptive, 0.8);
  expect_same_result(traced, plain, "traced vs untraced");
}

}  // namespace
}  // namespace dca
