// Determinism regression: results are a pure function of the scenario —
// independent of worker thread count, and bit-identically replayable even
// with the full fault cocktail active (the fault schedule derives from
// the seed, not from host scheduling).
#include <gtest/gtest.h>

#include <vector>

#include "runner/experiment.hpp"
#include "sim/trace.hpp"

namespace dca {
namespace {

using runner::RunResult;
using runner::Scheme;

runner::ScenarioConfig small_config() {
  runner::ScenarioConfig cfg;
  cfg.rows = 5;
  cfg.cols = 5;
  cfg.n_channels = 35;
  cfg.duration = sim::minutes(3);
  cfg.warmup = sim::seconds(30);
  cfg.seed = 11;
  return cfg;
}

void expect_same_result(const RunResult& a, const RunResult& b,
                        const char* what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.agg.offered, b.agg.offered);
  EXPECT_EQ(a.agg.acquired, b.agg.acquired);
  EXPECT_EQ(a.agg.blocked, b.agg.blocked);
  EXPECT_EQ(a.agg.starved, b.agg.starved);
  EXPECT_EQ(a.agg.timed_out, b.agg.timed_out);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.executed_events, b.executed_events);
  EXPECT_EQ(a.offered_calls, b.offered_calls);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.carried_erlangs, b.carried_erlangs);  // bit-exact, not near
  EXPECT_EQ(a.agg.delay_in_T.mean(), b.agg.delay_in_T.mean());
  EXPECT_EQ(a.agg.delay_us.mean(), b.agg.delay_us.mean());
  EXPECT_EQ(a.agg.messages_per_call.mean(), b.agg.messages_per_call.mean());
  EXPECT_EQ(a.agg.xi1, b.agg.xi1);
  EXPECT_EQ(a.agg.xi2, b.agg.xi2);
  EXPECT_EQ(a.agg.xi3, b.agg.xi3);
  EXPECT_EQ(a.agg.mean_update_attempts, b.agg.mean_update_attempts);
  EXPECT_EQ(a.agg.mean_borrowing_neighbors, b.agg.mean_borrowing_neighbors);
  EXPECT_EQ(a.agg.mean_searching_neighbors, b.agg.mean_searching_neighbors);
  EXPECT_EQ(a.messages_by_kind, b.messages_by_kind);
  EXPECT_EQ(a.quiescent, b.quiescent);
  EXPECT_EQ(a.transport, b.transport);
}

TEST(Determinism, SweepIsThreadCountInvariant) {
  const runner::ScenarioConfig cfg = small_config();
  const std::vector<Scheme> schemes{Scheme::kBasicSearch, Scheme::kBasicUpdate,
                                    Scheme::kAdaptive};
  const std::vector<double> rhos{0.5, 1.0};
  const auto serial = runner::sweep_uniform(cfg, schemes, rhos, /*threads=*/1);
  const auto parallel = runner::sweep_uniform(cfg, schemes, rhos, /*threads=*/8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].scheme, parallel[i].scheme);
    ASSERT_EQ(serial[i].rho, parallel[i].rho);
    expect_same_result(serial[i].result, parallel[i].result,
                       runner::scheme_name(serial[i].scheme).c_str());
  }
}

TEST(Determinism, FaultInjectedRunReplaysBitIdentically) {
  runner::ScenarioConfig cfg = small_config();
  cfg.fault.drop_prob = 0.08;
  cfg.fault.dup_prob = 0.05;
  cfg.fault.jitter = sim::milliseconds(3);
  cfg.fault.pause_rate_per_min = 0.5;
  cfg.fault.pause_mean_s = 1.0;
  cfg.request_timeout = sim::milliseconds(400);

  for (const Scheme s : {Scheme::kBasicSearch, Scheme::kAdaptive}) {
    sim::TraceRecorder rec_a, rec_b;
    const RunResult a = runner::run_uniform(cfg, s, 0.8, &rec_a);
    const RunResult b = runner::run_uniform(cfg, s, 0.8, &rec_b);
    expect_same_result(a, b, runner::scheme_name(s).c_str());
    EXPECT_GT(rec_a.size(), 0u);
    EXPECT_GT(a.transport.frames_dropped, 0u) << "faults should be active";
    EXPECT_EQ(rec_a.events(), rec_b.events())
        << runner::scheme_name(s) << ": full event traces must be identical";
  }
}

// The tentpole guarantee: partitioning the world across shards (and any
// worker thread count) reproduces the classic single-queue engine bit for
// bit — headline metrics, FP aggregates, and the full structured trace.
TEST(Determinism, ShardedEngineMatchesClassicBitExactly) {
  const runner::ScenarioConfig cfg = small_config();
  for (const Scheme s : {Scheme::kBasicSearch, Scheme::kAdaptive}) {
    SCOPED_TRACE(runner::scheme_name(s));
    sim::TraceRecorder rec1, rec4, rec8;
    const RunResult r1 = runner::run_uniform(cfg, s, 0.8, &rec1);

    runner::ScenarioConfig c4 = cfg;
    c4.shards = 4;
    c4.threads = 2;
    const RunResult r4 = runner::run_uniform(c4, s, 0.8, &rec4);

    runner::ScenarioConfig c8 = cfg;
    c8.shards = 8;
    c8.threads = 0;  // one thread per shard (capped by hardware)
    const RunResult r8 = runner::run_uniform(c8, s, 0.8, &rec8);

    expect_same_result(r1, r4, "shards=1 vs shards=4");
    expect_same_result(r1, r8, "shards=1 vs shards=8");
    ASSERT_GT(rec1.size(), 0u);
    EXPECT_EQ(rec1.events(), rec4.events()) << "merged trace, shards=4";
    EXPECT_EQ(rec1.events(), rec8.events()) << "merged trace, shards=8";
  }
}

// Same guarantee with the full fault cocktail: drops, duplicates, fault
// jitter, MSS pauses, and protocol timeouts all live on per-cell/per-link
// streams, so the shard decomposition cannot perturb them.
TEST(Determinism, ShardedEngineMatchesClassicUnderFaults) {
  runner::ScenarioConfig cfg = small_config();
  cfg.fault.drop_prob = 0.08;
  cfg.fault.dup_prob = 0.05;
  cfg.fault.jitter = sim::milliseconds(3);
  cfg.fault.pause_rate_per_min = 0.5;
  cfg.fault.pause_mean_s = 1.0;
  cfg.request_timeout = sim::milliseconds(400);

  for (const Scheme s : {Scheme::kBasicSearch, Scheme::kAdaptive}) {
    SCOPED_TRACE(runner::scheme_name(s));
    sim::TraceRecorder rec1, rec4;
    const RunResult r1 = runner::run_uniform(cfg, s, 0.8, &rec1);

    runner::ScenarioConfig c4 = cfg;
    c4.shards = 4;
    c4.threads = 4;
    const RunResult r4 = runner::run_uniform(c4, s, 0.8, &rec4);

    expect_same_result(r1, r4, "faults, shards=1 vs shards=4");
    EXPECT_GT(r1.transport.frames_dropped, 0u) << "faults should be active";
    EXPECT_EQ(rec1.events(), rec4.events()) << "merged trace under faults";
  }
}

// Link-table stress: a much hotter fault cocktail (quarter of all frames
// dropped, heavy duplication, jitter wider than the base latency, plus
// MSS pauses) drives the flat per-link rings hard — deep retransmit
// windows, long reorder runs, pause backlogs — and the full structured
// trace must still match the classic engine event for event at every
// shard count.
TEST(Determinism, LinkTableSurvivesFullFaultCocktailBitExactly) {
  runner::ScenarioConfig cfg = small_config();
  cfg.duration = sim::minutes(1);
  cfg.warmup = sim::seconds(10);
  cfg.fault.drop_prob = 0.25;
  cfg.fault.dup_prob = 0.15;
  cfg.fault.jitter = sim::milliseconds(8);
  cfg.fault.pause_rate_per_min = 1.0;
  cfg.fault.pause_mean_s = 0.5;
  cfg.request_timeout = sim::milliseconds(400);

  for (const Scheme s : {Scheme::kBasicSearch, Scheme::kAdaptive}) {
    SCOPED_TRACE(runner::scheme_name(s));
    sim::TraceRecorder rec1;
    const RunResult r1 = runner::run_uniform(cfg, s, 0.9, &rec1);
    ASSERT_GT(rec1.size(), 0u);
    EXPECT_GT(r1.transport.frames_dropped, 0u);
    EXPECT_GT(r1.transport.frames_duplicated, 0u);
    EXPECT_GT(r1.transport.retransmissions, 0u);

    for (const int shards : {2, 4}) {
      SCOPED_TRACE(shards);
      runner::ScenarioConfig cs = cfg;
      cs.shards = shards;
      cs.threads = 0;
      sim::TraceRecorder recs;
      const RunResult rs = runner::run_uniform(cs, s, 0.9, &recs);
      expect_same_result(r1, rs, "stress cocktail, classic vs sharded");
      EXPECT_EQ(rec1.events(), recs.events())
          << "full trace must be identical at shards=" << shards;
    }
  }
}

// Thread count must be wall-clock-only: same shard count, different
// worker counts, identical everything.
TEST(Determinism, ShardedThreadCountIsResultInvariant) {
  runner::ScenarioConfig cfg = small_config();
  cfg.shards = 5;
  sim::TraceRecorder rec_a, rec_b;
  cfg.threads = 1;
  const RunResult a = runner::run_uniform(cfg, Scheme::kAdaptive, 0.8, &rec_a);
  cfg.threads = 5;
  const RunResult b = runner::run_uniform(cfg, Scheme::kAdaptive, 0.8, &rec_b);
  expect_same_result(a, b, "threads=1 vs threads=5");
  EXPECT_EQ(rec_a.events(), rec_b.events());
}

TEST(Determinism, TracingItselfDoesNotPerturbTheRun) {
  runner::ScenarioConfig cfg = small_config();
  cfg.fault.drop_prob = 0.05;
  cfg.request_timeout = sim::milliseconds(400);
  sim::TraceRecorder rec;
  const RunResult traced = runner::run_uniform(cfg, Scheme::kAdaptive, 0.8, &rec);
  const RunResult plain = runner::run_uniform(cfg, Scheme::kAdaptive, 0.8);
  expect_same_result(traced, plain, "traced vs untraced");
}

}  // namespace
}  // namespace dca
