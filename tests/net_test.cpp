// Unit tests for the network substrate: timestamps, latency models,
// message delivery, counters, and the observer hook.
#include <gtest/gtest.h>

#include <vector>

#include "cell/grid.hpp"
#include "net/latency.hpp"
#include "net/message.hpp"
#include "net/network.hpp"
#include "net/timestamp.hpp"
#include "sim/simulator.hpp"

namespace dca::net {
namespace {

TEST(Timestamp, TotalOrderWithNodeTieBreak) {
  const Timestamp a{5, 1}, b{5, 2}, c{6, 0};
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b < c);
  EXPECT_TRUE(a < c);
  EXPECT_FALSE(b < a);
  EXPECT_TRUE(b > a);
  EXPECT_FALSE(a < a);
}

TEST(LamportClock, TickIncrements) {
  LamportClock clk(3);
  const Timestamp t1 = clk.tick();
  const Timestamp t2 = clk.tick();
  EXPECT_TRUE(t1 < t2);
  EXPECT_EQ(t1.node, 3);
}

TEST(LamportClock, WitnessAdvancesPastObserved) {
  LamportClock a(0), b(1);
  a.tick();
  a.tick();
  const Timestamp ta = a.tick();  // count 3
  b.witness(ta);
  const Timestamp tb = b.tick();
  EXPECT_TRUE(ta < tb) << "a reply after witnessing must be causally later";
}

TEST(LamportClock, WitnessOlderTimestampIsNoop) {
  LamportClock a(0);
  a.tick();
  a.tick();
  a.witness(Timestamp{1, 9});
  EXPECT_EQ(a.peek().count, 2u);
}

TEST(Latency, FixedIsConstant) {
  FixedLatency l(5000);
  EXPECT_EQ(l.delay(0, 1), 5000);
  EXPECT_EQ(l.delay(7, 3), 5000);
  EXPECT_EQ(l.max_one_way(), 5000);
}

TEST(Latency, JitterStaysInRange) {
  JitterLatency l(100, 200, sim::RngStream(1));
  for (int i = 0; i < 1000; ++i) {
    const auto d = l.delay(0, 1);
    EXPECT_GE(d, 100);
    EXPECT_LE(d, 200);
  }
  EXPECT_EQ(l.max_one_way(), 200);
}

TEST(Latency, MatrixOverridesPerLink) {
  MatrixLatency l(1000);
  l.set(2, 3, 50);
  l.set(3, 2, 9000);
  EXPECT_EQ(l.delay(2, 3), 50);
  EXPECT_EQ(l.delay(3, 2), 9000);
  EXPECT_EQ(l.delay(0, 1), 1000);
  EXPECT_EQ(l.max_one_way(), 9000);
}

class NetworkFixture : public ::testing::Test {
 protected:
  sim::Simulator simulator;
  Network net{simulator, std::make_unique<FixedLatency>(100)};
  std::vector<Message> delivered;

  void SetUp() override {
    net.set_receiver([this](const Message& m) { delivered.push_back(m); });
  }

  static Message mk(cell::CellId from, cell::CellId to, MsgKind kind) {
    Message m;
    m.kind = kind;
    m.from = from;
    m.to = to;
    return m;
  }
};

TEST_F(NetworkFixture, DeliversAfterLatency) {
  net.send(mk(0, 1, MsgKind::kRequest));
  EXPECT_TRUE(delivered.empty());
  simulator.run_to_quiescence();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(simulator.now(), 100);
  EXPECT_EQ(delivered[0].from, 0);
  EXPECT_EQ(delivered[0].to, 1);
}

TEST_F(NetworkFixture, PerLinkFifoWithFixedLatency) {
  for (int i = 0; i < 5; ++i) {
    Message m = mk(0, 1, MsgKind::kRelease);
    m.channel = i;
    net.send(m);
  }
  simulator.run_to_quiescence();
  ASSERT_EQ(delivered.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(delivered[static_cast<size_t>(i)].channel, i);
}

TEST(NetworkFifo, JitteredLinkNeverReorders) {
  // A latency model that draws wildly different delays must not let a
  // later send overtake an earlier one on the SAME directed link (the
  // paper's protocols assume ordered channels; see header comment).
  class SawtoothLatency final : public LatencyModel {
   public:
    sim::Duration delay(cell::CellId, cell::CellId) override {
      // 1000, 10, 1000, 10, ... — every even message would be overtaken
      // by the next odd one without the FIFO floor.
      return (++n_ % 2) ? 1000 : 10;
    }
    [[nodiscard]] sim::Duration max_one_way() const override { return 1000; }

   private:
    int n_ = 0;
  };
  sim::Simulator simulator;
  Network net{simulator, std::make_unique<SawtoothLatency>()};
  std::vector<int> order;
  net.set_receiver([&](const Message& m) { order.push_back(m.channel); });
  for (int i = 0; i < 10; ++i) {
    Message m;
    m.kind = MsgKind::kRelease;
    m.from = 0;
    m.to = 1;
    m.channel = i;
    net.send(m);
  }
  simulator.run_to_quiescence();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(NetworkFifo, DifferentLinksStillRace) {
  // The FIFO floor is per directed link: a fast message on another link
  // may still arrive first.
  class PerDestLatency final : public LatencyModel {
   public:
    sim::Duration delay(cell::CellId, cell::CellId to) override {
      return to == 1 ? 1000 : 10;
    }
    [[nodiscard]] sim::Duration max_one_way() const override { return 1000; }
  };
  sim::Simulator simulator;
  Network net{simulator, std::make_unique<PerDestLatency>()};
  std::vector<cell::CellId> order;
  net.set_receiver([&](const Message& m) { order.push_back(m.to); });
  Message slow;
  slow.kind = MsgKind::kRelease;
  slow.from = 0;
  slow.to = 1;
  net.send(slow);
  Message fast = slow;
  fast.to = 2;
  net.send(fast);
  simulator.run_to_quiescence();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 2) << "cross-link overtaking is allowed";
  EXPECT_EQ(order[1], 1);
}

TEST_F(NetworkFixture, CountersByKind) {
  net.send(mk(0, 1, MsgKind::kRequest));
  net.send(mk(1, 0, MsgKind::kResponse));
  net.send(mk(1, 2, MsgKind::kResponse));
  EXPECT_EQ(net.total_sent(), 3u);
  EXPECT_EQ(net.sent_of(MsgKind::kRequest), 1u);
  EXPECT_EQ(net.sent_of(MsgKind::kResponse), 2u);
  EXPECT_EQ(net.sent_of(MsgKind::kAcquisition), 0u);
  net.reset_counters();
  EXPECT_EQ(net.total_sent(), 0u);
}

TEST_F(NetworkFixture, ObserverSeesEveryMessageAtSendTime) {
  int observed = 0;
  net.set_observer([&](const Message&) { ++observed; });
  net.send(mk(0, 1, MsgKind::kAcquisition));
  EXPECT_EQ(observed, 1) << "observer fires at send, not delivery";
  simulator.run_to_quiescence();
  EXPECT_EQ(observed, 1);
}

TEST_F(NetworkFixture, UseSetPayloadSurvivesDelivery) {
  Message m = mk(4, 1, MsgKind::kResponse);
  m.res_type = ResType::kSearchReply;
  m.use = cell::ChannelSet(70);
  m.use.insert(13);
  m.use.insert(42);
  net.send(m);
  simulator.run_to_quiescence();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_TRUE(delivered[0].use.contains(13));
  EXPECT_TRUE(delivered[0].use.contains(42));
  EXPECT_EQ(delivered[0].use.size(), 2);
}

TEST(MessageNames, KindNamesMatchPaper) {
  Message m;
  m.kind = MsgKind::kChangeMode;
  EXPECT_EQ(m.kind_name(), "CHANGE_MODE");
  m.kind = MsgKind::kAcquisition;
  EXPECT_EQ(m.kind_name(), "ACQUISITION");
}

}  // namespace
}  // namespace dca::net
