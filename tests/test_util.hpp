// Shared fixtures/helpers for protocol and integration tests.
#pragma once

#include <cstdint>

#include "runner/scenario.hpp"
#include "runner/world.hpp"
#include "traffic/call.hpp"

namespace dca::testutil {

/// A small, fast default scenario: 6x6 grid, radius 2, cluster 7, 21
/// channels (3 primaries per cell, so borrowing kicks in quickly in tests).
inline runner::ScenarioConfig small_config() {
  runner::ScenarioConfig c;
  c.rows = 6;
  c.cols = 6;
  c.interference_radius = 2;
  c.n_channels = 21;
  c.cluster = 7;
  c.mean_holding_s = 60.0;
  c.latency = sim::milliseconds(5);
  c.seed = 42;
  c.duration = sim::minutes(10);
  c.warmup = 0;
  // With |PR| = 3 the paper-scale hysteresis (theta_high = 4) could never
  // be reached; scale the thresholds to the primary-set size.
  c.adaptive.theta_low = 1;
  c.adaptive.theta_high = 2;
  return c;
}

/// The paper-scale scenario used by the benches (8x8, 70 channels).
inline runner::ScenarioConfig paper_config() {
  runner::ScenarioConfig c;
  c.rows = 8;
  c.cols = 8;
  c.interference_radius = 2;
  c.n_channels = 70;
  c.cluster = 7;
  c.mean_holding_s = 180.0;
  c.latency = sim::milliseconds(5);
  c.seed = 1;
  c.duration = sim::minutes(30);
  c.warmup = sim::minutes(5);
  return c;
}

/// Submits one call with explicit holding time "by hand" (bypassing the
/// Poisson generator) — the scripted-scenario workhorse.
inline std::uint64_t offer_call(runner::World& world, cell::CellId cellId,
                                traffic::CallId call, sim::Duration holding) {
  traffic::CallSpec spec;
  spec.id = call;
  spec.cell = cellId;
  spec.arrival = world.simulator().now();
  spec.holding = holding;
  world.submit_call(spec);
  return call;
}

/// Central cell of a config's grid.
inline cell::CellId center_cell(const runner::ScenarioConfig& c) {
  return (c.rows / 2) * c.cols + c.cols / 2;
}

}  // namespace dca::testutil
