// Property-based tests: the paper's two theorems plus conservation
// invariants, swept over (scheme × load × seed × latency model) with
// parameterized gtest. Every run must satisfy:
//
//   P1 (Theorem 1)  no co-channel interference ever (checked continuously
//                   by the World at every acquisition);
//   P2 (Theorem 2)  every request terminates: the system drains to
//                   quiescence, no request left open;
//   P3 conservation  offered = acquired + blocked + starved, and all
//                   channels return to the pool at quiescence;
//   P4 sanity        delays are non-negative and bounded by the run, and
//                   FCA/adaptive local acquisitions are zero-delay.
#include <gtest/gtest.h>

#include <tuple>

#include "runner/experiment.hpp"
#include "test_util.hpp"

namespace dca {
namespace {

using runner::RunResult;
using runner::Scheme;

struct PropertyCase {
  Scheme scheme;
  double rho;
  std::uint64_t seed;
  bool jitter;
  bool mobility;
};

std::string case_name(const ::testing::TestParamInfo<PropertyCase>& info) {
  const auto& p = info.param;
  std::string s;
  switch (p.scheme) {
    case Scheme::kFca: s = "Fca"; break;
    case Scheme::kBasicSearch: s = "Search"; break;
    case Scheme::kBasicUpdate: s = "Update"; break;
    case Scheme::kAdvancedUpdate: s = "AdvUpdate"; break;
    case Scheme::kAdvancedSearch: s = "AdvSearch"; break;
    case Scheme::kAdaptive: s = "Adaptive"; break;
  }
  s += "_rho" + std::to_string(static_cast<int>(p.rho * 100));
  s += "_seed" + std::to_string(p.seed);
  if (p.jitter) s += "_jitter";
  if (p.mobility) s += "_mobility";
  return s;
}

class SchemeProperties : public ::testing::TestWithParam<PropertyCase> {
 protected:
  static runner::ScenarioConfig config_for(const PropertyCase& p) {
    auto cfg = testutil::small_config();
    cfg.duration = sim::minutes(5);
    cfg.warmup = 0;
    cfg.seed = p.seed;
    if (p.jitter) cfg.latency_jitter = sim::milliseconds(4);
    if (p.mobility) cfg.mean_dwell_s = 45.0;
    return cfg;
  }
};

TEST_P(SchemeProperties, TheoremsAndConservationHold) {
  const PropertyCase& p = GetParam();
  const auto cfg = config_for(p);
  const RunResult r = runner::run_uniform(cfg, p.scheme, p.rho);

  // P1 — Theorem 1.
  EXPECT_EQ(r.violations, 0u);

  // P2 — Theorem 2 (termination / deadlock freedom).
  EXPECT_TRUE(r.quiescent);

  // P3 — conservation.
  EXPECT_EQ(r.agg.offered, r.agg.acquired + r.agg.blocked + r.agg.starved);

  // P4 — delay sanity.
  EXPECT_GE(r.agg.delay_us.min(), 0.0);
  EXPECT_LE(r.agg.delay_us.max(), static_cast<double>(cfg.duration));
  if (p.scheme == Scheme::kFca) {
    EXPECT_DOUBLE_EQ(r.agg.delay_us.max(), 0.0);
    // FCA exchanges no protocol messages; with mobility on, the only
    // network traffic is HANDOFF call-state migration.
    EXPECT_EQ(r.total_messages,
              r.messages_by_kind[static_cast<std::size_t>(
                  net::MsgKind::kHandoff)]);
  }

  // Outcome-class sanity: only update-family schemes may starve; FCA and
  // adaptive never classify an acquisition as "search" unless they search.
  if (p.scheme == Scheme::kFca) {
    EXPECT_DOUBLE_EQ(r.agg.xi2 + r.agg.xi3, 0.0);
    EXPECT_EQ(r.agg.starved, 0u);
  }
  if (p.scheme == Scheme::kBasicSearch) {
    EXPECT_DOUBLE_EQ(r.agg.xi1 + r.agg.xi2, 0.0);  // everything via search
    EXPECT_EQ(r.agg.starved, 0u);
  }
  if (p.scheme == Scheme::kAdaptive) {
    EXPECT_EQ(r.agg.starved, 0u);
  }
}

// The full cartesian grid would be slow on one core; sample the corners
// plus the interesting middle: every scheme × {light, moderate, heavy} ×
// two seeds, with jitter/mobility variants on the moderate point.
std::vector<PropertyCase> property_cases() {
  std::vector<PropertyCase> cases;
  for (const Scheme s : runner::kAllSchemes) {
    for (const double rho : {0.15, 0.6, 0.95}) {
      for (const std::uint64_t seed : {1ull, 77ull}) {
        cases.push_back({s, rho, seed, false, false});
      }
    }
    cases.push_back({s, 0.6, 5ull, true, false});
    cases.push_back({s, 0.6, 5ull, false, true});
    cases.push_back({s, 0.6, 5ull, true, true});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeProperties,
                         ::testing::ValuesIn(property_cases()), case_name);

// ---------------------------------------------------------------------------
// Determinism property: identical (scheme, seed, rho) -> identical
// trajectory fingerprint, across every scheme.
// ---------------------------------------------------------------------------

class DeterminismProperty : public ::testing::TestWithParam<Scheme> {};

TEST_P(DeterminismProperty, ReplayIsExact) {
  auto cfg = testutil::small_config();
  cfg.duration = sim::minutes(3);
  const RunResult a = runner::run_uniform(cfg, GetParam(), 0.7);
  const RunResult b = runner::run_uniform(cfg, GetParam(), 0.7);
  EXPECT_EQ(a.executed_events, b.executed_events);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.agg.acquired, b.agg.acquired);
  EXPECT_EQ(a.agg.blocked, b.agg.blocked);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, DeterminismProperty,
                         ::testing::ValuesIn(std::vector<Scheme>(
                             std::begin(runner::kAllSchemes),
                             std::end(runner::kAllSchemes))),
                         [](const ::testing::TestParamInfo<Scheme>& info) {
                           return std::to_string(static_cast<int>(info.param));
                         });

}  // namespace
}  // namespace dca
