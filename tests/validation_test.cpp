// Validation against closed-form teletraffic theory: under FCA every cell
// is an independent M/M/c/c loss system, so the simulator's measured
// blocking and carried load must converge to the Erlang-B formula. This
// anchors the whole stack (arrival process, holding times, event engine,
// metrics) to ground truth.
#include <gtest/gtest.h>

#include "analysis/erlang.hpp"
#include "runner/experiment.hpp"
#include "test_util.hpp"

namespace dca {
namespace {

using runner::Scheme;

TEST(ErlangB, KnownValues) {
  // Canonical Erlang-B table entries.
  EXPECT_NEAR(analysis::erlang_b(1, 1.0), 0.5, 1e-12);
  EXPECT_NEAR(analysis::erlang_b(2, 1.0), 0.2, 1e-12);
  EXPECT_NEAR(analysis::erlang_b(10, 10.0), 0.21458, 1e-4);
  EXPECT_NEAR(analysis::erlang_b(10, 5.0), 0.018385, 1e-5);
}

TEST(ErlangB, EdgeCases) {
  EXPECT_DOUBLE_EQ(analysis::erlang_b(0, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(analysis::erlang_b(10, 0.0), 0.0);
  EXPECT_GT(analysis::erlang_b(5, 100.0), 0.9);
}

TEST(ErlangB, MonotoneInServersAndLoad) {
  for (int c = 1; c < 20; ++c) {
    EXPECT_LT(analysis::erlang_b(c + 1, 8.0), analysis::erlang_b(c, 8.0));
  }
  for (double a = 1.0; a < 20.0; a += 1.0) {
    EXPECT_LT(analysis::erlang_b(10, a), analysis::erlang_b(10, a + 1.0));
  }
}

TEST(ErlangB, CarriedPlusBlockedIsOffered) {
  const double a = 7.3;
  const int c = 9;
  EXPECT_NEAR(analysis::erlang_carried(c, a) + a * analysis::erlang_b(c, a), a,
              1e-12);
}

TEST(ErlangB, DimensioningInvertsBlocking) {
  const int c = analysis::erlang_servers_for(10.0, 0.02);
  EXPECT_LE(analysis::erlang_b(c, 10.0), 0.02);
  EXPECT_GT(analysis::erlang_b(c - 1, 10.0), 0.02);
}

// ---------------------------------------------------------------------------
// Simulator vs theory.
// ---------------------------------------------------------------------------

class FcaErlangValidation : public ::testing::TestWithParam<double> {};

TEST_P(FcaErlangValidation, FcaBlockingMatchesErlangB) {
  const double rho = GetParam();
  // Torus so all 196 cells are statistically identical M/M/10/10 systems;
  // long run for tight convergence.
  runner::ScenarioConfig cfg = testutil::paper_config();
  cfg.rows = 14;
  cfg.cols = 14;
  cfg.wrap = cell::Wrap::kToroidal;
  cfg.duration = sim::minutes(240);
  cfg.warmup = sim::minutes(10);
  const runner::RunResult r = runner::run_uniform(cfg, Scheme::kFca, rho);

  const double offered_erlangs = rho * 10.0;  // |PR| = 10 per cell
  const double theory = analysis::erlang_b(10, offered_erlangs);
  // ~40k+ offered calls; tolerance combines CLT noise and quantization.
  EXPECT_NEAR(r.agg.drop_rate(), theory, 0.012)
      << "rho=" << rho << " theory=" << theory;

  // Carried load per cell matches Erlang carried traffic.
  const double carried_per_cell = r.carried_erlangs / (14.0 * 14.0);
  EXPECT_NEAR(carried_per_cell, analysis::erlang_carried(10, offered_erlangs),
              0.25)
      << "rho=" << rho;
}

INSTANTIATE_TEST_SUITE_P(Loads, FcaErlangValidation,
                         ::testing::Values(0.4, 0.7, 1.0),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "rho" +
                                  std::to_string(static_cast<int>(info.param * 100));
                         });

TEST(Validation, DynamicSchemesBeatErlangBViaTrunkPooling) {
  // Dynamic allocation pools trunks across cells, so at moderate load its
  // blocking must be BELOW the per-cell Erlang-B bound of FCA.
  runner::ScenarioConfig cfg = testutil::paper_config();
  cfg.duration = sim::minutes(60);
  cfg.warmup = sim::minutes(5);
  const double rho = 0.85;
  const double fca_theory = analysis::erlang_b(10, 8.5);
  for (const Scheme s : {Scheme::kBasicSearch, Scheme::kAdaptive}) {
    const runner::RunResult r = runner::run_uniform(cfg, s, rho);
    EXPECT_LT(r.agg.drop_rate(), fca_theory) << runner::scheme_name(s);
  }
}

TEST(Validation, CarriedLoadNeverExceedsOffered) {
  runner::ScenarioConfig cfg = testutil::small_config();
  cfg.duration = sim::minutes(10);
  for (const Scheme s : runner::kAllSchemes) {
    const runner::RunResult r = runner::run_uniform(cfg, s, 0.7);
    const double offered = 0.7 * 3.0 * 36.0;  // rho * |PR| * cells
    EXPECT_LE(r.carried_erlangs, offered * 1.15) << runner::scheme_name(s);
    EXPECT_GT(r.carried_erlangs, 0.0) << runner::scheme_name(s);
  }
}

}  // namespace
}  // namespace dca
