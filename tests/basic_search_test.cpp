// Tests for the basic search scheme: full-region queries, timestamp
// deferral of concurrent searches, decision announcements, and the
// paper's cost accounting (2N handshake + announcement).
#include <gtest/gtest.h>

#include "proto/basic_search.hpp"
#include "runner/world.hpp"
#include "test_util.hpp"

namespace dca {
namespace {

using runner::Scheme;
using runner::World;
using testutil::offer_call;
using testutil::small_config;

TEST(BasicSearch, SoloAcquisitionTakes2TAndOneRound) {
  const auto cfg = small_config();
  World w(cfg, Scheme::kBasicSearch);
  const cell::CellId c = testutil::center_cell(cfg);
  const auto N = w.grid().interference(c).size();
  offer_call(w, c, 1, sim::minutes(1));
  w.simulator().run_until(sim::seconds(1));

  ASSERT_EQ(w.collector().records().size(), 1u);
  const auto& r = w.collector().records()[0];
  EXPECT_EQ(r.outcome, proto::Outcome::kAcquiredSearch);
  // Round trip: request out (T) + replies back (T).
  EXPECT_EQ(r.delay(), 2 * cfg.latency);
  // REQUEST + RESPONSE to/from everyone, plus the decision announcement
  // (the paper's Table 1 charges only the first two — see DESIGN.md).
  EXPECT_EQ(r.total_messages(), 3 * N);
  EXPECT_EQ(r.messages[static_cast<std::size_t>(net::MsgKind::kRequest)], N);
  EXPECT_EQ(r.messages[static_cast<std::size_t>(net::MsgKind::kResponse)], N);
  EXPECT_EQ(r.messages[static_cast<std::size_t>(net::MsgKind::kAcquisition)], N);
}

TEST(BasicSearch, NoReleaseMessagesAtCallEnd) {
  const auto cfg = small_config();
  World w(cfg, Scheme::kBasicSearch);
  offer_call(w, testutil::center_cell(cfg), 1, sim::seconds(5));
  w.simulator().run_to_quiescence();
  EXPECT_EQ(w.network().sent_of(net::MsgKind::kRelease), 0u);
  EXPECT_TRUE(w.quiescent());
}

TEST(BasicSearch, ConcurrentNeighborsPickDistinctChannels) {
  const auto cfg = small_config();
  World w(cfg, Scheme::kBasicSearch);
  const cell::CellId a = testutil::center_cell(cfg);
  const cell::CellId b = w.grid().neighbors(a)[0];
  // Both request at exactly the same instant: the timestamp protocol must
  // sequentialize them.
  offer_call(w, a, 1, sim::minutes(1));
  offer_call(w, b, 2, sim::minutes(1));
  w.simulator().run_until(sim::seconds(2));
  ASSERT_EQ(w.collector().records().size(), 2u);
  for (const auto& r : w.collector().records()) {
    EXPECT_EQ(r.outcome, proto::Outcome::kAcquiredSearch);
  }
  EXPECT_FALSE(w.node(a).in_use().intersects(w.node(b).in_use()));
  EXPECT_EQ(w.interference_violations(), 0u);
}

TEST(BasicSearch, YoungerConcurrentSearchIsDeferredAndSlower) {
  const auto cfg = small_config();
  World w(cfg, Scheme::kBasicSearch);
  const cell::CellId a = testutil::center_cell(cfg);
  const cell::CellId b = w.grid().neighbors(a)[0];
  offer_call(w, a, 1, sim::minutes(1));
  offer_call(w, b, 2, sim::minutes(1));
  w.simulator().run_until(sim::seconds(2));
  const auto& recs = w.collector().records();
  // One of the two finished in 2T; the other had its reply deferred and
  // needed strictly longer.
  const auto d0 = recs[0].delay(), d1 = recs[1].delay();
  EXPECT_EQ(std::min(d0, d1), 2 * cfg.latency);
  EXPECT_GT(std::max(d0, d1), 2 * cfg.latency);
}

TEST(BasicSearch, FindsChannelWheneverOneExists) {
  // Fill the center cell's region heavily, then check the next request
  // still succeeds as long as a free channel exists anywhere in Spectrum.
  const auto cfg = small_config();  // 21 channels
  World w(cfg, Scheme::kBasicSearch);
  const cell::CellId c = testutil::center_cell(cfg);
  for (int i = 0; i < 20; ++i) {
    offer_call(w, c, static_cast<traffic::CallId>(i + 1), sim::minutes(10));
    w.simulator().run_until(w.simulator().now() + sim::seconds(1));
  }
  int acquired = 0;
  for (const auto& r : w.collector().records())
    if (proto::is_acquired(r.outcome)) ++acquired;
  EXPECT_EQ(acquired, 20);
  EXPECT_EQ(w.node(c).in_use().size(), 20);
}

TEST(BasicSearch, BlocksWhenRegionExhausted) {
  const auto cfg = small_config();
  World w(cfg, Scheme::kBasicSearch);
  const cell::CellId c = testutil::center_cell(cfg);
  for (int i = 0; i < 21; ++i) {
    offer_call(w, c, static_cast<traffic::CallId>(i + 1), sim::minutes(10));
    w.simulator().run_until(w.simulator().now() + sim::seconds(1));
  }
  // All 21 channels used in the cell itself: the 22nd must fail.
  offer_call(w, c, 99, sim::minutes(10));
  w.simulator().run_until(w.simulator().now() + sim::seconds(1));
  EXPECT_EQ(w.collector().records().back().outcome,
            proto::Outcome::kBlockedNoChannel);
  // A failed search still announces, so no waiting counter leaks.
  w.simulator().run_to_quiescence();
  EXPECT_TRUE(w.quiescent());
}

TEST(BasicSearch, SearcherStateVisible) {
  const auto cfg = small_config();
  World w(cfg, Scheme::kBasicSearch);
  const cell::CellId c = testutil::center_cell(cfg);
  EXPECT_FALSE(w.node(c).is_searching());
  offer_call(w, c, 1, sim::minutes(1));
  EXPECT_TRUE(w.node(c).is_searching());
  w.simulator().run_until(sim::seconds(1));
  EXPECT_FALSE(w.node(c).is_searching());
}

TEST(BasicSearch, NonInterferingCellsMayShareAChannel) {
  const auto cfg = small_config();
  World w(cfg, Scheme::kBasicSearch);
  // Opposite corners of the 6x6 grid are far outside each other's region.
  const cell::CellId a = 0;
  const cell::CellId b = w.grid().n_cells() - 1;
  ASSERT_GT(w.grid().distance(a, b), cfg.interference_radius);
  // Drain each cell's full region view so both see all channels free; both
  // should be able to pick the same lowest channel id.
  offer_call(w, a, 1, sim::minutes(1));
  offer_call(w, b, 2, sim::minutes(1));
  w.simulator().run_until(sim::seconds(1));
  EXPECT_TRUE(w.node(a).in_use().intersects(w.node(b).in_use()))
      << "far-apart cells should reuse the same channel";
  EXPECT_EQ(w.interference_violations(), 0u);
}

}  // namespace
}  // namespace dca
