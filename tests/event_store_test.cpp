// Property tests for the slab/generation event store behind EventQueue:
// a randomized interleaving of schedule/cancel/pop is checked against a
// naive reference model (a vector ordered by stable (when, seq) sort),
// and a cancellation-stress run asserts the pool and heap stay O(live)
// under sustained cancel traffic (the lazy-deletion compaction bound).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/types.hpp"

namespace dca::sim {
namespace {

// Reference model: every schedule appends one record; pops pick the
// earliest live record by the same strict total order the queue promises,
// i.e. a stable sort by `when` (seq is append order, so min_element with
// strict < on (when, seq) is exactly "stable sort, take first").
struct ModelEvent {
  SimTime when = 0;
  std::uint64_t seq = 0;
  int token = 0;
  bool live = false;
};

class Model {
 public:
  std::size_t schedule(SimTime when, int token) {
    events_.push_back({when, next_seq_++, token, true});
    return events_.size() - 1;
  }

  void cancel(std::size_t idx) { events_[idx].live = false; }

  [[nodiscard]] bool empty() const {
    return std::none_of(events_.begin(), events_.end(),
                        [](const ModelEvent& e) { return e.live; });
  }

  [[nodiscard]] std::size_t live_count() const {
    return static_cast<std::size_t>(
        std::count_if(events_.begin(), events_.end(),
                      [](const ModelEvent& e) { return e.live; }));
  }

  [[nodiscard]] SimTime next_time() const {
    const ModelEvent* best = earliest();
    return best ? best->when : kTimeNever;
  }

  // Pops the earliest live event and returns its token.
  int pop() {
    ModelEvent* best = earliest();
    best->live = false;
    return best->token;
  }

 private:
  [[nodiscard]] ModelEvent* earliest() {
    ModelEvent* best = nullptr;
    for (ModelEvent& e : events_) {
      if (!e.live) continue;
      if (!best || e.when < best->when ||
          (e.when == best->when && e.seq < best->seq)) {
        best = &e;
      }
    }
    return best;
  }
  [[nodiscard]] const ModelEvent* earliest() const {
    return const_cast<Model*>(this)->earliest();
  }

  std::vector<ModelEvent> events_;
  std::uint64_t next_seq_ = 0;
};

TEST(EventStoreProperty, RandomInterleavingMatchesReferenceModel) {
  std::mt19937_64 rng(0xDCA5EEDull);
  std::uniform_int_distribution<SimTime> when_dist(0, 500);
  std::uniform_int_distribution<int> op_dist(0, 9);

  EventQueue q;
  Model model;
  std::vector<int> fired_q;
  std::vector<int> fired_model;
  // Live handles, paired with the model index they correspond to.
  std::vector<std::pair<EventId, std::size_t>> handles;
  int next_token = 0;

  for (int step = 0; step < 20000; ++step) {
    const int op = op_dist(rng);
    if (op < 5) {  // schedule
      const SimTime when = when_dist(rng);
      const int token = next_token++;
      const EventId id =
          q.schedule(when, [token, &fired_q] { fired_q.push_back(token); });
      handles.emplace_back(id, model.schedule(when, token));
    } else if (op < 7 && !handles.empty()) {  // cancel a random live event
      std::uniform_int_distribution<std::size_t> pick(0, handles.size() - 1);
      const std::size_t i = pick(rng);
      const EventId cancelled = handles[i].first;
      q.cancel(cancelled);
      model.cancel(handles[i].second);
      handles.erase(handles.begin() + static_cast<std::ptrdiff_t>(i));
      // Double-cancel must be a harmless no-op.
      if (step % 3 == 0) q.cancel(cancelled);
    } else if (!q.empty()) {  // pop
      ASSERT_EQ(q.next_time(), model.next_time());
      auto fired = q.pop();
      fired.action();
      fired_model.push_back(model.pop());
    }
    ASSERT_EQ(q.size(), model.live_count());
    ASSERT_EQ(q.empty(), model.empty());
  }

  // Drain: every remaining live event fires in model order.
  while (!q.empty()) {
    ASSERT_EQ(q.next_time(), model.next_time());
    q.pop().action();
    fired_model.push_back(model.pop());
  }
  EXPECT_TRUE(model.empty());
  EXPECT_EQ(fired_q, fired_model);
}

TEST(EventStoreProperty, HandlesFromFiredEventsAreInert) {
  EventQueue q;
  int fired = 0;
  const EventId a = q.schedule(10, [&] { ++fired; });
  const EventId b = q.schedule(20, [&] { ++fired; });
  q.pop().action();  // fires a
  q.cancel(a);       // stale handle: must not disturb b
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.next_time(), 20);
  q.cancel(b);
  q.cancel(b);  // double cancel
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(fired, 1);
}

TEST(EventStoreStress, PoolAndHeapStayBoundedUnderCancelChurn) {
  EventQueue q;
  std::mt19937_64 rng(99);
  std::uniform_int_distribution<SimTime> when_dist(0, 1'000'000);

  constexpr std::size_t kWaves = 2000;
  constexpr std::size_t kPerWave = 64;
  std::size_t max_pool = 0;
  std::size_t max_heap = 0;

  std::vector<EventId> ids;
  for (std::size_t wave = 0; wave < kWaves; ++wave) {
    ids.clear();
    for (std::size_t i = 0; i < kPerWave; ++i) {
      ids.push_back(q.schedule(when_dist(rng), [] {}));
    }
    // Cancel every event of the wave: 128k schedules, 128k cancels total.
    for (const EventId id : ids) q.cancel(id);
    max_pool = std::max(max_pool, q.pool_capacity());
    max_heap = std::max(max_heap, q.heap_entries());
  }
  EXPECT_TRUE(q.empty());

  // The pool recycles slots through its free list: capacity is bounded by
  // the peak live count rounded up to a slab chunk, not by the 128k events
  // that ever existed.
  EXPECT_LE(max_pool, 512u);
  // Lazy deletion keeps stale heap entries bounded by live + slack, so the
  // heap never accumulates the full cancel history either.
  EXPECT_LE(max_heap, 2 * kPerWave + detail::kHeapCompactSlack + 1);

  // After churn the queue still works: order and callbacks intact.
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace dca::sim
