// Tests for the advanced update scheme (Dong & Lai TR-48): zero-latency
// primary acquisitions, borrow requests confined to the channel's primary
// owners NP(c, r), promise arbitration, and the conditional-grant
// unfairness the paper's Fig. 11 criticizes.
#include <gtest/gtest.h>

#include <memory>

#include "net/latency.hpp"
#include "proto/advanced_update.hpp"
#include "runner/world.hpp"
#include "test_util.hpp"

namespace dca {
namespace {

using runner::Scheme;
using runner::World;
using testutil::offer_call;
using testutil::small_config;

TEST(AdvancedUpdate, PrimaryAcquisitionIsInstantWithBroadcastOnly) {
  const auto cfg = small_config();
  World w(cfg, Scheme::kAdvancedUpdate);
  const cell::CellId c = testutil::center_cell(cfg);
  const auto N = w.grid().interference(c).size();
  offer_call(w, c, 1, sim::seconds(10));
  ASSERT_EQ(w.collector().records().size(), 1u);
  const auto& r = w.collector().records()[0];
  EXPECT_EQ(r.outcome, proto::Outcome::kAcquiredLocal);
  EXPECT_EQ(r.delay(), 0);
  EXPECT_EQ(r.total_messages(), N);  // the ACQUISITION broadcast
  w.simulator().run_to_quiescence();
  // Plus the RELEASE broadcast at call end: the paper's 2N term.
  EXPECT_EQ(w.collector().records()[0].total_messages(), 2 * N);
}

TEST(AdvancedUpdate, BorrowAsksOnlyPrimariesOfTheChannel) {
  const auto cfg = small_config();  // 3 primaries per cell
  World w(cfg, Scheme::kAdvancedUpdate);
  const cell::CellId c = testutil::center_cell(cfg);
  // Exhaust c's own primaries, then one more call forces a borrow.
  for (int i = 0; i < 3; ++i) offer_call(w, c, static_cast<traffic::CallId>(i + 1),
                                         sim::minutes(5));
  w.simulator().run_until(sim::seconds(1));
  const auto before_requests = w.network().sent_of(net::MsgKind::kRequest);
  offer_call(w, c, 10, sim::minutes(5));
  w.simulator().run_until(w.simulator().now() + sim::seconds(1));
  const auto requests =
      w.network().sent_of(net::MsgKind::kRequest) - before_requests;
  const auto& r = w.collector().records().back();
  EXPECT_EQ(r.outcome, proto::Outcome::kAcquiredUpdate);
  // n_p primaries of a channel within radius 2 is small (2-3), far below
  // the 18-cell region the basic schemes broadcast to.
  EXPECT_GE(requests, 1u);
  EXPECT_LE(requests, 3u);
  EXPECT_EQ(r.delay(), 2 * cfg.latency);
}

TEST(AdvancedUpdate, PrimaryOwnerRejectsItsBusyChannel) {
  const auto cfg = small_config();
  World w(cfg, Scheme::kAdvancedUpdate);
  const cell::CellId c = testutil::center_cell(cfg);
  // Saturate the center's own primaries AND every neighbour primary it
  // could borrow: we occupy the whole region from the center itself.
  for (int i = 0; i < 3; ++i) offer_call(w, c, static_cast<traffic::CallId>(i + 1),
                                         sim::minutes(30));
  w.simulator().run_until(sim::seconds(1));
  // Fill the interference neighbours' primaries too, so their owners say no.
  traffic::CallId id = 100;
  for (const cell::CellId j : w.grid().interference(c)) {
    for (int i = 0; i < 3; ++i) {
      offer_call(w, j, id++, sim::minutes(30));
      w.simulator().run_until(w.simulator().now() + sim::milliseconds(200));
    }
  }
  w.simulator().run_until(w.simulator().now() + sim::seconds(2));
  EXPECT_EQ(w.interference_violations(), 0u);
  // Another request at the center now has no free channel anywhere nearby.
  offer_call(w, c, 999, sim::minutes(5));
  w.simulator().run_until(w.simulator().now() + sim::seconds(5));
  const auto& last = w.collector().records().back();
  EXPECT_FALSE(proto::is_acquired(last.outcome));
}

TEST(AdvancedUpdate, ConcurrentBorrowersNeverCollide) {
  const auto cfg = small_config();
  World w(cfg, Scheme::kAdvancedUpdate);
  const cell::CellId a = testutil::center_cell(cfg);
  const cell::CellId b = w.grid().neighbors(a)[0];
  // Exhaust both cells' primaries.
  traffic::CallId id = 1;
  for (int i = 0; i < 3; ++i) {
    offer_call(w, a, id++, sim::minutes(30));
    offer_call(w, b, id++, sim::minutes(30));
  }
  w.simulator().run_until(sim::seconds(1));
  // Both borrow simultaneously, repeatedly.
  for (int round = 0; round < 5; ++round) {
    offer_call(w, a, id++, sim::minutes(30));
    offer_call(w, b, id++, sim::minutes(30));
    w.simulator().run_until(w.simulator().now() + sim::seconds(2));
  }
  EXPECT_EQ(w.interference_violations(), 0u);
  EXPECT_FALSE(w.node(a).in_use().intersects(w.node(b).in_use()));
}

// The Fig. 11 scenario: an older request loses to a younger one because the
// younger one's messages overtake it and the primaries promise the channel
// away, answering the older request with a conditional grant.
TEST(AdvancedUpdate, Fig11TimestampInversionUnfairness) {
  auto cfg = small_config();
  // Custom latency: make c1's messages slow and c2's fast so c2's request
  // overtakes c1's despite c1 requesting first (lower timestamp).
  World probe(cfg, Scheme::kAdvancedUpdate);  // only to read the topology
  const cell::CellId c1 = testutil::center_cell(cfg);
  // c2: an interfering cell of the same colour? No — any cell in IN_c1
  // with the same *borrow target* works; pick a distance-2 cell so both
  // share primaries for some channel colour.
  cell::CellId c2 = cell::kNoCell;
  for (const cell::CellId j : probe.grid().interference(c1)) {
    if (probe.grid().distance(c1, j) == 2 &&
        probe.plan().color_of(j) != probe.plan().color_of(c1)) {
      c2 = j;
      break;
    }
  }
  ASSERT_NE(c2, cell::kNoCell);

  auto latency = std::make_unique<net::MatrixLatency>(sim::milliseconds(5));
  // Everything c1 sends crawls; everything c2 sends sprints.
  for (cell::CellId j = 0; j < probe.grid().n_cells(); ++j) {
    if (j != c1) latency->set(c1, j, sim::milliseconds(40));
    if (j != c2) latency->set(c2, j, sim::milliseconds(1));
  }
  World w(cfg, Scheme::kAdvancedUpdate, std::move(latency));

  // Exhaust both requesters' primaries so their next request borrows.
  traffic::CallId id = 1;
  for (int i = 0; i < 3; ++i) {
    offer_call(w, c1, id++, sim::minutes(30));
    offer_call(w, c2, id++, sim::minutes(30));
  }
  w.simulator().run_until(sim::seconds(1));

  // Saturate all but one borrowable colour from c1's perspective... the
  // simplest deterministic trigger: both borrow at nearly the same time,
  // c1 strictly first (lower Lamport timestamp), c2's request arriving
  // first at the shared primaries.
  offer_call(w, c1, 100, sim::minutes(30));
  w.simulator().schedule_in(sim::milliseconds(2), [&w, c2] {
    testutil::offer_call(w, c2, 200, sim::minutes(30));
  });
  w.simulator().run_until(w.simulator().now() + sim::seconds(30));

  EXPECT_EQ(w.interference_violations(), 0u);
  // Count conditional-grant failures across all nodes: the unfairness
  // signature. (Both may still eventually succeed via retries on other
  // channels; the *signature* is that an older request was turned away at
  // least once while a younger one took the channel.)
  std::uint64_t conditional = 0;
  for (cell::CellId c = 0; c < w.grid().n_cells(); ++c) {
    conditional +=
        dynamic_cast<const proto::AdvancedUpdateNode&>(w.node(c)).conditional_failures();
  }
  // The scripted overtaking makes a conditional failure likely but the
  // exact channel picks are randomized; assert the mechanism rather than
  // the single run: either a conditional failure occurred, or the two
  // requests never picked the same channel (in which case both succeeded).
  const auto& recs = w.collector().records();
  bool both_succeeded = true;
  for (const auto& r : recs) {
    if ((r.call == 100 || r.call == 200) && !proto::is_acquired(r.outcome))
      both_succeeded = false;
  }
  EXPECT_TRUE(conditional > 0 || both_succeeded);
}

TEST(AdvancedUpdate, BoundaryCellsOnlyBorrowArbitrationSafeColors) {
  const auto cfg = small_config();
  World w(cfg, Scheme::kAdvancedUpdate);
  // Every cell: for each colour it may borrow, the arbiters must cover all
  // potential conflictors (the static safety property from DESIGN.md).
  for (cell::CellId c = 0; c < w.grid().n_cells(); ++c) {
    const auto& n = dynamic_cast<const proto::AdvancedUpdateNode&>(w.node(c));
    for (int k = 0; k < w.plan().n_colors(); ++k) {
      if (!n.color_borrowable(k)) continue;
      for (const cell::CellId other : w.grid().interference(c)) {
        if (w.plan().color_of(other) == k) continue;
        bool covered = false;
        for (const cell::CellId p : w.grid().interference(c)) {
          if (w.plan().color_of(p) == k && w.grid().interferes(p, other)) {
            covered = true;
            break;
          }
        }
        EXPECT_TRUE(covered) << "cell " << c << " colour " << k;
      }
    }
  }
}

TEST(AdvancedUpdate, InteriorCellsCanBorrowEveryForeignColor) {
  // On a large grid the deep interior must have all 6 foreign colours
  // borrowable (the cluster-7 covering property).
  auto cfg = small_config();
  cfg.rows = 12;
  cfg.cols = 12;
  World w(cfg, Scheme::kAdvancedUpdate);
  const cell::CellId c = 5 * 12 + 5;
  const auto& n = dynamic_cast<const proto::AdvancedUpdateNode&>(w.node(c));
  int borrowable = 0;
  for (int k = 0; k < 7; ++k)
    if (n.color_borrowable(k)) ++borrowable;
  EXPECT_EQ(borrowable, 6);
}

}  // namespace
}  // namespace dca
