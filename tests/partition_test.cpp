// Unit tests for cell -> shard partitions: every map is an exact cover of
// the grid, deterministic in (grid, n_shards), the block partition beats
// striping on cross-shard interference pairs, and — the property the
// engine's correctness rests on — simulation results are bit-identical
// whichever partition routes the cells.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cell/grid.hpp"
#include "cell/partition.hpp"
#include "runner/experiment.hpp"

namespace dca {
namespace {

using cell::HexGrid;
using cell::Partition;

void expect_exact_cover(const std::vector<int>& part, int n_cells,
                        int n_shards) {
  ASSERT_EQ(part.size(), static_cast<std::size_t>(n_cells));
  std::vector<int> count(static_cast<std::size_t>(n_shards), 0);
  for (const int s : part) {
    ASSERT_GE(s, 0);
    ASSERT_LT(s, n_shards);
    ++count[static_cast<std::size_t>(s)];
  }
  // Exact cover: every cell in exactly one shard, no shard empty.
  for (int s = 0; s < n_shards; ++s) {
    EXPECT_GT(count[static_cast<std::size_t>(s)], 0) << "empty shard " << s;
  }
}

TEST(Partition, BothKindsAreExactCovers) {
  const HexGrid grid(12, 12, 2);
  for (const int n_shards : {1, 2, 3, 4, 5, 7, 8, 16}) {
    SCOPED_TRACE(n_shards);
    expect_exact_cover(cell::striped_partition(grid.n_cells(), n_shards),
                       grid.n_cells(), n_shards);
    expect_exact_cover(cell::block_partition(grid, n_shards), grid.n_cells(),
                       n_shards);
  }
}

TEST(Partition, DeterministicForSameInputs) {
  const HexGrid a(12, 12, 2);
  const HexGrid b(12, 12, 2);
  for (const int n_shards : {2, 4, 8}) {
    SCOPED_TRACE(n_shards);
    EXPECT_EQ(cell::block_partition(a, n_shards),
              cell::block_partition(b, n_shards));
    EXPECT_EQ(cell::make_partition(a, n_shards, Partition::kStriped),
              cell::striped_partition(a.n_cells(), n_shards));
    EXPECT_EQ(cell::make_partition(a, n_shards, Partition::kBlocks),
              cell::block_partition(a, n_shards));
  }
}

TEST(Partition, BlocksBeatStripingOnCrossShardPairs) {
  const HexGrid grid(12, 12, 2);
  for (const int n_shards : {2, 4, 8}) {
    SCOPED_TRACE(n_shards);
    const auto striped = cell::striped_partition(grid.n_cells(), n_shards);
    const auto blocks = cell::block_partition(grid, n_shards);
    const std::size_t xs_striped =
        cell::cross_shard_interference_pairs(grid, striped);
    const std::size_t xs_blocks =
        cell::cross_shard_interference_pairs(grid, blocks);
    EXPECT_LT(xs_blocks, xs_striped)
        << "blocks=" << xs_blocks << " striped=" << xs_striped;
  }
}

TEST(Partition, SingleShardHasNoCrossShardPairs) {
  const HexGrid grid(6, 6, 2);
  const auto one = cell::block_partition(grid, 1);
  EXPECT_EQ(cell::cross_shard_interference_pairs(grid, one), 0u);
}

// The sharded kernel orders events by the canonical EventKey, which never
// mentions shards — so the cell -> shard map can only change engine cost
// (cross_shard_messages), never results. This is the load-bearing
// invariant that let kBlocks become the default without touching goldens.
TEST(Partition, StripedAndBlocksProduceBitIdenticalResults) {
  runner::ScenarioConfig cfg;
  cfg.rows = 6;
  cfg.cols = 6;
  cfg.n_channels = 35;
  cfg.duration = sim::minutes(1);
  cfg.warmup = sim::seconds(10);
  cfg.seed = 23;
  cfg.shards = 4;

  for (const auto scheme : {runner::Scheme::kAdaptive,
                            runner::Scheme::kBasicSearch}) {
    SCOPED_TRACE(runner::scheme_name(scheme));
    runner::ScenarioConfig striped = cfg;
    striped.partition = Partition::kStriped;
    runner::ScenarioConfig blocks = cfg;
    blocks.partition = Partition::kBlocks;

    const auto rs = runner::run_uniform(striped, scheme, 0.8);
    const auto rb = runner::run_uniform(blocks, scheme, 0.8);

    EXPECT_EQ(rs.agg.offered, rb.agg.offered);
    EXPECT_EQ(rs.agg.acquired, rb.agg.acquired);
    EXPECT_EQ(rs.agg.blocked, rb.agg.blocked);
    EXPECT_EQ(rs.total_messages, rb.total_messages);
    EXPECT_EQ(rs.executed_events, rb.executed_events);
    EXPECT_EQ(rs.carried_erlangs, rb.carried_erlangs);  // bit-exact
    EXPECT_EQ(rs.agg.delay_in_T.mean(), rb.agg.delay_in_T.mean());
    EXPECT_EQ(rs.messages_by_kind, rb.messages_by_kind);
    EXPECT_EQ(rs.violations, rb.violations);
    EXPECT_EQ(rs.quiescent, rb.quiescent);
    // What DOES change is the engine-cost metric.
    EXPECT_LT(rb.cross_shard_messages, rs.cross_shard_messages);
  }
}

}  // namespace
}  // namespace dca
