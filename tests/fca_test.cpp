// Tests for the static (fixed channel allocation) baseline: zero messages,
// zero latency, primary-set-only service, blocking at exhaustion.
#include <gtest/gtest.h>

#include "proto/fca.hpp"
#include "runner/world.hpp"
#include "test_util.hpp"

namespace dca {
namespace {

using runner::Scheme;
using runner::World;
using testutil::offer_call;
using testutil::small_config;

TEST(Fca, AcquiresInstantlyWithZeroMessages) {
  World w(small_config(), Scheme::kFca);
  offer_call(w, testutil::center_cell(small_config()), 1, sim::seconds(30));
  // Decision must have been synchronous: record closed at t = 0.
  ASSERT_EQ(w.collector().records().size(), 1u);
  const auto& r = w.collector().records()[0];
  EXPECT_EQ(r.outcome, proto::Outcome::kAcquiredLocal);
  EXPECT_EQ(r.delay(), 0);
  EXPECT_EQ(r.total_messages(), 0u);
  EXPECT_EQ(w.network().total_sent(), 0u);
}

TEST(Fca, ServesExactlyPrimarySetSize) {
  const auto cfg = small_config();  // 21 channels / 7 colours = 3 primaries
  World w(cfg, Scheme::kFca);
  const cell::CellId c = testutil::center_cell(cfg);
  for (int i = 0; i < 5; ++i) offer_call(w, c, 100 + i, sim::minutes(5));
  int ok = 0, blocked = 0;
  for (const auto& r : w.collector().records()) {
    (proto::is_acquired(r.outcome) ? ok : blocked)++;
  }
  EXPECT_EQ(ok, 3);
  EXPECT_EQ(blocked, 2);
}

TEST(Fca, BlockedEvenWhenNeighborhoodIdle) {
  // The paper's core criticism of static allocation: a loaded cell drops
  // calls although every neighbour has idle channels.
  const auto cfg = small_config();
  World w(cfg, Scheme::kFca);
  const cell::CellId c = testutil::center_cell(cfg);
  for (int i = 0; i < 4; ++i) offer_call(w, c, i + 1, sim::minutes(5));
  const auto& recs = w.collector().records();
  ASSERT_EQ(recs.size(), 4u);
  EXPECT_EQ(recs[3].outcome, proto::Outcome::kBlockedNoChannel);
  // Meanwhile the rest of the system is completely idle.
  for (cell::CellId j : w.grid().interference(c)) {
    EXPECT_TRUE(w.node(j).in_use().empty());
  }
}

TEST(Fca, ReleaseMakesChannelReusable) {
  const auto cfg = small_config();
  World w(cfg, Scheme::kFca);
  const cell::CellId c = 0;
  offer_call(w, c, 1, sim::seconds(10));
  offer_call(w, c, 2, sim::seconds(10));
  offer_call(w, c, 3, sim::seconds(10));
  EXPECT_EQ(w.node(c).in_use().size(), 3);
  w.simulator().run_to_quiescence();  // calls end, channels released
  EXPECT_TRUE(w.node(c).in_use().empty());
  offer_call(w, c, 4, sim::seconds(10));
  EXPECT_EQ(w.collector().records().back().outcome, proto::Outcome::kAcquiredLocal);
}

TEST(Fca, NeighborsReusePatternNeverInterferes) {
  // Saturate every cell; the reuse pattern must keep all acquisitions
  // interference-free by construction.
  const auto cfg = small_config();
  World w(cfg, Scheme::kFca);
  traffic::CallId id = 1;
  for (cell::CellId c = 0; c < w.grid().n_cells(); ++c) {
    for (int i = 0; i < 3; ++i) offer_call(w, c, id++, sim::minutes(1));
  }
  EXPECT_EQ(w.interference_violations(), 0u);
  for (cell::CellId c = 0; c < w.grid().n_cells(); ++c) {
    EXPECT_EQ(w.node(c).in_use().size(), 3);
  }
  w.simulator().run_to_quiescence();
  EXPECT_TRUE(w.quiescent());
}

TEST(Fca, UsesOnlyOwnPrimaries) {
  const auto cfg = small_config();
  World w(cfg, Scheme::kFca);
  const cell::CellId c = 7;
  for (int i = 0; i < 3; ++i) offer_call(w, c, i + 1, sim::minutes(1));
  const auto used = w.node(c).in_use();
  EXPECT_TRUE((used - w.plan().primary(c)).empty());
}

}  // namespace
}  // namespace dca
