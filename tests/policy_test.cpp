// The allocation-policy seam: spec parsing, the static registry, the two
// built-in proof policies, the zero-alloc nth-set-bit channel pick, and
// scenario-validation rejection of unresolvable specs.
#include <gtest/gtest.h>

#include <string>

#include "cell/spectrum.hpp"
#include "proto/policy.hpp"
#include "runner/config_file.hpp"
#include "runner/scenario.hpp"
#include "sim/random.hpp"

namespace dca {
namespace {

using proto::AllocationPolicy;
using proto::PolicyRegistry;
using proto::PolicySpec;
using proto::RequestClass;

// -- ChannelSet::nth (the kRandom hot-path select) --------------------------

TEST(ChannelSetNth, MatchesToVectorOnEveryIndex) {
  cell::ChannelSet s(200);
  for (const cell::ChannelId c : {0, 1, 7, 63, 64, 65, 127, 128, 140, 199})
    s.insert(c);
  const auto members = s.to_vector();
  ASSERT_EQ(static_cast<int>(members.size()), s.size());
  for (std::size_t k = 0; k < members.size(); ++k)
    EXPECT_EQ(s.nth(static_cast<int>(k)), members[k]) << "k=" << k;
}

TEST(ChannelSetNth, OutOfRangeIsNoChannel) {
  cell::ChannelSet s(64);
  EXPECT_EQ(s.nth(0), cell::kNoChannel);  // empty set
  s.insert(5);
  s.insert(40);
  EXPECT_EQ(s.nth(2), cell::kNoChannel);
  EXPECT_EQ(s.nth(-1), cell::kNoChannel);
  EXPECT_EQ(s.nth(1000), cell::kNoChannel);
}

TEST(ChannelSetNth, DenseSetFullSweep) {
  const cell::ChannelSet s = cell::ChannelSet::all(130);
  for (int k = 0; k < 130; ++k) EXPECT_EQ(s.nth(k), k);
  EXPECT_EQ(s.nth(130), cell::kNoChannel);
}

// The refactored kRandom pick must draw pick_index(size()) — the exact
// draw the old to_vector()[pick_index(size())] path made — so fixed-seed
// trajectories are unchanged.
TEST(ChannelSetNth, RandomPickMatchesMaterializedEquivalent) {
  cell::ChannelSet s(300);
  for (cell::ChannelId c = 2; c < 300; c += 7) s.insert(c);
  auto rng_a = sim::RngStream::derive(99, 1);
  auto rng_b = sim::RngStream::derive(99, 1);
  cell::ChannelId cursor = cell::kNoChannel;
  for (int i = 0; i < 500; ++i) {
    const cell::ChannelId picked = proto::pick_channel(
        s, proto::ChannelPick::kRandom, rng_a, cursor);
    const auto members = s.to_vector();
    EXPECT_EQ(picked, members[rng_b.pick_index(members.size())]);
  }
}

// -- PolicySpec parsing ------------------------------------------------------

TEST(PolicySpec, ParsesBareName) {
  PolicySpec spec;
  std::string err;
  ASSERT_TRUE(proto::parse_policy_spec("default", spec, err)) << err;
  EXPECT_EQ(spec.name, "default");
  EXPECT_TRUE(spec.params.empty());
  EXPECT_TRUE(spec.is_default());
}

TEST(PolicySpec, ParsesParameters) {
  PolicySpec spec;
  std::string err;
  ASSERT_TRUE(proto::parse_policy_spec(
      " tuned-threshold ( theta_low = 3 , theta_high = 6.5 ) ", spec, err))
      << err;
  EXPECT_EQ(spec.name, "tuned-threshold");
  ASSERT_EQ(spec.params.size(), 2u);
  EXPECT_EQ(spec.get("theta_low", -1), 3.0);
  EXPECT_EQ(spec.get("theta_high", -1), 6.5);
  EXPECT_EQ(spec.get("absent", -1), -1.0);
  EXPECT_TRUE(spec.has("theta_low"));
  EXPECT_FALSE(spec.has("absent"));
  EXPECT_FALSE(spec.is_default());
}

TEST(PolicySpec, ToStringRoundTrips) {
  for (const char* text :
       {"default", "handoff-priority(guard=2)",
        "tuned-threshold(theta_low=3,theta_high=6.5)"}) {
    PolicySpec spec;
    std::string err;
    ASSERT_TRUE(proto::parse_policy_spec(text, spec, err)) << err;
    EXPECT_EQ(spec.to_string(), text);
    PolicySpec back;
    ASSERT_TRUE(proto::parse_policy_spec(spec.to_string(), back, err)) << err;
    EXPECT_EQ(back.name, spec.name);
    EXPECT_EQ(back.params, spec.params);
  }
}

TEST(PolicySpec, RejectsSyntaxErrors) {
  PolicySpec spec;
  std::string err;
  EXPECT_FALSE(proto::parse_policy_spec("", spec, err));
  EXPECT_FALSE(proto::parse_policy_spec("   ", spec, err));
  EXPECT_FALSE(proto::parse_policy_spec("p(k=1", spec, err));   // missing )
  EXPECT_FALSE(proto::parse_policy_spec("(k=1)", spec, err));   // no name
  EXPECT_FALSE(proto::parse_policy_spec("p(k)", spec, err));    // no =
  EXPECT_FALSE(proto::parse_policy_spec("p(k=x)", spec, err));  // not a number
  EXPECT_FALSE(proto::parse_policy_spec("p(k=1,)", spec, err)); // empty param
  EXPECT_FALSE(proto::parse_policy_spec("p(k=1,k=2)", spec, err));  // duplicate
  EXPECT_FALSE(err.empty());
}

// -- registry ---------------------------------------------------------------

TEST(PolicyRegistry, BuiltinsAreRegistered) {
  auto& reg = PolicyRegistry::instance();
  EXPECT_TRUE(reg.known("default"));
  EXPECT_TRUE(reg.known("tuned-threshold"));
  EXPECT_TRUE(reg.known("handoff-priority"));
  EXPECT_FALSE(reg.known("no-such-policy"));
  const auto names = reg.names();
  ASSERT_GE(names.size(), 3u);
  EXPECT_EQ(names.front(), "default");  // registration order, default first
  EXPECT_FALSE(reg.summary("default").empty());
  EXPECT_EQ(reg.summary("no-such-policy"), "");
}

TEST(PolicyRegistry, DuplicateRegistrationIsRejected) {
  auto& reg = PolicyRegistry::instance();
  EXPECT_FALSE(reg.add("default", "imposter", nullptr));
}

TEST(PolicyRegistry, UnknownNameFailsWithKnownList) {
  std::string err;
  PolicySpec spec;
  spec.name = "no-such-policy";
  EXPECT_EQ(PolicyRegistry::instance().make(spec, err), nullptr);
  EXPECT_NE(err.find("unknown policy"), std::string::npos) << err;
  EXPECT_NE(err.find("tuned-threshold"), std::string::npos) << err;
}

TEST(PolicyRegistry, FactoriesValidateParameters) {
  auto& reg = PolicyRegistry::instance();
  std::string err;
  PolicySpec spec;

  spec.name = "default";
  spec.params = {{"bogus", 1.0}};
  EXPECT_EQ(reg.make(spec, err), nullptr);

  spec.name = "tuned-threshold";
  spec.params = {{"bogus", 1.0}};
  EXPECT_EQ(reg.make(spec, err), nullptr) << "unknown parameter";
  spec.params = {{"theta_low", 0.0}};
  EXPECT_EQ(reg.make(spec, err), nullptr) << "theta_low < 1";
  spec.params = {{"theta_low", 4.0}, {"theta_high", 4.0}};
  EXPECT_EQ(reg.make(spec, err), nullptr) << "inverted hysteresis";

  spec.name = "handoff-priority";
  spec.params = {{"guard", -1.0}};
  EXPECT_EQ(reg.make(spec, err), nullptr) << "negative guard";
  spec.params = {{"margin", 2.0}};
  EXPECT_EQ(reg.make(spec, err), nullptr) << "unknown parameter";
}

// -- the built-in policies' hook behaviour ----------------------------------

TEST(Policies, DefaultIsFullPassThrough) {
  const AllocationPolicy& p = AllocationPolicy::fallback();
  EXPECT_EQ(p.name(), "default");
  EXPECT_FALSE(p.gates_admission());
  EXPECT_TRUE(p.admit(RequestClass::kNewCall, 0));
  const auto th = p.thresholds({2, 4});
  EXPECT_EQ(th.low, 2);
  EXPECT_EQ(th.high, 4);

  // pick() must dispatch to the free pick_channel with identical draws.
  cell::ChannelSet s(64);
  s.insert(3);
  s.insert(17);
  s.insert(40);
  auto rng_a = sim::RngStream::derive(5, 5);
  auto rng_b = sim::RngStream::derive(5, 5);
  cell::ChannelId cur_a = cell::kNoChannel, cur_b = cell::kNoChannel;
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(p.pick(s, proto::ChannelPick::kRandom, rng_a, cur_a),
              proto::pick_channel(s, proto::ChannelPick::kRandom, rng_b, cur_b));
  }
}

TEST(Policies, TunedThresholdOverridesHysteresisOnly) {
  std::string err;
  PolicySpec spec;
  ASSERT_TRUE(proto::parse_policy_spec(
      "tuned-threshold(theta_low=3,theta_high=6)", spec, err));
  const auto p = PolicyRegistry::instance().make(spec, err);
  ASSERT_NE(p, nullptr) << err;
  EXPECT_EQ(p->name(), "tuned-threshold");
  EXPECT_EQ(p->describe(), "tuned-threshold(theta_low=3,theta_high=6)");
  const auto th = p->thresholds({2, 4});
  EXPECT_EQ(th.low, 3);
  EXPECT_EQ(th.high, 6);
  EXPECT_FALSE(p->gates_admission());
}

TEST(Policies, TunedThresholdHasDocumentedDefaults) {
  std::string err;
  PolicySpec spec;
  spec.name = "tuned-threshold";
  const auto p = PolicyRegistry::instance().make(spec, err);
  ASSERT_NE(p, nullptr) << err;
  const auto th = p->thresholds({2, 4});
  EXPECT_EQ(th.low, 3);
  EXPECT_EQ(th.high, 6);
}

TEST(Policies, HandoffPriorityGuardsNewCallsOnly) {
  std::string err;
  PolicySpec spec;
  ASSERT_TRUE(proto::parse_policy_spec("handoff-priority(guard=2)", spec, err));
  const auto p = PolicyRegistry::instance().make(spec, err);
  ASSERT_NE(p, nullptr) << err;
  EXPECT_TRUE(p->gates_admission());
  EXPECT_EQ(p->describe(), "handoff-priority(guard=2)");
  // New calls need free > guard; handoffs are always admitted.
  EXPECT_FALSE(p->admit(RequestClass::kNewCall, 0));
  EXPECT_FALSE(p->admit(RequestClass::kNewCall, 2));
  EXPECT_TRUE(p->admit(RequestClass::kNewCall, 3));
  EXPECT_TRUE(p->admit(RequestClass::kHandoff, 0));
  EXPECT_TRUE(p->admit(RequestClass::kHandoff, 2));
  // Thresholds pass through untouched.
  const auto th = p->thresholds({2, 4});
  EXPECT_EQ(th.low, 2);
  EXPECT_EQ(th.high, 4);
}

// -- scenario validation + config round-trip --------------------------------

TEST(PolicyScenario, ValidationRejectsUnknownPolicy) {
  runner::ScenarioConfig cfg;
  cfg.policy.name = "no-such-policy";
  const std::string problem = runner::validate_scenario(cfg);
  EXPECT_NE(problem.find("unknown policy"), std::string::npos) << problem;
}

TEST(PolicyScenario, ValidationRejectsBadParameters) {
  runner::ScenarioConfig cfg;
  cfg.policy.name = "tuned-threshold";
  cfg.policy.params = {{"theta_low", 5.0}, {"theta_high", 2.0}};
  EXPECT_FALSE(runner::validate_scenario(cfg).empty());

  cfg.policy.params = {{"theta_low", 3.0}, {"theta_high", 6.0}};
  EXPECT_TRUE(runner::validate_scenario(cfg).empty());
}

TEST(PolicyScenario, ConfigFileRoundTripsPolicySpec) {
  runner::ScenarioConfig cfg;
  std::string err;
  ASSERT_TRUE(proto::parse_policy_spec("handoff-priority(guard=3)", cfg.policy,
                                       err));
  const std::string text = runner::scenario_to_text(cfg);
  EXPECT_NE(text.find("policy = handoff-priority(guard=3)"), std::string::npos)
      << text;
  runner::ScenarioConfig back;
  ASSERT_TRUE(runner::apply_scenario_text(text, back, err)) << err;
  EXPECT_EQ(back.policy.name, cfg.policy.name);
  EXPECT_EQ(back.policy.params, cfg.policy.params);
}

TEST(PolicyScenario, ConfigFileRejectsMalformedPolicyLine) {
  runner::ScenarioConfig cfg;
  std::string err;
  EXPECT_FALSE(runner::apply_scenario_text("policy = broken(oops\n", cfg, err));
  EXPECT_NE(err.find("missing ')'"), std::string::npos) << err;
}

}  // namespace
}  // namespace dca
