// Unit tests for the NFC sliding-window tracker and linear predictor
// (paper Fig. 6 / Section 3.1's NFC_i with add_nfc/get_nfc).
#include <gtest/gtest.h>

#include "core/nfc.hpp"
#include "core/params.hpp"
#include "sim/types.hpp"

namespace dca::core {
namespace {

TEST(Nfc, AtReturnsValueInForce) {
  NfcTracker t(sim::seconds(10));
  t.record(sim::seconds(1), 5);
  t.record(sim::seconds(4), 3);
  t.record(sim::seconds(8), 7);
  EXPECT_EQ(t.at(sim::seconds(1)), 5);
  EXPECT_EQ(t.at(sim::seconds(3)), 5);
  EXPECT_EQ(t.at(sim::seconds(4)), 3);
  EXPECT_EQ(t.at(sim::seconds(9)), 7);
}

TEST(Nfc, AtBeforeHistoryReturnsEarliest) {
  NfcTracker t(sim::seconds(10));
  t.record(sim::seconds(5), 4);
  EXPECT_EQ(t.at(sim::seconds(0)), 4);
}

TEST(Nfc, EmptyTrackerIsZero) {
  NfcTracker t(sim::seconds(10));
  EXPECT_EQ(t.at(0), 0);
  EXPECT_EQ(t.current(), 0);
  EXPECT_DOUBLE_EQ(t.predict(0, sim::milliseconds(10)), 0.0);
}

TEST(Nfc, PruningKeepsWindowAnswerable) {
  NfcTracker t(sim::seconds(10));
  for (int i = 0; i <= 30; ++i) t.record(sim::seconds(i), i);
  // History older than t - W is pruned, but at(t - W) must still answer
  // with the value in force at the cutoff.
  EXPECT_EQ(t.at(sim::seconds(20)), 20);
  EXPECT_LE(t.samples(), 12u);
  EXPECT_EQ(t.current(), 30);
}

TEST(Nfc, FlatHistoryPredictsCurrent) {
  NfcTracker t(sim::seconds(30));
  t.record(sim::seconds(0), 6);
  t.record(sim::seconds(30), 6);
  EXPECT_DOUBLE_EQ(t.predict(sim::seconds(30), sim::milliseconds(10)), 6.0);
}

TEST(Nfc, DecreasingTrendPredictsBelowCurrent) {
  NfcTracker t(sim::seconds(30));
  t.record(sim::seconds(0), 10);
  t.record(sim::seconds(30), 4);
  const double next = t.predict(sim::seconds(30), sim::seconds(10));
  // slope = (4 - 10)/30 per second; horizon 10 s -> 4 - 2 = 2.
  EXPECT_NEAR(next, 2.0, 1e-9);
  EXPECT_LT(next, 4.0);
}

TEST(Nfc, IncreasingTrendPredictsAboveCurrent) {
  NfcTracker t(sim::seconds(30));
  t.record(sim::seconds(0), 2);
  t.record(sim::seconds(30), 8);
  EXPECT_GT(t.predict(sim::seconds(30), sim::seconds(5)), 8.0);
}

TEST(Nfc, ShortHorizonBarelyMovesPrediction) {
  // The paper's regime: 2T (milliseconds) << W (seconds), so the predictor
  // is dominated by the current value.
  NfcTracker t(sim::seconds(30));
  t.record(sim::seconds(0), 10);
  t.record(sim::seconds(30), 0);
  const double next = t.predict(sim::seconds(30), sim::milliseconds(10));
  EXPECT_NEAR(next, 0.0, 0.01);
}

TEST(Nfc, SingleSampleHasZeroSlope) {
  NfcTracker t(sim::seconds(30));
  t.record(sim::seconds(100), 7);
  EXPECT_DOUBLE_EQ(t.predict(sim::seconds(100), sim::seconds(60)), 7.0);
}

TEST(AdaptiveParams, DefaultsAreSane) {
  const AdaptiveParams p;
  p.check();
  EXPECT_LT(p.theta_low, p.theta_high);
  EXPECT_GE(p.theta_low, 1);
  EXPECT_GE(p.alpha, 1);
}

}  // namespace
}  // namespace dca::core
