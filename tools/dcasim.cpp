// dcasim — the command-line front end of the simulator.
//
// Runs any allocation scheme (or all of them) on a configurable cellular
// system and traffic pattern, printing an aligned results table or CSV.
//
//   $ dcasim --scheme adaptive --rho 0.7
//   $ dcasim --scheme all --rho 0.9 --rows 14 --cols 14 --torus --csv
//   $ dcasim --profile hotspot --hot-factor 10 --scheme fca
//   $ dcasim --help
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "metrics/json.hpp"
#include "metrics/table.hpp"
#include "runner/cli.hpp"
#include "runner/config_file.hpp"
#include "runner/conformance.hpp"
#include "runner/experiment.hpp"
#include "runner/world.hpp"
#include "traffic/generator.hpp"
#include "traffic/profile.hpp"

namespace {

using namespace dca;

std::vector<runner::Scheme> parse_schemes(const std::string& s) {
  if (s == "all")
    return {std::begin(runner::kAllSchemes), std::end(runner::kAllSchemes)};
  if (s == "fca") return {runner::Scheme::kFca};
  if (s == "search") return {runner::Scheme::kBasicSearch};
  if (s == "update") return {runner::Scheme::kBasicUpdate};
  if (s == "advupdate") return {runner::Scheme::kAdvancedUpdate};
  if (s == "advsearch") return {runner::Scheme::kAdvancedSearch};
  if (s == "adaptive") return {runner::Scheme::kAdaptive};
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  runner::ArgParser args(
      "dcasim",
      "distributed dynamic channel allocation simulator (Kahol et al. 1998)");
  args.add_string("scheme", "adaptive",
                  "fca | search | update | advupdate | advsearch | adaptive | all")
      .add_int("rows", 8, "grid rows")
      .add_int("cols", 8, "grid columns")
      .add_int("channels", 70, "spectrum size")
      .add_int("cluster", 7, "reuse cluster size (3 or 7)")
      .add_int("radius", 2, "interference radius in hops")
      .add_flag("torus", "wraparound grid (rows%14==0, cols%7==0 for cluster 7)")
      .add_double("rho", 0.6, "offered Erlang/cell, normalized to |PR|")
      .add_string("profile", "uniform", "uniform | hotspot")
      .add_double("hot-factor", 10.0, "hot-spot load multiplier")
      .add_int("hot-cell", -1, "hot cell id (-1 = grid center)")
      .add_double("duration-min", 30.0, "simulated minutes of traffic")
      .add_double("warmup-min", 5.0, "minutes excluded from statistics")
      .add_double("holding-s", 180.0, "mean call holding time [s]")
      .add_double("latency-ms", 5.0, "one-way control latency T [ms]")
      .add_double("jitter-ms", 0.0, "uniform latency jitter below T [ms]")
      .add_double("dwell-s", 0.0, "mean cell dwell time for mobility (0 = off)")
      .add_int("seed", 1, "RNG seed")
      .add_int("seeds", 1, "replications (mean +/- sd when > 1)")
      .add_int("theta-low", 2, "adaptive: enter borrowing below this prediction")
      .add_int("theta-high", 4, "adaptive: return to local at this prediction")
      .add_int("alpha", 3, "adaptive: update rounds before searching")
      .add_double("window-s", 30.0, "adaptive: NFC prediction window [s]")
      .add_flag("repack", "adaptive: migrate borrowed calls onto freed primaries")
      .add_int("max-attempts", 10, "update-family retry cap")
      .add_string("policy", "default",
                  "allocation policy, name or name(k=v,...); see PROTOCOL.md")
      .add_double("drop-prob", 0.0, "fault: per-frame drop probability [0,0.9]")
      .add_double("dup-prob", 0.0, "fault: per-frame duplication probability")
      .add_double("fault-jitter-ms", 0.0, "fault: extra per-frame jitter [ms]")
      .add_double("pause-rate", 0.0, "fault: MSS pauses per minute per cell")
      .add_double("pause-mean-s", 0.0, "fault: mean MSS pause length [s]")
      .add_double("crash-rate", 0.0, "fault: MSS crashes per minute per cell")
      .add_double("crash-mean-s", 0.0, "fault: mean MSS outage length [s]")
      .add_string("net-partition", "",
                  "fault: scheduled partitions 'cells@start_s..end_s', "
                  "';'-separated, e.g. '0,1,8@300..420;9@600..700'")
      .add_double("timeout-ms", 0.0, "protocol request timeout (0 = no timers)")
      .add_int("shards", 1, "event-engine shards (1 = classic engine)")
      .add_int("threads", 0, "sharded-engine workers (0 = one per shard)")
      .add_string("partition", "blocks",
                  "cell->shard map: blocks (hex blocks) | striped (cell % shards)")
      .add_flag("pin", "pin sharded-engine workers to distinct CPUs (Linux)")
      .add_flag("stream-metrics",
                "fold metrics/trace out of the engine at window barriers "
                "(bounded memory; uses the sharded engine even at shards 1)")
      .add_double("fade-prob", 0.0, "radio: per-(cell,channel) fade probability")
      .add_double("fade-bucket-ms", 1000.0, "radio: fade coherence time [ms]")
      .add_string("config", "", "scenario file applied before other options")
      .add_string("trace", "", "write the structured event trace (JSONL) here")
      .add_flag("conformance", "check the trace against the paper's invariants")
      .add_flag("dump-config", "print the effective scenario file and exit")
      .add_flag("csv", "emit CSV instead of an aligned table")
      .add_flag("json", "emit a JSON array of result objects");
  if (!args.parse(argc, argv)) {
    std::fprintf(stderr, "dcasim: %s\n(use --help)\n", args.error().c_str());
    return 2;
  }
  if (args.help_requested()) {
    std::printf("%s", args.help_text().c_str());
    return 0;
  }

  const auto schemes = parse_schemes(args.get_string("scheme"));
  if (schemes.empty()) {
    std::fprintf(stderr, "dcasim: unknown scheme '%s'\n",
                 args.get_string("scheme").c_str());
    return 2;
  }

  // Defaults come from ScenarioConfig (identical to the CLI defaults), a
  // scenario file overrides them, and explicitly given CLI options win.
  runner::ScenarioConfig cfg;
  if (!args.get_string("config").empty()) {
    std::string err;
    if (!runner::load_scenario_file(args.get_string("config"), cfg, err)) {
      std::fprintf(stderr, "dcasim: %s\n", err.c_str());
      return 2;
    }
  }
  const bool no_file = args.get_string("config").empty();
  const auto use = [&](const char* name) { return no_file || args.was_set(name); };
  if (use("rows")) cfg.rows = static_cast<int>(args.get_int("rows"));
  if (use("cols")) cfg.cols = static_cast<int>(args.get_int("cols"));
  if (use("channels")) cfg.n_channels = static_cast<int>(args.get_int("channels"));
  if (use("cluster")) cfg.cluster = static_cast<int>(args.get_int("cluster"));
  if (use("radius"))
    cfg.interference_radius = static_cast<int>(args.get_int("radius"));
  if (no_file || args.was_set("torus"))
    cfg.wrap =
        args.get_flag("torus") ? cell::Wrap::kToroidal : cell::Wrap::kBounded;
  if (use("duration-min"))
    cfg.duration = sim::from_seconds(args.get_double("duration-min") * 60.0);
  if (use("warmup-min"))
    cfg.warmup = sim::from_seconds(args.get_double("warmup-min") * 60.0);
  if (use("holding-s")) cfg.mean_holding_s = args.get_double("holding-s");
  if (use("latency-ms"))
    cfg.latency = sim::from_seconds(args.get_double("latency-ms") / 1000.0);
  if (use("jitter-ms"))
    cfg.latency_jitter = sim::from_seconds(args.get_double("jitter-ms") / 1000.0);
  if (use("dwell-s")) cfg.mean_dwell_s = args.get_double("dwell-s");
  if (use("seed")) cfg.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  if (use("max-attempts"))
    cfg.max_update_attempts = static_cast<int>(args.get_int("max-attempts"));
  if (use("policy")) {
    std::string specError;
    if (!proto::parse_policy_spec(args.get_string("policy"), cfg.policy,
                                  specError)) {
      std::fprintf(stderr, "dcasim: %s\n", specError.c_str());
      return 2;
    }
  }
  if (use("theta-low"))
    cfg.adaptive.theta_low = static_cast<int>(args.get_int("theta-low"));
  if (use("theta-high"))
    cfg.adaptive.theta_high = static_cast<int>(args.get_int("theta-high"));
  if (use("alpha")) cfg.adaptive.alpha = static_cast<int>(args.get_int("alpha"));
  if (use("window-s"))
    cfg.adaptive.window = sim::from_seconds(args.get_double("window-s"));
  if (no_file || args.was_set("repack"))
    cfg.adaptive.repack = args.get_flag("repack");
  if (use("drop-prob")) cfg.fault.drop_prob = args.get_double("drop-prob");
  if (use("dup-prob")) cfg.fault.dup_prob = args.get_double("dup-prob");
  if (use("fault-jitter-ms"))
    cfg.fault.jitter = sim::from_seconds(args.get_double("fault-jitter-ms") / 1000.0);
  if (use("pause-rate")) cfg.fault.pause_rate_per_min = args.get_double("pause-rate");
  if (use("pause-mean-s")) cfg.fault.pause_mean_s = args.get_double("pause-mean-s");
  if (use("crash-rate")) cfg.fault.crash_rate_per_min = args.get_double("crash-rate");
  if (use("crash-mean-s")) cfg.fault.crash_mean_s = args.get_double("crash-mean-s");
  if (args.was_set("net-partition")) {
    // Reuse the scenario-file grammar: each ';'-separated chunk is one
    // "net_partition = cells @ start_s..end_s" line.
    std::string rest = args.get_string("net-partition");
    while (!rest.empty()) {
      const auto semi = rest.find(';');
      const std::string chunk = rest.substr(0, semi);
      rest = semi == std::string::npos ? "" : rest.substr(semi + 1);
      if (chunk.empty()) continue;
      std::string err;
      if (!runner::apply_scenario_text("net_partition = " + chunk + "\n", cfg,
                                       err)) {
        std::fprintf(stderr, "dcasim: bad --net-partition chunk '%s': %s\n",
                     chunk.c_str(), err.c_str());
        return 2;
      }
    }
  }
  if (use("timeout-ms"))
    cfg.request_timeout = sim::from_seconds(args.get_double("timeout-ms") / 1000.0);
  if (use("shards")) cfg.shards = static_cast<int>(args.get_int("shards"));
  if (use("threads")) cfg.threads = static_cast<int>(args.get_int("threads"));
  if (use("partition")) {
    const std::string p = args.get_string("partition");
    if (p == "striped") {
      cfg.partition = cell::Partition::kStriped;
    } else if (p == "blocks") {
      cfg.partition = cell::Partition::kBlocks;
    } else {
      std::fprintf(stderr, "dcasim: bad --partition '%s' (striped|blocks)\n",
                   p.c_str());
      return 2;
    }
  }
  if (no_file || args.was_set("pin")) cfg.pin = args.get_flag("pin");
  if (no_file || args.was_set("stream-metrics"))
    cfg.stream_metrics = args.get_flag("stream-metrics");
  if (use("fade-prob")) cfg.radio_fade_prob = args.get_double("fade-prob");
  if (use("fade-bucket-ms"))
    cfg.radio_fade_bucket =
        sim::from_seconds(args.get_double("fade-bucket-ms") / 1000.0);

  if (const std::string problem = runner::validate_scenario(cfg); !problem.empty()) {
    std::fprintf(stderr, "dcasim: invalid scenario: %s\n", problem.c_str());
    return 2;
  }
  if (cfg.warmup >= cfg.duration) {
    cfg.warmup = cfg.duration / 10;
    std::fprintf(stderr,
                 "dcasim: warmup >= duration would discard every record; "
                 "clamped warmup to %.1f min\n",
                 sim::to_seconds(cfg.warmup) / 60.0);
  }

  if (args.get_flag("dump-config")) {
    std::printf("%s", runner::scenario_to_text(cfg).c_str());
    return 0;
  }

  const double rho = args.get_double("rho");
  const int n_seeds = static_cast<int>(args.get_int("seeds"));
  const std::string profile_name = args.get_string("profile");
  if (profile_name != "uniform" && profile_name != "hotspot") {
    std::fprintf(stderr, "dcasim: unknown profile '%s'\n", profile_name.c_str());
    return 2;
  }
  const bool hotspot = profile_name == "hotspot";
  if (hotspot && n_seeds > 1) {
    std::fprintf(stderr,
                 "dcasim: --seeds replication currently supports the uniform "
                 "profile only\n");
    return 2;
  }
  const std::string trace_path = args.get_string("trace");
  const bool conformance = args.get_flag("conformance");
  if ((conformance || !trace_path.empty()) && n_seeds > 1) {
    std::fprintf(stderr,
                 "dcasim: --trace/--conformance need a single run per scheme "
                 "(drop --seeds)\n");
    return 2;
  }

  metrics::Table table(
      n_seeds > 1
          ? std::vector<std::string>{"scheme", "drop% mean", "drop% sd",
                                     "AcqT[T] mean", "msgs/call mean", "xi1 mean"}
          : std::vector<std::string>{"scheme", "offered", "drop%", "AcqT[T]",
                                     "msgs/call", "xi1/xi2/xi3", "carried E",
                                     "violations"});
  metrics::JsonWriter json;
  json.begin_array();

  for (const runner::Scheme s : schemes) {
    if (n_seeds > 1) {
      const runner::Replicated rep = runner::run_replicated(cfg, s, rho, n_seeds);
      table.add_row({runner::scheme_name(s),
                     metrics::Table::num(100 * rep.drop_rate.mean(), 2),
                     metrics::Table::num(100 * rep.drop_rate.stddev(), 2),
                     metrics::Table::num(rep.mean_delay_in_T.mean(), 3),
                     metrics::Table::num(rep.mean_msgs_per_call.mean(), 1),
                     metrics::Table::num(rep.xi1.mean(), 3)});
      json.begin_object();
      json.key("scheme");
      json.value(runner::scheme_name(s));
      json.key("seeds");
      json.value(rep.seeds);
      json.key("drop_rate_mean");
      json.value(rep.drop_rate.mean());
      json.key("drop_rate_sd");
      json.value(rep.drop_rate.stddev());
      json.key("acq_time_T_mean");
      json.value(rep.mean_delay_in_T.mean());
      json.key("msgs_per_call_mean");
      json.value(rep.mean_msgs_per_call.mean());
      json.key("xi1_mean");
      json.value(rep.xi1.mean());
      json.end_object();
      if (rep.violations != 0) return 1;
      continue;
    }
    runner::RunResult r;
    sim::TraceRecorder rec;
    sim::TraceRecorder* trace =
        (conformance || !trace_path.empty()) ? &rec : nullptr;
    // Streaming mode never buffers the trace: spill it to the JSONL file
    // as the engine folds it out (same line schema as trace_to_jsonl), or
    // discard it when only the in-engine conformance replay needs it.
    std::FILE* spill = nullptr;
    if (cfg.stream_metrics && trace != nullptr) {
      if (!trace_path.empty()) {
        std::string path = trace_path;
        if (schemes.size() > 1) path += "." + runner::scheme_name(s);
        spill = std::fopen(path.c_str(), "w");
        if (spill == nullptr) {
          std::fprintf(stderr, "dcasim: cannot write %s\n", path.c_str());
          return 2;
        }
        rec.set_sink([spill](const sim::TraceEvent& e) {
          const std::string line = runner::trace_event_to_json(e);
          std::fwrite(line.data(), 1, line.size(), spill);
          std::fputc('\n', spill);
        });
      } else {
        rec.set_sink([](const sim::TraceEvent&) {});
      }
    }
    if (hotspot) {
      cell::CellId hot = static_cast<cell::CellId>(args.get_int("hot-cell"));
      if (hot < 0) hot = (cfg.rows / 2) * cfg.cols + cfg.cols / 2;
      r = runner::run_hotspot(cfg, s, rho, args.get_double("hot-factor"),
                              cfg.warmup, cfg.duration, {hot}, trace);
    } else {
      r = runner::run_uniform(cfg, s, rho, trace);
    }
    if (spill != nullptr) std::fclose(spill);
    if (!trace_path.empty() && !cfg.stream_metrics) {
      // One file per scheme; the scheme name is appended when several run.
      std::string path = trace_path;
      if (schemes.size() > 1) path += "." + runner::scheme_name(s);
      std::FILE* f = std::fopen(path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "dcasim: cannot write %s\n", path.c_str());
        return 2;
      }
      const std::string jsonl = runner::trace_to_jsonl(rec.events());
      std::fwrite(jsonl.data(), 1, jsonl.size(), f);
      std::fclose(f);
    }
    if (conformance) {
      if (cfg.stream_metrics) {
        // The engine already replayed the streamed trace through the
        // checker; the buffered events are gone (spilled or discarded).
        std::fprintf(stderr, "%s: conformance: %s (%llu violations, in-engine)\n",
                     runner::scheme_name(s).c_str(),
                     r.conformance_ok() ? "OK" : "FAILED",
                     static_cast<unsigned long long>(r.conformance_violations));
        if (!r.conformance_ok()) return 1;
      } else {
        const cell::HexGrid grid(cfg.rows, cfg.cols, cfg.interference_radius,
                                 cfg.wrap);
        const runner::ConformanceReport rep =
            runner::check_trace(grid, cfg.n_channels, rec.events());
        std::fprintf(stderr, "%s: conformance: %s\n",
                     runner::scheme_name(s).c_str(), rep.to_string().c_str());
        if (!rep.ok()) return 1;
      }
    }
    char xi[48];
    std::snprintf(xi, sizeof xi, "%.2f/%.2f/%.2f", r.agg.xi1, r.agg.xi2,
                  r.agg.xi3);
    table.add_row({runner::scheme_name(s), std::to_string(r.agg.offered),
                   metrics::Table::num(100 * r.agg.drop_rate(), 2),
                   metrics::Table::num(r.agg.delay_in_T.mean(), 3),
                   metrics::Table::num(r.agg.messages_per_call.mean(), 1), xi,
                   metrics::Table::num(r.carried_erlangs, 1),
                   std::to_string(r.violations)});
    json.begin_object();
    json.key("scheme");
    json.value(runner::scheme_name(s));
    json.key("rho");
    json.value(rho);
    json.key("offered");
    json.value(r.agg.offered);
    json.key("acquired");
    json.value(r.agg.acquired);
    json.key("blocked");
    json.value(r.agg.blocked);
    json.key("starved");
    json.value(r.agg.starved);
    json.key("drop_rate");
    json.value(r.agg.drop_rate());
    json.key("acq_time_T_mean");
    json.value(r.agg.delay_in_T.mean());
    json.key("acq_time_T_max");
    json.value(r.agg.delay_in_T.max());
    json.key("msgs_per_call_mean");
    json.value(r.agg.messages_per_call.mean());
    json.key("xi");
    json.begin_array();
    json.value(r.agg.xi1);
    json.value(r.agg.xi2);
    json.value(r.agg.xi3);
    json.end_array();
    json.key("carried_erlangs");
    json.value(r.carried_erlangs);
    json.key("total_messages");
    json.value(r.total_messages);
    json.key("violations");
    json.value(r.violations);
    json.key("quiescent");
    json.value(r.quiescent);
    json.key("downed");
    json.value(r.agg.downed);
    json.key("crashes");
    json.value(r.availability.crashes);
    json.key("uptime_fraction");
    json.value(r.availability.uptime_fraction(cfg.duration,
                                              cfg.rows * cfg.cols));
    json.key("mean_time_to_resync_s");
    json.value(r.availability.mean_time_to_resync_s());
    json.key("peak_rss_bytes");
    json.value(r.peak_rss_bytes);
    json.end_object();
    if (r.violations != 0) {
      std::fprintf(stderr, "dcasim: INTERFERENCE VIOLATIONS DETECTED\n");
      return 1;
    }
  }
  json.end_array();

  if (args.get_flag("json")) {
    std::printf("%s\n", json.str().c_str());
  } else if (args.get_flag("csv")) {
    std::printf("%s", table.csv().c_str());
  } else {
    std::printf("%s", table.render().c_str());
  }
  return 0;
}
