// tournament — the scheme × policy sweep harness.
//
// Runs every registered allocation policy under every allocation scheme
// across a scenario matrix (load × spatial profile × fault cocktail ×
// mobility × shards) and emits one comparison row per combination, as an
// aligned text table and as machine-readable JSON. This is the regression
// surface scenario PRs plug into: add a scenario axis (or a policy file in
// src/proto/policies/) and every combination gets measured.
//
//   $ tournament                 # full matrix -> TOURNAMENT.{txt,json}
//   $ tournament --smoke         # reduced matrix (CI-sized, a few seconds)
//   $ tournament --out=/tmp/t    # write /tmp/t.txt and /tmp/t.json
//
// Columns: blocking% (drop rate over offered requests), retry (mean borrow
// attempts over update-style acquisitions), msgs/call, events/sec (engine
// throughput), uptime% and mttr_s (crash-recovery availability; 100 / 0 on
// crash-free axes), plus the scenario axes. Simulation outputs depend only on
// (scenario, scheme, policy, seed) — never on shards/threads — so a shards
// axis row differing from its shards=1 twin in anything but events/sec is
// itself a regression.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "metrics/json.hpp"
#include "metrics/table.hpp"
#include "proto/policy.hpp"
#include "runner/experiment.hpp"

namespace {

using namespace dca;

struct Axes {
  double rho = 0.7;
  const char* profile = "uniform";  // uniform | hotspot
  const char* fault = "clean";      // clean | lossy | crashy
  bool mobility = false;
  int shards = 1;
};

struct Row {
  Axes axes;
  std::string scheme;
  std::string policy;
  double blocking_pct = 0.0;
  double retry = 0.0;
  double msgs_per_call = 0.0;
  double events_per_sec = 0.0;
  double uptime_pct = 100.0;
  double mttr_s = 0.0;  // mean restart -> resync-done latency
  std::uint64_t crashes = 0;
  std::uint64_t offered = 0;
  std::uint64_t violations = 0;
  bool quiescent = false;
};

runner::ScenarioConfig base_config(bool smoke) {
  runner::ScenarioConfig c;
  c.interference_radius = 2;
  c.n_channels = 70;
  c.cluster = 7;
  c.seed = 17;
  if (smoke) {
    c.rows = 6;
    c.cols = 6;
    c.mean_holding_s = 20.0;
    c.duration = sim::seconds(40);
    c.warmup = sim::seconds(5);
  } else {
    c.rows = 8;
    c.cols = 8;
    c.mean_holding_s = 30.0;
    c.duration = sim::minutes(2);
    c.warmup = sim::seconds(20);
  }
  return c;
}

runner::ScenarioConfig configure(const Axes& a, bool smoke) {
  runner::ScenarioConfig c = base_config(smoke);
  c.shards = a.shards;
  if (a.mobility) c.mean_dwell_s = c.mean_holding_s / 2.0;  // ~1-2 hops/call
  if (std::strcmp(a.fault, "lossy") == 0) {
    c.fault.drop_prob = 0.05;
    c.fault.dup_prob = 0.02;
    c.request_timeout = sim::milliseconds(500);
  } else if (std::strcmp(a.fault, "crashy") == 0) {
    // Lossy links plus the crash-recovery fault model: stations fail and
    // cold-restart mid-run, so rows also report uptime and resync latency.
    c.fault.drop_prob = 0.02;
    c.fault.crash_rate_per_min = 1.0;
    c.fault.crash_mean_s = 2.0;
    c.request_timeout = sim::milliseconds(500);
  }
  return c;
}

Row run_one(const Axes& a, runner::Scheme scheme, const std::string& schemeName,
            const proto::PolicySpec& spec, const std::string& policyDesc,
            bool smoke) {
  const runner::ScenarioConfig base = configure(a, smoke);
  runner::ScenarioConfig c = base;
  c.policy = spec;

  const auto t0 = std::chrono::steady_clock::now();
  runner::RunResult r;
  if (std::strcmp(a.profile, "hotspot") == 0) {
    // Central cell at 8x the base load for the statistics window.
    r = runner::run_hotspot(c, scheme, a.rho, 8.0, c.warmup,
                            c.warmup + c.duration);
  } else {
    r = runner::run_uniform(c, scheme, a.rho);
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double wall = std::chrono::duration<double>(t1 - t0).count();

  Row row;
  row.axes = a;
  row.scheme = schemeName;
  row.policy = policyDesc;
  row.blocking_pct = 100.0 * r.agg.drop_rate();
  row.retry = r.agg.mean_update_attempts;
  row.msgs_per_call = r.agg.messages_per_call.mean();
  row.events_per_sec =
      wall > 0 ? static_cast<double>(r.executed_events) / wall : 0.0;
  row.uptime_pct =
      100.0 * r.availability.uptime_fraction(c.duration, c.rows * c.cols);
  row.mttr_s = r.availability.mean_time_to_resync_s();
  row.crashes = r.availability.crashes;
  row.offered = r.agg.offered;
  row.violations = r.violations;
  row.quiescent = r.quiescent;
  return row;
}

bool write_file(const std::string& path, const std::string& text) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out = "TOURNAMENT";
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      out = arg + 6;
    } else {
      std::fprintf(stderr, "usage: tournament [--smoke] [--out=BASE]\n"
                           "  writes BASE.txt and BASE.json (default BASE = "
                           "TOURNAMENT)\n");
      return 2;
    }
  }

  // The scenario matrix. Smoke keeps one point per axis (plus the shards
  // axis, which is the cross-engine check) so CI exercises every scheme ×
  // policy combination in seconds; full crosses all axes.
  std::vector<Axes> matrix;
  if (smoke) {
    for (const int shards : {1, 2})
      matrix.push_back(Axes{0.7, "uniform", "clean", false, shards});
  } else {
    for (const double rho : {0.5, 0.9})
      for (const char* profile : {"uniform", "hotspot"})
        for (const char* fault : {"clean", "lossy", "crashy"})
          for (const bool mobility : {false, true})
            for (const int shards : {1, 4})
              matrix.push_back(Axes{rho, profile, fault, mobility, shards});
  }

  const struct {
    runner::Scheme scheme;
    const char* name;
  } kSchemes[] = {
      {runner::Scheme::kFca, "fca"},
      {runner::Scheme::kBasicSearch, "basic_search"},
      {runner::Scheme::kBasicUpdate, "basic_update"},
      {runner::Scheme::kAdvancedUpdate, "advanced_update"},
      {runner::Scheme::kAdvancedSearch, "advanced_search"},
      {runner::Scheme::kAdaptive, "adaptive"},
  };

  // Every registered policy at its default parameters.
  struct PolicyChoice {
    proto::PolicySpec spec;
    std::string desc;
  };
  std::vector<PolicyChoice> policies;
  for (const std::string& name : proto::PolicyRegistry::instance().names()) {
    PolicyChoice pc;
    pc.spec.name = name;
    std::string err;
    const auto policy = proto::PolicyRegistry::instance().make(pc.spec, err);
    if (policy == nullptr) {
      std::fprintf(stderr, "tournament: %s\n", err.c_str());
      return 1;
    }
    pc.desc = policy->describe();
    policies.push_back(std::move(pc));
  }

  // Validate every scenario in the matrix once, before burning sweep time.
  for (const Axes& a : matrix) {
    const std::string problem = runner::validate_scenario(configure(a, smoke));
    if (!problem.empty()) {
      std::fprintf(stderr, "tournament: invalid scenario point: %s\n",
                   problem.c_str());
      return 1;
    }
  }

  const std::size_t total = matrix.size() * std::size(kSchemes) * policies.size();
  std::printf("tournament: %zu scenario points x %zu schemes x %zu policies = "
              "%zu runs (%s matrix)\n",
              matrix.size(), std::size(kSchemes), policies.size(), total,
              smoke ? "smoke" : "full");

  std::vector<Row> rows;
  rows.reserve(total);
  std::size_t done = 0;
  bool all_clean = true;
  for (const Axes& a : matrix) {
    for (const auto& s : kSchemes) {
      for (const PolicyChoice& pc : policies) {
        rows.push_back(run_one(a, s.scheme, s.name, pc.spec, pc.desc, smoke));
        const Row& row = rows.back();
        if (row.violations != 0 || !row.quiescent) all_clean = false;
        ++done;
        if (done % 32 == 0 || done == total)
          std::printf("  ... %zu/%zu\n", done, total);
      }
    }
  }

  metrics::Table table({"scheme", "policy", "rho", "profile", "fault", "mob",
                        "shards", "block%", "retry", "msgs/call", "ev/s",
                        "uptime%", "mttr_s"});
  for (const Row& r : rows) {
    table.add_row({r.scheme, r.policy, metrics::Table::num(r.axes.rho, 1),
                   r.axes.profile, r.axes.fault, r.axes.mobility ? "on" : "off",
                   std::to_string(r.axes.shards),
                   metrics::Table::num(r.blocking_pct, 2),
                   metrics::Table::num(r.retry, 2),
                   metrics::Table::num(r.msgs_per_call, 1),
                   metrics::Table::num(r.events_per_sec, 0),
                   metrics::Table::num(r.uptime_pct, 2),
                   metrics::Table::num(r.mttr_s, 2)});
  }
  const std::string text = table.render();
  std::printf("\n%s", text.c_str());
  if (!all_clean)
    std::printf("\nWARNING: some runs reported violations or failed to "
                "reach quiescence (see JSON)\n");

  metrics::JsonWriter w;
  w.begin_object();
  w.key("bench");
  w.value("tournament");
  w.key("matrix");
  w.value(smoke ? "smoke" : "full");
  w.key("rows");
  w.begin_array();
  for (const Row& r : rows) {
    w.begin_object();
    w.key("scheme");
    w.value(r.scheme);
    w.key("policy");
    w.value(r.policy);
    w.key("rho");
    w.value(r.axes.rho);
    w.key("profile");
    w.value(r.axes.profile);
    w.key("fault");
    w.value(r.axes.fault);
    w.key("mobility");
    w.value(r.axes.mobility);
    w.key("shards");
    w.value(r.axes.shards);
    w.key("blocking_pct");
    w.value(r.blocking_pct);
    w.key("retry");
    w.value(r.retry);
    w.key("msgs_per_call");
    w.value(r.msgs_per_call);
    w.key("events_per_sec");
    w.value(r.events_per_sec);
    w.key("uptime_fraction");
    w.value(r.uptime_pct / 100.0);
    w.key("mean_time_to_resync_s");
    w.value(r.mttr_s);
    w.key("crashes");
    w.value(r.crashes);
    w.key("offered");
    w.value(r.offered);
    w.key("violations");
    w.value(r.violations);
    w.key("quiescent");
    w.value(r.quiescent);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  if (!write_file(out + ".txt", text) || !write_file(out + ".json", w.str())) {
    std::fprintf(stderr, "tournament: cannot write %s.{txt,json}\n", out.c_str());
    return 1;
  }
  std::printf("\nwrote %s.txt and %s.json (%zu rows)\n", out.c_str(),
              out.c_str(), rows.size());
  return all_clean ? 0 : 1;
}
