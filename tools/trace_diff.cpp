// trace_diff: structural comparison of two structured-trace JSONL files
// (the --trace output of dcasim). Reports the first diverging event with
// surrounding context, or confirms the traces are identical.
//
//   $ trace_diff a.jsonl b.jsonl
//   $ trace_diff --context 5 a.jsonl b.jsonl
//
// Exit status: 0 identical, 1 diverging, 2 usage/parse error. The tool
// exists for the sharded engine's determinism contract: when two runs
// that must be bit-identical are not, the first diverging event — not a
// megabyte of failed EXPECT_EQ output — is what localizes the bug.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "runner/conformance.hpp"
#include "sim/trace.hpp"

namespace {

bool read_file(const char* path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

void print_context(const char* label, const std::vector<dca::sim::TraceEvent>& t,
                   std::size_t at, std::size_t context) {
  const std::size_t lo = at > context ? at - context : 0;
  const std::size_t hi = std::min(t.size(), at + context + 1);
  std::printf("%s [%zu..%zu) of %zu events:\n", label, lo, hi, t.size());
  for (std::size_t i = lo; i < hi; ++i) {
    std::printf("  %c %6zu  %s\n", i == at ? '>' : ' ', i,
                dca::runner::trace_event_to_json(t[i]).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t context = 3;
  const char* path_a = nullptr;
  const char* path_b = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--context") == 0 && i + 1 < argc) {
      context = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: trace_diff [--context N] A.jsonl B.jsonl\n");
      return 0;
    } else if (path_a == nullptr) {
      path_a = argv[i];
    } else if (path_b == nullptr) {
      path_b = argv[i];
    } else {
      std::fprintf(stderr, "trace_diff: unexpected argument '%s'\n", argv[i]);
      return 2;
    }
  }
  if (path_a == nullptr || path_b == nullptr) {
    std::fprintf(stderr, "usage: trace_diff [--context N] A.jsonl B.jsonl\n");
    return 2;
  }

  std::string text_a, text_b;
  if (!read_file(path_a, text_a)) {
    std::fprintf(stderr, "trace_diff: cannot read %s\n", path_a);
    return 2;
  }
  if (!read_file(path_b, text_b)) {
    std::fprintf(stderr, "trace_diff: cannot read %s\n", path_b);
    return 2;
  }

  std::vector<dca::sim::TraceEvent> a, b;
  std::string err;
  if (!dca::runner::trace_from_jsonl(text_a, a, err)) {
    std::fprintf(stderr, "trace_diff: %s: %s\n", path_a, err.c_str());
    return 2;
  }
  if (!dca::runner::trace_from_jsonl(text_b, b, err)) {
    std::fprintf(stderr, "trace_diff: %s: %s\n", path_b, err.c_str());
    return 2;
  }

  const auto diff = dca::runner::diff_traces(a, b);
  if (diff.identical) {
    std::printf("traces identical: %zu events\n", a.size());
    return 0;
  }
  std::printf("%s\n\n", diff.description.c_str());
  print_context(path_a, a, diff.index, context);
  std::printf("\n");
  print_context(path_b, b, diff.index, context);
  return 1;
}
