// chaos — the crash-recovery campaign harness.
//
// Sweeps seeds x crash rates x partition patterns x schemes, runs every
// point with full tracing, replays each trace through the conformance
// checker, and gates on ZERO safety violations: reuse-distance holds
// through every crash, every restart resyncs in a bounded number of
// request waves, and every run drains to quiescence. Availability
// (uptime fraction, mean time to resync) is reported per campaign cell
// as an aligned table and machine-readable JSON.
//
//   $ chaos                  # full campaign -> CHAOS.{txt,json}
//   $ chaos --smoke          # reduced matrix (CI-sized, a few seconds)
//   $ chaos --soak           # overnight matrix (more seeds, longer runs)
//   $ chaos --out=/tmp/c     # write /tmp/c.txt and /tmp/c.json
//
// Exit status is 0 only when every run in the campaign was clean; any
// violation prints the offending (scheme, rate, partition, seed) cell so
// the failure is reproducible with dcasim --crash-rate/--net-partition.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "metrics/json.hpp"
#include "metrics/table.hpp"
#include "runner/conformance.hpp"
#include "runner/experiment.hpp"
#include "sim/trace.hpp"

namespace {

using namespace dca;

struct PartitionPattern {
  const char* name;
  std::vector<net::PartitionSpec> specs;
};

struct CampaignPoint {
  const char* scheme_name;
  runner::Scheme scheme;
  double crash_rate;  // per minute per cell
  const PartitionPattern* partition;
};

// One row of the report: a campaign point aggregated over all its seeds.
struct Row {
  CampaignPoint point;
  int seeds = 0;
  std::uint64_t offered = 0;
  std::uint64_t downed = 0;
  double blocking_pct = 0.0;  // mean over seeds
  metrics::Availability avail;
  double uptime = 1.0;  // mean over seeds
  std::uint64_t violations = 0;
  std::uint64_t conformance_violations = 0;
  bool all_quiescent = true;
};

struct Knobs {
  int seeds = 20;
  sim::Duration duration = sim::seconds(60);
  double rho = 0.6;
};

runner::ScenarioConfig base_config(const Knobs& k) {
  runner::ScenarioConfig c;
  c.rows = 6;
  c.cols = 6;
  c.interference_radius = 2;
  c.n_channels = 70;
  c.cluster = 7;
  c.mean_holding_s = 20.0;
  c.duration = k.duration;
  c.warmup = sim::seconds(5);
  // Crashes and partitions both orphan in-flight handshakes; the timeout
  // is what turns those into clean aborts (validate_scenario enforces it).
  c.request_timeout = sim::milliseconds(500);
  return c;
}

// The gate needs bounded resync: a restarted node re-requests missing
// neighbour replies every request_timeout, so waves accumulate only while
// a reply source is unreachable. The two legitimate sources of delay are
// an unhealed partition and neighbours that are themselves down (a dead
// process discards the request; back-to-back neighbour outages compound,
// so allow a generous exponential-tail multiple of the mean outage).
// Anything past this bound means resync stopped converging — livelock.
std::uint64_t resync_round_bound(const runner::ScenarioConfig& c) {
  sim::Duration worst_gap = 0;
  for (const net::PartitionSpec& p : c.fault.partitions)
    worst_gap = std::max(worst_gap, p.end - p.start);
  const sim::Duration outage_tail =
      sim::from_seconds(12.0 * c.fault.crash_mean_s);
  return 8 + static_cast<std::uint64_t>(
                 (worst_gap + outage_tail) /
                 std::max<sim::Duration>(c.request_timeout, 1));
}

bool write_file(const std::string& path, const std::string& text) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool soak = false;
  std::string out = "CHAOS";
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(arg, "--soak") == 0) {
      soak = true;
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      out = arg + 6;
    } else {
      std::fprintf(stderr,
                   "usage: chaos [--smoke|--soak] [--out=BASE]\n"
                   "  writes BASE.txt and BASE.json (default BASE = CHAOS)\n");
      return 2;
    }
  }

  Knobs knobs;
  if (smoke) {
    knobs.seeds = 3;
    knobs.duration = sim::seconds(30);
  } else if (soak) {
    knobs.seeds = 64;
    knobs.duration = sim::minutes(3);
  }

  // Partition patterns over the 6x6 grid: a severed corner (cells that
  // keep full connectivity among themselves but lose the rest of the
  // network for 10 s), and a column split. Both heal before the run ends
  // so resync completion is always reachable.
  const PartitionPattern kNone{"none", {}};
  const PartitionPattern kCorner{
      "corner",
      {net::PartitionSpec{{0, 1, 6}, sim::seconds(12), sim::seconds(22)}}};
  const PartitionPattern kSplit{
      "split",
      {net::PartitionSpec{{0, 6, 12, 18, 24, 30}, sim::seconds(10),
                          sim::seconds(18)},
       net::PartitionSpec{{5, 11, 17}, sim::seconds(20), sim::seconds(26)}}};
  std::vector<const PartitionPattern*> patterns = {&kNone, &kCorner, &kSplit};
  std::vector<double> rates = {0.5, 2.0, 6.0};
  if (smoke) {
    patterns = {&kNone, &kCorner};
    rates = {2.0, 6.0};
  }

  const struct {
    runner::Scheme scheme;
    const char* name;
  } kSchemes[] = {
      {runner::Scheme::kAdaptive, "adaptive"},
      {runner::Scheme::kBasicSearch, "basic_search"},
  };

  std::vector<CampaignPoint> points;
  for (const auto& s : kSchemes)
    for (const double rate : rates)
      for (const PartitionPattern* p : patterns)
        points.push_back(CampaignPoint{s.name, s.scheme, rate, p});

  const std::size_t total_runs = points.size() * static_cast<std::size_t>(knobs.seeds);
  std::printf("chaos: %zu campaign points x %d seeds = %zu runs (%s)\n",
              points.size(), knobs.seeds, total_runs,
              smoke ? "smoke" : (soak ? "soak" : "full"));

  std::vector<Row> rows;
  rows.reserve(points.size());
  bool all_clean = true;
  std::size_t done = 0;
  for (const CampaignPoint& pt : points) {
    Row row;
    row.point = pt;
    row.seeds = knobs.seeds;
    double blocking_sum = 0.0;
    double uptime_sum = 0.0;
    for (int s = 0; s < knobs.seeds; ++s) {
      runner::ScenarioConfig c = base_config(knobs);
      c.seed = 1000 + static_cast<std::uint64_t>(s);
      c.fault.crash_rate_per_min = pt.crash_rate;
      c.fault.crash_mean_s = 3.0;
      c.fault.partitions = pt.partition->specs;
      const std::string problem = runner::validate_scenario(c);
      if (!problem.empty()) {
        std::fprintf(stderr, "chaos: invalid scenario point: %s\n",
                     problem.c_str());
        return 1;
      }

      sim::TraceRecorder trace;
      const runner::RunResult r = runner::run_uniform(c, pt.scheme, knobs.rho, &trace);

      const cell::HexGrid grid(c.rows, c.cols, c.interference_radius, c.wrap);
      const runner::ConformanceReport conf =
          runner::check_trace(grid, c.n_channels, trace.events());

      row.offered += r.agg.offered;
      row.downed += r.agg.downed;
      blocking_sum += r.agg.drop_rate();
      row.avail.merge(r.availability);
      uptime_sum += r.availability.uptime_fraction(c.duration, c.rows * c.cols);
      row.violations += r.violations;
      row.conformance_violations += conf.violations.size();
      row.all_quiescent = row.all_quiescent && r.quiescent;

      const std::uint64_t bound = resync_round_bound(c);
      const bool clean = r.violations == 0 && conf.violations.empty() &&
                         r.quiescent &&
                         r.availability.max_resync_rounds <= bound;
      if (!clean) {
        all_clean = false;
        std::fprintf(stderr,
                     "chaos: DIRTY run scheme=%s rate=%.1f partition=%s "
                     "seed=%llu: violations=%llu conformance=%zu "
                     "quiescent=%d max_resync_rounds=%llu (bound %llu)\n",
                     pt.scheme_name, pt.crash_rate, pt.partition->name,
                     static_cast<unsigned long long>(c.seed),
                     static_cast<unsigned long long>(r.violations),
                     conf.violations.size(), r.quiescent ? 1 : 0,
                     static_cast<unsigned long long>(
                         r.availability.max_resync_rounds),
                     static_cast<unsigned long long>(bound));
        for (const runner::ConformanceViolation& v : conf.violations)
          std::fprintf(stderr, "  [%s] t=%lld %s\n", v.rule.c_str(),
                       static_cast<long long>(v.t), v.detail.c_str());
      }
      ++done;
      if (done % 16 == 0 || done == total_runs)
        std::printf("  ... %zu/%zu\n", done, total_runs);
    }
    row.blocking_pct = 100.0 * blocking_sum / knobs.seeds;
    row.uptime = uptime_sum / knobs.seeds;
    rows.push_back(std::move(row));
  }

  metrics::Table table({"scheme", "rate/min", "partition", "seeds", "crashes",
                        "resyncs", "uptime%", "mttr_s", "max_rounds", "block%",
                        "clean"});
  for (const Row& r : rows) {
    const bool clean = r.violations == 0 && r.conformance_violations == 0 &&
                       r.all_quiescent;
    table.add_row({r.point.scheme_name, metrics::Table::num(r.point.crash_rate, 1),
                   r.point.partition->name, std::to_string(r.seeds),
                   std::to_string(r.avail.crashes), std::to_string(r.avail.resyncs),
                   metrics::Table::num(100.0 * r.uptime, 2),
                   metrics::Table::num(r.avail.mean_time_to_resync_s(), 3),
                   std::to_string(r.avail.max_resync_rounds),
                   metrics::Table::num(r.blocking_pct, 2),
                   clean ? "yes" : "NO"});
  }
  const std::string text = table.render();
  std::printf("\n%s", text.c_str());

  metrics::JsonWriter w;
  w.begin_object();
  w.key("bench");
  w.value("chaos");
  w.key("matrix");
  w.value(smoke ? "smoke" : (soak ? "soak" : "full"));
  w.key("seeds");
  w.value(knobs.seeds);
  w.key("all_clean");
  w.value(all_clean);
  w.key("rows");
  w.begin_array();
  for (const Row& r : rows) {
    w.begin_object();
    w.key("scheme");
    w.value(r.point.scheme_name);
    w.key("crash_rate_per_min");
    w.value(r.point.crash_rate);
    w.key("partition");
    w.value(r.point.partition->name);
    w.key("offered");
    w.value(r.offered);
    w.key("downed");
    w.value(r.downed);
    w.key("blocking_pct");
    w.value(r.blocking_pct);
    w.key("crashes");
    w.value(r.avail.crashes);
    w.key("resyncs");
    w.value(r.avail.resyncs);
    w.key("uptime_fraction");
    w.value(r.uptime);
    w.key("mean_time_to_resync_s");
    w.value(r.avail.mean_time_to_resync_s());
    w.key("max_resync_rounds");
    w.value(r.avail.max_resync_rounds);
    w.key("violations");
    w.value(r.violations);
    w.key("conformance_violations");
    w.value(r.conformance_violations);
    w.key("quiescent");
    w.value(r.all_quiescent);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  if (!write_file(out + ".txt", text) || !write_file(out + ".json", w.str())) {
    std::fprintf(stderr, "chaos: cannot write %s.{txt,json}\n", out.c_str());
    return 1;
  }
  std::printf("\nwrote %s.txt and %s.json (%zu rows); campaign %s\n",
              out.c_str(), out.c_str(), rows.size(),
              all_clean ? "CLEAN" : "DIRTY");
  return all_clean ? 0 : 1;
}
