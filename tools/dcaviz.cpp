// dcaviz — renders the cellular system to SVG.
//
//   $ dcaviz --out grid.svg                          # reuse colouring
//   $ dcaviz --out focus.svg --focus 36              # interference region
//   $ dcaviz --out heat.svg --snapshot hotspot       # usage heat map after
//                                                    # a simulated hot spot
#include <cstdio>
#include <vector>

#include "runner/cli.hpp"
#include "runner/world.hpp"
#include "traffic/generator.hpp"
#include "traffic/profile.hpp"
#include "viz/svg.hpp"

int main(int argc, char** argv) {
  using namespace dca;

  runner::ArgParser args("dcaviz", "SVG renderer for the cellular system");
  args.add_string("out", "grid.svg", "output SVG path")
      .add_int("rows", 8, "grid rows")
      .add_int("cols", 8, "grid columns")
      .add_int("radius", 2, "interference radius")
      .add_int("channels", 70, "spectrum size")
      .add_int("cluster", 7, "reuse cluster size")
      .add_flag("torus", "wraparound grid")
      .add_flag("greedy", "greedy reuse plan instead of the cluster pattern")
      .add_int("focus", -1, "highlight this cell and its interference region")
      .add_string("snapshot", "", "'' | uniform | hotspot: run a short sim and "
                                  "shade cells by channels in use")
      .add_double("rho", 0.5, "offered load for the snapshot sim")
      .add_flag("color-labels", "label colour classes instead of cell ids");
  if (!args.parse(argc, argv)) {
    std::fprintf(stderr, "dcaviz: %s\n(use --help)\n", args.error().c_str());
    return 2;
  }
  if (args.help_requested()) {
    std::printf("%s", args.help_text().c_str());
    return 0;
  }

  runner::ScenarioConfig cfg;
  cfg.rows = static_cast<int>(args.get_int("rows"));
  cfg.cols = static_cast<int>(args.get_int("cols"));
  cfg.interference_radius = static_cast<int>(args.get_int("radius"));
  cfg.n_channels = static_cast<int>(args.get_int("channels"));
  cfg.cluster = static_cast<int>(args.get_int("cluster"));
  cfg.wrap = args.get_flag("torus") ? cell::Wrap::kToroidal : cell::Wrap::kBounded;
  cfg.greedy_plan = args.get_flag("greedy");
  cfg.duration = sim::minutes(10);
  cfg.warmup = 0;

  if (const std::string problem = runner::validate_scenario(cfg); !problem.empty()) {
    std::fprintf(stderr, "dcaviz: invalid scenario: %s\n", problem.c_str());
    return 2;
  }

  viz::SvgOptions opt;
  opt.focus = static_cast<cell::CellId>(args.get_int("focus"));
  opt.label_ids = !args.get_flag("color-labels");
  opt.label_colors = args.get_flag("color-labels");

  // Build the world (also used for a snapshot sim when requested) —
  // cheapest way to share grid/plan construction and validation.
  runner::World world(cfg, runner::Scheme::kAdaptive);

  const std::string snapshot = args.get_string("snapshot");
  if (!snapshot.empty()) {
    const double rate = cfg.arrival_rate_for_load(args.get_double("rho"));
    const cell::CellId hot = (cfg.rows / 2) * cfg.cols + cfg.cols / 2;
    const traffic::UniformProfile uni(rate);
    const traffic::HotspotProfile hs(rate, {hot}, 10.0, 0, cfg.duration);
    const traffic::LoadProfile& profile =
        snapshot == "hotspot" ? static_cast<const traffic::LoadProfile&>(hs) : uni;
    traffic::TrafficSource src(
        world.simulator(), world.grid(), profile, cfg.mean_holding_s, cfg.seed,
        [&world](const traffic::CallSpec& spec) { world.submit_call(spec); });
    src.start(cfg.duration);
    world.simulator().run_until(cfg.duration);  // mid-flight: usage visible
    opt.in_use.resize(static_cast<std::size_t>(world.grid().n_cells()));
    for (cell::CellId c = 0; c < world.grid().n_cells(); ++c) {
      opt.in_use[static_cast<std::size_t>(c)] = world.node(c).in_use().size();
    }
    opt.heat_scale = 2 * cfg.n_channels / cfg.cluster;
  }

  const std::string path = args.get_string("out");
  if (!viz::write_svg(path, world.grid(), world.plan(), opt)) {
    std::fprintf(stderr, "dcaviz: cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s (%dx%d cells%s)\n", path.c_str(), cfg.rows, cfg.cols,
              snapshot.empty() ? "" : ", with usage heat map");
  return 0;
}
