// A minimal JSON writer (no DOM, no parsing): enough to export results
// for downstream analysis without dragging in a dependency.
//
//   JsonWriter w;
//   w.begin_object();
//   w.key("scheme"); w.value("adaptive");
//   w.key("drop_rate"); w.value(0.021);
//   w.key("series"); w.begin_array(); w.value(1); w.value(2); w.end_array();
//   w.end_object();
//   std::string out = w.str();
//
// The writer inserts commas automatically and escapes strings per RFC
// 8259. Numbers are emitted with enough precision to round-trip doubles.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace dca::metrics {

class JsonWriter {
 public:
  void begin_object() {
    separator();
    out_ << '{';
    stack_.push_back(State::kFirstInObject);
  }
  void end_object() {
    out_ << '}';
    stack_.pop_back();
    mark_value_written();
  }
  void begin_array() {
    separator();
    out_ << '[';
    stack_.push_back(State::kFirstInArray);
  }
  void end_array() {
    out_ << ']';
    stack_.pop_back();
    mark_value_written();
  }

  /// Writes an object key (must be inside an object).
  void key(std::string_view name) {
    separator();
    write_string(name);
    out_ << ':';
    pending_key_ = true;
  }

  void value(std::string_view s) {
    separator();
    write_string(s);
    mark_value_written();
  }
  void value(const char* s) { value(std::string_view(s)); }
  void value(bool b) {
    separator();
    out_ << (b ? "true" : "false");
    mark_value_written();
  }
  void value(double d) {
    separator();
    if (std::isfinite(d)) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.17g", d);
      out_ << buf;
    } else {
      out_ << "null";  // JSON has no infinity/NaN
    }
    mark_value_written();
  }
  void value(std::int64_t v) {
    separator();
    out_ << v;
    mark_value_written();
  }
  void value(std::uint64_t v) {
    separator();
    out_ << v;
    mark_value_written();
  }
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void null() {
    separator();
    out_ << "null";
    mark_value_written();
  }

  [[nodiscard]] std::string str() const { return out_.str(); }

 private:
  enum class State { kFirstInObject, kInObject, kFirstInArray, kInArray };

  void separator() {
    if (pending_key_) {
      pending_key_ = false;
      return;  // value directly after a key: no comma
    }
    if (stack_.empty()) return;
    switch (stack_.back()) {
      case State::kInObject:
      case State::kInArray:
        out_ << ',';
        break;
      case State::kFirstInObject:
      case State::kFirstInArray:
        break;
    }
  }

  void mark_value_written() {
    if (stack_.empty()) return;
    if (stack_.back() == State::kFirstInObject) stack_.back() = State::kInObject;
    if (stack_.back() == State::kFirstInArray) stack_.back() = State::kInArray;
  }

  void write_string(std::string_view s) {
    out_ << '"';
    for (const char c : s) {
      switch (c) {
        case '"': out_ << "\\\""; break;
        case '\\': out_ << "\\\\"; break;
        case '\n': out_ << "\\n"; break;
        case '\r': out_ << "\\r"; break;
        case '\t': out_ << "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out_ << buf;
          } else {
            out_ << c;
          }
      }
    }
    out_ << '"';
  }

  std::ostringstream out_;
  std::vector<State> stack_;
  bool pending_key_ = false;
};

}  // namespace dca::metrics
