#include "metrics/table.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace dca::metrics {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  assert(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  const auto emit_row = [&](const std::vector<std::string>& row, std::ostream& os) {
    os << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(width[c] - row[c].size(), ' ');
      os << (c + 1 < row.size() ? " | " : " |");
    }
    os << '\n';
  };

  std::ostringstream os;
  emit_row(header_, os);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row, os);
  return os.str();
}

std::string Table::csv() const {
  const auto field = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (const char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << field(header_[c]) << (c + 1 < header_.size() ? "," : "\n");
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      os << field(row[c]) << (c + 1 < row.size() ? "," : "\n");
  return os.str();
}

}  // namespace dca::metrics
