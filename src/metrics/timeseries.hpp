// Bucketed time series: accumulate (sum, count) per fixed-width bucket of
// simulated time. Used to plot transients — e.g. per-minute drop rate
// through a hot-spot burst — from per-call records.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace dca::metrics {

class TimeSeries {
 public:
  explicit TimeSeries(sim::Duration bucket_width) : width_(bucket_width) {
    assert(width_ > 0);
  }

  /// Adds `value` to the bucket containing time t (negative t clamps to 0).
  void add(sim::SimTime t, double value = 1.0) {
    if (t < 0) t = 0;
    const auto idx = static_cast<std::size_t>(t / width_);
    if (idx >= sums_.size()) {
      sums_.resize(idx + 1, 0.0);
      counts_.resize(idx + 1, 0);
    }
    sums_[idx] += value;
    ++counts_[idx];
  }

  [[nodiscard]] std::size_t n_buckets() const noexcept { return sums_.size(); }
  [[nodiscard]] sim::Duration bucket_width() const noexcept { return width_; }
  [[nodiscard]] sim::SimTime bucket_start(std::size_t i) const {
    return static_cast<sim::SimTime>(i) * width_;
  }
  [[nodiscard]] double sum(std::size_t i) const { return sums_.at(i); }
  [[nodiscard]] std::uint64_t count(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] double mean(std::size_t i) const {
    return counts_.at(i) == 0 ? 0.0
                              : sums_.at(i) / static_cast<double>(counts_.at(i));
  }

 private:
  sim::Duration width_;
  std::vector<double> sums_;
  std::vector<std::uint64_t> counts_;
};

}  // namespace dca::metrics
