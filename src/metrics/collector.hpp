// Per-call records and experiment-level aggregation.
//
// The collector opens a record when a call requests a channel, bills every
// control message carrying that request's serial to it (via the network
// observer hook), and closes the record at the accept/drop decision. The
// aggregate view computes exactly the quantities the paper's Section 5
// analysis is parameterized by:
//
//   ξ₁, ξ₂, ξ₃  — fractions of acquisitions that were local / borrowed via
//                 update / obtained via search,
//   m           — mean update-mode attempts among borrow acquisitions,
//   N_borrow    — mean number of borrowing-mode interference neighbours
//                 sampled at acquisition instants,
//   N_search    — mean number of simultaneous searches in the
//                 neighbourhood sampled at search-acquisition instants,
// plus the evaluation outputs: block/drop probability, acquisition time
// (reported in units of T), and control messages per call.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cell/grid.hpp"
#include "metrics/summary.hpp"
#include "net/message.hpp"
#include "proto/allocator.hpp"
#include "sim/types.hpp"
#include "traffic/call.hpp"

namespace dca::metrics {

struct CallRecord {
  std::uint64_t serial = 0;
  traffic::CallId call = 0;
  cell::CellId cellId = cell::kNoCell;
  bool is_handoff = false;
  sim::SimTime t_request = 0;
  sim::SimTime t_decision = 0;
  proto::Outcome outcome = proto::Outcome::kBlockedNoChannel;
  int attempts = 0;  // paper's m for this call (update rounds used)
  int borrowing_neighbors = 0;   // sampled at decision
  int searching_neighbors = 0;   // sampled at decision
  std::array<std::uint32_t, net::kNumMsgKinds> messages{};

  [[nodiscard]] std::uint32_t total_messages() const noexcept {
    std::uint32_t s = 0;
    for (const auto m : messages) s += m;
    return s;
  }
  [[nodiscard]] sim::Duration delay() const noexcept { return t_decision - t_request; }
};

/// Aggregated results over one simulation run.
struct Aggregate {
  std::uint64_t offered = 0;       // channel requests issued
  std::uint64_t acquired = 0;
  std::uint64_t blocked = 0;       // no channel available
  std::uint64_t starved = 0;       // update retry cap exhausted
  std::uint64_t timed_out = 0;     // protocol round aborted by timeout
  std::uint64_t downed = 0;        // arrival cell crashed or resyncing
  std::uint64_t handoff_offered = 0;   // requests that were handoffs
  std::uint64_t handoff_failures = 0;  // ... of which failed (forced term.)

  double xi1 = 0.0, xi2 = 0.0, xi3 = 0.0;
  double mean_update_attempts = 0.0;  // m over ξ₂ acquisitions
  Summary attempts;                   // attempts over ALL closed requests
  double mean_borrowing_neighbors = 0.0;   // N_borrow
  double mean_searching_neighbors = 0.0;   // N_search

  Summary delay_us;           // acquisition delay, microseconds, acquired calls
  Summary delay_in_T;         // acquisition delay in units of T
  Summary messages_per_call;  // attributed messages per closed request
  Summary messages_acquired;  // ... among acquired only

  [[nodiscard]] double drop_rate() const noexcept {
    return offered == 0
               ? 0.0
               : static_cast<double>(blocked + starved + timed_out + downed) /
                     static_cast<double>(offered);
  }
};

/// Incremental accumulator behind aggregate_records. Records are folded
/// one at a time in canonical order, so a streaming engine can retire
/// closed records window by window instead of buffering the full run.
///
/// The message-count Summaries are split out of add_core() because a
/// record's message tally is NOT final at its decision instant — the
/// end-of-call RELEASE (and any retried control leg) bills later. The
/// streaming engine therefore folds add_core() at window barriers, keeps
/// per-serial tallies, and replays add_messages() in fold order at run
/// end. Each Summary's accumulation state depends only on its own add()
/// sequence, so deferring one pair of Summaries past the others is still
/// bit-identical to the buffered single pass.
class AggregateBuilder {
 public:
  explicit AggregateBuilder(sim::Duration T, sim::SimTime warmup = 0)
      : T_(T), warmup_(warmup) {}

  /// True iff `outcome` granted a channel (vs blocked/starved/timed out).
  [[nodiscard]] static bool acquired_outcome(proto::Outcome outcome) noexcept {
    return outcome == proto::Outcome::kAcquiredLocal ||
           outcome == proto::Outcome::kAcquiredUpdate ||
           outcome == proto::Outcome::kAcquiredSearch;
  }

  /// Folds every statistic except messages_per_call / messages_acquired.
  /// Returns false when the record fell inside warmup (discarded); the
  /// caller must mirror that admission decision for add_messages().
  bool add_core(const CallRecord& r);

  /// Folds one admitted record's final message total. Must be called in
  /// the same record order as add_core(), acquired = whether the record's
  /// outcome acquired a channel.
  void add_messages(std::uint32_t total, bool acquired);

  /// Buffered path: both halves at once.
  void add(const CallRecord& r) {
    if (add_core(r)) add_messages(r.total_messages(), acquired_outcome(r.outcome));
  }

  /// Finalizes the derived ratios and returns the aggregate.
  [[nodiscard]] Aggregate finish() const;

 private:
  sim::Duration T_;
  sim::SimTime warmup_;
  Aggregate a_;
  std::uint64_t n_local_ = 0, n_update_ = 0, n_search_ = 0;
  double sum_attempts_update_ = 0.0;
  double sum_borrowing_ = 0.0;
  double sum_searching_ = 0.0;
  std::uint64_t n_search_samples_ = 0;
};

/// Aggregates a sequence of closed call records. This is the single
/// source of truth for Aggregate: Collector::aggregate delegates here, and
/// the sharded engine calls it directly on the canonically-merged record
/// vector, so a merged multi-shard run reduces through the *same* code
/// (and the same floating-point accumulation order) as a one-shard run.
/// `T` is the latency bound for delay_in_T; records with t_request <
/// `warmup` are discarded.
[[nodiscard]] Aggregate aggregate_records(const std::vector<CallRecord>& records,
                                          sim::Duration T,
                                          sim::SimTime warmup = 0);

class Collector {
 public:
  /// Opens the record for an issued request.
  void open(std::uint64_t serial, traffic::CallId call, cell::CellId cellId,
            sim::SimTime now, bool is_handoff);

  /// Network observer: bills the message to its serial (if open).
  void on_message(const net::Message& msg);

  /// Bills one message of `kind` to `serial` directly — the sharded
  /// engine's path for applying foreign-shard billing logs at merge time.
  void bill(std::uint64_t serial, net::MsgKind kind);

  /// Closes the record at the decision instant. `borrowing_neighbors` /
  /// `searching_neighbors` are environment samples taken by the runner.
  void close(std::uint64_t serial, sim::SimTime now, proto::Outcome outcome,
             int attempts, int borrowing_neighbors, int searching_neighbors);

  /// Messages whose serial was 0 or unknown (not billable to any call).
  [[nodiscard]] std::uint64_t unattributed_messages() const noexcept {
    return unattributed_;
  }

  /// True iff this collector holds the record (open or closed) for
  /// `serial`. The sharded engine uses this to route billing for migrated
  /// calls: exactly one shard ever opens a given serial's record, so a
  /// message observed on a shard that does not know the serial must be
  /// billed through the foreign-billing log instead.
  [[nodiscard]] bool knows(std::uint64_t serial) const noexcept {
    return open_.count(serial) != 0 || closed_index_.count(serial) != 0;
  }

  [[nodiscard]] const std::vector<CallRecord>& records() const noexcept {
    return closed_;
  }
  /// Mutable access for post-run enrichment (the engines fill the
  /// deferred N_borrow / N_search neighbour samples in place).
  [[nodiscard]] std::vector<CallRecord>& mutable_records() noexcept {
    return closed_;
  }
  [[nodiscard]] std::size_t open_count() const noexcept { return open_.size(); }

  /// Streaming mode: the owner drains closed records periodically, so the
  /// serial -> closed-slot index (useless once records leave the
  /// collector, ~48 bytes/call) is not maintained. Late bills must then be
  /// routed by the owner's own tallies, never through bill().
  void set_streaming(bool on) noexcept { streaming_ = on; }
  [[nodiscard]] bool streaming() const noexcept { return streaming_; }

  /// Removes and returns the prefix of closed records with t_decision <
  /// `frontier`. Records close in non-decreasing decision order per
  /// collector, so this is a prefix splice. Streaming mode only.
  [[nodiscard]] std::vector<CallRecord> drain_closed_before(sim::SimTime frontier);

  /// Aggregates closed records; `T` is the latency bound for delay_in_T and
  /// `warmup` discards records whose request instant precedes it.
  [[nodiscard]] Aggregate aggregate(sim::Duration T, sim::SimTime warmup = 0) const;

 private:
  std::unordered_map<std::uint64_t, CallRecord> open_;
  std::vector<CallRecord> closed_;
  std::unordered_map<std::uint64_t, std::size_t> closed_index_;  // serial -> slot
  std::uint64_t unattributed_ = 0;
  bool streaming_ = false;
};

}  // namespace dca::metrics
