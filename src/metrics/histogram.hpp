// A fixed-width histogram for distribution reporting (acquisition delays,
// messages per call, attempts).
#pragma once

#include <cassert>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace dca::metrics {

class Histogram {
 public:
  /// Bins of width `bin_width` covering [0, bin_width * n_bins); larger
  /// samples land in the overflow bin.
  Histogram(double bin_width, std::size_t n_bins)
      : width_(bin_width), counts_(n_bins + 1, 0) {
    assert(bin_width > 0.0 && n_bins > 0);
  }

  void add(double x) noexcept {
    ++total_;
    if (x < 0.0) x = 0.0;
    auto idx = static_cast<std::size_t>(x / width_);
    if (idx >= counts_.size() - 1) idx = counts_.size() - 1;  // overflow bin
    ++counts_[idx];
  }

  [[nodiscard]] std::size_t n_bins() const noexcept { return counts_.size() - 1; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t bin_count(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return counts_.back(); }
  [[nodiscard]] double bin_low(std::size_t i) const {
    return width_ * static_cast<double>(i);
  }

  /// Exact merge of another histogram with identical geometry (same bin
  /// width and count); used to combine per-shard histograms. Addition of
  /// integer counts is order-independent, so the merged histogram is
  /// bit-identical to one filled by a single-shard run.
  void merge(const Histogram& other) {
    assert(width_ == other.width_ && counts_.size() == other.counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
    total_ += other.total_;
  }

  /// ASCII rendering for report output; `cols` = max bar width.
  [[nodiscard]] std::string render(int cols = 50) const {
    std::uint64_t peak = 1;
    for (const auto c : counts_) peak = c > peak ? c : peak;
    std::string out;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      const bool over = (i == counts_.size() - 1);
      char label[64];
      if (over) {
        std::snprintf(label, sizeof label, "%10.2f+   ", bin_low(i));
      } else {
        std::snprintf(label, sizeof label, "%10.2f    ", bin_low(i));
      }
      out += label;
      const auto bar = static_cast<std::size_t>(
          static_cast<double>(counts_[i]) / static_cast<double>(peak) * cols);
      out.append(bar, '#');
      out += "  " + std::to_string(counts_[i]) + "\n";
    }
    return out;
  }

 private:
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace dca::metrics
