// Availability accounting for the crash-recovery fault model.
//
// A cell is *unavailable* from the instant its MSS crashes until its
// post-restart resync round completes: the outage itself (crash -> restart)
// plus the resynchronization window (restart -> kResyncDone), during which
// the node answers peers but admits no new traffic. Both engines fill one
// Availability per run (the sharded engine sums per-shard instances; every
// field is a plain sum, the max a plain max, so the merge is associative).
#pragma once

#include <cstdint>

#include "sim/types.hpp"

namespace dca::metrics {

struct Availability {
  std::uint64_t crashes = 0;            // crash events observed
  std::uint64_t resyncs = 0;            // completed resync rounds
  std::uint64_t down_us = 0;            // Σ crash -> restart outage time
  std::uint64_t resync_us = 0;          // Σ restart -> resync-done time
  std::uint64_t resync_rounds = 0;      // Σ request waves over all resyncs
  std::uint64_t max_resync_rounds = 0;  // worst single resync, in waves

  void merge(const Availability& o) {
    crashes += o.crashes;
    resyncs += o.resyncs;
    down_us += o.down_us;
    resync_us += o.resync_us;
    resync_rounds += o.resync_rounds;
    if (o.max_resync_rounds > max_resync_rounds) {
      max_resync_rounds = o.max_resync_rounds;
    }
  }

  /// Fraction of total cell-time the system was available (1.0 when no
  /// crashes were configured). Resync time counts as unavailable.
  [[nodiscard]] double uptime_fraction(sim::SimTime duration,
                                       int n_cells) const {
    const double total =
        static_cast<double>(duration) * static_cast<double>(n_cells);
    if (total <= 0.0) return 1.0;
    const double unavailable =
        static_cast<double>(down_us) + static_cast<double>(resync_us);
    const double up = 1.0 - unavailable / total;
    return up < 0.0 ? 0.0 : up;
  }

  /// Mean restart -> resync-done latency in seconds (0 when no resyncs).
  [[nodiscard]] double mean_time_to_resync_s() const {
    if (resyncs == 0) return 0.0;
    return sim::to_seconds(static_cast<sim::Duration>(resync_us)) /
           static_cast<double>(resyncs);
  }

  friend bool operator==(const Availability&, const Availability&) = default;
};

}  // namespace dca::metrics
