#include "metrics/collector.hpp"

#include <cassert>

namespace dca::metrics {

void Collector::open(std::uint64_t serial, traffic::CallId call, cell::CellId cellId,
                     sim::SimTime now, bool is_handoff) {
  assert(serial != 0);
  CallRecord rec;
  rec.serial = serial;
  rec.call = call;
  rec.cellId = cellId;
  rec.is_handoff = is_handoff;
  rec.t_request = now;
  const auto [it, inserted] = open_.emplace(serial, rec);
  (void)it;
  assert(inserted && "serials are unique");
}

void Collector::on_message(const net::Message& msg) {
  if (msg.serial == 0) {
    ++unattributed_;
    return;
  }
  bill(msg.serial, msg.kind);
}

void Collector::bill(std::uint64_t serial, net::MsgKind kind) {
  const auto it = open_.find(serial);
  if (it == open_.end()) {
    // Billed to an already-closed acquisition (e.g. the end-of-call
    // RELEASE): attribute to the closed record if still reachable, else
    // count as unattributed. A linear search of closed_ would be O(n);
    // instead keep a side index from serial -> closed slot.
    const auto ci = closed_index_.find(serial);
    if (ci == closed_index_.end()) {
      ++unattributed_;
      return;
    }
    ++closed_[ci->second].messages[static_cast<std::size_t>(kind)];
    return;
  }
  ++it->second.messages[static_cast<std::size_t>(kind)];
}

void Collector::close(std::uint64_t serial, sim::SimTime now, proto::Outcome outcome,
                      int attempts, int borrowing_neighbors, int searching_neighbors) {
  const auto it = open_.find(serial);
  assert(it != open_.end());
  CallRecord rec = it->second;
  open_.erase(it);
  rec.t_decision = now;
  rec.outcome = outcome;
  rec.attempts = attempts;
  rec.borrowing_neighbors = borrowing_neighbors;
  rec.searching_neighbors = searching_neighbors;
  if (!streaming_) closed_index_.emplace(serial, closed_.size());
  closed_.push_back(rec);
}

std::vector<CallRecord> Collector::drain_closed_before(sim::SimTime frontier) {
  assert(streaming_ && "draining invalidates the closed index");
  auto split = closed_.begin();
  while (split != closed_.end() && split->t_decision < frontier) ++split;
  std::vector<CallRecord> out(std::make_move_iterator(closed_.begin()),
                              std::make_move_iterator(split));
  closed_.erase(closed_.begin(), split);
  return out;
}

Aggregate Collector::aggregate(sim::Duration T, sim::SimTime warmup) const {
  return aggregate_records(closed_, T, warmup);
}

bool AggregateBuilder::add_core(const CallRecord& r) {
  if (r.t_request < warmup_) return false;
  ++a_.offered;
  if (r.is_handoff) ++a_.handoff_offered;
  a_.attempts.add(r.attempts);
  switch (r.outcome) {
    case proto::Outcome::kAcquiredLocal:
      ++n_local_;
      break;
    case proto::Outcome::kAcquiredUpdate:
      ++n_update_;
      sum_attempts_update_ += r.attempts;
      break;
    case proto::Outcome::kAcquiredSearch:
      ++n_search_;
      sum_searching_ += r.searching_neighbors;
      ++n_search_samples_;
      break;
    case proto::Outcome::kBlockedNoChannel:
      ++a_.blocked;
      if (r.is_handoff) ++a_.handoff_failures;
      return true;
    case proto::Outcome::kBlockedStarved:
      ++a_.starved;
      if (r.is_handoff) ++a_.handoff_failures;
      return true;
    case proto::Outcome::kBlockedTimeout:
      ++a_.timed_out;
      if (r.is_handoff) ++a_.handoff_failures;
      return true;
    case proto::Outcome::kBlockedDown:
      ++a_.downed;
      if (r.is_handoff) ++a_.handoff_failures;
      return true;
  }
  ++a_.acquired;
  sum_borrowing_ += r.borrowing_neighbors;
  a_.delay_us.add(static_cast<double>(r.delay()));
  a_.delay_in_T.add(T_ > 0 ? static_cast<double>(r.delay()) / static_cast<double>(T_)
                           : 0.0);
  return true;
}

void AggregateBuilder::add_messages(std::uint32_t total, bool acquired) {
  a_.messages_per_call.add(static_cast<double>(total));
  if (acquired) a_.messages_acquired.add(static_cast<double>(total));
}

Aggregate AggregateBuilder::finish() const {
  Aggregate a = a_;
  if (a.acquired > 0) {
    const auto acq = static_cast<double>(a.acquired);
    a.xi1 = static_cast<double>(n_local_) / acq;
    a.xi2 = static_cast<double>(n_update_) / acq;
    a.xi3 = static_cast<double>(n_search_) / acq;
    a.mean_borrowing_neighbors = sum_borrowing_ / acq;
  }
  if (n_update_ > 0)
    a.mean_update_attempts =
        sum_attempts_update_ / static_cast<double>(n_update_);
  if (n_search_samples_ > 0)
    a.mean_searching_neighbors =
        sum_searching_ / static_cast<double>(n_search_samples_);
  return a;
}

Aggregate aggregate_records(const std::vector<CallRecord>& records,
                            sim::Duration T, sim::SimTime warmup) {
  AggregateBuilder b(T, warmup);
  for (const CallRecord& r : records) b.add(r);
  return b.finish();
}

}  // namespace dca::metrics
