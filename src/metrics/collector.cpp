#include "metrics/collector.hpp"

#include <cassert>

namespace dca::metrics {

void Collector::open(std::uint64_t serial, traffic::CallId call, cell::CellId cellId,
                     sim::SimTime now, bool is_handoff) {
  assert(serial != 0);
  CallRecord rec;
  rec.serial = serial;
  rec.call = call;
  rec.cellId = cellId;
  rec.is_handoff = is_handoff;
  rec.t_request = now;
  const auto [it, inserted] = open_.emplace(serial, rec);
  (void)it;
  assert(inserted && "serials are unique");
}

void Collector::on_message(const net::Message& msg) {
  if (msg.serial == 0) {
    ++unattributed_;
    return;
  }
  bill(msg.serial, msg.kind);
}

void Collector::bill(std::uint64_t serial, net::MsgKind kind) {
  const auto it = open_.find(serial);
  if (it == open_.end()) {
    // Billed to an already-closed acquisition (e.g. the end-of-call
    // RELEASE): attribute to the closed record if still reachable, else
    // count as unattributed. A linear search of closed_ would be O(n);
    // instead keep a side index from serial -> closed slot.
    const auto ci = closed_index_.find(serial);
    if (ci == closed_index_.end()) {
      ++unattributed_;
      return;
    }
    ++closed_[ci->second].messages[static_cast<std::size_t>(kind)];
    return;
  }
  ++it->second.messages[static_cast<std::size_t>(kind)];
}

void Collector::close(std::uint64_t serial, sim::SimTime now, proto::Outcome outcome,
                      int attempts, int borrowing_neighbors, int searching_neighbors) {
  const auto it = open_.find(serial);
  assert(it != open_.end());
  CallRecord rec = it->second;
  open_.erase(it);
  rec.t_decision = now;
  rec.outcome = outcome;
  rec.attempts = attempts;
  rec.borrowing_neighbors = borrowing_neighbors;
  rec.searching_neighbors = searching_neighbors;
  closed_index_.emplace(serial, closed_.size());
  closed_.push_back(rec);
}

Aggregate Collector::aggregate(sim::Duration T, sim::SimTime warmup) const {
  return aggregate_records(closed_, T, warmup);
}

Aggregate aggregate_records(const std::vector<CallRecord>& records,
                            sim::Duration T, sim::SimTime warmup) {
  Aggregate a;
  std::uint64_t n_local = 0, n_update = 0, n_search = 0;
  double sum_attempts_update = 0.0;
  double sum_borrowing = 0.0;
  double sum_searching = 0.0;
  std::uint64_t n_search_samples = 0;

  for (const CallRecord& r : records) {
    if (r.t_request < warmup) continue;
    ++a.offered;
    if (r.is_handoff) ++a.handoff_offered;
    a.attempts.add(r.attempts);
    a.messages_per_call.add(static_cast<double>(r.total_messages()));
    switch (r.outcome) {
      case proto::Outcome::kAcquiredLocal:
        ++n_local;
        break;
      case proto::Outcome::kAcquiredUpdate:
        ++n_update;
        sum_attempts_update += r.attempts;
        break;
      case proto::Outcome::kAcquiredSearch:
        ++n_search;
        sum_searching += r.searching_neighbors;
        ++n_search_samples;
        break;
      case proto::Outcome::kBlockedNoChannel:
        ++a.blocked;
        if (r.is_handoff) ++a.handoff_failures;
        continue;
      case proto::Outcome::kBlockedStarved:
        ++a.starved;
        if (r.is_handoff) ++a.handoff_failures;
        continue;
      case proto::Outcome::kBlockedTimeout:
        ++a.timed_out;
        if (r.is_handoff) ++a.handoff_failures;
        continue;
    }
    ++a.acquired;
    sum_borrowing += r.borrowing_neighbors;
    a.delay_us.add(static_cast<double>(r.delay()));
    a.delay_in_T.add(T > 0 ? static_cast<double>(r.delay()) / static_cast<double>(T)
                           : 0.0);
    a.messages_acquired.add(static_cast<double>(r.total_messages()));
  }

  if (a.acquired > 0) {
    const auto acq = static_cast<double>(a.acquired);
    a.xi1 = static_cast<double>(n_local) / acq;
    a.xi2 = static_cast<double>(n_update) / acq;
    a.xi3 = static_cast<double>(n_search) / acq;
    a.mean_borrowing_neighbors = sum_borrowing / acq;
  }
  if (n_update > 0)
    a.mean_update_attempts = sum_attempts_update / static_cast<double>(n_update);
  if (n_search_samples > 0)
    a.mean_searching_neighbors =
        sum_searching / static_cast<double>(n_search_samples);
  return a;
}

}  // namespace dca::metrics
