// Plain-text table rendering for the bench binaries: aligned console
// tables (the formats the paper's Tables 1–3 are printed in) and CSV for
// downstream plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dca::metrics {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds one row; must match the header arity.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);

  /// Renders an aligned, pipe-separated table with a header rule.
  [[nodiscard]] std::string render() const;

  /// Renders RFC-4180-ish CSV (fields containing commas/quotes quoted).
  [[nodiscard]] std::string csv() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dca::metrics
