// Streaming summary statistics and percentile helpers.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>
// (jain_index at the bottom of this header also operates on samples)

namespace dca::metrics {

/// Accumulates count/mean/variance online (Welford) plus min/max. Cheap
/// enough to keep one per metric per experiment point.
class Summary {
 public:
  void add(double x) noexcept {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept {
    return mean_ * static_cast<double>(n_);
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Summary that additionally retains samples for exact percentiles.
class SampledSummary {
 public:
  void add(double x) {
    summary_.add(x);
    samples_.push_back(x);
    sorted_ = false;
  }

  [[nodiscard]] const Summary& stats() const noexcept { return summary_; }
  [[nodiscard]] std::uint64_t count() const noexcept { return summary_.count(); }
  [[nodiscard]] double mean() const noexcept { return summary_.mean(); }
  [[nodiscard]] double min() const noexcept { return summary_.min(); }
  [[nodiscard]] double max() const noexcept { return summary_.max(); }

  /// Exact percentile (nearest-rank). p in [0, 100].
  [[nodiscard]] double percentile(double p) {
    if (samples_.empty()) return 0.0;
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
    const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples_[lo] + frac * (samples_[hi] - samples_[lo]);
  }

 private:
  Summary summary_;
  std::vector<double> samples_;
  bool sorted_ = true;
};

/// Jain's fairness index of a sample: (Σx)² / (n·Σx²), in (0, 1]; 1 means
/// perfectly equal shares, 1/n means one participant has everything.
/// Returns 1.0 for empty or all-zero input (vacuously fair).
[[nodiscard]] inline double jain_index(const std::vector<double>& xs) {
  if (xs.empty()) return 1.0;
  double sum = 0.0, sumsq = 0.0;
  for (const double x : xs) {
    sum += x;
    sumsq += x * x;
  }
  if (sumsq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(xs.size()) * sumsq);
}

}  // namespace dca::metrics
