#include "core/adaptive.hpp"

#include <cassert>
#include <iterator>
#include <limits>

namespace dca::core {

using cell::CellId;
using cell::ChannelId;
using cell::ChannelSet;
using cell::kNoCell;
using cell::kNoChannel;
using proto::Outcome;

AdaptiveNode::AdaptiveNode(const proto::NodeContext& ctx, const AdaptiveParams& params)
    : AllocatorNode(ctx),
      params_(params),
      nfc_(params.window),
      borrowed_(ctx.plan->n_channels()) {
  // Let the allocation policy rewrite the hysteresis pair before the
  // invariants are enforced (tuned-threshold plugs in here); a policy
  // returning a bad pair trips the same assertions as a bad config.
  const auto th = policy().thresholds(
      {params_.theta_low, params_.theta_high});
  params_.theta_low = th.low;
  params_.theta_high = th.high;
  params_.check();
  known_use_.assign(nbr_count(), ChannelSet(spectrum_size()));
  pending_grants_.assign(nbr_count(), ChannelSet(spectrum_size()));
  claim_count_.assign(static_cast<std::size_t>(spectrum_size()), 0);
  interfered_cache_ = ChannelSet(spectrum_size());
}

// ---------------------------------------------------------------------------
// Incremental interference cache
// ---------------------------------------------------------------------------

void AdaptiveNode::bump_claim(ChannelId ch, int delta) {
  std::uint16_t& n = claim_count_[static_cast<std::size_t>(ch)];
  if (delta > 0) {
    if (n++ == 0) interfered_cache_.insert(ch);
  } else {
    assert(n > 0);
    if (--n == 0) interfered_cache_.erase(ch);
  }
}

void AdaptiveNode::set_known_use(CellId j, ChannelId ch, bool on) {
  // Writes about non-neighbours (harmless, and possible via broadcast
  // paths) used to land in write-only per-cell slots; with rank-indexed
  // storage they are dropped outright — nothing ever read them, because
  // interfered() and Best() only consult IN_i members.
  const int r = nbr_rank(j);
  if (r < 0) return;
  ChannelSet& s = known_use_[static_cast<std::size_t>(r)];
  if (s.contains(ch) == on) return;
  if (on) {
    s.insert(ch);
  } else {
    s.erase(ch);
  }
  bump_claim(ch, on ? 1 : -1);
}

void AdaptiveNode::set_pending_grant(CellId j, ChannelId ch, bool on) {
  const int r = nbr_rank(j);
  if (r < 0) return;
  ChannelSet& s = pending_grants_[static_cast<std::size_t>(r)];
  if (s.contains(ch) == on) return;
  if (on) {
    s.insert(ch);
  } else {
    s.erase(ch);
  }
  bump_claim(ch, on ? 1 : -1);
}

void AdaptiveNode::assign_known_use(CellId j, const ChannelSet& nu) {
  const int r = nbr_rank(j);
  if (r < 0) return;
  ChannelSet& s = known_use_[static_cast<std::size_t>(r)];
  const ChannelSet added = nu - s;
  const ChannelSet removed = s - nu;
  for (ChannelId c = added.first(); c != kNoChannel; c = added.next_after(c))
    bump_claim(c, +1);
  for (ChannelId c = removed.first(); c != kNoChannel;
       c = removed.next_after(c))
    bump_claim(c, -1);
  s = nu;
}

int AdaptiveNode::free_primary_count() const {
  return (primary() - use_ - interfered()).size();
}

ChannelId AdaptiveNode::free_primary() const {
  return (primary() - use_ - interfered()).first();
}

// ---------------------------------------------------------------------------
// Fig. 2: Request_Channel as a state machine
// ---------------------------------------------------------------------------

void AdaptiveNode::start_request(std::uint64_t serial) {
  assert(!req_.has_value());
  Request r;
  r.serial = serial;
  r.ts = clock_.tick();
  req_ = r;
  proceed();
}

void AdaptiveNode::proceed() {
  assert(req_.has_value());

  // waiting/pending gate: while a neighbour's search decision is pending we
  // must not perform a zero-message acquisition (the searcher could pick
  // the same channel). The paper applies this gate in local mode; we apply
  // it in borrowing mode too — its Theorem 1 argument needs it there as
  // well (DESIGN.md note on deviations).
  if (!awaiting_.empty()) {
    req_->phase = Phase::kWaitQuiet;
    arm_timer(resilience().request_timeout, [this]() { on_phase_timeout(); });
    return;
  }

  if (mode_ == 0) {
    const ChannelId r = free_primary();
    if (r != kNoChannel) {
      finish_request(r, 0, Outcome::kAcquiredLocal);
      return;
    }
    // No free primary: with s = 0 the predictor is below any θ_l >= 1, so
    // check_mode() switches us to borrowing and announces it.
    check_mode();
    if (mode_ == 0) {
      // Defensive: never strand a request in local mode without primaries.
      mode_ = 1;
      ++to_borrowing_;
      ++change_wave_;
      net::Message cm;
      cm.kind = net::MsgKind::kChangeMode;
      cm.mode = 1;
      cm.wave = change_wave_;
      cm.serial = req_->serial;
      send_to_interference(cm);
    }
    req_->phase = Phase::kWaitStatus;
    req_->wave = change_wave_;
    req_->statuses = 0;
    arm_timer(resilience().request_timeout, [this]() { on_phase_timeout(); });
    if (interference().empty()) proceed();  // nobody to hear from
    return;
  }

  // Borrowing mode: primaries still come first and instantly.
  const ChannelId r = free_primary();
  if (r != kNoChannel) {
    finish_request(r, 1, Outcome::kAcquiredLocal);
    return;
  }

  ++req_->rounds;
  if (req_->rounds <= params_.alpha) {
    const CellId lender = best_lender();
    if (lender != kNoCell) {
      const ChannelId ch = pick_borrow_channel(lender);
      if (ch != kNoChannel) {
        begin_update_round(ch);
        return;
      }
    }
  }
  begin_search_round();
}

void AdaptiveNode::begin_update_round(ChannelId ch) {
  assert(req_.has_value());
  assert(!interference().empty());
  mode_ = 2;
  req_->phase = Phase::kUpdateRound;
  req_->channel = ch;
  req_->responses = 0;
  req_->rejected = false;
  req_->granters.clear();

  arm_timer(resilience().request_timeout, [this]() { on_phase_timeout(); });

  net::Message msg;
  msg.kind = net::MsgKind::kRequest;
  msg.req_type = net::ReqType::kUpdate;
  msg.serial = req_->serial;
  msg.channel = ch;
  msg.ts = req_->ts;
  // Round tag, echoed by every grant/reject: a straggler from a timed-out
  // earlier round — which may have asked for the SAME channel — must not
  // be miscounted into the current round.
  msg.wave = static_cast<std::uint64_t>(req_->rounds);
  send_to_interference(msg);
}

void AdaptiveNode::begin_search_round() {
  assert(req_.has_value());
  mode_ = 3;
  req_->phase = Phase::kSearchRound;
  req_->channel = kNoChannel;
  req_->responses = 0;
  trace_search_start(req_->serial, req_->ts);
  arm_timer(resilience().request_timeout, [this]() { on_phase_timeout(); });

  net::Message msg;
  msg.kind = net::MsgKind::kRequest;
  msg.req_type = net::ReqType::kSearch;
  msg.serial = req_->serial;
  msg.ts = req_->ts;
  send_to_interference(msg);

  if (interference().empty()) {
    const ChannelSet freeSet = ChannelSet::all(spectrum_size()) - use_;
    conclude_search_round(freeSet.first());
  }
}

void AdaptiveNode::conclude_update_round() {
  assert(req_.has_value() && req_->phase == Phase::kUpdateRound);
  if (!req_->rejected) {
    finish_request(req_->channel, 2, Outcome::kAcquiredUpdate);
    return;
  }
  // Rejected: fall back to borrowing-idle, return the grants we collected,
  // and retry (Fig. 2's recursive Request_Channel call).
  mode_ = 1;
  for (const CellId j : req_->granters) {
    net::Message rel;
    rel.kind = net::MsgKind::kRelease;
    rel.serial = req_->serial;
    rel.channel = req_->channel;
    rel.from = id();
    rel.to = j;
    env().send(rel);
  }
  req_->granters.clear();
  req_->channel = kNoChannel;
  proceed();
}

void AdaptiveNode::conclude_search_round(ChannelId r) {
  assert(req_.has_value() && req_->phase == Phase::kSearchRound);
  trace_search_decide(req_->serial, r, r != kNoChannel, false);
  finish_request(r, 3,
                 r != kNoChannel ? Outcome::kAcquiredSearch : Outcome::kBlockedNoChannel);
}

void AdaptiveNode::on_phase_timeout() {
  assert(req_.has_value());
  trace_timeout(req_->serial, static_cast<int>(req_->phase));
  switch (req_->phase) {
    case Phase::kWaitQuiet:
      // Nothing was sent on behalf of this request yet: fail it cleanly.
      // awaiting_ keeps its entries — the discipline must hold for the
      // next request, and every answered searcher still announces
      // eventually (even aborting ones do).
      finish_request(kNoChannel, mode_ == 0 ? 0 : 1, Outcome::kBlockedTimeout);
      break;
    case Phase::kWaitStatus:
      // Proceed with the statuses that did arrive. Stale knowledge costs
      // extra rejects at worst; the grant handshake still arbitrates.
      proceed();
      break;
    case Phase::kUpdateRound: {
      // Abort the round: release the channel at EVERY neighbour — a grant
      // may still be in flight, and per-link FIFO orders our REQUEST
      // before this RELEASE, so no pending grant leaks. Then fall back to
      // borrowing-idle and retry; after alpha rounds proceed() degrades
      // to the search round (the paper's mode-3 fallback).
      net::Message rel;
      rel.kind = net::MsgKind::kRelease;
      rel.serial = req_->serial;
      rel.channel = req_->channel;
      send_to_interference(rel);
      req_->granters.clear();
      req_->channel = kNoChannel;
      mode_ = 1;
      proceed();
      break;
    }
    case Phase::kSearchRound:
      // Give up on the whole request. finish_request(prev_mode = 3) sends
      // the failure announcement that unblocks everyone waiting on us.
      trace_search_decide(req_->serial, kNoChannel, false, true);
      finish_request(kNoChannel, 3, Outcome::kBlockedTimeout);
      break;
  }
}

// ---------------------------------------------------------------------------
// Fig. 3: acquire()
// ---------------------------------------------------------------------------

void AdaptiveNode::finish_request(ChannelId r, int prev_mode, Outcome how) {
  assert(req_.has_value());
  disarm_timer();
  const Request done = *req_;
  req_.reset();

  if (r != kNoChannel) {
    use_.insert(r);
    if (!plan().is_primary(id(), r)) borrowed_.insert(r);
  }

  switch (prev_mode) {
    case 0:
    case 1:
      // Local acquisition: only neighbours in borrowing mode care.
      if (r != kNoChannel) {
        net::Message acq;
        acq.kind = net::MsgKind::kAcquisition;
        acq.acq_type = net::AcqType::kNonSearch;
        acq.serial = done.serial;
        acq.channel = r;
        acq.from = id();
        for (const CellId j : update_set_) {
          acq.to = j;
          env().send(acq);
        }
      }
      break;
    case 2:
      // Every neighbour granted explicitly; the grants already updated
      // their bookkeeping, no announcement needed.
      mode_ = 1;
      break;
    case 3: {
      // The search announcement goes out even on failure (r == kNoChannel):
      // neighbours that answered us decrement their waiting counters on it.
      net::Message acq;
      acq.kind = net::MsgKind::kAcquisition;
      acq.acq_type = net::AcqType::kSearch;
      acq.serial = done.serial;
      acq.channel = r;
      send_to_interference(acq);
      mode_ = 1;
      break;
    }
    default:
      assert(false);
  }

  drain_deferq();
  if (prev_mode == 0) check_mode();

  if (r != kNoChannel) {
    complete_acquired(done.serial, r, how, done.rounds);
  } else {
    complete_blocked(done.serial, how, done.rounds);
  }
}

void AdaptiveNode::drain_deferq() {
  while (!defer_.empty()) {
    const DeferredReq d = defer_.front();
    defer_.pop_front();
    if (d.type == net::ReqType::kUpdate) {
      if (use_.contains(d.channel)) {
        send_reject(d.from, d.serial, d.wave, d.channel);
      } else {
        send_grant(d.from, d.serial, d.wave, d.channel);
      }
    } else {
      awaiting_.insert(d.from);
      send_use_reply(d.from, d.serial, net::ResType::kSearchReply);
    }
  }
}

// ---------------------------------------------------------------------------
// Fig. 4: Receive_Request
// ---------------------------------------------------------------------------

void AdaptiveNode::handle_request(const net::Message& msg) {
  if (msg.req_type == net::ReqType::kUpdate) {
    handle_update_request(msg);
  } else {
    handle_search_request(msg);
  }
}

void AdaptiveNode::handle_update_request(const net::Message& msg) {
  const ChannelId q = msg.channel;
  switch (mode_) {
    case 0:
    case 1:
      if (use_.contains(q)) {
        send_reject(msg.from, msg.serial, msg.wave, q);
      } else {
        send_grant(msg.from, msg.serial, msg.wave, q);
        check_mode();
      }
      break;
    case 2: {
      assert(req_.has_value());
      const bool same_channel = (q == req_->channel);
      const bool ours_older = req_->ts < msg.ts;
      const bool reject_conflict =
          params_.strict_fig4 ? ours_older : (same_channel && ours_older);
      if (use_.contains(q) || reject_conflict) {
        send_reject(msg.from, msg.serial, msg.wave, q);
      } else {
        send_grant(msg.from, msg.serial, msg.wave, q);
        check_mode();
      }
      break;
    }
    case 3:
      assert(req_.has_value());
      if (req_->ts < msg.ts) {
        defer_.push_back(DeferredReq{net::ReqType::kUpdate, q, msg.ts, msg.from,
                                     msg.serial, msg.wave});
      } else if (use_.contains(q)) {
        // The paper's Fig. 4 case 3 grants older requests unconditionally,
        // but the requester's information may be stale by up to 2T: if q
        // is in OUR use set the grant would license co-channel
        // interference (found by the randomized-scenario fuzz suite; see
        // DESIGN.md faithfulness note 11).
        send_reject(msg.from, msg.serial, msg.wave, q);
      } else {
        // An older update request proceeds even against our search; the
        // grant enters our interfered set so our selection avoids q.
        send_grant(msg.from, msg.serial, msg.wave, q);
        check_mode();
      }
      break;
    default:
      assert(false);
  }
}

void AdaptiveNode::handle_search_request(const net::Message& msg) {
  // Defer iff our own OLDER search must finish first (Fig. 4 case 3).
  //
  // Note on the paper's case 0 (pending_i): Fig. 4 also defers younger
  // searches while a local request is parked. Combined with the fact that
  // a request can become parked AFTER having answered younger searches
  // (replies in modes 2/3 are unconditional), that rule creates a wait
  // cycle — parked node waits for a younger searcher's announcement while
  // (transitively) withholding the reply that searcher needs — and the
  // fuzz suite drives the whole system into deadlock through it. A parked
  // request therefore answers searches immediately: safety is preserved
  // because the park gate resumes only after every answered searcher has
  // announced its pick (processed before the resume), and searches are
  // then only ever deferred by strictly older searches, which keeps the
  // wait-for graph acyclic. See DESIGN.md note 9.
  if (mode_ == 3 && req_.has_value() && req_->ts < msg.ts) {
    defer_.push_back(
        DeferredReq{net::ReqType::kSearch, kNoChannel, msg.ts, msg.from, msg.serial});
    return;
  }
  awaiting_.insert(msg.from);
  send_use_reply(msg.from, msg.serial, net::ResType::kSearchReply);
}

// ---------------------------------------------------------------------------
// Fig. 5: Receive_Change_Mode
// ---------------------------------------------------------------------------

void AdaptiveNode::handle_change_mode(const net::Message& msg) {
  if (msg.mode == 0) {
    update_set_.erase(msg.from);
    return;
  }
  update_set_.insert(msg.from);
  // The switching node is waiting for everyone's Use set; echo its wave.
  net::Message resp;
  resp.kind = net::MsgKind::kResponse;
  resp.res_type = net::ResType::kStatus;
  resp.serial = msg.serial;
  resp.wave = msg.wave;
  resp.from = id();
  resp.to = msg.from;
  resp.use = use_;
  env().send(resp);
}

// ---------------------------------------------------------------------------
// Fig. 6: check_mode()
// ---------------------------------------------------------------------------

void AdaptiveNode::check_mode() {
  const int s = free_primary_count();
  nfc_.record(env().now(), s);
  const double next = nfc_.predict(env().now(), round_trip());

  if (mode_ == 0 && next < static_cast<double>(params_.theta_low)) {
    mode_ = 1;
    ++to_borrowing_;
    ++change_wave_;
    net::Message cm;
    cm.kind = net::MsgKind::kChangeMode;
    cm.mode = 1;
    cm.wave = change_wave_;
    cm.serial = req_.has_value() ? req_->serial : 0;
    send_to_interference(cm);
  } else if (mode_ == 1 && next >= static_cast<double>(params_.theta_high)) {
    mode_ = 0;
    ++to_local_;
    net::Message cm;
    cm.kind = net::MsgKind::kChangeMode;
    cm.mode = 0;
    cm.serial = req_.has_value() ? req_->serial : 0;
    send_to_interference(cm);
  }
}

// ---------------------------------------------------------------------------
// Figs. 7, 8: Receive_Acquisition / Receive_Release
// ---------------------------------------------------------------------------

void AdaptiveNode::handle_acquisition(const net::Message& msg) {
  if (msg.channel != kNoChannel) {
    set_known_use(msg.from, msg.channel, true);
    set_pending_grant(msg.from, msg.channel, false);
    check_mode();
  }
  if (msg.acq_type == net::AcqType::kSearch) {
    const auto it = awaiting_.find(msg.from);
    if (it != awaiting_.end()) {
      awaiting_.erase(it);
    } else {
      // Announcement from a searcher we never answered: only reachable
      // when it timeout-aborted while its request sat in our DeferQ.
      // Drop the stale entry — answering now would insert the searcher
      // into awaiting_ with no further announcement ever coming.
      for (auto d = defer_.begin(); d != defer_.end();) {
        d = (d->type == net::ReqType::kSearch && d->from == msg.from &&
             d->serial == msg.serial)
                ? defer_.erase(d)
                : std::next(d);
      }
    }
    resume_if_quiet();
  }
}

void AdaptiveNode::handle_release(const net::Message& msg) {
  set_known_use(msg.from, msg.channel, false);
  set_pending_grant(msg.from, msg.channel, false);
  check_mode();
  maybe_repack();  // one of our primaries may just have become free
}

void AdaptiveNode::resume_if_quiet() {
  if (awaiting_.empty() && req_.has_value() && req_->phase == Phase::kWaitQuiet) {
    proceed();
  }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

void AdaptiveNode::handle_response(const net::Message& msg) {
  switch (msg.res_type) {
    case net::ResType::kStatus:
      // Fresh snapshot of the sender's Use set (grants we issued are
      // tracked separately in pending_grants_ and survive the overwrite).
      assign_known_use(msg.from, msg.use);
      if (req_.has_value() && req_->phase == Phase::kWaitStatus &&
          msg.wave == req_->wave) {
        ++req_->statuses;
        if (req_->statuses == static_cast<int>(interference().size())) proceed();
      }
      break;

    case net::ResType::kGrant:
    case net::ResType::kReject:
      if (!req_.has_value() || req_->phase != Phase::kUpdateRound ||
          msg.serial != req_->serial || msg.channel != req_->channel ||
          msg.wave != static_cast<std::uint64_t>(req_->rounds)) {
        return;  // response to an attempt (or round) we already abandoned
      }
      ++req_->responses;
      if (msg.res_type == net::ResType::kGrant) {
        req_->granters.push_back(msg.from);
      } else {
        req_->rejected = true;
      }
      if (req_->responses == static_cast<int>(interference().size())) {
        conclude_update_round();
      }
      break;

    case net::ResType::kSearchReply:
      if (!req_.has_value() || req_->phase != Phase::kSearchRound ||
          msg.serial != req_->serial) {
        return;
      }
      assign_known_use(msg.from, msg.use);
      ++req_->responses;
      if (req_->responses == static_cast<int>(interference().size())) {
        const ChannelSet freeSet =
            cell::ChannelSet::all(spectrum_size()) - use_ - interfered();
        conclude_search_round(freeSet.first());
      }
      break;

    default:
      assert(false && "unexpected response type for adaptive scheme");
  }
}

// ---------------------------------------------------------------------------
// Fig. 10: Best()
// ---------------------------------------------------------------------------

cell::CellId AdaptiveNode::best_lender() const {
  const ChannelSet freeSet = ChannelSet::all(spectrum_size()) - use_ - interfered();
  CellId min_id = kNoCell;
  int min_bn = std::numeric_limits<int>::max();
  std::vector<CellId> eligible;
  const auto nbrs = interference();
  for (std::size_t r = 0; r < nbrs.size(); ++r) {
    const CellId j = nbrs[r];
    if (update_set_.contains(j)) continue;  // j itself is borrowing
    if ((freeSet - known_use_[r]).empty()) continue;
    if (!params_.use_best_heuristic) {
      eligible.push_back(j);
      continue;
    }
    // |UpdateS_i ∩ IN_j|: borrowing neighbours of ours that also interfere
    // with the candidate lender — fewer means less contention on its
    // channels.
    int common_bn = 0;
    for (const CellId u : update_set_) {
      if (grid().interferes(u, j)) ++common_bn;
    }
    if (common_bn < min_bn) {
      min_bn = common_bn;
      min_id = j;
    }
  }
  if (!params_.use_best_heuristic && !eligible.empty()) {
    return eligible[env().rng(id()).pick_index(eligible.size())];
  }
  return min_id;
}

cell::ChannelId AdaptiveNode::pick_borrow_channel(CellId lender) const {
  const ChannelSet freeSet = ChannelSet::all(spectrum_size()) - use_ - interfered();
  const int lender_rank = nbr_rank(lender);
  assert(lender_rank >= 0 && "borrow target must be an interference neighbour");
  const ChannelSet lendable =
      freeSet - known_use_[static_cast<std::size_t>(lender_rank)];
  if (lendable.empty()) return kNoChannel;
  // Prefer borrowing one of the lender's own primaries; randomize within
  // the preferred tier so concurrent borrowers spread across channels.
  const ChannelSet preferred = lendable & plan().primary(lender);
  const ChannelSet& tier = preferred.empty() ? lendable : preferred;
  const auto members = tier.to_vector();
  return members[env().rng(id()).pick_index(members.size())];
}

// ---------------------------------------------------------------------------
// Fig. 9: Deallocate
// ---------------------------------------------------------------------------

void AdaptiveNode::on_release(ChannelId ch, std::uint64_t serial) {
  const bool was_borrowed = borrowed_.contains(ch);
  borrowed_.erase(ch);

  net::Message rel;
  rel.kind = net::MsgKind::kRelease;
  rel.serial = serial;
  rel.channel = ch;
  if (mode_ != 0 || was_borrowed) {
    // Fig. 9's borrowing branch; extended to borrowed channels released
    // after a return to local mode, which must reach the whole region or
    // the channel would stay marked interfered forever (DESIGN.md).
    send_to_interference(rel);
  } else {
    rel.from = id();
    for (const CellId j : update_set_) {
      rel.to = j;
      env().send(rel);
    }
  }
  if (mode_ != 0) check_mode();
  maybe_repack();  // our own release may have freed a primary
}

// ---------------------------------------------------------------------------
// Extension: dynamic channel reassignment (Cox & Reudink [1])
// ---------------------------------------------------------------------------

void AdaptiveNode::maybe_repack() {
  if (!params_.repack) return;
  // Same safety gate as a silent primary acquisition: never while a
  // neighbour's search decision is outstanding, and keep it out of the
  // middle of our own request to avoid mutating Use under a live round.
  if (!awaiting_.empty() || req_.has_value()) return;

  while (true) {
    const ChannelId borrowed = borrowed_.first();
    if (borrowed == kNoChannel) return;
    const ChannelId p = free_primary();
    if (p == kNoChannel) return;

    // Migrate the call: the primary goes into service before the borrowed
    // channel leaves it, and the environment validates the swap.
    use_.insert(p);
    env().notify_reassigned(id(), borrowed, p);
    use_.erase(borrowed);
    borrowed_.erase(borrowed);
    ++repacks_;

    // Announce like the separate operations they replace: a local primary
    // acquisition (subscribers only) and a borrowed-channel release
    // (whole region).
    net::Message acq;
    acq.kind = net::MsgKind::kAcquisition;
    acq.acq_type = net::AcqType::kNonSearch;
    acq.channel = p;
    acq.from = id();
    for (const CellId j : update_set_) {
      acq.to = j;
      env().send(acq);
    }
    net::Message rel;
    rel.kind = net::MsgKind::kRelease;
    rel.channel = borrowed;
    send_to_interference(rel);
    check_mode();
  }
}

// ---------------------------------------------------------------------------
// Helpers and dispatch
// ---------------------------------------------------------------------------

void AdaptiveNode::send_grant(CellId to, std::uint64_t serial, std::uint64_t wave,
                              ChannelId r) {
  // The paper updates both I_i and U_j at grant time; the grant is also
  // remembered as pending so a later status snapshot cannot erase it while
  // the borrower's confirmation is in flight.
  set_known_use(to, r, true);
  set_pending_grant(to, r, true);
  net::Message resp;
  resp.kind = net::MsgKind::kResponse;
  resp.res_type = net::ResType::kGrant;
  resp.serial = serial;
  resp.wave = wave;
  resp.channel = r;
  resp.from = id();
  resp.to = to;
  env().send(resp);
}

void AdaptiveNode::send_reject(CellId to, std::uint64_t serial, std::uint64_t wave,
                               ChannelId r) {
  net::Message resp;
  resp.kind = net::MsgKind::kResponse;
  resp.res_type = net::ResType::kReject;
  resp.serial = serial;
  resp.wave = wave;
  resp.channel = r;
  resp.from = id();
  resp.to = to;
  env().send(resp);
}

void AdaptiveNode::send_use_reply(CellId to, std::uint64_t serial, net::ResType type) {
  net::Message resp;
  resp.kind = net::MsgKind::kResponse;
  resp.res_type = type;
  resp.serial = serial;
  resp.from = id();
  resp.to = to;
  resp.use = use_;
  env().send(resp);
}

// ---------------------------------------------------------------------------
// Crash recovery
// ---------------------------------------------------------------------------

void AdaptiveNode::on_crash() {
  req_.reset();
  update_set_.clear();
  defer_.clear();
  awaiting_.clear();
  for (std::size_t r = 0; r < known_use_.size(); ++r) {
    known_use_[r].clear();
    pending_grants_[r].clear();
  }
  // Wholesale cache reset is cheaper than unwinding claim by claim.
  claim_count_.assign(static_cast<std::size_t>(spectrum_size()), 0);
  interfered_cache_ = ChannelSet(spectrum_size());
  borrowed_.clear();
  nfc_.reset();
  // Cold restart begins in local mode; neighbours drop us from their
  // UpdateS when our kResyncReq arrives, and the resync replies rebuild
  // ours. change_wave_ stays monotonic (like the Lamport clock) so stale
  // pre-crash statuses can never be miscounted into a post-restart wave.
  mode_ = 0;
}

void AdaptiveNode::on_peer_restart(CellId j) {
  update_set_.erase(j);
  awaiting_.erase(j);  // erases every entry of j
  for (auto it = defer_.begin(); it != defer_.end();) {
    it = it->from == j ? defer_.erase(it) : std::next(it);
  }
  if (const int r = nbr_rank(j); r >= 0) {
    assign_known_use(j, ChannelSet(spectrum_size()));
    const ChannelSet pg = pending_grants_[static_cast<std::size_t>(r)];
    for (ChannelId c = pg.first(); c != kNoChannel; c = pg.next_after(c)) {
      set_pending_grant(j, c, false);
    }
  }
  // A grant, status, or reply j issued before crashing is void. Resolve
  // any open phase exactly as its timeout would; a parked request only
  // needs the resume check now that j's awaiting entries are gone.
  if (req_.has_value()) {
    if (req_->phase == Phase::kWaitQuiet) {
      resume_if_quiet();
    } else {
      disarm_timer();
      on_phase_timeout();
    }
  }
}

void AdaptiveNode::fill_resync_reply(net::Message& m) const {
  m.mode = mode_ == 0 ? 0 : 1;
}

void AdaptiveNode::apply_resync_reply(const net::Message& msg) {
  assign_known_use(msg.from, msg.use);
  if (msg.mode != 0) update_set_.insert(msg.from);
}

void AdaptiveNode::on_resync_done() {
  // Re-enter the mode machinery with the freshly learned region state;
  // announces the switch to borrowing if the region is already congested.
  check_mode();
}

void AdaptiveNode::on_message(const net::Message& msg) {
  if (handle_resync(msg)) return;
  clock_.witness(msg.ts);
  switch (msg.kind) {
    case net::MsgKind::kRequest:
      handle_request(msg);
      break;
    case net::MsgKind::kResponse:
      handle_response(msg);
      break;
    case net::MsgKind::kChangeMode:
      handle_change_mode(msg);
      break;
    case net::MsgKind::kAcquisition:
      handle_acquisition(msg);
      break;
    case net::MsgKind::kRelease:
      handle_release(msg);
      break;
  }
}

}  // namespace dca::core
