// The paper's adaptive distributed dynamic channel allocation scheme
// (Sections 3.1–3.5, Figs. 2–10), as an event-driven state machine.
//
// Mode variable (paper's mode_i):
//   0 — local mode: requests are served from the primary set with zero
//       latency and no handshake; ACQUISITION/RELEASE notifications go
//       only to neighbours currently in borrowing mode (UpdateS_i).
//   1 — borrowing mode, no request in flight.
//   2 — borrowing mode, an update-style borrow round in flight.
//   3 — borrowing mode, a search round in flight.
//
// Mode 0 <-> 1 transitions are driven by check_mode(): the NFC linear
// predictor against hysteresis thresholds θ_l < θ_h, announced to the
// interference region with CHANGE_MODE so neighbours maintain UpdateS.
//
// A request is served as (Fig. 2):
//   local mode:  free primary? take it instantly. Otherwise switch to
//                borrowing, collect fresh Use-set statuses from IN_i, retry.
//   borrowing:   free primary? take it instantly. Otherwise up to α
//                update-style borrow rounds — pick a lender with Best()
//                (fewest borrowing neighbours), ask ALL of IN_i for the
//                chosen channel, unanimous grants required. After α failed
//                rounds (or no viable lender/channel), one search round:
//                timestamp-sequentialized exhaustive query that finds a
//                free channel whenever one exists, else the call drops.
//
// Sequentialization machinery shared with the search baseline: a node that
// answers someone's search increments `waiting` and must not serve a LOCAL
// (zero-message) acquisition until the searcher announces its decision
// (ACQUISITION, sent even on failure); deferred requests park in DeferQ
// and are answered when the local request completes (Fig. 3's drain).
//
// Deviations from the paper's figures (all argued in DESIGN.md §2):
//   * I_i is derived from per-neighbour known-use sets plus
//     pending-grant sets, so status snapshots cannot erase a grant whose
//     confirmation is still in flight (note 5);
//   * the waiting/pending gate applies to local acquisitions in borrowing
//     mode too, closing a race the paper's Fig. 2 leaves open (its
//     Theorem 1 argument assumes it);
//   * a *borrowed* channel's end-of-call RELEASE always goes to the whole
//     interference region (Section 3.5 prose) even if the node has since
//     returned to local mode (Fig. 9 would leak the channel forever);
//   * Fig. 4's mode-2 reject rule follows the Section 2.2 prose by default
//     (same-channel conflicts only); `strict_fig4` restores the figure.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <set>
#include <unordered_set>
#include <vector>

#include "core/nfc.hpp"
#include "core/params.hpp"
#include "proto/allocator.hpp"

namespace dca::core {

class AdaptiveNode final : public proto::AllocatorNode {
 public:
  AdaptiveNode(const proto::NodeContext& ctx, const AdaptiveParams& params);

  void on_message(const net::Message& msg) override;

  [[nodiscard]] int mode() const override { return mode_; }
  [[nodiscard]] bool is_borrowing() const override { return mode_ != 0; }
  [[nodiscard]] bool is_searching() const override {
    return req_.has_value() && req_->phase == Phase::kSearchRound;
  }

  // -- introspection (tests / metrics) ---------------------------------
  [[nodiscard]] int waiting() const noexcept {
    return static_cast<int>(awaiting_.size());
  }
  /// The searchers whose decisions we are waiting on (debugging).
  [[nodiscard]] const std::multiset<cell::CellId>& awaiting() const noexcept {
    return awaiting_;
  }
  /// In-flight request state (debugging): (valid, ts, phase as int,
  /// responses so far).
  struct RequestDebug {
    bool active = false;
    net::Timestamp ts;
    int phase = -1;
    int responses = 0;
    int rounds = 0;
  };
  [[nodiscard]] RequestDebug request_debug() const {
    RequestDebug d;
    if (req_.has_value()) {
      d.active = true;
      d.ts = req_->ts;
      d.phase = static_cast<int>(req_->phase);
      d.responses = req_->responses;
      d.rounds = req_->rounds;
    }
    return d;
  }
  [[nodiscard]] const std::unordered_set<cell::CellId>& update_subscribers() const {
    return update_set_;
  }
  [[nodiscard]] std::size_t deferq_size() const noexcept { return defer_.size(); }
  [[nodiscard]] const NfcTracker& nfc() const noexcept { return nfc_; }
  [[nodiscard]] const cell::ChannelSet& interfered() const noexcept {
    return interfered_cache_;
  }
  [[nodiscard]] int free_primary_count() const;
  /// Mode-switch counters (ablation metrics).
  [[nodiscard]] std::uint64_t switches_to_borrowing() const noexcept {
    return to_borrowing_;
  }
  [[nodiscard]] std::uint64_t switches_to_local() const noexcept { return to_local_; }
  /// Borrowed->primary call migrations performed (repack extension).
  [[nodiscard]] std::uint64_t repacks() const noexcept { return repacks_; }

 protected:
  void start_request(std::uint64_t serial) override;
  void on_release(cell::ChannelId ch, std::uint64_t serial) override;
  void on_crash() override;
  void on_peer_restart(cell::CellId j) override;
  void fill_resync_reply(net::Message& m) const override;
  void apply_resync_reply(const net::Message& m) override;
  void on_resync_done() override;
  [[nodiscard]] int admission_free_count() const override {
    return free_primary_count();
  }

 private:
  enum class Phase : std::uint8_t {
    kWaitQuiet,    // parked until waiting_ == 0
    kWaitStatus,   // mode switch announced; collecting Use-set statuses
    kUpdateRound,  // REQUEST(update, r) outstanding to all of IN_i
    kSearchRound,  // REQUEST(search) outstanding to all of IN_i
  };

  struct Request {
    std::uint64_t serial = 0;
    net::Timestamp ts;  // fixed for the request's lifetime (paper's ts_i)
    Phase phase = Phase::kWaitQuiet;
    int rounds = 0;  // borrow-update attempts so far (paper's rounds / m)
    // Update round state:
    cell::ChannelId channel = cell::kNoChannel;
    int responses = 0;
    bool rejected = false;
    std::vector<cell::CellId> granters;
    // Status-wave bookkeeping (kWaitStatus):
    std::uint64_t wave = 0;
    int statuses = 0;
  };

  struct DeferredReq {
    net::ReqType type = net::ReqType::kUpdate;
    cell::ChannelId channel = cell::kNoChannel;  // update requests only
    net::Timestamp ts;
    cell::CellId from = cell::kNoCell;
    std::uint64_t serial = 0;
    std::uint64_t wave = 0;  // requester's round tag, echoed in the answer
  };

  // -- Fig. 2: the request state machine --------------------------------
  void proceed();
  void begin_update_round(cell::ChannelId ch);
  void begin_search_round();
  void conclude_update_round();
  void conclude_search_round(cell::ChannelId r);
  void on_phase_timeout();

  // -- Fig. 3: acquire() + request completion ----------------------------
  void finish_request(cell::ChannelId r, int prev_mode, proto::Outcome how);

  // -- Fig. 4: Receive_Request -----------------------------------------
  void handle_request(const net::Message& msg);
  void handle_update_request(const net::Message& msg);
  void handle_search_request(const net::Message& msg);

  // -- Figs. 5, 7, 8: other receive events ------------------------------
  void handle_change_mode(const net::Message& msg);
  void handle_response(const net::Message& msg);
  void handle_acquisition(const net::Message& msg);
  void handle_release(const net::Message& msg);

  // -- Fig. 6: check_mode() ----------------------------------------------
  void check_mode();

  // -- Fig. 10: Best() ----------------------------------------------------
  [[nodiscard]] cell::CellId best_lender() const;
  /// Channel to request from `lender`: prefers the lender's primaries.
  [[nodiscard]] cell::ChannelId pick_borrow_channel(cell::CellId lender) const;

  // -- extension: dynamic channel reassignment ----------------------------
  void maybe_repack();

  // -- incremental interference cache ------------------------------------
  // interfered() is the hottest query in the scheme (free_primary() runs
  // on every local acquisition and inside check_mode()); recomputing the
  // union over IN_i each time is O(|IN_i| * words). Instead we maintain a
  // per-channel claim counter over both known_use_ and pending_grants_ of
  // interference neighbours, and keep the union bitset current on every
  // mutation: a channel enters the cache on its 0->1 claim and leaves on
  // 1->0. All writes to known_use_/pending_grants_ MUST go through these
  // wrappers so the cache never drifts from the vectors it mirrors.
  void bump_claim(cell::ChannelId ch, int delta);
  void set_known_use(cell::CellId j, cell::ChannelId ch, bool on);
  void set_pending_grant(cell::CellId j, cell::ChannelId ch, bool on);
  void assign_known_use(cell::CellId j, const cell::ChannelSet& nu);

  // -- helpers ------------------------------------------------------------
  void send_grant(cell::CellId to, std::uint64_t serial, std::uint64_t wave,
                  cell::ChannelId r);
  void send_reject(cell::CellId to, std::uint64_t serial, std::uint64_t wave,
                   cell::ChannelId r);
  void send_use_reply(cell::CellId to, std::uint64_t serial, net::ResType type);
  void drain_deferq();
  void resume_if_quiet();
  [[nodiscard]] cell::ChannelId free_primary() const;
  [[nodiscard]] sim::Duration round_trip() const { return 2 * env().latency_bound(); }

  AdaptiveParams params_;
  int mode_ = 0;
  NfcTracker nfc_;
  std::optional<Request> req_;
  std::unordered_set<cell::CellId> update_set_;            // UpdateS_i
  std::deque<DeferredReq> defer_;                          // DeferQ_i
  // waiting_i, kept as the multiset of searchers we answered whose
  // decision announcements are outstanding (one entry per outstanding
  // reply; a searcher can appear at most once in practice).
  std::multiset<cell::CellId> awaiting_;
  std::vector<cell::ChannelSet> known_use_;                // U_j by nbr_rank
  std::vector<cell::ChannelSet> pending_grants_;           // by nbr_rank
  // Cache state (see wrappers above). Writes about non-neighbours
  // (harmless, and possible via broadcast paths) are dropped by the
  // wrappers — interfered() only ever unioned over interference().
  // Claims per channel are bounded by 2 * |IN_i| (known_use +
  // pending_grants per neighbour), far below 2^16.
  std::vector<std::uint16_t> claim_count_;                 // by channel
  cell::ChannelSet interfered_cache_;
  cell::ChannelSet borrowed_;                              // non-primary holdings
  std::uint64_t change_wave_ = 0;
  std::uint64_t to_borrowing_ = 0;
  std::uint64_t to_local_ = 0;
  std::uint64_t repacks_ = 0;
};

}  // namespace dca::core
