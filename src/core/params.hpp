// Tuning parameters of the adaptive scheme (Section 3.5 of the paper).
#pragma once

#include <cassert>

#include "sim/types.hpp"

namespace dca::core {

struct AdaptiveParams {
  /// θ_l: enter borrowing mode when the predicted number of free primary
  /// channels drops below this. Must be >= 1 (see DESIGN.md note 4).
  int theta_low = 2;

  /// θ_h: return to local mode when the prediction reaches this
  /// (hysteresis; must exceed theta_low).
  int theta_high = 4;

  /// W: the sliding window the NFC predictor extrapolates over.
  sim::Duration window = sim::seconds(30);

  /// α: maximum borrow attempts in update mode before switching to the
  /// search mode for this request.
  int alpha = 3;

  /// When true, mode-2 nodes reject ANY younger update request (the
  /// literal Fig. 4 rule); when false (default) only younger requests for
  /// the channel we are ourselves acquiring are rejected (the Section 2.2
  /// prose rule). Both are safe; the literal rule rejects more.
  bool strict_fig4 = false;

  /// When false, the Best() lender heuristic is replaced by a uniformly
  /// random eligible lender (ablation of the paper's collision-avoidance
  /// claim).
  bool use_best_heuristic = true;

  /// Extension (off by default, not in the paper): dynamic channel
  /// reassignment in the style of the paper's reference [1] (Cox &
  /// Reudink). When a primary channel becomes free while a borrowed
  /// channel is carrying a call, the call is migrated onto the primary
  /// (an intra-cell handoff) and the borrowed channel is returned to the
  /// neighbourhood immediately instead of at call end.
  bool repack = false;

  void check() const {
    assert(theta_low >= 1);
    assert(theta_high > theta_low);
    assert(window > 0);
    assert(alpha >= 1);
  }
};

}  // namespace dca::core
