// The NFC (number-of-free-channels) history and linear predictor of the
// paper's Fig. 6 / data structure NFC_i.
//
// A node records (t, s) samples — "at time t the number of free primary
// channels became s" — over a sliding window of width W, and predicts the
// value one round-trip (2T) ahead by linear extrapolation of the change
// across the window:
//
//     next = s + 2T * (s - get_nfc(t - W)) / W
//
// The prediction drives the local/borrowing mode switch with hysteresis
// thresholds θ_l < θ_h.
#pragma once

#include <cassert>
#include <deque>
#include <utility>

#include "sim/types.hpp"

namespace dca::core {

class NfcTracker {
 public:
  /// `window` is the paper's W (in simulated microseconds, > 0).
  explicit NfcTracker(sim::Duration window) : window_(window) {
    assert(window_ > 0);
  }

  /// add_nfc(t, s): records the sample and prunes history older than t - W
  /// (always keeping the newest sample at or before the cutoff so that
  /// at(t - W) stays answerable).
  void record(sim::SimTime t, int s) {
    assert(entries_.empty() || t >= entries_.back().first);
    entries_.emplace_back(t, s);
    const sim::SimTime cutoff = t - window_;
    while (entries_.size() >= 2 && entries_[1].first <= cutoff) {
      entries_.pop_front();
    }
  }

  /// get_nfc(t): the value in force at time t — the sample at the latest
  /// recording instant <= t, or the earliest known sample when t precedes
  /// all history. Returns 0 when no samples exist.
  [[nodiscard]] int at(sim::SimTime t) const {
    if (entries_.empty()) return 0;
    int value = entries_.front().second;
    for (const auto& [when, s] : entries_) {
      if (when > t) break;
      value = s;
    }
    return value;
  }

  /// Latest recorded value (0 when empty).
  [[nodiscard]] int current() const {
    return entries_.empty() ? 0 : entries_.back().second;
  }

  /// The paper's predictor: current + horizon * slope, where the slope is
  /// the change over the last window. `horizon` is typically 2T.
  [[nodiscard]] double predict(sim::SimTime now, sim::Duration horizon) const {
    const double s = current();
    const double last = at(now - window_);
    return s + static_cast<double>(horizon) * (s - last) / static_cast<double>(window_);
  }

  /// Forget all history (crash recovery: NFC is volatile state).
  void reset() { entries_.clear(); }

  [[nodiscard]] sim::Duration window() const noexcept { return window_; }
  [[nodiscard]] std::size_t samples() const noexcept { return entries_.size(); }

 private:
  sim::Duration window_;
  std::deque<std::pair<sim::SimTime, int>> entries_;
};

}  // namespace dca::core
