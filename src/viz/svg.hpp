// SVG rendering of the cellular system: the hex grid, the reuse
// colouring, one cell's interference region, and (optionally) a channel
// usage snapshot — Fig. 1 of the paper as a picture you can actually
// inspect, plus a load heat map for hot-spot experiments.
#pragma once

#include <string>
#include <vector>

#include "cell/grid.hpp"
#include "cell/reuse.hpp"

namespace dca::viz {

struct SvgOptions {
  /// Highlight this cell and its interference region (kNoCell = off).
  cell::CellId focus = cell::kNoCell;
  /// Per-cell channels-in-use counts for the heat overlay (empty = off).
  /// When set, fill opacity scales with usage instead of flat colouring.
  std::vector<int> in_use;
  /// Value that maps to full heat (defaults to |PR| when 0).
  int heat_scale = 0;
  /// Print the cell id inside each hexagon.
  bool label_ids = true;
  /// Print the colour class instead of the id (ignored if label_ids).
  bool label_colors = false;
  /// Pixels per cell circumradius.
  double scale = 24.0;
};

/// Renders the grid under `plan` to a standalone SVG document.
[[nodiscard]] std::string render_svg(const cell::HexGrid& grid,
                                     const cell::ReusePlan& plan,
                                     const SvgOptions& options = {});

/// Convenience: render_svg written to `path`. Returns false on I/O error.
[[nodiscard]] bool write_svg(const std::string& path, const cell::HexGrid& grid,
                             const cell::ReusePlan& plan,
                             const SvgOptions& options = {});

}  // namespace dca::viz
