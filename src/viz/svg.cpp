#include "viz/svg.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <fstream>
#include <iterator>
#include <sstream>

namespace dca::viz {

namespace {

// A categorical palette with enough contrast for up to 19 colour classes
// (greedy plans at radius 3 need that many); wraps beyond.
const char* kPalette[] = {
    "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f", "#edc948",
    "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac", "#1b9e77", "#d95f02",
    "#7570b3", "#e7298a", "#66a61e", "#e6ab02", "#a6761d", "#666666",
    "#a0cbe8",
};
constexpr int kPaletteSize = static_cast<int>(std::size(kPalette));

struct Pt {
  double x, y;
};

// Pointy-top hexagon corners around a center, circumradius r.
std::array<Pt, 6> corners(Pt c, double r) {
  std::array<Pt, 6> out{};
  for (int k = 0; k < 6; ++k) {
    const double a = (60.0 * k - 30.0) * 3.14159265358979323846 / 180.0;
    out[static_cast<std::size_t>(k)] = {c.x + r * std::cos(a),
                                        c.y + r * std::sin(a)};
  }
  return out;
}

}  // namespace

std::string render_svg(const cell::HexGrid& grid, const cell::ReusePlan& plan,
                       const SvgOptions& options) {
  const double s = options.scale;
  // Layout bounds from the hex centers (unit circumradius geometry).
  double minx = 1e9, miny = 1e9, maxx = -1e9, maxy = -1e9;
  std::vector<Pt> centers;
  centers.reserve(static_cast<std::size_t>(grid.n_cells()));
  for (cell::CellId c = 0; c < grid.n_cells(); ++c) {
    const auto p = hex_center(grid.axial(c));
    centers.push_back({p.x * s, p.y * s});
    minx = std::min(minx, p.x * s);
    maxx = std::max(maxx, p.x * s);
    miny = std::min(miny, p.y * s);
    maxy = std::max(maxy, p.y * s);
  }
  const double pad = 1.5 * s;
  const double ox = pad - minx;
  const double oy = pad - miny;
  const double width = maxx - minx + 2 * pad;
  const double height = maxy - miny + 2 * pad;

  const int heat_scale =
      options.heat_scale > 0
          ? options.heat_scale
          : std::max(1, plan.n_channels() / std::max(1, plan.n_colors()));

  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width
      << "\" height=\"" << height << "\" viewBox=\"0 0 " << width << ' ' << height
      << "\">\n";
  svg << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";

  for (cell::CellId c = 0; c < grid.n_cells(); ++c) {
    const Pt center{centers[static_cast<std::size_t>(c)].x + ox,
                    centers[static_cast<std::size_t>(c)].y + oy};
    const auto hex = corners(center, s * 0.96);
    const int color = plan.color_of(c);
    const char* fill = kPalette[color % kPaletteSize];

    double opacity = 0.55;
    if (!options.in_use.empty()) {
      const double load =
          static_cast<double>(options.in_use[static_cast<std::size_t>(c)]) /
          static_cast<double>(heat_scale);
      opacity = 0.10 + 0.85 * std::clamp(load, 0.0, 1.0);
    }

    std::string stroke = "#444444";
    double stroke_width = 1.0;
    if (options.focus != cell::kNoCell) {
      if (c == options.focus) {
        stroke = "#000000";
        stroke_width = 3.0;
      } else if (grid.interferes(options.focus, c)) {
        stroke = "#cc0000";
        stroke_width = 2.0;
      }
    }

    svg << "<polygon points=\"";
    for (const Pt& p : hex) svg << p.x << ',' << p.y << ' ';
    svg << "\" fill=\"" << fill << "\" fill-opacity=\"" << opacity
        << "\" stroke=\"" << stroke << "\" stroke-width=\"" << stroke_width
        << "\"/>\n";

    if (options.label_ids || options.label_colors) {
      svg << "<text x=\"" << center.x << "\" y=\"" << center.y + s * 0.18
          << "\" font-size=\"" << s * 0.5
          << "\" font-family=\"sans-serif\" text-anchor=\"middle\" fill=\"#222\">"
          << (options.label_ids ? c : plan.color_of(c)) << "</text>\n";
    }
  }
  svg << "</svg>\n";
  return svg.str();
}

bool write_svg(const std::string& path, const cell::HexGrid& grid,
               const cell::ReusePlan& plan, const SvgOptions& options) {
  std::ofstream out(path);
  if (!out) return false;
  out << render_svg(grid, plan, options);
  return static_cast<bool>(out);
}

}  // namespace dca::viz
