// Core time types for the discrete-event simulation kernel.
//
// Simulated time is a signed 64-bit count of *microseconds*. An integral
// representation keeps the kernel deterministic: event ordering never
// depends on floating-point rounding, so a given (scenario, seed) pair
// always replays the exact same trajectory.
#pragma once

#include <cstdint>
#include <limits>

namespace dca::sim {

/// Absolute simulated time in microseconds since simulation start.
using SimTime = std::int64_t;

/// A span of simulated time in microseconds.
using Duration = std::int64_t;

/// Sentinel for "never" / "no deadline".
inline constexpr SimTime kTimeNever = std::numeric_limits<SimTime>::max();

/// Simulation epoch.
inline constexpr SimTime kTimeZero = 0;

// -- Duration constructors ---------------------------------------------------

constexpr Duration microseconds(std::int64_t us) noexcept { return us; }
constexpr Duration milliseconds(std::int64_t ms) noexcept { return ms * 1000; }
constexpr Duration seconds(std::int64_t s) noexcept { return s * 1'000'000; }
constexpr Duration minutes(std::int64_t m) noexcept { return m * 60'000'000; }

/// Converts a real-valued second count (e.g. a mean holding time drawn from
/// an exponential distribution) to the integral microsecond representation.
/// Values are truncated toward zero; negative inputs clamp to zero because a
/// negative delay is never meaningful for scheduling.
constexpr Duration from_seconds(double s) noexcept {
  if (s <= 0.0) return 0;
  return static_cast<Duration>(s * 1e6);
}

/// Converts simulated microseconds back to floating-point seconds for
/// reporting.
constexpr double to_seconds(Duration d) noexcept {
  return static_cast<double>(d) / 1e6;
}

/// Converts simulated microseconds to floating-point milliseconds.
constexpr double to_milliseconds(Duration d) noexcept {
  return static_cast<double>(d) / 1e3;
}

}  // namespace dca::sim
