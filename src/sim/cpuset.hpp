// Thread -> CPU pinning for the sharded kernel's worker pool.
//
// The kernel's workers claim shards off a shared counter and meet at one
// barrier per conservative window; with windows a few simulated
// milliseconds wide that is tens of thousands of barrier crossings per
// run, so a worker migrating between cores pays the cache refill on
// every shard it re-claims. Pinning worker i to the i-th *allowed* CPU
// (respecting any cpuset/taskset mask the process was launched under)
// keeps each worker's claimed shards warm and makes scaling-curve
// measurements repeatable on multi-socket boxes.
//
// Linux-only: other platforms compile to no-ops that report failure, and
// the caller (--pin) treats that as "pinning unavailable", not an error.
#pragma once

#include <vector>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace dca::sim {

/// CPUs the current process is allowed to run on, ascending. Empty when
/// the platform cannot report an affinity mask.
inline std::vector<int> allowed_cpus() {
  std::vector<int> cpus;
#ifdef __linux__
  cpu_set_t mask;
  CPU_ZERO(&mask);
  if (sched_getaffinity(0, sizeof(mask), &mask) == 0) {
    for (int c = 0; c < CPU_SETSIZE; ++c) {
      if (CPU_ISSET(c, &mask)) cpus.push_back(c);
    }
  }
#endif
  return cpus;
}

/// Pins the calling thread to a single CPU. Returns false when pinning is
/// unsupported or the syscall failed (caller degrades gracefully).
inline bool pin_current_thread(int cpu) {
#ifdef __linux__
  cpu_set_t mask;
  CPU_ZERO(&mask);
  CPU_SET(cpu, &mask);
  return pthread_setaffinity_np(pthread_self(), sizeof(mask), &mask) == 0;
#else
  (void)cpu;
  return false;
#endif
}

/// Saves the calling thread's affinity mask and restores it on
/// destruction — the kernel pins the caller's own thread (it doubles as
/// worker 0) and must hand it back unpinned after run_until returns.
class ThreadAffinityGuard {
 public:
  ThreadAffinityGuard() {
#ifdef __linux__
    saved_ = sched_getaffinity(0, sizeof(mask_), &mask_) == 0;
#endif
  }
  ~ThreadAffinityGuard() {
#ifdef __linux__
    if (saved_) pthread_setaffinity_np(pthread_self(), sizeof(mask_), &mask_);
#endif
  }
  ThreadAffinityGuard(const ThreadAffinityGuard&) = delete;
  ThreadAffinityGuard& operator=(const ThreadAffinityGuard&) = delete;

 private:
#ifdef __linux__
  cpu_set_t mask_{};
#endif
  bool saved_ = false;
};

}  // namespace dca::sim
