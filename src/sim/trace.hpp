// Structured event trace: a flat, append-only record of the semantically
// meaningful moments of a run (call lifecycle, search sequencing, fault
// injections, pauses). The conformance checker in src/runner replays a
// recorded trace against the cell geometry and asserts the paper's
// invariants; the runner can also serialize it as JSONL for offline
// analysis.
//
// The struct is deliberately plain — fixed-width integers only, no
// dependencies above sim/ — so every layer (net, proto, runner) can emit
// events without include cycles. Field meaning is per-kind; unused
// fields stay at their defaults and serialize anyway, keeping the JSONL
// schema fixed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace dca::sim {

enum class TraceKind : std::uint8_t {
  kRequest = 0,      // cell asked for a channel         (cell, serial)
  kAcquire = 1,      // channel in use begins            (cell, channel, serial)
  kRelease = 2,      // channel in use ends              (cell, channel, serial)
  kBlock = 3,        // request failed                   (cell, serial, a=outcome)
  kSearchStart = 4,  // search round began               (cell, serial, a=ts.count, b=ts.node)
  kSearchDecide = 5, // search round concluded           (cell, serial, channel, a=success, b=timeout_abort)
  kTimeout = 6,      // protocol timer fired             (cell, serial, a=phase tag)
  kPause = 7,        // MSS stalled                      (cell)
  kResume = 8,       // MSS back online                  (cell)
  kDrop = 9,         // link dropped a frame             (cell=from, peer=to, a=seq)
  kDup = 10,         // link duplicated a frame          (cell=from, peer=to, a=seq)
  kRetransmit = 11,  // transport retransmitted a frame  (cell=from, peer=to, a=seq, b=attempt)
  kRunEnd = 12,      // end of run (after drain)         (t only)
};

[[nodiscard]] inline const char* trace_kind_name(TraceKind k) {
  switch (k) {
    case TraceKind::kRequest: return "request";
    case TraceKind::kAcquire: return "acquire";
    case TraceKind::kRelease: return "release";
    case TraceKind::kBlock: return "block";
    case TraceKind::kSearchStart: return "search_start";
    case TraceKind::kSearchDecide: return "search_decide";
    case TraceKind::kTimeout: return "timeout";
    case TraceKind::kPause: return "pause";
    case TraceKind::kResume: return "resume";
    case TraceKind::kDrop: return "drop";
    case TraceKind::kDup: return "dup";
    case TraceKind::kRetransmit: return "retransmit";
    case TraceKind::kRunEnd: return "run_end";
  }
  return "?";
}

struct TraceEvent {
  TraceKind kind = TraceKind::kRequest;
  SimTime t = 0;
  std::int32_t cell = -1;
  std::int32_t peer = -1;
  std::int32_t channel = -1;
  std::uint64_t serial = 0;
  std::int64_t a = 0;
  std::int64_t b = 0;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// In-memory event sink. Attach one to a World (and through it to the
/// Network) to capture a run; absent a recorder every emit site is a
/// no-op, so tracing costs nothing when off.
class TraceRecorder {
 public:
  void emit(const TraceEvent& e) { events_.push_back(e); }
  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace dca::sim
