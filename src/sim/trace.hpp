// Structured event trace: a flat, append-only record of the semantically
// meaningful moments of a run (call lifecycle, search sequencing, fault
// injections, pauses). The conformance checker in src/runner replays a
// recorded trace against the cell geometry and asserts the paper's
// invariants; the runner can also serialize it as JSONL for offline
// analysis.
//
// The struct is deliberately plain — fixed-width integers only, no
// dependencies above sim/ — so every layer (net, proto, runner) can emit
// events without include cycles. Field meaning is per-kind; unused
// fields stay at their defaults and serialize anyway, keeping the JSONL
// schema fixed.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "sim/types.hpp"

namespace dca::sim {

enum class TraceKind : std::uint8_t {
  kRequest = 0,      // cell asked for a channel         (cell, serial)
  kAcquire = 1,      // channel in use begins            (cell, channel, serial)
  kRelease = 2,      // channel in use ends              (cell, channel, serial)
  kBlock = 3,        // request failed                   (cell, serial, a=outcome)
  kSearchStart = 4,  // search round began               (cell, serial, a=ts.count, b=ts.node)
  kSearchDecide = 5, // search round concluded           (cell, serial, channel, a=success, b=timeout_abort)
  kTimeout = 6,      // protocol timer fired             (cell, serial, a=phase tag)
  kPause = 7,        // MSS stalled                      (cell)
  kResume = 8,       // MSS back online                  (cell)
  kDrop = 9,         // link dropped a frame             (cell=from, peer=to, a=seq)
  kDup = 10,         // link duplicated a frame          (cell=from, peer=to, a=seq)
  kRetransmit = 11,  // transport retransmitted a frame  (cell=from, peer=to, a=seq, b=attempt)
  kRunEnd = 12,      // end of run (after drain)         (t only)
  kHandoffLeave = 13, // mobile left its cell mid-call   (cell=old, peer=dest, serial=new, a=hop, b=ends)
  kHandoffRecv = 14,  // handoff message arrived          (cell=dest, peer=old, serial, a=hop, b=ends)
  kCrash = 15,       // MSS crashed, volatile state lost (cell, a=calls torn down)
  kRestart = 16,     // MSS back up, cold, resyncing     (cell)
  kResyncDone = 17,  // resync complete, traffic admitted (cell, a=rounds)
};

[[nodiscard]] inline const char* trace_kind_name(TraceKind k) {
  switch (k) {
    case TraceKind::kRequest: return "request";
    case TraceKind::kAcquire: return "acquire";
    case TraceKind::kRelease: return "release";
    case TraceKind::kBlock: return "block";
    case TraceKind::kSearchStart: return "search_start";
    case TraceKind::kSearchDecide: return "search_decide";
    case TraceKind::kTimeout: return "timeout";
    case TraceKind::kPause: return "pause";
    case TraceKind::kResume: return "resume";
    case TraceKind::kDrop: return "drop";
    case TraceKind::kDup: return "dup";
    case TraceKind::kRetransmit: return "retransmit";
    case TraceKind::kRunEnd: return "run_end";
    case TraceKind::kHandoffLeave: return "handoff_leave";
    case TraceKind::kHandoffRecv: return "handoff_recv";
    case TraceKind::kCrash: return "crash";
    case TraceKind::kRestart: return "restart";
    case TraceKind::kResyncDone: return "resync_done";
  }
  return "?";
}

struct TraceEvent {
  TraceKind kind = TraceKind::kRequest;
  SimTime t = 0;
  std::int32_t cell = -1;
  std::int32_t peer = -1;
  std::int32_t channel = -1;
  std::uint64_t serial = 0;
  std::int64_t a = 0;
  std::int64_t b = 0;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// In-memory event sink. Attach one to a World (and through it to the
/// Network) to capture a run; absent a recorder every emit site is a
/// no-op, so tracing costs nothing when off.
///
/// Storage is a chunked binary append buffer: emit() writes the POD event
/// into the tail chunk (fixed 4096-event blocks that never move), so the
/// record path is a bounds check and a 48-byte store — no reallocation
/// copies of the whole history, no 2x peak memory, and no string work;
/// serialization to JSONL happens only when the runner flushes the trace.
/// events() materializes a contiguous snapshot lazily (cached until the
/// next emit), keeping the flush/compare API a plain vector.
///
/// Sink mode: set_sink() reroutes every emit to a callback instead of the
/// buffer — the streaming engine hands events over in canonical order as
/// they become final, so a sink can spill them (JSONL to a stream) or
/// discard them without the recorder ever holding the full run. A sinked
/// recorder stays empty: size() counts forwarded events, events() is
/// whatever was buffered before the sink was installed.
class TraceRecorder {
 public:
  static constexpr std::size_t kChunkEvents = 4096;

  using Sink = std::function<void(const TraceEvent&)>;

  void set_sink(Sink sink) { sink_ = std::move(sink); }
  [[nodiscard]] bool has_sink() const { return static_cast<bool>(sink_); }

  void emit(const TraceEvent& e) {
    if (sink_) {
      sink_(e);
      ++count_;
      return;
    }
    if (fill_ == kChunkEvents) grow();
    chunks_.back()[fill_++] = e;
    ++count_;
    dirty_ = true;
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    if (dirty_) {
      flat_.clear();
      flat_.reserve(count_);
      for (std::size_t i = 0; i < chunks_.size(); ++i) {
        const TraceEvent* chunk = chunks_[i].get();
        const std::size_t n = i + 1 == chunks_.size() ? fill_ : kChunkEvents;
        flat_.insert(flat_.end(), chunk, chunk + n);
      }
      dirty_ = false;
    }
    return flat_;
  }

  [[nodiscard]] std::size_t size() const { return count_; }

  /// Stable-sorts the buffered events into the canonical (t, cell) order —
  /// the order the sharded engine's fold merge emits. The classic engine
  /// records in execution order, which agrees with the canonical order
  /// except when a same-instant tie spans cells out of ascending order
  /// (e.g. a transport RTO on one cell against a frame delivery landing on
  /// a lower-numbered cell). Such ties only ever reorder causally
  /// unrelated events — cross-cell causality rides on messages, which
  /// impose at least one latency of separation — so sorting changes the
  /// observable trace, never the semantics. No-op in sink mode: sinks see
  /// events as they are recorded.
  void canonicalize() {
    if (sink_ || count_ == 0) return;
    std::vector<TraceEvent> sorted = events();
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                       return a.t != b.t ? a.t < b.t : a.cell < b.cell;
                     });
    const std::size_t n = count_;
    clear();
    for (std::size_t i = 0; i < n; ++i) emit(sorted[i]);
  }

  void clear() {
    chunks_.clear();
    fill_ = kChunkEvents;
    count_ = 0;
    flat_.clear();
    dirty_ = false;
  }

 private:
  void grow() {
    chunks_.push_back(std::make_unique<TraceEvent[]>(kChunkEvents));
    fill_ = 0;
  }

  Sink sink_;
  std::vector<std::unique_ptr<TraceEvent[]>> chunks_;
  std::size_t fill_ = kChunkEvents;  // slots used in the tail chunk
  std::size_t count_ = 0;
  mutable std::vector<TraceEvent> flat_;  // lazy contiguous snapshot
  mutable bool dirty_ = false;
};

}  // namespace dca::sim
