// The discrete-event simulation driver: a virtual clock plus the pending
// event set, with run-until / run-for / step execution modes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>

#include "sim/event_queue.hpp"
#include "sim/small_fn.hpp"
#include "sim/types.hpp"

namespace dca::sim {

class Simulator {
 public:
  using Action = EventQueue::Action;

  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time. Monotonically non-decreasing.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `action` to run `delay` microseconds from now.
  /// Negative delays are treated as zero (fire "immediately", i.e. after
  /// all events already scheduled for the current instant). Accepts any
  /// void() callable; it lands directly in the event slab's inline buffer.
  template <typename F>
  EventId schedule_in(Duration delay, F&& action) {
    if (delay < 0) delay = 0;
    return queue_.schedule(now_ + delay, std::forward<F>(action));
  }

  /// Schedules `action` at an absolute time, which must not be in the past.
  template <typename F>
  EventId schedule_at(SimTime when, F&& action) {
    if (when < now_) when = now_;
    return queue_.schedule(when, std::forward<F>(action));
  }

  /// Cancels a scheduled event (no-op if it already fired).
  void cancel(EventId id) { queue_.cancel(id); }

  /// Installs a hook that runs at the end of every simulated instant:
  /// after the last pending event at some time t has fired and before the
  /// clock can advance (or the queue drains). The hook may schedule new
  /// events, including at the current instant — that re-arms it for the
  /// same t. Hook invocations are not counted in executed(): the network
  /// uses this to flush its canonical per-receiver arrival batches without
  /// perturbing the replay fingerprint. One hook per simulator; installing
  /// replaces the previous one.
  template <typename F>
  void set_instant_hook(F&& hook) {
    instant_hook_.assign(std::forward<F>(hook));
  }
  void clear_instant_hook() noexcept { instant_hook_.reset(); }

  /// Executes the single earliest pending event.
  /// Returns false when the event set is empty (time does not advance).
  bool step() {
    if (queue_.empty()) return false;
    auto fired = queue_.pop();
    now_ = fired.when;
    ++executed_;
    fired.action();
    if (instant_hook_ && (queue_.empty() || queue_.next_time() > now_)) {
      instant_hook_();
    }
    return true;
  }

  /// Runs until the event set drains or `deadline` is reached. Events
  /// scheduled exactly at `deadline` do fire. Returns the number of events
  /// executed by this call.
  std::size_t run_until(SimTime deadline = kTimeNever) {
    std::size_t n = 0;
    while (!queue_.empty() && queue_.next_time() <= deadline) {
      step();
      ++n;
    }
    if (now_ < deadline && deadline != kTimeNever) now_ = deadline;
    return n;
  }

  /// Runs for `span` microseconds of simulated time from now.
  std::size_t run_for(Duration span) { return run_until(now_ + span); }

  /// Runs until the event set is completely drained.
  std::size_t run_to_quiescence() { return run_until(kTimeNever); }

  /// Number of live pending events.
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

  /// Total events executed since construction (replay fingerprint).
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

 private:
  EventQueue queue_;
  EventFn instant_hook_;
  SimTime now_ = kTimeZero;
  std::uint64_t executed_ = 0;
};

}  // namespace dca::sim
