#include "sim/log.hpp"

#include <cstdio>
#include <iomanip>

namespace dca::sim {

void TraceLog::emit(LogLevel at, SimTime now, std::string_view what) {
  if (!enabled(at)) return;
  std::ostringstream os;
  os << '[' << std::fixed << std::setprecision(6) << to_seconds(now) << "] "
     << what;
  const std::string line = os.str();
  if (sink_) {
    sink_(line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace dca::sim
