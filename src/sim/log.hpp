// Minimal structured trace log for simulation debugging.
//
// Tracing is off by default and costs a single branch per call site when
// disabled. When enabled, lines carry the simulated timestamp so protocol
// interleavings can be read directly off the trace.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

#include "sim/types.hpp"

namespace dca::sim {

enum class LogLevel : int { kOff = 0, kInfo = 1, kDebug = 2, kTrace = 3 };

class TraceLog {
 public:
  using Sink = std::function<void(std::string_view line)>;

  TraceLog() = default;

  void set_level(LogLevel level) noexcept { level_ = level; }
  [[nodiscard]] LogLevel level() const noexcept { return level_; }
  [[nodiscard]] bool enabled(LogLevel at) const noexcept {
    return static_cast<int>(at) <= static_cast<int>(level_);
  }

  /// Replaces the output sink (default: stderr).
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  /// Emits one line: "[<t in s>] <what>". No-op below the current level.
  void emit(LogLevel at, SimTime now, std::string_view what);

 private:
  LogLevel level_ = LogLevel::kOff;
  Sink sink_;
};

/// Convenience formatter: streams all arguments into one string.
template <typename... Args>
std::string format_line(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}

}  // namespace dca::sim
