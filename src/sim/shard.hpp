// Shard-aware deterministically-parallel discrete-event kernel.
//
// The classic Simulator (simulator.hpp) executes one global event heap and
// breaks timestamp ties by insertion order — a total order that exists only
// on a single thread. This kernel partitions events across shards (cells
// are mapped to shards; every event is owned by exactly one cell) and
// replaces insertion-order tie-breaking with a *canonical event key*
//
//     (when, owner cell, class, sub, seq)
//
// that is a pure function of the scenario, never of execution interleaving.
// Shards therefore execute their own queues independently inside a
// conservative synchronization window and still produce bit-identical
// results for any shard count and any thread count.
//
// Conservative window: all cross-shard interactions are message deliveries
// carrying at least L, the minimum latency floor over the links that cross
// shards (the lookahead — shard-internal links never enter an outbox, so
// only the cross-shard link floors constrain the window; jittered links
// contribute their deterministic lower bound, and fault jitter only adds
// delay). A window spans [W, W + L); an event executing at t >= W can only
// create cross-shard work at t + d >= W + L, i.e. strictly beyond the
// window, so the shards never need to see each other's state mid-window. Cross-shard
// events travel through per-(source, destination) outboxes that are merged
// into the owning shard's queue at the window barrier; merge order is
// irrelevant because the queue orders by canonical key.
//
// Threading: N worker threads claim shards off an atomic counter each
// window and meet at a single std::barrier per window (outboxes are double
// buffered, so draining window k's mail overlaps with writing window
// k+1's). The thread count affects wall-clock only, never results.
#pragma once

#include <atomic>
#include <barrier>
#include <cassert>
#include <compare>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/event_store.hpp"
#include "sim/small_fn.hpp"
#include "sim/types.hpp"

namespace dca::sim {

// Canonical event classes, ordered to reproduce the legacy insertion-order
// tie-break for the systematic same-instant collisions (see
// docs/ARCHITECTURE.md "Determinism contract"):
//   * control (pause/resume timelines) is scheduled far ahead of anything
//     else that could share its instant;
//   * protocol/transport timers are always armed before any same-instant
//     message delivery is scheduled (a delivery is created at most one
//     latency before it fires; timers at least one timeout before);
//   * deliveries tie with each other constantly (fixed latency puts every
//     broadcast fan-out on the same instant) and order by source cell then
//     per-link sequence — exactly the order the sends were issued in.
inline constexpr std::uint8_t kClassControl = 0;
inline constexpr std::uint8_t kClassArrival = 1;
inline constexpr std::uint8_t kClassProgress = 2;
inline constexpr std::uint8_t kClassTimer = 3;
inline constexpr std::uint8_t kClassDelivery = 4;

/// Strict total order over events; member declaration order IS the sort
/// order. `sub` disambiguates within a class (deliveries: source cell),
/// `seq` within (owner, class, sub) (deliveries: per-link send counter;
/// local classes: the owner cell's scheduling counter).
struct EventKey {
  SimTime when = 0;
  std::int32_t owner = 0;  // owning cell; maps to a shard
  std::uint8_t klass = kClassControl;
  std::int32_t sub = 0;
  std::uint64_t seq = 0;

  friend constexpr auto operator<=>(const EventKey&, const EventKey&) = default;
};

/// One shard's pending-event set, ordered by canonical key. Same
/// slab/generation storage as sim::EventQueue (see event_store.hpp): POD
/// heap entries, pooled callbacks, O(1) generation-bump cancellation.
class ShardQueue {
 public:
  using Action = EventFn;

  /// Schedules a callable under a canonical key; raw closures land
  /// directly in the slab slot (no intermediate EventFn).
  template <typename F>
  EventId schedule(const EventKey& key, F&& action) {
    const std::uint32_t slot = slab_.acquire(std::forward<F>(action));
    const std::uint32_t gen = slab_.gen(slot);
    heap_.push(Entry{key, slot, gen});
    ++live_;
    return detail::make_event_id(slot, gen);
  }

  void cancel(EventId id) {
    if (id == kInvalidEventId) return;
    const std::uint32_t slot = detail::event_slot(id);
    if (!slab_.live(slot, detail::event_gen(id))) return;
    slab_.discard(slot);
    --live_;
    ++stale_;
    if (stale_ > live_ + detail::kHeapCompactSlack) compact();
  }

  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return live_; }

  /// Key of the earliest live event. Precondition: !empty().
  [[nodiscard]] const EventKey& next_key() {
    purge();
    return heap_.top().key;
  }

  struct Fired {
    EventKey key;
    Action action;
  };
  Fired pop() {
    purge();
    const Entry top = heap_.top();
    heap_.pop_top();
    --live_;
    return Fired{top.key, slab_.release(top.slot)};
  }

  // Introspection for tests: pooled slots and heap entries (live + stale).
  [[nodiscard]] std::size_t pool_capacity() const noexcept {
    return slab_.capacity();
  }
  [[nodiscard]] std::size_t heap_entries() const noexcept {
    return heap_.size();
  }

 private:
  struct Entry {
    EventKey key;
    std::uint32_t slot;
    std::uint32_t gen;
  };
  struct EarlierEntry {
    [[nodiscard]] bool operator()(const Entry& a, const Entry& b) const noexcept {
      return a.key < b.key;
    }
  };

  void purge() {
    while (!heap_.empty() &&
           !slab_.live(heap_.top().slot, heap_.top().gen)) {
      heap_.pop_top();
      --stale_;
    }
  }

  void compact() {
    heap_.remove_if(
        [this](const Entry& e) { return !slab_.live(e.slot, e.gen); });
    stale_ = 0;
  }

  detail::EventSlab slab_;
  detail::QuadHeap<Entry, EarlierEntry> heap_;
  std::size_t live_ = 0;
  std::size_t stale_ = 0;
};

class ShardedKernel {
 public:
  using Action = EventFn;

  /// `lookahead` must be a lower bound on the delay of every cross-shard
  /// event (the network's minimum one-way latency); it must be positive.
  /// `n_threads` <= 0 selects one thread per shard.
  /// This constructor uses the striped `cell % n_shards` partition.
  ShardedKernel(int n_cells, int n_shards, Duration lookahead, int n_threads);

  /// Same, with an explicit cell -> shard map. `partition` must have one
  /// entry per cell, every value in [0, n_shards). Determinism does not
  /// depend on the partition (the canonical EventKey order does not mention
  /// shards), so any map yields bit-identical results; the map only
  /// changes which events cross shard boundaries.
  ShardedKernel(std::vector<int> partition, int n_shards, Duration lookahead,
                int n_threads);

  ShardedKernel(const ShardedKernel&) = delete;
  ShardedKernel& operator=(const ShardedKernel&) = delete;

  [[nodiscard]] int n_shards() const noexcept { return n_shards_; }
  [[nodiscard]] int n_threads() const noexcept { return n_threads_; }
  [[nodiscard]] int shard_of(std::int32_t cellId) const noexcept {
    return partition_[static_cast<std::size_t>(cellId)];
  }

  /// Virtual time of one shard (the `when` of its last executed event,
  /// or the run_until deadline if that is later).
  [[nodiscard]] SimTime now(int shard) const {
    return shards_[static_cast<std::size_t>(shard)].now;
  }
  /// Latest shard clock — the instant of the last event executed anywhere.
  [[nodiscard]] SimTime max_now() const;

  /// Schedules an event into the queue of key.owner's shard. Callable
  /// during setup (single-threaded, before run) or from inside an
  /// executing event. Cross-shard scheduling while running requires
  /// key.when to land beyond the current window (the lookahead contract);
  /// violating it aborts. Returns a cancellation handle for same-shard
  /// events, kInvalidEventId for cross-shard ones (deliveries are never
  /// cancelled). The same-shard fast path stores the closure straight
  /// into the owning queue's slab; only the cross-shard mailbox path
  /// materializes an EventFn (the outbox must hold a concrete type).
  template <typename F>
  EventId schedule(const EventKey& key, F&& action) {
    const int dest = shard_of(key.owner);
    if (!running_ || tls_current_shard_ == dest) {
      return shards_[static_cast<std::size_t>(dest)].queue.schedule(
          key, std::forward<F>(action));
    }
    return schedule_remote(key, Action(std::forward<F>(action)), dest);
  }

  /// Cancels a same-shard event by its owner cell and handle.
  void cancel(std::int32_t owner, EventId id);

  /// Installs a callback invoked at every window barrier with the
  /// completed window's cap F: every event with when < F has executed,
  /// everything still pending fires at >= F. Runs on exactly one worker
  /// while the others are parked at the barrier, so it may safely touch
  /// any simulation state (the streaming engine folds metrics here). Must
  /// not throw and should early-out cheaply — there is one barrier per
  /// lookahead interval, i.e. easily 10^5 calls per long run.
  void set_window_hook(std::function<void(SimTime)> hook) {
    window_hook_ = std::move(hook);
  }

  /// Pin worker threads to distinct allowed CPUs for the next run_until
  /// (worker i -> i-th CPU of the process affinity mask, round-robin).
  /// Results are identical either way; this only stabilizes wall-clock.
  /// No-op on platforms without affinity syscalls.
  void set_pin_threads(bool pin) noexcept { pin_threads_ = pin; }
  [[nodiscard]] bool pin_threads() const noexcept { return pin_threads_; }

  /// Executes every event with when <= deadline (windowed, in parallel),
  /// then advances all shard clocks to the deadline.
  void run_until(SimTime deadline);

  /// Drains every queue completely.
  void run_to_quiescence() { run_until(kTimeNever); }

  /// Total events executed across all shards.
  [[nodiscard]] std::uint64_t executed() const;

  /// Total live pending events across all shards.
  [[nodiscard]] std::size_t pending() const;

 private:
  struct OutboxEntry {
    EventKey key;
    Action action;
  };
  // Cache-line separation: each shard's queue/clock is written by whichever
  // worker claimed it, one claim per window.
  struct alignas(64) Shard {
    ShardQueue queue;
    SimTime now = kTimeZero;
    std::uint64_t executed = 0;
  };

  EventId schedule_remote(const EventKey& key, Action action, int dest);
  void drain_and_execute(int s);
  void window_barrier_completion();
  [[nodiscard]] bool running() const noexcept { return running_; }

  // Which shard the calling thread is currently executing events for; -1
  // outside the worker execution phase (setup, teardown). Lets schedule()
  // distinguish "same-shard insert" from "cross-shard mailbox" without
  // passing the context through every callback.
  static thread_local int tls_current_shard_;

  int n_shards_;
  int n_threads_;
  Duration lookahead_;
  std::vector<int> partition_;  // cell -> shard
  std::vector<Shard> shards_;
  // outbox_[parity][src * n_shards + dst]; writers fill parity_, readers
  // drain 1 - parity_. The barrier completion flips parity.
  std::vector<std::vector<OutboxEntry>> outbox_[2];
  int parity_ = 0;

  std::function<void(SimTime)> window_hook_;
  bool pin_threads_ = false;

  bool running_ = false;     // inside run_until's worker phase
  SimTime deadline_ = kTimeNever;
  SimTime window_cap_ = kTimeZero;  // events with key.when < cap execute
  bool stop_ = false;
  std::atomic<int> claim_{0};
};

}  // namespace dca::sim
