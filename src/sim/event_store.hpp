// Pooled storage for pending simulation events.
//
// Both engines (the classic Simulator and the sharded kernel) keep the same
// per-event state: a callback and a cancellation handle. The old queues
// stored the callback inside the heap node (forcing whole-std::function
// moves on every sift) and tracked cancellation with two unordered_sets
// (one hash insert on schedule, up to two hash ops on cancel/pop). This
// header replaces both with:
//
//   * EventSlab — a chunked slab of event nodes. Chunks are allocated in
//     blocks of 256 and never move or shrink, so node addresses are stable
//     and a warmed-up queue performs zero heap allocation on the
//     schedule/fire path. Freed slots go on an intrusive free list.
//
//   * Generation stamps — each slot carries a generation counter, bumped
//     when the slot is freed. An EventId encodes (slot, generation), so
//     cancel() is an O(1) probe: a stale handle (already fired, already
//     cancelled, or slot since reused) simply fails the generation match
//     and is a no-op — the exact semantics the old live/cancelled sets
//     provided, without the hash churn or unbounded tombstone growth.
//
//   * QuadHeap — a flat 4-ary min-heap of small POD entries (the callback
//     stays in the slab; the heap moves ~24-40 byte keys). 4-ary halves
//     tree depth vs binary and keeps the working set dense. Cancelled
//     events are removed lazily: entries whose generation no longer
//     matches the slab are skipped at the top, and remove_if() lets the
//     owner compact in O(n) when stale entries pile up.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/small_fn.hpp"

namespace dca::sim {

/// Opaque handle identifying a scheduled event; used only for cancellation.
/// Encodes (slot + 1, generation) so it is never kInvalidEventId.
using EventId = std::uint64_t;

/// Sentinel returned when a handle is not needed.
inline constexpr EventId kInvalidEventId = 0;

namespace detail {

[[nodiscard]] constexpr EventId make_event_id(std::uint32_t slot,
                                              std::uint32_t gen) noexcept {
  return ((static_cast<EventId>(slot) + 1) << 32) | static_cast<EventId>(gen);
}
[[nodiscard]] constexpr std::uint32_t event_slot(EventId id) noexcept {
  return static_cast<std::uint32_t>((id >> 32) - 1);
}
[[nodiscard]] constexpr std::uint32_t event_gen(EventId id) noexcept {
  return static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
}

/// Chunked, generation-stamped pool of event callbacks.
class EventSlab {
 public:
  EventSlab() = default;
  EventSlab(const EventSlab&) = delete;
  EventSlab& operator=(const EventSlab&) = delete;
  EventSlab(EventSlab&&) noexcept = default;
  EventSlab& operator=(EventSlab&&) noexcept = default;

  /// Stores a callable in a free slot (growing by one chunk if none) and
  /// returns the slot index. The slot's current generation stamps the
  /// handle. Raw callables are constructed directly into the slot's inline
  /// buffer (one move, no intermediate EventFn); an EventFn rvalue
  /// degrades to a relocate.
  template <typename F>
  std::uint32_t acquire(F&& fn) {
    if (free_head_ == kNil) grow();
    const std::uint32_t slot = free_head_;
    Node& n = node(slot);
    free_head_ = n.next_free;
    n.next_free = kLiveMark;
    n.fn.assign(std::forward<F>(fn));
    return slot;
  }

  /// Frees a live slot on the fire path, returning its callback.
  [[nodiscard]] EventFn release(std::uint32_t slot) noexcept {
    Node& n = node(slot);
    EventFn fn = std::move(n.fn);
    free_slot(slot, n);
    return fn;
  }

  /// Frees a live slot on the cancel path, destroying its callback.
  void discard(std::uint32_t slot) noexcept {
    Node& n = node(slot);
    n.fn.reset();
    free_slot(slot, n);
  }

  /// True iff `slot` currently holds the live incarnation stamped `gen`.
  [[nodiscard]] bool live(std::uint32_t slot, std::uint32_t gen) const noexcept {
    if (slot >= size_) return false;
    const Node& n = node(slot);
    return n.gen == gen && n.next_free == kLiveMark;
  }

  /// Generation of a slot just handed out by acquire().
  [[nodiscard]] std::uint32_t gen(std::uint32_t slot) const noexcept {
    return node(slot).gen;
  }

  /// Total slots ever allocated (live + free). Grows only when every slot
  /// is simultaneously occupied; heavy cancel traffic recycles slots and
  /// never inflates this.
  [[nodiscard]] std::size_t capacity() const noexcept { return size_; }

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
  static constexpr std::uint32_t kLiveMark = 0xFFFFFFFEu;
  static constexpr std::uint32_t kChunkShift = 8;  // 256 nodes per chunk
  static constexpr std::uint32_t kChunkNodes = 1u << kChunkShift;

  struct Node {
    EventFn fn;
    std::uint32_t gen = 1;
    std::uint32_t next_free = kNil;
  };

  [[nodiscard]] Node& node(std::uint32_t slot) noexcept {
    return chunks_[slot >> kChunkShift][slot & (kChunkNodes - 1)];
  }
  [[nodiscard]] const Node& node(std::uint32_t slot) const noexcept {
    return chunks_[slot >> kChunkShift][slot & (kChunkNodes - 1)];
  }

  void free_slot(std::uint32_t slot, Node& n) noexcept {
    ++n.gen;  // invalidates every outstanding handle to this incarnation
    n.next_free = free_head_;
    free_head_ = slot;
  }

  void grow() {
    chunks_.push_back(std::make_unique<Node[]>(kChunkNodes));
    // Thread the new chunk onto the free list so slots hand out in
    // ascending order.
    for (std::uint32_t i = kChunkNodes; i-- > 0;) {
      Node& n = chunks_.back()[i];
      n.next_free = free_head_;
      free_head_ = size_ + i;
    }
    size_ += kChunkNodes;
  }

  std::vector<std::unique_ptr<Node[]>> chunks_;
  std::uint32_t free_head_ = kNil;
  std::uint32_t size_ = 0;
};

/// Flat 4-ary min-heap over POD-ish entries. `Earlier{}(a, b)` returns true
/// when `a` must fire before `b`.
template <typename Entry, typename Earlier>
class QuadHeap {
 public:
  void push(Entry e) {
    v_.push_back(std::move(e));
    sift_up(v_.size() - 1);
  }

  [[nodiscard]] const Entry& top() const noexcept { return v_.front(); }
  [[nodiscard]] bool empty() const noexcept { return v_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return v_.size(); }
  [[nodiscard]] const std::vector<Entry>& entries() const noexcept { return v_; }

  void pop_top() {
    if (v_.size() > 1) {
      v_.front() = std::move(v_.back());
      v_.pop_back();
      sift_down(0);
    } else {
      v_.pop_back();
    }
  }

  /// Drops every entry for which `dead` returns true, then restores the
  /// heap property in O(n) (Floyd build).
  template <typename Pred>
  void remove_if(Pred dead) {
    std::size_t w = 0;
    for (std::size_t r = 0; r < v_.size(); ++r) {
      if (!dead(v_[r])) {
        if (w != r) v_[w] = std::move(v_[r]);
        ++w;
      }
    }
    v_.resize(w);
    if (v_.size() > 1) {
      for (std::size_t i = ((v_.size() - 2) >> 2) + 1; i-- > 0;) sift_down(i);
    }
  }

  void clear() noexcept { v_.clear(); }

 private:
  void sift_up(std::size_t i) {
    Entry e = std::move(v_[i]);
    while (i > 0) {
      const std::size_t p = (i - 1) >> 2;
      if (!Earlier{}(e, v_[p])) break;
      v_[i] = std::move(v_[p]);
      i = p;
    }
    v_[i] = std::move(e);
  }

  void sift_down(std::size_t i) {
    Entry e = std::move(v_[i]);
    const std::size_t n = v_.size();
    for (;;) {
      const std::size_t first = (i << 2) + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t last = first + 4 < n ? first + 4 : n;
      for (std::size_t k = first + 1; k < last; ++k) {
        if (Earlier{}(v_[k], v_[best])) best = k;
      }
      if (!Earlier{}(v_[best], e)) break;
      v_[i] = std::move(v_[best]);
      i = best;
    }
    v_[i] = std::move(e);
  }

  std::vector<Entry> v_;
};

/// Compaction slack shared by both queues: a compaction pass runs when the
/// number of stale (cancelled-but-still-heaped) entries exceeds the live
/// count plus this constant, bounding heap memory at O(live) under any
/// cancel pattern while keeping compaction cost amortized O(1) per cancel.
inline constexpr std::size_t kHeapCompactSlack = 64;

}  // namespace detail

}  // namespace dca::sim
