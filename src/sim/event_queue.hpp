// A deterministic pending-event set for discrete-event simulation.
//
// Events are ordered by (time, sequence number): two events scheduled for
// the same instant fire in the order they were scheduled. The sequence
// number makes the ordering a strict total order, which is what guarantees
// replay determinism.
//
// Storage is the slab/generation scheme from event_store.hpp: callbacks
// live in a chunked pool, the heap holds 24-byte POD entries, and neither
// schedule() nor pop() allocates once the pool is warm. cancel() is an O(1)
// generation bump; cancelled entries are skipped lazily when they surface
// at the top of the heap, with a compaction pass bounding heap memory at
// O(live events) under sustained cancel traffic.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/event_store.hpp"
#include "sim/small_fn.hpp"
#include "sim/types.hpp"

namespace dca::sim {

class EventQueue {
 public:
  using Action = EventFn;

  EventQueue() = default;

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules a callable to fire at absolute time `when`; it is stored
  /// straight into the slab slot (no intermediate EventFn when a raw
  /// closure is passed). Returns a handle usable with cancel().
  template <typename F>
  EventId schedule(SimTime when, F&& action) {
    const std::uint32_t slot = slab_.acquire(std::forward<F>(action));
    const std::uint32_t gen = slab_.gen(slot);
    heap_.push(Entry{when, seq_++, slot, gen});
    ++live_;
    return detail::make_event_id(slot, gen);
  }

  /// Cancels a previously scheduled event. Cancelling an event that already
  /// fired (or was already cancelled) is a harmless no-op: the handle's
  /// generation no longer matches the slot, so stale handles can never
  /// corrupt the live count.
  void cancel(EventId id) {
    if (id == kInvalidEventId) return;
    const std::uint32_t slot = detail::event_slot(id);
    if (!slab_.live(slot, detail::event_gen(id))) return;
    slab_.discard(slot);
    --live_;
    ++stale_;
    if (stale_ > live_ + detail::kHeapCompactSlack) compact();
  }

  /// True when no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }

  /// Number of live events.
  [[nodiscard]] std::size_t size() const noexcept { return live_; }

  /// Time of the earliest live event; kTimeNever when empty.
  [[nodiscard]] SimTime next_time() {
    purge();
    return heap_.empty() ? kTimeNever : heap_.top().when;
  }

  /// Removes and returns the earliest live event.
  /// Precondition: !empty().
  struct Fired {
    SimTime when;
    EventId id;
    Action action;
  };
  Fired pop() {
    purge();
    const Entry top = heap_.top();
    heap_.pop_top();
    --live_;
    return Fired{top.when, detail::make_event_id(top.slot, top.gen),
                 slab_.release(top.slot)};
  }

  /// Discards all pending events.
  void clear() {
    for (const Entry& e : heap_.entries()) {
      if (slab_.live(e.slot, e.gen)) slab_.discard(e.slot);
    }
    heap_.clear();
    live_ = 0;
    stale_ = 0;
  }

  // Introspection for tests and benchmarks: slots ever allocated in the
  // callback pool, and entries currently in the heap (live + stale).
  [[nodiscard]] std::size_t pool_capacity() const noexcept {
    return slab_.capacity();
  }
  [[nodiscard]] std::size_t heap_entries() const noexcept {
    return heap_.size();
  }

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;  // scheduling order; breaks same-instant ties
    std::uint32_t slot;
    std::uint32_t gen;
  };
  struct EarlierEntry {
    [[nodiscard]] bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.when != b.when) return a.when < b.when;
      return a.seq < b.seq;
    }
  };

  // Drops cancelled entries sitting at the top of the heap.
  void purge() {
    while (!heap_.empty() &&
           !slab_.live(heap_.top().slot, heap_.top().gen)) {
      heap_.pop_top();
      --stale_;
    }
  }

  void compact() {
    heap_.remove_if(
        [this](const Entry& e) { return !slab_.live(e.slot, e.gen); });
    stale_ = 0;
  }

  detail::EventSlab slab_;
  detail::QuadHeap<Entry, EarlierEntry> heap_;
  std::uint64_t seq_ = 0;
  std::size_t live_ = 0;
  std::size_t stale_ = 0;  // cancelled but still in the heap
};

}  // namespace dca::sim
