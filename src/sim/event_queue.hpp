// A deterministic pending-event set for discrete-event simulation.
//
// Events are ordered by (time, sequence number): two events scheduled for
// the same instant fire in the order they were scheduled. The sequence
// number makes the ordering a strict total order, which is what guarantees
// replay determinism.
//
// Cancellation is supported through lazy deletion: cancel() marks the
// event's slot and pop() skips cancelled entries. This keeps both schedule
// and cancel at O(log n) amortized without the bookkeeping of an indexed
// heap; cancelled entries are purged as they surface.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/types.hpp"

namespace dca::sim {

/// Opaque handle identifying a scheduled event; used only for cancellation.
using EventId = std::uint64_t;

/// Sentinel returned when a handle is not needed.
inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  using Action = std::function<void()>;

  EventQueue() = default;

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `action` to fire at absolute time `when`.
  /// Returns a handle usable with cancel().
  EventId schedule(SimTime when, Action action) {
    const EventId id = next_id_++;
    heap_.push(Entry{when, id, std::move(action)});
    live_ids_.insert(id);
    return id;
  }

  /// Cancels a previously scheduled event. Cancelling an event that already
  /// fired (or was already cancelled) is a harmless no-op: only ids that
  /// are actually live produce a tombstone, so stale handles can never
  /// corrupt the live count.
  void cancel(EventId id) {
    if (id == kInvalidEventId) return;
    if (live_ids_.erase(id) != 0) cancelled_.insert(id);
  }

  /// True when no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const noexcept { return live_ids_.empty(); }

  /// Number of live events.
  [[nodiscard]] std::size_t size() const noexcept { return live_ids_.size(); }

  /// Time of the earliest live event; kTimeNever when empty.
  [[nodiscard]] SimTime next_time() {
    purge();
    return heap_.empty() ? kTimeNever : heap_.top().when;
  }

  /// Removes and returns the earliest live event.
  /// Precondition: !empty().
  struct Fired {
    SimTime when;
    EventId id;
    Action action;
  };
  Fired pop() {
    purge();
    Entry top = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    live_ids_.erase(top.id);
    return Fired{top.when, top.id, std::move(top.action)};
  }

  /// Discards all pending events.
  void clear() {
    heap_ = {};
    cancelled_.clear();
    live_ids_.clear();
  }

 private:
  struct Entry {
    SimTime when;
    EventId id;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;  // earlier-scheduled first on ties
    }
  };

  // Drops cancelled entries sitting at the top of the heap.
  void purge() {
    while (!heap_.empty()) {
      auto it = cancelled_.find(heap_.top().id);
      if (it == cancelled_.end()) break;
      cancelled_.erase(it);
      heap_.pop();
    }
  }

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> cancelled_;  // cancelled but still in the heap
  std::unordered_set<EventId> live_ids_;   // scheduled, not fired, not cancelled
  EventId next_id_ = 1;  // 0 is kInvalidEventId
};

}  // namespace dca::sim
