// Move-only callables with a large small-buffer optimization, built for
// the event hot path.
//
// std::function heap-allocates any capture larger than ~2 pointers, which
// on the simulation hot path means one malloc/free per scheduled message
// delivery (a delivery closure carries a ~200-byte net::Message by value).
// SmallFn reserves enough inline storage for every closure the engines
// schedule, so the schedule/fire path performs no heap allocation at all;
// callables that genuinely exceed the buffer (none in-tree — the network
// layer static_asserts its delivery closures fit) fall back to the heap
// rather than failing to compile.
//
// Dispatch is a single pointer to a per-type operations table (invoke /
// relocate / destroy), so an engaged SmallFn costs one indirect call to
// fire — same as std::function — without the allocation.
//
// SmallFn is parameterized on the call signature: EventFn (void(), 256-byte
// buffer) is what the event stores hold, TimerFn (void(), 64 bytes) is the
// protocol-timer currency of proto::NodeEnv, and the network's delivery /
// observer hooks use a void(const Message&) instantiation. A smaller
// SmallFn nests inside a larger one as an ordinary callable (one extra
// indirect call to fire), which is how a TimerFn crosses the virtual
// NodeEnv boundary and still lands inline in the event slab.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace dca::sim {

/// Inline capture capacity of the event callback. Sized so a message
/// delivery closure (network pointer + a full net::Message by value) stays
/// inline; net/network.cpp and runner/shard_world.cpp static_assert this.
inline constexpr std::size_t kEventFnCapacity = 256;

/// Inline capture capacity of a protocol timer callback (TimerFn): the
/// AllocatorNode generation-check wrapper around a [this]-style capture.
/// proto/allocator.hpp static_asserts its wrappers fit.
inline constexpr std::size_t kTimerFnCapacity = 64;

/// Inline capture capacity of the network delivery/observer hooks (a
/// [this] capture plus slack for test harness lambdas).
inline constexpr std::size_t kNetHandlerCapacity = 32;

template <typename Sig, std::size_t Capacity = kEventFnCapacity>
class SmallFn;  // only the R(Args...) specialization exists

template <typename R, typename... Args, std::size_t Capacity>
class SmallFn<R(Args...), Capacity> {
 public:
  SmallFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    emplace_fn(std::forward<F>(f));
  }

  SmallFn(SmallFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(buf_, other.buf_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }

  R operator()(Args... args) {
    return ops_->invoke(buf_, std::forward<Args>(args)...);
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  /// Replaces the held callable, constructing the new one directly in the
  /// inline buffer — no intermediate SmallFn temporary, no extra relocate.
  /// This is the in-place path the event slab uses so a 200-byte delivery
  /// closure is memcpy'd exactly once (stack lambda -> slab slot). Passing
  /// a SmallFn rvalue of the same type degrades gracefully to move-assign.
  template <typename F>
  void assign(F&& f) {
    if constexpr (std::is_same_v<std::decay_t<F>, SmallFn>) {
      *this = std::forward<F>(f);
    } else {
      reset();
      emplace_fn(std::forward<F>(f));
    }
  }

  /// True when callables of type F are stored inline (no heap fallback).
  template <typename F>
  static constexpr bool fits_inline() noexcept {
    using D = std::decay_t<F>;
    return sizeof(D) <= Capacity && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

 private:
  struct Ops {
    R (*invoke)(void*, Args...);
    void (*relocate)(void* dst, void* src) noexcept;  // move-construct + destroy src
    void (*destroy)(void*) noexcept;
  };

  template <typename F>
  void emplace_fn(F&& f) {
    using D = std::decay_t<F>;
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      static constexpr Ops ops{
          [](void* p, Args... args) -> R {
            return (*std::launder(reinterpret_cast<D*>(p)))(
                std::forward<Args>(args)...);
          },
          [](void* dst, void* src) noexcept {
            D* s = std::launder(reinterpret_cast<D*>(src));
            ::new (dst) D(std::move(*s));
            s->~D();
          },
          [](void* p) noexcept { std::launder(reinterpret_cast<D*>(p))->~D(); }};
      ops_ = &ops;
    } else {
      // Oversized callable: one owning pointer lives in the buffer.
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      static constexpr Ops ops{
          [](void* p, Args... args) -> R {
            return (**std::launder(reinterpret_cast<D**>(p)))(
                std::forward<Args>(args)...);
          },
          [](void* dst, void* src) noexcept {
            ::new (dst) D*(*std::launder(reinterpret_cast<D**>(src)));
          },
          [](void* p) noexcept {
            delete *std::launder(reinterpret_cast<D**>(p));
          }};
      ops_ = &ops;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[Capacity];
};

/// The event-callback type both engines store per scheduled event.
using EventFn = SmallFn<void(), kEventFnCapacity>;

/// The protocol-timer callback type carried across proto::NodeEnv.
using TimerFn = SmallFn<void(), kTimerFnCapacity>;

}  // namespace dca::sim
