#include "sim/shard.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "sim/cpuset.hpp"

namespace dca::sim {

thread_local int ShardedKernel::tls_current_shard_ = -1;

namespace {

// The legacy striped map, kept as the default for callers that do not
// supply a geometry-aware partition (see cell/partition.hpp).
std::vector<int> striped_map(int n_cells, int n_shards) {
  std::vector<int> map(static_cast<std::size_t>(n_cells > 0 ? n_cells : 0));
  for (int c = 0; c < n_cells; ++c) {
    map[static_cast<std::size_t>(c)] = n_shards > 0 ? c % n_shards : 0;
  }
  return map;
}

}  // namespace

ShardedKernel::ShardedKernel(int n_cells, int n_shards, Duration lookahead,
                             int n_threads)
    : ShardedKernel(striped_map(n_cells, n_shards), n_shards, lookahead,
                    n_threads) {}

ShardedKernel::ShardedKernel(std::vector<int> partition, int n_shards,
                             Duration lookahead, int n_threads)
    : n_shards_(n_shards), lookahead_(lookahead), partition_(std::move(partition)) {
  const int n_cells = static_cast<int>(partition_.size());
  if (n_shards_ < 1 || n_cells < n_shards_) {
    std::fprintf(stderr, "ShardedKernel: invalid shard count %d for %d cells\n",
                 n_shards, n_cells);
    std::abort();
  }
  for (int v : partition_) {
    if (v < 0 || v >= n_shards_) {
      std::fprintf(stderr, "ShardedKernel: partition entry %d outside [0, %d)\n",
                   v, n_shards_);
      std::abort();
    }
  }
  if (lookahead_ <= 0) {
    std::fprintf(stderr, "ShardedKernel: lookahead must be positive\n");
    std::abort();
  }
  if (n_threads <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    n_threads = static_cast<int>(std::min<unsigned>(
        static_cast<unsigned>(n_shards_), hw == 0 ? 1u : hw));
  }
  n_threads_ = std::min(n_threads, n_shards_);
  shards_.resize(static_cast<std::size_t>(n_shards_));
  const auto slots =
      static_cast<std::size_t>(n_shards_) * static_cast<std::size_t>(n_shards_);
  outbox_[0].resize(slots);
  outbox_[1].resize(slots);
}

SimTime ShardedKernel::max_now() const {
  SimTime t = kTimeZero;
  for (const Shard& s : shards_) t = std::max(t, s.now);
  return t;
}

std::uint64_t ShardedKernel::executed() const {
  std::uint64_t n = 0;
  for (const Shard& s : shards_) n += s.executed;
  return n;
}

std::size_t ShardedKernel::pending() const {
  std::size_t n = 0;
  for (const Shard& s : shards_) n += s.queue.size();
  for (const auto& slot : outbox_[0]) n += slot.size();
  for (const auto& slot : outbox_[1]) n += slot.size();
  return n;
}

EventId ShardedKernel::schedule_remote(const EventKey& key, Action action,
                                       int dest) {
  const int src = tls_current_shard_;
  // Cross-shard while running: the lookahead contract guarantees the event
  // lands beyond the current window, so the destination shard cannot have
  // passed it. Violations are scheduler bugs, not recoverable conditions.
  if (key.when < window_cap_) {
    std::fprintf(stderr,
                 "ShardedKernel: lookahead violation (event at %lld inside "
                 "window ending %lld, shard %d -> %d)\n",
                 static_cast<long long>(key.when),
                 static_cast<long long>(window_cap_), src, dest);
    std::abort();
  }
  auto& slot = outbox_[parity_][static_cast<std::size_t>(src) *
                                    static_cast<std::size_t>(n_shards_) +
                                static_cast<std::size_t>(dest)];
  slot.push_back(OutboxEntry{key, std::move(action)});
  return kInvalidEventId;
}

void ShardedKernel::cancel(std::int32_t owner, EventId id) {
  shards_[static_cast<std::size_t>(shard_of(owner))].queue.cancel(id);
}

void ShardedKernel::drain_and_execute(int s) {
  Shard& shard = shards_[static_cast<std::size_t>(s)];
  // Merge mail addressed to this shard from the previous window (the
  // buffer writers are no longer touching). Arbitrary merge order is fine:
  // the queue re-establishes the canonical order.
  auto& inboxes = outbox_[1 - parity_];
  for (int src = 0; src < n_shards_; ++src) {
    auto& slot = inboxes[static_cast<std::size_t>(src) *
                             static_cast<std::size_t>(n_shards_) +
                         static_cast<std::size_t>(s)];
    for (OutboxEntry& e : slot) {
      shard.queue.schedule(e.key, std::move(e.action));
    }
    slot.clear();
  }
  tls_current_shard_ = s;
  while (!shard.queue.empty() && shard.queue.next_key().when < window_cap_) {
    ShardQueue::Fired fired = shard.queue.pop();
    shard.now = fired.key.when;
    ++shard.executed;
    fired.action();
  }
  tls_current_shard_ = -1;
}

void ShardedKernel::window_barrier_completion() {
  // Runs on exactly one (unspecified) worker while all others are parked at
  // the barrier, so plain writes to scheduler state are safe and the
  // barrier's release publishes them.
  if (window_hook_) window_hook_(window_cap_);
  parity_ = 1 - parity_;
  claim_.store(0, std::memory_order_relaxed);

  SimTime gmin = kTimeNever;
  for (Shard& s : shards_) {
    if (!s.queue.empty()) gmin = std::min(gmin, s.queue.next_key().when);
  }
  // Mail written during the window that just finished sits in the buffer
  // the *next* window will drain (1 - parity_ after the flip above).
  for (const auto& slot : outbox_[1 - parity_]) {
    for (const OutboxEntry& e : slot) gmin = std::min(gmin, e.key.when);
  }

  if (gmin == kTimeNever || gmin > deadline_) {
    stop_ = true;
    return;
  }
  if (deadline_ != kTimeNever && gmin + lookahead_ > deadline_) {
    window_cap_ = deadline_ + 1;  // inclusive deadline, matching Simulator
  } else {
    window_cap_ = gmin + lookahead_;
  }
}

void ShardedKernel::run_until(SimTime deadline) {
  deadline_ = deadline;
  stop_ = false;
  claim_.store(0, std::memory_order_relaxed);

  // Seed the first window from current queue state (outboxes are empty or
  // carry mail from a previous run_until call, both buffers get scanned by
  // flipping through the completion path once workers start; simplest is to
  // compute the initial window here with the same logic).
  {
    SimTime gmin = kTimeNever;
    for (Shard& s : shards_) {
      if (!s.queue.empty()) gmin = std::min(gmin, s.queue.next_key().when);
    }
    for (int p = 0; p < 2; ++p) {
      for (const auto& slot : outbox_[p]) {
        for (const OutboxEntry& e : slot) gmin = std::min(gmin, e.key.when);
      }
    }
    if (gmin == kTimeNever || gmin > deadline_) {
      stop_ = true;
    } else if (deadline_ != kTimeNever && gmin + lookahead_ > deadline_) {
      window_cap_ = deadline_ + 1;
    } else {
      window_cap_ = gmin + lookahead_;
    }
  }

  if (!stop_) {
    running_ = true;
    std::barrier barrier(n_threads_, [this]() noexcept {
      window_barrier_completion();
    });

    const std::vector<int> cpus = pin_threads_ ? allowed_cpus() : std::vector<int>{};

    auto work = [this, &barrier, &cpus](int worker) {
      if (!cpus.empty()) {
        pin_current_thread(cpus[static_cast<std::size_t>(worker) % cpus.size()]);
      }
      for (;;) {
        int s;
        while ((s = claim_.fetch_add(1, std::memory_order_relaxed)) <
               n_shards_) {
          drain_and_execute(s);
        }
        barrier.arrive_and_wait();
        if (stop_) break;
      }
    };

    // The calling thread doubles as worker 0; give it back its original
    // affinity once the pool winds down.
    ThreadAffinityGuard restore_caller;
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(n_threads_ - 1));
    for (int i = 1; i < n_threads_; ++i) pool.emplace_back(work, i);
    work(0);
    for (std::thread& t : pool) t.join();
    running_ = false;
  }

  if (deadline_ != kTimeNever) {
    for (Shard& s : shards_) s.now = std::max(s.now, deadline_);
  }
}

}  // namespace dca::sim
