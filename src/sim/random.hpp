// Deterministic random-number streams for the simulator.
//
// Every stochastic component (each cell's traffic source, each latency
// model, ...) owns an independent substream derived from the scenario seed
// and a stream label via splitmix64 mixing. Components therefore stay
// statistically independent *and* the trajectory of one component does not
// shift when another component draws more or fewer variates — the property
// that makes cross-scheme comparisons paired.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "sim/types.hpp"

namespace dca::sim {

/// splitmix64 finalizer; used to derive well-separated substream seeds.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// An independent random stream (mt19937_64 behind a convenience API).
class RngStream {
 public:
  explicit RngStream(std::uint64_t seed) : engine_(seed) {}

  /// Derives the substream identified by (seed, label).
  static RngStream derive(std::uint64_t seed, std::uint64_t label) {
    return RngStream(mix64(mix64(seed) ^ mix64(label + 0x5851F42D4C957F2Dull)));
  }

  /// Uniform double in [0, 1).
  double uniform() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return std::bernoulli_distribution(p)(engine_); }

  /// Exponential variate with the given mean (NOT rate). Requires mean > 0.
  double exponential_mean(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Exponential inter-arrival duration for a Poisson process of `rate`
  /// events per simulated second, as an integral Duration (>= 1 us so that
  /// time always advances).
  Duration exponential_gap(double rate_per_second) {
    const double secs = exponential_distribution_draw(rate_per_second);
    Duration d = from_seconds(secs);
    return d > 0 ? d : 1;
  }

  /// Picks an index in [0, n) uniformly. Requires n > 0.
  std::size_t pick_index(std::size_t n) {
    return static_cast<std::size_t>(
        std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_));
  }

  /// Picks a uniformly random element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) {
    return items[pick_index(items.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[pick_index(i)]);
    }
  }

  std::mt19937_64& engine() noexcept { return engine_; }

 private:
  double exponential_distribution_draw(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  std::mt19937_64 engine_;
};

}  // namespace dca::sim
