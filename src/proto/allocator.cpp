#include "proto/allocator.hpp"

#include <cassert>

#include "traffic/mobility.hpp"

namespace dca::proto {

std::string outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kAcquiredLocal: return "acquired-local";
    case Outcome::kAcquiredUpdate: return "acquired-update";
    case Outcome::kAcquiredSearch: return "acquired-search";
    case Outcome::kBlockedNoChannel: return "blocked-no-channel";
    case Outcome::kBlockedStarved: return "blocked-starved";
    case Outcome::kBlockedTimeout: return "blocked-timeout";
  }
  return "?";
}

AllocatorNode::AllocatorNode(const NodeContext& ctx)
    : use_(ctx.plan->n_channels()),
      clock_(ctx.id),
      id_(ctx.id),
      grid_(ctx.grid),
      plan_(ctx.plan),
      env_(ctx.env),
      resilience_(ctx.resilience),
      policy_(ctx.policy != nullptr ? ctx.policy : &AllocationPolicy::fallback()) {
  assert(grid_ != nullptr && plan_ != nullptr && env_ != nullptr);
  assert(grid_->valid(id_));
}

void AllocatorNode::request_channel(std::uint64_t serial) {
  if (busy_) {
    queue_.push_back(serial);
    return;
  }
  busy_ = true;
  begin_request(serial);
}

void AllocatorNode::begin_request(std::uint64_t serial) {
  if (policy_->gates_admission()) {
    // Mobility serials encode (call, hop); hop > 0 marks a handoff leg.
    const RequestClass cls = traffic::mobility::hop_of(serial) > 0
                                 ? RequestClass::kHandoff
                                 : RequestClass::kNewCall;
    if (!policy_->admit(cls, admission_free_count())) {
      complete_blocked(serial, Outcome::kBlockedNoChannel, 0);
      return;
    }
  }
  start_request(serial);
}

void AllocatorNode::release_channel(cell::ChannelId ch, std::uint64_t serial) {
  assert(use_.contains(ch));
  use_.erase(ch);
  env_->notify_released(id_, ch);
  on_release(ch, serial);
}

void AllocatorNode::complete_acquired(std::uint64_t serial, cell::ChannelId ch,
                                      Outcome how, int attempts) {
  assert(busy_);
  assert(use_.contains(ch) && "subclass must insert into Use before completing");
  env_->notify_acquired(id_, serial, ch, how, attempts);
  advance();
}

void AllocatorNode::complete_blocked(std::uint64_t serial, Outcome why, int attempts) {
  assert(busy_);
  env_->notify_blocked(id_, serial, why, attempts);
  advance();
}

void AllocatorNode::advance() {
  busy_ = false;
  if (queue_.empty()) return;
  const std::uint64_t next = queue_.front();
  queue_.pop_front();
  busy_ = true;
  // Note: a synchronous completion chain recurses here; depth is bounded by
  // the queue length, which only builds while message exchanges are in
  // flight (local acquisitions never queue behind each other).
  begin_request(next);
}

void AllocatorNode::send_to_interference(net::Message msg) {
  msg.from = id_;
  for (const cell::CellId j : interference()) {
    msg.to = j;
    env_->send(msg);
  }
}

void AllocatorNode::disarm_timer() {
  ++timer_gen_;  // invalidates any in-flight firing
  if (timer_ == sim::kInvalidEventId) return;
  env_->cancel_scheduled(timer_);
  timer_ = sim::kInvalidEventId;
}

void AllocatorNode::trace_search_start(std::uint64_t serial,
                                       const net::Timestamp& ts) {
  sim::TraceEvent e;
  e.kind = sim::TraceKind::kSearchStart;
  e.t = env_->now();
  e.cell = static_cast<std::int32_t>(id_);
  e.serial = serial;
  e.a = static_cast<std::int64_t>(ts.count);
  e.b = static_cast<std::int64_t>(ts.node);
  env_->record(e);
}

void AllocatorNode::trace_search_decide(std::uint64_t serial,
                                        cell::ChannelId ch, bool success,
                                        bool timed_out) {
  sim::TraceEvent e;
  e.kind = sim::TraceKind::kSearchDecide;
  e.t = env_->now();
  e.cell = static_cast<std::int32_t>(id_);
  e.channel = static_cast<std::int32_t>(ch);
  e.serial = serial;
  e.a = success ? 1 : 0;
  e.b = timed_out ? 1 : 0;
  env_->record(e);
}

void AllocatorNode::trace_timeout(std::uint64_t serial, int phase_tag) {
  sim::TraceEvent e;
  e.kind = sim::TraceKind::kTimeout;
  e.t = env_->now();
  e.cell = static_cast<std::int32_t>(id_);
  e.serial = serial;
  e.a = phase_tag;
  env_->record(e);
}

}  // namespace dca::proto
