#include "proto/allocator.hpp"

#include <cassert>

#include "traffic/mobility.hpp"

namespace dca::proto {

std::string outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kAcquiredLocal: return "acquired-local";
    case Outcome::kAcquiredUpdate: return "acquired-update";
    case Outcome::kAcquiredSearch: return "acquired-search";
    case Outcome::kBlockedNoChannel: return "blocked-no-channel";
    case Outcome::kBlockedStarved: return "blocked-starved";
    case Outcome::kBlockedTimeout: return "blocked-timeout";
    case Outcome::kBlockedDown: return "blocked-down";
  }
  return "?";
}

AllocatorNode::AllocatorNode(const NodeContext& ctx)
    : use_(ctx.plan->n_channels()),
      clock_(ctx.id),
      id_(ctx.id),
      grid_(ctx.grid),
      plan_(ctx.plan),
      env_(ctx.env),
      resilience_(ctx.resilience),
      policy_(ctx.policy != nullptr ? ctx.policy : &AllocationPolicy::fallback()) {
  assert(grid_ != nullptr && plan_ != nullptr && env_ != nullptr);
  assert(grid_->valid(id_));
}

void AllocatorNode::request_channel(std::uint64_t serial) {
  if (busy_) {
    queue_.push_back(serial);
    return;
  }
  busy_ = true;
  begin_request(serial);
}

void AllocatorNode::begin_request(std::uint64_t serial) {
  current_serial_ = serial;
  if (policy_->gates_admission()) {
    // Mobility serials encode (call, hop); hop > 0 marks a handoff leg.
    const RequestClass cls = traffic::mobility::hop_of(serial) > 0
                                 ? RequestClass::kHandoff
                                 : RequestClass::kNewCall;
    if (!policy_->admit(cls, admission_free_count())) {
      complete_blocked(serial, Outcome::kBlockedNoChannel, 0);
      return;
    }
  }
  start_request(serial);
}

void AllocatorNode::release_channel(cell::ChannelId ch, std::uint64_t serial) {
  assert(use_.contains(ch));
  use_.erase(ch);
  env_->notify_released(id_, ch);
  on_release(ch, serial);
}

void AllocatorNode::complete_acquired(std::uint64_t serial, cell::ChannelId ch,
                                      Outcome how, int attempts) {
  assert(busy_);
  assert(use_.contains(ch) && "subclass must insert into Use before completing");
  env_->notify_acquired(id_, serial, ch, how, attempts);
  advance();
}

void AllocatorNode::complete_blocked(std::uint64_t serial, Outcome why, int attempts) {
  assert(busy_);
  env_->notify_blocked(id_, serial, why, attempts);
  advance();
}

void AllocatorNode::advance() {
  busy_ = false;
  if (queue_.empty()) return;
  const std::uint64_t next = queue_.front();
  queue_.pop_front();
  busy_ = true;
  // Note: a synchronous completion chain recurses here; depth is bounded by
  // the queue length, which only builds while message exchanges are in
  // flight (local acquisitions never queue behind each other).
  begin_request(next);
}

void AllocatorNode::send_to_interference(net::Message msg) {
  msg.from = id_;
  for (const cell::CellId j : interference()) {
    msg.to = j;
    env_->send(msg);
  }
}

void AllocatorNode::disarm_timer() {
  ++timer_gen_;  // invalidates any in-flight firing
  if (timer_ == sim::kInvalidEventId) return;
  env_->cancel_scheduled(timer_);
  timer_ = sim::kInvalidEventId;
}

// -- crash-recovery --------------------------------------------------------

std::vector<std::uint64_t> AllocatorNode::crash_reset() {
  std::vector<std::uint64_t> torn;
  if (busy_) torn.push_back(current_serial_);
  torn.insert(torn.end(), queue_.begin(), queue_.end());
  queue_.clear();
  busy_ = false;
  use_.clear();
  disarm_timer();
  disarm_resync_timer();
  resyncing_ = false;
  on_crash();
  return torn;
}

void AllocatorNode::begin_resync() {
  assert(!busy_ && queue_.empty() && "restart must find the node idle");
  const std::size_t n = nbr_count();
  resyncing_ = true;
  resync_rounds_ = 1;
  resync_waiting_.assign(n, 1);
  resync_missing_ = n;
  if (n == 0) {  // isolated cell: nothing to learn
    resync_done();
    return;
  }
  send_resync_requests();
  arm_resync_timer();
}

void AllocatorNode::send_resync_requests() {
  const auto nbrs = interference();
  for (std::size_t r = 0; r < nbrs.size(); ++r) {
    if (resync_waiting_[r] == 0) continue;
    net::Message m;
    m.kind = net::MsgKind::kResyncReq;
    m.from = id_;
    m.to = nbrs[r];
    env_->send(std::move(m));
  }
}

void AllocatorNode::arm_resync_timer() {
  if (!resilience_.enabled()) return;
  const std::uint64_t gen = ++resync_timer_gen_;
  auto cb = [this, gen]() {
    if (gen != resync_timer_gen_ || !resyncing_) return;
    resync_timer_ = sim::kInvalidEventId;
    // A neighbour that was itself down discarded our request outright (no
    // transport retry reaches a dead process), so the protocol re-sends
    // every timeout until each neighbour has answered.
    ++resync_rounds_;
    send_resync_requests();
    arm_resync_timer();
  };
  static_assert(sim::TimerFn::fits_inline<decltype(cb)>(),
                "resync timer closure must fit TimerFn's inline buffer");
  resync_timer_ =
      env_->schedule_in(resilience_.request_timeout, sim::TimerFn(std::move(cb)));
}

void AllocatorNode::disarm_resync_timer() {
  ++resync_timer_gen_;
  if (resync_timer_ == sim::kInvalidEventId) return;
  env_->cancel_scheduled(resync_timer_);
  resync_timer_ = sim::kInvalidEventId;
}

void AllocatorNode::resync_done() {
  resyncing_ = false;
  disarm_resync_timer();
  on_resync_done();
  env_->notify_resynced(id_, resync_rounds_);
}

bool AllocatorNode::handle_resync(const net::Message& msg) {
  if (msg.kind == net::MsgKind::kResyncReq) {
    // The peer lost all state, including anything it ever promised or
    // deferred for us — make our beliefs about it conservative and void
    // any open round that counted its pre-crash replies. Replying with
    // the *current* Use set (after the abort) is what makes the exchange
    // safe: nothing this node acquires after this reply can rest on a
    // grant the peer no longer remembers.
    on_peer_restart(msg.from);
    net::Message m;
    m.kind = net::MsgKind::kResyncReply;
    m.from = id_;
    m.to = msg.from;
    m.use = use_;
    fill_resync_reply(m);
    env_->send(std::move(m));
    return true;
  }
  if (msg.kind == net::MsgKind::kResyncReply) {
    if (!resyncing_) return true;  // reply to a wave we already closed
    const int r = nbr_rank(msg.from);
    if (r >= 0 && resync_waiting_[static_cast<std::size_t>(r)] != 0) {
      resync_waiting_[static_cast<std::size_t>(r)] = 0;
      --resync_missing_;
      apply_resync_reply(msg);
      if (resync_missing_ == 0) resync_done();
    }
    return true;
  }
  return false;
}

void AllocatorNode::trace_search_start(std::uint64_t serial,
                                       const net::Timestamp& ts) {
  sim::TraceEvent e;
  e.kind = sim::TraceKind::kSearchStart;
  e.t = env_->now();
  e.cell = static_cast<std::int32_t>(id_);
  e.serial = serial;
  e.a = static_cast<std::int64_t>(ts.count);
  e.b = static_cast<std::int64_t>(ts.node);
  env_->record(e);
}

void AllocatorNode::trace_search_decide(std::uint64_t serial,
                                        cell::ChannelId ch, bool success,
                                        bool timed_out) {
  sim::TraceEvent e;
  e.kind = sim::TraceKind::kSearchDecide;
  e.t = env_->now();
  e.cell = static_cast<std::int32_t>(id_);
  e.channel = static_cast<std::int32_t>(ch);
  e.serial = serial;
  e.a = success ? 1 : 0;
  e.b = timed_out ? 1 : 0;
  env_->record(e);
}

void AllocatorNode::trace_timeout(std::uint64_t serial, int phase_tag) {
  sim::TraceEvent e;
  e.kind = sim::TraceKind::kTimeout;
  e.t = env_->now();
  e.cell = static_cast<std::int32_t>(id_);
  e.serial = serial;
  e.a = phase_tag;
  env_->record(e);
}

}  // namespace dca::proto
