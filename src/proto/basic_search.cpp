#include "proto/basic_search.hpp"

#include <cassert>
#include <iterator>

namespace dca::proto {

void BasicSearchNode::start_request(std::uint64_t serial) {
  assert(!search_.has_value());
  Search s;
  s.serial = serial;
  s.ts = clock_.tick();
  s.busy = cell::ChannelSet(spectrum_size());
  search_ = s;

  trace_search_start(serial, s.ts);
  arm_timer(resilience().request_timeout, [this]() { abort_search(); });

  net::Message req;
  req.kind = net::MsgKind::kRequest;
  req.req_type = net::ReqType::kSearch;
  req.serial = serial;
  req.ts = search_->ts;
  send_to_interference(req);
  // Degenerate isolated cell: nobody to ask, finalize immediately.
  maybe_finalize();
}

void BasicSearchNode::on_release(cell::ChannelId, std::uint64_t) {
  // Basic search keeps no remote state: releasing is purely local.
}

void BasicSearchNode::on_message(const net::Message& msg) {
  if (handle_resync(msg)) return;
  clock_.witness(msg.ts);
  switch (msg.kind) {
    case net::MsgKind::kRequest:
      handle_request(msg);
      break;
    case net::MsgKind::kResponse:
      handle_response(msg);
      break;
    case net::MsgKind::kAcquisition:
      handle_acquisition(msg);
      break;
    default:
      assert(false && "unexpected message kind for basic search");
  }
}

void BasicSearchNode::handle_request(const net::Message& msg) {
  assert(msg.req_type == net::ReqType::kSearch);
  if (search_.has_value() && search_->ts < msg.ts) {
    // We have priority: defer the reply until our search completes.
    defer_.push_back(Deferred{msg.from, msg.serial});
    return;
  }
  reply_use_set(msg.from, msg.serial);
}

void BasicSearchNode::reply_use_set(cell::CellId to, std::uint64_t serial) {
  net::Message resp;
  resp.kind = net::MsgKind::kResponse;
  resp.res_type = net::ResType::kSearchReply;
  resp.serial = serial;
  resp.from = id();
  resp.to = to;
  resp.use = use_;
  env().send(resp);
  // Having authorized `to` to pick anything outside our Use set, we must
  // not finalize a selection of our own until `to` announces its decision.
  await_decision_.insert(to);
}

void BasicSearchNode::handle_response(const net::Message& msg) {
  if (!search_.has_value() || msg.serial != search_->serial) return;
  assert(msg.res_type == net::ResType::kSearchReply);
  search_->busy |= msg.use;
  ++search_->responses;
  maybe_finalize();
}

void BasicSearchNode::handle_acquisition(const net::Message& msg) {
  assert(msg.acq_type == net::AcqType::kSearch);
  if (msg.channel != cell::kNoChannel && search_.has_value()) {
    search_->busy.insert(msg.channel);
  }
  await_decision_.erase(msg.from);
  // The announcer's search is over; drop any reply we still owe it. (Only
  // reachable when the announcer aborted on timeout — a deferred searcher
  // cannot normally finalize without our reply. Answering after the abort
  // would re-insert it into await_decision_ and park us forever.)
  for (auto it = defer_.begin(); it != defer_.end();) {
    it = (it->from == msg.from && it->serial == msg.serial) ? defer_.erase(it)
                                                            : std::next(it);
  }
  maybe_finalize();
}

void BasicSearchNode::maybe_finalize() {
  if (!search_.has_value()) return;
  if (search_->responses < static_cast<int>(interference().size())) return;
  if (!await_decision_.empty()) return;
  finalize();
}

void BasicSearchNode::finalize() {
  disarm_timer();
  const Search s = *search_;
  search_.reset();

  cell::ChannelSet freeSet = cell::ChannelSet::all(spectrum_size());
  freeSet -= use_;
  freeSet -= s.busy;
  const cell::ChannelId r = freeSet.first();

  // Announce the decision (even a failed one) so nodes awaiting it unblock
  // and learn what was taken.
  net::Message acq;
  acq.kind = net::MsgKind::kAcquisition;
  acq.acq_type = net::AcqType::kSearch;
  acq.serial = s.serial;
  acq.channel = r;
  send_to_interference(acq);

  // Answer the searches we deferred; they see our (possibly grown) Use set.
  if (r != cell::kNoChannel) use_.insert(r);
  while (!defer_.empty()) {
    const Deferred d = defer_.front();
    defer_.pop_front();
    reply_use_set(d.from, d.serial);
  }

  trace_search_decide(s.serial, r, r != cell::kNoChannel, false);
  if (r != cell::kNoChannel) {
    complete_acquired(s.serial, r, Outcome::kAcquiredSearch, 1);
  } else {
    complete_blocked(s.serial, Outcome::kBlockedNoChannel, 1);
  }
}

void BasicSearchNode::on_crash() {
  search_.reset();
  await_decision_.clear();
  defer_.clear();
}

void BasicSearchNode::on_peer_restart(cell::CellId j) {
  // j forgot the search we were awaiting and every reply it owed us.
  await_decision_.erase(j);
  for (auto it = defer_.begin(); it != defer_.end();) {
    it = it->from == j ? defer_.erase(it) : std::next(it);
  }
  // Our open search may have counted j's pre-crash reply (or j's restarted
  // clock could now issue an older timestamp than ours, breaking the
  // sequencing discipline) — resolve it through the timeout path.
  if (search_.has_value()) abort_search();
}

void BasicSearchNode::abort_search() {
  // The request timer expired with replies or a decision announcement
  // still outstanding (lost peers, paused MSS). Give up on this request:
  // announce a failed decision so everyone we might have blocked
  // unblocks, answer the searches we deferred, and report the timeout.
  assert(search_.has_value());
  disarm_timer();  // also reachable from on_peer_restart, timer still armed
  const Search s = *search_;
  search_.reset();
  trace_timeout(s.serial, 0);

  net::Message acq;
  acq.kind = net::MsgKind::kAcquisition;
  acq.acq_type = net::AcqType::kSearch;
  acq.serial = s.serial;
  acq.channel = cell::kNoChannel;
  send_to_interference(acq);

  // Answer the searches we deferred. They (and any earlier searchers we
  // answered) stay in await_decision_: every searcher eventually
  // announces — even an aborting one — so the entries clear, and a future
  // search of ours must keep honouring the mutual-exclusion discipline.
  while (!defer_.empty()) {
    const Deferred d = defer_.front();
    defer_.pop_front();
    reply_use_set(d.from, d.serial);
  }

  trace_search_decide(s.serial, cell::kNoChannel, false, true);
  complete_blocked(s.serial, Outcome::kBlockedTimeout, 1);
}

}  // namespace dca::proto
