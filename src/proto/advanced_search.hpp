// The advanced search scheme with allocated channel sets (Prakash,
// Shivaratri & Singhal, PODC'95) — the paper's reference [8], which its
// Section 6 compares the adaptive scheme against.
//
// Core idea: channel *allocation* is decoupled from channel *use*. Each
// cell owns an allocated set, grown on demand from a cold start; a call is
// served instantly from any allocated-but-idle channel, and the channel
// STAYS allocated when the call ends — so a transient hot spot keeps
// serving follow-up calls at zero cost from channels it already pulled in.
// (A full static pre-allocation would be self-defeating here: under a
// cluster plan the primaries of an interior region cover the whole
// spectrum, leaving nothing unallocated to grab and no unique owner to
// transfer from.)
//
// When the allocated set is exhausted, the cell runs a search over its
// interference region (replies carry each neighbour's allocated and busy
// sets, timestamp-sequentialized exactly like the basic search):
//   1. if some channel is unallocated everywhere in the region, allocate
//      it (announce to the region) and use it;
//   2. otherwise pick a channel r that is idle at every neighbour holding
//      it, and negotiate a transfer with ALL owners (a channel may be
//      allocated to several mutually non-interfering cells of the region):
//         TRANSFER(r) -> each owner;  owner: AGREE (reserves r) or DENY;
//         c: on unanimous agreement KEEP(r) (owners deallocate and
//         announce), otherwise ABORT to the owners that agreed.
//      Several rounds may be needed if owners refuse — the extra message
//      legs the paper's Section 6 criticizes; the adaptive scheme performs
//      the equivalent in one borrowing round.
//   3. if neither exists, the call drops.
//
// Safety: the allocated sets of interfering cells are disjoint (checked by
// tests); use ⊆ allocated, so co-channel interference reduces to allocated
// exclusivity. Concurrent allocations are sequentialized by the search
// deferral/waiting mechanism (the searching state spans the transfer
// negotiation, and the decision announcement closes it); transfers are
// serialized at the owner via reservation.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "proto/allocator.hpp"

namespace dca::proto {

class AdvancedSearchNode final : public AllocatorNode {
 public:
  /// `max_transfer_rounds`: owners to try before giving up on a request.
  AdvancedSearchNode(const NodeContext& ctx, int max_transfer_rounds);

  void on_message(const net::Message& msg) override;

  [[nodiscard]] bool is_searching() const override { return search_.has_value(); }
  /// A cell holding any allocated channels is a "borrower" in spirit
  /// (it pulled spectrum out of the common pool); used for N_borrow.
  [[nodiscard]] bool is_borrowing() const override { return !allocated_.empty(); }

  // -- introspection -----------------------------------------------------
  [[nodiscard]] const cell::ChannelSet& allocated() const noexcept {
    return allocated_;
  }
  [[nodiscard]] cell::ChannelSet region_allocated() const;
  [[nodiscard]] std::uint64_t transfers_in() const noexcept { return transfers_in_; }
  [[nodiscard]] std::uint64_t transfers_out() const noexcept {
    return transfers_out_;
  }
  [[nodiscard]] std::uint64_t transfer_denials() const noexcept {
    return transfer_denials_;
  }

 protected:
  void start_request(std::uint64_t serial) override;
  void on_release(cell::ChannelId ch, std::uint64_t serial) override;
  void on_crash() override;
  void on_peer_restart(cell::CellId j) override;
  void fill_resync_reply(net::Message& m) const override;
  void apply_resync_reply(const net::Message& m) override;
  /// Instantly servable channels plus spectrum unallocated anywhere in the
  /// region (obtainable by a step-1 allocation without a transfer).
  [[nodiscard]] int admission_free_count() const override {
    cell::ChannelSet avail = allocated_;
    avail -= use_;
    avail -= offered_;
    avail |= region_allocated().complement();
    return avail.size();
  }

 private:
  struct Search {
    std::uint64_t serial = 0;
    net::Timestamp ts;
    int responses = 0;
    bool info_complete = false;
    // Transfer negotiation state:
    std::vector<std::pair<cell::ChannelId, std::vector<cell::CellId>>> candidates;
    std::size_t next_candidate = 0;
    int rounds = 0;  // transfer attempts so far
    cell::ChannelId pending_channel = cell::kNoChannel;
    std::vector<cell::CellId> pending_owners;
    std::vector<cell::CellId> agreed;
    int owner_responses = 0;
    bool denied = false;
  };
  struct Deferred {
    cell::CellId from = cell::kNoCell;
    std::uint64_t serial = 0;
  };

  void handle_request(const net::Message& msg);
  void handle_response(const net::Message& msg);
  void handle_acquisition(const net::Message& msg);
  void handle_release(const net::Message& msg);
  void handle_transfer(const net::Message& msg);
  void reply_sets(cell::CellId to, std::uint64_t serial);
  void maybe_select();
  void select_or_transfer();
  void try_next_transfer();
  void finish_with(cell::ChannelId r, Outcome how, bool timed_out = false);
  void abort_search();
  void send_transfer(cell::CellId to, std::uint64_t serial, cell::ChannelId r,
                     net::TransferOp op);

  int max_transfer_rounds_;
  cell::ChannelSet allocated_;                      // our allocated set
  cell::ChannelSet offered_;                        // reserved for a requester
  std::unordered_map<cell::ChannelId, cell::CellId> offered_to_;
  std::vector<cell::ChannelSet> known_allocated_;   // by nbr_rank
  std::vector<cell::ChannelSet> known_busy_;        // by nbr_rank
  std::optional<Search> search_;
  std::unordered_set<cell::CellId> await_decision_;
  std::deque<Deferred> defer_;
  std::uint64_t transfers_in_ = 0;
  std::uint64_t transfers_out_ = 0;
  std::uint64_t transfer_denials_ = 0;
};

}  // namespace dca::proto
