// The basic search scheme (Dong & Lai, ICDCS'97), as summarized in
// Section 2.2 of the paper.
//
// A node needing a channel queries every cell in its interference region;
// each replies with its set of used channels; the requester picks any
// channel absent from all replies. Concurrent searches in overlapping
// regions are sequentialized by Lamport timestamps:
//
//  * a node that is itself mid-search DEFERS its reply to any request
//    carrying a HIGHER timestamp until its own search completes;
//  * a node replies immediately to a LOWER-timestamped request, but must
//    then wait for that searcher's decision announcement before making its
//    own selection (otherwise both could pick the same channel). This is
//    the `waiting` mechanism the adaptive scheme's search mode inherits.
//
// The decision announcement is an ACQUISITION broadcast (sent even on
// failure, with kNoChannel, so waiters unblock). Note on accounting: the
// paper's Table 1 charges basic search 2N (request + response only); our
// measured count includes the announcement (≈3N). The table generators
// report both views (see DESIGN.md, faithfulness note 6).
//
// Searches gather fresh information each time; no persistent per-neighbour
// state is kept and call termination sends no messages.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "proto/allocator.hpp"

namespace dca::proto {

class BasicSearchNode final : public AllocatorNode {
 public:
  explicit BasicSearchNode(const NodeContext& ctx) : AllocatorNode(ctx) {}

  void on_message(const net::Message& msg) override;

  /// A search-scheme node is "searching" while its query is outstanding.
  [[nodiscard]] bool is_searching() const override { return search_.has_value(); }

 protected:
  void start_request(std::uint64_t serial) override;
  void on_release(cell::ChannelId ch, std::uint64_t serial) override;
  void on_crash() override;
  void on_peer_restart(cell::CellId j) override;

 private:
  struct Search {
    std::uint64_t serial = 0;
    net::Timestamp ts;
    int responses = 0;              // replies received so far
    cell::ChannelSet busy;          // union of Use sets seen (replies + announcements)
  };
  struct Deferred {
    cell::CellId from = cell::kNoCell;
    std::uint64_t serial = 0;
  };

  void handle_request(const net::Message& msg);
  void handle_response(const net::Message& msg);
  void handle_acquisition(const net::Message& msg);
  void reply_use_set(cell::CellId to, std::uint64_t serial);
  void maybe_finalize();
  void finalize();
  void abort_search();

  std::optional<Search> search_;
  // Searchers we answered whose decision announcement is still pending
  // (the adaptive scheme's waiting_i, kept as a set for debuggability).
  std::unordered_set<cell::CellId> await_decision_;
  std::deque<Deferred> defer_;
};

}  // namespace dca::proto
