#include "proto/basic_update.hpp"

#include <cassert>

namespace dca::proto {

BasicUpdateNode::BasicUpdateNode(const NodeContext& ctx, int max_attempts,
                                 ChannelPick pick)
    : AllocatorNode(ctx), max_attempts_(max_attempts), pick_(pick) {
  assert(max_attempts_ >= 1);
  known_use_.assign(nbr_count(), cell::ChannelSet(spectrum_size()));
  pending_grants_.assign(nbr_count(), cell::ChannelSet(spectrum_size()));
}

cell::ChannelSet BasicUpdateNode::interfered() const {
  cell::ChannelSet out(spectrum_size());
  for (std::size_t r = 0; r < nbr_count(); ++r) {
    out |= known_use_[r];
    out |= pending_grants_[r];
  }
  return out;
}

void BasicUpdateNode::start_request(std::uint64_t serial) {
  try_attempt(serial, 1);
}

void BasicUpdateNode::try_attempt(std::uint64_t serial, int round) {
  assert(!attempt_.has_value());
  cell::ChannelSet freeSet = cell::ChannelSet::all(spectrum_size());
  freeSet -= use_;
  freeSet -= interfered();
  if (freeSet.empty()) {
    complete_blocked(serial, Outcome::kBlockedNoChannel, round - 1);
    return;
  }
  // Default policy picks uniformly among believed-free channels: concurrent
  // requesters that deterministically picked the lowest id would collide
  // every round (the policy ablation bench quantifies this).
  const cell::ChannelId r =
      policy().pick(freeSet, pick_, env().rng(id()), pick_cursor_);

  Attempt a;
  a.serial = serial;
  a.channel = r;
  a.ts = clock_.tick();
  a.round = round;
  attempt_ = a;
  granters_.clear();
  arm_timer(resilience().request_timeout, [this]() { abort_attempt(); });

  net::Message req;
  req.kind = net::MsgKind::kRequest;
  req.req_type = net::ReqType::kUpdate;
  req.serial = serial;
  req.channel = r;
  req.ts = attempt_->ts;
  // The round number rides along and is echoed by every response, so a
  // response straggling in from a timed-out earlier round of the same
  // request cannot be miscounted into the current round.
  req.wave = static_cast<std::uint64_t>(round);
  send_to_interference(req);

  if (interference().empty()) conclude_attempt();  // isolated cell
}

void BasicUpdateNode::on_release(cell::ChannelId ch, std::uint64_t serial) {
  net::Message rel;
  rel.kind = net::MsgKind::kRelease;
  rel.serial = serial;
  rel.channel = ch;
  send_to_interference(rel);
}

void BasicUpdateNode::on_message(const net::Message& msg) {
  if (handle_resync(msg)) return;
  clock_.witness(msg.ts);
  switch (msg.kind) {
    case net::MsgKind::kRequest:
      handle_request(msg);
      break;
    case net::MsgKind::kResponse:
      handle_response(msg);
      break;
    case net::MsgKind::kAcquisition:
      if (msg.channel != cell::kNoChannel) {
        if (const int r = nbr_rank(msg.from); r >= 0) {
          known_use_[static_cast<std::size_t>(r)].insert(msg.channel);
          pending_grants_[static_cast<std::size_t>(r)].erase(msg.channel);
        }
      }
      break;
    case net::MsgKind::kRelease:
      if (const int r = nbr_rank(msg.from); r >= 0) {
        known_use_[static_cast<std::size_t>(r)].erase(msg.channel);
        pending_grants_[static_cast<std::size_t>(r)].erase(msg.channel);
      }
      break;
    default:
      assert(false && "unexpected message kind for basic update");
  }
}

void BasicUpdateNode::handle_request(const net::Message& msg) {
  assert(msg.req_type == net::ReqType::kUpdate);
  const cell::ChannelId r = msg.channel;
  if (use_.contains(r)) {
    reject(msg.from, msg.serial, msg.wave, r);
    return;
  }
  if (attempt_.has_value() && attempt_->channel == r && !attempt_->aborted) {
    if (attempt_->ts < msg.ts) {
      // Our older request wins the tie.
      reject(msg.from, msg.serial, msg.wave, r);
      return;
    }
    // The older request wins: grant it and abort our own attempt; we will
    // retry with a different channel once our in-flight responses return.
    attempt_->aborted = true;
  }
  grant(msg.from, msg.serial, msg.wave, r);
}

void BasicUpdateNode::grant(cell::CellId to, std::uint64_t serial,
                            std::uint64_t wave, cell::ChannelId r) {
  if (const int rank = nbr_rank(to); rank >= 0) {
    pending_grants_[static_cast<std::size_t>(rank)].insert(r);
  }
  net::Message resp;
  resp.kind = net::MsgKind::kResponse;
  resp.res_type = net::ResType::kGrant;
  resp.serial = serial;
  resp.wave = wave;
  resp.channel = r;
  resp.from = id();
  resp.to = to;
  env().send(resp);
}

void BasicUpdateNode::reject(cell::CellId to, std::uint64_t serial,
                             std::uint64_t wave, cell::ChannelId r) {
  net::Message resp;
  resp.kind = net::MsgKind::kResponse;
  resp.res_type = net::ResType::kReject;
  resp.serial = serial;
  resp.wave = wave;
  resp.channel = r;
  resp.from = id();
  resp.to = to;
  env().send(resp);
}

void BasicUpdateNode::handle_response(const net::Message& msg) {
  if (!attempt_.has_value() || msg.serial != attempt_->serial) return;
  if (msg.wave != static_cast<std::uint64_t>(attempt_->round)) return;
  ++attempt_->responses;
  if (msg.res_type == net::ResType::kGrant) {
    granters_.push_back(msg.from);
  } else {
    assert(msg.res_type == net::ResType::kReject);
    attempt_->rejected = true;
  }
  if (attempt_->responses == static_cast<int>(interference().size()))
    conclude_attempt();
}

void BasicUpdateNode::conclude_attempt() {
  assert(attempt_.has_value());
  disarm_timer();
  const Attempt a = *attempt_;
  attempt_.reset();

  if (!a.rejected && !a.aborted) {
    use_.insert(a.channel);
    net::Message acq;
    acq.kind = net::MsgKind::kAcquisition;
    acq.acq_type = net::AcqType::kNonSearch;
    acq.serial = a.serial;
    acq.channel = a.channel;
    send_to_interference(acq);
    complete_acquired(a.serial, a.channel, Outcome::kAcquiredUpdate, a.round);
    return;
  }

  // Failed attempt: return the grants we did collect.
  for (const cell::CellId j : granters_) {
    net::Message rel;
    rel.kind = net::MsgKind::kRelease;
    rel.serial = a.serial;
    rel.channel = a.channel;
    rel.from = id();
    rel.to = j;
    env().send(rel);
  }
  granters_.clear();

  if (a.round >= max_attempts_) {
    complete_blocked(a.serial, Outcome::kBlockedStarved, a.round);
    return;
  }
  try_attempt(a.serial, a.round + 1);
}

void BasicUpdateNode::on_crash() {
  attempt_.reset();
  granters_.clear();
  // Believed neighbour state is gone; the resync replies rebuild U_j.
  // Grants promised before the crash are unrecoverable — the requesters
  // holding them abort their rounds when our kResyncReq arrives.
  for (std::size_t r = 0; r < known_use_.size(); ++r) {
    known_use_[r].clear();
    pending_grants_[r].clear();
  }
}

void BasicUpdateNode::on_peer_restart(cell::CellId j) {
  if (const int r = nbr_rank(j); r >= 0) {
    // j's calls were torn down and its memory of our grants is gone.
    known_use_[static_cast<std::size_t>(r)].clear();
    pending_grants_[static_cast<std::size_t>(r)].clear();
  }
  // A grant j sent before crashing is void: resolve the open round through
  // the timeout path before we answer with our state snapshot.
  if (attempt_.has_value()) abort_attempt();
}

void BasicUpdateNode::apply_resync_reply(const net::Message& m) {
  if (const int r = nbr_rank(m.from); r >= 0) {
    known_use_[static_cast<std::size_t>(r)] = m.use;
  }
}

void BasicUpdateNode::abort_attempt() {
  // Request timer expired with responses outstanding. Release the channel
  // to the WHOLE region, not just known granters: grants may still be in
  // flight, and per-link FIFO guarantees our REQUEST precedes this
  // RELEASE at every neighbour, so every pending grant gets cleaned up.
  assert(attempt_.has_value());
  disarm_timer();  // also reachable from on_peer_restart, timer still armed
  const Attempt a = *attempt_;
  attempt_.reset();
  granters_.clear();
  trace_timeout(a.serial, a.round);

  net::Message rel;
  rel.kind = net::MsgKind::kRelease;
  rel.serial = a.serial;
  rel.channel = a.channel;
  send_to_interference(rel);

  if (a.round >= max_attempts_) {
    complete_blocked(a.serial, Outcome::kBlockedTimeout, a.round);
    return;
  }
  try_attempt(a.serial, a.round + 1);
}

}  // namespace dca::proto
