// The channel-allocator node framework.
//
// Every allocation scheme (FCA, basic search, basic update, advanced
// update, and the paper's adaptive scheme) is an AllocatorNode subclass:
// an event-driven state machine owning the per-cell protocol state. The
// paper's pseudo-code is written with blocking `wait UNTIL` primitives;
// here each wait becomes an explicit pending-operation record advanced by
// on_message().
//
// Concurrency discipline: an MSS serves ONE local channel request at a
// time; requests that arrive while an acquisition is in flight queue FIFO
// in the base class. (In local/fixed modes an acquisition completes
// synchronously, so the queue only ever builds while a node is exchanging
// messages.)
//
// The node talks to the rest of the simulated world only through NodeEnv:
// virtual time, message send, and request-outcome notifications. That
// boundary is what lets tests drive a node deterministically without the
// full runner.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "cell/grid.hpp"
#include "cell/reuse.hpp"
#include "cell/spectrum.hpp"
#include "net/message.hpp"
#include "net/timestamp.hpp"
#include "proto/policy.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/trace.hpp"
#include "sim/types.hpp"

namespace dca::proto {

/// How a channel request ended.
enum class Outcome : std::uint8_t {
  kAcquiredLocal = 0,   // satisfied from the primary set, zero latency
  kAcquiredUpdate = 1,  // borrowed via an update-style handshake
  kAcquiredSearch = 2,  // obtained via a search-style exhaustive query
  kBlockedNoChannel = 3,  // no interference-free channel existed
  kBlockedStarved = 4,    // update-scheme retry cap exhausted (starvation)
  kBlockedTimeout = 5,    // a protocol round timed out (lossy/stalled peers)
  kBlockedDown = 6,       // serving MSS crashed (or is resyncing after one)
};

[[nodiscard]] inline bool is_acquired(Outcome o) noexcept {
  return o == Outcome::kAcquiredLocal || o == Outcome::kAcquiredUpdate ||
         o == Outcome::kAcquiredSearch;
}

[[nodiscard]] std::string outcome_name(Outcome o);

/// Services the world provides to a node.
class NodeEnv {
 public:
  virtual ~NodeEnv() = default;

  [[nodiscard]] virtual sim::SimTime now() const = 0;

  /// Sends a control message (delivered after the network latency).
  virtual void send(net::Message msg) = 0;

  /// The latency bound T (paper notation).
  [[nodiscard]] virtual sim::Duration latency_bound() const = 0;

  /// Request `serial` at `cellId` obtained channel `ch`.
  /// `attempts` = borrow attempts consumed (the paper's m; 0 for local).
  virtual void notify_acquired(cell::CellId cellId, std::uint64_t serial,
                               cell::ChannelId ch, Outcome how, int attempts) = 0;

  /// Request `serial` at `cellId` failed.
  virtual void notify_blocked(cell::CellId cellId, std::uint64_t serial, Outcome why,
                              int attempts) = 0;

  /// Channel `ch` is no longer used at `cellId` (invariant bookkeeping).
  virtual void notify_released(cell::CellId cellId, cell::ChannelId ch) = 0;

  /// The call currently carried on `from_ch` at `cellId` switches to
  /// `to_ch` (intra-cell channel reassignment, Cox & Reudink style). The
  /// environment re-checks the interference invariant for `to_ch` and
  /// re-keys its call bookkeeping. Precondition: exactly one active call
  /// uses `from_ch` at `cellId`.
  virtual void notify_reassigned(cell::CellId cellId, cell::ChannelId from_ch,
                                 cell::ChannelId to_ch) = 0;

  /// Per-node RNG substream (used for randomized channel picks).
  virtual sim::RngStream& rng(cell::CellId cellId) = 0;

  // -- optional services (default no-ops keep lightweight test envs valid)

  /// Schedules `fn` after `delay` simulated microseconds (protocol
  /// timers). The callable is a sim::TimerFn — a small inline-only
  /// closure, so crossing this virtual boundary never allocates.
  /// Environments without a scheduler may keep the default, which
  /// silently drops the request — the generation counter in
  /// AllocatorNode::arm_timer keeps that safe.
  virtual sim::EventId schedule_in(sim::Duration delay, sim::TimerFn fn) {
    (void)delay;
    (void)fn;
    return sim::kInvalidEventId;
  }

  /// Cancels a timer returned by schedule_in (no-op by default).
  virtual void cancel_scheduled(sim::EventId id) { (void)id; }

  /// Structured conformance-trace sink. Default: discard.
  virtual void record(const sim::TraceEvent& ev) { (void)ev; }

  /// Radio-quality gate: false when `ch` is currently fading at `cellId`
  /// and must not be picked for a *new* acquisition. Default: all channels
  /// usable (the paper's ideal-radio setting).
  [[nodiscard]] virtual bool channel_usable(cell::CellId cellId,
                                            cell::ChannelId ch) const {
    (void)cellId;
    (void)ch;
    return true;
  }

  /// A restarted node finished its cold-state resync after `rounds`
  /// request waves and is ready to re-admit traffic. Default: ignore
  /// (environments without the crash fault model never see it).
  virtual void notify_resynced(cell::CellId cellId, int rounds) {
    (void)cellId;
    (void)rounds;
  }
};

/// Fault-tolerance knobs shared by all schemes. The all-zero default
/// disables every timer, which preserves the fault-free message
/// trajectories bit for bit.
struct Resilience {
  /// How long a node waits on the replies of one protocol round before
  /// aborting the round. 0 = wait forever (safe only on lossless links).
  sim::Duration request_timeout = 0;

  [[nodiscard]] bool enabled() const noexcept { return request_timeout > 0; }
};

/// Immutable wiring shared by all nodes of a world.
struct NodeContext {
  cell::CellId id = cell::kNoCell;
  const cell::HexGrid* grid = nullptr;
  const cell::ReusePlan* plan = nullptr;
  NodeEnv* env = nullptr;
  Resilience resilience;
  /// Shared allocation policy; nullptr falls back to
  /// AllocationPolicy::fallback() (paper behaviour). Last member so the
  /// many 4/5-element aggregate-init sites keep compiling unchanged.
  const AllocationPolicy* policy = nullptr;
};

class AllocatorNode {
 public:
  explicit AllocatorNode(const NodeContext& ctx);
  virtual ~AllocatorNode() = default;

  AllocatorNode(const AllocatorNode&) = delete;
  AllocatorNode& operator=(const AllocatorNode&) = delete;

  [[nodiscard]] cell::CellId id() const noexcept { return id_; }

  /// Channels currently carrying calls in this cell (the paper's Use_i).
  [[nodiscard]] const cell::ChannelSet& in_use() const noexcept { return use_; }

  /// Submits a channel request (one per call). The outcome is reported via
  /// NodeEnv::notify_acquired / notify_blocked, possibly synchronously.
  void request_channel(std::uint64_t serial);

  /// A call using `ch` in this cell ended; runs the scheme's release
  /// protocol. `serial` is the acquisition the release is billed to (0 =
  /// unattributed). Precondition: ch ∈ in_use().
  void release_channel(cell::ChannelId ch, std::uint64_t serial = 0);

  /// Delivers one protocol message addressed to this node.
  virtual void on_message(const net::Message& msg) = 0;

  /// Scheme-specific mode for metrics (adaptive: paper's mode_i; others 0).
  [[nodiscard]] virtual int mode() const { return 0; }

  /// True when the node considers itself in a borrowing-type state
  /// (drives the paper's N_borrow statistic; always false for baselines
  /// without the notion).
  [[nodiscard]] virtual bool is_borrowing() const { return false; }

  /// True while the node has a search-style query outstanding (drives the
  /// paper's N_search statistic).
  [[nodiscard]] virtual bool is_searching() const { return false; }

  /// True while a channel request is being served (including queued ones).
  [[nodiscard]] bool busy() const noexcept { return busy_; }

  /// Number of locally queued (not yet started) requests.
  [[nodiscard]] std::size_t queued() const noexcept { return queue_.size(); }

  // -- crash-recovery fault model ------------------------------------------

  /// The MSS process died: every piece of volatile protocol state is lost.
  /// Returns the serials of the in-flight plus queued requests (in service
  /// order) so the environment can close them as blocked; the environment
  /// tears down the live calls itself (no release protocol runs — the
  /// neighbours learn about the freed channels through the resync and the
  /// ordinary announcements that follow).
  ///
  /// The Lamport clock deliberately survives the crash: ticking on from
  /// the pre-crash value keeps every post-restart timestamp ahead of
  /// anything neighbours already witnessed from this node, which the
  /// search-order discipline depends on.
  std::vector<std::uint64_t> crash_reset();

  /// The MSS restarted cold. Sends kResyncReq to every interference
  /// neighbour and keeps re-sending every request_timeout until each has
  /// answered with a kResyncReply state snapshot; until then resyncing()
  /// is true and the environment must not admit traffic here. Completion
  /// is reported through NodeEnv::notify_resynced.
  void begin_resync();

  /// True between begin_resync() and the last neighbour's state reply.
  [[nodiscard]] bool resyncing() const noexcept { return resyncing_; }

 protected:
  /// Begins serving one request. Subclasses must eventually call
  /// complete_acquired() or complete_blocked() with the same serial.
  virtual void start_request(std::uint64_t serial) = 0;

  /// The node's view of how many channels a fresh request could use right
  /// now — the estimate the policy admission gate compares against. Only
  /// consulted when policy().gates_admission() is true, so the default
  /// (non-gating) policy costs nothing here. The base default is the
  /// loosest sensible bound; schemes that track remote state override it
  /// with their actual believed-free count.
  [[nodiscard]] virtual int admission_free_count() const {
    return spectrum_size() - use_.size();
  }

  /// Scheme-specific release protocol (messaging); base handles Use_i and
  /// world notification before invoking this.
  virtual void on_release(cell::ChannelId ch, std::uint64_t serial) = 0;

  // -- crash-recovery hooks (defaults suit stateless schemes like FCA) -----

  /// Wipe every scheme-owned piece of volatile state (open rounds, known
  /// neighbour sets, deferred work). Called by crash_reset() after the
  /// base state is gone; must not send messages.
  virtual void on_crash() {}

  /// Interference neighbour `j` restarted cold (its kResyncReq arrived).
  /// Implementations must (a) drop every belief about j — known use sets,
  /// pending grants/promises/offers towards j, deferred work from j — and
  /// (b) abort any open protocol round through the scheme's existing
  /// timeout path: a reply j sent before crashing is void (j no longer
  /// remembers the grant), so a round that counted it must not conclude.
  /// Treating "peer restarted" exactly like "round timed out" is what
  /// closes the stale-grant race.
  virtual void on_peer_restart(cell::CellId j) { (void)j; }

  /// Add scheme-specific payload to an outgoing kResyncReply (m.use is
  /// already this node's Use set).
  virtual void fill_resync_reply(net::Message& m) const { (void)m; }

  /// Absorb a neighbour's kResyncReply state snapshot during resync.
  virtual void apply_resync_reply(const net::Message& m) { (void)m; }

  /// All neighbours answered; runs before NodeEnv::notify_resynced (e.g.
  /// the adaptive scheme re-evaluates its mode here).
  virtual void on_resync_done() {}

  /// Intercepts kResyncReq / kResyncReply. Every scheme's on_message must
  /// call this first and return when it handles the message.
  bool handle_resync(const net::Message& msg);

  // -- completion helpers (advance the local FIFO) -------------------------
  void complete_acquired(std::uint64_t serial, cell::ChannelId ch, Outcome how,
                         int attempts);
  void complete_blocked(std::uint64_t serial, Outcome why, int attempts);

  // -- conveniences ---------------------------------------------------------
  [[nodiscard]] std::span<const cell::CellId> interference() const {
    return grid_->interference(id_);
  }

  /// Dense rank of `j` in this node's interference list (0..|IN_i|-1), or
  /// -1 when j is not an interference neighbour. The schemes' per-
  /// neighbour bookkeeping vectors (U_j, pending grants, allocated sets)
  /// are rank-indexed so a node's footprint scales with |IN_i| instead of
  /// the whole grid — the difference between O(cells * |IN|) and the
  /// O(cells^2) that made metro-scale grids unrunnable. |IN_i| is a couple
  /// of dozen cells at most, so the linear scan beats any map.
  [[nodiscard]] int nbr_rank(cell::CellId j) const {
    const auto nbrs = grid_->interference(id_);
    for (std::size_t r = 0; r < nbrs.size(); ++r) {
      if (nbrs[r] == j) return static_cast<int>(r);
    }
    return -1;
  }
  [[nodiscard]] std::size_t nbr_count() const {
    return grid_->interference(id_).size();
  }
  [[nodiscard]] int spectrum_size() const noexcept { return plan_->n_channels(); }
  [[nodiscard]] const cell::ChannelSet& primary() const { return plan_->primary(id_); }
  [[nodiscard]] NodeEnv& env() const noexcept { return *env_; }
  [[nodiscard]] const cell::HexGrid& grid() const noexcept { return *grid_; }
  [[nodiscard]] const cell::ReusePlan& plan() const noexcept { return *plan_; }
  [[nodiscard]] const AllocationPolicy& policy() const noexcept { return *policy_; }

  /// Sends `msg` (with from/to filled in) to every cell in IN_i.
  void send_to_interference(net::Message msg);

  // -- protocol timer (fault hardening) ------------------------------------

  [[nodiscard]] const Resilience& resilience() const noexcept {
    return resilience_;
  }
  [[nodiscard]] bool timeouts_enabled() const noexcept {
    return resilience_.enabled();
  }

  /// Arms the node's single protocol timer, replacing any armed one. The
  /// callback runs only if this arming is still the latest when it fires
  /// (a generation counter absorbs lazily-cancelled events and
  /// environments that cannot cancel). No-op when timeouts are disabled.
  /// The wrapped callback must fit TimerFn's inline buffer — every timer
  /// in-tree is a [this]-capture, so arming never allocates.
  template <typename F>
  void arm_timer(sim::Duration delay, F&& fn) {
    if (!resilience_.enabled()) return;
    disarm_timer();
    const std::uint64_t gen = timer_gen_;
    auto cb = [this, gen, f = std::forward<F>(fn)]() mutable {
      if (gen != timer_gen_) return;  // superseded or disarmed meanwhile
      timer_ = sim::kInvalidEventId;
      ++timer_gen_;
      f();
    };
    static_assert(sim::TimerFn::fits_inline<decltype(cb)>(),
                  "protocol timer closure must fit TimerFn's inline buffer; "
                  "grow sim::kTimerFnCapacity if a scheme's timer capture grew");
    timer_ = env_->schedule_in(delay, sim::TimerFn(std::move(cb)));
  }
  void disarm_timer();

  // -- conformance trace emission ------------------------------------------

  void trace_search_start(std::uint64_t serial, const net::Timestamp& ts);
  void trace_search_decide(std::uint64_t serial, cell::ChannelId ch,
                           bool success, bool timed_out);
  void trace_timeout(std::uint64_t serial, int phase_tag);

  cell::ChannelSet use_;        // Use_i
  net::LamportClock clock_;     // request timestamping

 private:
  void advance();
  /// Runs the policy admission gate, then start_request or an immediate
  /// block. The single entry point for serving a request (fresh or
  /// dequeued), so gated and ungated paths stay aligned across schemes.
  void begin_request(std::uint64_t serial);

  // Resync round machinery. The resync exchange needs its own timer slot:
  // scheme code re-arms the single protocol timer freely, and a node can
  // be answering protocol traffic while still waiting on resync replies.
  void send_resync_requests();
  void arm_resync_timer();
  void disarm_resync_timer();
  void resync_done();

  cell::CellId id_;
  const cell::HexGrid* grid_;
  const cell::ReusePlan* plan_;
  NodeEnv* env_;
  Resilience resilience_;
  const AllocationPolicy* policy_;
  bool busy_ = false;
  std::uint64_t current_serial_ = 0;  // the serial begin_request is serving
  std::deque<std::uint64_t> queue_;
  sim::EventId timer_ = sim::kInvalidEventId;
  std::uint64_t timer_gen_ = 0;

  bool resyncing_ = false;
  int resync_rounds_ = 0;                     // request waves sent so far
  std::vector<std::uint8_t> resync_waiting_;  // by neighbour rank
  std::size_t resync_missing_ = 0;
  sim::EventId resync_timer_ = sim::kInvalidEventId;
  std::uint64_t resync_timer_gen_ = 0;
};

}  // namespace dca::proto
