// tuned-threshold: the adaptive scheme's hysteresis pair (θ_l, θ_h) as
// policy parameters instead of compiled-in AdaptiveParams constants.
//
//   policy = tuned-threshold(theta_low=3, theta_high=6)
//
// Only the thresholds() hook is overridden: channel pick and admission
// stay at paper behaviour, so for non-adaptive schemes this policy is
// trace-identical to 'default'. The PAPERS.md ML-hybrid line (arXiv
// 1309.7439) is the motivation — a learned policy produces exactly such a
// pair per operating point; this is the seam it plugs into.
#include <memory>
#include <string>

#include "proto/policies/builtin.hpp"
#include "proto/policy.hpp"

namespace dca::proto::policies {
namespace {

class TunedThresholdPolicy final : public AllocationPolicy {
 public:
  TunedThresholdPolicy(int low, int high) : low_(low), high_(high) {}

  [[nodiscard]] std::string name() const override { return "tuned-threshold"; }

  [[nodiscard]] std::string describe() const override {
    return "tuned-threshold(theta_low=" + std::to_string(low_) +
           ",theta_high=" + std::to_string(high_) + ")";
  }

  [[nodiscard]] Thresholds thresholds(Thresholds base) const override {
    (void)base;
    return Thresholds{low_, high_};
  }

 private:
  int low_;
  int high_;
};

std::unique_ptr<AllocationPolicy> make(const PolicySpec& spec, std::string& error) {
  for (const auto& [k, v] : spec.params) {
    (void)v;
    if (k != "theta_low" && k != "theta_high") {
      error = "policy 'tuned-threshold': unknown parameter '" + k +
              "' (takes theta_low, theta_high)";
      return nullptr;
    }
  }
  const int low = static_cast<int>(spec.get("theta_low", 3));
  const int high = static_cast<int>(spec.get("theta_high", 6));
  // Same invariants AdaptiveParams::check() asserts — reject at parse
  // time with a message instead of aborting at node construction.
  if (low < 1) {
    error = "policy 'tuned-threshold': theta_low must be >= 1 (got " +
            std::to_string(low) + ")";
    return nullptr;
  }
  if (high <= low) {
    error = "policy 'tuned-threshold': theta_high must be > theta_low (got " +
            std::to_string(high) + " <= " + std::to_string(low) + ")";
    return nullptr;
  }
  return std::make_unique<TunedThresholdPolicy>(low, high);
}

}  // namespace

void register_tuned_threshold(PolicyRegistry& reg) {
  reg.add("tuned-threshold",
          "adaptive hysteresis pair as parameters: theta_low (def 3), theta_high (def 6)",
          &make);
}

}  // namespace dca::proto::policies
