// handoff-priority: classic guard-channel admission. New calls are only
// admitted while the node believes more than `guard` channels are locally
// free; handoff legs are always admitted. Dropping a call mid-conversation
// is costlier than blocking a fresh one, so reserving a small headroom for
// incoming handoffs trades new-call blocking for handoff success — the
// priority-class scheme from the channel-borrowing literature in PAPERS.md.
//
//   policy = handoff-priority(guard=2)
#include <memory>
#include <string>

#include "proto/policies/builtin.hpp"
#include "proto/policy.hpp"

namespace dca::proto::policies {
namespace {

class HandoffPriorityPolicy final : public AllocationPolicy {
 public:
  explicit HandoffPriorityPolicy(int guard) : guard_(guard) {}

  [[nodiscard]] std::string name() const override { return "handoff-priority"; }

  [[nodiscard]] std::string describe() const override {
    return "handoff-priority(guard=" + std::to_string(guard_) + ")";
  }

  [[nodiscard]] bool gates_admission() const override { return true; }

  [[nodiscard]] bool admit(RequestClass cls, int free_channels) const override {
    if (cls == RequestClass::kHandoff) return true;
    return free_channels > guard_;
  }

 private:
  int guard_;
};

std::unique_ptr<AllocationPolicy> make(const PolicySpec& spec, std::string& error) {
  for (const auto& [k, v] : spec.params) {
    (void)v;
    if (k != "guard") {
      error = "policy 'handoff-priority': unknown parameter '" + k +
              "' (takes guard)";
      return nullptr;
    }
  }
  const int guard = static_cast<int>(spec.get("guard", 2));
  if (guard < 0) {
    error = "policy 'handoff-priority': guard must be >= 0 (got " +
            std::to_string(guard) + ")";
    return nullptr;
  }
  return std::make_unique<HandoffPriorityPolicy>(guard);
}

}  // namespace

void register_handoff_priority(PolicyRegistry& reg) {
  reg.add("handoff-priority",
          "guard-channel admission: block new calls when free <= guard (def 2); handoffs always admitted",
          &make);
}

}  // namespace dca::proto::policies
