// Registration manifest for built-in allocation policies.
//
// Each policy lives in one .cpp file in this directory that implements a
// register_<policy>(PolicyRegistry&) function. Listing it here (and adding
// the .cpp to src/proto/CMakeLists.txt) is the whole integration: the
// registry calls every function below exactly once, on first use, so the
// policy is available in every binary that links dca_proto regardless of
// static-initializer link order.
#pragma once

namespace dca::proto {
class PolicyRegistry;
namespace policies {

void register_tuned_threshold(PolicyRegistry& reg);
void register_handoff_priority(PolicyRegistry& reg);

/// Called once by PolicyRegistry::instance(); add new policies here.
inline void register_builtin(PolicyRegistry& reg) {
  register_tuned_threshold(reg);
  register_handoff_priority(reg);
}

}  // namespace policies
}  // namespace dca::proto
