#include "proto/fca.hpp"

#include <cassert>

namespace dca::proto {

void FcaNode::start_request(std::uint64_t serial) {
  const cell::ChannelSet free = primary() - use_;
  // Skip channels currently fading at this cell (no-op with an ideal
  // radio, where channel_usable is constant true).
  cell::ChannelId r = free.first();
  while (r != cell::kNoChannel && !env().channel_usable(id(), r)) {
    r = free.next_after(r);
  }
  if (r == cell::kNoChannel) {
    complete_blocked(serial, Outcome::kBlockedNoChannel, 0);
    return;
  }
  use_.insert(r);
  complete_acquired(serial, r, Outcome::kAcquiredLocal, 0);
}

void FcaNode::on_release(cell::ChannelId, std::uint64_t) {
  // Static allocation: nothing to tell anyone.
}

void FcaNode::on_message(const net::Message& msg) {
  // FCA keeps no remote state, but a restarted neighbour still expects a
  // resync reply before re-admitting traffic.
  if (handle_resync(msg)) return;
  assert(false && "FCA nodes never exchange messages beyond resync");
}

}  // namespace dca::proto
