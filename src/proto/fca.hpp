// Fixed channel allocation (FCA): the purely static baseline.
//
// Each cell serves requests exclusively from its statically assigned
// primary set PR_i. The reuse pattern guarantees that primary sets of
// interfering cells are disjoint, so no coordination (and no messaging) is
// ever needed: channel acquisition time is zero and message complexity is
// zero, but a loaded cell drops calls even when its neighbourhood holds
// idle channels — exactly the trade-off the paper's introduction describes.
#pragma once

#include "proto/allocator.hpp"

namespace dca::proto {

class FcaNode final : public AllocatorNode {
 public:
  explicit FcaNode(const NodeContext& ctx) : AllocatorNode(ctx) {}

  void on_message(const net::Message& msg) override;

 protected:
  void start_request(std::uint64_t serial) override;
  void on_release(cell::ChannelId ch, std::uint64_t serial) override;
  [[nodiscard]] int admission_free_count() const override {
    return (primary() - use_).size();
  }
};

}  // namespace dca::proto
