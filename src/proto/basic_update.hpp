// The basic update scheme (Dong & Lai, ICDCS'97), as summarized in
// Section 2.2 of the paper.
//
// Every node continuously mirrors the channel usage of its interference
// region: each acquisition and release is broadcast to all neighbours in
// the region. To acquire, a node picks a channel it believes free, asks
// every neighbour for permission, and proceeds only on unanimous grants.
// Conflicting concurrent requests for the same channel are arbitrated by
// timestamp: the younger requester grants the older one and aborts its own
// attempt. A rejected (or aborted) requester releases the grants it did
// collect and retries with another channel — potentially forever under
// heavy load (Table 3's ∞); the simulator bounds retries with
// `max_attempts` and reports the overflow as starvation.
//
// State kept per neighbour j: U_j (what we believe j uses, maintained by
// ACQUISITION/RELEASE broadcasts) and the set of channels we have granted
// to j but not yet seen confirmed/released (pending grants). The paper's
// I_i is derived as the union of both — see DESIGN.md, faithfulness
// note 5, for why grants must survive snapshot updates.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "proto/allocator.hpp"
#include "proto/policy.hpp"

namespace dca::proto {

class BasicUpdateNode final : public AllocatorNode {
 public:
  /// `max_attempts`: retry bound before a request is declared starved.
  /// `pick`: how the attempt channel is chosen among believed-free ones.
  BasicUpdateNode(const NodeContext& ctx, int max_attempts,
                  ChannelPick pick = ChannelPick::kRandom);

  void on_message(const net::Message& msg) override;

  [[nodiscard]] bool has_pending_attempt() const noexcept {
    return attempt_.has_value();
  }

  /// What this node believes is used around it (∪ U_j ∪ pending grants).
  [[nodiscard]] cell::ChannelSet interfered() const;

 protected:
  void start_request(std::uint64_t serial) override;
  void on_release(cell::ChannelId ch, std::uint64_t serial) override;
  void on_crash() override;
  void on_peer_restart(cell::CellId j) override;
  void apply_resync_reply(const net::Message& m) override;
  [[nodiscard]] int admission_free_count() const override {
    cell::ChannelSet freeSet = cell::ChannelSet::all(spectrum_size());
    freeSet -= use_;
    freeSet -= interfered();
    return freeSet.size();
  }

 private:
  struct Attempt {
    std::uint64_t serial = 0;
    cell::ChannelId channel = cell::kNoChannel;
    net::Timestamp ts;
    int responses = 0;
    bool rejected = false;   // some neighbour said no
    bool aborted = false;    // we granted the same channel to an older request
    int round = 1;           // 1-based attempt number (paper's m)
  };

  void try_attempt(std::uint64_t serial, int round);
  void handle_request(const net::Message& msg);
  void handle_response(const net::Message& msg);
  void conclude_attempt();
  void abort_attempt();
  void grant(cell::CellId to, std::uint64_t serial, std::uint64_t wave,
             cell::ChannelId r);
  void reject(cell::CellId to, std::uint64_t serial, std::uint64_t wave,
              cell::ChannelId r);

  int max_attempts_;
  ChannelPick pick_;
  cell::ChannelId pick_cursor_ = cell::kNoChannel;
  std::optional<Attempt> attempt_;
  std::vector<cell::ChannelSet> known_use_;       // U_j, indexed by nbr_rank
  std::vector<cell::ChannelSet> pending_grants_;  // granted to j, unconfirmed (by nbr_rank)
  std::vector<cell::CellId> granters_;            // who granted the current attempt
};

}  // namespace dca::proto
