#include "proto/advanced_update.hpp"

#include <cassert>

namespace dca::proto {

AdvancedUpdateNode::AdvancedUpdateNode(const NodeContext& ctx, int max_attempts)
    : AllocatorNode(ctx), max_attempts_(max_attempts) {
  assert(max_attempts_ >= 1);
  known_use_.assign(nbr_count(), cell::ChannelSet(spectrum_size()));
  compute_borrowable_colors();
}

void AdvancedUpdateNode::compute_borrowable_colors() {
  const int nc = plan().n_colors();
  borrowable_colors_.assign(static_cast<std::size_t>(nc), false);
  for (int k = 0; k < nc; ++k) {
    if (k == plan().color_of(id())) continue;  // own colour is not borrowing
    // The primaries of colour k we would ask.
    std::vector<cell::CellId> arbiters;
    for (const cell::CellId p : interference())
      if (plan().color_of(p) == k) arbiters.push_back(p);
    if (arbiters.empty()) continue;
    // Every potential conflicting secondary c'' in IN must be visible to at
    // least one arbiter (i.e. lie in that arbiter's interference region).
    bool safe = true;
    for (const cell::CellId other : interference()) {
      if (plan().color_of(other) == k) continue;  // a primary, asked directly
      bool covered = false;
      for (const cell::CellId p : arbiters) {
        if (grid().interferes(p, other)) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        safe = false;
        break;
      }
    }
    borrowable_colors_[static_cast<std::size_t>(k)] = safe;
  }
}

cell::ChannelSet AdvancedUpdateNode::interfered() const {
  cell::ChannelSet out(spectrum_size());
  for (std::size_t r = 0; r < nbr_count(); ++r) out |= known_use_[r];
  return out;
}

bool AdvancedUpdateNode::believed_free(cell::ChannelId r) const {
  if (use_.contains(r)) return false;
  for (std::size_t j = 0; j < nbr_count(); ++j)
    if (known_use_[j].contains(r)) return false;
  return true;
}

void AdvancedUpdateNode::start_request(std::uint64_t serial) {
  try_attempt(serial, 1);
}

void AdvancedUpdateNode::try_attempt(std::uint64_t serial, int round) {
  assert(!attempt_.has_value());

  // First preference: one of our own primary channels — no handshake, but
  // respect outstanding promises we made for it.
  cell::ChannelSet localFree = primary() - use_ - interfered();
  for (const auto& [ch, promise] : promises_) localFree.erase(ch);
  const cell::ChannelId own = localFree.first();
  if (own != cell::kNoChannel) {
    use_.insert(own);
    net::Message acq;
    acq.kind = net::MsgKind::kAcquisition;
    acq.acq_type = net::AcqType::kNonSearch;
    acq.serial = serial;
    acq.channel = own;
    send_to_interference(acq);
    complete_acquired(serial, own, Outcome::kAcquiredLocal, round - 1);
    return;
  }

  // Borrow: a believed-free non-primary channel that has at least one
  // primary owner inside our interference region to arbitrate it.
  cell::ChannelSet candidates = cell::ChannelSet::all(spectrum_size());
  candidates -= primary();
  candidates -= use_;
  candidates -= interfered();
  std::vector<cell::ChannelId> viable;
  for (cell::ChannelId r = candidates.first(); r != cell::kNoChannel;
       r = candidates.next_after(r)) {
    if (color_borrowable(plan().color_of_channel(r))) viable.push_back(r);
  }
  if (viable.empty()) {
    complete_blocked(serial, Outcome::kBlockedNoChannel, round - 1);
    return;
  }
  const cell::ChannelId r = viable[env().rng(id()).pick_index(viable.size())];
  const auto targets = plan().primaries_in_interference(grid(), id(), r);

  Attempt a;
  a.serial = serial;
  a.channel = r;
  a.ts = clock_.tick();
  a.expected = static_cast<int>(targets.size());
  a.round = round;
  a.targets.assign(targets.begin(), targets.end());
  attempt_ = a;
  granters_.clear();
  arm_timer(resilience().request_timeout, [this]() { abort_attempt(); });

  net::Message req;
  req.kind = net::MsgKind::kRequest;
  req.req_type = net::ReqType::kUpdate;
  req.serial = serial;
  req.channel = r;
  req.ts = attempt_->ts;
  // Round tag, echoed by responses, so stragglers from a timed-out round
  // cannot be miscounted into the current one.
  req.wave = static_cast<std::uint64_t>(round);
  req.from = id();
  for (const cell::CellId p : attempt_->targets) {
    req.to = p;
    env().send(req);
  }
}

void AdvancedUpdateNode::on_release(cell::ChannelId ch, std::uint64_t serial) {
  net::Message rel;
  rel.kind = net::MsgKind::kRelease;
  rel.serial = serial;
  rel.channel = ch;
  send_to_interference(rel);
}

void AdvancedUpdateNode::on_message(const net::Message& msg) {
  if (handle_resync(msg)) return;
  clock_.witness(msg.ts);
  switch (msg.kind) {
    case net::MsgKind::kRequest:
      handle_request(msg);
      break;
    case net::MsgKind::kResponse:
      handle_response(msg);
      break;
    case net::MsgKind::kAcquisition:
      if (msg.channel != cell::kNoChannel) {
        if (const int r = nbr_rank(msg.from); r >= 0)
          known_use_[static_cast<std::size_t>(r)].insert(msg.channel);
        // A confirmed acquisition settles any promise of that channel.
        if (auto it = promises_.find(msg.channel);
            it != promises_.end() && it->second.to == msg.from) {
          promises_.erase(it);
        }
      }
      break;
    case net::MsgKind::kRelease:
      if (const int r = nbr_rank(msg.from); r >= 0)
        known_use_[static_cast<std::size_t>(r)].erase(msg.channel);
      if (auto it = promises_.find(msg.channel);
          it != promises_.end() && it->second.to == msg.from) {
        promises_.erase(it);
      }
      break;
    default:
      assert(false && "unexpected message kind for advanced update");
  }
}

void AdvancedUpdateNode::handle_request(const net::Message& msg) {
  const cell::ChannelId r = msg.channel;
  assert(plan().is_primary(id(), r) && "borrow requests only reach primaries");

  if (!believed_free(r)) {
    send_response(msg.from, msg.serial, msg.wave, r, net::ResType::kReject);
    return;
  }
  if (const auto it = promises_.find(r); it != promises_.end()) {
    // Already promised away. An older request has priority on paper, but
    // the promise stands: answer conditionally (the Fig. 11 flaw).
    const bool requester_is_older = msg.ts < it->second.ts;
    send_response(msg.from, msg.serial, msg.wave, r,
                  requester_is_older ? net::ResType::kConditionalGrant
                                     : net::ResType::kReject);
    return;
  }
  promises_[r] = Promise{msg.from, msg.ts};
  send_response(msg.from, msg.serial, msg.wave, r, net::ResType::kGrant);
}

void AdvancedUpdateNode::send_response(cell::CellId to, std::uint64_t serial,
                                       std::uint64_t wave, cell::ChannelId r,
                                       net::ResType type) {
  net::Message resp;
  resp.kind = net::MsgKind::kResponse;
  resp.res_type = type;
  resp.serial = serial;
  resp.wave = wave;
  resp.channel = r;
  resp.from = id();
  resp.to = to;
  env().send(resp);
}

void AdvancedUpdateNode::handle_response(const net::Message& msg) {
  if (!attempt_.has_value() || msg.serial != attempt_->serial) return;
  if (msg.wave != static_cast<std::uint64_t>(attempt_->round)) return;
  ++attempt_->responses;
  switch (msg.res_type) {
    case net::ResType::kGrant:
      granters_.push_back(msg.from);
      break;
    case net::ResType::kConditionalGrant:
      attempt_->conditional = true;
      break;
    default:
      attempt_->rejected = true;
      break;
  }
  if (attempt_->responses == attempt_->expected) conclude_attempt();
}

void AdvancedUpdateNode::conclude_attempt() {
  assert(attempt_.has_value());
  disarm_timer();
  const Attempt a = *attempt_;
  attempt_.reset();

  if (!a.rejected && !a.conditional) {
    use_.insert(a.channel);
    net::Message acq;
    acq.kind = net::MsgKind::kAcquisition;
    acq.acq_type = net::AcqType::kNonSearch;
    acq.serial = a.serial;
    acq.channel = a.channel;
    send_to_interference(acq);
    complete_acquired(a.serial, a.channel, Outcome::kAcquiredUpdate, a.round);
    return;
  }

  if (a.conditional && !a.rejected) ++conditional_failures_;

  for (const cell::CellId p : granters_) {
    net::Message rel;
    rel.kind = net::MsgKind::kRelease;
    rel.serial = a.serial;
    rel.channel = a.channel;
    rel.from = id();
    rel.to = p;
    env().send(rel);
  }
  granters_.clear();

  if (a.round >= max_attempts_) {
    complete_blocked(a.serial, Outcome::kBlockedStarved, a.round);
    return;
  }
  try_attempt(a.serial, a.round + 1);
}

void AdvancedUpdateNode::on_crash() {
  attempt_.reset();
  granters_.clear();
  // Promises made before the crash are unrecoverable; the requesters
  // holding them abort their rounds when our kResyncReq arrives.
  promises_.clear();
  for (std::size_t r = 0; r < known_use_.size(); ++r) known_use_[r].clear();
}

void AdvancedUpdateNode::on_peer_restart(cell::CellId j) {
  if (const int r = nbr_rank(j); r >= 0) {
    known_use_[static_cast<std::size_t>(r)].clear();
  }
  // Unlock every channel promised to j — it no longer remembers the grant.
  for (auto it = promises_.begin(); it != promises_.end();) {
    it = it->second.to == j ? promises_.erase(it) : std::next(it);
  }
  // A grant (or promise) j issued before crashing is void: resolve the
  // open round through the timeout path before answering.
  if (attempt_.has_value()) abort_attempt();
}

void AdvancedUpdateNode::apply_resync_reply(const net::Message& m) {
  if (const int r = nbr_rank(m.from); r >= 0) {
    known_use_[static_cast<std::size_t>(r)] = m.use;
  }
}

void AdvancedUpdateNode::abort_attempt() {
  // Request timer expired with arbiter responses outstanding. Release the
  // channel at every arbiter we asked — a grant (and thus a promise) may
  // still be in flight, and per-link FIFO guarantees the REQUEST precedes
  // this RELEASE, so every promise gets cleaned up.
  assert(attempt_.has_value());
  disarm_timer();  // also reachable from on_peer_restart, timer still armed
  const Attempt a = *attempt_;
  attempt_.reset();
  granters_.clear();
  trace_timeout(a.serial, a.round);

  net::Message rel;
  rel.kind = net::MsgKind::kRelease;
  rel.serial = a.serial;
  rel.channel = a.channel;
  rel.from = id();
  for (const cell::CellId p : a.targets) {
    rel.to = p;
    env().send(rel);
  }

  if (a.round >= max_attempts_) {
    complete_blocked(a.serial, Outcome::kBlockedTimeout, a.round);
    return;
  }
  try_attempt(a.serial, a.round + 1);
}

}  // namespace dca::proto
