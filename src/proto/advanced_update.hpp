// The advanced update scheme (Dong & Lai, OSU TR-48 1996), as the paper
// characterizes it in Section 5/6 and Fig. 11.
//
// Like basic update, every acquisition/release is broadcast to the whole
// interference region (the 2N term in Table 1). Unlike basic update, a
// *borrow* request for channel r is sent only to NP(c, r) — the cells in
// IN_c for which r is a primary channel (n_p of them, typically 2–3) —
// which is where the message savings come from. A cell acquires one of its
// own primary channels without any handshake at all (acquisition time 0
// for the ξ₁ fraction in Table 1).
//
// Each primary owner p arbitrates its channel: p grants r if, to its
// knowledge, r is free in its own interference region; while a grant is
// outstanding ("promised"), a second request for r receives
//  * REJECT            if the new request is younger than the promise,
//  * CONDITIONAL GRANT if the new request is older (it has priority but p
//    has already promised r away).
// A requester succeeds only on unanimous *unconditional* grants; a
// conditional grant counts as failure. This is exactly the unfairness the
// paper's Fig. 11 exhibits: when a younger request's messages overtake an
// older one's, the primaries promise the channel to the younger request
// and the older one — despite its priority — fails. The bench
// `fig11_advanced_update_unfairness` reproduces the scenario verbatim.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "proto/allocator.hpp"

namespace dca::proto {

class AdvancedUpdateNode final : public AllocatorNode {
 public:
  AdvancedUpdateNode(const NodeContext& ctx, int max_attempts);

  void on_message(const net::Message& msg) override;

  /// Timestamp-inversion instrumentation for the Fig. 11 experiment:
  /// number of borrow attempts that failed only because of a conditional
  /// grant (i.e. the requester had priority but the channel was promised
  /// to a younger request).
  [[nodiscard]] std::uint64_t conditional_failures() const noexcept {
    return conditional_failures_;
  }

  [[nodiscard]] cell::ChannelSet interfered() const;

  /// True iff borrowing a channel of colour `color` is *arbitration-safe*
  /// for this cell: for every potentially conflicting cell c'' in IN_c,
  /// some primary of that colour lies in IN_c ∩ IN_{c''} (or c'' is itself
  /// such a primary), so the primaries we ask collectively observe every
  /// conflict. On interior cells of a cluster-7 plan this always holds;
  /// near grid boundaries some colours are not safely borrowable and are
  /// excluded from the candidate set (see DESIGN.md faithfulness notes).
  [[nodiscard]] bool color_borrowable(int color) const {
    return borrowable_colors_[static_cast<std::size_t>(color)];
  }

 protected:
  void start_request(std::uint64_t serial) override;
  void on_release(cell::ChannelId ch, std::uint64_t serial) override;
  void on_crash() override;
  void on_peer_restart(cell::CellId j) override;
  void apply_resync_reply(const net::Message& m) override;
  [[nodiscard]] int admission_free_count() const override {
    cell::ChannelSet freeSet = cell::ChannelSet::all(spectrum_size());
    freeSet -= use_;
    freeSet -= interfered();
    return freeSet.size();
  }

 private:
  struct Attempt {
    std::uint64_t serial = 0;
    cell::ChannelId channel = cell::kNoChannel;
    net::Timestamp ts;
    int expected = 0;   // |NP(c, r)|
    int responses = 0;
    bool rejected = false;
    bool conditional = false;  // saw a conditional grant
    int round = 1;
    std::vector<cell::CellId> targets;  // NP(c, r), kept for abort cleanup
  };
  /// An outstanding promise of one of our primary channels.
  struct Promise {
    cell::CellId to = cell::kNoCell;
    net::Timestamp ts;  // timestamp of the promised request
  };

  void compute_borrowable_colors();
  void try_attempt(std::uint64_t serial, int round);
  void handle_request(const net::Message& msg);
  void handle_response(const net::Message& msg);
  void conclude_attempt();
  void abort_attempt();
  void send_response(cell::CellId to, std::uint64_t serial, std::uint64_t wave,
                     cell::ChannelId r, net::ResType type);
  /// True if channel r is believed free in our whole interference region.
  [[nodiscard]] bool believed_free(cell::ChannelId r) const;

  int max_attempts_;
  std::optional<Attempt> attempt_;
  std::vector<cell::ChannelSet> known_use_;                 // U_j by nbr_rank
  std::unordered_map<cell::ChannelId, Promise> promises_;   // our primaries only
  std::vector<cell::CellId> granters_;
  std::vector<bool> borrowable_colors_;  // by colour class
  std::uint64_t conditional_failures_ = 0;
};

}  // namespace dca::proto
