#include "proto/advanced_search.hpp"

#include <cassert>
#include <iterator>

namespace dca::proto {

AdvancedSearchNode::AdvancedSearchNode(const NodeContext& ctx,
                                       int max_transfer_rounds)
    : AllocatorNode(ctx),
      max_transfer_rounds_(max_transfer_rounds),
      allocated_(ctx.plan->n_channels()),
      offered_(ctx.plan->n_channels()) {
  assert(max_transfer_rounds_ >= 1);
  // Allocation is demand-driven from a cold start: a full static
  // pre-allocation would leave interior regions with no unallocated
  // channel to grab and no unique owner to transfer from.
  known_allocated_.assign(nbr_count(), cell::ChannelSet(spectrum_size()));
  known_busy_.assign(nbr_count(), cell::ChannelSet(spectrum_size()));
}

cell::ChannelSet AdvancedSearchNode::region_allocated() const {
  cell::ChannelSet out = allocated_;
  for (std::size_t r = 0; r < nbr_count(); ++r) out |= known_allocated_[r];
  return out;
}

void AdvancedSearchNode::start_request(std::uint64_t serial) {
  // Serve from the allocated set instantly whenever possible — channels
  // reserved for an in-flight transfer (offered_) are off limits.
  const cell::ChannelSet ready = allocated_ - use_ - offered_;
  const cell::ChannelId r = ready.first();
  if (r != cell::kNoChannel) {
    use_.insert(r);
    complete_acquired(serial, r, Outcome::kAcquiredLocal, 0);
    return;
  }

  assert(!search_.has_value());
  Search s;
  s.serial = serial;
  s.ts = clock_.tick();
  search_ = s;
  trace_search_start(serial, s.ts);
  arm_timer(resilience().request_timeout, [this]() { abort_search(); });

  net::Message req;
  req.kind = net::MsgKind::kRequest;
  req.req_type = net::ReqType::kSearch;
  req.serial = serial;
  req.ts = search_->ts;
  send_to_interference(req);
  if (interference().empty()) {
    search_->info_complete = true;
    maybe_select();
  }
}

void AdvancedSearchNode::on_release(cell::ChannelId, std::uint64_t) {
  // The defining trick of the scheme: the channel STAYS allocated to this
  // cell, so a follow-up call is served instantly with zero messages.
}

void AdvancedSearchNode::on_message(const net::Message& msg) {
  if (handle_resync(msg)) return;
  clock_.witness(msg.ts);
  switch (msg.kind) {
    case net::MsgKind::kRequest:
      handle_request(msg);
      break;
    case net::MsgKind::kResponse:
      handle_response(msg);
      break;
    case net::MsgKind::kAcquisition:
      handle_acquisition(msg);
      break;
    case net::MsgKind::kRelease:
      handle_release(msg);
      break;
    case net::MsgKind::kTransfer:
      handle_transfer(msg);
      break;
    default:
      assert(false && "unexpected message kind for advanced search");
  }
}

void AdvancedSearchNode::handle_request(const net::Message& msg) {
  assert(msg.req_type == net::ReqType::kSearch);
  if (search_.has_value() && search_->ts < msg.ts) {
    defer_.push_back(Deferred{msg.from, msg.serial});
    return;
  }
  reply_sets(msg.from, msg.serial);
}

void AdvancedSearchNode::reply_sets(cell::CellId to, std::uint64_t serial) {
  net::Message resp;
  resp.kind = net::MsgKind::kResponse;
  resp.res_type = net::ResType::kSearchReply;
  resp.serial = serial;
  resp.from = id();
  resp.to = to;
  resp.use = use_;          // busy set
  resp.alloc = allocated_;  // allocated set
  env().send(resp);
  await_decision_.insert(to);
}

void AdvancedSearchNode::handle_response(const net::Message& msg) {
  if (!search_.has_value() || msg.serial != search_->serial) return;
  assert(msg.res_type == net::ResType::kSearchReply);
  if (const int r = nbr_rank(msg.from); r >= 0) {
    known_allocated_[static_cast<std::size_t>(r)] = msg.alloc;
    known_busy_[static_cast<std::size_t>(r)] = msg.use;
  }
  ++search_->responses;
  if (search_->responses == static_cast<int>(interference().size())) {
    search_->info_complete = true;
  }
  maybe_select();
}

void AdvancedSearchNode::handle_acquisition(const net::Message& msg) {
  assert(msg.acq_type == net::AcqType::kSearch);
  if (msg.channel != cell::kNoChannel) {
    if (const int r = nbr_rank(msg.from); r >= 0) {
      known_allocated_[static_cast<std::size_t>(r)].insert(msg.channel);
      known_busy_[static_cast<std::size_t>(r)].insert(msg.channel);
    }
  }
  await_decision_.erase(msg.from);
  // The announcer's search is over; drop any reply we still owe it (only
  // reachable when the announcer aborted on timeout). Answering later
  // would re-insert it into await_decision_ with no announcement coming.
  for (auto it = defer_.begin(); it != defer_.end();) {
    it = (it->from == msg.from && it->serial == msg.serial) ? defer_.erase(it)
                                                            : std::next(it);
  }
  maybe_select();
}

void AdvancedSearchNode::handle_release(const net::Message& msg) {
  // A RELEASE in this scheme announces a *deallocation* (transfer out).
  if (const int r = nbr_rank(msg.from); r >= 0) {
    known_allocated_[static_cast<std::size_t>(r)].erase(msg.channel);
    known_busy_[static_cast<std::size_t>(r)].erase(msg.channel);
  }
}

void AdvancedSearchNode::maybe_select() {
  if (!search_.has_value() || !search_->info_complete) return;
  if (search_->pending_channel != cell::kNoChannel) return;  // negotiating
  if (!await_decision_.empty()) return;
  select_or_transfer();
}

void AdvancedSearchNode::select_or_transfer() {
  assert(search_.has_value());
  // 1. A channel unallocated across the whole region: allocate it.
  cell::ChannelSet unallocated = cell::ChannelSet::all(spectrum_size());
  unallocated -= allocated_;
  for (std::size_t r = 0; r < nbr_count(); ++r)
    unallocated -= known_allocated_[r];
  const cell::ChannelId fresh = unallocated.first();
  if (fresh != cell::kNoChannel) {
    allocated_.insert(fresh);
    use_.insert(fresh);
    finish_with(fresh, Outcome::kAcquiredSearch);
    return;
  }

  // 2. Transfer candidates: channels idle at EVERY neighbour holding them
  //    (several non-interfering cells of the region may hold the same
  //    channel; all of them must agree). Built once from the fresh reply
  //    snapshots, fewest-owners first (cheapest negotiation first).
  if (search_->candidates.empty() && search_->next_candidate == 0) {
    for (cell::ChannelId r = 0; r < spectrum_size(); ++r) {
      if (allocated_.contains(r)) continue;
      std::vector<cell::CellId> owners;
      bool busy_somewhere = false;
      const auto nbrs = interference();
      for (std::size_t j = 0; j < nbrs.size(); ++j) {
        if (!known_allocated_[j].contains(r)) continue;
        if (known_busy_[j].contains(r)) {
          busy_somewhere = true;
          break;
        }
        owners.push_back(nbrs[j]);
      }
      if (busy_somewhere || owners.empty()) continue;
      search_->candidates.emplace_back(r, std::move(owners));
    }
    std::sort(search_->candidates.begin(), search_->candidates.end(),
              [](const auto& a, const auto& b) {
                if (a.second.size() != b.second.size())
                  return a.second.size() < b.second.size();
                return a.first < b.first;
              });
  }
  try_next_transfer();
}

void AdvancedSearchNode::try_next_transfer() {
  assert(search_.has_value());
  if (search_->rounds >= max_transfer_rounds_ ||
      search_->next_candidate >= search_->candidates.size()) {
    finish_with(cell::kNoChannel, Outcome::kBlockedNoChannel);
    return;
  }
  const auto& [r, owners] = search_->candidates[search_->next_candidate++];
  ++search_->rounds;
  search_->pending_channel = r;
  search_->pending_owners = owners;
  search_->agreed.clear();
  search_->owner_responses = 0;
  search_->denied = false;
  for (const cell::CellId owner : owners) {
    send_transfer(owner, search_->serial, r, net::TransferOp::kRequest);
  }
}

void AdvancedSearchNode::handle_transfer(const net::Message& msg) {
  switch (msg.transfer_op) {
    case net::TransferOp::kRequest: {
      const cell::ChannelId r = msg.channel;
      if (allocated_.contains(r) && !use_.contains(r) && !offered_.contains(r)) {
        offered_.insert(r);
        offered_to_[r] = msg.from;
        send_transfer(msg.from, msg.serial, r, net::TransferOp::kAgree);
      } else {
        ++transfer_denials_;
        send_transfer(msg.from, msg.serial, r, net::TransferOp::kDeny);
      }
      break;
    }
    case net::TransferOp::kAgree:
    case net::TransferOp::kDeny: {
      if (!search_.has_value() || msg.serial != search_->serial ||
          msg.channel != search_->pending_channel) {
        if (msg.transfer_op == net::TransferOp::kAgree) {
          // A stale agreement for an abandoned request: return it.
          send_transfer(msg.from, msg.serial, msg.channel, net::TransferOp::kAbort);
        }
        return;
      }
      ++search_->owner_responses;
      if (msg.transfer_op == net::TransferOp::kAgree) {
        search_->agreed.push_back(msg.from);
      } else {
        search_->denied = true;
      }
      if (search_->owner_responses <
          static_cast<int>(search_->pending_owners.size())) {
        return;  // negotiation still in flight
      }
      const cell::ChannelId r = search_->pending_channel;
      if (!search_->denied) {
        // Unanimous agreement: confirm with every owner and take r.
        for (const cell::CellId owner : search_->agreed) {
          send_transfer(owner, search_->serial, r, net::TransferOp::kKeep);
          if (const int rank = nbr_rank(owner); rank >= 0) {
            known_allocated_[static_cast<std::size_t>(rank)].erase(r);
            known_busy_[static_cast<std::size_t>(rank)].erase(r);
          }
        }
        allocated_.insert(r);
        use_.insert(r);
        ++transfers_in_;
        finish_with(r, Outcome::kAcquiredUpdate);
        return;
      }
      // Someone refused: release the agreements we did get, try the next.
      for (const cell::CellId owner : search_->agreed) {
        send_transfer(owner, search_->serial, r, net::TransferOp::kAbort);
      }
      search_->pending_channel = cell::kNoChannel;
      search_->pending_owners.clear();
      try_next_transfer();
      break;
    }
    case net::TransferOp::kKeep: {
      const cell::ChannelId r = msg.channel;
      assert(offered_.contains(r) && offered_to_[r] == msg.from);
      offered_.erase(r);
      offered_to_.erase(r);
      allocated_.erase(r);
      ++transfers_out_;
      // Announce the deallocation so the rest of OUR region stops counting
      // r against us (the new owner announces its own allocation).
      net::Message rel;
      rel.kind = net::MsgKind::kRelease;
      rel.serial = msg.serial;
      rel.channel = r;
      send_to_interference(rel);
      break;
    }
    case net::TransferOp::kAbort: {
      const cell::ChannelId r = msg.channel;
      // Only the requester the reservation was made FOR may clear it: a
      // timed-out searcher aborts to every owner it asked, including ones
      // that denied it because r was already reserved for someone else.
      const auto it = offered_to_.find(r);
      if (offered_.contains(r) && it != offered_to_.end() &&
          it->second == msg.from) {
        offered_.erase(r);
        offered_to_.erase(it);
      }
      break;
    }
  }
}

void AdvancedSearchNode::finish_with(cell::ChannelId r, Outcome how,
                                     bool timed_out) {
  assert(search_.has_value());
  disarm_timer();
  const Search s = *search_;
  search_.reset();

  // Decision announcement — sent even on failure so awaiting searchers
  // unblock; on success it doubles as the allocation announcement.
  net::Message acq;
  acq.kind = net::MsgKind::kAcquisition;
  acq.acq_type = net::AcqType::kSearch;
  acq.serial = s.serial;
  acq.channel = r;
  send_to_interference(acq);

  while (!defer_.empty()) {
    const Deferred d = defer_.front();
    defer_.pop_front();
    reply_sets(d.from, d.serial);
  }

  trace_search_decide(s.serial, r, r != cell::kNoChannel, timed_out);
  if (r != cell::kNoChannel) {
    complete_acquired(s.serial, r, how, s.rounds);
  } else {
    complete_blocked(s.serial, how, s.rounds);
  }
}

void AdvancedSearchNode::on_crash() {
  // allocated_ is the cell's long-term ownership ledger — modelled as
  // stable storage (like the Lamport clock). Everything else is volatile.
  // Transfers that concluded while we are down are reconciled against the
  // region's claims in apply_resync_reply.
  search_.reset();
  await_decision_.clear();
  defer_.clear();
  offered_.clear();
  offered_to_.clear();
  for (std::size_t r = 0; r < known_allocated_.size(); ++r) {
    known_allocated_[r].clear();
    known_busy_[r].clear();
  }
}

void AdvancedSearchNode::on_peer_restart(cell::CellId j) {
  // j forgot every transfer it was negotiating: un-reserve what we offered.
  for (auto it = offered_to_.begin(); it != offered_to_.end();) {
    if (it->second == j) {
      offered_.erase(it->first);
      it = offered_to_.erase(it);
    } else {
      ++it;
    }
  }
  await_decision_.erase(j);
  for (auto it = defer_.begin(); it != defer_.end();) {
    it = it->from == j ? defer_.erase(it) : std::next(it);
  }
  if (const int r = nbr_rank(j); r >= 0) {
    // j's calls were all torn down. Its allocated set only shrinks across
    // a crash, so the stale claim view stays a safe over-approximation.
    known_busy_[static_cast<std::size_t>(r)].clear();
  }
  // A reply or transfer agreement j issued before crashing is void:
  // resolve any open search (and pending negotiation) via the timeout path.
  if (search_.has_value()) abort_search();
}

void AdvancedSearchNode::fill_resync_reply(net::Message& m) const {
  m.alloc = allocated_;
}

void AdvancedSearchNode::apply_resync_reply(const net::Message& m) {
  if (const int r = nbr_rank(m.from); r >= 0) {
    known_busy_[static_cast<std::size_t>(r)] = m.use;
    known_allocated_[static_cast<std::size_t>(r)] = m.alloc;
  }
  // A transfer that concluded while we were down is decided in the
  // claimant's favour: whatever the region now claims is not ours.
  allocated_ -= m.alloc;
}

void AdvancedSearchNode::abort_search() {
  // Overall request timer expired — mid-search or mid-negotiation. Undo
  // any reservations we may hold at owners (kAbort is safe to broadcast
  // to every asked owner: the handler checks the reservation is ours),
  // then conclude as a failed, timeout-aborted search. finish_with
  // announces the failed decision so deferred/waiting peers unblock.
  assert(search_.has_value());
  trace_timeout(search_->serial, search_->rounds);
  if (search_->pending_channel != cell::kNoChannel) {
    for (const cell::CellId owner : search_->pending_owners) {
      send_transfer(owner, search_->serial, search_->pending_channel,
                    net::TransferOp::kAbort);
    }
    search_->pending_channel = cell::kNoChannel;
    search_->pending_owners.clear();
  }
  finish_with(cell::kNoChannel, Outcome::kBlockedTimeout, true);
}

void AdvancedSearchNode::send_transfer(cell::CellId to, std::uint64_t serial,
                                       cell::ChannelId r, net::TransferOp op) {
  net::Message msg;
  msg.kind = net::MsgKind::kTransfer;
  msg.transfer_op = op;
  msg.serial = serial;
  msg.channel = r;
  msg.from = id();
  msg.to = to;
  env().send(msg);
}

}  // namespace dca::proto
