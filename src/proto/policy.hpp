// The allocation-policy seam.
//
// Two layers live here:
//
//  1. ChannelPick — the low-level "pick one of the believed-free channels"
//     strategy shared by schemes that pick "some free channel". The paper
//     (and Dong & Lai) leave the pick unspecified; it matters a lot for
//     the update family, where two concurrent requesters that pick the
//     same channel collide and burn a retry:
//       * kRandom     — uniform over the believed-free set; concurrent
//                       requesters spread out (the library default);
//       * kLowest     — always the lowest-numbered free channel;
//                       deterministic and cache-friendly but maximizes
//                       collisions;
//       * kRoundRobin — scan from just past the previously picked channel;
//                       decorrelates a single node's successive picks.
//
//  2. AllocationPolicy — the pluggable policy object every AllocatorNode
//     consults. It owns three hooks, each with a pass-through default that
//     reproduces the paper's behaviour bit for bit:
//       * pick()        — override the channel pick;
//       * thresholds()  — rewrite the adaptive scheme's θ_l/θ_h hysteresis
//                         pair (tuned/learned thresholds);
//       * admit()       — request-priority gate run before a request is
//                         served (guard channels, handoff preference, ...).
//     Policies are immutable after construction and shared by every node
//     of a world, so both engines route through the identical object and
//     traces stay bit-identical for any shard/thread count.
//
// New policies register with the static PolicyRegistry: one file in
// src/proto/policies/ defining the class + a register function, plus one
// DCA_POLICY line in policies/builtin.hpp (the registration manifest that
// keeps static-library linking deterministic). See docs/ARCHITECTURE.md
// "The allocation-policy seam" for the full recipe.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cell/spectrum.hpp"
#include "sim/random.hpp"

namespace dca::proto {

enum class ChannelPick : std::uint8_t { kRandom = 0, kLowest = 1, kRoundRobin = 2 };

[[nodiscard]] inline const char* channel_pick_name(ChannelPick p) {
  switch (p) {
    case ChannelPick::kRandom: return "random";
    case ChannelPick::kLowest: return "lowest";
    case ChannelPick::kRoundRobin: return "round-robin";
  }
  return "?";
}

/// Picks one channel from a non-empty set. `cursor` is the caller's
/// round-robin state (updated on every pick, ignored by other policies).
[[nodiscard]] inline cell::ChannelId pick_channel(const cell::ChannelSet& freeSet,
                                                  ChannelPick policy,
                                                  sim::RngStream& rng,
                                                  cell::ChannelId& cursor) {
  switch (policy) {
    case ChannelPick::kLowest:
      return freeSet.first();
    case ChannelPick::kRoundRobin: {
      cell::ChannelId r = freeSet.next_after(cursor);
      if (r == cell::kNoChannel) r = freeSet.first();
      cursor = r;
      return r;
    }
    case ChannelPick::kRandom:
    default: {
      // nth-set-bit select: zero allocations on the hot path. The RNG draw
      // is pick_index(size()) — exactly what the old to_vector() path drew —
      // so trajectories do not move.
      const auto n = static_cast<std::size_t>(freeSet.size());
      return freeSet.nth(static_cast<int>(rng.pick_index(n)));
    }
  }
}

/// How a channel request entered the system: a fresh call, or the
/// continuation leg of a call handed off from a neighbouring cell.
/// Priority policies use this to favour in-progress calls (dropping a
/// live call is worse than blocking a new one).
enum class RequestClass : std::uint8_t { kNewCall = 0, kHandoff = 1 };

[[nodiscard]] inline const char* request_class_name(RequestClass c) {
  return c == RequestClass::kHandoff ? "handoff" : "new-call";
}

/// A parsed policy selection: a registry name plus ordered key=value
/// parameters. The canonical text form is "name" or "name(k=v,k2=v2)" —
/// what `policy =` in scenario files and `--policy` on the CLI accept,
/// and what to_string() round-trips.
struct PolicySpec {
  std::string name = "default";
  std::vector<std::pair<std::string, double>> params;

  [[nodiscard]] bool is_default() const {
    return name == "default" && params.empty();
  }
  /// Value of `key`, or `fallback` when absent.
  [[nodiscard]] double get(const std::string& key, double fallback) const;
  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string to_string() const;
};

/// Parses "name" or "name(k=v,k2=v2)" into `out`. Returns false (with a
/// human-readable `error`) on syntax errors; registry lookup is separate.
[[nodiscard]] bool parse_policy_spec(const std::string& text, PolicySpec& out,
                                     std::string& error);

class AllocationPolicy {
 public:
  virtual ~AllocationPolicy() = default;

  /// Registry name ("default", "tuned-threshold", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Canonical "name(k=v,...)" description with every parameter filled in
  /// (defaults included) — what benches and the tournament table record.
  [[nodiscard]] virtual std::string describe() const { return name(); }

  // -- hook 1: channel pick ------------------------------------------------
  /// Chooses one member of the non-empty believed-free set. `configured`
  /// is the scheme's ChannelPick knob (scenario `update_pick`); the
  /// default policy dispatches on it unchanged.
  [[nodiscard]] virtual cell::ChannelId pick(const cell::ChannelSet& freeSet,
                                             ChannelPick configured,
                                             sim::RngStream& rng,
                                             cell::ChannelId& cursor) const {
    return pick_channel(freeSet, configured, rng, cursor);
  }

  // -- hook 2: adaptive hysteresis thresholds ------------------------------
  struct Thresholds {
    int low = 0;   // θ_l: enter borrowing below this prediction
    int high = 0;  // θ_h: return to local at this prediction
  };
  /// Maps the scenario-configured (θ_l, θ_h) pair to the effective one.
  /// Consulted once per adaptive node at construction.
  [[nodiscard]] virtual Thresholds thresholds(Thresholds base) const {
    return base;
  }

  // -- hook 3: request admission / priority --------------------------------
  /// Fast pre-check: when false, admit() is never called and nodes skip
  /// computing their free estimate — the default policy costs nothing on
  /// the request hot path.
  [[nodiscard]] virtual bool gates_admission() const { return false; }
  /// May a request of class `cls` be served when the node believes
  /// `free_channels` channels are locally available? Returning false
  /// blocks the request immediately (Outcome::kBlockedNoChannel, zero
  /// messages). Runs once per request, before the scheme's protocol.
  [[nodiscard]] virtual bool admit(RequestClass cls, int free_channels) const {
    (void)cls;
    (void)free_channels;
    return true;
  }

  /// The process-wide default policy (all hooks pass-through). Nodes built
  /// without an explicit policy — direct-construction unit tests, mostly —
  /// fall back to this instance.
  [[nodiscard]] static const AllocationPolicy& fallback();
};

/// The static policy registry: name -> factory. Built-in policies live in
/// src/proto/policies/ (one file each) and are entered via the manifest in
/// policies/builtin.hpp, so lookup works identically in every binary that
/// links dca_proto — no reliance on static-initializer link order.
class PolicyRegistry {
 public:
  using Factory = std::unique_ptr<AllocationPolicy> (*)(const PolicySpec& spec,
                                                        std::string& error);

  [[nodiscard]] static PolicyRegistry& instance();

  /// Registers `name`; returns false (and changes nothing) on duplicates.
  bool add(const std::string& name, const std::string& summary, Factory factory);

  [[nodiscard]] bool known(const std::string& name) const;
  /// One-line summary of a registered policy ("" when unknown).
  [[nodiscard]] std::string summary(const std::string& name) const;
  /// Registered names in registration order (default first).
  [[nodiscard]] std::vector<std::string> names() const;

  /// Instantiates the policy `spec` names. Returns nullptr with a
  /// human-readable `error` for unknown names, unknown parameters, or
  /// parameter values the policy rejects.
  [[nodiscard]] std::unique_ptr<AllocationPolicy> make(const PolicySpec& spec,
                                                       std::string& error) const;

 private:
  struct Entry {
    std::string name;
    std::string summary;
    Factory factory;
  };
  std::vector<Entry> entries_;
};

}  // namespace dca::proto
