// Channel-selection policies for schemes that pick "some free channel".
//
// The paper (and Dong & Lai) leave the pick unspecified; it matters a lot
// for the update family, where two concurrent requesters that pick the
// same channel collide and burn a retry. The policies:
//
//  * kRandom     — uniform over the believed-free set; concurrent
//                  requesters spread out (the library default);
//  * kLowest     — always the lowest-numbered free channel; deterministic
//                  and cache-friendly but maximizes collisions;
//  * kRoundRobin — scan from just past the previously picked channel;
//                  decorrelates a single node's successive picks.
#pragma once

#include <cstdint>

#include "cell/spectrum.hpp"
#include "sim/random.hpp"

namespace dca::proto {

enum class ChannelPick : std::uint8_t { kRandom = 0, kLowest = 1, kRoundRobin = 2 };

[[nodiscard]] inline const char* channel_pick_name(ChannelPick p) {
  switch (p) {
    case ChannelPick::kRandom: return "random";
    case ChannelPick::kLowest: return "lowest";
    case ChannelPick::kRoundRobin: return "round-robin";
  }
  return "?";
}

/// Picks one channel from a non-empty set. `cursor` is the caller's
/// round-robin state (updated on every pick, ignored by other policies).
[[nodiscard]] inline cell::ChannelId pick_channel(const cell::ChannelSet& freeSet,
                                                  ChannelPick policy,
                                                  sim::RngStream& rng,
                                                  cell::ChannelId& cursor) {
  switch (policy) {
    case ChannelPick::kLowest:
      return freeSet.first();
    case ChannelPick::kRoundRobin: {
      cell::ChannelId r = freeSet.next_after(cursor);
      if (r == cell::kNoChannel) r = freeSet.first();
      cursor = r;
      return r;
    }
    case ChannelPick::kRandom:
    default: {
      const auto members = freeSet.to_vector();
      return members[rng.pick_index(members.size())];
    }
  }
}

}  // namespace dca::proto
