#include "proto/policy.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "proto/policies/builtin.hpp"

namespace dca::proto {
namespace {

// Formats a double the way scenario files write numbers: plain decimal,
// no trailing zeros ("2" not "2.000000", "0.5" not "0.500000").
std::string format_param(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

std::string trimmed(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// All pass-through hooks: the paper's behaviour, bit for bit.
class DefaultPolicy final : public AllocationPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "default"; }
};

std::unique_ptr<AllocationPolicy> make_default(const PolicySpec& spec,
                                               std::string& error) {
  if (!spec.params.empty()) {
    error = "policy 'default' takes no parameters";
    return nullptr;
  }
  return std::make_unique<DefaultPolicy>();
}

}  // namespace

double PolicySpec::get(const std::string& key, double fallback) const {
  for (const auto& [k, v] : params)
    if (k == key) return v;
  return fallback;
}

bool PolicySpec::has(const std::string& key) const {
  for (const auto& [k, v] : params) {
    (void)v;
    if (k == key) return true;
  }
  return false;
}

std::string PolicySpec::to_string() const {
  if (params.empty()) return name;
  std::string out = name + "(";
  bool first = true;
  for (const auto& [k, v] : params) {
    if (!first) out += ',';
    out += k + "=" + format_param(v);
    first = false;
  }
  out += ')';
  return out;
}

bool parse_policy_spec(const std::string& text, PolicySpec& out, std::string& error) {
  PolicySpec spec;
  const std::string body = trimmed(text);
  if (body.empty()) {
    error = "empty policy spec";
    return false;
  }
  const std::size_t open = body.find('(');
  if (open == std::string::npos) {
    spec.name = body;
  } else {
    if (body.back() != ')') {
      error = "policy spec '" + body + "': missing ')'";
      return false;
    }
    spec.name = trimmed(body.substr(0, open));
    if (spec.name.empty()) {
      error = "policy spec '" + body + "': missing name before '('";
      return false;
    }
    // Split "k=v,k2=v2" on commas; each piece must be key=number.
    const std::string args = body.substr(open + 1, body.size() - open - 2);
    std::size_t pos = 0;
    while (pos <= args.size() && !trimmed(args).empty()) {
      std::size_t comma = args.find(',', pos);
      if (comma == std::string::npos) comma = args.size();
      const std::string piece = trimmed(args.substr(pos, comma - pos));
      if (piece.empty()) {
        error = "policy spec '" + body + "': empty parameter";
        return false;
      }
      const std::size_t eq = piece.find('=');
      if (eq == std::string::npos) {
        error = "policy spec '" + body + "': parameter '" + piece +
                "' is not key=value";
        return false;
      }
      const std::string key = trimmed(piece.substr(0, eq));
      const std::string valText = trimmed(piece.substr(eq + 1));
      if (key.empty() || valText.empty()) {
        error = "policy spec '" + body + "': parameter '" + piece +
                "' is not key=value";
        return false;
      }
      char* end = nullptr;
      const double val = std::strtod(valText.c_str(), &end);
      if (end == valText.c_str() || *end != '\0') {
        error = "policy spec '" + body + "': value '" + valText +
                "' of '" + key + "' is not a number";
        return false;
      }
      for (const auto& [k, v] : spec.params) {
        (void)v;
        if (k == key) {
          error = "policy spec '" + body + "': duplicate parameter '" + key + "'";
          return false;
        }
      }
      spec.params.emplace_back(key, val);
      if (comma >= args.size()) break;
      pos = comma + 1;
    }
  }
  out = std::move(spec);
  return true;
}

const AllocationPolicy& AllocationPolicy::fallback() {
  static const DefaultPolicy instance;
  return instance;
}

PolicyRegistry& PolicyRegistry::instance() {
  // Built-ins are registered here, by explicit call, rather than via
  // self-registering static initializers: policy objects live in a static
  // library, and the linker drops unreferenced archive members together
  // with their initializers. The manifest in policies/builtin.hpp names
  // every registration function, so adding a policy stays a one-file
  // change plus one manifest line.
  static PolicyRegistry* reg = [] {
    auto* r = new PolicyRegistry();
    r->add("default", "paper behaviour: configured pick, configured thresholds, no gate",
           &make_default);
    policies::register_builtin(*r);
    return r;
  }();
  return *reg;
}

bool PolicyRegistry::add(const std::string& name, const std::string& summary,
                         Factory factory) {
  for (const auto& e : entries_)
    if (e.name == name) return false;
  entries_.push_back(Entry{name, summary, factory});
  return true;
}

bool PolicyRegistry::known(const std::string& name) const {
  for (const auto& e : entries_)
    if (e.name == name) return true;
  return false;
}

std::string PolicyRegistry::summary(const std::string& name) const {
  for (const auto& e : entries_)
    if (e.name == name) return e.summary;
  return "";
}

std::vector<std::string> PolicyRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.name);
  return out;
}

std::unique_ptr<AllocationPolicy> PolicyRegistry::make(const PolicySpec& spec,
                                                       std::string& error) const {
  for (const auto& e : entries_) {
    if (e.name != spec.name) continue;
    return e.factory(spec, error);
  }
  error = "unknown policy '" + spec.name + "' (known:";
  for (const auto& e : entries_) error += " " + e.name;
  error += ")";
  return nullptr;
}

}  // namespace dca::proto
