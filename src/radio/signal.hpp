// Co-channel interference physics: the radio-layer justification for the
// paper's "minimum reuse distance" premise.
//
// The protocols in this library treat interference as a binary constraint
// (no co-channel use within hex distance <= radius). That constraint is an
// abstraction of signal-to-interference ratios under power-law path loss:
// a signal received over distance d has power ∝ d^-gamma (gamma ≈ 2-5;
// 4 is the classic urban value), so a reuse plan is acceptable when the
// worst-case SIR
//
//     SIR = R^-gamma / Σ_k D_k^-gamma
//
// (R = cell radius, D_k = distances to the co-channel interferers) clears
// the receiver threshold — about 18 dB for analog FM, the number AMPS was
// planned around and the reason cluster size 7 became the default.
//
// This module computes: the textbook first-tier approximation for a
// cluster size, and the exact-geometry worst case on a concrete grid +
// reuse plan, so tests can verify that the discrete "interference radius"
// the protocols enforce actually delivers an acceptable SIR.
#pragma once

#include <cmath>

#include "cell/grid.hpp"
#include "cell/reuse.hpp"

namespace dca::radio {

/// Co-channel reuse distance ratio D/R for hexagonal cluster size N:
/// D/R = sqrt(3N).
[[nodiscard]] inline double reuse_distance_ratio(int cluster_size) {
  return std::sqrt(3.0 * static_cast<double>(cluster_size));
}

/// Textbook worst-case SIR (dB) of a hexagonal reuse plan with cluster
/// size N under path-loss exponent gamma, counting the 6 first-tier
/// interferers at distance D: SIR = (D/R)^gamma / 6.
[[nodiscard]] inline double first_tier_sir_db(int cluster_size, double gamma) {
  const double q = reuse_distance_ratio(cluster_size);
  return 10.0 * std::log10(std::pow(q, gamma) / 6.0);
}

struct SirResult {
  double sir_db = 0.0;     // worst case over the cell's channels
  int interferers = 0;     // co-channel cells contributing
  double nearest_d_over_r = 0.0;  // closest co-channel distance ratio
};

/// Exact-geometry worst-case downlink SIR for a mobile at the edge of
/// `cellId` under `plan`: the serving base station is one cell radius away
/// (hex circumradius R = 1 in hex_center units... see below), and every
/// same-colour cell in the whole grid interferes from its true Euclidean
/// distance. Conservative mobile placement: the edge point closest to the
/// nearest interferer.
///
/// Geometry note: hex_center() returns centers of circumradius-1 hexes,
/// whose center spacing is sqrt(3); the *cell radius* relevant to coverage
/// is the circumradius 1.
[[nodiscard]] SirResult worst_case_sir(const cell::HexGrid& grid,
                                       const cell::ReusePlan& plan,
                                       cell::CellId cellId, double gamma);

/// Smallest cluster size from {1,3,4,7,9,12,13,16,19,21} whose first-tier
/// SIR clears `threshold_db` at the given path-loss exponent.
[[nodiscard]] int min_cluster_for_sir(double threshold_db, double gamma);

}  // namespace dca::radio
