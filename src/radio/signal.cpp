#include "radio/signal.hpp"

#include <algorithm>
#include <array>
#include <limits>

namespace dca::radio {

namespace {

double euclid(const cell::Point2D& a, const cell::Point2D& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace

SirResult worst_case_sir(const cell::HexGrid& grid, const cell::ReusePlan& plan,
                         cell::CellId cellId, double gamma) {
  SirResult out;
  out.sir_db = std::numeric_limits<double>::infinity();
  const cell::Point2D serving = hex_center(grid.axial(cellId));
  constexpr double kCellRadius = 1.0;  // hex circumradius in center units

  // Evaluate each colour class the cell serves (its own colour): every
  // primary channel shares the colour, so one evaluation suffices; for
  // generality we simply use the cell's own colour class.
  std::vector<cell::Point2D> interferer_pos;
  for (const cell::CellId other : plan.primary_cells_of(
           plan.primary(cellId).first() != cell::kNoChannel
               ? plan.primary(cellId).first()
               : 0)) {
    if (other == cellId) continue;
    interferer_pos.push_back(hex_center(grid.axial(other)));
  }
  if (interferer_pos.empty()) {
    out.sir_db = std::numeric_limits<double>::infinity();
    return out;
  }

  // Mobile at the cell-edge point nearest the closest interferer: the
  // worst case along the line towards it.
  double nearest = std::numeric_limits<double>::max();
  cell::Point2D nearest_pos{};
  for (const auto& p : interferer_pos) {
    const double d = euclid(serving, p);
    if (d < nearest) {
      nearest = d;
      nearest_pos = p;
    }
  }
  out.nearest_d_over_r = nearest / kCellRadius;
  const double ux = (nearest_pos.x - serving.x) / nearest;
  const double uy = (nearest_pos.y - serving.y) / nearest;
  const cell::Point2D mobile{serving.x + ux * kCellRadius,
                             serving.y + uy * kCellRadius};

  const double signal = std::pow(kCellRadius, -gamma);
  double interference = 0.0;
  for (const auto& p : interferer_pos) {
    const double d = std::max(euclid(mobile, p), 1e-9);
    interference += std::pow(d, -gamma);
    ++out.interferers;
  }
  out.sir_db = 10.0 * std::log10(signal / interference);
  return out;
}

int min_cluster_for_sir(double threshold_db, double gamma) {
  constexpr std::array<int, 10> kValid{1, 3, 4, 7, 9, 12, 13, 16, 19, 21};
  for (const int n : kValid) {
    if (first_tier_sir_db(n, gamma) >= threshold_db) return n;
  }
  return kValid.back();
}

}  // namespace dca::radio
