// Radio-quality noise: a seeded fade field over (cell, channel, time).
//
// First step on the ROADMAP's unmodelled-fading item. The paper's analysis
// assumes every channel outside the interference constraint is usable; real
// radios see slow fading that makes individual channels temporarily fail
// their SNR threshold. This models that as a stateless Bernoulli field:
// within each coherence bucket of simulated time, a (cell, channel) pair is
// faded with probability `fade_prob`, independently re-drawn each bucket.
//
// The field is a pure hash of (seed, cell, channel, bucket) — it consumes
// no RNG stream, so enabling it perturbs no other stochastic component
// (traffic, faults, pauses keep their exact trajectories), it is trivially
// thread-safe, and any shard can evaluate it for any cell without shared
// state. Allocators consult it when *picking* a channel for a new
// acquisition; calls already in progress are not torn down by a fade.
#pragma once

#include <cstdint>

#include "cell/grid.hpp"
#include "sim/random.hpp"
#include "sim/types.hpp"

namespace dca::radio {

class NoiseField {
 public:
  /// `fade_prob` in [0, 1): per-bucket probability a (cell, channel) is
  /// unusable. `bucket` is the fade coherence time (must be positive when
  /// fade_prob > 0).
  NoiseField(std::uint64_t seed, double fade_prob, sim::Duration bucket)
      : seed_(sim::mix64(seed ^ 0x5EEDFADEull)),
        fade_prob_(fade_prob),
        bucket_(bucket > 0 ? bucket : 1) {}

  [[nodiscard]] bool enabled() const noexcept { return fade_prob_ > 0.0; }

  /// True when `channel` clears the SNR threshold in `cell` at time `now`.
  [[nodiscard]] bool usable(cell::CellId cellId, int channel,
                            sim::SimTime now) const noexcept {
    if (fade_prob_ <= 0.0) return true;
    const auto epoch = static_cast<std::uint64_t>(now / bucket_);
    std::uint64_t h = seed_;
    h = sim::mix64(h ^ static_cast<std::uint64_t>(cellId));
    h = sim::mix64(h ^ (static_cast<std::uint64_t>(channel) << 32) ^ epoch);
    // Map the hash to [0, 1) with 53-bit precision, as uniform() would.
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    return u >= fade_prob_;
  }

 private:
  std::uint64_t seed_;
  double fade_prob_;
  sim::Duration bucket_;
};

}  // namespace dca::radio
