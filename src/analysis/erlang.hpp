// Classical teletraffic closed forms.
//
// Under FCA, each cell is an independent M/M/c/c loss system (c = |PR_i|
// trunks, offered load a = lambda * holding Erlangs), so its blocking
// probability is the Erlang-B formula. This gives the simulator a
// ground-truth anchor: the measured FCA drop rate must converge to
// Erlang-B — a validation the property suite enforces.
#pragma once

namespace dca::analysis {

/// Erlang-B blocking probability for `servers` trunks offered `erlangs` of
/// traffic. Uses the standard numerically stable recurrence
///   B(0, a) = 1;  B(c, a) = a B(c-1, a) / (c + a B(c-1, a)).
/// Domain: servers >= 0, erlangs >= 0.
[[nodiscard]] inline double erlang_b(int servers, double erlangs) {
  if (servers <= 0) return 1.0;
  if (erlangs <= 0.0) return 0.0;
  double b = 1.0;
  for (int c = 1; c <= servers; ++c) {
    b = erlangs * b / (static_cast<double>(c) + erlangs * b);
  }
  return b;
}

/// Carried load (Erlangs actually served) of an M/M/c/c system.
[[nodiscard]] inline double erlang_carried(int servers, double erlangs) {
  return erlangs * (1.0 - erlang_b(servers, erlangs));
}

/// Smallest trunk count whose Erlang-B blocking is <= `target` for the
/// given offered load (simple dimensioning helper).
[[nodiscard]] inline int erlang_servers_for(double erlangs, double target) {
  int c = 0;
  while (erlang_b(c, erlangs) > target && c < 100000) ++c;
  return c;
}

}  // namespace dca::analysis
