#include "analysis/formulas.hpp"

#include <cmath>
#include <cstdio>

namespace dca::analysis {

// -- Table 1 ------------------------------------------------------------------

Cost basic_search_general(const ModelParams& p) {
  return Cost{2 * p.N, p.N_search + 1};
}

Cost basic_update_general(const ModelParams& p) {
  return Cost{2 * p.N * p.m + 2 * p.N, 2 * p.m};
}

Cost advanced_update_general(const ModelParams& p) {
  const double borrow_fraction = 1.0 - p.xi1;
  const double m_eff = p.m >= 1.0 ? p.m : 1.0;  // at least one handshake when borrowing
  return Cost{borrow_fraction * (2 * p.n_p * m_eff + p.n_p * (m_eff - 1)) + 2 * p.N,
              borrow_fraction * 2 * p.m};
}

Cost adaptive_general(const ModelParams& p) {
  const double messages =
      2 * p.xi1 * p.N_borrow + 3 * p.xi2 * p.m * p.N + p.xi3 * (3 * p.alpha + 4) * p.N;
  const double time = 2 * p.m * p.xi2 + (2 * p.alpha + p.N_search + 1) * p.xi3;
  return Cost{messages, time};
}

// -- Table 2 ------------------------------------------------------------------

Cost basic_search_low_load(const ModelParams& p) { return Cost{2 * p.N, 2}; }
Cost basic_update_low_load(const ModelParams& p) { return Cost{4 * p.N, 2}; }
Cost advanced_update_low_load(const ModelParams& p) { return Cost{2 * p.N, 0}; }
Cost adaptive_low_load(const ModelParams&) { return Cost{0, 0}; }

// -- Table 3 ------------------------------------------------------------------

Bounds basic_search_bounds(const ModelParams& p) {
  return Bounds{Cost{2 * p.N, 2}, Cost{2 * p.N, p.N + 1}};
}

Bounds basic_update_bounds(const ModelParams& p) {
  return Bounds{Cost{2 * p.N, 2}, Cost{kUnbounded, kUnbounded}};
}

Bounds advanced_update_bounds(const ModelParams& p) {
  return Bounds{Cost{p.N, 0}, Cost{kUnbounded, kUnbounded}};
}

Bounds adaptive_bounds(const ModelParams& p) {
  return Bounds{Cost{0, 0},
                Cost{2 * p.alpha * p.N + 4 * p.N, 2 * p.alpha * p.N + 1}};
}

std::string format_bound(double v, int precision) {
  if (std::isinf(v)) return "inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

}  // namespace dca::analysis
