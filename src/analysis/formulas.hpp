// Closed-form performance model: a direct transcription of the paper's
// Section 5 analysis — the general comparison (Table 1), the low-load
// specialization (Table 2), and the min/max bounds (Table 3).
//
// All channel-acquisition times are expressed in units of T (the maximum
// one-way latency in the interference region); message complexities are
// message counts per channel acquisition.
#pragma once

#include <limits>
#include <string>

namespace dca::analysis {

/// Parameters of the Section 5 analysis (the paper's notation).
struct ModelParams {
  double N = 18;         ///< nodes in the interference region of a cell
  double N_borrow = 0;   ///< average borrowing-mode neighbours
  double N_search = 1;   ///< average simultaneous searches in a neighbourhood
  double alpha = 3;      ///< update-mode attempt bound of the adaptive scheme
  double m = 1;          ///< average attempts using the update scheme (m <= alpha)
  double xi1 = 1;        ///< fraction of local-mode acquisitions
  double xi2 = 0;        ///< fraction of borrow-update acquisitions
  double xi3 = 0;        ///< fraction of borrow-search acquisitions
  double n_p = 3;        ///< primary cells of a channel within an interference region
};

/// One (message complexity, acquisition time) pair.
struct Cost {
  double messages = 0;
  double time_in_T = 0;
};

inline constexpr double kUnbounded = std::numeric_limits<double>::infinity();

// -- Table 1: general comparison -------------------------------------------

/// Basic search: 2N messages, (N_search + 1) T.
[[nodiscard]] Cost basic_search_general(const ModelParams& p);

/// Basic update: 2Nm + 2N messages, 2Tm.
[[nodiscard]] Cost basic_update_general(const ModelParams& p);

/// Advanced update: (1 - ξ₁)(2 n_p m + n_p (m - 1)) + 2N messages,
/// (1 - ξ₁) 2Tm.
[[nodiscard]] Cost advanced_update_general(const ModelParams& p);

/// Adaptive (proposed), Section 5 combined expressions:
/// time  = {2mξ₂ + (2α + N_search + 1) ξ₃} T
/// msgs  = 2 ξ₁ N_borrow + 3 ξ₂ m N + ξ₃ (3α + 4) N
/// (Table 1 prints the msgs expression with ξ₃ in the middle term and
/// 2ξ₃(α+2)N in the last — an inconsistency in the paper; we follow the
/// derivation in the bullet list, which the time expression also matches.)
[[nodiscard]] Cost adaptive_general(const ModelParams& p);

// -- Table 2: uniformly low load --------------------------------------------
// The paper's conditions: ξ₁ = 1, m = 0 ⇒ effectively one handshake for the
// always-coordinating schemes. The table rows are constants in N and T.

[[nodiscard]] Cost basic_search_low_load(const ModelParams& p);    // 2N, 2T
[[nodiscard]] Cost basic_update_low_load(const ModelParams& p);    // 4N, 2T
[[nodiscard]] Cost advanced_update_low_load(const ModelParams& p); // 2N, 0
[[nodiscard]] Cost adaptive_low_load(const ModelParams& p);        // 0, 0

// -- Table 3: bounds over all loads ------------------------------------------

struct Bounds {
  Cost minimum;
  Cost maximum;  // messages/time may be kUnbounded (the paper's ∞)
};

[[nodiscard]] Bounds basic_search_bounds(const ModelParams& p);
[[nodiscard]] Bounds basic_update_bounds(const ModelParams& p);
[[nodiscard]] Bounds advanced_update_bounds(const ModelParams& p);
[[nodiscard]] Bounds adaptive_bounds(const ModelParams& p);

/// Formats a possibly-unbounded value ("inf" -> the paper's ∞).
[[nodiscard]] std::string format_bound(double v, int precision = 0);

}  // namespace dca::analysis
