// Spatial/temporal offered-load profiles.
//
// A profile maps (cell, time) to a Poisson arrival rate in calls per
// simulated second. Time-varying profiles must also report a per-cell
// rate ceiling so the generator can use Lewis–Shedler thinning and stay
// exact. Profiles provided:
//
//  * UniformProfile  — the same constant rate everywhere (the paper's
//    "uniform load" regime, Tables 1–3).
//  * HotspotProfile  — a base rate plus a multiplicative factor on a set of
//    hot cells inside a time window (the paper's "temporary hot spots"
//    motivation, Section 1).
//  * RampProfile     — rate ramps linearly between two values over a time
//    window (gradual load growth).
//  * PerCellProfile  — arbitrary constant per-cell rates.
//  * BlobProfile     — spatially correlated load: a Gaussian bump of
//    traffic centred on one cell (city centre over suburbs).
//  * DiurnalProfile  — sinusoidal time-of-day modulation of a base rate.
//  * MovingHotspotProfile — a hot cell that steps through a route at a
//    fixed period (a crowd moving through the network).
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "cell/grid.hpp"
#include "cell/hex.hpp"
#include "sim/types.hpp"

namespace dca::traffic {

class LoadProfile {
 public:
  virtual ~LoadProfile() = default;

  /// Instantaneous arrival rate (calls/second) at `cell` at time `t`.
  [[nodiscard]] virtual double rate(cell::CellId cellId, sim::SimTime t) const = 0;

  /// An upper bound on rate(cell, t) over all t (thinning ceiling).
  [[nodiscard]] virtual double max_rate(cell::CellId cellId) const = 0;
};

class UniformProfile final : public LoadProfile {
 public:
  explicit UniformProfile(double rate_per_second) : rate_(rate_per_second) {
    assert(rate_ >= 0.0);
  }
  [[nodiscard]] double rate(cell::CellId, sim::SimTime) const override { return rate_; }
  [[nodiscard]] double max_rate(cell::CellId) const override { return rate_; }

 private:
  double rate_;
};

class PerCellProfile final : public LoadProfile {
 public:
  explicit PerCellProfile(std::vector<double> rates) : rates_(std::move(rates)) {}
  [[nodiscard]] double rate(cell::CellId c, sim::SimTime) const override {
    return rates_.at(static_cast<std::size_t>(c));
  }
  [[nodiscard]] double max_rate(cell::CellId c) const override {
    return rates_.at(static_cast<std::size_t>(c));
  }

 private:
  std::vector<double> rates_;
};

class HotspotProfile final : public LoadProfile {
 public:
  HotspotProfile(double base_rate, std::vector<cell::CellId> hot_cells,
                 double hot_factor, sim::SimTime hot_start, sim::SimTime hot_end)
      : base_(base_rate),
        factor_(hot_factor),
        start_(hot_start),
        end_(hot_end),
        hot_(hot_cells.begin(), hot_cells.end()) {
    assert(base_ >= 0.0 && factor_ >= 1.0 && start_ <= end_);
  }

  [[nodiscard]] double rate(cell::CellId c, sim::SimTime t) const override {
    if (t >= start_ && t < end_ && hot_.contains(c)) return base_ * factor_;
    return base_;
  }
  [[nodiscard]] double max_rate(cell::CellId c) const override {
    return hot_.contains(c) ? base_ * factor_ : base_;
  }

 private:
  double base_;
  double factor_;
  sim::SimTime start_;
  sim::SimTime end_;
  std::unordered_set<cell::CellId> hot_;
};

class BlobProfile final : public LoadProfile {
 public:
  /// rate(c) = base + peak * exp(-d(c, center)^2 / (2 sigma^2)), constant
  /// in time; d is the hex hop distance. sigma in cells (> 0).
  BlobProfile(const cell::HexGrid& grid, double base_rate, double peak_rate,
              cell::CellId center, double sigma_cells)
      : base_(base_rate), peak_(peak_rate) {
    assert(base_rate >= 0.0 && peak_rate >= 0.0 && sigma_cells > 0.0);
    rates_.reserve(static_cast<std::size_t>(grid.n_cells()));
    for (cell::CellId c = 0; c < grid.n_cells(); ++c) {
      const double d = grid.distance(c, center);
      rates_.push_back(base_ + peak_ * std::exp(-d * d / (2.0 * sigma_cells *
                                                          sigma_cells)));
    }
  }

  [[nodiscard]] double rate(cell::CellId c, sim::SimTime) const override {
    return rates_.at(static_cast<std::size_t>(c));
  }
  [[nodiscard]] double max_rate(cell::CellId c) const override {
    return rates_.at(static_cast<std::size_t>(c));
  }

 private:
  double base_;
  double peak_;
  std::vector<double> rates_;
};

class DiurnalProfile final : public LoadProfile {
 public:
  /// rate(t) = base * (1 + depth * sin(2 pi t / period)), clamped at 0.
  /// depth in [0, 1]; period > 0.
  DiurnalProfile(double base_rate, double depth, sim::Duration period)
      : base_(base_rate), depth_(depth), period_(period) {
    assert(base_rate >= 0.0 && depth >= 0.0 && depth <= 1.0 && period > 0);
  }

  [[nodiscard]] double rate(cell::CellId, sim::SimTime t) const override {
    constexpr double kTwoPi = 6.283185307179586;
    const double phase = kTwoPi * static_cast<double>(t % period_) /
                         static_cast<double>(period_);
    return std::max(0.0, base_ * (1.0 + depth_ * std::sin(phase)));
  }
  [[nodiscard]] double max_rate(cell::CellId) const override {
    return base_ * (1.0 + depth_);
  }

 private:
  double base_;
  double depth_;
  sim::Duration period_;
};

class MovingHotspotProfile final : public LoadProfile {
 public:
  /// The cell at route[floor(t / step) % route.size()] runs at
  /// base * factor; everyone else at base. Route must be non-empty.
  MovingHotspotProfile(double base_rate, double factor,
                       std::vector<cell::CellId> route, sim::Duration step)
      : base_(base_rate), factor_(factor), route_(std::move(route)), step_(step) {
    assert(base_rate >= 0.0 && factor >= 1.0 && !route_.empty() && step > 0);
  }

  [[nodiscard]] double rate(cell::CellId c, sim::SimTime t) const override {
    const auto idx =
        static_cast<std::size_t>(t / step_) % route_.size();
    return route_[idx] == c ? base_ * factor_ : base_;
  }
  [[nodiscard]] double max_rate(cell::CellId c) const override {
    for (const cell::CellId h : route_)
      if (h == c) return base_ * factor_;
    return base_;
  }

 private:
  double base_;
  double factor_;
  std::vector<cell::CellId> route_;
  sim::Duration step_;
};

class RampProfile final : public LoadProfile {
 public:
  RampProfile(double rate_before, double rate_after, sim::SimTime ramp_start,
              sim::SimTime ramp_end)
      : before_(rate_before), after_(rate_after), start_(ramp_start), end_(ramp_end) {
    assert(start_ < end_);
  }

  [[nodiscard]] double rate(cell::CellId, sim::SimTime t) const override {
    if (t <= start_) return before_;
    if (t >= end_) return after_;
    const double f = static_cast<double>(t - start_) / static_cast<double>(end_ - start_);
    return before_ + f * (after_ - before_);
  }
  [[nodiscard]] double max_rate(cell::CellId) const override {
    return std::max(before_, after_);
  }

 private:
  double before_;
  double after_;
  sim::SimTime start_;
  sim::SimTime end_;
};

}  // namespace dca::traffic
