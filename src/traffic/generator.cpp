#include "traffic/generator.hpp"

#include <cassert>
#include <utility>

namespace dca::traffic {

TrafficSource::TrafficSource(sim::Simulator& simulator, const cell::HexGrid& grid,
                             const LoadProfile& profile, double mean_holding_seconds,
                             std::uint64_t seed, Sink sink)
    : sim_(simulator),
      grid_(grid),
      profile_(profile),
      mean_holding_(mean_holding_seconds),
      sink_(std::move(sink)) {
  assert(mean_holding_ > 0.0);
  const int n = grid_.n_cells();
  arrival_rng_.reserve(static_cast<std::size_t>(n));
  holding_rng_.reserve(static_cast<std::size_t>(n));
  for (int c = 0; c < n; ++c) {
    arrival_rng_.push_back(
        sim::RngStream::derive(seed, static_cast<std::uint64_t>(c)));
    holding_rng_.push_back(
        sim::RngStream::derive(seed, static_cast<std::uint64_t>(c + n)));
  }
}

void TrafficSource::start(sim::SimTime horizon) {
  horizon_ = horizon;
  for (cell::CellId c = 0; c < grid_.n_cells(); ++c) schedule_next(c);
}

void TrafficSource::schedule_next(cell::CellId c) {
  auto& rng = arrival_rng_[static_cast<std::size_t>(c)];
  const double ceiling = profile_.max_rate(c);
  if (ceiling <= 0.0) return;  // silent cell

  // Draw the next candidate at the ceiling rate; thin on firing.
  const sim::Duration gap = rng.exponential_gap(ceiling);
  const sim::SimTime when = sim_.now() + gap;
  if (when >= horizon_) return;

  sim_.schedule_at(when, [this, c]() {
    auto& r = arrival_rng_[static_cast<std::size_t>(c)];
    const double ceiling_now = profile_.max_rate(c);
    const double accept_p = profile_.rate(c, sim_.now()) / ceiling_now;
    if (r.uniform() < accept_p) {
      CallSpec call;
      call.id = next_id_++;
      call.cell = c;
      call.arrival = sim_.now();
      call.holding = sim::from_seconds(
          holding_rng_[static_cast<std::size_t>(c)].exponential_mean(mean_holding_));
      if (call.holding <= 0) call.holding = 1;
      sink_(call);
    }
    schedule_next(c);
  });
}

}  // namespace dca::traffic
