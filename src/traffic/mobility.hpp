// Serial-derived mobility: the pure functions both engines use to decide
// when a call leaves its cell and where it goes.
//
// A migrating call is identified by an encoded serial packing (call, hop):
// the low 44 bits carry the original CallId, the high bits count completed
// handoffs. Dwell times and destination picks are drawn from substreams
// derived from (scenario seed, serial) alone — no engine-global mobility
// stream — so the classic engine and every shard of the sharded engine
// compute identical trajectories regardless of how calls interleave.
#pragma once

#include <cassert>
#include <cstdint>

#include "sim/random.hpp"
#include "sim/types.hpp"

namespace dca::traffic::mobility {

/// Bit layout of an encoded serial: low 44 bits = CallId, high bits = hop.
inline constexpr int kHopShift = 44;
inline constexpr std::uint64_t kCallMask = (std::uint64_t{1} << kHopShift) - 1;

/// Encodes (call, hop) into one serial. Hop 0 is the fresh call; each
/// handoff increments it, so every acquisition attempt of a call's life
/// has a distinct serial.
[[nodiscard]] inline std::uint64_t encode_serial(std::uint64_t call,
                                                 std::uint64_t hop) {
  assert(call != 0 && call <= kCallMask);
  assert(hop < (std::uint64_t{1} << 20));
  return call | (hop << kHopShift);
}

[[nodiscard]] inline std::uint64_t call_of(std::uint64_t serial) {
  return serial & kCallMask;
}

[[nodiscard]] inline std::uint64_t hop_of(std::uint64_t serial) {
  return serial >> kHopShift;
}

/// Dwell time in the current cell for the call leg identified by `serial`
/// (exponential with the configured mean, clamped to >= 1 us so time
/// always advances).
[[nodiscard]] inline sim::Duration dwell(std::uint64_t seed,
                                         std::uint64_t serial,
                                         double mean_dwell_s) {
  auto rng = sim::RngStream::derive(seed ^ 0xd3e11ull, serial);
  const sim::Duration d = sim::from_seconds(rng.exponential_mean(mean_dwell_s));
  return d > 0 ? d : 1;
}

/// Index into the departing cell's neighbour list for the leg `serial`.
[[nodiscard]] inline std::size_t pick_neighbor(std::uint64_t seed,
                                               std::uint64_t serial,
                                               std::size_t n) {
  auto rng = sim::RngStream::derive(seed ^ 0x40b11eull, serial);
  return rng.pick_index(n);
}

}  // namespace dca::traffic::mobility
