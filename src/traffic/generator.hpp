// Poisson call-arrival generator.
//
// One independent arrival process per cell, each on its own RNG substream
// (so adding a cell or changing one cell's profile never perturbs another
// cell's arrival trajectory). Time-varying profiles are sampled exactly via
// Lewis–Shedler thinning against the profile's per-cell rate ceiling.
// Holding times are exponential with a configurable mean.
#pragma once

#include <functional>
#include <vector>

#include "cell/grid.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "traffic/call.hpp"
#include "traffic/profile.hpp"

namespace dca::traffic {

class TrafficSource {
 public:
  /// Invoked at each accepted arrival instant.
  using Sink = std::function<void(const CallSpec&)>;

  /// `seed` labels the whole source; cell c draws from substream
  /// (seed, c) for arrivals and (seed, c + n_cells) for holding times.
  TrafficSource(sim::Simulator& simulator, const cell::HexGrid& grid,
                const LoadProfile& profile, double mean_holding_seconds,
                std::uint64_t seed, Sink sink);

  /// Begins generating arrivals in [now, horizon). Call once.
  void start(sim::SimTime horizon);

  /// Number of calls emitted so far.
  [[nodiscard]] std::uint64_t emitted() const noexcept { return next_id_ - 1; }

 private:
  void schedule_next(cell::CellId c);

  sim::Simulator& sim_;
  const cell::HexGrid& grid_;
  const LoadProfile& profile_;
  double mean_holding_;
  Sink sink_;
  sim::SimTime horizon_ = 0;
  CallId next_id_ = 1;
  std::vector<sim::RngStream> arrival_rng_;  // by cell
  std::vector<sim::RngStream> holding_rng_;  // by cell
};

}  // namespace dca::traffic
