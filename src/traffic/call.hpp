// Call records: the unit of offered load.
//
// A call arrives at a cell at a simulated instant and, if admitted, holds
// one channel for its holding time. Calls denied a channel are dropped
// (blocked) — the paper's "calls denied service" metric. With mobility
// enabled, an in-progress call can also hand off to a neighbouring cell;
// a handoff that cannot obtain a channel in the new cell is a forced
// termination, which we count separately from new-call blocking.
#pragma once

#include <cstdint>

#include "cell/grid.hpp"
#include "sim/types.hpp"

namespace dca::traffic {

using CallId = std::uint64_t;

struct CallSpec {
  CallId id = 0;
  cell::CellId cell = cell::kNoCell;  // cell of arrival
  sim::SimTime arrival = 0;           // arrival instant
  sim::Duration holding = 0;          // total requested holding time
};

}  // namespace dca::traffic
