// The control-message network between mobile service stations.
//
// send() stamps the message with a delivery delay from the latency model
// and schedules its arrival on the simulator; the registered receiver
// (the World in src/runner) dispatches it to the destination node's
// handler. The network also keeps global per-type message counters — the
// paper's "control message complexity" metric — and offers an observer
// hook the metrics collector uses to bill messages to individual channel
// acquisitions via Message::serial.
//
// Links are FIFO: a message never overtakes an earlier message on the
// same directed (from, to) link, whatever the latency model draws (the
// delivery time is floored at the link's previous delivery). The paper's
// protocols — like all message-passing pseudo-code of that era —
// implicitly assume ordered channels: with reordering, a stale Use-set
// snapshot can arrive after a later ACQUISITION and erase knowledge of a
// borrowed channel (a real interference scenario our fuzz suite found).
// Messages on DIFFERENT links still race freely under jitter.
//
// Fault injection (enable_faults) keeps both guarantees by running a
// reliable-transport sublayer underneath the lossy link: every logical
// message becomes a sequenced frame, frames are dropped / duplicated /
// re-jittered per FaultConfig, and the receive side resequences and
// dedups before handing messages up. The protocol layer therefore still
// sees exactly-once, per-link-FIFO delivery — only *later*, and by
// unbounded amounts, which is what its timeout paths must survive.
// Transport frames (retransmissions, acks) are NOT counted in the
// protocol message counters. With faults disabled none of this code is
// on the send path and behavior is bit-identical to the plain network.
//
// Hot-path layout: when constructed with a grid, every directed
// interference pair gets a dense LinkId up front (net/link_table.hpp) and
// ALL per-link state — FIFO clocks, reliable-transport tx/rx windows,
// fault RNG streams — lives in flat vectors indexed by LinkId, with
// retransmit/reorder buffers in per-link sequence rings. No tree or hash
// walk on send, delivery, or ack once warm. Pairs outside the table
// (tests drive arbitrary cells without a grid) fall back to a hash-map
// registration that appends to the same flat vectors, so behavior is
// identical either way.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/fault.hpp"
#include "net/latency.hpp"
#include "net/link_table.hpp"
#include "net/message.hpp"
#include "sim/log.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/small_fn.hpp"
#include "sim/trace.hpp"

namespace dca::net {

class Network {
 public:
  // Inline-only callables: a delivery/observer hook is a [this]-style
  // capture into the runner (or a small test lambda), invoked once per
  // message — it must never allocate or double-dispatch through
  // std::function.
  using DeliverFn = sim::SmallFn<void(const Message&), sim::kNetHandlerCapacity>;
  using ObserveFn = sim::SmallFn<void(const Message&), sim::kNetHandlerCapacity>;

  /// With a grid, every directed interference pair is enumerated into a
  /// dense LinkTable at construction (the fast path for all protocol
  /// traffic). Without one, links are registered on first use.
  explicit Network(sim::Simulator& simulator,
                   std::unique_ptr<LatencyModel> latency,
                   const cell::HexGrid* grid = nullptr);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Unregisters the instant hook (the inbox drain) from the simulator.
  ~Network();

  /// Installs the delivery callback (dispatches to msg.to's node).
  void set_receiver(DeliverFn fn) { deliver_ = std::move(fn); }

  /// Installs an optional send-time observer (metrics attribution).
  void set_observer(ObserveFn fn) { observe_ = std::move(fn); }

  /// Optional trace log; pass nullptr to disable.
  void set_trace(sim::TraceLog* log) { trace_ = log; }

  /// Optional structured event recorder (drop/dup/retransmit/pause).
  void set_recorder(sim::TraceRecorder* rec) { recorder_ = rec; }

  /// Turns on fault injection. Must be called before the first send();
  /// the per-link fault streams are derived from `seed`, so the complete
  /// fault schedule is a function of (config, seed) alone.
  void enable_faults(const FaultConfig& cfg, std::uint64_t seed);

  [[nodiscard]] const FaultConfig& fault_config() const noexcept {
    return fault_;
  }

  /// Sends one control message; counted immediately, delivered after the
  /// model's one-way delay (plus whatever the fault layer inflicts).
  void send(Message msg);

  // -- whole-MSS pause/resume -------------------------------------------
  // A paused station's allocator process receives nothing; inbound
  // messages queue (in link order) and flush on resume. The station can
  // still *send* (its outbound path is not severed) and its transport
  // keeps acking, modelling a stalled process on a live host.

  void pause(cell::CellId c);
  void resume(cell::CellId c);
  [[nodiscard]] bool is_paused(cell::CellId c) const {
    return static_cast<std::size_t>(c) < paused_.size() &&
           paused_[static_cast<std::size_t>(c)] != 0;
  }

  /// The latency bound T the paper's formulas are expressed in.
  [[nodiscard]] sim::Duration max_one_way_latency() const {
    return latency_->max_one_way();
  }

  /// The link enumeration in effect (empty without a grid).
  [[nodiscard]] const LinkTable& links() const noexcept { return links_; }

  // -- global counters --------------------------------------------------

  [[nodiscard]] std::uint64_t total_sent() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t sent_of(MsgKind k) const noexcept {
    return by_kind_[static_cast<std::size_t>(k)];
  }
  void reset_counters() noexcept {
    total_ = 0;
    by_kind_.fill(0);
  }

  [[nodiscard]] const TransportStats& transport_stats() const noexcept {
    return tstats_;
  }

 private:
  using LinkKey = std::pair<cell::CellId, cell::CellId>;

  /// Mixes a directed link into a hash in a handful of cycles; only the
  /// cold dynamic-registration map uses it (table misses).
  struct LinkHash {
    [[nodiscard]] std::size_t operator()(const LinkKey& k) const noexcept {
      std::uint64_t v =
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.first))
           << 32) |
          static_cast<std::uint32_t>(k.second);
      v *= 0x9E3779B97F4A7C15ull;  // Fibonacci multiplicative mix
      return static_cast<std::size_t>(v ^ (v >> 29));
    }
  };

  struct PendingFrame {
    Message msg;
    sim::EventId timer = sim::kInvalidEventId;
    int attempts = 0;
  };
  struct LinkTx {
    std::uint64_t next_seq = 1;
    // pending covers exactly [lowest_unacked, next_seq): frames are added
    // at next_seq and only ever erased as a prefix by cumulative acks, so
    // the window is a dense seq range in the ring.
    std::uint64_t lowest_unacked = 1;
    SeqRing<PendingFrame> pending;
  };
  struct LinkRx {
    std::uint64_t next_expected = 1;
    SeqRing<Message> reorder;
  };

  /// Dense id of a directed link: table hit for interference pairs (the
  /// entire protocol workload), dynamic registration otherwise.
  [[nodiscard]] LinkId link_id(cell::CellId from, cell::CellId to) {
    const LinkId lid = links_.id(from, to);
    if (lid != kNoLink) [[likely]] return lid;
    return dynamic_link_id(from, to);
  }
  [[nodiscard]] LinkId dynamic_link_id(cell::CellId from, cell::CellId to);

  // Reliable-transport internals (active only under link faults).
  void transport_send(Message msg);
  void transmit(const LinkKey& link, std::uint64_t seq);
  void on_rto(const LinkKey& link, std::uint64_t seq);
  void on_data_frame(const LinkKey& link, std::uint64_t seq,
                     const Message& msg);
  void send_ack(const LinkKey& data_link, std::uint64_t cumulative);
  void process_ack(const LinkKey& data_link, std::uint64_t cumulative);
  void arm_rto(const LinkKey& link, LinkId lid, std::uint64_t seq);
  [[nodiscard]] sim::Duration rto(int attempts) const;

  // -- canonical arrival batching ---------------------------------------
  // The sharded kernel executes same-instant deliveries at a receiver in
  // canonical (source cell, per-link send seq) order; raw simulator
  // insertion order agrees only by accident once timers start issuing
  // messages (an RTO-resent frame is inserted long before a same-instant
  // delivery-triggered one). Two same-instant operations on one directed
  // link share a fault stream, so the processing order decides which draw
  // each gets — it must be engine-invariant. Every inbound event (plain
  // message, data frame, transport ack) is therefore staged into a
  // per-receiver inbox and flushed once per (receiver, instant) in
  // canonical order, mirroring the sharded engine's delivery keys. The
  // drain runs from the simulator's end-of-instant hook — after the last
  // event at each timestamp — so batching adds no simulator events and
  // executed() stays comparable across engines.

  struct Arrival {
    enum class Type : std::uint8_t { kPlain, kFrame, kAck };
    Message msg;          // kPlain / kFrame payload
    std::uint64_t order;  // per-link send counter (the canonical seq)
    std::uint64_t seq;    // frame seq (kFrame) or cumulative ack (kAck)
    cell::CellId from;
    cell::CellId to;
    Type type;
  };

  /// Stages one arrival at `when` and arms the receiver's flush.
  void schedule_arrival(sim::SimTime when, Arrival a);
  void enqueue_arrival(const Arrival& a);
  void flush_armed();  // instant-end hook body: drain all armed inboxes
  void flush_inbox(cell::CellId to);

  /// Hands a fully-reassembled message to the node, or parks it if the
  /// destination MSS is paused.
  void deliver_to_node(const Message& msg);

  sim::RngStream& link_rng(const LinkKey& link);
  void ensure_cell(cell::CellId c);
  void record(sim::TraceKind k, const LinkKey& link, std::uint64_t seq,
              std::int64_t b = 0);

  sim::Simulator& sim_;
  // links_ must outlive latency_ (MatrixLatency keeps a pointer after
  // bind_links), hence the declaration order.
  LinkTable links_;
  std::unique_ptr<LatencyModel> latency_;
  DeliverFn deliver_;
  ObserveFn observe_;
  sim::TraceLog* trace_ = nullptr;
  sim::TraceRecorder* recorder_ = nullptr;

  std::uint64_t total_ = 0;
  std::array<std::uint64_t, kNumMsgKinds> by_kind_{};

  // All per-link state below is indexed by LinkId. link_clock_ is the last
  // scheduled delivery per directed link (the FIFO floor), probed once per
  // send. send_seq_ counts every scheduled delivery on the link (plain
  // messages, frames, acks alike) — the same counter the sharded engine
  // keys deliveries by, so both engines sort same-instant arrivals
  // identically.
  std::vector<sim::SimTime> link_clock_;
  std::vector<std::uint64_t> send_seq_;
  LinkId n_links_total_ = 0;  // table links + dynamic registrations
  std::unordered_map<LinkKey, LinkId, LinkHash> extra_;  // off-table pairs

  // Per-receiver arrival staging (see "canonical arrival batching").
  // armed_ lists the receivers with a non-empty inbox this instant;
  // flushing_ is its drained-in-order scratch twin (capacity recycled).
  std::vector<std::vector<Arrival>> inbox_;
  std::vector<std::uint8_t> inbox_armed_;
  std::vector<cell::CellId> armed_;
  std::vector<cell::CellId> flushing_;

  // Fault layer.
  FaultConfig fault_;
  PartitionTimeline partitions_;  // views fault_.partitions
  std::uint64_t fault_seed_ = 0;
  bool transport_ = false;  // per-frame faults on -> reliable transport
  sim::Duration rto_base_ = 0;
  TransportStats tstats_;
  std::vector<LinkTx> tx_;  // sized at enable_faults
  std::vector<LinkRx> rx_;
  // Lazily materialized: an engaged mt19937_64 is ~2.5 KB, and most links
  // of a large grid never carry traffic. Derivation is a pure function of
  // (seed, link), so lazy construction draws the identical stream.
  std::vector<std::unique_ptr<sim::RngStream>> fault_rng_;

  // Pause state, indexed by cell.
  std::vector<std::uint8_t> paused_;
  std::vector<std::vector<Message>> held_;
  std::size_t paused_count_ = 0;
};

}  // namespace dca::net
