// The control-message network between mobile service stations.
//
// send() stamps the message with a delivery delay from the latency model
// and schedules its arrival on the simulator; the registered receiver
// (the World in src/runner) dispatches it to the destination node's
// handler. The network also keeps global per-type message counters — the
// paper's "control message complexity" metric — and offers an observer
// hook the metrics collector uses to bill messages to individual channel
// acquisitions via Message::serial.
//
// Links are FIFO: a message never overtakes an earlier message on the
// same directed (from, to) link, whatever the latency model draws (the
// delivery time is floored at the link's previous delivery). The paper's
// protocols — like all message-passing pseudo-code of that era —
// implicitly assume ordered channels: with reordering, a stale Use-set
// snapshot can arrive after a later ACQUISITION and erase knowledge of a
// borrowed channel (a real interference scenario our fuzz suite found).
// Messages on DIFFERENT links still race freely under jitter.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <utility>

#include "net/latency.hpp"
#include "net/message.hpp"
#include "sim/log.hpp"
#include "sim/simulator.hpp"

namespace dca::net {

class Network {
 public:
  using DeliverFn = std::function<void(const Message&)>;
  using ObserveFn = std::function<void(const Message&)>;

  Network(sim::Simulator& simulator, std::unique_ptr<LatencyModel> latency)
      : sim_(simulator), latency_(std::move(latency)) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Installs the delivery callback (dispatches to msg.to's node).
  void set_receiver(DeliverFn fn) { deliver_ = std::move(fn); }

  /// Installs an optional send-time observer (metrics attribution).
  void set_observer(ObserveFn fn) { observe_ = std::move(fn); }

  /// Optional trace log; pass nullptr to disable.
  void set_trace(sim::TraceLog* log) { trace_ = log; }

  /// Sends one control message; counted immediately, delivered after the
  /// model's one-way delay.
  void send(Message msg);

  /// The latency bound T the paper's formulas are expressed in.
  [[nodiscard]] sim::Duration max_one_way_latency() const {
    return latency_->max_one_way();
  }

  // -- global counters --------------------------------------------------

  [[nodiscard]] std::uint64_t total_sent() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t sent_of(MsgKind k) const noexcept {
    return by_kind_[static_cast<std::size_t>(k)];
  }
  void reset_counters() noexcept {
    total_ = 0;
    by_kind_.fill(0);
  }

 private:
  sim::Simulator& sim_;
  std::unique_ptr<LatencyModel> latency_;
  DeliverFn deliver_;
  ObserveFn observe_;
  sim::TraceLog* trace_ = nullptr;

  std::uint64_t total_ = 0;
  std::array<std::uint64_t, kNumMsgKinds> by_kind_{};
  // Last scheduled delivery per directed link (FIFO floor).
  std::map<std::pair<cell::CellId, cell::CellId>, sim::SimTime> link_clock_;
};

}  // namespace dca::net
