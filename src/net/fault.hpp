// Deterministic fault-injection model for the MSS control network.
//
// Four fault classes, all driven by RngStreams derived from (seed, link)
// so a fault schedule is a pure function of the scenario seed — replays
// are bit-identical and independent of host thread count:
//
//   * drop_prob   — each frame is lost with this probability
//   * dup_prob    — each delivered frame is delivered twice
//   * jitter      — extra uniform [0, jitter] delay per frame, widening
//                   the physical reorder window beyond the latency model
//   * pauses      — whole-MSS stalls (Poisson arrivals, exponential
//                   lengths) during which the allocator process sees no
//                   messages; the NIC stays alive, so transport ACKs
//                   still flow and delivery resumes in order
//
// When any link fault is active the Network runs a reliable-transport
// sublayer (per-link sequence numbers, cumulative ACKs, retransmission
// with backoff, receive-side resequencing) so the protocols keep their
// required per-link FIFO, exactly-once delivery — but with unbounded,
// fault-dependent latencies that exercise every timeout path. With the
// config all-zero the fault machinery is bypassed entirely and the
// network behaves bit-identically to the fault-free build.
#pragma once

#include <cstdint>

#include "sim/types.hpp"

namespace dca::net {

struct FaultConfig {
  /// Probability a frame (data or ack) is silently dropped in flight.
  double drop_prob = 0.0;
  /// Probability a frame that survives is delivered a second time.
  double dup_prob = 0.0;
  /// Extra per-frame delay, uniform in [0, jitter] (microseconds).
  sim::Duration jitter = 0;
  /// Whole-MSS pause events per minute per cell (Poisson rate).
  double pause_rate_per_min = 0.0;
  /// Mean pause length in seconds (exponential).
  double pause_mean_s = 0.0;

  /// Any per-frame fault active (engages the reliable transport).
  [[nodiscard]] bool link_faults() const noexcept {
    return drop_prob > 0.0 || dup_prob > 0.0 || jitter > 0;
  }
  /// Pause/resume timeline active.
  [[nodiscard]] bool pauses() const noexcept {
    return pause_rate_per_min > 0.0 && pause_mean_s > 0.0;
  }
  [[nodiscard]] bool enabled() const noexcept {
    return link_faults() || pauses();
  }
};

/// Transport-layer frame counters (kept apart from the protocol message
/// counters: the paper's message-complexity metric must not change when a
/// lossy link forces retransmissions).
struct TransportStats {
  std::uint64_t frames_dropped = 0;
  std::uint64_t frames_duplicated = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t acks_sent = 0;

  friend bool operator==(const TransportStats&, const TransportStats&) = default;
};

}  // namespace dca::net
