// Deterministic fault-injection model for the MSS control network.
//
// Four fault classes, all driven by RngStreams derived from (seed, link)
// so a fault schedule is a pure function of the scenario seed — replays
// are bit-identical and independent of host thread count:
//
//   * drop_prob   — each frame is lost with this probability
//   * dup_prob    — each delivered frame is delivered twice
//   * jitter      — extra uniform [0, jitter] delay per frame, widening
//                   the physical reorder window beyond the latency model
//   * pauses      — whole-MSS stalls (Poisson arrivals, exponential
//                   lengths) during which the allocator process sees no
//                   messages; the NIC stays alive, so transport ACKs
//                   still flow and delivery resumes in order
//
// When any link fault is active the Network runs a reliable-transport
// sublayer (per-link sequence numbers, cumulative ACKs, retransmission
// with backoff, receive-side resequencing) so the protocols keep their
// required per-link FIFO, exactly-once delivery — but with unbounded,
// fault-dependent latencies that exercise every timeout path. With the
// config all-zero the fault machinery is bypassed entirely and the
// network behaves bit-identically to the fault-free build.
#pragma once

#include <cstdint>
#include <vector>

#include "cell/grid.hpp"
#include "sim/types.hpp"

namespace dca::net {

/// One scheduled network partition: during [start, end) every link with
/// exactly one endpoint inside `cells` is severed in both directions (the
/// cut isolates the group from the rest of the region; links internal to
/// the group keep working). Severed frames are silently lost; the
/// reliable transport's RTO keeps resending, so traffic flows again the
/// instant the partition heals — nothing (including handoffs) is lost,
/// only delayed.
struct PartitionSpec {
  std::vector<cell::CellId> cells;  // the isolated group
  sim::SimTime start = 0;           // sever instant (inclusive)
  sim::SimTime end = 0;             // heal instant (exclusive)

  friend bool operator==(const PartitionSpec&, const PartitionSpec&) = default;
};

struct FaultConfig {
  /// Probability a frame (data or ack) is silently dropped in flight.
  double drop_prob = 0.0;
  /// Probability a frame that survives is delivered a second time.
  double dup_prob = 0.0;
  /// Extra per-frame delay, uniform in [0, jitter] (microseconds).
  sim::Duration jitter = 0;
  /// Whole-MSS pause events per minute per cell (Poisson rate).
  double pause_rate_per_min = 0.0;
  /// Mean pause length in seconds (exponential).
  double pause_mean_s = 0.0;
  /// MSS crash events per minute per cell (Poisson rate). A crash tears
  /// down the cell's live calls, wipes its allocator's volatile state, and
  /// keeps it off the air for an exponential outage; on restart the node
  /// runs a resync round before re-admitting traffic.
  double crash_rate_per_min = 0.0;
  /// Mean crash outage length in seconds (exponential).
  double crash_mean_s = 0.0;
  /// Scheduled network partitions (explicit, not rate-driven: a partition
  /// pattern is part of the scenario, like the load profile).
  std::vector<PartitionSpec> partitions;

  /// Any per-frame fault active (engages the reliable transport).
  /// Partitions count: severed frames are losses, and the transport's
  /// retransmission is what guarantees delivery after the heal.
  [[nodiscard]] bool link_faults() const noexcept {
    return drop_prob > 0.0 || dup_prob > 0.0 || jitter > 0 ||
           !partitions.empty();
  }
  /// Pause/resume timeline active.
  [[nodiscard]] bool pauses() const noexcept {
    return pause_rate_per_min > 0.0 && pause_mean_s > 0.0;
  }
  /// Crash/restart timeline active.
  [[nodiscard]] bool crashes() const noexcept {
    return crash_rate_per_min > 0.0 && crash_mean_s > 0.0;
  }
  [[nodiscard]] bool has_partitions() const noexcept {
    return !partitions.empty();
  }
  [[nodiscard]] bool enabled() const noexcept {
    return link_faults() || pauses() || crashes();
  }
};

/// Answers "is this directed link severed at time t?" against the
/// scenario's partition list. Both engines consult the same pure function
/// at the same (sender-side) draw sites, so the fault schedule — and the
/// RNG draw sequence after it — stays bit-identical across engines.
class PartitionTimeline {
 public:
  PartitionTimeline() = default;
  explicit PartitionTimeline(const std::vector<PartitionSpec>& specs, int n_cells)
      : specs_(&specs), inside_(specs.size()) {
    for (std::size_t i = 0; i < specs.size(); ++i) {
      inside_[i].assign(static_cast<std::size_t>(n_cells), 0);
      for (const cell::CellId c : specs[i].cells) {
        inside_[i][static_cast<std::size_t>(c)] = 1;
      }
    }
  }

  [[nodiscard]] bool severed(cell::CellId from, cell::CellId to,
                             sim::SimTime t) const {
    if (specs_ == nullptr) return false;
    for (std::size_t i = 0; i < specs_->size(); ++i) {
      const PartitionSpec& p = (*specs_)[i];
      if (t < p.start || t >= p.end) continue;
      // Severed iff the link crosses the cut.
      if (inside_[i][static_cast<std::size_t>(from)] !=
          inside_[i][static_cast<std::size_t>(to)]) {
        return true;
      }
    }
    return false;
  }

 private:
  const std::vector<PartitionSpec>* specs_ = nullptr;
  std::vector<std::vector<std::uint8_t>> inside_;  // membership, per spec
};

/// Transport-layer frame counters (kept apart from the protocol message
/// counters: the paper's message-complexity metric must not change when a
/// lossy link forces retransmissions).
struct TransportStats {
  std::uint64_t frames_dropped = 0;
  std::uint64_t frames_duplicated = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t acks_sent = 0;

  friend bool operator==(const TransportStats&, const TransportStats&) = default;
};

}  // namespace dca::net
