#include "net/network.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace dca::net {

Network::Network(sim::Simulator& simulator,
                 std::unique_ptr<LatencyModel> latency,
                 const cell::HexGrid* grid)
    : sim_(simulator), latency_(std::move(latency)) {
  if (grid != nullptr) {
    links_ = LinkTable(*grid);
    latency_->bind_links(links_);
    held_.resize(static_cast<std::size_t>(grid->n_cells()));
    paused_.assign(static_cast<std::size_t>(grid->n_cells()), 0);
    inbox_.resize(static_cast<std::size_t>(grid->n_cells()));
    inbox_armed_.assign(static_cast<std::size_t>(grid->n_cells()), 0);
  }
  n_links_total_ = links_.n_links();
  link_clock_.assign(static_cast<std::size_t>(n_links_total_), 0);
  send_seq_.assign(static_cast<std::size_t>(n_links_total_), 0);
  // Inboxes drain at the end of each simulated instant, once every arrival
  // event scheduled for that instant has been staged. Running the drain as
  // a simulator hook (not as scheduled events) keeps executed() — the
  // replay fingerprint — in one-to-one correspondence with the sharded
  // kernel's event count.
  sim_.set_instant_hook([this]() { flush_armed(); });
}

Network::~Network() { sim_.clear_instant_hook(); }

LinkId Network::dynamic_link_id(cell::CellId from, cell::CellId to) {
  const auto [it, inserted] = extra_.try_emplace({from, to}, n_links_total_);
  if (inserted) {
    ++n_links_total_;
    link_clock_.push_back(0);
    send_seq_.push_back(0);
    if (transport_) {
      tx_.emplace_back();
      rx_.emplace_back();
      fault_rng_.emplace_back();
    }
  }
  return it->second;
}

void Network::enable_faults(const FaultConfig& cfg, std::uint64_t seed) {
  assert(total_ == 0 && "enable_faults must precede the first send");
  fault_ = cfg;
  fault_seed_ = seed;
  transport_ = cfg.link_faults();
  if (!fault_.partitions.empty()) {
    std::size_t n = paused_.size();
    for (const PartitionSpec& p : fault_.partitions) {
      for (const cell::CellId c : p.cells) {
        if (static_cast<std::size_t>(c) + 1 > n) {
          n = static_cast<std::size_t>(c) + 1;
        }
      }
    }
    partitions_ = PartitionTimeline(fault_.partitions, static_cast<int>(n));
  }
  if (transport_) {
    tx_.resize(static_cast<std::size_t>(n_links_total_));
    rx_.resize(static_cast<std::size_t>(n_links_total_));
    fault_rng_.resize(static_cast<std::size_t>(n_links_total_));
  }
  // Retransmission timeout: a frame plus its ack each take at most one
  // latency bound plus the injected jitter; the extra millisecond absorbs
  // the FIFO floor. Deliberately generous — a premature retransmission is
  // only wasted bandwidth, but the timeout must not fire on a healthy
  // round trip.
  rto_base_ = 2 * (latency_->max_one_way() + cfg.jitter) + sim::milliseconds(1);
}

void Network::send(Message msg) {
  assert(msg.from != cell::kNoCell && msg.to != cell::kNoCell);
  assert(msg.from != msg.to && "nodes do not message themselves");
  ++total_;
  ++by_kind_[static_cast<std::size_t>(msg.kind)];
  if (observe_) observe_(msg);
  if (trace_ && trace_->enabled(sim::LogLevel::kTrace)) {
    trace_->emit(sim::LogLevel::kTrace, sim_.now(),
                 sim::format_line("net: ", msg.from, " -> ", msg.to, " ",
                                  msg.kind_name(), " ch=", msg.channel));
  }
  if (transport_) {
    transport_send(std::move(msg));
    return;
  }
  const LinkId lid = link_id(msg.from, msg.to);
  const sim::Duration d = latency_->link_delay(lid, msg.from, msg.to);
  // FIFO per directed link: never deliver before an earlier send on the
  // same link (same-instant ties resolve canonically in flush_inbox).
  sim::SimTime when = sim_.now() + (d > 0 ? d : 0);
  sim::SimTime& floor_time = link_clock_[static_cast<std::size_t>(lid)];
  if (when < floor_time) when = floor_time;
  floor_time = when;
  Arrival a;
  a.from = msg.from;
  a.to = msg.to;
  a.msg = std::move(msg);
  a.order = ++send_seq_[static_cast<std::size_t>(lid)];
  a.type = Arrival::Type::kPlain;
  schedule_arrival(when, std::move(a));
}

void Network::schedule_arrival(sim::SimTime when, Arrival a) {
  auto ev = [this, a = std::move(a)]() { enqueue_arrival(a); };
  // The arrival closure (a full Message by value plus the canonical
  // ordering stamp) is the hot-path event; it must stay inside EventFn's
  // inline buffer or every send allocates.
  static_assert(sim::EventFn::fits_inline<decltype(ev)>(),
                "Arrival closure must fit EventFn's inline buffer; "
                "grow sim::kEventFnCapacity if Message grew");
  sim_.schedule_at(when, std::move(ev));
}

void Network::enqueue_arrival(const Arrival& a) {
  ensure_cell(a.to);  // gridless tests: cells appear on first use
  inbox_[static_cast<std::size_t>(a.to)].push_back(a);
  if (inbox_armed_[static_cast<std::size_t>(a.to)] == 0) {
    inbox_armed_[static_cast<std::size_t>(a.to)] = 1;
    armed_.push_back(a.to);  // drained by flush_armed at instant end
  }
}

void Network::flush_armed() {
  if (armed_.empty()) return;
  // Ascending cell order — the sharded kernel's owner-major canonical
  // order for same-instant work on different cells. A flush can send at
  // zero latency and re-arm an inbox; those arrivals pop as fresh events
  // at the same instant and drain on the next hook invocation.
  std::sort(armed_.begin(), armed_.end());
  flushing_.swap(armed_);
  for (const cell::CellId to : flushing_) flush_inbox(to);
  flushing_.clear();
}

void Network::flush_inbox(cell::CellId to) {
  inbox_armed_[static_cast<std::size_t>(to)] = 0;
  std::vector<Arrival> batch;
  batch.swap(inbox_[static_cast<std::size_t>(to)]);
  std::stable_sort(batch.begin(), batch.end(),
                   [](const Arrival& x, const Arrival& y) {
                     return x.from != y.from ? x.from < y.from
                                             : x.order < y.order;
                   });
  for (const Arrival& a : batch) {
    switch (a.type) {
      case Arrival::Type::kPlain:
        deliver_to_node(a.msg);
        break;
      case Arrival::Type::kFrame:
        on_data_frame({a.from, a.to}, a.seq, a.msg);
        break;
      case Arrival::Type::kAck:
        process_ack({a.to, a.from}, a.seq);
        break;
    }
  }
  batch.clear();
  // Hand the batch's capacity back unless a zero-latency send re-armed
  // the inbox while we were flushing.
  if (inbox_[static_cast<std::size_t>(to)].empty()) {
    inbox_[static_cast<std::size_t>(to)].swap(batch);
  }
}

// -- reliable transport over the lossy link ------------------------------

void Network::transport_send(Message msg) {
  const LinkKey link{msg.from, msg.to};
  const LinkId lid = link_id(msg.from, msg.to);
  LinkTx& tx = tx_[static_cast<std::size_t>(lid)];
  const std::uint64_t seq = tx.next_seq++;
  tx.pending.insert(seq).msg = std::move(msg);
  transmit(link, seq);
  arm_rto(link, lid, seq);
}

sim::RngStream& Network::link_rng(const LinkKey& link) {
  const LinkId lid = link_id(link.first, link.second);
  std::unique_ptr<sim::RngStream>& slot = fault_rng_[static_cast<std::size_t>(lid)];
  if (!slot) {
    const std::uint64_t label =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(link.first))
         << 32) |
        static_cast<std::uint32_t>(link.second);
    slot = std::make_unique<sim::RngStream>(
        sim::RngStream::derive(fault_seed_ ^ 0xFA017ull, label));
  }
  return *slot;
}

void Network::record(sim::TraceKind k, const LinkKey& link, std::uint64_t seq,
                     std::int64_t b) {
  if (!recorder_) return;
  sim::TraceEvent e;
  e.kind = k;
  e.t = sim_.now();
  e.cell = static_cast<std::int32_t>(link.first);
  e.peer = static_cast<std::int32_t>(link.second);
  e.a = static_cast<std::int64_t>(seq);
  e.b = b;
  recorder_->emit(e);
}

sim::Duration Network::rto(int attempts) const {
  // Exponential backoff, capped so the shift cannot overflow and a long
  // outage retries at a bounded cadence.
  const int shift = attempts < 6 ? attempts : 6;
  return rto_base_ << shift;
}

void Network::arm_rto(const LinkKey& link, LinkId lid, std::uint64_t seq) {
  PendingFrame* f = tx_[static_cast<std::size_t>(lid)].pending.find(seq);
  assert(f != nullptr && "arming an RTO for a frame not in the window");
  auto timer = [this, link, seq]() { on_rto(link, seq); };
  static_assert(sim::EventFn::fits_inline<decltype(timer)>(),
                "RTO closure must fit EventFn's inline buffer");
  f->timer = sim_.schedule_in(rto(f->attempts), std::move(timer));
}

void Network::on_rto(const LinkKey& link, std::uint64_t seq) {
  const LinkId lid = link_id(link.first, link.second);
  PendingFrame* f = tx_[static_cast<std::size_t>(lid)].pending.find(seq);
  if (f == nullptr) return;  // acked in the meantime
  f->timer = sim::kInvalidEventId;
  ++f->attempts;
  ++tstats_.retransmissions;
  record(sim::TraceKind::kRetransmit, link, seq, f->attempts);
  transmit(link, seq);
  arm_rto(link, lid, seq);
}

void Network::transmit(const LinkKey& link, std::uint64_t seq) {
  sim::RngStream& rng = link_rng(link);
  // Partition cut: checked before any RNG draw so the per-link stream
  // advances identically whether or not a partition is configured.
  if (fault_.has_partitions() &&
      partitions_.severed(link.first, link.second, sim_.now())) {
    ++tstats_.frames_dropped;
    record(sim::TraceKind::kDrop, link, seq, -1);
    return;  // severed; the RTO resends until the partition heals
  }
  if (fault_.drop_prob > 0 && rng.bernoulli(fault_.drop_prob)) {
    ++tstats_.frames_dropped;
    record(sim::TraceKind::kDrop, link, seq);
    return;  // lost in flight; the RTO will resend it
  }
  const LinkId lid = link_id(link.first, link.second);
  const PendingFrame* f = tx_[static_cast<std::size_t>(lid)].pending.find(seq);
  assert(f != nullptr && "transmitting a frame not in the window");
  const Message& msg = f->msg;
  int copies = 1;
  if (fault_.dup_prob > 0 && rng.bernoulli(fault_.dup_prob)) {
    ++tstats_.frames_duplicated;
    record(sim::TraceKind::kDup, link, seq);
    copies = 2;
  }
  for (int i = 0; i < copies; ++i) {
    sim::Duration d = latency_->link_delay(lid, link.first, link.second);
    if (d < 0) d = 0;
    if (fault_.jitter > 0) d += rng.uniform_int(0, fault_.jitter);
    // No FIFO floor here: frame-level reordering is the injected fault.
    // The receive side resequences, so the protocol still sees FIFO.
    Arrival a;
    a.msg = msg;
    a.order = ++send_seq_[static_cast<std::size_t>(lid)];
    a.seq = seq;
    a.from = link.first;
    a.to = link.second;
    a.type = Arrival::Type::kFrame;
    schedule_arrival(sim_.now() + d, std::move(a));
  }
}

void Network::on_data_frame(const LinkKey& link, std::uint64_t seq,
                            const Message& msg) {
  const LinkId lid = link_id(link.first, link.second);
  if (seq >= rx_[static_cast<std::size_t>(lid)].next_expected) {
    {
      LinkRx& rx = rx_[static_cast<std::size_t>(lid)];
      if (!rx.reorder.contains(seq)) rx.reorder.insert(seq) = msg;
    }
    // Re-index rx_ each round: delivering can make the node send, and a
    // send may append a dynamically registered link (gridless tests),
    // reallocating the vector under a held reference.
    while (true) {
      LinkRx& rx = rx_[static_cast<std::size_t>(lid)];
      Message* head = rx.reorder.find(rx.next_expected);
      if (head == nullptr) break;
      const Message m = *head;
      rx.reorder.erase(rx.next_expected);
      ++rx.next_expected;
      deliver_to_node(m);
    }
  }
  // Cumulative ack, also for stale duplicates (their original ack may
  // have been the casualty).
  send_ack(link, rx_[static_cast<std::size_t>(lid)].next_expected - 1);
}

void Network::send_ack(const LinkKey& data_link, std::uint64_t cumulative) {
  ++tstats_.acks_sent;
  // The ack travels the reverse direction and faces the same lossy link.
  const LinkKey back{data_link.second, data_link.first};
  sim::RngStream& rng = link_rng(back);
  if (fault_.has_partitions() &&
      partitions_.severed(back.first, back.second, sim_.now())) {
    ++tstats_.frames_dropped;
    record(sim::TraceKind::kDrop, back, cumulative, -1);
    return;
  }
  if (fault_.drop_prob > 0 && rng.bernoulli(fault_.drop_prob)) {
    ++tstats_.frames_dropped;
    record(sim::TraceKind::kDrop, back, cumulative);
    return;
  }
  const LinkId back_lid = link_id(back.first, back.second);
  sim::Duration d = latency_->link_delay(back_lid, back.first, back.second);
  if (d < 0) d = 0;
  if (fault_.jitter > 0) d += rng.uniform_int(0, fault_.jitter);
  Arrival a;
  a.order = ++send_seq_[static_cast<std::size_t>(back_lid)];
  a.seq = cumulative;
  a.from = back.first;
  a.to = back.second;
  a.type = Arrival::Type::kAck;
  schedule_arrival(sim_.now() + d, std::move(a));
}

void Network::process_ack(const LinkKey& data_link, std::uint64_t cumulative) {
  const LinkId lid = link_id(data_link.first, data_link.second);
  LinkTx& tx = tx_[static_cast<std::size_t>(lid)];
  // The window is the dense range [lowest_unacked, next_seq); acking a
  // cumulative prefix walks it in ascending seq order, exactly like the
  // old ordered-map prefix erase.
  while (tx.lowest_unacked <= cumulative && tx.lowest_unacked < tx.next_seq) {
    if (PendingFrame* f = tx.pending.find(tx.lowest_unacked)) {
      if (f->timer != sim::kInvalidEventId) sim_.cancel(f->timer);
      tx.pending.erase(tx.lowest_unacked);
    }
    ++tx.lowest_unacked;
  }
}

// -- pause / resume ------------------------------------------------------

void Network::ensure_cell(cell::CellId c) {
  const auto need = static_cast<std::size_t>(c) + 1;
  if (paused_.size() < need) paused_.resize(need, 0);
  if (held_.size() < need) held_.resize(need);
  if (inbox_.size() < need) inbox_.resize(need);
  if (inbox_armed_.size() < need) inbox_armed_.resize(need, 0);
}

void Network::pause(cell::CellId c) {
  ensure_cell(c);
  std::uint8_t& flag = paused_[static_cast<std::size_t>(c)];
  if (flag != 0) return;
  flag = 1;
  ++paused_count_;
  if (recorder_) {
    sim::TraceEvent e;
    e.kind = sim::TraceKind::kPause;
    e.t = sim_.now();
    e.cell = static_cast<std::int32_t>(c);
    recorder_->emit(e);
  }
}

void Network::resume(cell::CellId c) {
  if (!is_paused(c)) return;
  paused_[static_cast<std::size_t>(c)] = 0;
  --paused_count_;
  if (recorder_) {
    sim::TraceEvent e;
    e.kind = sim::TraceKind::kResume;
    e.t = sim_.now();
    e.cell = static_cast<std::int32_t>(c);
    recorder_->emit(e);
  }
  std::vector<Message> backlog = std::move(held_[static_cast<std::size_t>(c)]);
  held_[static_cast<std::size_t>(c)].clear();
  for (const Message& m : backlog) {
    if (deliver_) deliver_(m);
  }
}

void Network::deliver_to_node(const Message& msg) {
  if (paused_count_ != 0 && is_paused(msg.to)) {
    held_[static_cast<std::size_t>(msg.to)].push_back(msg);
    return;
  }
  if (deliver_) deliver_(msg);
}

}  // namespace dca::net
