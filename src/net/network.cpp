#include "net/network.hpp"

#include <cassert>
#include <utility>

namespace dca::net {

void Network::send(Message msg) {
  assert(msg.from != cell::kNoCell && msg.to != cell::kNoCell);
  assert(msg.from != msg.to && "nodes do not message themselves");
  ++total_;
  ++by_kind_[static_cast<std::size_t>(msg.kind)];
  if (observe_) observe_(msg);
  if (trace_ && trace_->enabled(sim::LogLevel::kTrace)) {
    trace_->emit(sim::LogLevel::kTrace, sim_.now(),
                 sim::format_line("net: ", msg.from, " -> ", msg.to, " ",
                                  msg.kind_name(), " ch=", msg.channel));
  }
  const sim::Duration d = latency_->delay(msg.from, msg.to);
  // FIFO per directed link: never deliver before an earlier send on the
  // same link (ties break by scheduling order, which is send order).
  sim::SimTime when = sim_.now() + (d > 0 ? d : 0);
  auto& floor_time = link_clock_[{msg.from, msg.to}];
  if (when < floor_time) when = floor_time;
  floor_time = when;
  sim_.schedule_at(when, [this, m = std::move(msg)]() {
    if (deliver_) deliver_(m);
  });
}

}  // namespace dca::net
