#include "net/network.hpp"

#include <cassert>
#include <utility>

namespace dca::net {

void Network::enable_faults(const FaultConfig& cfg, std::uint64_t seed) {
  assert(total_ == 0 && "enable_faults must precede the first send");
  fault_ = cfg;
  fault_seed_ = seed;
  transport_ = cfg.link_faults();
  // Retransmission timeout: a frame plus its ack each take at most one
  // latency bound plus the injected jitter; the extra millisecond absorbs
  // the FIFO floor. Deliberately generous — a premature retransmission is
  // only wasted bandwidth, but the timeout must not fire on a healthy
  // round trip.
  rto_base_ = 2 * (latency_->max_one_way() + cfg.jitter) + sim::milliseconds(1);
}

void Network::send(Message msg) {
  assert(msg.from != cell::kNoCell && msg.to != cell::kNoCell);
  assert(msg.from != msg.to && "nodes do not message themselves");
  ++total_;
  ++by_kind_[static_cast<std::size_t>(msg.kind)];
  if (observe_) observe_(msg);
  if (trace_ && trace_->enabled(sim::LogLevel::kTrace)) {
    trace_->emit(sim::LogLevel::kTrace, sim_.now(),
                 sim::format_line("net: ", msg.from, " -> ", msg.to, " ",
                                  msg.kind_name(), " ch=", msg.channel));
  }
  if (transport_) {
    transport_send(std::move(msg));
    return;
  }
  const sim::Duration d = latency_->delay(msg.from, msg.to);
  // FIFO per directed link: never deliver before an earlier send on the
  // same link (ties break by scheduling order, which is send order).
  sim::SimTime when = sim_.now() + (d > 0 ? d : 0);
  auto& floor_time = link_clock_[{msg.from, msg.to}];
  if (when < floor_time) when = floor_time;
  floor_time = when;
  auto deliver = [this, m = std::move(msg)]() { deliver_to_node(m); };
  // The delivery closure (a full Message by value) is the hot-path event;
  // it must stay inside EventFn's inline buffer or every send allocates.
  static_assert(sim::EventFn::fits_inline<decltype(deliver)>(),
                "Message delivery closure must fit EventFn's inline buffer; "
                "grow sim::kEventFnCapacity if Message grew");
  sim_.schedule_at(when, std::move(deliver));
}

// -- reliable transport over the lossy link ------------------------------

void Network::transport_send(Message msg) {
  const LinkKey link{msg.from, msg.to};
  LinkTx& tx = tx_[link];
  const std::uint64_t seq = tx.next_seq++;
  tx.pending.emplace(seq, PendingFrame{std::move(msg)});
  transmit(link, seq);
  arm_rto(link, seq);
}

sim::RngStream& Network::link_rng(const LinkKey& link) {
  auto it = fault_rng_.find(link);
  if (it == fault_rng_.end()) {
    const std::uint64_t label =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(link.first))
         << 32) |
        static_cast<std::uint32_t>(link.second);
    it = fault_rng_
             .emplace(link, sim::RngStream::derive(fault_seed_ ^ 0xFA017ull,
                                                   label))
             .first;
  }
  return it->second;
}

void Network::record(sim::TraceKind k, const LinkKey& link, std::uint64_t seq,
                     std::int64_t b) {
  if (!recorder_) return;
  sim::TraceEvent e;
  e.kind = k;
  e.t = sim_.now();
  e.cell = static_cast<std::int32_t>(link.first);
  e.peer = static_cast<std::int32_t>(link.second);
  e.a = static_cast<std::int64_t>(seq);
  e.b = b;
  recorder_->emit(e);
}

sim::Duration Network::rto(int attempts) const {
  // Exponential backoff, capped so the shift cannot overflow and a long
  // outage retries at a bounded cadence.
  const int shift = attempts < 6 ? attempts : 6;
  return rto_base_ << shift;
}

void Network::arm_rto(const LinkKey& link, std::uint64_t seq) {
  PendingFrame& f = tx_[link].pending.at(seq);
  f.timer = sim_.schedule_in(rto(f.attempts),
                             [this, link, seq]() { on_rto(link, seq); });
}

void Network::on_rto(const LinkKey& link, std::uint64_t seq) {
  LinkTx& tx = tx_[link];
  auto it = tx.pending.find(seq);
  if (it == tx.pending.end()) return;  // acked in the meantime
  it->second.timer = sim::kInvalidEventId;
  ++it->second.attempts;
  ++tstats_.retransmissions;
  record(sim::TraceKind::kRetransmit, link, seq, it->second.attempts);
  transmit(link, seq);
  arm_rto(link, seq);
}

void Network::transmit(const LinkKey& link, std::uint64_t seq) {
  sim::RngStream& rng = link_rng(link);
  if (fault_.drop_prob > 0 && rng.bernoulli(fault_.drop_prob)) {
    ++tstats_.frames_dropped;
    record(sim::TraceKind::kDrop, link, seq);
    return;  // lost in flight; the RTO will resend it
  }
  const Message& msg = tx_[link].pending.at(seq).msg;
  int copies = 1;
  if (fault_.dup_prob > 0 && rng.bernoulli(fault_.dup_prob)) {
    ++tstats_.frames_duplicated;
    record(sim::TraceKind::kDup, link, seq);
    copies = 2;
  }
  for (int i = 0; i < copies; ++i) {
    sim::Duration d = latency_->delay(link.first, link.second);
    if (d < 0) d = 0;
    if (fault_.jitter > 0) d += rng.uniform_int(0, fault_.jitter);
    // No FIFO floor here: frame-level reordering is the injected fault.
    // The receive side resequences, so the protocol still sees FIFO.
    sim_.schedule_in(d, [this, link, seq, m = msg]() {
      on_data_frame(link, seq, m);
    });
  }
}

void Network::on_data_frame(const LinkKey& link, std::uint64_t seq,
                            const Message& msg) {
  LinkRx& rx = rx_[link];
  if (seq >= rx.next_expected) {
    rx.reorder.emplace(seq, msg);  // no-op if this seq is already buffered
    while (true) {
      auto it = rx.reorder.find(rx.next_expected);
      if (it == rx.reorder.end()) break;
      const Message m = std::move(it->second);
      rx.reorder.erase(it);
      ++rx.next_expected;
      deliver_to_node(m);
    }
  }
  // Cumulative ack, also for stale duplicates (their original ack may
  // have been the casualty).
  send_ack(link, rx.next_expected - 1);
}

void Network::send_ack(const LinkKey& data_link, std::uint64_t cumulative) {
  ++tstats_.acks_sent;
  // The ack travels the reverse direction and faces the same lossy link.
  const LinkKey back{data_link.second, data_link.first};
  sim::RngStream& rng = link_rng(back);
  if (fault_.drop_prob > 0 && rng.bernoulli(fault_.drop_prob)) {
    ++tstats_.frames_dropped;
    record(sim::TraceKind::kDrop, back, cumulative);
    return;
  }
  sim::Duration d = latency_->delay(back.first, back.second);
  if (d < 0) d = 0;
  if (fault_.jitter > 0) d += rng.uniform_int(0, fault_.jitter);
  sim_.schedule_in(d, [this, data_link, cumulative]() {
    LinkTx& tx = tx_[data_link];
    auto it = tx.pending.begin();
    while (it != tx.pending.end() && it->first <= cumulative) {
      if (it->second.timer != sim::kInvalidEventId) {
        sim_.cancel(it->second.timer);
      }
      it = tx.pending.erase(it);
    }
  });
}

// -- pause / resume ------------------------------------------------------

void Network::pause(cell::CellId c) {
  if (!paused_.insert(c).second) return;
  if (recorder_) {
    sim::TraceEvent e;
    e.kind = sim::TraceKind::kPause;
    e.t = sim_.now();
    e.cell = static_cast<std::int32_t>(c);
    recorder_->emit(e);
  }
}

void Network::resume(cell::CellId c) {
  if (paused_.erase(c) == 0) return;
  if (recorder_) {
    sim::TraceEvent e;
    e.kind = sim::TraceKind::kResume;
    e.t = sim_.now();
    e.cell = static_cast<std::int32_t>(c);
    recorder_->emit(e);
  }
  auto it = held_.find(c);
  if (it == held_.end()) return;
  std::vector<Message> backlog = std::move(it->second);
  held_.erase(it);
  for (const Message& m : backlog) {
    if (deliver_) deliver_(m);
  }
}

void Network::deliver_to_node(const Message& msg) {
  if (!paused_.empty() && paused_.count(msg.to) != 0) {
    held_[msg.to].push_back(msg);
    return;
  }
  if (deliver_) deliver_(msg);
}

}  // namespace dca::net
