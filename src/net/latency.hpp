// One-way message latency models.
//
// The paper's analysis is parameterized by T, the maximum time to
// communicate with another node in the interference region; 2T is the
// round-trip used by the mode predictor. The latency model supplies a
// per-message delay and reports its bound T.
//
// Models:
//  * FixedLatency    — every message takes exactly T (the paper's setting).
//  * JitterLatency   — uniform in [lo, hi]; hi is reported as T.
//  * MatrixLatency   — a default delay plus per-(src,dst) overrides. Used
//    by the Fig. 11 reproduction, where message overtaking between paths
//    must be engineered deterministically.
//
// All models preserve per-link FIFO when their delay is deterministic per
// link; JitterLatency can reorder messages on a link, which the protocols
// must (and do) tolerate.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <utility>

#include "cell/grid.hpp"
#include "net/link_table.hpp"
#include "sim/random.hpp"
#include "sim/types.hpp"

namespace dca::net {

class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  /// Delay for one message from `from` to `to`.
  virtual sim::Duration delay(cell::CellId from, cell::CellId to) = 0;

  /// Invoked once by the network when a LinkTable exists, letting a model
  /// flatten per-pair state onto LinkIds (MatrixLatency does). Default:
  /// nothing to flatten.
  virtual void bind_links(const LinkTable& links) { (void)links; }

  /// Delay for one message on a known link. `lid` may be kNoLink (no grid)
  /// or beyond the bound table (dynamically registered pair); models that
  /// flatten must fall back to delay(from, to) there. Default forwards to
  /// delay() so existing models keep exact draw-for-draw behavior.
  virtual sim::Duration link_delay(LinkId lid, cell::CellId from,
                                   cell::CellId to) {
    (void)lid;
    return delay(from, to);
  }

  /// Upper bound T on one-way latency (the paper's T).
  [[nodiscard]] virtual sim::Duration max_one_way() const = 0;

  /// Lower bound on one-way latency — the latency *floor*. The sharded
  /// engine uses this as its conservative lookahead: no message can cross
  /// shards in less simulated time. Defaults to the upper bound, which is
  /// always a valid (if pessimistic) floor for deterministic models.
  [[nodiscard]] virtual sim::Duration min_one_way() const {
    return max_one_way();
  }

  /// Lower bound on the delay of one specific directed link. The sharded
  /// engine's conservative lookahead is the minimum floor over the links
  /// that actually cross shards, which can beat the global min_one_way()
  /// when only fast links stay shard-internal. Must be callable before
  /// bind_links(). Defaults to the global floor.
  [[nodiscard]] virtual sim::Duration link_floor(LinkId lid,
                                                 cell::CellId from,
                                                 cell::CellId to) const {
    (void)lid;
    (void)from;
    (void)to;
    return min_one_way();
  }
};

class FixedLatency final : public LatencyModel {
 public:
  explicit FixedLatency(sim::Duration t) : t_(t) {}
  sim::Duration delay(cell::CellId, cell::CellId) override { return t_; }
  sim::Duration link_delay(LinkId, cell::CellId, cell::CellId) override {
    return t_;  // skip the second virtual hop on the hot path
  }
  [[nodiscard]] sim::Duration max_one_way() const override { return t_; }
  [[nodiscard]] sim::Duration min_one_way() const override { return t_; }
  [[nodiscard]] sim::Duration link_floor(LinkId, cell::CellId,
                                         cell::CellId) const override {
    return t_;
  }

 private:
  sim::Duration t_;
};

class JitterLatency final : public LatencyModel {
 public:
  JitterLatency(sim::Duration lo, sim::Duration hi, sim::RngStream rng)
      : lo_(lo), hi_(std::max(lo, hi)), rng_(std::move(rng)) {}

  sim::Duration delay(cell::CellId, cell::CellId) override {
    return rng_.uniform_int(lo_, hi_);
  }
  sim::Duration link_delay(LinkId, cell::CellId, cell::CellId) override {
    return rng_.uniform_int(lo_, hi_);  // same draw sequence as delay()
  }
  [[nodiscard]] sim::Duration max_one_way() const override { return hi_; }
  [[nodiscard]] sim::Duration min_one_way() const override { return lo_; }
  [[nodiscard]] sim::Duration link_floor(LinkId, cell::CellId,
                                         cell::CellId) const override {
    return lo_;
  }

 private:
  sim::Duration lo_;
  sim::Duration hi_;
  sim::RngStream rng_;
};

/// Uniform jitter in [lo, hi] drawn from an independent RNG stream per
/// directed link, derived purely from (seed, from, to). Unlike
/// JitterLatency's single shared stream, the draw a message sees depends
/// only on its link and its position in that link's send sequence — which
/// is identical in the classic and sharded engines (per-link send order is
/// canonical), so both engines see the same delays message-for-message.
class LinkJitterLatency final : public LatencyModel {
 public:
  LinkJitterLatency(sim::Duration lo, sim::Duration hi, std::uint64_t seed)
      : lo_(lo), hi_(std::max(lo, hi)), seed_(seed) {}

  sim::Duration delay(cell::CellId from, cell::CellId to) override {
    return stream(kNoLink, from, to).uniform_int(lo_, hi_);
  }

  /// Flattens stream storage onto LinkIds so the per-message lookup is an
  /// array load; pairs outside the table fall back to a map.
  void bind_links(const LinkTable& links) override {
    flat_.clear();
    flat_.resize(static_cast<std::size_t>(links.n_links()));
  }

  sim::Duration link_delay(LinkId lid, cell::CellId from,
                           cell::CellId to) override {
    return stream(lid, from, to).uniform_int(lo_, hi_);
  }

  [[nodiscard]] sim::Duration max_one_way() const override { return hi_; }
  [[nodiscard]] sim::Duration min_one_way() const override { return lo_; }
  [[nodiscard]] sim::Duration link_floor(LinkId, cell::CellId,
                                         cell::CellId) const override {
    return lo_;
  }

 private:
  sim::RngStream& stream(LinkId lid, cell::CellId from, cell::CellId to) {
    if (lid >= 0 && static_cast<std::size_t>(lid) < flat_.size()) {
      auto& slot = flat_[static_cast<std::size_t>(lid)];
      if (slot == nullptr) {
        slot = std::make_unique<sim::RngStream>(make_stream(from, to));
      }
      return *slot;
    }
    auto it = extra_.find({from, to});
    if (it == extra_.end()) {
      it = extra_.emplace(std::make_pair(from, to), make_stream(from, to))
               .first;
    }
    return it->second;
  }

  [[nodiscard]] sim::RngStream make_stream(cell::CellId from,
                                           cell::CellId to) const {
    // Distinct tag from the per-link fault streams (0xFA017) so jitter and
    // fault draws never correlate.
    const std::uint64_t label =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from)) << 32) |
        static_cast<std::uint32_t>(to);
    return sim::RngStream::derive(seed_ ^ 0x9177e5ull, label);
  }

  sim::Duration lo_;
  sim::Duration hi_;
  std::uint64_t seed_;
  std::vector<std::unique_ptr<sim::RngStream>> flat_;  // by LinkId once bound
  std::map<std::pair<cell::CellId, cell::CellId>, sim::RngStream> extra_;
};

class MatrixLatency final : public LatencyModel {
 public:
  explicit MatrixLatency(sim::Duration default_delay) : default_(default_delay) {}

  /// Overrides the delay of the directed link from -> to.
  void set(cell::CellId from, cell::CellId to, sim::Duration d) {
    overrides_[{from, to}] = d;
    max_ = std::max(max_, d);
    min_ = std::min(min_, d);
    if (bound_ != nullptr) {
      const LinkId lid = bound_->id(from, to);
      if (lid != kNoLink) flat_[static_cast<std::size_t>(lid)] = d;
    }
  }

  sim::Duration delay(cell::CellId from, cell::CellId to) override {
    const auto it = overrides_.find({from, to});
    return it == overrides_.end() ? default_ : it->second;
  }

  /// Flattens the override map onto LinkIds so the per-message lookup is
  /// one array load instead of a tree walk.
  void bind_links(const LinkTable& links) override {
    bound_ = &links;
    flat_.assign(static_cast<std::size_t>(links.n_links()), default_);
    for (const auto& [key, d] : overrides_) {
      const LinkId lid = links.id(key.first, key.second);
      if (lid != kNoLink) flat_[static_cast<std::size_t>(lid)] = d;
    }
  }

  sim::Duration link_delay(LinkId lid, cell::CellId from,
                           cell::CellId to) override {
    if (lid >= 0 && static_cast<std::size_t>(lid) < flat_.size()) {
      return flat_[static_cast<std::size_t>(lid)];
    }
    return delay(from, to);  // unbound / dynamically registered pair
  }

  [[nodiscard]] sim::Duration max_one_way() const override {
    return std::max(default_, max_);
  }
  [[nodiscard]] sim::Duration min_one_way() const override {
    return std::min(default_, min_);
  }
  [[nodiscard]] sim::Duration link_floor(LinkId, cell::CellId from,
                                         cell::CellId to) const override {
    const auto it = overrides_.find({from, to});
    return it == overrides_.end() ? default_ : it->second;
  }

 private:
  sim::Duration default_;
  sim::Duration max_ = 0;
  sim::Duration min_ = std::numeric_limits<sim::Duration>::max();
  std::map<std::pair<cell::CellId, cell::CellId>, sim::Duration> overrides_;
  const LinkTable* bound_ = nullptr;
  std::vector<sim::Duration> flat_;  // by LinkId once bound
};

}  // namespace dca::net
