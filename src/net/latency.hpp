// One-way message latency models.
//
// The paper's analysis is parameterized by T, the maximum time to
// communicate with another node in the interference region; 2T is the
// round-trip used by the mode predictor. The latency model supplies a
// per-message delay and reports its bound T.
//
// Models:
//  * FixedLatency    — every message takes exactly T (the paper's setting).
//  * JitterLatency   — uniform in [lo, hi]; hi is reported as T.
//  * MatrixLatency   — a default delay plus per-(src,dst) overrides. Used
//    by the Fig. 11 reproduction, where message overtaking between paths
//    must be engineered deterministically.
//
// All models preserve per-link FIFO when their delay is deterministic per
// link; JitterLatency can reorder messages on a link, which the protocols
// must (and do) tolerate.
#pragma once

#include <algorithm>
#include <limits>
#include <map>
#include <memory>
#include <utility>

#include "cell/grid.hpp"
#include "sim/random.hpp"
#include "sim/types.hpp"

namespace dca::net {

class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  /// Delay for one message from `from` to `to`.
  virtual sim::Duration delay(cell::CellId from, cell::CellId to) = 0;

  /// Upper bound T on one-way latency (the paper's T).
  [[nodiscard]] virtual sim::Duration max_one_way() const = 0;

  /// Lower bound on one-way latency — the latency *floor*. The sharded
  /// engine uses this as its conservative lookahead: no message can cross
  /// shards in less simulated time. Defaults to the upper bound, which is
  /// always a valid (if pessimistic) floor for deterministic models.
  [[nodiscard]] virtual sim::Duration min_one_way() const {
    return max_one_way();
  }
};

class FixedLatency final : public LatencyModel {
 public:
  explicit FixedLatency(sim::Duration t) : t_(t) {}
  sim::Duration delay(cell::CellId, cell::CellId) override { return t_; }
  [[nodiscard]] sim::Duration max_one_way() const override { return t_; }
  [[nodiscard]] sim::Duration min_one_way() const override { return t_; }

 private:
  sim::Duration t_;
};

class JitterLatency final : public LatencyModel {
 public:
  JitterLatency(sim::Duration lo, sim::Duration hi, sim::RngStream rng)
      : lo_(lo), hi_(std::max(lo, hi)), rng_(std::move(rng)) {}

  sim::Duration delay(cell::CellId, cell::CellId) override {
    return rng_.uniform_int(lo_, hi_);
  }
  [[nodiscard]] sim::Duration max_one_way() const override { return hi_; }
  [[nodiscard]] sim::Duration min_one_way() const override { return lo_; }

 private:
  sim::Duration lo_;
  sim::Duration hi_;
  sim::RngStream rng_;
};

class MatrixLatency final : public LatencyModel {
 public:
  explicit MatrixLatency(sim::Duration default_delay) : default_(default_delay) {}

  /// Overrides the delay of the directed link from -> to.
  void set(cell::CellId from, cell::CellId to, sim::Duration d) {
    overrides_[{from, to}] = d;
    max_ = std::max(max_, d);
    min_ = std::min(min_, d);
  }

  sim::Duration delay(cell::CellId from, cell::CellId to) override {
    const auto it = overrides_.find({from, to});
    return it == overrides_.end() ? default_ : it->second;
  }
  [[nodiscard]] sim::Duration max_one_way() const override {
    return std::max(default_, max_);
  }
  [[nodiscard]] sim::Duration min_one_way() const override {
    return std::min(default_, min_);
  }

 private:
  sim::Duration default_;
  sim::Duration max_ = 0;
  sim::Duration min_ = std::numeric_limits<sim::Duration>::max();
  std::map<std::pair<cell::CellId, cell::CellId>, sim::Duration> overrides_;
};

}  // namespace dca::net
