// The protocol wire format: one tagged message struct covering the five
// message types of the paper (Section 3.2) plus the fields the baseline
// schemes need. Keeping a single concrete struct (rather than a class
// hierarchy) keeps the network layer trivially copyable and the traces
// easy to read.
#pragma once

#include <cstdint>
#include <string_view>

#include "cell/grid.hpp"
#include "cell/spectrum.hpp"
#include "net/timestamp.hpp"

namespace dca::net {

/// Top-level message tag (paper Section 3.2), plus the channel-transfer
/// vocabulary of the advanced search comparator (Prakash, Shivaratri &
/// Singhal, PODC'95 — the paper's reference [8], discussed in Section 6).
enum class MsgKind : std::uint8_t {
  kRequest,      // REQUEST(req_type, r, ts_j, j)
  kResponse,     // RESPONSE(res_type, j, ch | Use_j)
  kChangeMode,   // CHANGE_MODE(mode, j)
  kRelease,      // RELEASE(j, r)
  kAcquisition,  // ACQUISITION(acq_type, j, r)
  kTransfer,     // TRANSFER(op, r): allocated-set transfer negotiation
  kHandoff,      // HANDOFF(serial, ends): mobile moved to the destination
                 // cell mid-call; `serial` encodes (call, hop) and
                 // `ts.count` carries the call's absolute end instant.
                 // Handled by the runner, never by allocator nodes.
  kResyncReq,    // RESYNC_REQ(j): j restarted cold and asks for state
  kResyncReply,  // RESYNC_REPLY(j, Use_j, ...): per-scheme state snapshot
};

/// kTransfer sub-operation (the paper's TRANSFER / AGREE / KEEP / RELEASE
/// plus an explicit refusal).
enum class TransferOp : std::uint8_t {
  kRequest = 0,  // c -> owner: may I have allocated-but-idle channel r?
  kAgree = 1,    // owner -> c: r is reserved for you, confirm or abort
  kDeny = 2,     // owner -> c: no (busy, already offered, or not mine)
  kKeep = 3,     // c -> owner: confirmed, I take r
  kAbort = 4,    // c -> owner: aborted, unlock r (the paper's RELEASE leg)
};

/// REQUEST.req_type: the nature of the request.
enum class ReqType : std::uint8_t { kUpdate = 0, kSearch = 1 };

/// RESPONSE.res_type: the nature of the response.
enum class ResType : std::uint8_t {
  kReject = 0,       // deny channel `channel`
  kGrant = 1,        // grant channel `channel`
  kSearchReply = 2,  // payload `use` = responder's Use set (search reply)
  kStatus = 3,       // payload `use` = responder's Use set (mode-change reply)
  // Extension used only by the advanced-update baseline (Dong & Lai TR-48):
  // "you have priority, but the channel is provisionally promised to a
  // younger request" — see Fig. 11 discussion in the paper's Section 6.
  kConditionalGrant = 4,
};

/// ACQUISITION.acq_type: how the announced channel was obtained.
enum class AcqType : std::uint8_t { kNonSearch = 0, kSearch = 1 };

struct Message {
  MsgKind kind = MsgKind::kRequest;
  cell::CellId from = cell::kNoCell;
  cell::CellId to = cell::kNoCell;

  /// Serial of the channel-acquisition attempt this message is billed to
  /// (set by the original requester, echoed by responders); 0 = not
  /// attributable to a specific acquisition (e.g. end-of-call RELEASE).
  std::uint64_t serial = 0;

  ReqType req_type = ReqType::kUpdate;
  ResType res_type = ResType::kReject;
  AcqType acq_type = AcqType::kNonSearch;

  /// Channel operand: requested / granted / rejected / released / acquired.
  /// kNoChannel for search requests and failed-search acquisitions.
  cell::ChannelId channel = cell::kNoChannel;

  /// Requester's Lamport timestamp (REQUEST only).
  Timestamp ts;

  /// CHANGE_MODE operand: 0 = local, 1 = borrowing.
  std::int8_t mode = 0;

  /// Mode-change wave tag: CHANGE_MODE(1) messages and their kStatus
  /// replies carry the sender's wave counter so a requester collecting
  /// statuses can ignore replies to a stale wave.
  std::uint64_t wave = 0;

  /// Use-set payload for RESPONSE kSearchReply / kStatus.
  cell::ChannelSet use;

  /// Allocated-set payload (advanced search replies carry allocated AND
  /// busy sets; `use` holds the busy subset).
  cell::ChannelSet alloc;

  /// Transfer negotiation operation (kTransfer only).
  TransferOp transfer_op = TransferOp::kRequest;

  [[nodiscard]] constexpr std::string_view kind_name() const {
    switch (kind) {
      case MsgKind::kRequest: return "REQUEST";
      case MsgKind::kResponse: return "RESPONSE";
      case MsgKind::kChangeMode: return "CHANGE_MODE";
      case MsgKind::kRelease: return "RELEASE";
      case MsgKind::kAcquisition: return "ACQUISITION";
      case MsgKind::kTransfer: return "TRANSFER";
      case MsgKind::kHandoff: return "HANDOFF";
      case MsgKind::kResyncReq: return "RESYNC_REQ";
      case MsgKind::kResyncReply: return "RESYNC_REPLY";
    }
    return "?";
  }
};

/// Number of distinct MsgKind values (for counter arrays).
inline constexpr int kNumMsgKinds = 9;

}  // namespace dca::net
