// Dense link identifiers and near-contiguous sequence buffers for the
// transport hot path.
//
// Every message the protocol layer sends travels a directed (from, to)
// pair inside an interference neighbourhood: nodes talk only to IN(c)
// (send_to_interference) or reply to a message's sender, and interference
// is symmetric, so the full universe of grid links is known the moment the
// grid is. LinkTable enumerates that universe once — LinkId L(c -> d) for
// every d in IN(c), assigned in (from ascending, to ascending) order so
// ids are a pure function of the grid — and answers id(from, to) with two
// array loads and a bounded scan of one interference row. All per-link
// transport state (FIFO clocks, reliable-transport tx/rx, fault RNG
// streams, latency overrides) then lives in flat vectors indexed by
// LinkId instead of std::map/std::unordered_map keyed by the pair.
//
// SeqRing replaces the std::map<uint64_t, T> retransmit / reorder buffers.
// Sequence numbers on a link are near-contiguous (the tx window is a dense
// prefix [lowest_unacked, next_seq); the rx reorder buffer holds a handful
// of out-of-order frames near next_expected), so a power-of-two ring
// indexed by seq & mask with the owning seq stored in the slot gives O(1)
// insert/find/erase with no tree walk and no per-frame allocation once
// warm. Iteration order never escapes to simulation results — every
// traversal the transport does is by explicit ascending seq.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

#include "cell/grid.hpp"

namespace dca::net {

/// Dense id of a directed interference link. Valid ids are
/// 0..n_links()-1; kNoLink means "not an interference pair".
using LinkId = std::int32_t;
inline constexpr LinkId kNoLink = -1;

/// Immutable directed-link enumeration for one grid. Read-only after
/// construction, so one instance is safely shared across shard threads.
class LinkTable {
 public:
  LinkTable() = default;

  explicit LinkTable(const cell::HexGrid& grid) {
    const auto n = static_cast<std::size_t>(grid.n_cells());
    rows_.resize(n);
    LinkId next = 0;
    for (std::size_t c = 0; c < n; ++c) {
      const auto in = grid.interference(static_cast<cell::CellId>(c));
      Row& row = rows_[c];
      row.base = next;
      row.lo = in.empty() ? 0 : in.front();
      row.hi = in.empty() ? -1 : in.back();
      row.offset = static_cast<std::int32_t>(slots_.size());
      // Per-source lookup strip over [lo, hi]: dense ids for interference
      // partners, kNoLink holes elsewhere. Interference rows are compact
      // (radius-bounded), so the strips stay small.
      const auto width = static_cast<std::size_t>(row.hi - row.lo + 1);
      slots_.resize(slots_.size() + width, kNoLink);
      for (const cell::CellId d : in) {
        slots_[static_cast<std::size_t>(row.offset + (d - row.lo))] = next;
        ends_.push_back({static_cast<cell::CellId>(c), d});
        ++next;
      }
    }
    n_links_ = next;
  }

  /// Number of enumerated directed links (0 for a default-constructed table).
  [[nodiscard]] LinkId n_links() const noexcept { return n_links_; }

  [[nodiscard]] bool empty() const noexcept { return n_links_ == 0; }

  /// LinkId of from -> to, or kNoLink when the pair is not an interference
  /// link of the grid (or no grid was supplied). O(1): row lookup + strip
  /// index.
  [[nodiscard]] LinkId id(cell::CellId from, cell::CellId to) const noexcept {
    if (static_cast<std::size_t>(from) >= rows_.size()) return kNoLink;
    const Row& row = rows_[static_cast<std::size_t>(from)];
    if (to < row.lo || to > row.hi) return kNoLink;
    return slots_[static_cast<std::size_t>(row.offset + (to - row.lo))];
  }

  /// As id(), but aborts on a non-interference pair. The sharded engine
  /// uses this: every protocol send is within an interference
  /// neighbourhood, so a miss is a logic bug, not a runtime condition.
  [[nodiscard]] LinkId require(cell::CellId from, cell::CellId to) const noexcept {
    const LinkId lid = id(from, to);
    if (lid == kNoLink) {
      std::fprintf(stderr,
                   "LinkTable: no interference link %d -> %d (protocol sends "
                   "must stay within the interference neighbourhood)\n",
                   from, to);
      std::abort();
    }
    return lid;
  }

  /// Endpoints of a link, inverse of id().
  [[nodiscard]] std::pair<cell::CellId, cell::CellId> endpoints(LinkId lid) const {
    return ends_[static_cast<std::size_t>(lid)];
  }

 private:
  struct Row {
    cell::CellId lo = 0;         // smallest interference partner id
    cell::CellId hi = -1;        // largest interference partner id
    std::int32_t offset = 0;     // start of this row's strip in slots_
    LinkId base = 0;             // first LinkId of this source (unused holes aside)
  };

  std::vector<Row> rows_;                                  // by source cell
  std::vector<LinkId> slots_;                              // row strips, kNoLink holes
  std::vector<std::pair<cell::CellId, cell::CellId>> ends_;  // by LinkId
  LinkId n_links_ = 0;
};

/// Sparse ring buffer keyed by 64-bit sequence number, for per-link
/// retransmit windows and reorder buffers. Capacity is a power of two;
/// entry seq s lives at slot s & mask with s stored alongside (seq 0 is
/// the empty sentinel — transport sequence numbers start at 1). When two
/// live seqs would collide (window wider than the ring) the ring doubles
/// and re-places its survivors, so correctness never depends on the
/// initial size.
template <typename T>
class SeqRing {
 public:
  SeqRing() = default;

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Pointer to the entry for seq, or nullptr when absent.
  [[nodiscard]] T* find(std::uint64_t seq) noexcept {
    if (slots_.empty()) return nullptr;
    Slot& s = slots_[static_cast<std::size_t>(seq) & mask_];
    return s.seq == seq ? &s.value : nullptr;
  }

  [[nodiscard]] bool contains(std::uint64_t seq) const noexcept {
    if (slots_.empty()) return false;
    return slots_[static_cast<std::size_t>(seq) & mask_].seq == seq;
  }

  /// Inserts a default slot for seq (growing past collisions) and returns
  /// its value. seq must not already be present.
  T& insert(std::uint64_t seq) {
    if (slots_.empty()) reserve_pow2(kInitialCapacity);
    while (slots_[static_cast<std::size_t>(seq) & mask_].seq != 0) {
      grow();
    }
    Slot& s = slots_[static_cast<std::size_t>(seq) & mask_];
    s.seq = seq;
    ++size_;
    return s.value;
  }

  /// Removes seq if present; returns whether it was.
  bool erase(std::uint64_t seq) noexcept {
    if (slots_.empty()) return false;
    Slot& s = slots_[static_cast<std::size_t>(seq) & mask_];
    if (s.seq != seq) return false;
    s.seq = 0;
    s.value = T{};
    --size_;
    return true;
  }

 private:
  static constexpr std::size_t kInitialCapacity = 16;

  struct Slot {
    std::uint64_t seq = 0;  // 0 = empty
    T value{};
  };

  void reserve_pow2(std::size_t cap) {
    slots_.assign(cap, Slot{});
    mask_ = cap - 1;
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    reserve_pow2((mask_ + 1) * 2);
    for (Slot& s : old) {
      if (s.seq != 0) {
        // Doubling can still collide if live seqs share low bits; keep
        // doubling until every survivor has a home.
        while (slots_[static_cast<std::size_t>(s.seq) & mask_].seq != 0) {
          std::vector<Slot> again = std::move(slots_);
          reserve_pow2((mask_ + 1) * 2);
          for (Slot& r : again) {
            if (r.seq != 0) slots_[static_cast<std::size_t>(r.seq) & mask_] = std::move(r);
          }
        }
        slots_[static_cast<std::size_t>(s.seq) & mask_] = std::move(s);
      }
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace dca::net
