// Lamport logical timestamps.
//
// Every channel-allocation scheme in the paper arbitrates concurrent
// requests by totally ordered timestamps. We use the classic Lamport
// construction: a per-node counter advanced on local events and on message
// receipt, with the node id breaking ties. ts_a < ts_b therefore never
// holds simultaneously with ts_b < ts_a, and the order is total.
#pragma once

#include <cstdint>
#include <string>

#include "cell/grid.hpp"

namespace dca::net {

struct Timestamp {
  std::uint64_t count = 0;
  cell::CellId node = cell::kNoCell;

  friend constexpr bool operator==(const Timestamp&, const Timestamp&) = default;

  friend constexpr bool operator<(const Timestamp& a, const Timestamp& b) noexcept {
    if (a.count != b.count) return a.count < b.count;
    return a.node < b.node;
  }
  friend constexpr bool operator>(const Timestamp& a, const Timestamp& b) noexcept {
    return b < a;
  }

  [[nodiscard]] std::string to_string() const {
    return std::to_string(count) + "." + std::to_string(node);
  }
};

/// Per-node Lamport clock.
class LamportClock {
 public:
  explicit LamportClock(cell::CellId node) : node_(node) {}

  /// Advances for a local event and returns the new timestamp.
  Timestamp tick() noexcept { return Timestamp{++count_, node_}; }

  /// Merges a timestamp observed on an incoming message.
  void witness(const Timestamp& ts) noexcept {
    if (ts.count > count_) count_ = ts.count;
  }

  [[nodiscard]] Timestamp peek() const noexcept { return Timestamp{count_, node_}; }

 private:
  std::uint64_t count_ = 0;
  cell::CellId node_;
};

}  // namespace dca::net
