// Cell -> shard partitions for the sharded simulation engine.
//
// The sharded kernel is partition-agnostic: results are bit-identical for
// any cell -> shard map (the canonical event order never mentions shards).
// What the map changes is *traffic*: every protocol message between cells
// in different shards crosses a shard boundary and pays outbox/merge cost.
// Since all protocol traffic is confined to interference neighbourhoods —
// a cell talks only to cells within a few hops — a partition that keeps
// hex-adjacent cells together makes most messages shard-local.
//
//   striped (legacy)            blocks (rows x cols = 6 x 8, 4 shards)
//   0 1 2 3 0 1 2 3             0 0 0 0 1 1 1 1
//    0 1 2 3 0 1 2 3             0 0 0 0 1 1 1 1
//   0 1 2 3 0 1 2 3             0 0 0 0 1 1 1 1
//    0 1 2 3 0 1 2 3             2 2 2 2 3 3 3 3
//   0 1 2 3 0 1 2 3             2 2 2 2 3 3 3 3
//    0 1 2 3 0 1 2 3             2 2 2 2 3 3 3 3
//
// Striping puts every neighbour pair in different shards; contiguous blocks
// confine cross-shard pairs to the band boundaries.
#pragma once

#include <vector>

#include "cell/grid.hpp"

namespace dca::cell {

/// How cells map onto shards.
enum class Partition : std::uint8_t {
  kStriped,  // cell % n_shards (legacy): maximally interleaved
  kBlocks,   // contiguous hex blocks: interference-local
};

/// The legacy striped map: cell c -> c % n_shards.
[[nodiscard]] std::vector<int> striped_partition(int n_cells, int n_shards);

/// Geometry-aware map: splits the grid into a pr x pc array of contiguous
/// rectangular hex blocks (pr * pc == n_shards), choosing the factorization
/// that minimizes total boundary length. Falls back to contiguous row-major
/// runs of cells when n_shards has no factorization fitting the grid.
/// Deterministic: a pure function of (rows, cols, n_shards). Every cell is
/// assigned exactly one shard in [0, n_shards).
[[nodiscard]] std::vector<int> block_partition(const HexGrid& grid, int n_shards);

/// Builds the requested partition for `grid`.
[[nodiscard]] std::vector<int> make_partition(const HexGrid& grid, int n_shards,
                                              Partition kind);

/// Number of unordered interference pairs {a, b} (b ∈ IN(a)) whose cells
/// land in different shards — a static proxy for cross-shard message
/// volume, used by tests and benchmarks to compare partitions.
[[nodiscard]] std::size_t cross_shard_interference_pairs(
    const HexGrid& grid, const std::vector<int>& partition);

}  // namespace dca::cell
