// Static channel-reuse plans: the assignment of primary channel sets PR_i
// to cells.
//
// A reuse plan is a proper colouring of the interference graph (no two
// cells within the interference radius share a colour) together with a
// partition of the spectrum into one channel class per colour. Cell i's
// primary set PR_i is the class of its colour; the *primary cells* of a
// channel r are all cells coloured with r's class — the notion the
// advanced-update scheme's NP(c, r) is built from.
//
// Two constructions are provided:
//  * cluster(): the classical regular pattern for cluster sizes 3 and 7
//    (the (i,j) = (1,1) and (2,1) shift patterns). Cluster 7 gives
//    co-channel hop distance 3, sufficient for interference radius 2 —
//    the configuration used throughout the paper's setting.
//  * greedy(): a greedy colouring of the interference graph for arbitrary
//    grids/radii, useful when no regular pattern applies.
#pragma once

#include <vector>

#include "cell/grid.hpp"
#include "cell/spectrum.hpp"

namespace dca::cell {

class ReusePlan {
 public:
  /// Regular pattern for cluster_size in {3, 7}. Requires that the pattern
  /// is valid for the grid's interference radius (cluster 3 supports
  /// radius 1, cluster 7 supports radius 2); asserts otherwise.
  static ReusePlan cluster(const HexGrid& grid, int n_channels, int cluster_size);

  /// Greedy colouring in id order; works for any radius. The number of
  /// colour classes is whatever the greedy needs (reported by n_colors()).
  static ReusePlan greedy(const HexGrid& grid, int n_channels);

  [[nodiscard]] int n_channels() const noexcept { return n_channels_; }
  [[nodiscard]] int n_colors() const noexcept { return n_colors_; }

  /// Colour class of a cell.
  [[nodiscard]] int color_of(CellId c) const {
    return color_[static_cast<std::size_t>(c)];
  }

  /// Colour class that owns a channel.
  [[nodiscard]] int color_of_channel(ChannelId ch) const noexcept {
    return static_cast<int>(ch) % n_colors_;
  }

  /// Primary channel set PR_i.
  [[nodiscard]] const ChannelSet& primary(CellId c) const {
    return primary_[static_cast<std::size_t>(c)];
  }

  /// True iff channel ch is primary for cell c.
  [[nodiscard]] bool is_primary(CellId c, ChannelId ch) const {
    return color_of(c) == color_of_channel(ch);
  }

  /// All cells for which ch is a primary channel, ascending by id.
  [[nodiscard]] const std::vector<CellId>& primary_cells_of(ChannelId ch) const {
    return cells_of_color_[static_cast<std::size_t>(color_of_channel(ch))];
  }

  /// NP(c, r): the primary cells of channel r inside IN_c (the advanced
  /// update scheme's request targets). Does not include c itself even if c
  /// is primary for r.
  [[nodiscard]] std::vector<CellId> primaries_in_interference(const HexGrid& grid,
                                                              CellId c,
                                                              ChannelId r) const;

  /// Verifies the colouring is proper for the grid (no interfering pair
  /// shares a colour) and the channel partition is exact. Returns true on
  /// success; used by tests and the runner's startup checks.
  [[nodiscard]] bool validate(const HexGrid& grid) const;

 private:
  ReusePlan(const HexGrid& grid, int n_channels, std::vector<int> colors, int n_colors);

  int n_channels_ = 0;
  int n_colors_ = 0;
  std::vector<int> color_;                        // by cell id
  std::vector<ChannelSet> primary_;               // by cell id
  std::vector<std::vector<CellId>> cells_of_color_;  // by colour
};

}  // namespace dca::cell
