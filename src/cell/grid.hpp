// A rectangular field of hexagonal cells and its interference structure,
// with bounded or toroidal (wraparound) topology.
//
// Cells are laid out in "odd-r" offset rows (each odd row is shifted half a
// cell to the right), which yields the rectangular array of hexagons shown
// in the paper's Fig. 1. Cell ids are dense integers row*cols + col, which
// every other module uses as the MSS/node id.
//
// The *interference region* IN_i of cell i is the set of other cells whose
// concurrent use of a channel would interfere with cell i: all cells within
// hex distance <= interference_radius. The classic minimum-reuse-distance
// D corresponds to interference_radius = D - 1 in hop terms (two cells at
// hop distance >= D may share a channel).
//
// Topology:
//  * kBounded  — grid edges are real: boundary cells have smaller
//    neighbourhoods (the realistic deployment of Fig. 1);
//  * kToroidal — rows and columns wrap around, so EVERY cell has the full
//    interior neighbourhood. This is the boundary-free setting in which
//    measured per-call costs match the paper's closed forms (expressed in
//    the interior N) exactly. Toroidal grids require an even row count
//    (odd-r offset rows must re-align across the vertical seam); a valid
//    cluster-7 colouring additionally needs cols % 7 == 0 and
//    rows % 14 == 0 (e.g. 14x14).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cell/hex.hpp"

namespace dca::cell {

/// Dense id of a cell / its mobile service station. Valid ids are
/// 0..n_cells-1; kNoCell means "none".
using CellId = std::int32_t;
inline constexpr CellId kNoCell = -1;

enum class Wrap : std::uint8_t { kBounded, kToroidal };

class HexGrid {
 public:
  /// Builds a rows x cols grid and precomputes, for every cell, its direct
  /// neighbours and its interference region for the given radius (>= 1).
  HexGrid(int rows, int cols, int interference_radius, Wrap wrap = Wrap::kBounded);

  [[nodiscard]] int rows() const noexcept { return rows_; }
  [[nodiscard]] int cols() const noexcept { return cols_; }
  [[nodiscard]] int n_cells() const noexcept { return rows_ * cols_; }
  [[nodiscard]] int interference_radius() const noexcept { return radius_; }
  [[nodiscard]] Wrap wrap() const noexcept { return wrap_; }

  [[nodiscard]] bool valid(CellId c) const noexcept {
    return c >= 0 && c < n_cells();
  }

  /// Axial lattice coordinate of a cell (canonical, unwrapped).
  [[nodiscard]] Axial axial(CellId c) const { return axial_[static_cast<std::size_t>(c)]; }

  /// Cell at an axial coordinate; kNoCell if outside a bounded grid,
  /// wrapped onto the torus otherwise.
  [[nodiscard]] CellId cell_at(Axial a) const noexcept;

  /// Hex (hop) distance between two cells (shortest over the torus for
  /// toroidal grids).
  [[nodiscard]] int distance(CellId a, CellId b) const;

  /// The (up to six) directly adjacent cells, ascending by id.
  [[nodiscard]] std::span<const CellId> neighbors(CellId c) const {
    return neighbors_[static_cast<std::size_t>(c)];
  }

  /// Interference region IN_c: all other cells within the interference
  /// radius, ascending by id. Symmetric: a ∈ IN(b) iff b ∈ IN(a).
  [[nodiscard]] std::span<const CellId> interference(CellId c) const {
    return interference_[static_cast<std::size_t>(c)];
  }

  /// True iff a and b interfere (a != b and within the radius).
  [[nodiscard]] bool interferes(CellId a, CellId b) const {
    return a != b && distance(a, b) <= radius_;
  }

  /// Largest interference-region size over all cells (the paper's N).
  [[nodiscard]] int max_interference_degree() const noexcept { return max_degree_; }

  /// Mean interference-region size (equals the max on a torus).
  [[nodiscard]] double mean_interference_degree() const noexcept {
    return mean_degree_;
  }

 private:
  int rows_;
  int cols_;
  int radius_;
  Wrap wrap_;
  int max_degree_ = 0;
  double mean_degree_ = 0.0;
  std::vector<Axial> axial_;                      // by cell id
  std::vector<std::vector<CellId>> neighbors_;    // by cell id
  std::vector<std::vector<CellId>> interference_; // by cell id
};

}  // namespace dca::cell
