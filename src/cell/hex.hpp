// Hexagonal-lattice geometry in axial coordinates.
//
// The cellular architecture of the paper (Fig. 1) is an array of hexagonal
// cells; every interior cell has six neighbours. We use the standard axial
// coordinate system (q, r) with the implied cube coordinate s = -q - r.
// Hex (grid) distance between two cells is the minimum number of
// cell-to-cell hops, which for cube coordinates is
//   (|dq| + |dr| + |ds|) / 2.
#pragma once

#include <array>
#include <cstdint>
#include <cstdlib>
#include <functional>

namespace dca::cell {

/// A cell position on the infinite hexagonal lattice (axial coordinates).
struct Axial {
  std::int32_t q = 0;
  std::int32_t r = 0;

  friend constexpr bool operator==(const Axial&, const Axial&) = default;
};

/// The six axial direction vectors, in fixed counter-clockwise order
/// starting from "east".
inline constexpr std::array<Axial, 6> kHexDirections{{
    {+1, 0}, {+1, -1}, {0, -1}, {-1, 0}, {-1, +1}, {0, +1},
}};

/// Component-wise sum.
constexpr Axial operator+(Axial a, Axial b) noexcept {
  return Axial{a.q + b.q, a.r + b.r};
}

/// Component-wise difference.
constexpr Axial operator-(Axial a, Axial b) noexcept {
  return Axial{a.q - b.q, a.r - b.r};
}

/// Hex (hop) distance between two lattice cells.
constexpr std::int32_t hex_distance(Axial a, Axial b) noexcept {
  const std::int32_t dq = a.q - b.q;
  const std::int32_t dr = a.r - b.r;
  const std::int32_t ds = -dq - dr;
  const std::int32_t aq = dq < 0 ? -dq : dq;
  const std::int32_t ar = dr < 0 ? -dr : dr;
  const std::int32_t as = ds < 0 ? -ds : ds;
  return (aq + ar + as) / 2;
}

/// Rotates an axial vector by +60 degrees about the origin.
constexpr Axial rotate60(Axial a) noexcept { return Axial{-a.r, a.q + a.r}; }

/// Euclidean center of a pointy-top hex of unit circumradius, for rendering
/// and for checking the minimum-reuse-distance geometry.
struct Point2D {
  double x = 0.0;
  double y = 0.0;
};
inline Point2D hex_center(Axial a) noexcept {
  // Pointy-top layout: x = sqrt(3)*(q + r/2), y = 3/2 * r.
  constexpr double kSqrt3 = 1.7320508075688772;
  return Point2D{kSqrt3 * (static_cast<double>(a.q) + static_cast<double>(a.r) / 2.0),
                 1.5 * static_cast<double>(a.r)};
}

struct AxialHash {
  std::size_t operator()(const Axial& a) const noexcept {
    const auto uq = static_cast<std::uint64_t>(static_cast<std::uint32_t>(a.q));
    const auto ur = static_cast<std::uint64_t>(static_cast<std::uint32_t>(a.r));
    std::uint64_t x = (uq << 32) | ur;
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDull;
    x ^= x >> 33;
    return static_cast<std::size_t>(x);
  }
};

}  // namespace dca::cell
