#include "cell/reuse.hpp"

#include <algorithm>
#include <cassert>
#include <cstddef>

namespace dca::cell {

namespace {

// Colour formulas for the regular shift patterns. Both are linear forms
// a*q + b*r (mod k) chosen so that the co-channel sublattice maps to 0:
//  * k=3, shift (1,1):  colour = (q + 2r) mod 3, co-channel hop distance 2.
//  * k=7, shift (2,1):  colour = (q + 5r) mod 7, co-channel hop distance 3.
int regular_color(Axial a, int cluster) {
  const auto mod = [](std::int64_t v, int m) {
    return static_cast<int>(((v % m) + m) % m);
  };
  switch (cluster) {
    case 3:
      return mod(static_cast<std::int64_t>(a.q) + 2ll * a.r, 3);
    case 7:
      return mod(static_cast<std::int64_t>(a.q) + 5ll * a.r, 7);
    default:
      assert(false && "cluster size must be 3 or 7 for the regular pattern");
      return 0;
  }
}

// Hop distance between nearest co-channel cells of the regular pattern.
int regular_reuse_hop_distance(int cluster) { return cluster == 3 ? 2 : 3; }

}  // namespace

ReusePlan::ReusePlan(const HexGrid& grid, int n_channels, std::vector<int> colors,
                     int n_colors)
    : n_channels_(n_channels), n_colors_(n_colors), color_(std::move(colors)) {
  assert(n_channels_ > 0 && n_channels_ <= kMaxChannels);
  assert(n_colors_ > 0);
  primary_.resize(static_cast<std::size_t>(grid.n_cells()), ChannelSet(n_channels_));
  cells_of_color_.resize(static_cast<std::size_t>(n_colors_));
  for (CellId c = 0; c < grid.n_cells(); ++c) {
    const int col = color_[static_cast<std::size_t>(c)];
    cells_of_color_[static_cast<std::size_t>(col)].push_back(c);
    for (ChannelId ch = col; ch < n_channels_; ch += n_colors_)
      primary_[static_cast<std::size_t>(c)].insert(ch);
  }
}

ReusePlan ReusePlan::cluster(const HexGrid& grid, int n_channels, int cluster_size) {
  assert(cluster_size == 3 || cluster_size == 7);
  // The pattern is valid iff nearest co-colour cells are farther apart than
  // the interference radius.
  assert(regular_reuse_hop_distance(cluster_size) > grid.interference_radius());
  std::vector<int> colors(static_cast<std::size_t>(grid.n_cells()));
  for (CellId c = 0; c < grid.n_cells(); ++c)
    colors[static_cast<std::size_t>(c)] = regular_color(grid.axial(c), cluster_size);
  return ReusePlan(grid, n_channels, std::move(colors), cluster_size);
}

ReusePlan ReusePlan::greedy(const HexGrid& grid, int n_channels) {
  std::vector<int> colors(static_cast<std::size_t>(grid.n_cells()), -1);
  int n_colors = 0;
  for (CellId c = 0; c < grid.n_cells(); ++c) {
    // Smallest colour not used by an already-coloured interfering cell.
    std::vector<bool> used(static_cast<std::size_t>(n_colors + 1), false);
    for (const CellId j : grid.interference(c)) {
      const int cj = colors[static_cast<std::size_t>(j)];
      if (cj >= 0 && cj < static_cast<int>(used.size()))
        used[static_cast<std::size_t>(cj)] = true;
    }
    int pick = 0;
    while (pick < static_cast<int>(used.size()) && used[static_cast<std::size_t>(pick)])
      ++pick;
    colors[static_cast<std::size_t>(c)] = pick;
    n_colors = std::max(n_colors, pick + 1);
  }
  return ReusePlan(grid, n_channels, std::move(colors), n_colors);
}

std::vector<CellId> ReusePlan::primaries_in_interference(const HexGrid& grid, CellId c,
                                                         ChannelId r) const {
  std::vector<CellId> out;
  const int col = color_of_channel(r);
  for (const CellId j : grid.interference(c)) {
    if (color_of(j) == col) out.push_back(j);
  }
  return out;
}

bool ReusePlan::validate(const HexGrid& grid) const {
  if (static_cast<int>(color_.size()) != grid.n_cells()) return false;
  for (CellId a = 0; a < grid.n_cells(); ++a) {
    if (color_of(a) < 0 || color_of(a) >= n_colors_) return false;
    for (const CellId b : grid.interference(a)) {
      if (color_of(a) == color_of(b)) return false;
    }
  }
  // Channel partition: every channel primary in exactly one colour class,
  // and PR sets of same-colour cells coincide.
  ChannelSet seen(n_channels_);
  for (int col = 0; col < n_colors_; ++col) {
    ChannelSet cls(n_channels_);
    for (ChannelId ch = col; ch < n_channels_; ch += n_colors_) cls.insert(ch);
    if (cls.intersects(seen)) return false;
    seen |= cls;
    for (const CellId c : cells_of_color_[static_cast<std::size_t>(col)]) {
      if (!(primary(c) == cls)) return false;
    }
  }
  return seen == ChannelSet::all(n_channels_);
}

}  // namespace dca::cell
