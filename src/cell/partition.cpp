#include "cell/partition.hpp"

#include <cstdio>
#include <cstdlib>

namespace dca::cell {

std::vector<int> striped_partition(int n_cells, int n_shards) {
  std::vector<int> map(static_cast<std::size_t>(n_cells));
  for (int c = 0; c < n_cells; ++c) {
    map[static_cast<std::size_t>(c)] = c % n_shards;
  }
  return map;
}

std::vector<int> block_partition(const HexGrid& grid, int n_shards) {
  const int rows = grid.rows();
  const int cols = grid.cols();
  const int n_cells = grid.n_cells();
  if (n_shards < 1 || n_cells < n_shards) {
    std::fprintf(stderr, "block_partition: invalid shard count %d for %d cells\n",
                 n_shards, n_cells);
    std::abort();
  }

  // Pick the pr x pc factorization (pr row bands x pc column bands) that
  // minimizes total internal boundary length: cutting the grid into pr row
  // bands exposes (pr - 1) * cols boundary edges, pc column bands
  // (pc - 1) * rows. Fewer boundary edges = fewer interference pairs split
  // across shards. Ties resolve to the first (smallest pr) factorization,
  // keeping the map deterministic.
  int best_pr = 0;
  int best_pc = 0;
  long long best_cut = -1;
  for (int pr = 1; pr <= n_shards; ++pr) {
    if (n_shards % pr != 0) continue;
    const int pc = n_shards / pr;
    if (pr > rows || pc > cols) continue;
    const long long cut = static_cast<long long>(pr - 1) * cols +
                          static_cast<long long>(pc - 1) * rows;
    if (best_cut < 0 || cut < best_cut) {
      best_cut = cut;
      best_pr = pr;
      best_pc = pc;
    }
  }

  std::vector<int> map(static_cast<std::size_t>(n_cells));
  if (best_cut < 0) {
    // No factorization fits (e.g. 7 shards on a 6-row grid with cols < 7):
    // fall back to contiguous row-major runs of ~n_cells/n_shards cells.
    // Still contiguous — a run spans whole rows plus a partial row — so
    // locality is preserved for most pairs.
    for (int c = 0; c < n_cells; ++c) {
      map[static_cast<std::size_t>(c)] =
          static_cast<int>((static_cast<long long>(c) * n_shards) / n_cells);
    }
    return map;
  }

  // Band boundaries via floor(r * pr / rows): bands differ in size by at
  // most one row/column, and the map is a pure function of (rows, cols,
  // n_shards).
  for (int r = 0; r < rows; ++r) {
    const int band_row = (r * best_pr) / rows;
    for (int c = 0; c < cols; ++c) {
      const int band_col = (c * best_pc) / cols;
      map[static_cast<std::size_t>(r * cols + c)] = band_row * best_pc + band_col;
    }
  }
  return map;
}

std::vector<int> make_partition(const HexGrid& grid, int n_shards,
                                Partition kind) {
  switch (kind) {
    case Partition::kStriped:
      return striped_partition(grid.n_cells(), n_shards);
    case Partition::kBlocks:
      return block_partition(grid, n_shards);
  }
  std::abort();  // unreachable
}

std::size_t cross_shard_interference_pairs(const HexGrid& grid,
                                           const std::vector<int>& partition) {
  std::size_t n = 0;
  for (CellId a = 0; a < grid.n_cells(); ++a) {
    for (CellId b : grid.interference(a)) {
      if (b > a && partition[static_cast<std::size_t>(a)] !=
                       partition[static_cast<std::size_t>(b)]) {
        ++n;
      }
    }
  }
  return n;
}

}  // namespace dca::cell
