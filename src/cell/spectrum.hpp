// Channel identifiers and dense channel sets.
//
// The wireless spectrum is divided into n channels numbered 0..n-1
// (the paper numbers 1..n; we use 0-based ids internally and print 1-based
// where it matters). ChannelSet is a bitset whose word count is derived
// from the runtime universe size: the paper's 70-channel spectrum needs a
// >single< 64-bit word plus one inline spare, so the common case stays a
// 32-byte value with no heap traffic, while universes up to kMaxChannels
// spill to one heap block. All the per-node bookkeeping sets of the
// protocols (Use_i, U_j, I_i, PR_i, ...) are ChannelSets, so set algebra
// (union, minus, intersect, first-free) is a loop over `words()` words —
// 1/8th of the work the old fixed 512-bit layout did for a 70-channel run.
#pragma once

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace dca::cell {

/// Index of a wireless channel; kNoChannel means "none".
using ChannelId = std::int32_t;
inline constexpr ChannelId kNoChannel = -1;

/// Upper bound on spectrum size supported by ChannelSet.
inline constexpr int kMaxChannels = 512;

class ChannelSet {
 public:
  ChannelSet() = default;

  /// Empty set over a universe of `universe` channels (0..universe-1).
  explicit ChannelSet(int universe)
      : universe_(universe), words_((universe + 63) / 64) {
    assert(universe >= 0 && universe <= kMaxChannels);
    if (words_ > kInlineWords)
      heap_ = std::make_unique<std::uint64_t[]>(
          static_cast<std::size_t>(words_));
  }

  ChannelSet(const ChannelSet& o) : universe_(o.universe_), words_(o.words_) {
    if (words_ > kInlineWords) {
      heap_ = std::make_unique<std::uint64_t[]>(
          static_cast<std::size_t>(words_));
      std::copy_n(o.heap_.get(), words_, heap_.get());
    } else {
      inline_[0] = o.inline_[0];
      inline_[1] = o.inline_[1];
    }
  }

  ChannelSet& operator=(const ChannelSet& o) {
    if (this == &o) return *this;
    if (o.words_ > kInlineWords) {
      if (words_ != o.words_) {
        heap_ = std::make_unique<std::uint64_t[]>(
            static_cast<std::size_t>(o.words_));
      }
      std::copy_n(o.heap_.get(), o.words_, heap_.get());
    } else {
      heap_.reset();
      inline_[0] = o.inline_[0];
      inline_[1] = o.inline_[1];
    }
    universe_ = o.universe_;
    words_ = o.words_;
    return *this;
  }

  ChannelSet(ChannelSet&& o) noexcept
      : universe_(o.universe_), words_(o.words_), heap_(std::move(o.heap_)) {
    inline_[0] = o.inline_[0];
    inline_[1] = o.inline_[1];
    o.universe_ = 0;
    o.words_ = 0;
  }

  ChannelSet& operator=(ChannelSet&& o) noexcept {
    if (this == &o) return *this;
    universe_ = o.universe_;
    words_ = o.words_;
    heap_ = std::move(o.heap_);
    inline_[0] = o.inline_[0];
    inline_[1] = o.inline_[1];
    o.universe_ = 0;
    o.words_ = 0;
    return *this;
  }

  ~ChannelSet() = default;

  /// Full set {0, ..., universe-1}.
  static ChannelSet all(int universe) {
    ChannelSet s(universe);
    std::uint64_t* w = s.data();
    for (int i = 0; i < s.words_; ++i) w[static_cast<std::size_t>(i)] = ~0ull;
    s.trim();
    return s;
  }

  [[nodiscard]] int universe() const noexcept { return universe_; }

  [[nodiscard]] bool contains(ChannelId c) const noexcept {
    if (c < 0 || c >= universe_) return false;
    return (word(c) >> bit(c)) & 1ull;
  }

  void insert(ChannelId c) noexcept {
    assert(c >= 0 && c < universe_);
    // The storage is exactly universe-sized now, so an out-of-universe id
    // would scribble past the buffer in release builds; make it a checked
    // no-op there (debug builds assert above).
    if (c < 0 || c >= universe_) return;
    word(c) |= (1ull << bit(c));
  }

  void erase(ChannelId c) noexcept {
    if (c < 0 || c >= universe_) return;
    word(c) &= ~(1ull << bit(c));
  }

  void clear() noexcept {
    std::uint64_t* w = data();
    for (int i = 0; i < words_; ++i) w[static_cast<std::size_t>(i)] = 0;
  }

  [[nodiscard]] int size() const noexcept {
    const std::uint64_t* w = data();
    int n = 0;
    for (int i = 0; i < words_; ++i)
      n += std::popcount(w[static_cast<std::size_t>(i)]);
    return n;
  }

  [[nodiscard]] bool empty() const noexcept {
    const std::uint64_t* w = data();
    for (int i = 0; i < words_; ++i)
      if (w[static_cast<std::size_t>(i)] != 0) return false;
    return true;
  }

  /// Smallest channel id in the set, or kNoChannel when empty.
  [[nodiscard]] ChannelId first() const noexcept {
    const std::uint64_t* words = data();
    for (int w = 0; w < words_; ++w) {
      const std::uint64_t v = words[static_cast<std::size_t>(w)];
      if (v != 0) return static_cast<ChannelId>(w * 64 + std::countr_zero(v));
    }
    return kNoChannel;
  }

  /// Smallest channel id strictly greater than `c`, or kNoChannel.
  [[nodiscard]] ChannelId next_after(ChannelId c) const noexcept {
    ChannelId start = c + 1;
    if (start < 0) start = 0;
    if (start >= universe_) return kNoChannel;
    const std::uint64_t* words = data();
    int w = start / 64;
    std::uint64_t v = words[static_cast<std::size_t>(w)] &
                      (~0ull << static_cast<unsigned>(start % 64));
    while (true) {
      if (v != 0) return static_cast<ChannelId>(w * 64 + std::countr_zero(v));
      if (++w >= words_) return kNoChannel;
      v = words[static_cast<std::size_t>(w)];
    }
  }

  /// k-th smallest member (0-based), or kNoChannel when k >= size().
  /// Zero-allocation counterpart of to_vector()[k]: a word scan with a
  /// popcount skip, then a clear-lowest-bit select inside the word.
  [[nodiscard]] ChannelId nth(int k) const noexcept {
    if (k < 0) return kNoChannel;
    const std::uint64_t* words = data();
    for (int w = 0; w < words_; ++w) {
      std::uint64_t v = words[static_cast<std::size_t>(w)];
      const int c = std::popcount(v);
      if (k < c) {
        while (k-- > 0) v &= v - 1;  // drop the k lowest set bits
        return static_cast<ChannelId>(w * 64 + std::countr_zero(v));
      }
      k -= c;
    }
    return kNoChannel;
  }

  /// Materializes the members in increasing order.
  [[nodiscard]] std::vector<ChannelId> to_vector() const {
    std::vector<ChannelId> out;
    out.reserve(static_cast<std::size_t>(size()));
    for (ChannelId c = first(); c != kNoChannel; c = next_after(c)) out.push_back(c);
    return out;
  }

  // -- set algebra (universes must match; asserts in debug builds) -----------

  ChannelSet& operator|=(const ChannelSet& o) noexcept {
    assert(universe_ == o.universe_);
    std::uint64_t* a = data();
    const std::uint64_t* b = o.data();
    const int n = std::min(words_, o.words_);
    for (int w = 0; w < n; ++w)
      a[static_cast<std::size_t>(w)] |= b[static_cast<std::size_t>(w)];
    return *this;
  }
  ChannelSet& operator&=(const ChannelSet& o) noexcept {
    assert(universe_ == o.universe_);
    std::uint64_t* a = data();
    const std::uint64_t* b = o.data();
    const int n = std::min(words_, o.words_);
    for (int w = 0; w < n; ++w)
      a[static_cast<std::size_t>(w)] &= b[static_cast<std::size_t>(w)];
    return *this;
  }
  ChannelSet& operator-=(const ChannelSet& o) noexcept {
    assert(universe_ == o.universe_);
    std::uint64_t* a = data();
    const std::uint64_t* b = o.data();
    const int n = std::min(words_, o.words_);
    for (int w = 0; w < n; ++w)
      a[static_cast<std::size_t>(w)] &= ~b[static_cast<std::size_t>(w)];
    return *this;
  }

  friend ChannelSet operator|(ChannelSet a, const ChannelSet& b) { return a |= b; }
  friend ChannelSet operator&(ChannelSet a, const ChannelSet& b) { return a &= b; }
  friend ChannelSet operator-(ChannelSet a, const ChannelSet& b) { return a -= b; }

  /// Complement within the universe.
  [[nodiscard]] ChannelSet complement() const {
    ChannelSet out = all(universe_);
    out -= *this;
    return out;
  }

  [[nodiscard]] bool intersects(const ChannelSet& o) const noexcept {
    assert(universe_ == o.universe_);
    const std::uint64_t* a = data();
    const std::uint64_t* b = o.data();
    const int n = std::min(words_, o.words_);
    for (int w = 0; w < n; ++w)
      if (a[static_cast<std::size_t>(w)] & b[static_cast<std::size_t>(w)])
        return true;
    return false;
  }

  friend bool operator==(const ChannelSet& a, const ChannelSet& b) noexcept {
    if (a.universe_ != b.universe_) return false;
    const std::uint64_t* wa = a.data();
    const std::uint64_t* wb = b.data();
    for (int w = 0; w < a.words_; ++w) {
      if (wa[static_cast<std::size_t>(w)] != wb[static_cast<std::size_t>(w)])
        return false;
    }
    return true;
  }

  /// Debug rendering, e.g. "{0,3,17}".
  [[nodiscard]] std::string to_string() const {
    std::string s = "{";
    bool firstItem = true;
    for (ChannelId c = first(); c != kNoChannel; c = next_after(c)) {
      if (!firstItem) s += ',';
      s += std::to_string(c);
      firstItem = false;
    }
    s += '}';
    return s;
  }

 private:
  // Words kept inside the object; 2 covers every universe up to 128
  // channels (the paper's 70-channel spectrum included) allocation-free.
  static constexpr int kInlineWords = 2;

  [[nodiscard]] std::uint64_t* data() noexcept {
    return heap_ ? heap_.get() : inline_;
  }
  [[nodiscard]] const std::uint64_t* data() const noexcept {
    return heap_ ? heap_.get() : inline_;
  }

  std::uint64_t& word(ChannelId c) noexcept {
    return data()[static_cast<std::size_t>(c / 64)];
  }
  [[nodiscard]] const std::uint64_t& word(ChannelId c) const noexcept {
    return data()[static_cast<std::size_t>(c / 64)];
  }
  static constexpr unsigned bit(ChannelId c) noexcept {
    return static_cast<unsigned>(c % 64);
  }

  // Zeroes bits at or beyond universe_ in the top word.
  void trim() noexcept {
    if (words_ == 0) return;
    const int rem = universe_ % 64;
    if (rem != 0) {
      data()[static_cast<std::size_t>(words_ - 1)] &=
          ~0ull >> static_cast<unsigned>(64 - rem);
    }
  }

  int universe_ = 0;
  int words_ = 0;  // (universe_ + 63) / 64
  std::uint64_t inline_[kInlineWords] = {0, 0};
  std::unique_ptr<std::uint64_t[]> heap_;  // engaged when words_ > kInlineWords
};

}  // namespace dca::cell
