// Channel identifiers and dense channel sets.
//
// The wireless spectrum is divided into n channels numbered 0..n-1
// (the paper numbers 1..n; we use 0-based ids internally and print 1-based
// where it matters). ChannelSet is a fixed-capacity bitset sized for up to
// kMaxChannels channels with a runtime universe size; all the per-node
// bookkeeping sets of the protocols (Use_i, U_j, I_i, PR_i, ...) are
// ChannelSets, so set algebra (union, minus, intersect, first-free) is a
// handful of word operations.
#pragma once

#include <array>
#include <bit>
#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace dca::cell {

/// Index of a wireless channel; kNoChannel means "none".
using ChannelId = std::int32_t;
inline constexpr ChannelId kNoChannel = -1;

/// Upper bound on spectrum size supported by ChannelSet.
inline constexpr int kMaxChannels = 512;

class ChannelSet {
 public:
  ChannelSet() = default;

  /// Empty set over a universe of `universe` channels (0..universe-1).
  explicit ChannelSet(int universe) : universe_(universe) {
    assert(universe >= 0 && universe <= kMaxChannels);
  }

  /// Full set {0, ..., universe-1}.
  static ChannelSet all(int universe) {
    ChannelSet s(universe);
    for (int w = 0; w < kWords; ++w) s.bits_[static_cast<std::size_t>(w)] = ~0ull;
    s.trim();
    return s;
  }

  [[nodiscard]] int universe() const noexcept { return universe_; }

  [[nodiscard]] bool contains(ChannelId c) const noexcept {
    if (c < 0 || c >= universe_) return false;
    return (word(c) >> bit(c)) & 1ull;
  }

  void insert(ChannelId c) noexcept {
    assert(c >= 0 && c < universe_);
    word(c) |= (1ull << bit(c));
  }

  void erase(ChannelId c) noexcept {
    if (c < 0 || c >= universe_) return;
    word(c) &= ~(1ull << bit(c));
  }

  void clear() noexcept { bits_.fill(0); }

  [[nodiscard]] int size() const noexcept {
    int n = 0;
    for (auto w : bits_) n += std::popcount(w);
    return n;
  }

  [[nodiscard]] bool empty() const noexcept {
    for (auto w : bits_)
      if (w != 0) return false;
    return true;
  }

  /// Smallest channel id in the set, or kNoChannel when empty.
  [[nodiscard]] ChannelId first() const noexcept {
    for (int w = 0; w < kWords; ++w) {
      const std::uint64_t v = bits_[static_cast<std::size_t>(w)];
      if (v != 0) return static_cast<ChannelId>(w * 64 + std::countr_zero(v));
    }
    return kNoChannel;
  }

  /// Smallest channel id strictly greater than `c`, or kNoChannel.
  [[nodiscard]] ChannelId next_after(ChannelId c) const noexcept {
    ChannelId start = c + 1;
    if (start < 0) start = 0;
    if (start >= universe_) return kNoChannel;
    int w = start / 64;
    std::uint64_t v = bits_[static_cast<std::size_t>(w)] &
                      (~0ull << static_cast<unsigned>(start % 64));
    while (true) {
      if (v != 0) return static_cast<ChannelId>(w * 64 + std::countr_zero(v));
      if (++w >= kWords) return kNoChannel;
      v = bits_[static_cast<std::size_t>(w)];
    }
  }

  /// k-th smallest member (0-based), or kNoChannel when k >= size().
  /// Zero-allocation counterpart of to_vector()[k]: a word scan with a
  /// popcount skip, then a clear-lowest-bit select inside the word.
  [[nodiscard]] ChannelId nth(int k) const noexcept {
    if (k < 0) return kNoChannel;
    for (int w = 0; w < kWords; ++w) {
      std::uint64_t v = bits_[static_cast<std::size_t>(w)];
      const int c = std::popcount(v);
      if (k < c) {
        while (k-- > 0) v &= v - 1;  // drop the k lowest set bits
        return static_cast<ChannelId>(w * 64 + std::countr_zero(v));
      }
      k -= c;
    }
    return kNoChannel;
  }

  /// Materializes the members in increasing order.
  [[nodiscard]] std::vector<ChannelId> to_vector() const {
    std::vector<ChannelId> out;
    out.reserve(static_cast<std::size_t>(size()));
    for (ChannelId c = first(); c != kNoChannel; c = next_after(c)) out.push_back(c);
    return out;
  }

  // -- set algebra (universes must match; asserts in debug builds) -----------

  ChannelSet& operator|=(const ChannelSet& o) noexcept {
    assert(universe_ == o.universe_);
    for (int w = 0; w < kWords; ++w)
      bits_[static_cast<std::size_t>(w)] |= o.bits_[static_cast<std::size_t>(w)];
    return *this;
  }
  ChannelSet& operator&=(const ChannelSet& o) noexcept {
    assert(universe_ == o.universe_);
    for (int w = 0; w < kWords; ++w)
      bits_[static_cast<std::size_t>(w)] &= o.bits_[static_cast<std::size_t>(w)];
    return *this;
  }
  ChannelSet& operator-=(const ChannelSet& o) noexcept {
    assert(universe_ == o.universe_);
    for (int w = 0; w < kWords; ++w)
      bits_[static_cast<std::size_t>(w)] &= ~o.bits_[static_cast<std::size_t>(w)];
    return *this;
  }

  friend ChannelSet operator|(ChannelSet a, const ChannelSet& b) { return a |= b; }
  friend ChannelSet operator&(ChannelSet a, const ChannelSet& b) { return a &= b; }
  friend ChannelSet operator-(ChannelSet a, const ChannelSet& b) { return a -= b; }

  /// Complement within the universe.
  [[nodiscard]] ChannelSet complement() const {
    ChannelSet out = all(universe_);
    out -= *this;
    return out;
  }

  [[nodiscard]] bool intersects(const ChannelSet& o) const noexcept {
    assert(universe_ == o.universe_);
    for (int w = 0; w < kWords; ++w)
      if (bits_[static_cast<std::size_t>(w)] & o.bits_[static_cast<std::size_t>(w)])
        return true;
    return false;
  }

  friend bool operator==(const ChannelSet& a, const ChannelSet& b) noexcept {
    return a.universe_ == b.universe_ && a.bits_ == b.bits_;
  }

  /// Debug rendering, e.g. "{0,3,17}".
  [[nodiscard]] std::string to_string() const {
    std::string s = "{";
    bool firstItem = true;
    for (ChannelId c = first(); c != kNoChannel; c = next_after(c)) {
      if (!firstItem) s += ',';
      s += std::to_string(c);
      firstItem = false;
    }
    s += '}';
    return s;
  }

 private:
  static constexpr int kWords = kMaxChannels / 64;

  std::uint64_t& word(ChannelId c) noexcept {
    return bits_[static_cast<std::size_t>(c / 64)];
  }
  [[nodiscard]] const std::uint64_t& word(ChannelId c) const noexcept {
    return bits_[static_cast<std::size_t>(c / 64)];
  }
  static constexpr unsigned bit(ChannelId c) noexcept {
    return static_cast<unsigned>(c % 64);
  }

  // Zeroes bits at or beyond universe_.
  void trim() noexcept {
    for (int c = universe_; c < kMaxChannels; ++c)
      bits_[static_cast<std::size_t>(c / 64)] &= ~(1ull << bit(c));
  }

  int universe_ = 0;
  std::array<std::uint64_t, kWords> bits_{};
};

}  // namespace dca::cell
