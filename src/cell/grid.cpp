#include "cell/grid.hpp"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <limits>

namespace dca::cell {

namespace {

// Odd-r offset -> axial conversion: row y, column x.
Axial offset_to_axial(int x, int y) noexcept {
  return Axial{x - (y - (y & 1)) / 2, y};
}

int floor_mod(int v, int m) noexcept { return ((v % m) + m) % m; }

}  // namespace

HexGrid::HexGrid(int rows, int cols, int interference_radius, Wrap wrap)
    : rows_(rows), cols_(cols), radius_(interference_radius), wrap_(wrap) {
  assert(rows_ > 0 && cols_ > 0 && radius_ >= 1);
  // Odd-r offset rows only re-align across the vertical seam when the row
  // count is even; and the torus must be big enough that a cell is never
  // its own neighbour through the wrap.
  assert(wrap_ == Wrap::kBounded ||
         (rows_ % 2 == 0 && rows_ > 2 * radius_ && cols_ > 2 * radius_));

  const auto n = static_cast<std::size_t>(n_cells());
  axial_.reserve(n);
  for (int y = 0; y < rows_; ++y)
    for (int x = 0; x < cols_; ++x) axial_.push_back(offset_to_axial(x, y));

  neighbors_.resize(n);
  interference_.resize(n);
  std::size_t degree_sum = 0;
  for (CellId a = 0; a < n_cells(); ++a) {
    for (const Axial d : kHexDirections) {
      const CellId b = cell_at(axial(a) + d);
      if (b != kNoCell && b != a) neighbors_[static_cast<std::size_t>(a)].push_back(b);
    }
    auto& nb = neighbors_[static_cast<std::size_t>(a)];
    std::sort(nb.begin(), nb.end());
    nb.erase(std::unique(nb.begin(), nb.end()), nb.end());

    for (CellId b = 0; b < n_cells(); ++b) {
      if (a != b && distance(a, b) <= radius_)
        interference_[static_cast<std::size_t>(a)].push_back(b);
    }
    const auto deg = interference_[static_cast<std::size_t>(a)].size();
    degree_sum += deg;
    max_degree_ = std::max(max_degree_, static_cast<int>(deg));
  }
  mean_degree_ = static_cast<double>(degree_sum) / static_cast<double>(n_cells());
}

CellId HexGrid::cell_at(Axial a) const noexcept {
  int y = a.r;
  // Offset column: x = q + (r - parity(r)) / 2, with floor semantics so
  // negative rows convert correctly (the numerator is always even).
  int x = a.q + (a.r - floor_mod(a.r, 2)) / 2;
  if (wrap_ == Wrap::kToroidal) {
    y = floor_mod(y, rows_);
    x = floor_mod(x, cols_);
    return y * cols_ + x;
  }
  if (y < 0 || y >= rows_ || x < 0 || x >= cols_) return kNoCell;
  return y * cols_ + x;
}

int HexGrid::distance(CellId a, CellId b) const {
  const Axial pa = axial(a);
  const Axial pb = axial(b);
  if (wrap_ == Wrap::kBounded) return hex_distance(pa, pb);
  // Torus: minimum over the nine translated copies of b. A horizontal
  // period of `cols_` shifts axial q by cols_; a vertical period of
  // `rows_` (even) shifts axial (q, r) by (-rows_/2, rows_).
  int best = std::numeric_limits<int>::max();
  for (int dy = -1; dy <= 1; ++dy) {
    for (int dx = -1; dx <= 1; ++dx) {
      const Axial shifted{pb.q + dx * cols_ - dy * (rows_ / 2), pb.r + dy * rows_};
      best = std::min(best, hex_distance(pa, shifted));
    }
  }
  return best;
}

}  // namespace dca::cell
