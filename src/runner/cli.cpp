#include "runner/cli.hpp"

#include <cassert>
#include <cstdlib>
#include <sstream>

namespace dca::runner {

ArgParser::ArgParser(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary)) {}

ArgParser& ArgParser::add_string(const std::string& name, std::string default_value,
                                 const std::string& help) {
  order_.push_back(name);
  options_[name] = Option{Kind::kString, default_value, std::move(default_value),
                          help, false};
  return *this;
}

ArgParser& ArgParser::add_int(const std::string& name, std::int64_t default_value,
                              const std::string& help) {
  order_.push_back(name);
  const std::string d = std::to_string(default_value);
  options_[name] = Option{Kind::kInt, d, d, help, false};
  return *this;
}

ArgParser& ArgParser::add_double(const std::string& name, double default_value,
                                 const std::string& help) {
  order_.push_back(name);
  std::ostringstream os;
  os << default_value;
  options_[name] = Option{Kind::kDouble, os.str(), os.str(), help, false};
  return *this;
}

ArgParser& ArgParser::add_flag(const std::string& name, const std::string& help) {
  order_.push_back(name);
  options_[name] = Option{Kind::kFlag, "false", "false", help, false};
  return *this;
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      return true;
    }
    if (arg.rfind("--", 0) != 0) {
      error_ = "unexpected positional argument: " + arg;
      return false;
    }
    std::string name = arg.substr(2);
    std::string inline_value;
    bool has_inline = false;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_inline = true;
    }
    const auto it = options_.find(name);
    if (it == options_.end()) {
      error_ = "unknown option: --" + name;
      return false;
    }
    Option& opt = it->second;
    if (opt.kind == Kind::kFlag) {
      if (has_inline) {
        error_ = "flag --" + name + " takes no value";
        return false;
      }
      opt.value = "true";
      opt.set = true;
      continue;
    }
    if (!has_inline) {
      if (i + 1 >= argc) {
        error_ = "option --" + name + " needs a value";
        return false;
      }
      inline_value = argv[++i];
    }
    // Validate numeric formats eagerly.
    if (opt.kind == Kind::kInt) {
      char* end = nullptr;
      (void)std::strtoll(inline_value.c_str(), &end, 10);
      if (end == inline_value.c_str() || *end != '\0') {
        error_ = "option --" + name + " expects an integer, got '" +
                 inline_value + "'";
        return false;
      }
    } else if (opt.kind == Kind::kDouble) {
      char* end = nullptr;
      (void)std::strtod(inline_value.c_str(), &end);
      if (end == inline_value.c_str() || *end != '\0') {
        error_ = "option --" + name + " expects a number, got '" + inline_value +
                 "'";
        return false;
      }
    }
    opt.value = inline_value;
    opt.set = true;
  }
  return true;
}

std::string ArgParser::help_text() const {
  std::ostringstream os;
  os << program_ << " — " << summary_ << "\n\nOptions:\n";
  for (const auto& name : order_) {
    const Option& opt = options_.at(name);
    os << "  --" << name;
    if (opt.kind != Kind::kFlag) os << " <" << opt.default_value << ">";
    os << "\n      " << opt.help << "\n";
  }
  os << "  --help\n      show this text\n";
  return os.str();
}

const ArgParser::Option* ArgParser::find(const std::string& name, Kind kind) const {
  const auto it = options_.find(name);
  assert(it != options_.end() && "accessing unregistered option");
  assert(it->second.kind == kind && "type mismatch on option access");
  (void)kind;
  return &it->second;
}

std::string ArgParser::get_string(const std::string& name) const {
  return find(name, Kind::kString)->value;
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  return std::strtoll(find(name, Kind::kInt)->value.c_str(), nullptr, 10);
}

double ArgParser::get_double(const std::string& name) const {
  return std::strtod(find(name, Kind::kDouble)->value.c_str(), nullptr);
}

bool ArgParser::get_flag(const std::string& name) const {
  return find(name, Kind::kFlag)->value == "true";
}

bool ArgParser::was_set(const std::string& name) const {
  const auto it = options_.find(name);
  assert(it != options_.end());
  return it->second.set;
}

}  // namespace dca::runner
