// One-call experiment drivers: assemble a World, drive a traffic profile
// through it, and return the aggregated results every bench/table consumes.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "metrics/availability.hpp"
#include "metrics/collector.hpp"
#include "net/fault.hpp"
#include "net/message.hpp"
#include "runner/scenario.hpp"
#include "runner/world.hpp"
#include "sim/trace.hpp"
#include "traffic/profile.hpp"

namespace dca::runner {

struct RunResult {
  Scheme scheme = Scheme::kFca;
  metrics::Aggregate agg;
  std::uint64_t total_messages = 0;
  /// Protocol messages whose sender and receiver cells live on different
  /// shards (always 0 on the classic shards=1 engine). An engine-cost
  /// metric, not a simulation result: it varies with shards/partition
  /// while every simulation output stays bit-identical.
  std::uint64_t cross_shard_messages = 0;
  std::array<std::uint64_t, net::kNumMsgKinds> messages_by_kind{};
  std::uint64_t offered_calls = 0;  // including warmup
  double carried_erlangs = 0.0;     // time-weighted channels in use
  std::uint64_t violations = 0;
  std::uint64_t executed_events = 0;
  bool quiescent = false;
  net::TransportStats transport;  // all-zero unless faults were enabled
  /// Crash/resync availability accounting (all-zero with crashes off).
  metrics::Availability availability;

  /// Process-wide peak resident set (getrusage ru_maxrss) sampled after
  /// the run, in bytes; 0 where the platform cannot report it. A
  /// high-water mark, so it reflects the largest run of the process, not
  /// necessarily this one — meaningful for one-run processes (dcasim,
  /// the metro smoke test) and as an upper bound elsewhere.
  std::uint64_t peak_rss_bytes = 0;
  /// In-engine conformance replay (streaming mode with a trace attached):
  /// whether it ran, and how many invariant violations it found.
  bool conformance_checked = false;
  std::uint64_t conformance_violations = 0;
  [[nodiscard]] bool conformance_ok() const {
    return conformance_checked && conformance_violations == 0;
  }

  /// Control messages per offered call over the whole run (global view,
  /// complementary to the per-call attribution in agg.messages_per_call).
  [[nodiscard]] double messages_per_offered() const {
    return offered_calls == 0
               ? 0.0
               : static_cast<double>(total_messages) /
                     static_cast<double>(offered_calls);
  }
};

/// Runs `scheme` under the given load profile for config.duration (plus
/// drain time) and aggregates records after config.warmup. When `trace`
/// is non-null every structured event (call lifecycle, protocol search
/// decisions, fault-layer drops/pauses) is appended to it, ending with a
/// kRunEnd summary event (a = quiescent flag, b = calls still open).
[[nodiscard]] RunResult run_profile(const ScenarioConfig& config, Scheme scheme,
                                    const traffic::LoadProfile& profile,
                                    sim::TraceRecorder* trace = nullptr);

/// Uniform Poisson load of `rho` Erlang per cell (normalized to |PR|).
[[nodiscard]] RunResult run_uniform(const ScenarioConfig& config, Scheme scheme,
                                    double rho,
                                    sim::TraceRecorder* trace = nullptr);

/// Hot-spot scenario: uniform base load `rho_base` with the central cell(s)
/// at `hot_factor` times the base rate inside [hot_start, hot_end].
[[nodiscard]] RunResult run_hotspot(const ScenarioConfig& config, Scheme scheme,
                                    double rho_base, double hot_factor,
                                    sim::SimTime hot_start, sim::SimTime hot_end,
                                    std::vector<cell::CellId> hot_cells = {},
                                    sim::TraceRecorder* trace = nullptr);

/// Multi-seed replication of one experiment point: summary statistics of
/// the headline metrics over independent seeds. The confidence the paper's
/// style of single-run tables lacks.
struct Replicated {
  metrics::Summary drop_rate;           // per-seed drop rates
  metrics::Summary mean_delay_in_T;     // per-seed mean acquisition times
  metrics::Summary mean_msgs_per_call;  // per-seed mean attributed messages
  metrics::Summary xi1;                 // per-seed local fractions
  std::uint64_t violations = 0;         // summed over seeds (must be 0)
  int seeds = 0;
};

/// Runs `n_seeds` independent replications (seeds derived from
/// config.seed) of a uniform-load point.
[[nodiscard]] Replicated run_replicated(const ScenarioConfig& config, Scheme scheme,
                                        double rho, int n_seeds);

/// A load sweep point set, possibly executed on several worker threads
/// (each point is an independent World with its own seed-derived streams,
/// so the results are identical whatever the thread count).
struct SweepPoint {
  Scheme scheme;
  double rho;
  RunResult result;
};
[[nodiscard]] std::vector<SweepPoint> sweep_uniform(const ScenarioConfig& config,
                                                    const std::vector<Scheme>& schemes,
                                                    const std::vector<double>& rhos,
                                                    int threads = 1);

}  // namespace dca::runner
