#include "runner/experiment.hpp"

#include <algorithm>
#include <cassert>
#include <mutex>
#include <thread>

#ifdef __linux__
#include <sys/resource.h>
#endif

#include "runner/shard_world.hpp"
#include "traffic/generator.hpp"

namespace dca::runner {

namespace {

/// Peak resident set of this process in bytes (0 when unavailable).
/// Linux reports ru_maxrss in kilobytes.
std::uint64_t peak_rss_bytes_now() {
#ifdef __linux__
  rusage u{};
  if (getrusage(RUSAGE_SELF, &u) == 0) {
    return static_cast<std::uint64_t>(u.ru_maxrss) * 1024u;
  }
#endif
  return 0;
}

}  // namespace

RunResult run_profile(const ScenarioConfig& config, Scheme scheme,
                      const traffic::LoadProfile& profile,
                      sim::TraceRecorder* trace) {
  // stream_metrics routes through the sharded engine even at shards == 1:
  // the classic engine has no window barriers to fold at.
  if (config.shards > 1 || config.stream_metrics) {
    RunResult out = run_profile_sharded(config, scheme, profile, trace);
    out.peak_rss_bytes = peak_rss_bytes_now();
    return out;
  }
  World world(config, scheme);
  world.set_recorder(trace);
  traffic::TrafficSource source(
      world.simulator(), world.grid(), profile, config.mean_holding_s, config.seed,
      [&world](const traffic::CallSpec& spec) { world.submit_call(spec); });
  source.start(config.duration);

  // Run through the arrival horizon, then drain: in-flight handshakes and
  // held calls complete, which also exercises the Theorem 2 check — a
  // stuck request would leave the world non-quiescent.
  world.simulator().run_until(config.duration);
  world.simulator().run_to_quiescence();

  RunResult out;
  out.scheme = scheme;
  world.finalize_neighbor_samples();
  out.agg = world.collector().aggregate(world.latency_bound(), config.warmup);
  out.total_messages = world.network().total_sent();
  for (int k = 0; k < net::kNumMsgKinds; ++k) {
    out.messages_by_kind[static_cast<std::size_t>(k)] =
        world.network().sent_of(static_cast<net::MsgKind>(k));
  }
  out.offered_calls = source.emitted();
  out.carried_erlangs = world.carried_erlangs(config.duration);
  out.violations = world.interference_violations();
  out.executed_events = world.simulator().executed();
  out.quiescent = world.quiescent();
  out.transport = world.network().transport_stats();
  out.availability = world.availability();
  if (trace != nullptr) {
    // Same-instant ties spanning cells execute in insertion order here but
    // in (t, cell) order under the sharded fold merge; sort the buffered
    // trace into that canonical order so the trace is engine-invariant.
    // kRunEnd goes in afterwards, last in both engines.
    trace->canonicalize();
    sim::TraceEvent end;
    end.kind = sim::TraceKind::kRunEnd;
    end.t = world.simulator().now();
    end.a = out.quiescent ? 1 : 0;
    end.b = static_cast<std::int64_t>(world.active_calls());
    trace->emit(end);
  }
  out.peak_rss_bytes = peak_rss_bytes_now();
  return out;
}

RunResult run_uniform(const ScenarioConfig& config, Scheme scheme, double rho,
                      sim::TraceRecorder* trace) {
  const traffic::UniformProfile profile(config.arrival_rate_for_load(rho));
  return run_profile(config, scheme, profile, trace);
}

RunResult run_hotspot(const ScenarioConfig& config, Scheme scheme, double rho_base,
                      double hot_factor, sim::SimTime hot_start, sim::SimTime hot_end,
                      std::vector<cell::CellId> hot_cells,
                      sim::TraceRecorder* trace) {
  if (hot_cells.empty()) {
    // Default hot spot: the central cell of the grid.
    hot_cells.push_back((config.rows / 2) * config.cols + config.cols / 2);
  }
  const traffic::HotspotProfile profile(config.arrival_rate_for_load(rho_base),
                                        std::move(hot_cells), hot_factor, hot_start,
                                        hot_end);
  return run_profile(config, scheme, profile, trace);
}

Replicated run_replicated(const ScenarioConfig& config, Scheme scheme, double rho,
                          int n_seeds) {
  Replicated out;
  out.seeds = n_seeds;
  for (int i = 0; i < n_seeds; ++i) {
    ScenarioConfig cfg = config;
    cfg.seed = sim::mix64(config.seed + static_cast<std::uint64_t>(i) * 0x9E37ull);
    const RunResult r = run_uniform(cfg, scheme, rho);
    out.drop_rate.add(r.agg.drop_rate());
    out.mean_delay_in_T.add(r.agg.delay_in_T.mean());
    out.mean_msgs_per_call.add(r.agg.messages_per_call.mean());
    out.xi1.add(r.agg.xi1);
    out.violations += r.violations;
  }
  return out;
}

std::vector<SweepPoint> sweep_uniform(const ScenarioConfig& config,
                                      const std::vector<Scheme>& schemes,
                                      const std::vector<double>& rhos, int threads) {
  std::vector<SweepPoint> points;
  for (const Scheme s : schemes)
    for (const double rho : rhos) points.push_back(SweepPoint{s, rho, {}});

  if (threads < 1) threads = 1;
  threads = std::min<int>(threads, static_cast<int>(points.size()));

  if (threads == 1) {
    for (auto& p : points) p.result = run_uniform(config, p.scheme, p.rho);
    return points;
  }

  // Each point is an isolated World with seed-derived substreams, so the
  // partition across workers cannot change any result.
  std::mutex mu;
  std::size_t next = 0;
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&]() {
      while (true) {
        std::size_t mine;
        {
          const std::lock_guard<std::mutex> lock(mu);
          if (next >= points.size()) return;
          mine = next++;
        }
        points[mine].result = run_uniform(config, points[mine].scheme,
                                          points[mine].rho);
      }
    });
  }
  for (auto& th : pool) th.join();
  return points;
}

}  // namespace dca::runner
