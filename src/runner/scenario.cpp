#include "runner/scenario.hpp"

#include <algorithm>

#include "cell/reuse.hpp"
#include "cell/spectrum.hpp"
#include "net/latency.hpp"

namespace dca::runner {

std::string validate_scenario(const ScenarioConfig& c) {
  if (c.rows < 1 || c.cols < 1) return "grid dimensions must be positive";
  if (c.interference_radius < 1) return "interference radius must be >= 1";
  if (c.n_channels < 1) return "need at least one channel";
  if (c.n_channels > cell::kMaxChannels)
    return "at most " + std::to_string(cell::kMaxChannels) + " channels supported";
  if (!c.greedy_plan && c.cluster != 3 && c.cluster != 7)
    return "regular reuse patterns exist for cluster sizes 3 and 7 only "
           "(use greedy_plan for other radii)";
  if (!c.greedy_plan && c.cluster == 3 && c.interference_radius > 1)
    return "cluster 3 only supports interference radius 1";
  if (!c.greedy_plan && c.cluster == 7 && c.interference_radius > 2)
    return "cluster 7 only supports interference radius <= 2";
  if (c.wrap == cell::Wrap::kToroidal) {
    if (c.rows % 2 != 0)
      return "toroidal grids need an even row count (odd-r offset seam)";
    if (c.rows <= 2 * c.interference_radius || c.cols <= 2 * c.interference_radius)
      return "toroidal grid too small: a cell would wrap into its own "
             "interference region";
  }
  if (c.mean_holding_s <= 0.0) return "mean holding time must be positive";
  if (c.latency < 0) return "latency cannot be negative";
  if (c.latency_jitter < 0) return "latency_jitter cannot be negative";
  if (c.mean_dwell_s < 0.0) return "mean dwell cannot be negative";
  if (c.duration <= 0) return "duration must be positive";
  if (c.max_update_attempts < 1) return "retry cap must be >= 1";
  if (c.adaptive.theta_low < 1) return "theta_low must be >= 1 (DESIGN.md note 4)";
  if (c.adaptive.theta_high <= c.adaptive.theta_low)
    return "theta_high must exceed theta_low (hysteresis)";
  if (c.adaptive.alpha < 1) return "alpha must be >= 1";
  if (c.adaptive.window <= 0) return "NFC window must be positive";
  if (c.fault.drop_prob < 0.0 || c.fault.drop_prob > 0.9)
    return "drop_prob must be in [0, 0.9] (the transport needs some "
           "deliveries to make progress)";
  if (c.fault.dup_prob < 0.0 || c.fault.dup_prob > 1.0)
    return "dup_prob must be in [0, 1]";
  if (c.fault.jitter < 0) return "fault jitter cannot be negative";
  if (c.fault.pause_rate_per_min < 0.0) return "pause rate cannot be negative";
  if (c.fault.pause_rate_per_min > 0.0 && c.fault.pause_mean_s <= 0.0)
    return "pause_mean_s must be positive when pauses are enabled";
  if (c.request_timeout < 0) return "request timeout cannot be negative";
  if (c.fault.pause_rate_per_min > 0.0 && c.request_timeout == 0)
    return "MSS pauses stall handshakes indefinitely; set request_timeout";
  if (c.fault.crash_rate_per_min < 0.0) return "crash rate cannot be negative";
  if (c.fault.crash_mean_s < 0.0) return "crash_mean_s cannot be negative";
  if (c.fault.crash_rate_per_min > 0.0 && c.fault.crash_mean_s <= 0.0)
    return "crash_mean_s must be positive when crashes are enabled";
  if (c.fault.crashes() && c.request_timeout == 0)
    return "MSS crashes orphan in-flight handshakes; set request_timeout";
  for (const net::PartitionSpec& p : c.fault.partitions) {
    if (p.cells.empty())
      return "partition group must name at least one cell";
    if (p.start >= p.end)
      return "partition interval must satisfy start < end";
    for (const cell::CellId pc : p.cells) {
      if (pc < 0 || pc >= c.rows * c.cols)
        return "partition cell " + std::to_string(pc) +
               " outside the grid (cells are 0.." +
               std::to_string(c.rows * c.cols - 1) + ")";
    }
  }
  if (c.fault.has_partitions() && c.request_timeout == 0)
    return "network partitions stall handshakes until the heal; set "
           "request_timeout";
  if (c.shards < 1) return "shards must be >= 1";
  if (c.threads < 0) return "threads cannot be negative";
  if (c.shards > 1) {
    if (c.shards > c.rows * c.cols)
      return "more shards than cells";
    if (c.latency <= 0)
      return "sharded execution needs latency > 0 (the per-link latency "
             "floors are the engine's lookahead)";
  }
  if (c.stream_metrics && c.latency <= 0)
    return "stream_metrics runs on the sharded engine and needs latency > 0 "
           "(the per-link latency floors are the engine's lookahead)";
  if (c.radio_fade_prob < 0.0 || c.radio_fade_prob >= 1.0)
    return "radio_fade_prob must be in [0, 1)";
  {
    // Registry-level check: unknown policy names, unknown parameters, and
    // out-of-range values are all rejected here, with the factory's own
    // message, instead of aborting at world construction.
    std::string policyError;
    auto policy = proto::PolicyRegistry::instance().make(c.policy, policyError);
    if (policy == nullptr) return policyError;
  }
  if (c.radio_fade_prob > 0.0 && c.radio_fade_bucket <= 0)
    return "radio_fade_bucket must be positive when fading is enabled";

  // Final authority: build the actual geometry and validate the colouring
  // (catches e.g. torus dimensions incompatible with the cluster pattern).
  const cell::HexGrid grid(c.rows, c.cols, c.interference_radius, c.wrap);
  const cell::ReusePlan plan =
      c.greedy_plan ? cell::ReusePlan::greedy(grid, c.n_channels)
                    : cell::ReusePlan::cluster(grid, c.n_channels, c.cluster);
  if (!plan.validate(grid)) {
    return "reuse plan invalid for this grid (for a cluster-7 torus use "
           "rows % 14 == 0 and cols % 7 == 0, e.g. 14x14; or greedy_plan)";
  }
  return "";
}

std::unique_ptr<net::LatencyModel> make_scenario_latency(
    const ScenarioConfig& c) {
  if (c.latency_jitter > 0) {
    // Uniform in [latency - jitter, latency], floored at 1 us so time
    // always advances. Per-link streams keep the draw sequence identical
    // across engines (see LinkJitterLatency).
    const sim::Duration lo =
        std::max<sim::Duration>(c.latency - c.latency_jitter, 1);
    return std::make_unique<net::LinkJitterLatency>(lo, c.latency, c.seed);
  }
  return std::make_unique<net::FixedLatency>(c.latency);
}

}  // namespace dca::runner
