#include "runner/node_factory.hpp"

#include <cstdio>
#include <cstdlib>

#include "core/adaptive.hpp"
#include "proto/advanced_search.hpp"
#include "proto/advanced_update.hpp"
#include "proto/basic_search.hpp"
#include "proto/basic_update.hpp"
#include "proto/fca.hpp"

namespace dca::runner {

std::unique_ptr<proto::AllocatorNode> make_node(const proto::NodeContext& ctx,
                                                Scheme scheme,
                                                const ScenarioConfig& config) {
  switch (scheme) {
    case Scheme::kFca:
      return std::make_unique<proto::FcaNode>(ctx);
    case Scheme::kBasicSearch:
      return std::make_unique<proto::BasicSearchNode>(ctx);
    case Scheme::kBasicUpdate:
      return std::make_unique<proto::BasicUpdateNode>(
          ctx, config.max_update_attempts, config.update_pick);
    case Scheme::kAdvancedUpdate:
      return std::make_unique<proto::AdvancedUpdateNode>(
          ctx, config.max_update_attempts);
    case Scheme::kAdvancedSearch:
      return std::make_unique<proto::AdvancedSearchNode>(
          ctx, config.max_update_attempts);
    case Scheme::kAdaptive:
      return std::make_unique<core::AdaptiveNode>(ctx, config.adaptive);
  }
  return nullptr;
}

std::unique_ptr<const proto::AllocationPolicy> make_policy(
    const ScenarioConfig& config) {
  std::string error;
  auto policy = proto::PolicyRegistry::instance().make(config.policy, error);
  if (policy == nullptr) {
    std::fprintf(stderr, "fatal: %s\n", error.c_str());
    std::abort();
  }
  return policy;
}

}  // namespace dca::runner
