#include "runner/world.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "runner/node_factory.hpp"
#include "traffic/mobility.hpp"

namespace dca::runner {

std::string scheme_name(Scheme s) {
  switch (s) {
    case Scheme::kFca: return "FCA (static)";
    case Scheme::kBasicSearch: return "Basic Search";
    case Scheme::kBasicUpdate: return "Basic Update";
    case Scheme::kAdvancedUpdate: return "Advanced Update";
    case Scheme::kAdvancedSearch: return "Advanced Search";
    case Scheme::kAdaptive: return "Adaptive (proposed)";
  }
  return "?";
}

World::World(const ScenarioConfig& config, Scheme scheme,
             std::unique_ptr<net::LatencyModel> latency_override)
    : config_(config),
      scheme_(scheme),
      grid_(config.rows, config.cols, config.interference_radius, config.wrap),
      plan_(config.greedy_plan
                ? cell::ReusePlan::greedy(grid_, config.n_channels)
                : cell::ReusePlan::cluster(grid_, config.n_channels, config.cluster)),
      noise_(config.seed, config.radio_fade_prob, config.radio_fade_bucket) {
  // A broken reuse plan voids every guarantee downstream; fail fast even
  // in release builds (e.g. a torus whose dimensions don't fit the
  // cluster pattern: cluster 7 needs rows % 14 == 0 and cols % 7 == 0).
  if (!plan_.validate(grid_)) {
    const std::string plan_name =
        config_.greedy_plan ? "greedy" : "cluster " + std::to_string(config_.cluster);
    std::fprintf(stderr,
                 "World: reuse plan invalid for %dx%d grid (radius %d, %s%s)"
                 " — interfering cells would share primary channels\n",
                 config_.rows, config_.cols, config_.interference_radius,
                 plan_name.c_str(),
                 config_.wrap == cell::Wrap::kToroidal ? ", toroidal" : "");
    std::abort();
  }
  net_ = std::make_unique<net::Network>(
      sim_,
      latency_override ? std::move(latency_override)
                       : make_scenario_latency(config_),
      &grid_);
  net_->set_receiver([this](const net::Message& msg) {
    // HANDOFF is runner-level state migration, not protocol traffic: it is
    // intercepted here so allocator nodes (and their Lamport clocks) never
    // see it.
    if (msg.kind == net::MsgKind::kHandoff) {
      on_handoff_message(msg);
      return;
    }
    // A crashed MSS loses inbound protocol traffic permanently (the NIC
    // acks, the process is gone); senders resolve via their timeout
    // paths. A *resyncing* node receives normally — it must, to collect
    // its resync replies — it just admits no new traffic yet.
    if (crashes_on_ && crashed_[static_cast<std::size_t>(msg.to)] != 0) {
      return;
    }
    current_cell_ = msg.to;
    nodes_[static_cast<std::size_t>(msg.to)]->on_message(msg);
    flag_check(msg.to);
  });
  net_->set_observer([this](const net::Message& msg) { collector_.on_message(msg); });
  if (config_.fault.enabled()) {
    net_->enable_faults(config_.fault, config_.seed);
  }
  if (config_.fault.pauses()) {
    pause_rng_.reserve(static_cast<std::size_t>(grid_.n_cells()));
    for (cell::CellId c = 0; c < grid_.n_cells(); ++c) {
      pause_rng_.push_back(sim::RngStream::derive(
          config_.seed, 0x9a05e000ull + static_cast<std::uint64_t>(c)));
      schedule_pause_cycle(c);
    }
  }
  if (config_.fault.crashes()) {
    crashes_on_ = true;
    const auto nc = static_cast<std::size_t>(grid_.n_cells());
    crashed_.assign(nc, 0);
    down_since_.assign(nc, 0);
    restart_at_.assign(nc, 0);
    crash_rng_.reserve(nc);
    for (cell::CellId c = 0; c < grid_.n_cells(); ++c) {
      crash_rng_.push_back(sim::RngStream::derive(
          config_.seed, 0xCa45e000ull + static_cast<std::uint64_t>(c)));
      schedule_crash_cycle(c);
    }
  }

  const auto n = static_cast<std::size_t>(grid_.n_cells());
  truth_.assign(n, cell::ChannelSet(config_.n_channels));
  flags_.reset(n);
  node_rng_.reserve(n);
  for (cell::CellId c = 0; c < grid_.n_cells(); ++c) {
    node_rng_.push_back(
        sim::RngStream::derive(config_.seed, 0x90de000ull + static_cast<std::uint64_t>(c)));
  }

  policy_ = make_policy(config_);
  nodes_.reserve(n);
  for (cell::CellId c = 0; c < grid_.n_cells(); ++c) {
    proto::NodeContext ctx{c, &grid_, &plan_, this,
                           proto::Resilience{config_.request_timeout},
                           policy_.get()};
    nodes_.push_back(make_node(ctx, scheme_, config_));
  }
}

World::~World() = default;

void World::submit_call(const traffic::CallSpec& spec) {
  // Serial = encode(call id, hop 0): a pure function of the call, so the
  // classic and sharded engines agree on it without any shared counter.
  const std::uint64_t serial = traffic::mobility::encode_serial(spec.id, 0);
  if (crashes_on_ && down_now(spec.cell)) {
    reject_call_down(spec.cell, serial, spec.id, spec.holding,
                     /*is_handoff=*/false);
    return;
  }
  pending_[serial] = PendingCall{spec.id, spec.holding, /*is_handoff=*/false};
  collector_.open(serial, spec.id, spec.cell, sim_.now(), /*is_handoff=*/false);
  trace_call_event(sim::TraceKind::kRequest, spec.cell, cell::kNoChannel, serial);
  current_cell_ = spec.cell;
  nodes_[static_cast<std::size_t>(spec.cell)]->request_channel(serial);
  flag_check(spec.cell);
}

void World::flag_check(cell::CellId c) {
  const auto& node = *nodes_[static_cast<std::size_t>(c)];
  flags_.observe(c, sim_.now(), node.is_borrowing(), node.is_searching());
}

void World::finalize_neighbor_samples() {
  if (samples_final_) return;
  samples_final_ = true;
  flags_.apply_neighbor_samples(grid_, collector_.mutable_records());
}

void World::set_recorder(sim::TraceRecorder* rec) {
  recorder_ = rec;
  net_->set_recorder(rec);
}

sim::EventId World::schedule_in(sim::Duration delay, sim::TimerFn fn) {
  // A node timer can change the node's borrowing/searching flags, so the
  // timer fires through a wrapper that records them afterwards. The
  // wrapper (TimerFn plus owner bookkeeping) still nests inside the event
  // slab's EventFn as an ordinary inline callable — the timer path stays
  // allocation-free end to end.
  const cell::CellId owner = current_cell_;
  auto wrapped = [this, owner, f = std::move(fn)]() mutable {
    current_cell_ = owner;
    f();
    if (owner != cell::kNoCell) flag_check(owner);
  };
  static_assert(sim::EventFn::fits_inline<decltype(wrapped)>(),
                "wrapped TimerFn must nest inline inside EventFn");
  return sim_.schedule_in(delay, std::move(wrapped));
}

void World::cancel_scheduled(sim::EventId id) { sim_.cancel(id); }

void World::record(const sim::TraceEvent& ev) {
  if (recorder_ != nullptr) recorder_->emit(ev);
}

void World::trace_call_event(sim::TraceKind kind, cell::CellId cellId,
                             cell::ChannelId ch, std::uint64_t serial,
                             std::int64_t a) {
  if (recorder_ == nullptr) return;
  sim::TraceEvent e;
  e.kind = kind;
  e.t = sim_.now();
  e.cell = static_cast<std::int32_t>(cellId);
  e.channel = static_cast<std::int32_t>(ch);
  e.serial = serial;
  e.a = a;
  recorder_->emit(e);
}

void World::schedule_pause_cycle(cell::CellId c) {
  // Exponential gap between pause onsets, exponential pause length; each
  // cell draws from its own derived stream so the timeline is independent
  // of event interleaving. No new pause starts past the arrival horizon,
  // keeping the drain phase pause-free (quiescence stays reachable).
  auto& rng = pause_rng_[static_cast<std::size_t>(c)];
  const double gap_s =
      rng.exponential_mean(60.0 / config_.fault.pause_rate_per_min);
  const sim::SimTime at = sim_.now() + sim::from_seconds(gap_s);
  if (at >= config_.duration) return;
  const double len_s = rng.exponential_mean(config_.fault.pause_mean_s);
  const sim::Duration len = std::max<sim::Duration>(sim::from_seconds(len_s), 1);
  sim_.schedule_at(at, [this, c, len]() {
    net_->pause(c);
    sim_.schedule_in(len, [this, c]() {
      net_->resume(c);
      schedule_pause_cycle(c);
    });
  });
}

void World::schedule_crash_cycle(cell::CellId c) {
  // Exponential gap between crash onsets, exponential outage length; each
  // cell draws from its own derived stream (label 0xCa45e000 + c) so the
  // crash schedule is a pure function of (config, seed), independent of
  // event interleaving and identical across engines. No onset past the
  // arrival horizon: the drain phase restarts every down cell and then
  // stays crash-free, keeping quiescence reachable.
  auto& rng = crash_rng_[static_cast<std::size_t>(c)];
  const double gap_s =
      rng.exponential_mean(60.0 / config_.fault.crash_rate_per_min);
  const sim::SimTime at = sim_.now() + sim::from_seconds(gap_s);
  if (at >= config_.duration) return;
  const double len_s = rng.exponential_mean(config_.fault.crash_mean_s);
  const sim::Duration len = std::max<sim::Duration>(sim::from_seconds(len_s), 1);
  sim_.schedule_at(at, [this, c, len]() {
    crash_cell(c);
    sim_.schedule_in(len, [this, c]() {
      restart_cell(c);
      schedule_crash_cycle(c);
    });
  });
}

void World::crash_cell(cell::CellId c) {
  assert(crashed_[static_cast<std::size_t>(c)] == 0 && "crash while down");
  crashed_[static_cast<std::size_t>(c)] = 1;
  ++avail_.crashes;
  down_since_[static_cast<std::size_t>(c)] = sim_.now();

  // Live calls at c die with the MSS. Torn down in serial order (a
  // canonical order both engines share), with no protocol messages: the
  // neighbours learn of the crash from the silence (timeouts) and the
  // eventual resync round, exactly like a real outage.
  std::vector<std::uint64_t> torn;
  for (const auto& [serial, call] : active_) {
    if (call.cellId == c) torn.push_back(serial);
  }
  std::sort(torn.begin(), torn.end());
  trace_call_event(sim::TraceKind::kCrash, c, cell::kNoChannel, 0,
                   static_cast<std::int64_t>(torn.size()));
  for (const std::uint64_t serial : torn) {
    const auto it = active_.find(serial);
    const cell::ChannelId ch = it->second.channel;
    active_.erase(it);
    notify_released(c, ch);  // ground truth + usage + kRelease trace
  }

  // Wipe the allocator's volatile state; requests it was serving or
  // queueing resolve as blocked-down through the runner's own path.
  current_cell_ = c;
  const std::vector<std::uint64_t> lost =
      nodes_[static_cast<std::size_t>(c)]->crash_reset();
  for (const std::uint64_t serial : lost) {
    notify_blocked(c, serial, proto::Outcome::kBlockedDown, 0);
  }
  flag_check(c);
}

void World::restart_cell(cell::CellId c) {
  assert(crashed_[static_cast<std::size_t>(c)] != 0 && "restart while up");
  crashed_[static_cast<std::size_t>(c)] = 0;
  avail_.down_us +=
      static_cast<std::uint64_t>(sim_.now() - down_since_[static_cast<std::size_t>(c)]);
  restart_at_[static_cast<std::size_t>(c)] = sim_.now();
  trace_call_event(sim::TraceKind::kRestart, c, cell::kNoChannel, 0);
  current_cell_ = c;
  nodes_[static_cast<std::size_t>(c)]->begin_resync();
  flag_check(c);
}

void World::notify_resynced(cell::CellId cellId, int rounds) {
  ++avail_.resyncs;
  avail_.resync_us += static_cast<std::uint64_t>(
      sim_.now() - restart_at_[static_cast<std::size_t>(cellId)]);
  avail_.resync_rounds += static_cast<std::uint64_t>(rounds);
  avail_.max_resync_rounds = std::max(avail_.max_resync_rounds,
                                      static_cast<std::uint64_t>(rounds));
  trace_call_event(sim::TraceKind::kResyncDone, cellId, cell::kNoChannel, 0,
                   static_cast<std::int64_t>(rounds));
}

void World::reject_call_down(cell::CellId c, std::uint64_t serial,
                             traffic::CallId call, sim::Duration remaining,
                             bool is_handoff) {
  pending_[serial] = PendingCall{call, remaining, is_handoff};
  collector_.open(serial, call, c, sim_.now(), is_handoff);
  trace_call_event(sim::TraceKind::kRequest, c, cell::kNoChannel, serial);
  notify_blocked(c, serial, proto::Outcome::kBlockedDown, 0);
}

sim::SimTime World::now() const { return sim_.now(); }

void World::send(net::Message msg) { net_->send(std::move(msg)); }

sim::Duration World::latency_bound() const { return net_->max_one_way_latency(); }

sim::RngStream& World::rng(cell::CellId cellId) {
  return node_rng_[static_cast<std::size_t>(cellId)];
}

bool World::channel_usable(cell::CellId cellId, cell::ChannelId ch) const {
  return noise_.usable(cellId, ch, sim_.now());
}

void World::notify_acquired(cell::CellId cellId, std::uint64_t serial,
                            cell::ChannelId ch, proto::Outcome how, int attempts) {
  // ---- Theorem 1 invariant: no co-channel use within the reuse distance.
  for (const cell::CellId j : grid_.interference(cellId)) {
    if (truth_[static_cast<std::size_t>(j)].contains(ch)) {
      ++violations_;
      std::fprintf(stderr,
                   "[T1 VIOLATION] t=%lld cell=%d ch=%d how=%s attempts=%d "
                   "conflicts with cell=%d (primary-of-acquirer=%d "
                   "primary-of-holder=%d dist=%d)\n",
                   static_cast<long long>(sim_.now()), cellId, ch,
                   proto::outcome_name(how).c_str(), attempts, j,
                   static_cast<int>(plan_.is_primary(cellId, ch)),
                   static_cast<int>(plan_.is_primary(j, ch)),
                   grid_.distance(cellId, j));
      assert(false && "co-channel interference: Theorem 1 violated");
    }
  }
  truth_[static_cast<std::size_t>(cellId)].insert(ch);
  accumulate_usage();
  ++channels_in_use_;
  trace_call_event(sim::TraceKind::kAcquire, cellId, ch, serial,
                   static_cast<std::int64_t>(how));

  // Neighbour N_borrow / N_search samples are reconstructed from the flag
  // timelines at finalize time (shared convention with the sharded
  // engine); only the self-searching term — legacy adds it for
  // acquisitions only — is taken live.
  const int searching_self =
      nodes_[static_cast<std::size_t>(cellId)]->is_searching() ? 1 : 0;
  collector_.close(serial, sim_.now(), how, attempts, 0, searching_self);

  const auto it = pending_.find(serial);
  assert(it != pending_.end());
  const PendingCall pc = it->second;
  pending_.erase(it);

  ActiveCall state;
  state.call = pc.call;
  state.cellId = cellId;
  state.channel = ch;
  state.ends = sim_.now() + pc.remaining;
  schedule_call_progress(serial, state);
}

void World::schedule_call_progress(std::uint64_t serial, ActiveCall state) {
  active_[serial] = state;
  sim::SimTime next_event = state.ends;
  if (config_.mean_dwell_s > 0.0) {
    // Dwell is a pure function of (seed, serial): the sharded engine draws
    // the same value on whichever shard hosts the call.
    const sim::Duration dwell =
        traffic::mobility::dwell(config_.seed, serial, config_.mean_dwell_s);
    if (sim_.now() + dwell < state.ends) next_event = sim_.now() + dwell;
  }
  sim_.schedule_at(next_event, [this, serial]() { end_or_handoff(serial); });
}

void World::end_or_handoff(std::uint64_t serial) {
  const auto it = active_.find(serial);
  if (it == active_.end()) return;  // torn down by a crash
  const ActiveCall state = it->second;
  active_.erase(it);

  // Release in the current cell either way.
  current_cell_ = state.cellId;
  nodes_[static_cast<std::size_t>(state.cellId)]->release_channel(state.channel,
                                                                  serial);
  flag_check(state.cellId);

  if (sim_.now() >= state.ends) return;  // call completed normally

  // Handoff: the mobile moved to a random neighbouring cell mid-call. The
  // call's state (identity, absolute end time) travels to the destination
  // as a HANDOFF message over the ordinary network — which is what lets
  // the sharded engine migrate calls across shard boundaries through its
  // outboxes — and the destination issues the fresh channel request when
  // the message lands.
  const auto neigh = grid_.neighbors(state.cellId);
  if (neigh.empty()) return;
  const std::uint64_t hop = traffic::mobility::hop_of(serial) + 1;
  const cell::CellId dest = neigh[traffic::mobility::pick_neighbor(
      config_.seed, serial, neigh.size())];
  const std::uint64_t new_serial =
      traffic::mobility::encode_serial(traffic::mobility::call_of(serial), hop);
  trace_handoff(sim::TraceKind::kHandoffLeave, state.cellId, dest, new_serial,
                static_cast<std::int64_t>(hop), state.ends);
  net::Message msg;
  msg.kind = net::MsgKind::kHandoff;
  msg.from = state.cellId;
  msg.to = dest;
  msg.serial = new_serial;
  msg.ts.count = static_cast<std::uint64_t>(state.ends);
  net_->send(msg);
}

void World::on_handoff_message(const net::Message& msg) {
  const auto ends = static_cast<sim::SimTime>(msg.ts.count);
  const std::uint64_t hop = traffic::mobility::hop_of(msg.serial);
  trace_handoff(sim::TraceKind::kHandoffRecv, msg.to, msg.from, msg.serial,
                static_cast<std::int64_t>(hop), ends);
  if (ends <= sim_.now()) return;  // call expired while in transit
  const auto call = static_cast<traffic::CallId>(
      traffic::mobility::call_of(msg.serial));
  if (crashes_on_ && down_now(msg.to)) {
    // Graceful degradation: the destination MSS cannot admit the call.
    reject_call_down(msg.to, msg.serial, call, ends - sim_.now(),
                     /*is_handoff=*/true);
    return;
  }
  pending_[msg.serial] =
      PendingCall{call, ends - sim_.now(), /*is_handoff=*/true};
  collector_.open(msg.serial, call, msg.to, sim_.now(), /*is_handoff=*/true);
  trace_call_event(sim::TraceKind::kRequest, msg.to, cell::kNoChannel,
                   msg.serial);
  current_cell_ = msg.to;
  nodes_[static_cast<std::size_t>(msg.to)]->request_channel(msg.serial);
  flag_check(msg.to);
}

void World::trace_handoff(sim::TraceKind kind, cell::CellId cellId,
                          cell::CellId peer, std::uint64_t serial,
                          std::int64_t hop, sim::SimTime ends) {
  if (recorder_ == nullptr) return;
  sim::TraceEvent e;
  e.kind = kind;
  e.t = sim_.now();
  e.cell = static_cast<std::int32_t>(cellId);
  e.peer = static_cast<std::int32_t>(peer);
  e.serial = serial;
  e.a = hop;
  e.b = static_cast<std::int64_t>(ends);
  recorder_->emit(e);
}

void World::notify_blocked(cell::CellId cellId, std::uint64_t serial,
                           proto::Outcome why, int attempts) {
  // Neighbour samples are deferred to finalize_neighbor_samples().
  collector_.close(serial, sim_.now(), why, attempts, 0, 0);
  pending_.erase(serial);
  trace_call_event(sim::TraceKind::kBlock, cellId, cell::kNoChannel, serial,
                   static_cast<std::int64_t>(why));
}

void World::notify_released(cell::CellId cellId, cell::ChannelId ch) {
  assert(truth_[static_cast<std::size_t>(cellId)].contains(ch));
  truth_[static_cast<std::size_t>(cellId)].erase(ch);
  accumulate_usage();
  --channels_in_use_;
  assert(channels_in_use_ >= 0);
  trace_call_event(sim::TraceKind::kRelease, cellId, ch, 0);
}

void World::notify_reassigned(cell::CellId cellId, cell::ChannelId from_ch,
                              cell::ChannelId to_ch) {
  // Same Theorem-1 check as a fresh acquisition of to_ch.
  for (const cell::CellId j : grid_.interference(cellId)) {
    if (truth_[static_cast<std::size_t>(j)].contains(to_ch)) {
      ++violations_;
      std::fprintf(stderr,
                   "[T1 VIOLATION] t=%lld cell=%d reassign %d->%d conflicts "
                   "with cell=%d\n",
                   static_cast<long long>(sim_.now()), cellId, from_ch, to_ch, j);
      assert(false && "co-channel interference on reassignment");
    }
  }
  assert(truth_[static_cast<std::size_t>(cellId)].contains(from_ch));
  truth_[static_cast<std::size_t>(cellId)].erase(from_ch);
  truth_[static_cast<std::size_t>(cellId)].insert(to_ch);
  ++reassignments_;
  // serial 0 = reassignment, no open request attached (see checker).
  trace_call_event(sim::TraceKind::kRelease, cellId, from_ch, 0);
  trace_call_event(sim::TraceKind::kAcquire, cellId, to_ch, 0);

  // Re-key the active call carried on from_ch.
  for (auto& [serial, call] : active_) {
    if (call.cellId == cellId && call.channel == from_ch) {
      call.channel = to_ch;
      return;
    }
  }
  assert(false && "reassignment of a channel with no active call");
}

void World::accumulate_usage() {
  usage_integral_ += static_cast<double>(sim_.now() - last_usage_change_) *
                     static_cast<double>(channels_in_use_);
  last_usage_change_ = sim_.now();
}

double World::carried_erlangs(sim::SimTime horizon) const {
  if (horizon <= 0) return 0.0;
  double integral = usage_integral_;
  if (last_usage_change_ < horizon) {
    integral += static_cast<double>(horizon - last_usage_change_) *
                static_cast<double>(channels_in_use_);
  }
  return integral / static_cast<double>(horizon);
}

bool World::quiescent() const {
  if (!pending_.empty()) return false;
  if (collector_.open_count() != 0) return false;
  for (const auto& n : nodes_) {
    if (n->busy() || n->queued() != 0 || n->resyncing()) return false;
  }
  return true;
}

}  // namespace dca::runner
