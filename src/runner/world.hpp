// The World: one fully assembled simulated cellular system — grid, reuse
// plan, network, one allocator node per cell, metrics collector, call
// lifecycle management, and the global safety invariant checker.
//
// The World implements proto::NodeEnv, so nodes see it as their
// environment. It owns the ground truth of channel usage and verifies the
// paper's Theorem 1 (no co-channel interference within the reuse distance)
// at every single acquisition; violations are counted and, in debug
// builds, assert.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cell/grid.hpp"
#include "cell/reuse.hpp"
#include "metrics/availability.hpp"
#include "metrics/collector.hpp"
#include "net/network.hpp"
#include "proto/allocator.hpp"
#include "radio/noise.hpp"
#include "runner/flag_timeline.hpp"
#include "runner/scenario.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "traffic/call.hpp"

namespace dca::runner {

class World final : public proto::NodeEnv {
 public:
  /// Builds the world; `latency_override` (optional) replaces the scenario
  /// latency model (used by the Fig. 11 scripted scenario).
  World(const ScenarioConfig& config, Scheme scheme,
        std::unique_ptr<net::LatencyModel> latency_override = nullptr);
  ~World() override;

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Offers one call to the system: opens its metrics record and submits
  /// the channel request to the arrival cell's MSS.
  void submit_call(const traffic::CallSpec& spec);

  // -- NodeEnv ------------------------------------------------------------
  [[nodiscard]] sim::SimTime now() const override;
  void send(net::Message msg) override;
  [[nodiscard]] sim::Duration latency_bound() const override;
  void notify_acquired(cell::CellId cellId, std::uint64_t serial, cell::ChannelId ch,
                       proto::Outcome how, int attempts) override;
  void notify_blocked(cell::CellId cellId, std::uint64_t serial, proto::Outcome why,
                      int attempts) override;
  void notify_released(cell::CellId cellId, cell::ChannelId ch) override;
  void notify_reassigned(cell::CellId cellId, cell::ChannelId from_ch,
                         cell::ChannelId to_ch) override;
  void notify_resynced(cell::CellId cellId, int rounds) override;
  sim::RngStream& rng(cell::CellId cellId) override;
  sim::EventId schedule_in(sim::Duration delay, sim::TimerFn fn) override;
  void cancel_scheduled(sim::EventId id) override;
  void record(const sim::TraceEvent& ev) override;
  [[nodiscard]] bool channel_usable(cell::CellId cellId,
                                    cell::ChannelId ch) const override;

  /// Attaches a structured-trace sink (also wired into the network for
  /// fault/pause events). Call before running; pass nullptr to detach.
  void set_recorder(sim::TraceRecorder* rec);

  // -- accessors ------------------------------------------------------------
  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] net::Network& network() noexcept { return *net_; }
  [[nodiscard]] const cell::HexGrid& grid() const noexcept { return grid_; }
  [[nodiscard]] const cell::ReusePlan& plan() const noexcept { return plan_; }
  [[nodiscard]] proto::AllocatorNode& node(cell::CellId c) {
    return *nodes_[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] const proto::AllocatorNode& node(cell::CellId c) const {
    return *nodes_[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] metrics::Collector& collector() noexcept { return collector_; }
  [[nodiscard]] const metrics::Collector& collector() const noexcept {
    return collector_;
  }
  [[nodiscard]] const ScenarioConfig& config() const noexcept { return config_; }
  [[nodiscard]] Scheme scheme() const noexcept { return scheme_; }

  /// Theorem 1 violations observed (must stay 0).
  [[nodiscard]] std::uint64_t interference_violations() const noexcept {
    return violations_;
  }
  /// Intra-cell channel reassignments performed (repacking extension).
  [[nodiscard]] std::uint64_t reassignments() const noexcept {
    return reassignments_;
  }
  /// Crash/resync availability accounting (all zeros with crashes off).
  [[nodiscard]] const metrics::Availability& availability() const noexcept {
    return avail_;
  }
  /// Is cell c currently crashed or still resynchronizing?
  [[nodiscard]] bool down_now(cell::CellId c) const {
    return (crashes_on_ && crashed_[static_cast<std::size_t>(c)] != 0) ||
           nodes_[static_cast<std::size_t>(c)]->resyncing();
  }
  /// Calls currently holding a channel.
  [[nodiscard]] std::size_t active_calls() const noexcept { return active_.size(); }

  /// Ground-truth usage of a cell (for tests: must equal node(c).in_use()).
  [[nodiscard]] const cell::ChannelSet& ground_truth_use(cell::CellId c) const {
    return truth_[static_cast<std::size_t>(c)];
  }

  /// Asserts end-of-run quiescence sanity (Theorem 2 style checks): no
  /// open requests remain once the event queue drains. Returns true if ok.
  [[nodiscard]] bool quiescent() const;

  /// Carried traffic in Erlangs: the time-weighted mean number of channels
  /// simultaneously in use system-wide, integrated up to `horizon` (pass
  /// the run duration; the integral freezes once usage stops changing).
  [[nodiscard]] double carried_erlangs(sim::SimTime horizon) const;

  /// Fills every closed record's N_borrow / N_search neighbour samples
  /// from the flag timelines (the shared deferred-sampling convention of
  /// flag_timeline.hpp — identical to the sharded engine's merge step).
  /// Call once after the run, before aggregating records; idempotent.
  void finalize_neighbor_samples();

 private:
  struct ActiveCall {
    traffic::CallId call = 0;
    cell::CellId cellId = cell::kNoCell;
    cell::ChannelId channel = cell::kNoChannel;
    sim::SimTime ends = 0;  // absolute completion time of the whole call
  };
  struct PendingCall {
    traffic::CallId call = 0;
    sim::Duration remaining = 0;  // holding time still owed at grant
    bool is_handoff = false;
  };

  void end_or_handoff(std::uint64_t serial);
  void on_handoff_message(const net::Message& msg);
  void flag_check(cell::CellId c);
  void schedule_call_progress(std::uint64_t serial, ActiveCall state);
  void schedule_pause_cycle(cell::CellId c);
  void schedule_crash_cycle(cell::CellId c);
  void crash_cell(cell::CellId c);
  void restart_cell(cell::CellId c);
  /// Opens and immediately blocks a call offered to a down cell.
  void reject_call_down(cell::CellId c, std::uint64_t serial,
                        traffic::CallId call, sim::Duration remaining,
                        bool is_handoff);
  void trace_call_event(sim::TraceKind kind, cell::CellId cellId,
                        cell::ChannelId ch, std::uint64_t serial,
                        std::int64_t a = 0);
  void trace_handoff(sim::TraceKind kind, cell::CellId cellId,
                     cell::CellId peer, std::uint64_t serial, std::int64_t hop,
                     sim::SimTime ends);

  ScenarioConfig config_;
  Scheme scheme_;
  sim::Simulator sim_;
  cell::HexGrid grid_;
  cell::ReusePlan plan_;
  std::unique_ptr<net::Network> net_;
  // Shared by every node; must outlive nodes_ (declared before it).
  std::unique_ptr<const proto::AllocationPolicy> policy_;
  std::vector<std::unique_ptr<proto::AllocatorNode>> nodes_;
  std::vector<sim::RngStream> node_rng_;
  std::vector<sim::RngStream> pause_rng_;  // per-cell MSS pause timeline
  std::vector<sim::RngStream> crash_rng_;  // per-cell crash/restart timeline
  radio::NoiseField noise_;
  metrics::Collector collector_;
  sim::TraceRecorder* recorder_ = nullptr;

  std::unordered_map<std::uint64_t, PendingCall> pending_;  // serial -> in-flight
  std::unordered_map<std::uint64_t, ActiveCall> active_;    // serial -> holding

  // Deferred N_borrow / N_search sampling (shared with the sharded
  // engine): flag timelines recorded after every node-touching event,
  // reconstructed into the records by finalize_neighbor_samples().
  FlagTimelines flags_;
  cell::CellId current_cell_ = cell::kNoCell;  // cell whose code is running
  bool samples_final_ = false;
  std::vector<cell::ChannelSet> truth_;                     // ground-truth usage
  std::uint64_t violations_ = 0;
  std::uint64_t reassignments_ = 0;

  // Crash-recovery state (sized even with crashes off; cheap).
  bool crashes_on_ = false;
  std::vector<std::uint8_t> crashed_;        // currently off the air
  std::vector<sim::SimTime> down_since_;     // crash instant, per cell
  std::vector<sim::SimTime> restart_at_;     // last restart instant, per cell
  metrics::Availability avail_;

  // Time-weighted channel-usage integral (channel-microseconds).
  void accumulate_usage();
  double usage_integral_ = 0.0;
  std::int64_t channels_in_use_ = 0;
  sim::SimTime last_usage_change_ = 0;
};

}  // namespace dca::runner
