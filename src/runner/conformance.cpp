#include "runner/conformance.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "metrics/json.hpp"

namespace dca::runner {

std::string ConformanceReport::to_string(std::size_t max_lines) const {
  std::ostringstream os;
  os << violations.size() << " violation(s) over " << events << " events";
  std::size_t shown = 0;
  for (const auto& v : violations) {
    if (shown++ == max_lines) {
      os << "\n  ... (" << violations.size() - max_lines << " more)";
      break;
    }
    os << "\n  [" << v.rule << "] t=" << v.t << " " << v.detail;
  }
  return os.str();
}

ConformanceChecker::ConformanceChecker(const cell::HexGrid& grid, int n_channels)
    : grid_(grid), n_channels_(n_channels) {
  held_.assign(static_cast<std::size_t>(grid.n_cells()),
               cell::ChannelSet(n_channels));
  down_.assign(static_cast<std::size_t>(grid.n_cells()), 0);
  resyncing_.assign(static_cast<std::size_t>(grid.n_cells()), 0);
}

void ConformanceChecker::violate(const sim::TraceEvent& ev, std::string rule,
                                 std::string detail) {
  report_.violations.push_back(
      ConformanceViolation{std::move(rule), ev.t, std::move(detail)});
}

void ConformanceChecker::feed(const sim::TraceEvent& ev) {
  ++report_.events;
  if (ev.t < last_t_) {
    violate(ev, "time-order", "event timestamp went backwards (prev=" +
                                  std::to_string(last_t_) + ")");
  }
  last_t_ = ev.t;

  const auto cell_str = [&ev]() { return "cell=" + std::to_string(ev.cell); };
  const auto in_grid = [this](std::int32_t c) {
    return c >= 0 && c < grid_.n_cells();
  };

  switch (ev.kind) {
    case sim::TraceKind::kRequest: {
      if (!in_grid(ev.cell)) {
        violate(ev, "bad-cell", cell_str());
        return;
      }
      if (!open_.emplace(ev.serial, ev.cell).second) {
        violate(ev, "duplicate-request",
                "serial " + std::to_string(ev.serial) + " already open");
      }
      break;
    }

    case sim::TraceKind::kAcquire: {
      if (!in_grid(ev.cell)) {
        violate(ev, "bad-cell", cell_str());
        return;
      }
      // serial == 0 marks an intra-cell reassignment (no request involved).
      if (ev.serial != 0 && open_.erase(ev.serial) == 0) {
        violate(ev, "acquire-without-request",
                cell_str() + " serial=" + std::to_string(ev.serial));
      }
      if (ev.channel < 0 || ev.channel >= n_channels_) {
        violate(ev, "bad-channel", cell_str() + " ch=" + std::to_string(ev.channel));
        return;
      }
      const auto c = static_cast<std::size_t>(ev.cell);
      if (down_[c] != 0 || resyncing_[c] != 0) {
        // A down MSS admits no traffic; a resyncing one answers peers but
        // must not grab spectrum before it has re-learned the region.
        violate(ev, "acquire-while-down",
                cell_str() + (down_[c] != 0 ? " is crashed" : " is resyncing"));
      }
      if (held_[c].contains(ev.channel)) {
        violate(ev, "double-acquire",
                cell_str() + " already holds ch=" + std::to_string(ev.channel));
        return;
      }
      for (const cell::CellId j : grid_.interference(ev.cell)) {
        if (held_[static_cast<std::size_t>(j)].contains(ev.channel)) {
          violate(ev, "reuse-distance",
                  cell_str() + " ch=" + std::to_string(ev.channel) +
                      " also held by interfering cell=" + std::to_string(j));
        }
      }
      held_[c].insert(ev.channel);
      break;
    }

    case sim::TraceKind::kRelease: {
      if (!in_grid(ev.cell)) {
        violate(ev, "bad-cell", cell_str());
        return;
      }
      const auto c = static_cast<std::size_t>(ev.cell);
      if (!held_[c].contains(ev.channel)) {
        violate(ev, "phantom-release",
                cell_str() + " does not hold ch=" + std::to_string(ev.channel));
        return;
      }
      held_[c].erase(ev.channel);
      break;
    }

    case sim::TraceKind::kBlock: {
      if (open_.erase(ev.serial) == 0) {
        violate(ev, "block-without-request",
                cell_str() + " serial=" + std::to_string(ev.serial));
      }
      break;
    }

    case sim::TraceKind::kSearchStart: {
      if (!in_grid(ev.cell)) {
        violate(ev, "bad-cell", cell_str());
        return;
      }
      const auto c = static_cast<std::size_t>(ev.cell);
      if (down_[c] != 0 || resyncing_[c] != 0) {
        violate(ev, "search-while-down",
                cell_str() + (down_[c] != 0 ? " is crashed" : " is resyncing"));
      }
      OpenSearch s;
      s.serial = ev.serial;
      s.ts_count = ev.a;
      s.ts_node = ev.b;
      s.started = ev.t;
      if (!searching_.emplace(ev.cell, s).second) {
        violate(ev, "overlapping-search",
                cell_str() + " started a search while one is open");
      }
      break;
    }

    case sim::TraceKind::kSearchDecide: {
      const auto it = searching_.find(ev.cell);
      if (it == searching_.end() || it->second.serial != ev.serial) {
        violate(ev, "decide-without-search",
                cell_str() + " serial=" + std::to_string(ev.serial));
        return;
      }
      const OpenSearch mine = it->second;
      searching_.erase(it);
      if (ev.b != 0) ++report_.timeout_aborts;
      if (ev.a == 0) break;  // no selection: nothing to order-check
      // Successful selection: no interfering search with an OLDER
      // timestamp, begun no later than ours, may still be undecided — the
      // sequencing discipline says the older search concludes first.
      for (const cell::CellId j : grid_.interference(ev.cell)) {
        const auto jt = searching_.find(j);
        if (jt == searching_.end()) continue;
        const OpenSearch& other = jt->second;
        if (other.started <= mine.started &&
            ts_less(other.ts_count, other.ts_node, mine.ts_count, mine.ts_node)) {
          violate(ev, "search-order",
                  cell_str() + " decided ch=" + std::to_string(ev.channel) +
                      " while older search at cell=" + std::to_string(j) +
                      " (ts=" + std::to_string(other.ts_count) + "." +
                      std::to_string(other.ts_node) + ") is undecided");
        }
      }
      break;
    }

    case sim::TraceKind::kTimeout:
      ++report_.timeouts;
      break;

    case sim::TraceKind::kPause:
    case sim::TraceKind::kResume:
    case sim::TraceKind::kDrop:
    case sim::TraceKind::kDup:
    case sim::TraceKind::kRetransmit:
      break;  // fault-layer bookkeeping, no invariant attached

    case sim::TraceKind::kHandoffLeave: {
      if (!in_grid(ev.cell) || !in_grid(ev.peer)) {
        violate(ev, "bad-cell", cell_str() + " peer=" + std::to_string(ev.peer));
        return;
      }
      if (!migrating_.emplace(ev.serial, ev.peer).second) {
        violate(ev, "duplicate-handoff-leave",
                "serial " + std::to_string(ev.serial) + " already in flight");
      }
      break;
    }

    case sim::TraceKind::kHandoffRecv: {
      const auto it = migrating_.find(ev.serial);
      if (it == migrating_.end()) {
        violate(ev, "recv-without-leave",
                cell_str() + " serial=" + std::to_string(ev.serial));
        return;
      }
      if (it->second != ev.cell) {
        violate(ev, "handoff-misrouted",
                "serial=" + std::to_string(ev.serial) + " left towards cell=" +
                    std::to_string(it->second) + " but arrived at " + cell_str());
      }
      migrating_.erase(it);
      break;
    }

    case sim::TraceKind::kCrash: {
      if (!in_grid(ev.cell)) {
        violate(ev, "bad-cell", cell_str());
        return;
      }
      const auto c = static_cast<std::size_t>(ev.cell);
      ++report_.crashes;
      if (down_[c] != 0) {
        violate(ev, "crash-while-down", cell_str() + " crashed twice");
      }
      // Crashing mid-resync is legal (outages do not wait for protocol
      // rounds); the interrupted resync simply never reports done.
      down_[c] = 1;
      resyncing_[c] = 0;
      // The crash wipes the node's volatile protocol state, so a search
      // open at the crash instant vanishes without a kSearchDecide; its
      // serial is closed by the runner's teardown kBlock. Peers abort
      // their own rounds on the kResyncReq, so the ordering discipline
      // restarts cleanly — drop the phantom search.
      searching_.erase(ev.cell);
      break;
    }

    case sim::TraceKind::kRestart: {
      if (!in_grid(ev.cell)) {
        violate(ev, "bad-cell", cell_str());
        return;
      }
      const auto c = static_cast<std::size_t>(ev.cell);
      if (down_[c] == 0) {
        violate(ev, "restart-while-up", cell_str() + " was not crashed");
      }
      // The crash teardown must have released every held channel before
      // the cell comes back: anything still held leaked across the outage.
      for (cell::ChannelId ch = held_[c].first(); ch != cell::kNoChannel;
           ch = held_[c].next_after(ch)) {
        violate(ev, "held-through-crash",
                cell_str() + " still holds ch=" + std::to_string(ch) +
                    " at restart");
      }
      down_[c] = 0;
      resyncing_[c] = 1;
      break;
    }

    case sim::TraceKind::kResyncDone: {
      if (!in_grid(ev.cell)) {
        violate(ev, "bad-cell", cell_str());
        return;
      }
      const auto c = static_cast<std::size_t>(ev.cell);
      if (resyncing_[c] == 0) {
        violate(ev, "resync-without-restart",
                cell_str() + " reported resync while not resyncing");
      }
      resyncing_[c] = 0;
      ++report_.resyncs;
      break;
    }

    case sim::TraceKind::kRunEnd: {
      report_.saw_run_end = true;
      if (ev.a == 0) {
        violate(ev, "not-quiescent", "run ended before the system drained");
      }
      break;
    }
  }
}

ConformanceReport ConformanceChecker::finish() {
  sim::TraceEvent end;
  end.kind = sim::TraceKind::kRunEnd;
  end.t = last_t_;
  for (std::size_t c = 0; c < held_.size(); ++c) {
    for (cell::ChannelId ch = held_[c].first(); ch != cell::kNoChannel;
         ch = held_[c].next_after(ch)) {
      violate(end, "leaked-channel",
              "cell=" + std::to_string(c) + " still holds ch=" +
                  std::to_string(ch) + " at run end");
    }
  }
  for (const auto& [serial, cellId] : open_) {
    violate(end, "wedged-call",
            "serial=" + std::to_string(serial) + " at cell=" +
                std::to_string(cellId) + " never completed");
  }
  for (const auto& [cellId, s] : searching_) {
    violate(end, "unclosed-search",
            "cell=" + std::to_string(cellId) + " serial=" +
                std::to_string(s.serial) + " never decided");
  }
  for (const auto& [serial, dest] : migrating_) {
    // The transport is reliable (drops are retransmitted), so a leave
    // whose recv never appears means the call was lost in migration.
    violate(end, "lost-handoff",
            "serial=" + std::to_string(serial) + " left towards cell=" +
                std::to_string(dest) + " but never arrived");
  }
  for (std::size_t c = 0; c < down_.size(); ++c) {
    // The drain phase restarts every down cell and completes every resync
    // (quiescence requires it), so neither state may survive the run.
    if (down_[c] != 0) {
      violate(end, "down-at-end",
              "cell=" + std::to_string(c) + " still crashed at run end");
    }
    if (resyncing_[c] != 0) {
      violate(end, "unresynced-at-end",
              "cell=" + std::to_string(c) + " never finished resyncing");
    }
  }
  return report_;
}

ConformanceReport check_trace(const cell::HexGrid& grid, int n_channels,
                              const std::vector<sim::TraceEvent>& trace) {
  ConformanceChecker checker(grid, n_channels);
  for (const auto& ev : trace) checker.feed(ev);
  return checker.finish();
}

// ---------------------------------------------------------------------------
// JSONL round-trip
// ---------------------------------------------------------------------------

std::string trace_event_to_json(const sim::TraceEvent& e) {
  metrics::JsonWriter w;
  w.begin_object();
  w.key("k");
  w.value(sim::trace_kind_name(e.kind));
  w.key("t");
  w.value(static_cast<std::int64_t>(e.t));
  w.key("cell");
  w.value(e.cell);
  w.key("peer");
  w.value(e.peer);
  w.key("ch");
  w.value(e.channel);
  w.key("serial");
  w.value(e.serial);
  w.key("a");
  w.value(e.a);
  w.key("b");
  w.value(e.b);
  w.end_object();
  return w.str();
}

std::string trace_to_jsonl(const std::vector<sim::TraceEvent>& trace) {
  std::ostringstream os;
  for (const auto& e : trace) os << trace_event_to_json(e) << '\n';
  return os.str();
}

TraceDiffResult diff_traces(const std::vector<sim::TraceEvent>& a,
                            const std::vector<sim::TraceEvent>& b) {
  TraceDiffResult r;
  r.size_a = a.size();
  r.size_b = b.size();
  const std::size_t common = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (a[i] == b[i]) continue;
    r.index = i;
    std::ostringstream os;
    os << "event " << i << " differs:\n  A: " << trace_event_to_json(a[i])
       << "\n  B: " << trace_event_to_json(b[i]);
    r.description = os.str();
    return r;
  }
  if (a.size() != b.size()) {
    r.index = common;
    const auto& longer = a.size() > b.size() ? a : b;
    std::ostringstream os;
    os << "traces agree on the first " << common << " events, then "
       << (a.size() > b.size() ? "A" : "B") << " continues with "
       << (longer.size() - common) << " more, first extra:\n  "
       << trace_event_to_json(longer[common]);
    r.description = os.str();
    return r;
  }
  r.identical = true;
  return r;
}

namespace {

// Extracts the raw value token following `"key":` in a single-line JSON
// object with the fixed schema above (no nesting, no spaces required).
bool raw_field(const std::string& line, const std::string& key, std::string& out) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  std::size_t begin = pos + needle.size();
  std::size_t end = begin;
  if (begin < line.size() && line[begin] == '"') {
    end = line.find('"', begin + 1);
    if (end == std::string::npos) return false;
    out = line.substr(begin + 1, end - begin - 1);
    return true;
  }
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  out = line.substr(begin, end - begin);
  return !out.empty();
}

bool int_field(const std::string& line, const std::string& key, std::int64_t& out) {
  std::string raw;
  if (!raw_field(line, key, raw)) return false;
  char* end = nullptr;
  out = std::strtoll(raw.c_str(), &end, 10);
  return end != raw.c_str() && *end == '\0';
}

bool kind_from_name(const std::string& name, sim::TraceKind& out) {
  for (int k = 0; k <= static_cast<int>(sim::TraceKind::kResyncDone); ++k) {
    const auto kind = static_cast<sim::TraceKind>(k);
    if (name == sim::trace_kind_name(kind)) {
      out = kind;
      return true;
    }
  }
  return false;
}

}  // namespace

bool trace_from_jsonl(const std::string& text, std::vector<sim::TraceEvent>& out,
                      std::string& error) {
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    const auto fail = [&](const char* what) {
      error = "line " + std::to_string(lineno) + ": " + what;
      return false;
    };
    std::string kname;
    if (!raw_field(line, "k", kname)) return fail("missing \"k\"");
    sim::TraceEvent e;
    if (!kind_from_name(kname, e.kind)) return fail("unknown event kind");
    std::int64_t v = 0;
    if (!int_field(line, "t", v)) return fail("missing \"t\"");
    e.t = v;
    if (!int_field(line, "cell", v)) return fail("missing \"cell\"");
    e.cell = static_cast<std::int32_t>(v);
    if (!int_field(line, "peer", v)) return fail("missing \"peer\"");
    e.peer = static_cast<std::int32_t>(v);
    if (!int_field(line, "ch", v)) return fail("missing \"ch\"");
    e.channel = static_cast<std::int32_t>(v);
    if (!int_field(line, "serial", v)) return fail("missing \"serial\"");
    e.serial = static_cast<std::uint64_t>(v);
    if (!int_field(line, "a", e.a)) return fail("missing \"a\"");
    if (!int_field(line, "b", e.b)) return fail("missing \"b\"");
    out.push_back(e);
  }
  return true;
}

}  // namespace dca::runner
