// A small command-line option parser for the simulation tools.
//
// Supports `--name value` and `--flag` (boolean) options with typed
// accessors, defaults, and generated --help text. Unknown options are an
// error (fail fast beats silently ignored typos in experiment scripts).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dca::runner {

class ArgParser {
 public:
  /// `program` and `summary` feed the --help header.
  ArgParser(std::string program, std::string summary);

  // Option registration (call before parse()). Returns *this for chaining.
  ArgParser& add_string(const std::string& name, std::string default_value,
                        const std::string& help);
  ArgParser& add_int(const std::string& name, std::int64_t default_value,
                     const std::string& help);
  ArgParser& add_double(const std::string& name, double default_value,
                        const std::string& help);
  ArgParser& add_flag(const std::string& name, const std::string& help);

  /// Parses argv. Returns false (with `error()` set) on malformed input;
  /// sets `help_requested()` when --help / -h is present.
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  [[nodiscard]] const std::string& error() const noexcept { return error_; }
  [[nodiscard]] bool help_requested() const noexcept { return help_; }
  [[nodiscard]] std::string help_text() const;

  // Typed accessors (abort on unknown name — a programming error).
  [[nodiscard]] std::string get_string(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_flag(const std::string& name) const;

  /// True when the user supplied the option explicitly.
  [[nodiscard]] bool was_set(const std::string& name) const;

 private:
  enum class Kind { kString, kInt, kDouble, kFlag };
  struct Option {
    Kind kind = Kind::kString;
    std::string default_value;
    std::string value;
    std::string help;
    bool set = false;
  };

  const Option* find(const std::string& name, Kind kind) const;

  std::string program_;
  std::string summary_;
  std::vector<std::string> order_;
  std::map<std::string, Option> options_;
  std::string error_;
  bool help_ = false;
};

}  // namespace dca::runner
