#include "runner/config_file.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace dca::runner {

namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

bool parse_bool(const std::string& v, bool& out) {
  if (v == "true" || v == "1" || v == "yes" || v == "on") {
    out = true;
    return true;
  }
  if (v == "false" || v == "0" || v == "no" || v == "off") {
    out = false;
    return true;
  }
  return false;
}

bool parse_int(const std::string& v, std::int64_t& out) {
  char* end = nullptr;
  out = std::strtoll(v.c_str(), &end, 10);
  return end != v.c_str() && *end == '\0';
}

bool parse_double(const std::string& v, double& out) {
  char* end = nullptr;
  out = std::strtod(v.c_str(), &end);
  return end != v.c_str() && *end == '\0';
}

/// "<cell>[,<cell>...] @ <start_s>..<end_s>"  (seconds, decimals allowed).
bool parse_partition_spec(const std::string& v, net::PartitionSpec& out) {
  const auto at = v.find('@');
  if (at == std::string::npos) return false;
  std::istringstream cells(trim(v.substr(0, at)));
  std::string tok;
  while (std::getline(cells, tok, ',')) {
    std::int64_t c = 0;
    if (!parse_int(trim(tok), c)) return false;
    out.cells.push_back(static_cast<cell::CellId>(c));
  }
  if (out.cells.empty()) return false;
  const std::string range = trim(v.substr(at + 1));
  const auto dots = range.find("..");
  if (dots == std::string::npos) return false;
  double start_s = 0.0;
  double end_s = 0.0;
  if (!parse_double(trim(range.substr(0, dots)), start_s)) return false;
  if (!parse_double(trim(range.substr(dots + 2)), end_s)) return false;
  out.start = sim::from_seconds(start_s);
  out.end = sim::from_seconds(end_s);
  return true;
}

}  // namespace

bool apply_scenario_text(const std::string& text, ScenarioConfig& config,
                         std::string& error) {
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      error = "line " + std::to_string(lineno) + ": expected key = value";
      return false;
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string val = trim(line.substr(eq + 1));
    const auto fail = [&](const char* what) {
      error = "line " + std::to_string(lineno) + ": bad value for " + key + " (" +
              what + "): '" + val + "'";
      return false;
    };
    std::int64_t i = 0;
    double d = 0.0;
    bool b = false;

    if (key == "rows") {
      if (!parse_int(val, i)) return fail("int");
      config.rows = static_cast<int>(i);
    } else if (key == "cols") {
      if (!parse_int(val, i)) return fail("int");
      config.cols = static_cast<int>(i);
    } else if (key == "radius") {
      if (!parse_int(val, i)) return fail("int");
      config.interference_radius = static_cast<int>(i);
    } else if (key == "channels") {
      if (!parse_int(val, i)) return fail("int");
      config.n_channels = static_cast<int>(i);
    } else if (key == "cluster") {
      if (!parse_int(val, i)) return fail("int");
      config.cluster = static_cast<int>(i);
    } else if (key == "torus") {
      if (!parse_bool(val, b)) return fail("bool");
      config.wrap = b ? cell::Wrap::kToroidal : cell::Wrap::kBounded;
    } else if (key == "greedy_plan") {
      if (!parse_bool(val, b)) return fail("bool");
      config.greedy_plan = b;
    } else if (key == "holding_s") {
      if (!parse_double(val, d)) return fail("number");
      config.mean_holding_s = d;
    } else if (key == "latency_ms") {
      if (!parse_double(val, d)) return fail("number");
      config.latency = sim::from_seconds(d / 1000.0);
    } else if (key == "jitter_ms") {
      if (!parse_double(val, d)) return fail("number");
      config.latency_jitter = sim::from_seconds(d / 1000.0);
    } else if (key == "dwell_s") {
      if (!parse_double(val, d)) return fail("number");
      config.mean_dwell_s = d;
    } else if (key == "duration_min") {
      if (!parse_double(val, d)) return fail("number");
      config.duration = sim::from_seconds(d * 60.0);
    } else if (key == "warmup_min") {
      if (!parse_double(val, d)) return fail("number");
      config.warmup = sim::from_seconds(d * 60.0);
    } else if (key == "seed") {
      if (!parse_int(val, i)) return fail("int");
      config.seed = static_cast<std::uint64_t>(i);
    } else if (key == "max_update_attempts") {
      if (!parse_int(val, i)) return fail("int");
      config.max_update_attempts = static_cast<int>(i);
    } else if (key == "update_pick") {
      if (val == "random") {
        config.update_pick = proto::ChannelPick::kRandom;
      } else if (val == "lowest") {
        config.update_pick = proto::ChannelPick::kLowest;
      } else if (val == "round-robin") {
        config.update_pick = proto::ChannelPick::kRoundRobin;
      } else {
        return fail("random|lowest|round-robin");
      }
    } else if (key == "policy") {
      proto::PolicySpec spec;
      std::string specError;
      if (!proto::parse_policy_spec(val, spec, specError)) {
        error = "line " + std::to_string(lineno) + ": " + specError;
        return false;
      }
      config.policy = std::move(spec);
    } else if (key == "theta_low") {
      if (!parse_int(val, i)) return fail("int");
      config.adaptive.theta_low = static_cast<int>(i);
    } else if (key == "theta_high") {
      if (!parse_int(val, i)) return fail("int");
      config.adaptive.theta_high = static_cast<int>(i);
    } else if (key == "alpha") {
      if (!parse_int(val, i)) return fail("int");
      config.adaptive.alpha = static_cast<int>(i);
    } else if (key == "window_s") {
      if (!parse_double(val, d)) return fail("number");
      config.adaptive.window = sim::from_seconds(d);
    } else if (key == "strict_fig4") {
      if (!parse_bool(val, b)) return fail("bool");
      config.adaptive.strict_fig4 = b;
    } else if (key == "best_heuristic") {
      if (!parse_bool(val, b)) return fail("bool");
      config.adaptive.use_best_heuristic = b;
    } else if (key == "repack") {
      if (!parse_bool(val, b)) return fail("bool");
      config.adaptive.repack = b;
    } else if (key == "drop_prob") {
      if (!parse_double(val, d)) return fail("number");
      config.fault.drop_prob = d;
    } else if (key == "dup_prob") {
      if (!parse_double(val, d)) return fail("number");
      config.fault.dup_prob = d;
    } else if (key == "fault_jitter_ms") {
      if (!parse_double(val, d)) return fail("number");
      config.fault.jitter = sim::from_seconds(d / 1000.0);
    } else if (key == "pause_rate_per_min") {
      if (!parse_double(val, d)) return fail("number");
      config.fault.pause_rate_per_min = d;
    } else if (key == "pause_mean_s") {
      if (!parse_double(val, d)) return fail("number");
      config.fault.pause_mean_s = d;
    } else if (key == "crash_rate_per_min") {
      if (!parse_double(val, d)) return fail("number");
      config.fault.crash_rate_per_min = d;
    } else if (key == "crash_mean_s") {
      if (!parse_double(val, d)) return fail("number");
      config.fault.crash_mean_s = d;
    } else if (key == "net_partition") {
      // One scheduled partition per line: "<cell>[,<cell>...] @ <s>..<s>",
      // e.g. "net_partition = 0,1,8 @ 300..420". Repeatable.
      net::PartitionSpec spec;
      if (!parse_partition_spec(val, spec)) {
        return fail("cells @ start_s..end_s, e.g. 0,1,8 @ 300..420");
      }
      config.fault.partitions.push_back(std::move(spec));
    } else if (key == "timeout_ms") {
      if (!parse_double(val, d)) return fail("number");
      config.request_timeout = sim::from_seconds(d / 1000.0);
    } else if (key == "shards") {
      if (!parse_int(val, i)) return fail("int");
      config.shards = static_cast<int>(i);
    } else if (key == "threads") {
      if (!parse_int(val, i)) return fail("int");
      config.threads = static_cast<int>(i);
    } else if (key == "partition") {
      if (val == "striped") {
        config.partition = cell::Partition::kStriped;
      } else if (val == "blocks") {
        config.partition = cell::Partition::kBlocks;
      } else {
        return fail("striped|blocks");
      }
    } else if (key == "pin") {
      if (!parse_bool(val, b)) return fail("bool");
      config.pin = b;
    } else if (key == "stream_metrics") {
      if (!parse_bool(val, b)) return fail("bool");
      config.stream_metrics = b;
    } else if (key == "radio_fade_prob") {
      if (!parse_double(val, d)) return fail("number");
      config.radio_fade_prob = d;
    } else if (key == "radio_fade_bucket_ms") {
      if (!parse_double(val, d)) return fail("number");
      config.radio_fade_bucket = sim::from_seconds(d / 1000.0);
    } else {
      error = "line " + std::to_string(lineno) + ": unknown key '" + key + "'";
      return false;
    }
  }
  return true;
}

bool load_scenario_file(const std::string& path, ScenarioConfig& config,
                        std::string& error) {
  std::ifstream in(path);
  if (!in) {
    error = "cannot read " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return apply_scenario_text(buf.str(), config, error);
}

std::string scenario_to_text(const ScenarioConfig& c) {
  std::ostringstream os;
  os << "rows = " << c.rows << "\n";
  os << "cols = " << c.cols << "\n";
  os << "radius = " << c.interference_radius << "\n";
  os << "channels = " << c.n_channels << "\n";
  os << "cluster = " << c.cluster << "\n";
  os << "torus = " << (c.wrap == cell::Wrap::kToroidal ? "true" : "false") << "\n";
  os << "greedy_plan = " << (c.greedy_plan ? "true" : "false") << "\n";
  os << "holding_s = " << c.mean_holding_s << "\n";
  os << "latency_ms = " << sim::to_milliseconds(c.latency) << "\n";
  os << "jitter_ms = " << sim::to_milliseconds(c.latency_jitter) << "\n";
  os << "dwell_s = " << c.mean_dwell_s << "\n";
  os << "duration_min = " << sim::to_seconds(c.duration) / 60.0 << "\n";
  os << "warmup_min = " << sim::to_seconds(c.warmup) / 60.0 << "\n";
  os << "seed = " << c.seed << "\n";
  os << "max_update_attempts = " << c.max_update_attempts << "\n";
  os << "update_pick = " << proto::channel_pick_name(c.update_pick) << "\n";
  os << "policy = " << c.policy.to_string() << "\n";
  os << "theta_low = " << c.adaptive.theta_low << "\n";
  os << "theta_high = " << c.adaptive.theta_high << "\n";
  os << "alpha = " << c.adaptive.alpha << "\n";
  os << "window_s = " << sim::to_seconds(c.adaptive.window) << "\n";
  os << "strict_fig4 = " << (c.adaptive.strict_fig4 ? "true" : "false") << "\n";
  os << "best_heuristic = " << (c.adaptive.use_best_heuristic ? "true" : "false")
     << "\n";
  os << "repack = " << (c.adaptive.repack ? "true" : "false") << "\n";
  os << "drop_prob = " << c.fault.drop_prob << "\n";
  os << "dup_prob = " << c.fault.dup_prob << "\n";
  os << "fault_jitter_ms = " << sim::to_milliseconds(c.fault.jitter) << "\n";
  os << "pause_rate_per_min = " << c.fault.pause_rate_per_min << "\n";
  os << "pause_mean_s = " << c.fault.pause_mean_s << "\n";
  os << "crash_rate_per_min = " << c.fault.crash_rate_per_min << "\n";
  os << "crash_mean_s = " << c.fault.crash_mean_s << "\n";
  for (const net::PartitionSpec& p : c.fault.partitions) {
    os << "net_partition = ";
    for (std::size_t i = 0; i < p.cells.size(); ++i) {
      os << (i == 0 ? "" : ",") << p.cells[i];
    }
    os << " @ " << sim::to_seconds(p.start) << ".." << sim::to_seconds(p.end)
       << "\n";
  }
  os << "timeout_ms = " << sim::to_milliseconds(c.request_timeout) << "\n";
  os << "shards = " << c.shards << "\n";
  os << "threads = " << c.threads << "\n";
  os << "partition = "
     << (c.partition == cell::Partition::kStriped ? "striped" : "blocks")
     << "\n";
  os << "pin = " << (c.pin ? "true" : "false") << "\n";
  os << "stream_metrics = " << (c.stream_metrics ? "true" : "false") << "\n";
  os << "radio_fade_prob = " << c.radio_fade_prob << "\n";
  os << "radio_fade_bucket_ms = " << sim::to_milliseconds(c.radio_fade_bucket)
     << "\n";
  return os.str();
}

}  // namespace dca::runner
