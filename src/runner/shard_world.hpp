// Sharded execution of one experiment: the World decomposed across the
// deterministically-parallel ShardedKernel (sim/shard.hpp).
//
// Cells are partitioned shard_of(c) = c % shards. Every piece of mutable
// run state lives on exactly one shard and is only touched by events that
// shard executes:
//
//   owner = cell c          node, node RNG, pause state, held backlog,
//                           ground-truth ChannelSet, pending/active calls,
//                           per-cell metric records (request cell = c)
//   owner = link (a, b)     sender side (a): FIFO floor, transport tx
//                           window, fault RNG, per-link delivery sequence;
//                           receiver side (b): resequencing buffer
//   per shard               message counters, transport stats, collector,
//                           trace buffer, usage integral
//
// Cross-shard effects travel exclusively as message deliveries (delay >=
// the latency floor), satisfying the kernel's lookahead contract. After
// the run, per-shard results are merged exactly: integer counters and
// int64 usage integrals sum; call records and trace events concatenate
// and stable-sort by (time, cell), which reproduces the canonical global
// order because same-(time, cell) entries always come from a single shard
// in execution order. Cross-shard metric reads (the paper's N_borrow /
// N_search neighbour samples) are reconstructed from per-cell flag-change
// timelines instead of sampled live. The result is bit-identical to the
// classic single-queue engine for any shard and thread count (see
// docs/ARCHITECTURE.md for the argument and its limits).
#pragma once

#include "runner/experiment.hpp"
#include "runner/scenario.hpp"
#include "sim/trace.hpp"
#include "traffic/profile.hpp"

namespace dca::runner {

/// Sharded counterpart of run_profile (experiment.hpp); run_profile
/// dispatches here when config.shards > 1. The config must satisfy the
/// sharded-mode restrictions enforced by validate_scenario.
[[nodiscard]] RunResult run_profile_sharded(const ScenarioConfig& config,
                                            Scheme scheme,
                                            const traffic::LoadProfile& profile,
                                            sim::TraceRecorder* trace = nullptr);

}  // namespace dca::runner
