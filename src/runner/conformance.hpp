// Trace-based conformance checking: replay a structured event trace (see
// sim/trace.hpp) against the cell geometry and assert the paper's
// invariants hold over the whole run:
//
//   * reuse-distance exclusivity — no two cells within the interference
//     radius hold the same channel at overlapping times (Theorem 1, but
//     checked from the trace alone, independent of the World's online
//     ground-truth check);
//   * search sequencing — concurrent searches in interfering cells
//     conclude successfully in timestamp order: a search may not pick a
//     channel while an interfering search with an older timestamp, begun
//     no later, is still undecided (timeout aborts are exempt — they pick
//     nothing);
//   * lifecycle hygiene — every acquire matches an open request, every
//     release matches a held channel, nothing is double-closed;
//   * migration pairing — every HANDOFF_LEAVE is answered by exactly one
//     HANDOFF_RECV for the same serial (the transport is reliable, so a
//     leave without its recv is a lost call);
//   * crash lifecycle — a cell crashes only while up (a crash during the
//     resync window is legal: outages do not wait), restarts only while
//     down, holds no channel across the outage (every held channel is
//     released during the crash teardown), and never acquires a channel or
//     starts a search while down or still resynchronizing; RESYNC_DONE
//     only ever answers a RESTART;
//   * terminal cleanliness — at run end no channel is still held, no
//     request is still open (a wedged call), no search is still undecided,
//     and the run reached quiescence.
//
// The checker is stream-oriented (feed events in time order, then
// finish()) so it works both on live TraceRecorder output and on traces
// re-read from JSONL.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "cell/grid.hpp"
#include "cell/spectrum.hpp"
#include "sim/trace.hpp"

namespace dca::runner {

struct ConformanceViolation {
  std::string rule;  // "reuse-distance", "search-order", "leaked-channel", ...
  sim::SimTime t = 0;
  std::string detail;
};

struct ConformanceReport {
  std::vector<ConformanceViolation> violations;
  std::uint64_t events = 0;
  std::uint64_t timeouts = 0;        // protocol timers fired (kTimeout)
  std::uint64_t timeout_aborts = 0;  // searches concluded by abort
  std::uint64_t crashes = 0;         // MSS crash events (kCrash)
  std::uint64_t resyncs = 0;         // completed resyncs (kResyncDone)
  bool saw_run_end = false;
  [[nodiscard]] bool ok() const { return violations.empty(); }
  /// One line per violation (capped), for test failure messages.
  [[nodiscard]] std::string to_string(std::size_t max_lines = 10) const;
};

class ConformanceChecker {
 public:
  ConformanceChecker(const cell::HexGrid& grid, int n_channels);

  /// Feeds one event. Events must arrive in non-decreasing `t` order.
  void feed(const sim::TraceEvent& ev);

  /// Runs the end-of-trace checks and returns the accumulated report.
  [[nodiscard]] ConformanceReport finish();

 private:
  struct OpenSearch {
    std::uint64_t serial = 0;
    std::int64_t ts_count = 0;  // Lamport timestamp of the search
    std::int64_t ts_node = 0;
    sim::SimTime started = 0;
  };

  void violate(const sim::TraceEvent& ev, std::string rule, std::string detail);
  /// True when (a_count, a_node) < (b_count, b_node), the Timestamp order.
  static bool ts_less(std::int64_t ac, std::int64_t an, std::int64_t bc,
                      std::int64_t bn) {
    return ac != bc ? ac < bc : an < bn;
  }

  const cell::HexGrid& grid_;
  int n_channels_;
  ConformanceReport report_;
  sim::SimTime last_t_ = 0;
  std::vector<cell::ChannelSet> held_;                     // by cell
  std::vector<std::uint8_t> down_;                         // crashed, by cell
  std::vector<std::uint8_t> resyncing_;                    // by cell
  std::unordered_map<std::uint64_t, std::int32_t> open_;   // serial -> cell
  std::unordered_map<std::int32_t, OpenSearch> searching_; // cell -> search
  std::unordered_map<std::uint64_t, std::int32_t> migrating_;  // serial -> dest
};

/// Convenience wrapper: feed a whole trace, return the report.
[[nodiscard]] ConformanceReport check_trace(const cell::HexGrid& grid,
                                            int n_channels,
                                            const std::vector<sim::TraceEvent>& trace);

// -- JSONL serialization -----------------------------------------------------

/// One JSON object per line, fixed schema:
///   {"k":"acquire","t":1234,"cell":5,"peer":-1,"ch":7,"serial":42,"a":0,"b":0}
[[nodiscard]] std::string trace_to_jsonl(const std::vector<sim::TraceEvent>& trace);

/// Inverse of trace_to_jsonl. Returns false (with `error` set) on the
/// first malformed line; `out` keeps the events parsed so far.
[[nodiscard]] bool trace_from_jsonl(const std::string& text,
                                    std::vector<sim::TraceEvent>& out,
                                    std::string& error);

/// Renders a single event as its JSONL object line (no trailing newline) —
/// the same schema trace_to_jsonl emits one line of.
[[nodiscard]] std::string trace_event_to_json(const sim::TraceEvent& e);

// -- trace diffing -----------------------------------------------------------

/// Structural comparison of two traces: the first index at which the
/// event streams diverge, if any. Used by the trace_diff tool and by the
/// determinism harness to localize an engine divergence to one event
/// instead of one giant EXPECT_EQ failure.
struct TraceDiffResult {
  bool identical = false;
  std::size_t index = 0;      // first diverging position (valid if !identical)
  std::size_t size_a = 0;
  std::size_t size_b = 0;
  std::string description;    // one-line summary of the divergence
};

[[nodiscard]] TraceDiffResult diff_traces(const std::vector<sim::TraceEvent>& a,
                                          const std::vector<sim::TraceEvent>& b);

}  // namespace dca::runner
