// Scenario files: load a ScenarioConfig from a simple `key = value` text
// format (one option per line, `#` comments), so experiment sweeps can be
// version-controlled instead of encoded in shell history.
//
//   # paper-scale torus
//   rows = 14
//   cols = 14
//   torus = true
//   channels = 70
//   theta_low = 2
//   theta_high = 4
//
// Unknown keys and malformed values are errors.
#pragma once

#include <string>

#include "runner/scenario.hpp"

namespace dca::runner {

/// Applies `text` (the file contents) onto `config`. Returns true on
/// success; on failure returns false and sets `error` to a message with a
/// 1-based line number.
[[nodiscard]] bool apply_scenario_text(const std::string& text,
                                       ScenarioConfig& config, std::string& error);

/// Reads and applies a scenario file. Returns false with `error` set when
/// the file cannot be read or parsed.
[[nodiscard]] bool load_scenario_file(const std::string& path,
                                      ScenarioConfig& config, std::string& error);

/// Serializes a config back to the same format (round-trips through
/// apply_scenario_text).
[[nodiscard]] std::string scenario_to_text(const ScenarioConfig& config);

}  // namespace dca::runner
