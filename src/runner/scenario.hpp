// Scenario configuration: everything needed to assemble a reproducible
// simulated cellular system.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "cell/grid.hpp"
#include "cell/partition.hpp"
#include "core/params.hpp"
#include "net/fault.hpp"
#include "proto/policy.hpp"
#include "sim/types.hpp"

namespace dca::net {
class LatencyModel;
}

namespace dca::runner {

/// The channel-allocation schemes under study.
enum class Scheme {
  kFca,             // static baseline
  kBasicSearch,     // Dong & Lai basic search
  kBasicUpdate,     // Dong & Lai basic update
  kAdvancedUpdate,  // Dong & Lai advanced update (TR-48)
  kAdvancedSearch,  // Prakash/Shivaratri/Singhal allocated-set scheme [8]
  kAdaptive,        // the paper's proposed scheme
};

[[nodiscard]] std::string scheme_name(Scheme s);

/// All schemes in presentation order (the paper's table order, FCA first).
inline constexpr Scheme kAllSchemes[] = {
    Scheme::kFca,            Scheme::kBasicSearch,    Scheme::kBasicUpdate,
    Scheme::kAdvancedUpdate, Scheme::kAdvancedSearch, Scheme::kAdaptive};

/// The four schemes the paper's tables compare (no FCA row).
inline constexpr Scheme kPaperSchemes[] = {
    Scheme::kBasicSearch, Scheme::kBasicUpdate, Scheme::kAdvancedUpdate,
    Scheme::kAdaptive};

struct ScenarioConfig {
  // Topology (paper Fig. 1 setting: hexagonal array, reuse distance 3
  // cell hops => interference radius 2, cluster-7 reuse pattern).
  int rows = 8;
  int cols = 8;
  int interference_radius = 2;
  int n_channels = 70;
  int cluster = 7;
  /// kToroidal removes boundary effects (every cell gets the full interior
  /// neighbourhood); needs rows % 14 == 0 and cols % 7 == 0 for a valid
  /// wrapped cluster-7 colouring (e.g. 14x14).
  cell::Wrap wrap = cell::Wrap::kBounded;

  /// When true, the primary assignment uses a greedy colouring of the
  /// interference graph instead of the regular cluster pattern — the only
  /// option for radii with no regular pattern (e.g. radius 3); `cluster`
  /// is ignored and the colour count is whatever the greedy needs.
  bool greedy_plan = false;

  // Traffic.
  double mean_holding_s = 180.0;

  // Network.
  sim::Duration latency = sim::milliseconds(5);  // the paper's T
  sim::Duration latency_jitter = 0;  // >0: uniform in [latency-j, latency]

  // Execution.
  std::uint64_t seed = 1;
  sim::Duration duration = sim::minutes(30);
  sim::Duration warmup = sim::minutes(5);

  /// Engine parallelism. shards == 1 (default) runs the classic
  /// single-queue engine, bit-identical to earlier builds. shards > 1
  /// partitions cells across per-shard event queues synchronized on the
  /// minimum per-link latency floor; results are bit-identical for any
  /// shards/threads value, including latency_jitter and mobility (both
  /// draw from streams derived purely from stable identifiers, so no
  /// global RNG ordering is involved).
  int shards = 1;
  /// Worker threads for the sharded engine; 0 = min(shards, hardware).
  /// Never affects results, only wall-clock.
  int threads = 0;
  /// How cells map onto shards (shards > 1 only). Never affects results —
  /// the canonical event order is partition-independent — only how many
  /// messages cross shard boundaries. kBlocks keeps interference
  /// neighbourhoods shard-local and is the default; kStriped is the legacy
  /// cell % shards interleaving.
  cell::Partition partition = cell::Partition::kBlocks;
  /// Pin sharded-engine workers to distinct allowed CPUs (worker i -> the
  /// i-th CPU of the process affinity mask). Wall-clock stability only —
  /// never affects results. Silently unavailable off Linux.
  bool pin = false;
  /// Stream metrics (and the trace, when one is attached) out of the
  /// engine at window barriers instead of buffering every call record to
  /// the end of the run: peak memory stays bounded by the in-flight
  /// working set instead of growing with call count. Aggregates are
  /// bit-identical to the buffered path. Routes through the sharded
  /// engine even when shards == 1 (the classic engine has no windows to
  /// stream at).
  bool stream_metrics = false;

  // Update-family retry cap (the paper's schemes may retry unboundedly;
  // see DESIGN.md faithfulness note 7).
  int max_update_attempts = 10;

  // Channel-selection policy of the basic update scheme.
  proto::ChannelPick update_pick = proto::ChannelPick::kRandom;

  /// Allocation policy (registry name + parameters) shared by every node.
  /// "default" reproduces the paper's hard-wired behaviour bit for bit;
  /// see PolicyRegistry for the registered alternatives.
  proto::PolicySpec policy;

  // Adaptive-scheme tuning (Section 3.5).
  core::AdaptiveParams adaptive;

  // Mobility (optional handoff model; 0 disables).
  double mean_dwell_s = 0.0;

  // Fault injection (all-zero ⇒ the fault layer is fully bypassed and the
  // run is bit-identical to a pre-fault-layer build).
  net::FaultConfig fault;

  /// Per-request protocol timeout: a node gives up on an unanswered
  /// handshake phase after this long and runs its abort path (bounded
  /// retries, then the search/mode-3 fallback). 0 disables the timers —
  /// correct for fault-free runs, where every response always arrives.
  sim::Duration request_timeout = 0;

  /// Radio-quality noise: probability that a given (cell, channel) is
  /// fading — temporarily unusable for *new* acquisitions — during any
  /// given coherence bucket. 0 (default) disables the model entirely.
  /// The fade field is a pure hash of (seed, cell, channel, bucket), so
  /// it consumes no RNG stream and perturbs no other draw.
  double radio_fade_prob = 0.0;
  /// Coherence time of a fade state, i.e. how long a (cell, channel)
  /// stays faded/clear before being re-drawn.
  sim::Duration radio_fade_bucket = sim::seconds(1);

  /// Offered load per cell in Erlangs normalized to the primary-set size:
  /// rho = lambda * holding / |PR|  =>  lambda = rho * |PR| / holding.
  [[nodiscard]] double arrival_rate_for_load(double rho) const {
    const double pr = static_cast<double>(n_channels) / static_cast<double>(cluster);
    return rho * pr / mean_holding_s;
  }
};

/// Checks a configuration for the constraint violations that would
/// otherwise fail deep inside construction (invalid torus dimensions for
/// the cluster pattern, unsupported cluster size, spectrum overflow,
/// inverted hysteresis, ...). Returns an empty string when valid, else a
/// human-readable description of the first problem.
[[nodiscard]] std::string validate_scenario(const ScenarioConfig& config);

/// Builds the latency model a scenario prescribes: LinkJitterLatency when
/// latency_jitter > 0 (uniform in [latency - jitter, latency] from
/// per-link streams), else FixedLatency. Both engines construct their
/// model through this factory so delays match draw-for-draw.
[[nodiscard]] std::unique_ptr<net::LatencyModel> make_scenario_latency(
    const ScenarioConfig& config);

}  // namespace dca::runner
