#include "runner/shard_world.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cell/grid.hpp"
#include "cell/partition.hpp"
#include "cell/reuse.hpp"
#include "metrics/availability.hpp"
#include "metrics/collector.hpp"
#include "runner/conformance.hpp"
#include "net/fault.hpp"
#include "net/latency.hpp"
#include "net/link_table.hpp"
#include "net/message.hpp"
#include "proto/allocator.hpp"
#include "radio/noise.hpp"
#include "runner/flag_timeline.hpp"
#include "runner/node_factory.hpp"
#include "sim/random.hpp"
#include "sim/shard.hpp"
#include "traffic/call.hpp"
#include "traffic/mobility.hpp"

namespace dca::runner {
namespace {

using cell::CellId;
using net::LinkId;
using LinkKey = std::pair<CellId, CellId>;

/// Conservative lookahead for the kernel: the minimum latency floor over
/// the links that actually cross shards. Shard-internal links don't
/// constrain the window (their deliveries never enter an outbox), so a
/// partition that keeps the slow links internal earns a wider window than
/// the global min_one_way(). Fault jitter only ever *adds* delay on top
/// of the model's floor, so it never weakens the bound.
sim::Duration cross_shard_lookahead(const net::LinkTable& links,
                                    const net::LatencyModel& latency,
                                    const std::vector<int>& partition) {
  sim::Duration floor_min = 0;
  bool any = false;
  for (LinkId lid = 0; lid < links.n_links(); ++lid) {
    const auto [from, to] = links.endpoints(lid);
    if (partition[static_cast<std::size_t>(from)] ==
        partition[static_cast<std::size_t>(to)]) {
      continue;
    }
    const sim::Duration f = latency.link_floor(lid, from, to);
    if (!any || f < floor_min) floor_min = f;
    any = true;
  }
  // No cross-shard link at all (single shard, or a partition the grid
  // cannot produce): any positive lookahead is safe; use the global floor.
  return any ? floor_min : latency.min_one_way();
}

class ShardedWorld;

/// Per-shard NodeEnv. Nodes of shard s all share one env; `current` is
/// set to the owning cell of the event being executed, which is how
/// schedule_in / cancel_scheduled attribute timers without widening the
/// NodeEnv interface.
class ShardEnv final : public proto::NodeEnv {
 public:
  ShardedWorld* world = nullptr;
  int shard = 0;
  CellId current = cell::kNoCell;

  [[nodiscard]] sim::SimTime now() const override;
  void send(net::Message msg) override;
  [[nodiscard]] sim::Duration latency_bound() const override;
  void notify_acquired(CellId cellId, std::uint64_t serial, cell::ChannelId ch,
                       proto::Outcome how, int attempts) override;
  void notify_blocked(CellId cellId, std::uint64_t serial, proto::Outcome why,
                      int attempts) override;
  void notify_released(CellId cellId, cell::ChannelId ch) override;
  void notify_reassigned(CellId cellId, cell::ChannelId from_ch,
                         cell::ChannelId to_ch) override;
  void notify_resynced(CellId cellId, int rounds) override;
  sim::RngStream& rng(CellId cellId) override;
  sim::EventId schedule_in(sim::Duration delay, sim::TimerFn fn) override;
  void cancel_scheduled(sim::EventId id) override;
  void record(const sim::TraceEvent& ev) override;
  [[nodiscard]] bool channel_usable(CellId cellId,
                                    cell::ChannelId ch) const override;
};

struct PendingFrame {
  net::Message msg;
  sim::EventId timer = sim::kInvalidEventId;
  int attempts = 0;
};
struct LinkTx {
  std::uint64_t next_seq = 1;
  // pending covers exactly [lowest_unacked, next_seq): frames enter at
  // next_seq and leave only as a cumulative-ack prefix.
  std::uint64_t lowest_unacked = 1;
  net::SeqRing<PendingFrame> pending;
};
struct LinkRx {
  std::uint64_t next_expected = 1;
  net::SeqRing<net::Message> reorder;
};

struct PendingCall {
  traffic::CallId call = 0;
  sim::Duration remaining = 0;
  bool is_handoff = false;
};
struct ActiveCall {
  traffic::CallId call = 0;
  CellId cellId = cell::kNoCell;
  cell::ChannelId channel = cell::kNoChannel;
  sim::SimTime ends = 0;
};

/// All run state owned by one shard. Only events executing on that shard
/// touch it, so workers never contend; alignas keeps neighbouring shards
/// off each other's cache lines.
struct alignas(64) ShardState {
  ShardEnv env;

  // -- network (sender side keyed by link (from,to) with shard_of(from)
  //    == this shard; receiver side with shard_of(to) == this shard) ----
  std::uint64_t total_sent = 0;
  std::uint64_t cross_shard_sent = 0;  // protocol messages leaving this shard
  std::array<std::uint64_t, net::kNumMsgKinds> by_kind{};
  // All per-link state is a flat vector indexed by the owning side's
  // *rank*: the world precomputes tx_rank_[lid] (dense index among links
  // whose sender lives on shard_of(from)) and rx_rank_[lid] (receiver
  // side), so each shard allocates only its own links' entries and the
  // total across shards is n_links, not n_links * shards — the difference
  // between ~26 MB and ~200 MB of link state on a 300x300 metro grid.
  std::vector<sim::SimTime> link_clock;   // FIFO floor, by tx rank
  std::vector<std::uint64_t> link_seq;    // canonical key seq, by tx rank
  std::vector<LinkTx> tx;                 // transport send window, by tx rank
  std::vector<LinkRx> rx;                 // transport resequencer, by rx rank
  // Lazily materialized (an engaged mt19937_64 is ~2.5 KB and most links
  // of a large grid never fault); derivation is a pure function of
  // (seed, link) so lazy == eager, draw for draw.
  std::vector<std::unique_ptr<sim::RngStream>> fault_rng;
  std::vector<std::uint8_t> paused;                // by cell
  std::vector<std::vector<net::Message>> held;     // by cell
  std::size_t paused_count = 0;
  net::TransportStats tstats;

  // -- calls & metrics --------------------------------------------------
  metrics::Collector collector;  // records whose request cell is local
  std::vector<std::pair<std::uint64_t, net::MsgKind>> foreign_bills;
  // Streaming-mode message attribution: total attributed messages per
  // serial, merged across shards by summation at run end. Replaces both
  // the per-record per-kind arrays and the foreign-billing log (only the
  // two message Summaries ever read a record's messages, and only as a
  // total), so a bill landing after its record was folded is still exact.
  std::vector<std::uint32_t> msg_tally_base;                       // serial - 1
  std::unordered_map<std::uint64_t, std::uint32_t> msg_tally_hop;  // handoff legs
  std::unordered_map<std::uint64_t, PendingCall> pending;
  std::unordered_map<std::uint64_t, ActiveCall> active;
  std::uint64_t violations = 0;
  std::uint64_t reassignments = 0;
  // Crash/resync accounting for cells owned by this shard; every field is
  // a sum (or max), so the run total is the associative per-shard merge.
  metrics::Availability avail;

  // Time-weighted usage integral in exact channel-microseconds; the
  // per-shard int64 partial sums merge by addition, and every legacy
  // double partial sum is an exact integer below 2^53, so the merged
  // total reproduces the single-engine double bit for bit.
  std::int64_t usage_integral = 0;
  std::int64_t channels_in_use = 0;
  sim::SimTime last_usage_change = 0;

  std::vector<sim::TraceEvent> trace;
};

class ShardedWorld {
 public:
  ShardedWorld(const ScenarioConfig& config, Scheme scheme,
               const traffic::LoadProfile& profile, sim::TraceRecorder* trace);

  void run();
  [[nodiscard]] RunResult result();

 private:
  friend class ShardEnv;

  [[nodiscard]] ShardState& state_of(CellId c) {
    return states_[static_cast<std::size_t>(kernel_.shard_of(c))];
  }
  [[nodiscard]] sim::SimTime now_of(CellId c) {
    return kernel_.now(kernel_.shard_of(c));
  }

  // Canonical-key scheduling. Local classes draw the owner cell's
  // scheduling counter; deliveries draw the directed link's sender-side
  // counter — both reproduce the legacy engine's insertion order within
  // their tie class.
  // Templated on the callable so hot-path closures (message deliveries
  // carrying a net::Message by value) flow straight into the kernel's
  // EventFn inline buffer with no intermediate std::function allocation.
  template <typename F>
  sim::EventId schedule_local(CellId owner, std::uint8_t klass,
                              sim::SimTime when, F&& fn);
  template <typename F>
  void schedule_delivery(LinkId lid, CellId from, CellId to, sim::SimTime when,
                         F&& fn);
  template <typename F>
  sim::EventId schedule_key(const sim::EventKey& key, F&& fn);
  void flag_check(CellId owner);

  // Traffic (live per-cell Lewis–Shedler chains; ids preassigned).
  void precompute_call_ids();
  void schedule_next_candidate(CellId c, sim::SimTime from_time);
  void candidate_fire(CellId c, sim::SimTime when);
  void submit_call(std::uint64_t serial, CellId c, sim::Duration holding);

  // Network (port of net::Network with shard-partitioned state).
  void net_send(int s, net::Message msg);
  void transport_send(int s, net::Message msg);
  void transmit(int s, const LinkKey& link, std::uint64_t seq);
  void arm_rto(int s, const LinkKey& link, std::uint64_t seq);
  void on_rto(int s, const LinkKey& link, std::uint64_t seq);
  void on_data_frame(const LinkKey& link, std::uint64_t seq,
                     const net::Message& msg);
  void send_ack(const LinkKey& data_link, std::uint64_t cumulative);
  void deliver_to_node(const net::Message& msg);
  sim::RngStream& link_rng(ShardState& st, LinkId lid, const LinkKey& link);
  [[nodiscard]] sim::Duration rto(int attempts) const;
  void record_link(ShardState& st, sim::TraceKind k, const LinkKey& link,
                   std::uint64_t seq, std::int64_t b = 0);

  // Pauses.
  void schedule_pause_cycle(CellId c, sim::SimTime from_time);

  // Crash-recovery fault model (mirrors runner/world.cpp event for event).
  void schedule_crash_cycle(CellId c, sim::SimTime from_time);
  void crash_cell(CellId c);
  void restart_cell(CellId c);
  void notify_resynced(CellId cellId, int rounds);
  /// Opens and immediately blocks a call offered to a down cell.
  void reject_call_down(CellId c, std::uint64_t serial, traffic::CallId call,
                        sim::Duration remaining, bool is_handoff);
  [[nodiscard]] bool down_now(CellId c) const {
    return (crashes_on_ && crashed_[static_cast<std::size_t>(c)] != 0) ||
           nodes_[static_cast<std::size_t>(c)]->resyncing();
  }

  // Call lifecycle (NodeEnv backends).
  void notify_acquired(CellId cellId, std::uint64_t serial, cell::ChannelId ch,
                       proto::Outcome how, int attempts);
  void notify_blocked(CellId cellId, std::uint64_t serial, proto::Outcome why,
                      int attempts);
  void notify_released(CellId cellId, cell::ChannelId ch);
  void notify_reassigned(CellId cellId, cell::ChannelId from_ch,
                         cell::ChannelId to_ch);
  void end_call(std::uint64_t serial, CellId cellId);
  void dispatch_to_node(const net::Message& msg);
  void handoff_arrival(const net::Message& msg);
  void accumulate_usage(ShardState& st, sim::SimTime t);
  void trace_call_event(sim::TraceKind kind, CellId cellId, cell::ChannelId ch,
                        std::uint64_t serial, std::int64_t a = 0);
  void trace_handoff(sim::TraceKind kind, CellId cellId, CellId peer,
                     std::uint64_t serial, std::int64_t hop, sim::SimTime ends);

  [[nodiscard]] bool quiescent() const;

  // Streaming consumption (config_.stream_metrics): invoked by the kernel
  // at window barriers; folds everything that became final before
  // `frontier` into the incremental aggregate and releases its memory.
  void on_window(sim::SimTime frontier);
  void fold_to(sim::SimTime frontier);

  ScenarioConfig config_;
  Scheme scheme_;
  const traffic::LoadProfile& profile_;
  sim::TraceRecorder* trace_;
  bool tracing_;
  cell::HexGrid grid_;
  cell::ReusePlan plan_;
  // Shared dense link index. Built once from the grid, read-only during
  // the run, so all shards can resolve (from,to) -> LinkId without locks;
  // the per-link *state* lives in each ShardState's flat vectors.
  net::LinkTable links_;
  std::unique_ptr<net::LatencyModel> latency_;
  radio::NoiseField noise_;
  std::vector<int> partition_;
  sim::ShardedKernel kernel_;
  std::vector<ShardState> states_;
  // Shared by every node; must outlive nodes_ (declared before it).
  std::unique_ptr<const proto::AllocationPolicy> policy_;
  std::vector<std::unique_ptr<proto::AllocatorNode>> nodes_;
  std::vector<sim::RngStream> node_rng_;
  std::vector<sim::RngStream> pause_rng_;
  std::vector<sim::RngStream> crash_rng_;
  std::vector<sim::RngStream> arrival_rng_;
  std::vector<sim::RngStream> holding_rng_;
  std::vector<cell::ChannelSet> truth_;
  std::vector<std::uint64_t> cell_seq_;  // local-class canonical counters

  // Crash-recovery state. The per-cell arrays are only ever touched by
  // kClassControl events owned by that cell (and by readers on its shard),
  // so cross-shard contention never arises; the availability sums live in
  // each ShardState and merge at result().
  bool crashes_on_ = false;
  std::vector<std::uint8_t> crashed_;     // currently off the air
  std::vector<sim::SimTime> down_since_;  // crash instant, per cell
  std::vector<sim::SimTime> restart_at_;  // last restart instant, per cell
  net::PartitionTimeline partitions_;     // views config_.fault.partitions

  bool transport_ = false;
  sim::Duration rto_base_ = 0;
  sim::SimTime horizon_ = 0;

  // Preassigned call identities: serial == CallId == 1 + rank of the
  // accepted arrival in (time, cell) order (the canonical execution
  // order, hence the legacy issue order).
  std::vector<CellId> serial_cell_;
  std::vector<std::vector<traffic::CallId>> ids_by_cell_;
  std::vector<std::size_t> next_id_idx_;

  // Flag timelines for deferred neighbour sampling (shared convention
  // with the classic engine, see flag_timeline.hpp).
  FlagTimelines flags_;

  // Dense per-link rank maps (see ShardState): tx_rank_[lid] indexes the
  // sender-side vectors of shard_of(from), rx_rank_[lid] the receiver-side
  // vectors of shard_of(to). Built once, read-only during the run.
  std::vector<std::uint32_t> tx_rank_;
  std::vector<std::uint32_t> rx_rank_;

  // -- streaming-mode state (config_.stream_metrics) ---------------------
  bool streaming_ = false;
  std::optional<metrics::AggregateBuilder> builder_;
  // Admitted records in fold order: (serial, acquired). The deferred
  // message Summaries replay over this at run end once the per-serial
  // tallies are final — 9 bytes/call instead of a ~120-byte CallRecord.
  std::vector<std::pair<std::uint64_t, bool>> fold_order_;
  sim::SimTime next_fold_ = 0;
  sim::Duration fold_stride_ = 0;
  // In-engine conformance replay over the drained trace prefixes (the
  // streamed trace may be spilled or discarded by the recorder's sink, so
  // post-hoc check_trace is not an option).
  std::unique_ptr<ConformanceChecker> conform_;
};

// -- ShardEnv forwarding ---------------------------------------------------

sim::SimTime ShardEnv::now() const { return world->kernel_.now(shard); }
void ShardEnv::send(net::Message msg) { world->net_send(shard, std::move(msg)); }
sim::Duration ShardEnv::latency_bound() const {
  return world->latency_->max_one_way();
}
void ShardEnv::notify_acquired(CellId cellId, std::uint64_t serial,
                               cell::ChannelId ch, proto::Outcome how,
                               int attempts) {
  world->notify_acquired(cellId, serial, ch, how, attempts);
}
void ShardEnv::notify_blocked(CellId cellId, std::uint64_t serial,
                              proto::Outcome why, int attempts) {
  world->notify_blocked(cellId, serial, why, attempts);
}
void ShardEnv::notify_released(CellId cellId, cell::ChannelId ch) {
  world->notify_released(cellId, ch);
}
void ShardEnv::notify_reassigned(CellId cellId, cell::ChannelId from_ch,
                                 cell::ChannelId to_ch) {
  world->notify_reassigned(cellId, from_ch, to_ch);
}
void ShardEnv::notify_resynced(CellId cellId, int rounds) {
  world->notify_resynced(cellId, rounds);
}
sim::RngStream& ShardEnv::rng(CellId cellId) {
  return world->node_rng_[static_cast<std::size_t>(cellId)];
}
sim::EventId ShardEnv::schedule_in(sim::Duration delay, sim::TimerFn fn) {
  if (delay < 0) delay = 0;
  return world->schedule_local(current, sim::kClassTimer, now() + delay,
                               std::move(fn));
}
void ShardEnv::cancel_scheduled(sim::EventId id) {
  world->kernel_.cancel(current, id);
}
void ShardEnv::record(const sim::TraceEvent& ev) {
  if (world->tracing_) world->states_[static_cast<std::size_t>(shard)].trace.push_back(ev);
}
bool ShardEnv::channel_usable(CellId cellId, cell::ChannelId ch) const {
  return world->noise_.usable(cellId, ch, now());
}

// -- construction ----------------------------------------------------------

ShardedWorld::ShardedWorld(const ScenarioConfig& config, Scheme scheme,
                           const traffic::LoadProfile& profile,
                           sim::TraceRecorder* trace)
    : config_(config),
      scheme_(scheme),
      profile_(profile),
      trace_(trace),
      tracing_(trace != nullptr),
      grid_(config.rows, config.cols, config.interference_radius, config.wrap),
      plan_(config.greedy_plan
                ? cell::ReusePlan::greedy(grid_, config.n_channels)
                : cell::ReusePlan::cluster(grid_, config.n_channels,
                                           config.cluster)),
      links_(grid_),
      latency_(make_scenario_latency(config)),
      noise_(config.seed, config.radio_fade_prob, config.radio_fade_bucket),
      partition_(cell::make_partition(grid_, config.shards, config.partition)),
      kernel_(partition_, config.shards,
              cross_shard_lookahead(links_, *latency_, partition_),
              config.threads),
      states_(static_cast<std::size_t>(config.shards)) {
  if (!plan_.validate(grid_)) {
    std::fprintf(stderr, "ShardedWorld: reuse plan invalid for %dx%d grid\n",
                 config_.rows, config_.cols);
    std::abort();
  }
  if (config_.latency <= 0) {
    std::fprintf(stderr,
                 "ShardedWorld: latency must be positive (the per-link "
                 "floors are the lookahead; run validate_scenario first)\n");
    std::abort();
  }
  for (int s = 0; s < config_.shards; ++s) {
    states_[static_cast<std::size_t>(s)].env.world = this;
    states_[static_cast<std::size_t>(s)].env.shard = s;
  }

  transport_ = config_.fault.link_faults();
  rto_base_ = 2 * (latency_->max_one_way() + config_.fault.jitter) +
              sim::milliseconds(1);
  horizon_ = config_.duration;

  const auto n = static_cast<std::size_t>(grid_.n_cells());
  const auto n_links = static_cast<std::size_t>(links_.n_links());
  latency_->bind_links(links_);
  // Dense per-shard link ranks: each shard's vectors hold only the links
  // whose owning side lives on it, so total link state is n_links entries
  // across all shards.
  tx_rank_.resize(n_links);
  rx_rank_.resize(n_links);
  std::vector<std::uint32_t> tx_count(static_cast<std::size_t>(config_.shards), 0);
  std::vector<std::uint32_t> rx_count(static_cast<std::size_t>(config_.shards), 0);
  for (LinkId lid = 0; lid < links_.n_links(); ++lid) {
    const auto [from, to] = links_.endpoints(lid);
    tx_rank_[static_cast<std::size_t>(lid)] =
        tx_count[static_cast<std::size_t>(kernel_.shard_of(from))]++;
    rx_rank_[static_cast<std::size_t>(lid)] =
        rx_count[static_cast<std::size_t>(kernel_.shard_of(to))]++;
  }
  for (int s = 0; s < config_.shards; ++s) {
    ShardState& st = states_[static_cast<std::size_t>(s)];
    const auto n_tx = static_cast<std::size_t>(tx_count[static_cast<std::size_t>(s)]);
    st.link_clock.assign(n_tx, 0);
    st.link_seq.assign(n_tx, 0);
    if (transport_) {
      st.tx.resize(n_tx);
      st.rx.resize(
          static_cast<std::size_t>(rx_count[static_cast<std::size_t>(s)]));
      st.fault_rng.resize(n_tx);
    }
    if (config_.fault.pauses()) {
      st.paused.assign(n, 0);
      st.held.resize(n);
    }
  }
  truth_.assign(n, cell::ChannelSet(config_.n_channels));
  cell_seq_.assign(n, 0);
  flags_.reset(n);
  next_id_idx_.assign(n, 0);
  ids_by_cell_.assign(n, {});

  node_rng_.reserve(n);
  arrival_rng_.reserve(n);
  holding_rng_.reserve(n);
  for (CellId c = 0; c < grid_.n_cells(); ++c) {
    node_rng_.push_back(sim::RngStream::derive(
        config_.seed, 0x90de000ull + static_cast<std::uint64_t>(c)));
    arrival_rng_.push_back(
        sim::RngStream::derive(config_.seed, static_cast<std::uint64_t>(c)));
    holding_rng_.push_back(sim::RngStream::derive(
        config_.seed, static_cast<std::uint64_t>(c + grid_.n_cells())));
  }

  policy_ = make_policy(config_);
  nodes_.reserve(n);
  for (CellId c = 0; c < grid_.n_cells(); ++c) {
    ShardEnv& env = states_[static_cast<std::size_t>(kernel_.shard_of(c))].env;
    proto::NodeContext ctx{c, &grid_, &plan_, &env,
                           proto::Resilience{config_.request_timeout},
                           policy_.get()};
    nodes_.push_back(make_node(ctx, scheme_, config_));
  }

  if (config_.fault.pauses()) {
    pause_rng_.reserve(n);
    for (CellId c = 0; c < grid_.n_cells(); ++c) {
      pause_rng_.push_back(sim::RngStream::derive(
          config_.seed, 0x9a05e000ull + static_cast<std::uint64_t>(c)));
      schedule_pause_cycle(c, 0);
    }
  }
  if (config_.fault.crashes()) {
    crashes_on_ = true;
    crashed_.assign(n, 0);
    down_since_.assign(n, 0);
    restart_at_.assign(n, 0);
    crash_rng_.reserve(n);
    for (CellId c = 0; c < grid_.n_cells(); ++c) {
      crash_rng_.push_back(sim::RngStream::derive(
          config_.seed, 0xCa45e000ull + static_cast<std::uint64_t>(c)));
      schedule_crash_cycle(c, 0);
    }
  }
  if (config_.fault.has_partitions()) {
    // Same bound as net::Network::enable_faults: tolerate specs naming
    // cells past the grid (validate_scenario rejects them up front, but
    // the timeline must never index out of range regardless).
    int np = grid_.n_cells();
    for (const net::PartitionSpec& p : config_.fault.partitions) {
      for (const CellId c : p.cells) {
        if (c + 1 > np) np = c + 1;
      }
    }
    partitions_ = net::PartitionTimeline(config_.fault.partitions, np);
  }

  precompute_call_ids();
  for (CellId c = 0; c < grid_.n_cells(); ++c) {
    schedule_next_candidate(c, 0);
  }

  kernel_.set_pin_threads(config_.pin);
  if (config_.stream_metrics) {
    streaming_ = true;
    builder_.emplace(latency_->max_one_way(), config_.warmup);
    for (ShardState& st : states_) {
      st.collector.set_streaming(true);
      st.msg_tally_base.assign(serial_cell_.size(), 0);
    }
    if (tracing_) {
      conform_ = std::make_unique<ConformanceChecker>(grid_, config_.n_channels);
    }
    // Windows are one lookahead (~ms) wide, so folding every barrier
    // would pay the O(shards + grid) sweep ~10^5 times; a ~1-second
    // stride keeps the backlog small (one second of closed records and
    // trace) at ~duration-in-seconds folds per run.
    fold_stride_ = std::max<sim::Duration>(sim::seconds(1), sim::milliseconds(1));
    kernel_.set_window_hook([this](sim::SimTime frontier) { on_window(frontier); });
  }
}

// -- scheduling ------------------------------------------------------------

template <typename F>
sim::EventId ShardedWorld::schedule_key(const sim::EventKey& key, F&& fn) {
  const int dest = kernel_.shard_of(key.owner);
  auto wrapped = [this, dest, owner = key.owner,
                  f = std::forward<F>(fn)]() mutable {
    states_[static_cast<std::size_t>(dest)].env.current = owner;
    f();
    flag_check(owner);
  };
  static_assert(sim::EventFn::fits_inline<decltype(wrapped)>(),
                "sharded dispatch wrapper must fit EventFn's inline buffer; "
                "grow sim::kEventFnCapacity if the wrapped closure grew");
  return kernel_.schedule(key, std::move(wrapped));
}

template <typename F>
sim::EventId ShardedWorld::schedule_local(CellId owner, std::uint8_t klass,
                                          sim::SimTime when, F&& fn) {
  sim::EventKey key;
  key.when = when;
  key.owner = owner;
  key.klass = klass;
  key.seq = ++cell_seq_[static_cast<std::size_t>(owner)];
  return schedule_key(key, std::forward<F>(fn));
}

template <typename F>
void ShardedWorld::schedule_delivery(LinkId lid, CellId from, CellId to,
                                     sim::SimTime when, F&& fn) {
  // The delivery closure plus the dispatch wrapper must stay inside the
  // kernel's inline callback buffer — this is the sharded hot path.
  static_assert(sim::EventFn::fits_inline<std::decay_t<F>>(),
                "delivery closure must fit EventFn's inline buffer; grow "
                "sim::kEventFnCapacity if net::Message grew");
  sim::EventKey key;
  key.when = when;
  key.owner = to;
  key.klass = sim::kClassDelivery;
  key.sub = from;
  key.seq = ++state_of(from).link_seq[tx_rank_[static_cast<std::size_t>(lid)]];
  (void)schedule_key(key, std::forward<F>(fn));
}

void ShardedWorld::flag_check(CellId owner) {
  const auto& node = *nodes_[static_cast<std::size_t>(owner)];
  flags_.observe(owner, now_of(owner), node.is_borrowing(),
                 node.is_searching());
}

// -- traffic ---------------------------------------------------------------

void ShardedWorld::precompute_call_ids() {
  // Replays every cell's candidate chain on cloned streams to find the
  // accepted arrivals, then assigns CallIds (== serials) in (time, cell)
  // order — the canonical execution order of the accept events. The live
  // chains make the identical draws from the original streams.
  struct Acc {
    sim::SimTime t;
    CellId c;
  };
  std::vector<Acc> accepted;
  for (CellId c = 0; c < grid_.n_cells(); ++c) {
    sim::RngStream rng = arrival_rng_[static_cast<std::size_t>(c)];  // clone
    const double ceiling = profile_.max_rate(c);
    if (ceiling <= 0.0) continue;
    sim::SimTime t = 0;
    for (;;) {
      t += rng.exponential_gap(ceiling);
      if (t >= horizon_) break;
      const double accept_p = profile_.rate(c, t) / ceiling;
      if (rng.uniform() < accept_p) accepted.push_back(Acc{t, c});
    }
  }
  std::stable_sort(accepted.begin(), accepted.end(),
                   [](const Acc& a, const Acc& b) {
                     return a.t != b.t ? a.t < b.t : a.c < b.c;
                   });
  serial_cell_.reserve(accepted.size());
  for (std::size_t i = 0; i < accepted.size(); ++i) {
    serial_cell_.push_back(accepted[i].c);
    ids_by_cell_[static_cast<std::size_t>(accepted[i].c)].push_back(
        static_cast<traffic::CallId>(i + 1));
  }
}

void ShardedWorld::schedule_next_candidate(CellId c, sim::SimTime from_time) {
  auto& rng = arrival_rng_[static_cast<std::size_t>(c)];
  const double ceiling = profile_.max_rate(c);
  if (ceiling <= 0.0) return;
  const sim::SimTime when = from_time + rng.exponential_gap(ceiling);
  if (when >= horizon_) return;
  (void)schedule_local(c, sim::kClassArrival, when,
                       [this, c, when]() { candidate_fire(c, when); });
}

void ShardedWorld::candidate_fire(CellId c, sim::SimTime when) {
  auto& rng = arrival_rng_[static_cast<std::size_t>(c)];
  const double ceiling = profile_.max_rate(c);
  const double accept_p = profile_.rate(c, when) / ceiling;
  if (rng.uniform() < accept_p) {
    sim::Duration holding = sim::from_seconds(
        holding_rng_[static_cast<std::size_t>(c)].exponential_mean(
            config_.mean_holding_s));
    if (holding <= 0) holding = 1;
    auto& idx = next_id_idx_[static_cast<std::size_t>(c)];
    const traffic::CallId id = ids_by_cell_[static_cast<std::size_t>(c)][idx++];
    submit_call(static_cast<std::uint64_t>(id), c, holding);
  }
  schedule_next_candidate(c, when);
}

void ShardedWorld::submit_call(std::uint64_t serial, CellId c,
                               sim::Duration holding) {
  if (crashes_on_ && down_now(c)) {
    reject_call_down(c, serial, static_cast<traffic::CallId>(serial), holding,
                     /*is_handoff=*/false);
    return;
  }
  ShardState& st = state_of(c);
  st.pending[serial] =
      PendingCall{static_cast<traffic::CallId>(serial), holding, false};
  st.collector.open(serial, static_cast<traffic::CallId>(serial), c, now_of(c),
                    /*is_handoff=*/false);
  trace_call_event(sim::TraceKind::kRequest, c, cell::kNoChannel, serial);
  nodes_[static_cast<std::size_t>(c)]->request_channel(serial);
}

// -- network ---------------------------------------------------------------

sim::RngStream& ShardedWorld::link_rng(ShardState& st, LinkId lid,
                                       const LinkKey& link) {
  auto& slot = st.fault_rng[tx_rank_[static_cast<std::size_t>(lid)]];
  if (!slot) {
    // Stream derivation is a pure function of (seed, endpoints), so lazy
    // construction draws the exact sequence an eager table would.
    const std::uint64_t label =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(link.first))
         << 32) |
        static_cast<std::uint32_t>(link.second);
    slot = std::make_unique<sim::RngStream>(
        sim::RngStream::derive(config_.seed ^ 0xFA017ull, label));
  }
  return *slot;
}

void ShardedWorld::record_link(ShardState& st, sim::TraceKind k,
                               const LinkKey& link, std::uint64_t seq,
                               std::int64_t b) {
  if (!tracing_) return;
  sim::TraceEvent e;
  e.kind = k;
  e.t = kernel_.now(st.env.shard);
  e.cell = static_cast<std::int32_t>(link.first);
  e.peer = static_cast<std::int32_t>(link.second);
  e.a = static_cast<std::int64_t>(seq);
  e.b = b;
  st.trace.push_back(e);
}

void ShardedWorld::net_send(int s, net::Message msg) {
  assert(msg.from != cell::kNoCell && msg.to != cell::kNoCell);
  assert(msg.from != msg.to && "nodes do not message themselves");
  ShardState& st = states_[static_cast<std::size_t>(s)];
  ++st.total_sent;
  if (kernel_.shard_of(msg.to) != s) ++st.cross_shard_sent;
  ++st.by_kind[static_cast<std::size_t>(msg.kind)];
  // Metrics attribution (the legacy observer hook): bill locally when the
  // request cell lives on this shard, else log for the merge step —
  // per-record message counts are order-independent, so deferred billing
  // is exact.
  if (msg.serial == 0 || msg.kind == net::MsgKind::kHandoff) {
    // HANDOFF carries the *next* leg's serial, whose record does not open
    // until the message lands — the legacy observer counts it as
    // unattributable, so we must too.
    st.collector.on_message(msg);  // counts it as unattributable
  } else if (streaming_) {
    // Streaming attribution: a flat count per serial, summed across
    // shards at run end. No knows()/foreign-bill routing — the tally is
    // attribution-exact wherever the bill lands, and it stays correct
    // for bills arriving after the record was folded out of the engine.
    if (traffic::mobility::hop_of(msg.serial) > 0) {
      ++st.msg_tally_hop[msg.serial];
    } else {
      assert(msg.serial <= serial_cell_.size());
      ++st.msg_tally_base[static_cast<std::size_t>(msg.serial - 1)];
    }
  } else if (traffic::mobility::hop_of(msg.serial) > 0) {
    // Migrated leg: the record lives on whichever shard the handoff
    // landed on, which is not computable from the serial alone. Exactly
    // one collector ever opens a given serial (the landing cell's), so
    // knows() routes the bill, and everything else goes to the merge-time
    // foreign log — the record provably exists by then, because messages
    // carrying a serial are only ever sent after its record opened.
    if (st.collector.knows(msg.serial)) {
      st.collector.bill(msg.serial, msg.kind);
    } else {
      st.foreign_bills.emplace_back(msg.serial, msg.kind);
    }
  } else {
    assert(msg.serial <= serial_cell_.size());
    const CellId owner = serial_cell_[msg.serial - 1];
    if (kernel_.shard_of(owner) == s) {
      st.collector.bill(msg.serial, msg.kind);
    } else {
      st.foreign_bills.emplace_back(msg.serial, msg.kind);
    }
  }
  if (transport_) {
    transport_send(s, std::move(msg));
    return;
  }
  const LinkId lid = links_.require(msg.from, msg.to);
  const sim::Duration d = latency_->link_delay(lid, msg.from, msg.to);
  sim::SimTime when = kernel_.now(s) + (d > 0 ? d : 0);
  sim::SimTime& floor_time = st.link_clock[tx_rank_[static_cast<std::size_t>(lid)]];
  if (when < floor_time) when = floor_time;
  floor_time = when;
  schedule_delivery(lid, msg.from, msg.to, when,
                    [this, m = std::move(msg)]() { deliver_to_node(m); });
}

void ShardedWorld::transport_send(int s, net::Message msg) {
  const LinkKey link{msg.from, msg.to};
  const LinkId lid = links_.require(link.first, link.second);
  LinkTx& tx = states_[static_cast<std::size_t>(s)]
                   .tx[tx_rank_[static_cast<std::size_t>(lid)]];
  const std::uint64_t seq = tx.next_seq++;
  tx.pending.insert(seq).msg = std::move(msg);
  transmit(s, link, seq);
  arm_rto(s, link, seq);
}

sim::Duration ShardedWorld::rto(int attempts) const {
  const int shift = attempts < 6 ? attempts : 6;
  return rto_base_ << shift;
}

void ShardedWorld::arm_rto(int s, const LinkKey& link, std::uint64_t seq) {
  ShardState& st = states_[static_cast<std::size_t>(s)];
  const LinkId lid = links_.require(link.first, link.second);
  PendingFrame* f =
      st.tx[tx_rank_[static_cast<std::size_t>(lid)]].pending.find(seq);
  assert(f != nullptr && "arming an RTO for a frame not in the window");
  auto cb = [this, s, link, seq]() { on_rto(s, link, seq); };
  static_assert(sim::EventFn::fits_inline<decltype(cb)>(),
                "RTO closure must fit EventFn's inline buffer");
  f->timer = schedule_local(link.first, sim::kClassTimer,
                            kernel_.now(s) + rto(f->attempts), std::move(cb));
}

void ShardedWorld::on_rto(int s, const LinkKey& link, std::uint64_t seq) {
  ShardState& st = states_[static_cast<std::size_t>(s)];
  const LinkId lid = links_.require(link.first, link.second);
  PendingFrame* f =
      st.tx[tx_rank_[static_cast<std::size_t>(lid)]].pending.find(seq);
  if (f == nullptr) return;  // acked in the meantime
  f->timer = sim::kInvalidEventId;
  ++f->attempts;
  ++st.tstats.retransmissions;
  record_link(st, sim::TraceKind::kRetransmit, link, seq, f->attempts);
  transmit(s, link, seq);
  arm_rto(s, link, seq);
}

void ShardedWorld::transmit(int s, const LinkKey& link, std::uint64_t seq) {
  ShardState& st = states_[static_cast<std::size_t>(s)];
  const LinkId lid = links_.require(link.first, link.second);
  sim::RngStream& rng = link_rng(st, lid, link);
  // Partition cut: checked before any RNG draw so the per-link stream
  // advances identically whether or not a partition is configured.
  if (config_.fault.has_partitions() &&
      partitions_.severed(link.first, link.second, kernel_.now(s))) {
    ++st.tstats.frames_dropped;
    record_link(st, sim::TraceKind::kDrop, link, seq, -1);
    return;  // severed; the RTO resends until the partition heals
  }
  if (config_.fault.drop_prob > 0 && rng.bernoulli(config_.fault.drop_prob)) {
    ++st.tstats.frames_dropped;
    record_link(st, sim::TraceKind::kDrop, link, seq);
    return;  // lost in flight; the RTO will resend it
  }
  const PendingFrame* f =
      st.tx[tx_rank_[static_cast<std::size_t>(lid)]].pending.find(seq);
  assert(f != nullptr && "transmitting a frame not in the window");
  const net::Message& msg = f->msg;
  int copies = 1;
  if (config_.fault.dup_prob > 0 && rng.bernoulli(config_.fault.dup_prob)) {
    ++st.tstats.frames_duplicated;
    record_link(st, sim::TraceKind::kDup, link, seq);
    copies = 2;
  }
  for (int i = 0; i < copies; ++i) {
    sim::Duration d = latency_->link_delay(lid, link.first, link.second);
    if (d < 0) d = 0;
    if (config_.fault.jitter > 0) d += rng.uniform_int(0, config_.fault.jitter);
    // No FIFO floor: frame-level reordering is the injected fault; the
    // receive side resequences. The fault jitter only ever *adds* delay,
    // so d stays >= the latency floor and the lookahead contract holds.
    schedule_delivery(lid, link.first, link.second, kernel_.now(s) + d,
                      [this, link, seq, m = msg]() {
                        on_data_frame(link, seq, m);
                      });
  }
}

void ShardedWorld::on_data_frame(const LinkKey& link, std::uint64_t seq,
                                 const net::Message& msg) {
  // Executes on the receiver's shard. The rx vector is sized once at
  // construction, so this reference stays valid across node deliveries.
  ShardState& st = state_of(link.second);
  const LinkId lid = links_.require(link.first, link.second);
  LinkRx& rx = st.rx[rx_rank_[static_cast<std::size_t>(lid)]];
  if (seq >= rx.next_expected) {
    if (!rx.reorder.contains(seq)) rx.reorder.insert(seq) = msg;
    while (net::Message* next = rx.reorder.find(rx.next_expected)) {
      const net::Message m = std::move(*next);
      rx.reorder.erase(rx.next_expected);
      ++rx.next_expected;
      deliver_to_node(m);
    }
  }
  send_ack(link, rx.next_expected - 1);
}

void ShardedWorld::send_ack(const LinkKey& data_link, std::uint64_t cumulative) {
  // Executes on the receiver's shard; the ack travels the reverse link,
  // whose sender-side state (fault RNG, canonical seq) lives right here.
  ShardState& st = state_of(data_link.second);
  ++st.tstats.acks_sent;
  const LinkKey back{data_link.second, data_link.first};
  const LinkId back_lid = links_.require(back.first, back.second);
  sim::RngStream& rng = link_rng(st, back_lid, back);
  // Partition cut severs the ack path too (both directions cross the cut).
  if (config_.fault.has_partitions() &&
      partitions_.severed(back.first, back.second,
                          kernel_.now(st.env.shard))) {
    ++st.tstats.frames_dropped;
    record_link(st, sim::TraceKind::kDrop, back, cumulative, -1);
    return;
  }
  if (config_.fault.drop_prob > 0 && rng.bernoulli(config_.fault.drop_prob)) {
    ++st.tstats.frames_dropped;
    record_link(st, sim::TraceKind::kDrop, back, cumulative);
    return;
  }
  sim::Duration d = latency_->link_delay(back_lid, back.first, back.second);
  if (d < 0) d = 0;
  if (config_.fault.jitter > 0) d += rng.uniform_int(0, config_.fault.jitter);
  auto cb = [this, data_link, cumulative]() {
    // Executes on the original sender's shard. The pending window is the
    // dense range [lowest_unacked, next_seq), so walking the cumulative
    // prefix reproduces the legacy ordered-map prefix erase exactly.
    ShardState& sst = state_of(data_link.first);
    const LinkId lid = links_.require(data_link.first, data_link.second);
    LinkTx& tx = sst.tx[tx_rank_[static_cast<std::size_t>(lid)]];
    while (tx.lowest_unacked <= cumulative &&
           tx.lowest_unacked < tx.next_seq) {
      PendingFrame* f = tx.pending.find(tx.lowest_unacked);
      assert(f != nullptr && "hole in the transport send window");
      if (f->timer != sim::kInvalidEventId) {
        kernel_.cancel(data_link.first, f->timer);
      }
      tx.pending.erase(tx.lowest_unacked);
      ++tx.lowest_unacked;
    }
  };
  static_assert(sim::EventFn::fits_inline<decltype(cb)>(),
                "ack closure must fit EventFn's inline buffer");
  schedule_delivery(back_lid, back.first, back.second,
                    kernel_.now(st.env.shard) + d, std::move(cb));
}

void ShardedWorld::deliver_to_node(const net::Message& msg) {
  ShardState& st = state_of(msg.to);
  if (st.paused_count != 0 &&
      st.paused[static_cast<std::size_t>(msg.to)] != 0) {
    st.held[static_cast<std::size_t>(msg.to)].push_back(msg);
    return;
  }
  dispatch_to_node(msg);
}

void ShardedWorld::dispatch_to_node(const net::Message& msg) {
  // HANDOFF is runner-level state migration, not protocol traffic: it is
  // intercepted here (after the pause hold, mirroring the classic
  // receiver hook) so allocator nodes and their Lamport clocks never see
  // it.
  if (msg.kind == net::MsgKind::kHandoff) {
    handoff_arrival(msg);
    return;
  }
  // A crashed MSS loses inbound protocol traffic permanently (the NIC
  // acks, the process is gone); senders resolve via their timeout paths.
  // A *resyncing* node receives normally — it must, to collect its resync
  // replies — it just admits no new traffic yet.
  if (crashes_on_ && crashed_[static_cast<std::size_t>(msg.to)] != 0) {
    return;
  }
  nodes_[static_cast<std::size_t>(msg.to)]->on_message(msg);
}

// -- pauses ----------------------------------------------------------------

void ShardedWorld::schedule_pause_cycle(CellId c, sim::SimTime from_time) {
  auto& rng = pause_rng_[static_cast<std::size_t>(c)];
  const double gap_s =
      rng.exponential_mean(60.0 / config_.fault.pause_rate_per_min);
  const sim::SimTime at = from_time + sim::from_seconds(gap_s);
  if (at >= config_.duration) return;
  const double len_s = rng.exponential_mean(config_.fault.pause_mean_s);
  const sim::Duration len = std::max<sim::Duration>(sim::from_seconds(len_s), 1);
  (void)schedule_local(c, sim::kClassControl, at, [this, c, at, len]() {
    ShardState& st = state_of(c);
    std::uint8_t& flag = st.paused[static_cast<std::size_t>(c)];
    if (flag == 0) {
      flag = 1;
      ++st.paused_count;
      if (tracing_) {
        sim::TraceEvent e;
        e.kind = sim::TraceKind::kPause;
        e.t = at;
        e.cell = static_cast<std::int32_t>(c);
        st.trace.push_back(e);
      }
    }
    (void)schedule_local(c, sim::kClassControl, at + len, [this, c, at, len]() {
      ShardState& ist = state_of(c);
      std::uint8_t& iflag = ist.paused[static_cast<std::size_t>(c)];
      if (iflag != 0) {
        iflag = 0;
        --ist.paused_count;
        if (tracing_) {
          sim::TraceEvent e;
          e.kind = sim::TraceKind::kResume;
          e.t = at + len;
          e.cell = static_cast<std::int32_t>(c);
          ist.trace.push_back(e);
        }
        std::vector<net::Message>& slot =
            ist.held[static_cast<std::size_t>(c)];
        if (!slot.empty()) {
          const std::vector<net::Message> backlog = std::move(slot);
          slot.clear();
          for (const net::Message& m : backlog) {
            dispatch_to_node(m);
          }
        }
      }
      schedule_pause_cycle(c, at + len);
    });
  });
}

// -- crash-recovery fault model --------------------------------------------

void ShardedWorld::schedule_crash_cycle(CellId c, sim::SimTime from_time) {
  // Same pure-function-of-(config, seed) schedule as the classic engine
  // (stream label 0xCa45e000 + c), realized as kClassControl events owned
  // by the crashing cell so both engines execute crash, restart, and every
  // neighbouring event in the identical canonical order.
  auto& rng = crash_rng_[static_cast<std::size_t>(c)];
  const double gap_s =
      rng.exponential_mean(60.0 / config_.fault.crash_rate_per_min);
  const sim::SimTime at = from_time + sim::from_seconds(gap_s);
  if (at >= config_.duration) return;
  const double len_s = rng.exponential_mean(config_.fault.crash_mean_s);
  const sim::Duration len = std::max<sim::Duration>(sim::from_seconds(len_s), 1);
  (void)schedule_local(c, sim::kClassControl, at, [this, c, at, len]() {
    crash_cell(c);
    (void)schedule_local(c, sim::kClassControl, at + len, [this, c, at, len]() {
      restart_cell(c);
      schedule_crash_cycle(c, at + len);
    });
  });
}

void ShardedWorld::crash_cell(CellId c) {
  assert(crashed_[static_cast<std::size_t>(c)] == 0 && "crash while down");
  crashed_[static_cast<std::size_t>(c)] = 1;
  ShardState& st = state_of(c);
  ++st.avail.crashes;
  down_since_[static_cast<std::size_t>(c)] = now_of(c);

  // Live calls at c die with the MSS. Torn down in serial order (a
  // canonical order both engines share), with no protocol messages: the
  // neighbours learn of the crash from the silence (timeouts) and the
  // eventual resync round, exactly like a real outage.
  std::vector<std::uint64_t> torn;
  for (const auto& [serial, call] : st.active) {
    if (call.cellId == c) torn.push_back(serial);
  }
  std::sort(torn.begin(), torn.end());
  trace_call_event(sim::TraceKind::kCrash, c, cell::kNoChannel, 0,
                   static_cast<std::int64_t>(torn.size()));
  for (const std::uint64_t serial : torn) {
    const auto it = st.active.find(serial);
    const cell::ChannelId ch = it->second.channel;
    st.active.erase(it);
    notify_released(c, ch);  // ground truth + usage + kRelease trace
  }

  // Wipe the allocator's volatile state; requests it was serving or
  // queueing resolve as blocked-down through the runner's own path.
  const std::vector<std::uint64_t> lost =
      nodes_[static_cast<std::size_t>(c)]->crash_reset();
  for (const std::uint64_t serial : lost) {
    notify_blocked(c, serial, proto::Outcome::kBlockedDown, 0);
  }
}

void ShardedWorld::restart_cell(CellId c) {
  assert(crashed_[static_cast<std::size_t>(c)] != 0 && "restart while up");
  crashed_[static_cast<std::size_t>(c)] = 0;
  ShardState& st = state_of(c);
  st.avail.down_us += static_cast<std::uint64_t>(
      now_of(c) - down_since_[static_cast<std::size_t>(c)]);
  restart_at_[static_cast<std::size_t>(c)] = now_of(c);
  trace_call_event(sim::TraceKind::kRestart, c, cell::kNoChannel, 0);
  nodes_[static_cast<std::size_t>(c)]->begin_resync();
}

void ShardedWorld::notify_resynced(CellId cellId, int rounds) {
  ShardState& st = state_of(cellId);
  ++st.avail.resyncs;
  st.avail.resync_us += static_cast<std::uint64_t>(
      now_of(cellId) - restart_at_[static_cast<std::size_t>(cellId)]);
  st.avail.resync_rounds += static_cast<std::uint64_t>(rounds);
  st.avail.max_resync_rounds = std::max(st.avail.max_resync_rounds,
                                        static_cast<std::uint64_t>(rounds));
  trace_call_event(sim::TraceKind::kResyncDone, cellId, cell::kNoChannel, 0,
                   static_cast<std::int64_t>(rounds));
}

void ShardedWorld::reject_call_down(CellId c, std::uint64_t serial,
                                    traffic::CallId call,
                                    sim::Duration remaining, bool is_handoff) {
  ShardState& st = state_of(c);
  st.pending[serial] = PendingCall{call, remaining, is_handoff};
  st.collector.open(serial, call, c, now_of(c), is_handoff);
  trace_call_event(sim::TraceKind::kRequest, c, cell::kNoChannel, serial);
  notify_blocked(c, serial, proto::Outcome::kBlockedDown, 0);
}

// -- call lifecycle --------------------------------------------------------

void ShardedWorld::trace_call_event(sim::TraceKind kind, CellId cellId,
                                    cell::ChannelId ch, std::uint64_t serial,
                                    std::int64_t a) {
  if (!tracing_) return;
  ShardState& st = state_of(cellId);
  sim::TraceEvent e;
  e.kind = kind;
  e.t = now_of(cellId);
  e.cell = static_cast<std::int32_t>(cellId);
  e.channel = static_cast<std::int32_t>(ch);
  e.serial = serial;
  e.a = a;
  st.trace.push_back(e);
}

void ShardedWorld::trace_handoff(sim::TraceKind kind, CellId cellId,
                                 CellId peer, std::uint64_t serial,
                                 std::int64_t hop, sim::SimTime ends) {
  if (!tracing_) return;
  ShardState& st = state_of(cellId);
  sim::TraceEvent e;
  e.kind = kind;
  e.t = now_of(cellId);
  e.cell = static_cast<std::int32_t>(cellId);
  e.peer = static_cast<std::int32_t>(peer);
  e.serial = serial;
  e.a = hop;
  e.b = static_cast<std::int64_t>(ends);
  st.trace.push_back(e);
}

void ShardedWorld::accumulate_usage(ShardState& st, sim::SimTime t) {
  st.usage_integral += (t - st.last_usage_change) * st.channels_in_use;
  st.last_usage_change = t;
}

void ShardedWorld::notify_acquired(CellId cellId, std::uint64_t serial,
                                   cell::ChannelId ch, proto::Outcome how,
                                   int attempts) {
  ShardState& st = state_of(cellId);
  const sim::SimTime t = now_of(cellId);
  // Theorem-1 check against same-shard neighbours only (cross-shard
  // ground truth is mid-window foreign state); the ConformanceChecker's
  // reuse-distance pass on the merged trace covers the full region.
  const int s = kernel_.shard_of(cellId);
  for (const CellId j : grid_.interference(cellId)) {
    if (kernel_.shard_of(j) != s) continue;
    if (truth_[static_cast<std::size_t>(j)].contains(ch)) {
      ++st.violations;
      std::fprintf(stderr,
                   "[T1 VIOLATION] t=%lld cell=%d ch=%d conflicts with "
                   "cell=%d (sharded)\n",
                   static_cast<long long>(t), cellId, ch, j);
      assert(false && "co-channel interference: Theorem 1 violated");
    }
  }
  truth_[static_cast<std::size_t>(cellId)].insert(ch);
  accumulate_usage(st, t);
  ++st.channels_in_use;
  trace_call_event(sim::TraceKind::kAcquire, cellId, ch, serial,
                   static_cast<std::int64_t>(how));

  // Neighbour borrow/search samples are reconstructed from the flag
  // timelines at merge time; only the same-shard self-sample (legacy
  // adds it for acquisitions only) is taken live.
  const int searching_self =
      nodes_[static_cast<std::size_t>(cellId)]->is_searching() ? 1 : 0;
  st.collector.close(serial, t, how, attempts, 0, searching_self);

  const auto it = st.pending.find(serial);
  assert(it != st.pending.end());
  const PendingCall pc = it->second;
  st.pending.erase(it);

  ActiveCall state;
  state.call = pc.call;
  state.cellId = cellId;
  state.channel = ch;
  state.ends = t + pc.remaining;
  st.active[serial] = state;
  sim::SimTime next_event = state.ends;
  if (config_.mean_dwell_s > 0.0) {
    // Dwell is a pure function of (seed, serial) — the same draw the
    // classic engine makes, on whichever shard hosts the call.
    const sim::Duration dwell =
        traffic::mobility::dwell(config_.seed, serial, config_.mean_dwell_s);
    if (t + dwell < state.ends) next_event = t + dwell;
  }
  (void)schedule_local(cellId, sim::kClassProgress, next_event,
                       [this, serial, cellId]() { end_call(serial, cellId); });
}

void ShardedWorld::end_call(std::uint64_t serial, CellId cellId) {
  ShardState& st = state_of(cellId);
  const auto it = st.active.find(serial);
  if (it == st.active.end()) return;  // torn down by a crash
  const ActiveCall state = it->second;
  st.active.erase(it);
  nodes_[static_cast<std::size_t>(state.cellId)]->release_channel(state.channel,
                                                                 serial);

  if (now_of(cellId) >= state.ends) return;  // call completed normally

  // Handoff: the mobile moved to a random neighbouring cell mid-call. The
  // call state (identity, absolute end time) rides a HANDOFF message over
  // the ordinary network path, which is exactly what crosses shard
  // boundaries through the double-buffered outboxes; the destination
  // issues the fresh channel request when it lands.
  const auto neigh = grid_.neighbors(state.cellId);
  if (neigh.empty()) return;
  const std::uint64_t hop = traffic::mobility::hop_of(serial) + 1;
  const CellId dest = neigh[traffic::mobility::pick_neighbor(
      config_.seed, serial, neigh.size())];
  const std::uint64_t new_serial =
      traffic::mobility::encode_serial(traffic::mobility::call_of(serial), hop);
  trace_handoff(sim::TraceKind::kHandoffLeave, state.cellId, dest, new_serial,
                static_cast<std::int64_t>(hop), state.ends);
  net::Message msg;
  msg.kind = net::MsgKind::kHandoff;
  msg.from = state.cellId;
  msg.to = dest;
  msg.serial = new_serial;
  msg.ts.count = static_cast<std::uint64_t>(state.ends);
  net_send(kernel_.shard_of(state.cellId), std::move(msg));
}

void ShardedWorld::handoff_arrival(const net::Message& msg) {
  ShardState& st = state_of(msg.to);
  const sim::SimTime t = now_of(msg.to);
  const auto ends = static_cast<sim::SimTime>(msg.ts.count);
  const std::uint64_t hop = traffic::mobility::hop_of(msg.serial);
  trace_handoff(sim::TraceKind::kHandoffRecv, msg.to, msg.from, msg.serial,
                static_cast<std::int64_t>(hop), ends);
  if (ends <= t) return;  // call expired while in transit
  const auto call =
      static_cast<traffic::CallId>(traffic::mobility::call_of(msg.serial));
  if (crashes_on_ && down_now(msg.to)) {
    // Graceful degradation: the destination MSS cannot admit the call.
    reject_call_down(msg.to, msg.serial, call, ends - t, /*is_handoff=*/true);
    return;
  }
  st.pending[msg.serial] = PendingCall{call, ends - t, /*is_handoff=*/true};
  st.collector.open(msg.serial, call, msg.to, t, /*is_handoff=*/true);
  trace_call_event(sim::TraceKind::kRequest, msg.to, cell::kNoChannel,
                   msg.serial);
  nodes_[static_cast<std::size_t>(msg.to)]->request_channel(msg.serial);
}

void ShardedWorld::notify_blocked(CellId cellId, std::uint64_t serial,
                                  proto::Outcome why, int attempts) {
  ShardState& st = state_of(cellId);
  st.collector.close(serial, now_of(cellId), why, attempts, 0, 0);
  st.pending.erase(serial);
  trace_call_event(sim::TraceKind::kBlock, cellId, cell::kNoChannel, serial,
                   static_cast<std::int64_t>(why));
}

void ShardedWorld::notify_released(CellId cellId, cell::ChannelId ch) {
  ShardState& st = state_of(cellId);
  assert(truth_[static_cast<std::size_t>(cellId)].contains(ch));
  truth_[static_cast<std::size_t>(cellId)].erase(ch);
  accumulate_usage(st, now_of(cellId));
  --st.channels_in_use;
  assert(st.channels_in_use >= 0);
  trace_call_event(sim::TraceKind::kRelease, cellId, ch, 0);
}

void ShardedWorld::notify_reassigned(CellId cellId, cell::ChannelId from_ch,
                                     cell::ChannelId to_ch) {
  ShardState& st = state_of(cellId);
  const int s = kernel_.shard_of(cellId);
  for (const CellId j : grid_.interference(cellId)) {
    if (kernel_.shard_of(j) != s) continue;
    if (truth_[static_cast<std::size_t>(j)].contains(to_ch)) {
      ++st.violations;
      std::fprintf(stderr,
                   "[T1 VIOLATION] t=%lld cell=%d reassign %d->%d conflicts "
                   "with cell=%d (sharded)\n",
                   static_cast<long long>(now_of(cellId)), cellId, from_ch,
                   to_ch, j);
      assert(false && "co-channel interference on reassignment");
    }
  }
  assert(truth_[static_cast<std::size_t>(cellId)].contains(from_ch));
  truth_[static_cast<std::size_t>(cellId)].erase(from_ch);
  truth_[static_cast<std::size_t>(cellId)].insert(to_ch);
  ++st.reassignments;
  trace_call_event(sim::TraceKind::kRelease, cellId, from_ch, 0);
  trace_call_event(sim::TraceKind::kAcquire, cellId, to_ch, 0);
  for (auto& [serial, call] : st.active) {
    if (call.cellId == cellId && call.channel == from_ch) {
      call.channel = to_ch;
      return;
    }
  }
  assert(false && "reassignment of a channel with no active call");
}

// -- run & merge -----------------------------------------------------------

void ShardedWorld::run() {
  kernel_.run_until(config_.duration);
  kernel_.run_to_quiescence();
}

bool ShardedWorld::quiescent() const {
  for (const ShardState& st : states_) {
    if (!st.pending.empty()) return false;
    if (st.collector.open_count() != 0) return false;
  }
  for (const auto& n : nodes_) {
    if (n->busy() || n->queued() != 0 || n->resyncing()) return false;
  }
  return true;
}

// Streaming fold: runs inside the kernel's window hook, on exactly one
// worker while the others are parked at the barrier. Window monotonicity
// gives the correctness argument: every event executed so far fired at
// when < frontier, so every closed record has t_decision < frontier and
// every buffered trace entry has t < frontier — the drains below take
// *complete* per-shard buffers, and everything a later fold drains is
// >= this frontier. Per-batch canonical sorting + concatenation across
// folds therefore reproduces the end-of-run global merge exactly.
void ShardedWorld::on_window(sim::SimTime frontier) {
  if (frontier < next_fold_) return;
  next_fold_ = frontier + fold_stride_;
  fold_to(frontier);
}

void ShardedWorld::fold_to(sim::SimTime frontier) {
  // Records: same comparator as the buffered merge; equal (t_decision,
  // cell) keys always share a shard, so stable sort reproduces the
  // canonical close order within the batch.
  std::vector<metrics::CallRecord> batch;
  for (ShardState& st : states_) {
    std::vector<metrics::CallRecord> part =
        st.collector.drain_closed_before(frontier);
    batch.insert(batch.end(), std::make_move_iterator(part.begin()),
                 std::make_move_iterator(part.end()));
  }
  if (!batch.empty()) {
    std::stable_sort(batch.begin(), batch.end(),
                     [](const metrics::CallRecord& a, const metrics::CallRecord& b) {
                       return a.t_decision != b.t_decision
                                  ? a.t_decision < b.t_decision
                                  : a.cellId < b.cellId;
                     });
    // Neighbour samples need timeline entries at or before each close —
    // resolve them *before* pruning.
    flags_.apply_neighbor_samples(grid_, batch);
    for (const metrics::CallRecord& r : batch) {
      if (builder_->add_core(r)) {
        fold_order_.emplace_back(
            r.serial, metrics::AggregateBuilder::acquired_outcome(r.outcome));
      }
    }
  }
  // Every remaining record closes at >= frontier, so the earliest future
  // flags query bounds at frontier - 1; prune_before keeps exactly the
  // suffix those queries can resolve.
  flags_.prune_before(frontier);

  if (tracing_) {
    std::vector<sim::TraceEvent> events;
    std::size_t total = 0;
    for (const ShardState& st : states_) total += st.trace.size();
    events.reserve(total);
    for (ShardState& st : states_) {
      events.insert(events.end(), st.trace.begin(), st.trace.end());
      st.trace.clear();
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const sim::TraceEvent& a, const sim::TraceEvent& b) {
                       return a.t != b.t ? a.t < b.t : a.cell < b.cell;
                     });
    for (const sim::TraceEvent& e : events) {
      if (conform_) conform_->feed(e);
      trace_->emit(e);
    }
  }
}

RunResult ShardedWorld::result() {
  RunResult out;
  out.scheme = scheme_;

  if (streaming_) {
    // Drain whatever closed after the last stride fold (the quiescence
    // tail runs past `duration`, so use an unbounded frontier), then
    // merge the per-shard message tallies by summation and replay the two
    // deferred message Summaries in fold order — the only Summaries whose
    // inputs (final per-serial totals) are unknown at fold time.
    fold_to(sim::kTimeNever);
    ShardState& acc = states_.front();
    for (std::size_t s = 1; s < states_.size(); ++s) {
      const ShardState& st = states_[s];
      for (std::size_t i = 0; i < st.msg_tally_base.size(); ++i) {
        acc.msg_tally_base[i] += st.msg_tally_base[i];
      }
      for (const auto& [serial, count] : st.msg_tally_hop) {
        acc.msg_tally_hop[serial] += count;
      }
    }
    for (const auto& [serial, acquired] : fold_order_) {
      std::uint32_t total = 0;
      if (traffic::mobility::hop_of(serial) > 0) {
        const auto it = acc.msg_tally_hop.find(serial);
        if (it != acc.msg_tally_hop.end()) total = it->second;
      } else {
        total = acc.msg_tally_base[static_cast<std::size_t>(serial - 1)];
      }
      builder_->add_messages(total, acquired);
    }
    out.agg = builder_->finish();
  } else {
    // Canonical record merge: concatenate per shard (each shard's records
    // are in its execution order), stable-sort by (decision time, cell).
    // Equal keys only ever come from the same shard — a cell closes all its
    // records on its own shard — so stability reproduces the global
    // canonical close order exactly.
    std::vector<metrics::CallRecord> merged;
    std::size_t total_records = 0;
    for (const ShardState& st : states_) total_records += st.collector.records().size();
    merged.reserve(total_records);
    for (const ShardState& st : states_) {
      const auto& recs = st.collector.records();
      merged.insert(merged.end(), recs.begin(), recs.end());
    }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const metrics::CallRecord& a, const metrics::CallRecord& b) {
                       return a.t_decision != b.t_decision
                                  ? a.t_decision < b.t_decision
                                  : a.cellId < b.cellId;
                     });

    // Apply foreign billing logs (messages observed on a shard that does
    // not own the serial's record).
    std::unordered_map<std::uint64_t, std::size_t> by_serial;
    by_serial.reserve(merged.size());
    for (std::size_t i = 0; i < merged.size(); ++i) by_serial.emplace(merged[i].serial, i);
    for (const ShardState& st : states_) {
      for (const auto& [serial, kind] : st.foreign_bills) {
        const auto it = by_serial.find(serial);
        assert(it != by_serial.end());
        if (it != by_serial.end()) {
          ++merged[it->second].messages[static_cast<std::size_t>(kind)];
        }
      }
    }

    // Reconstruct the deferred neighbour samples from the flag timelines
    // (shared convention with the classic engine, see flag_timeline.hpp).
    flags_.apply_neighbor_samples(grid_, merged);

    out.agg = metrics::aggregate_records(merged, latency_->max_one_way(),
                                         config_.warmup);
  }

  std::int64_t usage = 0;
  for (const ShardState& st : states_) {
    out.total_messages += st.total_sent;
    out.cross_shard_messages += st.cross_shard_sent;
    for (int k = 0; k < net::kNumMsgKinds; ++k) {
      out.messages_by_kind[static_cast<std::size_t>(k)] +=
          st.by_kind[static_cast<std::size_t>(k)];
    }
    out.violations += st.violations;
    out.availability.merge(st.avail);
    out.transport.frames_dropped += st.tstats.frames_dropped;
    out.transport.frames_duplicated += st.tstats.frames_duplicated;
    out.transport.retransmissions += st.tstats.retransmissions;
    out.transport.acks_sent += st.tstats.acks_sent;
    usage += st.usage_integral;
    if (st.last_usage_change < config_.duration) {
      usage += (config_.duration - st.last_usage_change) * st.channels_in_use;
    }
  }
  out.offered_calls = serial_cell_.size();
  out.carried_erlangs = config_.duration > 0
                            ? static_cast<double>(usage) /
                                  static_cast<double>(config_.duration)
                            : 0.0;
  out.executed_events = kernel_.executed();
  out.quiescent = quiescent();

  if (trace_ != nullptr) {
    if (!streaming_) {
      // Canonical trace merge — the same argument as the record merge:
      // every event is emitted on shard_of(event.cell), so equal (t, cell)
      // keys share a shard and stable sort preserves their execution order.
      // (Streaming mode already emitted everything through fold_to.)
      std::vector<sim::TraceEvent> events;
      std::size_t total_events = 0;
      for (const ShardState& st : states_) total_events += st.trace.size();
      events.reserve(total_events + 1);
      for (const ShardState& st : states_) {
        events.insert(events.end(), st.trace.begin(), st.trace.end());
      }
      std::stable_sort(events.begin(), events.end(),
                       [](const sim::TraceEvent& a, const sim::TraceEvent& b) {
                         return a.t != b.t ? a.t < b.t : a.cell < b.cell;
                       });
      for (const sim::TraceEvent& e : events) trace_->emit(e);
    }
    std::size_t open = 0;
    for (const ShardState& st : states_) open += st.active.size();
    sim::TraceEvent end;
    end.kind = sim::TraceKind::kRunEnd;
    end.t = kernel_.max_now();
    end.a = out.quiescent ? 1 : 0;
    end.b = static_cast<std::int64_t>(open);
    if (conform_) conform_->feed(end);
    trace_->emit(end);
  }
  if (conform_) {
    const ConformanceReport rep = conform_->finish();
    out.conformance_checked = true;
    out.conformance_violations = rep.violations.size();
    if (!rep.ok()) {
      std::fprintf(stderr, "[conformance] %s\n", rep.to_string().c_str());
    }
  }
  return out;
}

}  // namespace

RunResult run_profile_sharded(const ScenarioConfig& config, Scheme scheme,
                              const traffic::LoadProfile& profile,
                              sim::TraceRecorder* trace) {
  ShardedWorld world(config, scheme, profile, trace);
  world.run();
  return world.result();
}

}  // namespace dca::runner
