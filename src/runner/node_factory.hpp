// Scheme -> AllocatorNode construction, shared by the classic World and
// the sharded engine so both assemble byte-identical protocol agents.
#pragma once

#include <memory>

#include "proto/allocator.hpp"
#include "runner/scenario.hpp"

namespace dca::runner {

[[nodiscard]] std::unique_ptr<proto::AllocatorNode> make_node(
    const proto::NodeContext& ctx, Scheme scheme, const ScenarioConfig& config);

}  // namespace dca::runner
