// Scheme -> AllocatorNode construction, shared by the classic World and
// the sharded engine so both assemble byte-identical protocol agents.
#pragma once

#include <memory>

#include "proto/allocator.hpp"
#include "runner/scenario.hpp"

namespace dca::runner {

[[nodiscard]] std::unique_ptr<proto::AllocatorNode> make_node(
    const proto::NodeContext& ctx, Scheme scheme, const ScenarioConfig& config);

/// Instantiates the scenario's allocation policy from the registry. Aborts
/// on unresolvable specs — validate_scenario() rejects those with a proper
/// error first, so reaching the abort means a caller skipped validation.
[[nodiscard]] std::unique_ptr<const proto::AllocationPolicy> make_policy(
    const ScenarioConfig& config);

}  // namespace dca::runner
