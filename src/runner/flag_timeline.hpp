// Deferred neighbour-flag sampling, shared by both engines.
//
// The paper's N_borrow / N_search statistics sample, at every request's
// close instant, how many interference neighbours are in borrowing /
// searching mode. Sampling that live is trivial on the classic
// single-queue engine but impossible on the sharded one (a neighbour on
// another shard is mid-window, its state unreadable), and worse, a live
// sample is sensitive to *intra-instant execution order* — an
// implementation detail the two engines do not share.
//
// Both engines therefore record a per-cell timeline of flag changes (one
// entry after each executed event that changed the cell's flags) and
// reconstruct the samples after the run with a single shared convention:
// the close at (t, closer) observes neighbour j's flags *after* j's
// events at instant t when j < closer, and *before* them otherwise —
// i.e. flags as of the canonical (when, owner) event order, which is a
// pure function of the scenario. Timelines only need the final flag
// state per (cell, instant) to agree, and that is fixed by the (bit-
// identical) event streams, so both engines reconstruct the same counts
// for any shard/thread configuration.
//
// Storage: one 8-byte word per change — (t << 2) | borrowing << 1 |
// searching. A busy metro cell flips flags thousands of times over a
// long run; the packed form halves the old {SimTime, bool, bool} layout
// and, with prune_before(), the streaming engine keeps only the suffix
// future closes can still observe instead of the whole history.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "cell/grid.hpp"
#include "metrics/collector.hpp"
#include "sim/types.hpp"

namespace dca::runner {

/// One (t, flags) step of a cell's is_borrowing/is_searching timeline,
/// packed into a single word: t in the high 62 bits, borrowing at bit 1,
/// searching at bit 0.
using PackedFlagChange = std::uint64_t;

class FlagTimelines {
 public:
  void reset(std::size_t n_cells) {
    cur_.assign(n_cells, 0);
    timelines_.assign(n_cells, {});
  }

  /// Records cell `c`'s flags after an event at instant `t`; appends a
  /// timeline entry only when they changed. Must be called with
  /// non-decreasing `t` per cell (execution order guarantees this).
  void observe(cell::CellId c, sim::SimTime t, bool borrowing, bool searching) {
    PackedFlagChange& cur = cur_[static_cast<std::size_t>(c)];
    const std::uint64_t flags = (static_cast<std::uint64_t>(borrowing) << 1) |
                                static_cast<std::uint64_t>(searching);
    if (flags == (cur & 3ull)) return;
    cur = (static_cast<std::uint64_t>(t) << 2) | flags;
    timelines_[static_cast<std::size_t>(c)].push_back(cur);
  }

  /// Flags of neighbour `j` as observed by a close event at (t, closer)
  /// in canonical order: j's instant-t changes are visible iff j < closer
  /// (cell is the first canonical tiebreak after time).
  [[nodiscard]] std::pair<bool, bool> flags_at(cell::CellId j, sim::SimTime t,
                                               cell::CellId closer) const {
    const sim::SimTime bound = j < closer ? t : t - 1;
    const auto& tl = timelines_[static_cast<std::size_t>(j)];
    auto it = std::upper_bound(
        tl.begin(), tl.end(), bound,
        [](sim::SimTime lhs, PackedFlagChange fc) {
          return lhs < static_cast<sim::SimTime>(fc >> 2);
        });
    if (it == tl.begin()) return {false, false};
    --it;
    return {((*it >> 1) & 1ull) != 0, (*it & 1ull) != 0};
  }

  /// Fills every record's neighbour samples from the timelines (legacy
  /// semantics: every interference neighbour is sampled at the close
  /// instant for acquired and blocked records alike; the self-searching
  /// term — acquisitions only — was already sampled live at close).
  void apply_neighbor_samples(const cell::HexGrid& grid,
                              std::vector<metrics::CallRecord>& records) const {
    for (metrics::CallRecord& rec : records) {
      for (const cell::CellId j : grid.interference(rec.cellId)) {
        const auto [b, s] = flags_at(j, rec.t_decision, rec.cellId);
        if (b) ++rec.borrowing_neighbors;
        if (s) ++rec.searching_neighbors;
      }
    }
  }

  /// Drops timeline entries no future query can observe: once every
  /// remaining record closes at t_decision >= frontier, the earliest
  /// bound ever queried is frontier - 1, which resolves to the LAST
  /// entry with t < frontier — keep that one, drop everything before it.
  void prune_before(sim::SimTime frontier) {
    for (auto& tl : timelines_) {
      auto it = std::upper_bound(
          tl.begin(), tl.end(), frontier - 1,
          [](sim::SimTime lhs, PackedFlagChange fc) {
            return lhs < static_cast<sim::SimTime>(fc >> 2);
          });
      if (it == tl.begin()) continue;
      tl.erase(tl.begin(), std::prev(it));
    }
  }

  /// Total retained entries across all cells (memory introspection).
  [[nodiscard]] std::size_t total_entries() const noexcept {
    std::size_t n = 0;
    for (const auto& tl : timelines_) n += tl.size();
    return n;
  }

 private:
  std::vector<PackedFlagChange> cur_;  // latest flags per cell
  std::vector<std::vector<PackedFlagChange>> timelines_;
};

}  // namespace dca::runner
