// Deferred neighbour-flag sampling, shared by both engines.
//
// The paper's N_borrow / N_search statistics sample, at every request's
// close instant, how many interference neighbours are in borrowing /
// searching mode. Sampling that live is trivial on the classic
// single-queue engine but impossible on the sharded one (a neighbour on
// another shard is mid-window, its state unreadable), and worse, a live
// sample is sensitive to *intra-instant execution order* — an
// implementation detail the two engines do not share.
//
// Both engines therefore record a per-cell timeline of flag changes (one
// entry after each executed event that changed the cell's flags) and
// reconstruct the samples after the run with a single shared convention:
// the close at (t, closer) observes neighbour j's flags *after* j's
// events at instant t when j < closer, and *before* them otherwise —
// i.e. flags as of the canonical (when, owner) event order, which is a
// pure function of the scenario. Timelines only need the final flag
// state per (cell, instant) to agree, and that is fixed by the (bit-
// identical) event streams, so both engines reconstruct the same counts
// for any shard/thread configuration.
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "cell/grid.hpp"
#include "metrics/collector.hpp"
#include "sim/types.hpp"

namespace dca::runner {

/// One (t, flags) step of a cell's is_borrowing/is_searching timeline.
struct FlagChange {
  sim::SimTime t = 0;
  bool borrowing = false;
  bool searching = false;
};

class FlagTimelines {
 public:
  void reset(std::size_t n_cells) {
    cur_.assign(n_cells, FlagChange{});
    timelines_.assign(n_cells, {});
  }

  /// Records cell `c`'s flags after an event at instant `t`; appends a
  /// timeline entry only when they changed. Must be called with
  /// non-decreasing `t` per cell (execution order guarantees this).
  void observe(cell::CellId c, sim::SimTime t, bool borrowing, bool searching) {
    FlagChange& cur = cur_[static_cast<std::size_t>(c)];
    if (borrowing == cur.borrowing && searching == cur.searching) return;
    cur.borrowing = borrowing;
    cur.searching = searching;
    cur.t = t;
    timelines_[static_cast<std::size_t>(c)].push_back(cur);
  }

  /// Flags of neighbour `j` as observed by a close event at (t, closer)
  /// in canonical order: j's instant-t changes are visible iff j < closer
  /// (cell is the first canonical tiebreak after time).
  [[nodiscard]] std::pair<bool, bool> flags_at(cell::CellId j, sim::SimTime t,
                                               cell::CellId closer) const {
    const sim::SimTime bound = j < closer ? t : t - 1;
    const auto& tl = timelines_[static_cast<std::size_t>(j)];
    auto it = std::upper_bound(
        tl.begin(), tl.end(), bound,
        [](sim::SimTime lhs, const FlagChange& fc) { return lhs < fc.t; });
    if (it == tl.begin()) return {false, false};
    --it;
    return {it->borrowing, it->searching};
  }

  /// Fills every record's neighbour samples from the timelines (legacy
  /// semantics: every interference neighbour is sampled at the close
  /// instant for acquired and blocked records alike; the self-searching
  /// term — acquisitions only — was already sampled live at close).
  void apply_neighbor_samples(const cell::HexGrid& grid,
                              std::vector<metrics::CallRecord>& records) const {
    for (metrics::CallRecord& rec : records) {
      for (const cell::CellId j : grid.interference(rec.cellId)) {
        const auto [b, s] = flags_at(j, rec.t_decision, rec.cellId);
        if (b) ++rec.borrowing_neighbors;
        if (s) ++rec.searching_neighbors;
      }
    }
  }

 private:
  std::vector<FlagChange> cur_;  // latest flags per cell
  std::vector<std::vector<FlagChange>> timelines_;
};

}  // namespace dca::runner
