// E-S9 — Fairness and starvation (paper Section 6: "The algorithm is
// deadlock free and avoids starvation"; "The algorithm provides fair
// service to all cells without compromising on any reuse issues").
//
// At a high uniform load we measure, per scheme:
//  * Jain's fairness index over per-cell success rates (1.0 = perfectly
//    even service);
//  * the worst-served cell's drop rate vs the mean;
//  * per-call acquisition-delay tail percentiles (p50/p95/p99/max) —
//    bounded tails are the other face of no-starvation;
//  * starved-call counts (update-family retry-cap hits).
//
// Runs in the slow-control-plane regime (T = 100 ms) where retries and
// deferrals actually bite, on the torus so every cell is statistically
// identical (any unfairness is the scheme's, not the topology's).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "metrics/summary.hpp"
#include "metrics/table.hpp"
#include "runner/world.hpp"
#include "traffic/generator.hpp"
#include "traffic/profile.hpp"

int main() {
  using namespace dca;
  using metrics::Table;
  using runner::Scheme;

  auto cfg = benchutil::paper_config();
  cfg.rows = 14;
  cfg.cols = 14;
  cfg.wrap = cell::Wrap::kToroidal;
  cfg.latency = sim::milliseconds(100);
  cfg.duration = sim::minutes(30);
  cfg.warmup = sim::minutes(3);
  const double rho = 0.95;

  benchutil::heading(
      "Fairness at rho = 0.95, T = 100 ms, 14x14 torus (identical cells)");
  Table t({"Scheme", "Jain idx", "mean drop%", "worst-cell drop%", "starved",
           "AcqT p50 [T]", "p95", "p99", "max"});

  for (const Scheme s : runner::kAllSchemes) {
    runner::World w(cfg, s);
    const traffic::UniformProfile profile(cfg.arrival_rate_for_load(rho));
    traffic::TrafficSource src(
        w.simulator(), w.grid(), profile, cfg.mean_holding_s, cfg.seed,
        [&w](const traffic::CallSpec& spec) { w.submit_call(spec); });
    src.start(cfg.duration);
    w.simulator().run_to_quiescence();
    if (w.interference_violations() != 0 || !w.quiescent()) {
      std::fprintf(stderr, "INVARIANT FAILURE in %s\n",
                   runner::scheme_name(s).c_str());
      return 1;
    }

    const auto n = static_cast<std::size_t>(w.grid().n_cells());
    std::vector<double> offered(n, 0.0), served(n, 0.0);
    metrics::SampledSummary delay;
    std::uint64_t starved = 0;
    const double T = static_cast<double>(w.latency_bound());
    for (const auto& rec : w.collector().records()) {
      if (rec.t_request < cfg.warmup) continue;
      const auto c = static_cast<std::size_t>(rec.cellId);
      offered[c] += 1.0;
      if (proto::is_acquired(rec.outcome)) {
        served[c] += 1.0;
        delay.add(static_cast<double>(rec.delay()) / T);
      } else if (rec.outcome == proto::Outcome::kBlockedStarved) {
        ++starved;
      }
    }
    std::vector<double> success_rate;
    double drop_sum = 0.0, drop_worst = 0.0;
    int counted = 0;
    for (std::size_t c = 0; c < n; ++c) {
      if (offered[c] < 1.0) continue;
      const double sr = served[c] / offered[c];
      success_rate.push_back(sr);
      drop_sum += 1.0 - sr;
      drop_worst = std::max(drop_worst, 1.0 - sr);
      ++counted;
    }
    if (counted == 0) {
      std::fprintf(stderr, "fairness: no cell offered any traffic\n");
      return 1;
    }
    t.add_row({runner::scheme_name(s),
               Table::num(metrics::jain_index(success_rate), 4),
               Table::num(100.0 * drop_sum / counted, 2),
               Table::num(100.0 * drop_worst, 2), std::to_string(starved),
               Table::num(delay.percentile(50), 2),
               Table::num(delay.percentile(95), 2),
               Table::num(delay.percentile(99), 2), Table::num(delay.max(), 2)});
  }
  std::printf("%s\n", t.render().c_str());

  benchutil::note(
      "Shape checks: the adaptive scheme's Jain index stays at the top of\n"
      "the table with zero starved calls and a bounded delay tail, while\n"
      "the update family shows starvation and longer tails under the same\n"
      "pressure — the paper's no-starvation/fairness claims.");
  return 0;
}
