// E-F11 — Reproduction of the paper's Figure 11 scenario (Section 6):
// the advanced update scheme's timestamp-inversion unfairness, and why
// the proposed adaptive scheme is immune to it.
//
// Scripted scenario, fully deterministic:
//  * spectrum of 7 channels, cluster 7 => every cell owns exactly ONE
//    primary channel;
//  * two requesters c1 (older timestamp) and c2 at hex distance 2;
//  * every other channel colour in their common neighbourhood is occupied
//    by a filler cell visible to both, leaving exactly ONE borrowable
//    channel r*;
//  * an asymmetric latency matrix makes c2's messages overtake c1's
//    (c1 sends at 6 ms, c2 at 1 ms; replies at the default 5 ms).
//
// Under ADVANCED UPDATE: the primaries promise r* to the younger c2 and
// answer the older c1 with a conditional grant -> c1 fails and, with no
// other channel left, drops. Under the ADAPTIVE scheme the borrow request
// goes to ALL neighbours including c2 itself, so the same-channel conflict
// is resolved by timestamp and the older request c1 wins.
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "core/adaptive.hpp"
#include "metrics/table.hpp"
#include "net/latency.hpp"
#include "proto/advanced_update.hpp"
#include "runner/world.hpp"

namespace {

using namespace dca;
using runner::Scheme;
using runner::World;

struct Scenario {
  cell::CellId c1 = cell::kNoCell;
  cell::CellId c2 = cell::kNoCell;
  std::vector<cell::CellId> fillers;  // one per remaining foreign colour
  int free_color = -1;
};

runner::ScenarioConfig fig11_config() {
  auto cfg = benchutil::paper_config();
  cfg.n_channels = 7;  // one primary channel per cell
  cfg.adaptive.theta_low = 1;
  cfg.adaptive.theta_high = 2;
  return cfg;
}

// Finds c2 and the filler cells on the topology (scheme-independent).
Scenario plan_scenario(const World& probe) {
  Scenario s;
  const auto& grid = probe.grid();
  const auto& plan = probe.plan();
  s.c1 = 3 * grid.cols() + 3;

  for (const cell::CellId j : grid.interference(s.c1)) {
    if (grid.distance(s.c1, j) != 2) continue;
    if (plan.color_of(j) == plan.color_of(s.c1)) continue;
    if (j <= s.c1) continue;  // ensure c1's Lamport tie-break is older
    // The common neighbourhood must contain a primary of every colour.
    bool lens_complete = true;
    for (int k = 0; k < plan.n_colors(); ++k) {
      if (k == plan.color_of(s.c1) || k == plan.color_of(j)) continue;
      bool found = false;
      for (const cell::CellId p : grid.interference(s.c1)) {
        if (plan.color_of(p) == k && grid.interferes(p, j)) {
          found = true;
          break;
        }
      }
      if (!found) lens_complete = false;
    }
    if (lens_complete) {
      s.c2 = j;
      break;
    }
  }
  if (s.c2 == cell::kNoCell) return s;

  // Reserve one colour as the single borrowable channel; fill the rest.
  for (int k = 0; k < plan.n_colors(); ++k) {
    if (k == plan.color_of(s.c1) || k == plan.color_of(s.c2)) continue;
    if (s.free_color < 0) {
      s.free_color = k;  // r* = the channel of this colour
      continue;
    }
    for (const cell::CellId p : probe.grid().interference(s.c1)) {
      if (plan.color_of(p) == k && probe.grid().interferes(p, s.c2)) {
        s.fillers.push_back(p);
        break;
      }
    }
  }
  return s;
}

std::unique_ptr<net::MatrixLatency> make_latency(const Scenario& s, int n_cells) {
  auto m = std::make_unique<net::MatrixLatency>(sim::milliseconds(5));
  for (cell::CellId j = 0; j < n_cells; ++j) {
    if (j != s.c1) m->set(s.c1, j, sim::milliseconds(6));
    if (j != s.c2) m->set(s.c2, j, sim::milliseconds(1));
  }
  return m;
}

struct Outcome {
  bool c1_acquired = false;
  bool c2_acquired = false;
  std::uint64_t conditional_failures = 0;
};

void testutil_offer(World& w, cell::CellId c, traffic::CallId call,
                    sim::Duration holding) {
  traffic::CallSpec spec;
  spec.id = call;
  spec.cell = c;
  spec.arrival = w.simulator().now();
  spec.holding = holding;
  w.submit_call(spec);
}

Outcome run_scheme(Scheme scheme, const Scenario& s) {
  const auto cfg = fig11_config();
  World probe(cfg, scheme);  // cheap: topology identical
  World w(cfg, scheme, make_latency(s, probe.grid().n_cells()));

  traffic::CallId id = 1;
  const auto hold = sim::minutes(60);
  // Exhaust c1's and c2's single primaries and occupy the filler colours.
  testutil_offer(w, s.c1, id++, hold);
  testutil_offer(w, s.c2, id++, hold);
  for (const cell::CellId p : s.fillers) testutil_offer(w, p, id++, hold);
  w.simulator().run_until(sim::seconds(2));

  // The race: c1 requests first (older timestamp), c2 two ms later, but
  // c2's messages arrive first everywhere.
  testutil_offer(w, s.c1, 100, hold);
  w.simulator().schedule_in(sim::milliseconds(2), [&w, &s, hold] {
    testutil_offer(w, s.c2, 200, hold);
  });
  w.simulator().run_until(w.simulator().now() + sim::minutes(1));

  Outcome out;
  for (const auto& r : w.collector().records()) {
    if (r.call == 100) out.c1_acquired = proto::is_acquired(r.outcome);
    if (r.call == 200) out.c2_acquired = proto::is_acquired(r.outcome);
  }
  if (scheme == Scheme::kAdvancedUpdate) {
    for (cell::CellId c = 0; c < w.grid().n_cells(); ++c) {
      out.conditional_failures +=
          dynamic_cast<const proto::AdvancedUpdateNode&>(w.node(c))
              .conditional_failures();
    }
  }
  if (w.interference_violations() != 0) {
    std::fprintf(stderr, "INVARIANT FAILURE\n");
    std::exit(1);
  }
  return out;
}

}  // namespace

int main() {
  using metrics::Table;

  benchutil::heading("Figure 11: advanced-update unfairness vs adaptive fairness");

  const auto cfg = fig11_config();
  World probe(cfg, Scheme::kAdvancedUpdate);
  const Scenario s = plan_scenario(probe);
  if (s.c2 == cell::kNoCell || s.fillers.size() + 3 != 7) {
    std::fprintf(stderr, "scenario construction failed\n");
    return 1;
  }
  std::printf(
      "c1 = cell %d (requests first, older timestamp; sends at 6 ms)\n"
      "c2 = cell %d (requests 2 ms later, younger; sends at 1 ms)\n"
      "single borrowable channel: colour %d; %zu filler cells occupy the rest\n\n",
      s.c1, s.c2, s.free_color, s.fillers.size());

  const Outcome adv = run_scheme(Scheme::kAdvancedUpdate, s);
  const Outcome ada = run_scheme(Scheme::kAdaptive, s);

  Table t({"Scheme", "older c1 got channel", "younger c2 got channel",
           "conditional-grant failures"});
  t.add_row({"Advanced Update", adv.c1_acquired ? "yes" : "NO (dropped)",
             adv.c2_acquired ? "yes" : "no",
             std::to_string(adv.conditional_failures)});
  t.add_row({"Adaptive (proposed)", ada.c1_acquired ? "YES" : "no",
             ada.c2_acquired ? "yes" : "no (must defer to c1)", "0"});
  std::printf("%s\n", t.render().c_str());

  const bool reproduced = !adv.c1_acquired && adv.c2_acquired &&
                          adv.conditional_failures > 0 && ada.c1_acquired &&
                          !ada.c2_acquired;
  benchutil::note(reproduced
                      ? "Reproduced: advanced update inverts the timestamp order\n"
                        "(younger request wins via message overtaking; the older\n"
                        "request receives a conditional grant and drops), while the\n"
                        "adaptive scheme resolves the same race in favour of the\n"
                        "older request because its request reaches ALL neighbours."
                      : "WARNING: scenario did not reproduce the expected outcome");
  return reproduced ? 0 : 1;
}
