// E-T3 — Reproduction of the paper's Table 3: "Bounds for Different
// Algorithms" — minimum/maximum message complexity and acquisition time.
//
// The analytic bounds are printed exactly as the paper derives them; the
// observed min/max are taken over a load sweep rho in [0.1, 0.95] (per-call
// extremes across all runs of a scheme). The unbounded entries (the
// paper's infinity for the update family) manifest in simulation as costs
// that grow with the retry cap; we print the observed extreme with the cap
// noted.
#include <cstdio>

#include "analysis/formulas.hpp"
#include "bench_util.hpp"
#include "metrics/table.hpp"
#include "runner/experiment.hpp"

int main() {
  using namespace dca;
  using metrics::Table;
  using runner::Scheme;

  auto cfg = benchutil::paper_config();
  cfg.duration = sim::minutes(20);

  benchutil::heading("Table 3: analytic bounds (paper Section 5)");
  analysis::ModelParams mp;
  mp.N = 18;
  mp.alpha = cfg.adaptive.alpha;

  Table sym({"Algorithm", "Msg min", "Msg max", "AcqT min [T]", "AcqT max [T]"});
  const struct SymRow {
    const char* name;
    analysis::Bounds b;
  } sym_rows[] = {
      {"Basic Search", analysis::basic_search_bounds(mp)},
      {"Basic Update", analysis::basic_update_bounds(mp)},
      {"Advanced Update", analysis::advanced_update_bounds(mp)},
      {"Adaptive (Proposed)", analysis::adaptive_bounds(mp)},
  };
  for (const auto& row : sym_rows) {
    sym.add_row({row.name, analysis::format_bound(row.b.minimum.messages),
                 analysis::format_bound(row.b.maximum.messages),
                 analysis::format_bound(row.b.minimum.time_in_T),
                 analysis::format_bound(row.b.maximum.time_in_T)});
  }
  std::printf("%s\n", sym.render().c_str());

  benchutil::heading(
      "Observed per-call extremes over rho in {0.1, 0.4, 0.7, 0.95}");
  std::printf("(update-family retry cap = %d attempts; the paper's 'inf' shows up\n"
              " as extremes that scale with this cap)\n\n",
              cfg.max_update_attempts);

  Table t({"Algorithm", "Msg min", "Msg max", "AcqT min [T]", "AcqT max [T]",
           "starved"});
  const std::vector<double> rhos{0.1, 0.4, 0.7, 0.95};
  for (const Scheme s : runner::kPaperSchemes) {
    double msg_min = 1e18, msg_max = 0, t_min = 1e18, t_max = 0;
    std::uint64_t starved = 0;
    for (const double rho : rhos) {
      const runner::RunResult r = runner::run_uniform(cfg, s, rho);
      if (r.violations != 0 || !r.quiescent) {
        std::fprintf(stderr, "INVARIANT FAILURE\n");
        return 1;
      }
      msg_min = std::min(msg_min, r.agg.messages_per_call.min());
      msg_max = std::max(msg_max, r.agg.messages_per_call.max());
      t_min = std::min(t_min, r.agg.delay_in_T.min());
      t_max = std::max(t_max, r.agg.delay_in_T.max());
      starved += r.agg.starved;
    }
    t.add_row({runner::scheme_name(s), Table::num(msg_min, 0),
               Table::num(msg_max, 0), Table::num(t_min, 1), Table::num(t_max, 1),
               std::to_string(starved)});
  }
  std::printf("%s\n", t.render().c_str());

  benchutil::note(
      "Shape check: only the adaptive scheme reaches 0 messages / 0 time at\n"
      "its minimum, and its maxima stay bounded (2aN+4N messages, (2aN+1)T)\n"
      "while the update family's extremes are limited only by the retry cap\n"
      "(starved > 0 marks where the unbounded behaviour was truncated).");
  return 0;
}
